//===- bench/bench_tnbind.cpp - Experiment F5: the §6.1 MOV claim ---------===//
//
// Reproduces §6.1: on the matrix-subscript kernels
//   Z[I,K] := A[I,J] * B[J,K] + C[I,K] + e     (the "easy" statement)
//   Z[I,K] := A[I,J] * B[J,K] + C[I,K]         (the "harder" statement)
// TNBIND + RT-register targeting should generate arithmetic with (nearly)
// no data-movement MOVs, while naive frame-slot allocation needs one per
// operation. We report the MOV opcodes executed inside the kernel loop per
// element update, for each configuration.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace s1lisp;
using namespace s1lisp::bench;

namespace {

// The §6.1 statements as the paper's intro motivates them: raw float
// subscripted arithmetic inside a loop nest, plus a scalar e.
const char *kernelSource() {
  return
      // Z[I,K] := A[I,J]*B[J,K] + C[I,K] + e over all i,k for fixed j.
      "(defun update-easy (z a b c n e)"
      "  (dotimes (i n)"
      "    (dotimes (k n)"
      "      (aset$f z i k (+$f (*$f (aref$f a i 1) (aref$f b 1 k))"
      "                         (aref$f c i k) e))))"
      "  z)"
      "(defun update-hard (z a b c n)"
      "  (dotimes (i n)"
      "    (dotimes (k n)"
      "      (aset$f z i k (+$f (*$f (aref$f a i 1) (aref$f b 1 k))"
      "                         (aref$f c i k)))))"
      "  z)"
      "(defun setup (n)"
      "  (let ((m (make-array$f n n)))"
      "    (dotimes (i n) (dotimes (k n) (aset$f m i k (float (+ i k)))))"
      "    m))";
}

struct KernelStats {
  uint64_t MovsExecuted;
  uint64_t Instructions;
  unsigned StaticMovs;
};

// Arrays as arguments need first-class array values; easier to let the
// Lisp side allocate them and run the whole experiment in one call.
const char *driverSource(bool Hard) {
  static std::string Src;
  Src = std::string(kernelSource()) +
        "(defun drive (n e)"
        "  (let ((z (setup n)) (a (setup n)) (b (setup n)) (c (setup n)))" +
        (Hard ? "    (update-hard z a b c n)" : "    (update-easy z a b c n e)") +
        "    (aref$f z 0 0)))";
  return Src.c_str();
}

KernelStats measureDriver(const driver::CompilerOptions &Opts, bool Hard, int N) {
  Compiled C = compileOrDie(driverSource(Hard), Opts);
  // Warm up once to separate setup cost, then measure a second run and
  // subtract a setup-only run.
  Compiled SetupOnly = compileOrDie(
      std::string(kernelSource()) +
          "(defun drive (n e) (let ((z (setup n)) (a (setup n)) (b (setup n))"
          " (c (setup n))) (aref$f z 0 0)))",
      Opts);
  runOrDie(SetupOnly, "drive", {fx(N), fl(0.25)});
  uint64_t SetupMovs = SetupOnly.VM->stats().Movs;
  uint64_t SetupInstr = SetupOnly.VM->stats().Instructions;

  runOrDie(C, "drive", {fx(N), fl(0.25)});
  KernelStats S;
  S.MovsExecuted = C.VM->stats().Movs - SetupMovs;
  S.Instructions = C.VM->stats().Instructions - SetupInstr;
  S.StaticMovs = staticMovs(C.Program);
  return S;
}

void printTable() {
  JsonReport Report("tnbind");
  tableHeader("F5 / §6.1: data-movement MOVs in the subscripted kernels");
  printf("%-28s %-8s %14s %14s %16s\n", "configuration", "kernel",
         "movs/element", "instrs/element", "static MOVs");
  const int N = 24;
  const double PerElem = N * N;
  struct Cfg {
    const char *Name;
    driver::CompilerOptions Opts;
  } Cfgs[] = {
      {"tnbind+rt (paper)", fullConfig()},
      {"naive (frame slots)", naiveTnConfig()},
  };
  for (bool Hard : {false, true}) {
    for (const Cfg &C : Cfgs) {
      KernelStats S = measureDriver(C.Opts, Hard, N);
      printf("%-28s %-8s %14.2f %14.2f %16u\n", C.Name, Hard ? "hard" : "easy",
             S.MovsExecuted / PerElem, S.Instructions / PerElem, S.StaticMovs);
      std::string Key = std::string(Hard ? "hard." : "easy.") +
                        (C.Opts.Codegen.TnBind.UseRegisters ? "tnbind" : "naive");
      Report.add("kernel_movs." + Key, S.MovsExecuted);
      Report.add("kernel_instrs." + Key, S.Instructions);
    }
  }
  printf("(per-element counts include the loop counters, which run through\n"
         "the generic-arithmetic interface in both configurations)\n");

  // The paper's actual unit of analysis: the single straight-line
  // statement Z[I,K] := A[I,J]*B[J,K] + C[I,K] (+ e), compiled alone.
  tableHeader("F5b / §6.1: the straight-line statement by itself");
  printf("%-28s %-8s %14s %14s\n", "configuration", "stmt", "static MOVs",
         "instrs/exec");
  const char *StmtSource =
      "(defun stmt-easy (z a b c i j k e)"
      "  (aset$f z i k (+$f (*$f (aref$f a i j) (aref$f b j k))"
      "                     (aref$f c i k) e)))"
      "(defun stmt-hard (z a b c i j k)"
      "  (aset$f z i k (+$f (*$f (aref$f a i j) (aref$f b j k))"
      "                     (aref$f c i k))))"
      "(defun drive (n which)"
      "  (let ((z (make-array$f n n)) (a (make-array$f n n))"
      "        (b (make-array$f n n)) (c (make-array$f n n)))"
      "    (if (zerop which)"
      "        (stmt-easy z a b c 1 0 1 0.5)"
      "        (stmt-hard z a b c 1 0 1))))";
  struct Cfg2 {
    const char *Name;
    driver::CompilerOptions Opts;
  } Cfgs2[] = {
      {"tnbind+rt (paper)", fullConfig()},
      {"naive (frame slots)", naiveTnConfig()},
  };
  for (int Which : {0, 1}) {
    for (const Cfg2 &C : Cfgs2) {
      Compiled P = compileOrDie(StmtSource, C.Opts);
      const char *FnName = Which == 0 ? "stmt-easy" : "stmt-hard";
      unsigned Static = 0;
      for (const auto &F : P.Program.Functions)
        if (F.Name == FnName)
          Static = F.countOpcode(s1::Opcode::MOV);
      P.VM->resetStats();
      runOrDie(P, "drive", {fx(4), fx(Which)});
      printf("%-28s %-8s %14u %14llu\n", C.Name, Which == 0 ? "easy" : "hard",
             Static,
             static_cast<unsigned long long>(P.VM->stats().Instructions));
      std::string Key = std::string(Which == 0 ? "easy." : "hard.") +
                        (C.Opts.Codegen.TnBind.UseRegisters ? "tnbind" : "naive");
      Report.add("stmt_static_movs." + Key, Static);
    }
  }
  printf("Shape check (paper): for the statement itself TNBIND's RT-register\n"
         "targeting removes the data-movement MOVs between the subscript\n"
         "arithmetic and the floating-point operations; the naive allocator\n"
         "bounces every intermediate through a frame slot.\n");
  Report.write();
}

void BM_KernelFull(benchmark::State &State) {
  Compiled C = compileOrDie(driverSource(true), fullConfig());
  for (auto _ : State) {
    runOrDie(C, "drive", {fx(16), fl(0.25)});
  }
  State.counters["movs"] = static_cast<double>(C.VM->stats().Movs);
}
BENCHMARK(BM_KernelFull);

void BM_KernelNaive(benchmark::State &State) {
  Compiled C = compileOrDie(driverSource(true), naiveTnConfig());
  for (auto _ : State) {
    runOrDie(C, "drive", {fx(16), fl(0.25)});
  }
  State.counters["movs"] = static_cast<double>(C.VM->stats().Movs);
}
BENCHMARK(BM_KernelNaive);

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
