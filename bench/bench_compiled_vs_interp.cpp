//===- bench/bench_compiled_vs_interp.cpp - Experiment F9 -----------------===//
//
// The paper's overall claim (§1/§8): the compiler produces high-quality
// code for both the "number world" and the "pointer world". We run a
// mixed kernel suite through the interpreter (evaluation steps) and the
// compiled simulator (instructions), reporting the work ratio.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace s1lisp;
using namespace s1lisp::bench;

namespace {

struct Kernel {
  const char *Name;
  const char *Source;
  const char *Fn;
  std::vector<sexpr::Value> Args;
};

std::vector<Kernel> kernels() {
  return {
      {"fib (generic arith)",
       "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))", "fib",
       {fx(15)}},
      {"sum-floats ($f world)",
       "(defun run (n) (let ((s 0.0)) (dotimes (i n) "
       "(setq s (+$f s (*$f 1.5 (float i))))) s))",
       "run",
       {fx(2000)}},
      {"list-build (pointer world)",
       "(defun run (n) (let ((l nil)) (dotimes (i n) (setq l (cons i l))) "
       "(length l)))",
       "run",
       {fx(2000)}},
      {"tail-loop",
       "(defun run (n) (if (zerop n) 'done (run (1- n))))", "run", {fx(20000)}},
      {"array-kernel",
       "(defun run (n) (let ((a (make-array$f n)) (s 0.0))"
       " (dotimes (i n) (aset$f a i (float i)))"
       " (dotimes (i n) (setq s (+$f s (aref$f a i)))) s))",
       "run",
       {fx(1000)}},
  };
}

template <typename Fn> double bestOfThreeMs(Fn &&F) {
  double Best = 1e30;
  for (int I = 0; I < 3; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    F();
    auto T1 = std::chrono::steady_clock::now();
    Best = std::min(Best,
                    std::chrono::duration<double, std::milli>(T1 - T0).count());
  }
  return Best;
}

void printTable() {
  tableHeader("F9: compiled code vs. the interpreter (per kernel)");
  printf("%-26s %12s %12s %10s %14s %16s\n", "kernel", "interp ms",
         "compiled ms", "speedup", "interp steps", "compiled instrs");
  for (const Kernel &K : kernels()) {
    // Interpreter.
    ir::Module MI;
    DiagEngine Diags;
    frontend::convertSource(MI, K.Source, Diags);
    interp::Interpreter I(MI);
    std::vector<interp::RtValue> RtArgs;
    for (sexpr::Value V : K.Args)
      RtArgs.push_back(interp::RtValue::data(V));
    auto RI = I.call(K.Fn, RtArgs);
    if (!RI.Ok) {
      printf("%-26s interpreter error: %s\n", K.Name, RI.Error.c_str());
      continue;
    }
    double InterpMs = bestOfThreeMs([&] { I.call(K.Fn, RtArgs); });
    // Compiled.
    Compiled P = compileOrDie(K.Source, fullConfig());
    double CompiledMs = bestOfThreeMs([&] { runOrDie(P, K.Fn, K.Args); });
    P.VM->resetStats();
    runOrDie(P, K.Fn, K.Args);
    double Steps = static_cast<double>(I.stats().Steps);
    double Instr = static_cast<double>(P.VM->stats().Instructions);
    printf("%-26s %12.2f %12.2f %9.1fx %14.0f %16.0f\n", K.Name, InterpMs,
           CompiledMs, InterpMs / CompiledMs, Steps, Instr);
  }
  printf("Shape check (paper): compiled code wins on every kernel; the\n"
         "margin is largest for the raw-float and array kernels, exactly\n"
         "where representation analysis and TNBIND pay off.\n");
}

void BM_InterpFib(benchmark::State &State) {
  ir::Module M;
  DiagEngine Diags;
  frontend::convertSource(
      M, "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))", Diags);
  interp::Interpreter I(M);
  for (auto _ : State)
    I.call("fib", {interp::RtValue::data(fx(12))});
}
BENCHMARK(BM_InterpFib);

void BM_CompiledFib(benchmark::State &State) {
  Compiled P = compileOrDie(
      "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))");
  for (auto _ : State)
    runOrDie(P, "fib", {fx(12)});
}
BENCHMARK(BM_CompiledFib);

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
