//===- bench/BenchUtil.h - Shared benchmark harness -------------*- C++ -*-===//
///
/// \file
/// Helpers shared by the per-experiment benchmark binaries: compile with a
/// named configuration, run on the simulator, and collect the machine
/// counters EXPERIMENTS.md reports. Each binary prints its reproduction
/// table first (the paper-shape data), then runs google-benchmark timing
/// loops for wall-clock numbers.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_BENCH_BENCHUTIL_H
#define S1LISP_BENCH_BENCHUTIL_H

#include "driver/Compiler.h"
#include "frontend/Convert.h"
#include "interp/Interp.h"
#include "sexpr/Printer.h"
#include "vm/Machine.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace s1lisp {
namespace bench {

/// Named compiler configurations for the ablation tables.
inline driver::CompilerOptions fullConfig() { return {}; }

inline driver::CompilerOptions noOptConfig() {
  driver::CompilerOptions O;
  O.Optimize = false;
  return O;
}

inline driver::CompilerOptions naiveTnConfig() {
  driver::CompilerOptions O;
  O.Codegen.TnBind.UseRegisters = false;
  O.Codegen.RegisterTemps = false;
  return O;
}

inline driver::CompilerOptions noRepConfig() {
  driver::CompilerOptions O;
  O.Codegen.Annotate.RepAnalysis = false;
  return O;
}

inline driver::CompilerOptions noPdlConfig() {
  driver::CompilerOptions O;
  O.Codegen.Annotate.PdlNumbers = false;
  return O;
}

inline driver::CompilerOptions noSpecialCacheConfig() {
  driver::CompilerOptions O;
  O.Codegen.SpecialCache = false;
  return O;
}

inline driver::CompilerOptions noTailConfig() {
  driver::CompilerOptions O;
  O.Codegen.TailCalls = false;
  return O;
}

/// One compiled program ready to execute.
struct Compiled {
  std::unique_ptr<ir::Module> M;
  s1::Program Program;
  std::unique_ptr<vm::Machine> VM;
};

inline Compiled compileOrDie(const std::string &Src,
                             const driver::CompilerOptions &Opts = {}) {
  Compiled C;
  C.M = std::make_unique<ir::Module>();
  auto Out = driver::compileSource(*C.M, Src, Opts);
  if (!Out.Ok) {
    fprintf(stderr, "benchmark program failed to compile: %s\n",
            Out.Error.c_str());
    abort();
  }
  C.Program = std::move(Out.Program);
  C.VM = std::make_unique<vm::Machine>(C.Program, C.M->Syms, C.M->DataHeap);
  return C;
}

inline sexpr::Value fx(int64_t N) { return sexpr::Value::fixnum(N); }
inline sexpr::Value fl(double D) { return sexpr::Value::flonum(D); }

/// Runs a compiled function and asserts success.
inline vm::Machine::RunResult runOrDie(Compiled &C, const std::string &Fn,
                                       const std::vector<sexpr::Value> &Args) {
  auto R = C.VM->call(Fn, Args);
  if (!R.Ok) {
    fprintf(stderr, "benchmark run failed: %s\n", R.Error.c_str());
    abort();
  }
  return R;
}

/// Static MOV count across all functions of a program.
inline unsigned staticMovs(const s1::Program &P) {
  unsigned N = 0;
  for (const auto &F : P.Functions)
    N += F.countOpcode(s1::Opcode::MOV);
  return N;
}

inline void tableHeader(const char *Title) {
  printf("\n=== %s ===\n", Title);
}

} // namespace bench
} // namespace s1lisp

#endif // S1LISP_BENCH_BENCHUTIL_H
