//===- bench/BenchUtil.h - Shared benchmark harness -------------*- C++ -*-===//
///
/// \file
/// Helpers shared by the per-experiment benchmark binaries: compile with a
/// named configuration, run on the simulator, and collect the machine
/// counters EXPERIMENTS.md reports. Each binary prints its reproduction
/// table first (the paper-shape data), then runs google-benchmark timing
/// loops for wall-clock numbers.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_BENCH_BENCHUTIL_H
#define S1LISP_BENCH_BENCHUTIL_H

#include "driver/Compiler.h"
#include "frontend/Convert.h"
#include "interp/Interp.h"
#include "sexpr/Printer.h"
#include "vm/Machine.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace s1lisp {
namespace bench {

/// Named compiler configurations for the ablation tables.
inline driver::CompilerOptions fullConfig() { return {}; }

inline driver::CompilerOptions noOptConfig() {
  driver::CompilerOptions O;
  O.Optimize = false;
  return O;
}

inline driver::CompilerOptions naiveTnConfig() {
  driver::CompilerOptions O;
  O.Codegen.TnBind.UseRegisters = false;
  O.Codegen.RegisterTemps = false;
  return O;
}

inline driver::CompilerOptions noRepConfig() {
  driver::CompilerOptions O;
  O.Codegen.Annotate.RepAnalysis = false;
  return O;
}

inline driver::CompilerOptions noPdlConfig() {
  driver::CompilerOptions O;
  O.Codegen.Annotate.PdlNumbers = false;
  return O;
}

inline driver::CompilerOptions noSpecialCacheConfig() {
  driver::CompilerOptions O;
  O.Codegen.SpecialCache = false;
  return O;
}

inline driver::CompilerOptions noTailConfig() {
  driver::CompilerOptions O;
  O.Codegen.TailCalls = false;
  return O;
}

/// One compiled program ready to execute.
struct Compiled {
  std::unique_ptr<ir::Module> M;
  s1::Program Program;
  std::unique_ptr<vm::Machine> VM;
};

inline Compiled compileOrDie(const std::string &Src,
                             const driver::CompilerOptions &Opts = {}) {
  Compiled C;
  C.M = std::make_unique<ir::Module>();
  auto Out = driver::compileSource(*C.M, Src, Opts);
  if (!Out.Ok) {
    fprintf(stderr, "benchmark program failed to compile: %s\n",
            Out.Error.c_str());
    abort();
  }
  C.Program = std::move(Out.Program);
  C.VM = std::make_unique<vm::Machine>(C.Program, C.M->Syms, C.M->DataHeap);
  return C;
}

inline sexpr::Value fx(int64_t N) { return sexpr::Value::fixnum(N); }
inline sexpr::Value fl(double D) { return sexpr::Value::flonum(D); }

/// Runs a compiled function and asserts success.
inline vm::Machine::RunResult runOrDie(Compiled &C, const std::string &Fn,
                                       const std::vector<sexpr::Value> &Args) {
  auto R = C.VM->call(Fn, Args);
  if (!R.Ok) {
    fprintf(stderr, "benchmark run failed: %s\n", R.Error.c_str());
    abort();
  }
  return R;
}

/// Static MOV count across all functions of a program.
inline unsigned staticMovs(const s1::Program &P) {
  unsigned N = 0;
  for (const auto &F : P.Functions)
    N += F.countOpcode(s1::Opcode::MOV);
  return N;
}

inline void tableHeader(const char *Title) {
  printf("\n=== %s ===\n", Title);
}

/// Collects reproduction-table counters and writes them to
/// `BENCH_<name>.json` as `[{"bench": ..., "metric": ..., "value": ...},
/// ...]` so CI and EXPERIMENTS.md tooling can diff the paper-shape
/// numbers across revisions without scraping stdout.
class JsonReport {
public:
  explicit JsonReport(std::string BenchName) : Bench(std::move(BenchName)) {}

  /// Records one counter row.
  void add(const std::string &Metric, uint64_t Value) {
    Rows.push_back({Metric, Value, std::string(), false});
  }

  /// Records one string-valued row (host facts like the architecture
  /// name ride along with the counters).
  void add(const std::string &Metric, std::string Value) {
    Rows.push_back({Metric, 0, std::move(Value), true});
  }

  /// Writes BENCH_<name>.json into the working directory; returns false
  /// (after a diagnostic) if the file cannot be written.
  bool write() const {
    std::string Path = "BENCH_" + Bench + ".json";
    FILE *F = fopen(Path.c_str(), "w");
    if (!F) {
      fprintf(stderr, "cannot write %s\n", Path.c_str());
      return false;
    }
    fprintf(F, "[");
    for (size_t I = 0; I < Rows.size(); ++I) {
      if (Rows[I].IsText)
        fprintf(F, "%s\n  {\"bench\": \"%s\", \"metric\": \"%s\", \"value\": \"%s\"}",
                I ? "," : "", Bench.c_str(), Rows[I].Metric.c_str(),
                Rows[I].Text.c_str());
      else
        fprintf(F, "%s\n  {\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %llu}",
                I ? "," : "", Bench.c_str(), Rows[I].Metric.c_str(),
                static_cast<unsigned long long>(Rows[I].Value));
    }
    fprintf(F, Rows.empty() ? "]\n" : "\n]\n");
    fclose(F);
    printf("wrote %s (%zu counters)\n", Path.c_str(), Rows.size());
    return true;
  }

private:
  struct Row {
    std::string Metric;
    uint64_t Value;
    std::string Text;
    bool IsText;
  };
  std::string Bench;
  std::vector<Row> Rows;
};

} // namespace bench
} // namespace s1lisp

#endif // S1LISP_BENCH_BENCHUTIL_H
