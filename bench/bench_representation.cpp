//===- bench/bench_representation.cpp - Experiments T3 + F6: §6.2 ---------===//
//
// Prints Table 3 (the internal representation set) and measures the §6.2
// claim: representation analysis keeps float temporaries as raw machine
// numbers, eliminating box/unbox pairs, including the if-arm
// reconciliation example (+$f (if p (sqrt$f q) (car r)) 3.0).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace s1lisp;
using namespace s1lisp::bench;

namespace {

// Horner polynomial evaluation: a chain of *$f/+$f over let-bound floats.
const char *Source =
    "(defun horner (x)"
    "  (let ((acc 0.0))"
    "    (setq acc (+$f (*$f acc x) 1.0))"
    "    (setq acc (+$f (*$f acc x) 2.0))"
    "    (setq acc (+$f (*$f acc x) 3.0))"
    "    (setq acc (+$f (*$f acc x) 4.0))"
    "    acc))"
    "(defun drive (n x)"
    "  (let ((s 0.0))"
    "    (dotimes (i n) (setq s (+$f s (horner x))))"
    "    s))"
    // The §6.2 reconciliation example: one arm raw, one arm a pointer.
    "(defun reconcile (p q r) (+$f (if p (sqrt$f q) (car r)) 3.0))";

void printTable3() {
  tableHeader("T3: internal object representations (Table 3)");
  using ir::Rep;
  const std::pair<Rep, const char *> Rows[] = {
      {Rep::SWFIX, "36-bit integer"},
      {Rep::DWFIX, "72-bit integer"},
      {Rep::HWFLO, "18-bit floating-point number"},
      {Rep::SWFLO, "36-bit floating-point number"},
      {Rep::DWFLO, "72-bit floating-point number"},
      {Rep::TWFLO, "144-bit floating-point number"},
      {Rep::HWCPLX, "36-bit complex floating-point number"},
      {Rep::SWCPLX, "72-bit complex floating-point number"},
      {Rep::DWCPLX, "144-bit complex floating-point number"},
      {Rep::TWCPLX, "288-bit complex floating-point number"},
      {Rep::POINTER, "LISP pointer"},
      {Rep::BIT, "1-bit integer"},
      {Rep::JUMP, "Conditional jump"},
      {Rep::NONE, "Don't care (value not used)"},
  };
  for (auto [R, Desc] : Rows)
    printf("  %-8s %s\n", ir::repName(R), Desc);
}

void printMeasurements() {
  tableHeader("F6 / §6.2: representation analysis (boxing eliminated)");
  printf("%-24s %18s %18s %14s\n", "configuration", "heap boxes/iter",
         "instrs/iter", "result");
  struct Cfg {
    const char *Name;
    driver::CompilerOptions Opts;
  } Cfgs[] = {
      {"rep analysis (paper)", fullConfig()},
      {"everything boxed", noRepConfig()},
  };
  const int N = 2000;
  for (const Cfg &C : Cfgs) {
    Compiled P = compileOrDie(Source, C.Opts);
    P.VM->resetStats();
    auto R = runOrDie(P, "drive", {fx(N), fl(1.5)});
    printf("%-24s %18.2f %18.1f %14s\n", C.Name,
           static_cast<double>(P.VM->stats().HeapObjects) / N,
           static_cast<double>(P.VM->stats().Instructions) / N,
           sexpr::toString(*R.Result).c_str());
  }

  // The reconciliation example: count coercions on each arm.
  tableHeader("F6b / §6.2: if-arm reconciliation example");
  Compiled P = compileOrDie(Source, fullConfig());
  ir::Module ListM;
  sexpr::Value RList = ListM.DataHeap.list({fl(7.0)});
  for (bool TakeSqrt : {true, false}) {
    P.VM->resetStats();
    auto R = P.VM->call("reconcile",
                        {TakeSqrt ? sexpr::Value::symbol(P.M->Syms.t())
                                  : sexpr::Value::nil(),
                         fl(4.0), RList});
    printf("  arm %-8s instrs=%llu  result=%s\n", TakeSqrt ? "sqrt$f" : "car",
           static_cast<unsigned long long>(P.VM->stats().Instructions),
           R.Ok ? sexpr::toString(*R.Result).c_str() : R.Error.c_str());
  }
  printf("Shape check (paper): the sqrt arm stays raw (no conversion); the\n"
         "car arm merely dereferences — the if delivers SWFLO either way.\n");
}

void BM_HornerWithRep(benchmark::State &State) {
  Compiled P = compileOrDie(Source, fullConfig());
  for (auto _ : State)
    runOrDie(P, "drive", {fx(500), fl(1.5)});
}
BENCHMARK(BM_HornerWithRep);

void BM_HornerBoxed(benchmark::State &State) {
  Compiled P = compileOrDie(Source, noRepConfig());
  for (auto _ : State)
    runOrDie(P, "drive", {fx(500), fl(1.5)});
}
BENCHMARK(BM_HornerBoxed);

} // namespace

int main(int argc, char **argv) {
  printTable3();
  printMeasurements();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
