//===- bench/bench_service.cpp - Compile-service throughput ---------------===//
//
// Measures the s1lispd request path end to end (in process, through
// Server::handle — the same core every transport drives):
//
//  * requests/sec cold (the cache cleared before every request, so each
//    one runs the full middle end) versus warm (the cache primed, so each
//    request hashes, hits, and links) on a middle-end-heavy module — the
//    content-addressed cache's headline number, acceptance warm >= 5x;
//  * the warm daemon under concurrent clients at 1/2/4/hw threads —
//    aggregate throughput as the worker-pool story.
//
// Every request is a full protocol-shaped compile of a ~60-function
// generated module with --cse, so the cold rows pay optimize + CSE +
// per-unit codegen and the warm rows pay read + convert + hash + link.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "fuzz/Generator.h"
#include "service/Server.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace s1lisp;
using namespace s1lisp::bench;

namespace {

constexpr uint32_t Seed = 7600;
constexpr unsigned ColdReps = 8;
constexpr unsigned WarmReps = 48;

std::string &serviceSource() {
  static std::string Source = [] {
    fuzz::GenOptions GO;
    // Big bodies: the cache's win scales with middle-end work per
    // function, which is what a compile farm's repeated workloads look
    // like (same library, every request).
    GO.Helpers = 59;
    GO.MaxDepth = 6;
    GO.SizeBudget = 400;
    return fuzz::Generator(Seed, GO).generate().Source;
  }();
  return Source;
}

service::Message compileRequest() {
  service::Message Req;
  Req.set("cmd", "compile");
  Req.set("source", serviceSource());
  Req.set("options", "--cse");
  return Req;
}

void handleOrDie(service::Server &Srv, const service::Message &Req) {
  service::Message Resp = Srv.handle(Req);
  if (Resp.getOr("ok") != "1") {
    fprintf(stderr, "bench request failed: %s\n", Resp.getOr("error").c_str());
    abort();
  }
}

/// Requests/sec over \p Reps sequential requests; \p PerRequest runs
/// before each one (outside a warm server it clears the cache).
double requestsPerSec(service::Server &Srv, unsigned Reps,
                      void (*PerRequest)(service::Server &)) {
  service::Message Req = compileRequest();
  double Seconds = 0;
  for (unsigned R = 0; R < Reps; ++R) {
    if (PerRequest)
      PerRequest(Srv);
    auto Start = std::chrono::steady_clock::now();
    handleOrDie(Srv, Req);
    Seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             Start)
                   .count();
  }
  return static_cast<double>(Reps) / Seconds;
}

/// Aggregate requests/sec with \p Clients threads hammering the warm
/// server concurrently.
double concurrentRps(service::Server &Srv, unsigned Clients,
                     unsigned PerClient) {
  service::Message Req = compileRequest();
  std::atomic<bool> Go{false};
  std::vector<std::thread> Pool;
  Pool.reserve(Clients);
  for (unsigned C = 0; C < Clients; ++C)
    Pool.emplace_back([&] {
      while (!Go.load())
        std::this_thread::yield();
      for (unsigned R = 0; R < PerClient; ++R)
        handleOrDie(Srv, Req);
    });
  auto Start = std::chrono::steady_clock::now();
  Go.store(true);
  for (std::thread &Th : Pool)
    Th.join();
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return static_cast<double>(Clients) * PerClient / Seconds;
}

int printTable() {
  unsigned Hw = std::max(1u, std::thread::hardware_concurrency());
  tableHeader("Compile-service throughput (60-function module, --cse)");
  printf("hardware threads: %u; %u cold / %u warm sequential requests\n", Hw,
         ColdReps, WarmReps);

  JsonReport Report("service");
  service::Server Srv({});

  // Cold: every request starts from an empty cache.
  double ColdRps = requestsPerSec(
      Srv, ColdReps, +[](service::Server &S) { S.cache().clear(); });

  // Warm: prime once, then every request is all hits.
  handleOrDie(Srv, compileRequest());
  double WarmRps = requestsPerSec(Srv, WarmReps, nullptr);

  double Ratio = WarmRps / ColdRps;
  printf("%-14s %12s %14s\n", "row", "req/s", "ms/req");
  printf("%-14s %12.1f %14.2f\n", "cold", ColdRps, 1000.0 / ColdRps);
  printf("%-14s %12.1f %14.2f\n", "warm", WarmRps, 1000.0 / WarmRps);
  printf("warm/cold: %.2fx (acceptance: >= 5x)%s\n", Ratio,
         Ratio >= 5.0 ? "" : "  ** BELOW TARGET **");
  Report.add("cold.req_per_sec_x100", static_cast<uint64_t>(ColdRps * 100));
  Report.add("warm.req_per_sec_x100", static_cast<uint64_t>(WarmRps * 100));
  Report.add("warm_over_cold_x100", static_cast<uint64_t>(Ratio * 100));

  // Concurrent clients against the warm cache.
  printf("concurrent warm clients:\n");
  printf("%-14s %12s\n", "clients", "req/s");
  unsigned Prev = 0;
  for (unsigned Clients : {1u, 2u, 4u, Hw}) {
    if (Clients <= Prev)
      continue; // dedup when hardware_concurrency lands on a swept value
    Prev = Clients;
    unsigned PerClient = std::max(8u, 32u / Clients);
    double Rps = concurrentRps(Srv, Clients, PerClient);
    printf("%-14u %12.1f\n", Clients, Rps);
    Report.add("clients" + std::to_string(Clients) + ".req_per_sec_x100",
               static_cast<uint64_t>(Rps * 100));
  }

  Report.write();
  return Ratio >= 5.0 ? 0 : 1;
}

void BM_ServiceCold(benchmark::State &State) {
  service::Server Srv({});
  service::Message Req = compileRequest();
  for (auto _ : State) {
    Srv.cache().clear();
    benchmark::DoNotOptimize(Srv.handle(Req).Fields.size());
  }
}
BENCHMARK(BM_ServiceCold);

void BM_ServiceWarm(benchmark::State &State) {
  service::Server Srv({});
  service::Message Req = compileRequest();
  handleOrDie(Srv, Req); // prime
  for (auto _ : State)
    benchmark::DoNotOptimize(Srv.handle(Req).Fields.size());
}
BENCHMARK(BM_ServiceWarm);

} // namespace

int main(int argc, char **argv) {
  int Status = printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return Status;
}
