//===- bench/bench_testfn.cpp - Experiment T4: the §7 worked example ------===//
//
// Compiles the paper's testfn end to end and reports the artifacts Table 4
// demonstrates: the optional-argument dispatch (instruction cost per
// supplied-argument count), pdl allocation of d and e, heap allocation of
// the returned q, and the sinc$f motion past frotz.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace s1lisp;
using namespace s1lisp::bench;

namespace {

const char *Source =
    "(defun frotz (a b c) (if (eql a b) c a))"
    "(defun testfn (a &optional (b 3.0) (c a))"
    "  (let ((d (+$f a b c)) (e (*$f a b c)))"
    "    (let ((q (sin$f e)))"
    "      (frotz d e (max$f d e))"
    "      q)))";

void printTable() {
  tableHeader("T4 / §7: the testfn worked example");
  JsonReport Report("testfn");
  Compiled P = compileOrDie(Source, fullConfig());

  printf("per supplied-argument-count dispatch (Table 4's four-way branch):\n");
  printf("%10s %14s %16s %12s\n", "args", "instructions", "heap allocs",
         "result");
  const std::vector<std::vector<sexpr::Value>> ArgSets = {
      {fl(0.25)}, {fl(0.25), fl(2.0)}, {fl(0.25), fl(2.0), fl(8.0)}};
  for (const auto &Args : ArgSets) {
    P.VM->resetStats();
    auto R = runOrDie(P, "testfn", Args);
    printf("%10zu %14llu %16llu %12s\n", Args.size(),
           static_cast<unsigned long long>(P.VM->stats().Instructions),
           static_cast<unsigned long long>(P.VM->stats().HeapObjects),
           sexpr::toString(*R.Result).c_str());
    std::string N = std::to_string(Args.size());
    Report.add("instructions." + N + "args", P.VM->stats().Instructions);
    Report.add("heap_objects." + N + "args", P.VM->stats().HeapObjects);
  }
  P.VM->resetStats();
  auto RBad = P.VM->call("testfn", {});
  printf("%10d %14s %16s %12s\n", 0, "-", "-",
         RBad.Ok ? "?" : "arity error");

  // Ablation: pdl numbers off — d and e boxes go to the heap.
  Compiled PNoPdl = compileOrDie(Source, noPdlConfig());
  PNoPdl.VM->resetStats();
  runOrDie(PNoPdl, "testfn", {fl(0.25)});
  printf("heap allocs with pdl off: %llu (vs. above: d/e move to the heap)\n",
         static_cast<unsigned long long>(PNoPdl.VM->stats().HeapObjects));
  Report.add("heap_objects.1args.nopdl", PNoPdl.VM->stats().HeapObjects);
  Report.write();
}

void BM_TestfnOneArg(benchmark::State &State) {
  Compiled P = compileOrDie(Source, fullConfig());
  for (auto _ : State)
    runOrDie(P, "testfn", {fl(0.25)});
}
BENCHMARK(BM_TestfnOneArg);

void BM_TestfnThreeArgs(benchmark::State &State) {
  Compiled P = compileOrDie(Source, fullConfig());
  for (auto _ : State)
    runOrDie(P, "testfn", {fl(0.25), fl(2.0), fl(8.0)});
}
BENCHMARK(BM_TestfnThreeArgs);

void BM_TestfnCompile(benchmark::State &State) {
  for (auto _ : State) {
    ir::Module M;
    auto Out = driver::compileSource(M, Source);
    benchmark::DoNotOptimize(Out.Ok);
  }
}
BENCHMARK(BM_TestfnCompile);

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
