//===- bench/bench_shortcircuit.cpp - Experiment F3: §5 short-circuiting --===//
//
// The §5 derivation claims boolean short-circuiting "falls out" of the
// general lambda transformations and yields code "identical to what you
// would expect from a good compiler". We measure instructions executed
// per evaluation of (if (and a (or b c)) e1 e2) with the source-level
// optimizer on and off, plus closure counts (the thunks must be compiled
// as jumps, not heap closures).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace s1lisp;
using namespace s1lisp::bench;

namespace {

const char *Source =
    "(defun sc (a b c) (if (and a (or b c)) 'e1 'e2))"
    "(defun drive (n)"
    "  (let ((hits 0))"
    "    (dotimes (i n)"
    "      (when (eq (sc (oddp i) (zerop (mod i 3)) (zerop (mod i 5))) 'e1)"
    "        (setq hits (+ hits 1))))"
    "    hits))";

void printTable() {
  tableHeader("F3 / §5: boolean short-circuiting via lambda transformations");
  printf("%-24s %16s %16s %14s\n", "configuration", "instrs/eval",
         "heap allocs/eval", "result");
  struct Cfg {
    const char *Name;
    driver::CompilerOptions Opts;
  } Cfgs[] = {
      {"optimized (paper)", fullConfig()},
      {"unoptimized", noOptConfig()},
  };
  const int N = 3000;
  for (const Cfg &C : Cfgs) {
    Compiled P = compileOrDie(Source, C.Opts);
    P.VM->resetStats();
    auto R = runOrDie(P, "drive", {fx(N)});
    printf("%-24s %16.1f %16.2f %14s\n", C.Name,
           static_cast<double>(P.VM->stats().Instructions) / N,
           static_cast<double>(P.VM->stats().HeapObjects) / N,
           sexpr::toString(*R.Result).c_str());
  }
  printf("Shape check (paper): both versions avoid closures (binding\n"
         "annotation compiles the thunks as jumps even unoptimized), and the\n"
         "lambda transformations shave the remaining dispatch overhead.\n");
}

void runConfig(benchmark::State &State, const driver::CompilerOptions &Opts) {
  Compiled P = compileOrDie(Source, Opts);
  for (auto _ : State)
    runOrDie(P, "drive", {fx(1000)});
  State.counters["instr/eval"] =
      static_cast<double>(P.VM->stats().Instructions) /
      static_cast<double>(State.iterations() * 1000);
}

void BM_ShortCircuitOptimized(benchmark::State &State) {
  runConfig(State, fullConfig());
}
BENCHMARK(BM_ShortCircuitOptimized);

void BM_ShortCircuitUnoptimized(benchmark::State &State) {
  runConfig(State, noOptConfig());
}
BENCHMARK(BM_ShortCircuitUnoptimized);

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
