//===- bench/bench_vm_dispatch.cpp - VM dispatch-engine wall clock --------===//
//
// Times the same compiled programs on both dispatch engines: the legacy
// per-step switch over s1::Instruction and the pre-decoded threaded loop
// (fused operand handlers behind a computed goto where available). The
// engines must agree on every architectural counter — Instructions, Movs,
// SpecialSearchSteps, the PerOpcode histogram — so the wall-clock delta is
// pure dispatch cost, not a semantic change. A third timing row runs the
// threaded engine with detailed per-opcode accounting off, measuring what
// the disabled-stats hot loop costs relative to the instrumented one.
//
// Methodology (see EXPERIMENTS.md): per workload and engine, one warm-up
// call, then the minimum of five timed calls; ns/instruction divides that
// by the engine-reported retired-instruction count.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cinttypes>
#include <cstdlib>

using namespace s1lisp;
using namespace s1lisp::bench;

namespace {

struct Workload {
  const char *Name;
  const char *Source;
  const char *Entry;
  std::vector<sexpr::Value> Args;
};

// Dispatch-bound kernels: a straight-line accumulation loop, call-heavy
// double recursion, and TAK (branchy, deeply recursive, argument
// shuffling) — together they exercise the MOV/ALU/branch/call handlers
// that dominate compiled LISP execution.
const Workload Workloads[] = {
    {"loop",
     "(defun kernel (n)"
     "  (let ((s 0)) (dotimes (i n) (setq s (+ s i))) s))",
     "kernel",
     {fx(60000)}},
    {"fib",
     "(defun kernel (n)"
     "  (if (< n 2) n (+ (kernel (- n 1)) (kernel (- n 2)))))",
     "kernel",
     {fx(22)}},
    {"tak",
     "(defun tak (x y z)"
     "  (if (< y x)"
     "      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))"
     "      z))",
     "tak",
     {fx(18), fx(12), fx(6)}},
};

struct Timed {
  double BestNs = 0;
  vm::MachineStats Stats;
};

/// One warm-up call, then the best of five timed calls on a fresh stats
/// window (counters are per-window, timing is per-call).
Timed timeEngine(const Workload &W, vm::Engine Eng, bool DetailedStats) {
  Compiled P = compileOrDie(W.Source);
  P.VM->setEngine(Eng);
  P.VM->setDetailedStats(DetailedStats);
  runOrDie(P, W.Entry, W.Args);
  Timed T;
  T.BestNs = 1e300;
  for (int Rep = 0; Rep < 5; ++Rep) {
    P.VM->resetStats();
    auto Start = std::chrono::steady_clock::now();
    runOrDie(P, W.Entry, W.Args);
    auto End = std::chrono::steady_clock::now();
    double Ns = std::chrono::duration<double, std::nano>(End - Start).count();
    if (Ns < T.BestNs) {
      T.BestNs = Ns;
      T.Stats = P.VM->stats();
    }
  }
  return T;
}

bool sameCounters(const vm::MachineStats &A, const vm::MachineStats &B) {
  return A.Instructions == B.Instructions && A.Movs == B.Movs &&
         A.Calls == B.Calls && A.TailCalls == B.TailCalls &&
         A.Syscalls == B.Syscalls && A.HeapObjects == B.HeapObjects &&
         A.HeapWordsUsed == B.HeapWordsUsed &&
         A.StackHighWater == B.StackHighWater &&
         A.SpecialSearches == B.SpecialSearches &&
         A.SpecialSearchSteps == B.SpecialSearchSteps &&
         A.PerOpcode == B.PerOpcode;
}

int printTable() {
  tableHeader("VM dispatch: legacy switch vs pre-decoded threaded loop");
  printf("%-8s %14s %14s %14s %9s %14s\n", "kernel", "instructions",
         "legacy ns/i", "threaded ns/i", "speedup", "nostats ns/i");
  JsonReport Report("vm_dispatch");
  bool AllIdentical = true;
  double LegacyTotal = 0, ThreadedTotal = 0, NoStatsTotal = 0;
  uint64_t InsnTotal = 0;
  for (const Workload &W : Workloads) {
    Timed Legacy = timeEngine(W, vm::Engine::Legacy, /*DetailedStats=*/true);
    Timed Threaded = timeEngine(W, vm::Engine::Threaded, /*DetailedStats=*/true);
    Timed NoStats = timeEngine(W, vm::Engine::Threaded, /*DetailedStats=*/false);
    bool Identical = sameCounters(Legacy.Stats, Threaded.Stats);
    AllIdentical = AllIdentical && Identical;
    // With detail off only the histogram and Movs go dark; everything
    // architectural must still match the instrumented run.
    AllIdentical = AllIdentical &&
                   NoStats.Stats.Instructions == Threaded.Stats.Instructions &&
                   NoStats.Stats.SpecialSearchSteps ==
                       Threaded.Stats.SpecialSearchSteps;
    uint64_t Insns = Legacy.Stats.Instructions;
    printf("%-8s %14" PRIu64 " %14.2f %14.2f %8.2fx %14.2f%s\n", W.Name, Insns,
           Legacy.BestNs / Insns, Threaded.BestNs / Insns,
           Legacy.BestNs / Threaded.BestNs, NoStats.BestNs / Insns,
           Identical ? "" : "  COUNTER MISMATCH");
    Report.add(std::string(W.Name) + ".instructions", Insns);
    Report.add(std::string(W.Name) + ".legacy_ns",
               static_cast<uint64_t>(Legacy.BestNs));
    Report.add(std::string(W.Name) + ".threaded_ns",
               static_cast<uint64_t>(Threaded.BestNs));
    Report.add(std::string(W.Name) + ".threaded_nostats_ns",
               static_cast<uint64_t>(NoStats.BestNs));
    Report.add(std::string(W.Name) + ".counters_identical", Identical);
    LegacyTotal += Legacy.BestNs;
    ThreadedTotal += Threaded.BestNs;
    NoStatsTotal += NoStats.BestNs;
    InsnTotal += Insns;
  }
  double Speedup = LegacyTotal / ThreadedTotal;
  printf("overall: %.2fx threaded speedup over legacy "
         "(%.2f -> %.2f ns/instruction; %.2f with stats detail off), "
         "counters %s\n",
         Speedup, LegacyTotal / InsnTotal, ThreadedTotal / InsnTotal,
         NoStatsTotal / InsnTotal, AllIdentical ? "identical" : "DIVERGED");
  Report.add("total.instructions", InsnTotal);
  Report.add("total.legacy_ns", static_cast<uint64_t>(LegacyTotal));
  Report.add("total.threaded_ns", static_cast<uint64_t>(ThreadedTotal));
  Report.add("total.threaded_nostats_ns", static_cast<uint64_t>(NoStatsTotal));
  Report.add("total.speedup_x100", static_cast<uint64_t>(Speedup * 100));
  Report.add("total.counters_identical", AllIdentical);
  Report.write();
  if (!AllIdentical) {
    fprintf(stderr, "FATAL: engines disagree on architectural counters\n");
    return 1;
  }
  return 0;
}

void BM_LegacyDispatch(benchmark::State &State) {
  Compiled P = compileOrDie(Workloads[0].Source);
  P.VM->setEngine(vm::Engine::Legacy);
  for (auto _ : State)
    runOrDie(P, "kernel", {fx(50000)});
}
BENCHMARK(BM_LegacyDispatch);

void BM_ThreadedDispatch(benchmark::State &State) {
  Compiled P = compileOrDie(Workloads[0].Source);
  P.VM->setEngine(vm::Engine::Threaded);
  for (auto _ : State)
    runOrDie(P, "kernel", {fx(50000)});
}
BENCHMARK(BM_ThreadedDispatch);

void BM_ThreadedDispatchNoStats(benchmark::State &State) {
  Compiled P = compileOrDie(Workloads[0].Source);
  P.VM->setEngine(vm::Engine::Threaded);
  P.VM->setDetailedStats(false);
  for (auto _ : State)
    runOrDie(P, "kernel", {fx(50000)});
}
BENCHMARK(BM_ThreadedDispatchNoStats);

} // namespace

int main(int argc, char **argv) {
  int Status = printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return Status;
}
