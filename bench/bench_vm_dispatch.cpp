//===- bench/bench_vm_dispatch.cpp - VM dispatch-engine wall clock --------===//
//
// Times the same compiled programs on all three dispatch engines: the
// legacy per-step switch over s1::Instruction, the pre-decoded threaded
// loop (fused operand handlers behind a computed goto where available),
// and the native template JIT over the same XInsn stream. The engines
// must agree on every architectural counter — Instructions, Movs,
// SpecialSearchSteps, the PerOpcode histogram — so the wall-clock deltas
// are pure dispatch cost, not a semantic change. An extra timing row runs
// the threaded engine with detailed per-opcode accounting off, measuring
// what the disabled-stats hot loop costs relative to the instrumented one.
//
// The "loop" kernel is the dispatch-bound gate: on x86-64 the native tier
// must beat the threaded loop by at least 5x on it or the binary exits
// nonzero (the block compiler's safepoint batching and virtual operand
// stack are what clear that bar; the one-template-per-XInsn translator
// managed ~4x). On hosts without the JIT the native rows are skipped
// loudly.
//
// Methodology (see EXPERIMENTS.md): per workload and engine, one warm-up
// call, then the minimum of five timed calls; ns/instruction divides that
// by the engine-reported retired-instruction count.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "vm/Jit.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cinttypes>
#include <cstdlib>
#include <thread>

using namespace s1lisp;
using namespace s1lisp::bench;

namespace {

struct Workload {
  const char *Name;
  const char *Source;
  const char *Entry;
  std::vector<sexpr::Value> Args;
};

// Dispatch-bound kernels: a straight-line accumulation loop, call-heavy
// double recursion, and TAK (branchy, deeply recursive, argument
// shuffling) — together they exercise the MOV/ALU/branch/call handlers
// that dominate compiled LISP execution.
const Workload Workloads[] = {
    {"loop",
     "(defun kernel (n)"
     "  (let ((s 0)) (dotimes (i n) (setq s (+ s i))) s))",
     "kernel",
     {fx(60000)}},
    {"fib",
     "(defun kernel (n)"
     "  (if (< n 2) n (+ (kernel (- n 1)) (kernel (- n 2)))))",
     "kernel",
     {fx(22)}},
    {"tak",
     "(defun tak (x y z)"
     "  (if (< y x)"
     "      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))"
     "      z))",
     "tak",
     {fx(18), fx(12), fx(6)}},
};

const char *hostArch() {
#if defined(__x86_64__)
  return "x86_64";
#elif defined(__aarch64__)
  return "aarch64";
#else
  return "other";
#endif
}

struct Timed {
  double BestNs = 0;
  vm::MachineStats Stats;
};

/// One warm-up call, then the best of five timed calls on a fresh stats
/// window (counters are per-window, timing is per-call). The warm-up
/// also pays the native tier's one-time template compilation, so the
/// timed calls measure steady-state execution on every engine.
Timed timeEngine(const Workload &W, vm::Engine Eng, bool DetailedStats) {
  Compiled P = compileOrDie(W.Source);
  P.VM->setEngine(Eng);
  P.VM->setDetailedStats(DetailedStats);
  runOrDie(P, W.Entry, W.Args);
  Timed T;
  T.BestNs = 1e300;
  for (int Rep = 0; Rep < 5; ++Rep) {
    P.VM->resetStats();
    auto Start = std::chrono::steady_clock::now();
    runOrDie(P, W.Entry, W.Args);
    auto End = std::chrono::steady_clock::now();
    double Ns = std::chrono::duration<double, std::nano>(End - Start).count();
    if (Ns < T.BestNs) {
      T.BestNs = Ns;
      T.Stats = P.VM->stats();
    }
  }
  return T;
}

bool sameCounters(const vm::MachineStats &A, const vm::MachineStats &B) {
  return A.Instructions == B.Instructions && A.Movs == B.Movs &&
         A.Calls == B.Calls && A.TailCalls == B.TailCalls &&
         A.Syscalls == B.Syscalls && A.HeapObjects == B.HeapObjects &&
         A.HeapWordsUsed == B.HeapWordsUsed &&
         A.StackHighWater == B.StackHighWater &&
         A.SpecialSearches == B.SpecialSearches &&
         A.SpecialSearchSteps == B.SpecialSearchSteps &&
         A.PerOpcode == B.PerOpcode;
}

/// Retired instructions per second from a best-of-five wall time.
uint64_t ips(const Timed &T) {
  return static_cast<uint64_t>(T.Stats.Instructions / (T.BestNs / 1e9));
}

int printTable() {
  const bool HaveJit = vm::jitAvailable();
  tableHeader("VM dispatch: legacy switch vs threaded loop vs native JIT");
  if (!HaveJit)
    printf("NOTE: native tier unavailable on %s: native rows skipped, "
           "the 5x gate does not apply\n",
           hostArch());
  printf("%-8s %14s %12s %12s %12s %9s %9s\n", "kernel", "instructions",
         "legacy ns/i", "thread ns/i", "native ns/i", "t/l", "n/t");
  JsonReport Report("vm_dispatch");
  Report.add("host.arch", hostArch());
  Report.add("host.hardware_concurrency",
             static_cast<uint64_t>(std::thread::hardware_concurrency()));
  Report.add("host.jit_available", static_cast<uint64_t>(HaveJit));
  bool AllIdentical = true;
  double LoopNativeSpeedup = 0;
  double LegacyTotal = 0, ThreadedTotal = 0, NativeTotal = 0, NoStatsTotal = 0;
  uint64_t InsnTotal = 0;
  for (const Workload &W : Workloads) {
    Timed Legacy = timeEngine(W, vm::Engine::Legacy, /*DetailedStats=*/true);
    Timed Threaded = timeEngine(W, vm::Engine::Threaded, /*DetailedStats=*/true);
    Timed Native;
    if (HaveJit)
      Native = timeEngine(W, vm::Engine::Native, /*DetailedStats=*/true);
    Timed NoStats = timeEngine(W, vm::Engine::Threaded, /*DetailedStats=*/false);
    bool Identical = sameCounters(Legacy.Stats, Threaded.Stats) &&
                     (!HaveJit || sameCounters(Legacy.Stats, Native.Stats));
    AllIdentical = AllIdentical && Identical;
    // With detail off only the histogram and Movs go dark; everything
    // architectural must still match the instrumented run.
    AllIdentical = AllIdentical &&
                   NoStats.Stats.Instructions == Threaded.Stats.Instructions &&
                   NoStats.Stats.SpecialSearchSteps ==
                       Threaded.Stats.SpecialSearchSteps;
    uint64_t Insns = Legacy.Stats.Instructions;
    double NativeNsPerI = HaveJit ? Native.BestNs / Insns : 0;
    double NativeOverThreaded = HaveJit ? Threaded.BestNs / Native.BestNs : 0;
    printf("%-8s %14" PRIu64 " %12.2f %12.2f %12.2f %8.2fx %8.2fx%s\n", W.Name,
           Insns, Legacy.BestNs / Insns, Threaded.BestNs / Insns, NativeNsPerI,
           Legacy.BestNs / Threaded.BestNs, NativeOverThreaded,
           Identical ? "" : "  COUNTER MISMATCH");
    Report.add(std::string(W.Name) + ".instructions", Insns);
    Report.add(std::string(W.Name) + ".legacy_ns",
               static_cast<uint64_t>(Legacy.BestNs));
    Report.add(std::string(W.Name) + ".threaded_ns",
               static_cast<uint64_t>(Threaded.BestNs));
    Report.add(std::string(W.Name) + ".threaded_nostats_ns",
               static_cast<uint64_t>(NoStats.BestNs));
    Report.add(std::string(W.Name) + ".legacy_ips", ips(Legacy));
    Report.add(std::string(W.Name) + ".threaded_ips", ips(Threaded));
    Report.add(std::string(W.Name) + ".threaded_speedup_x100",
               static_cast<uint64_t>(Legacy.BestNs / Threaded.BestNs * 100));
    if (HaveJit) {
      Report.add(std::string(W.Name) + ".native_ns",
                 static_cast<uint64_t>(Native.BestNs));
      Report.add(std::string(W.Name) + ".native_ips", ips(Native));
      Report.add(std::string(W.Name) + ".native_speedup_x100",
                 static_cast<uint64_t>(NativeOverThreaded * 100));
    }
    Report.add(std::string(W.Name) + ".counters_identical", Identical);
    if (std::string(W.Name) == "loop")
      LoopNativeSpeedup = NativeOverThreaded;
    LegacyTotal += Legacy.BestNs;
    ThreadedTotal += Threaded.BestNs;
    NativeTotal += Native.BestNs;
    NoStatsTotal += NoStats.BestNs;
    InsnTotal += Insns;
  }
  double Speedup = LegacyTotal / ThreadedTotal;
  double NativeSpeedup = HaveJit ? ThreadedTotal / NativeTotal : 0;
  printf("overall: %.2fx threaded over legacy, %.2fx native over threaded "
         "(%.2f -> %.2f -> %.2f ns/instruction; %.2f with stats detail off), "
         "counters %s\n",
         Speedup, NativeSpeedup, LegacyTotal / InsnTotal,
         ThreadedTotal / InsnTotal, HaveJit ? NativeTotal / InsnTotal : 0.0,
         NoStatsTotal / InsnTotal, AllIdentical ? "identical" : "DIVERGED");
  Report.add("total.instructions", InsnTotal);
  Report.add("total.legacy_ns", static_cast<uint64_t>(LegacyTotal));
  Report.add("total.threaded_ns", static_cast<uint64_t>(ThreadedTotal));
  Report.add("total.threaded_nostats_ns", static_cast<uint64_t>(NoStatsTotal));
  Report.add("total.speedup_x100", static_cast<uint64_t>(Speedup * 100));
  if (HaveJit) {
    Report.add("total.native_ns", static_cast<uint64_t>(NativeTotal));
    Report.add("total.native_speedup_x100",
               static_cast<uint64_t>(NativeSpeedup * 100));
  }
  Report.add("total.counters_identical", AllIdentical);
  Report.write();
  if (!AllIdentical) {
    fprintf(stderr, "FATAL: engines disagree on architectural counters\n");
    return 1;
  }
  if (HaveJit && LoopNativeSpeedup < 5.0) {
    fprintf(stderr,
            "FATAL: native tier is only %.2fx over threaded on the "
            "dispatch-bound loop kernel (expected >= 5x)\n",
            LoopNativeSpeedup);
    return 1;
  }
  return 0;
}

/// The google-benchmark rows below reset stats every iteration to dodge
/// the fuel cap, which also discards the counters that would prove the
/// engines timed the same work. So the cross-engine agreement is
/// asserted here ONCE per run, on exactly the workload the timing loops
/// replay: if any engine retires a different instruction stream for it,
/// the binary fails before a single timing row is reported, and the
/// per-iteration resets can't silently compare different workloads.
int verifyTimedWorkloadAgreement() {
  const char *Src = Workloads[0].Source;
  std::vector<sexpr::Value> Args = {fx(50000)};
  Compiled Legacy = compileOrDie(Src);
  Legacy.VM->setEngine(vm::Engine::Legacy);
  runOrDie(Legacy, "kernel", Args);
  Compiled Threaded = compileOrDie(Src);
  Threaded.VM->setEngine(vm::Engine::Threaded);
  runOrDie(Threaded, "kernel", Args);
  bool Agree = sameCounters(Legacy.VM->stats(), Threaded.VM->stats());
  if (vm::jitAvailable()) {
    Compiled Native = compileOrDie(Src);
    Native.VM->setEngine(vm::Engine::Native);
    runOrDie(Native, "kernel", Args);
    Agree = Agree && sameCounters(Legacy.VM->stats(), Native.VM->stats());
  }
  if (!Agree) {
    fprintf(stderr, "FATAL: engines disagree on the retired instruction "
                    "stream of the timed kernel; the BM_* rows would "
                    "compare different workloads\n");
    return 1;
  }
  return 0;
}

// Each timing iteration gets a fresh stats window: the fuel budget is a
// cap on Stats.Instructions, and the faster engines retire enough
// instructions across google-benchmark's iteration count to exhaust it
// mid-run otherwise. Cross-engine counter agreement for this kernel is
// asserted once per run by verifyTimedWorkloadAgreement(), not per
// iteration.
void BM_LegacyDispatch(benchmark::State &State) {
  Compiled P = compileOrDie(Workloads[0].Source);
  P.VM->setEngine(vm::Engine::Legacy);
  for (auto _ : State) {
    P.VM->resetStats();
    runOrDie(P, "kernel", {fx(50000)});
  }
}
BENCHMARK(BM_LegacyDispatch);

void BM_ThreadedDispatch(benchmark::State &State) {
  Compiled P = compileOrDie(Workloads[0].Source);
  P.VM->setEngine(vm::Engine::Threaded);
  for (auto _ : State) {
    P.VM->resetStats();
    runOrDie(P, "kernel", {fx(50000)});
  }
}
BENCHMARK(BM_ThreadedDispatch);

void BM_ThreadedDispatchNoStats(benchmark::State &State) {
  Compiled P = compileOrDie(Workloads[0].Source);
  P.VM->setEngine(vm::Engine::Threaded);
  P.VM->setDetailedStats(false);
  for (auto _ : State) {
    P.VM->resetStats();
    runOrDie(P, "kernel", {fx(50000)});
  }
}
BENCHMARK(BM_ThreadedDispatchNoStats);

void BM_NativeDispatch(benchmark::State &State) {
  if (!vm::jitAvailable()) {
    State.SkipWithError("native tier unavailable on this host");
    return;
  }
  Compiled P = compileOrDie(Workloads[0].Source);
  P.VM->setEngine(vm::Engine::Native);
  for (auto _ : State) {
    P.VM->resetStats();
    runOrDie(P, "kernel", {fx(50000)});
  }
}
BENCHMARK(BM_NativeDispatch);

} // namespace

int main(int argc, char **argv) {
  int Status = printTable();
  Status |= verifyTimedWorkloadAgreement();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return Status;
}
