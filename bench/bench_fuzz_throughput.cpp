//===- bench/bench_fuzz_throughput.cpp - Parallel oracle throughput -------===//
//
// Measures the differential-fuzz oracle end to end: seeded generation,
// one reference interpretation, then a compile-and-run of the full
// ablation matrix — serial versus fanned out over worker threads — and
// reports simulator machines per second (each (config, grid point) pair
// boots a fresh machine). On a single-core host the parallel row
// degenerates to serial throughput plus scheduling overhead; the
// interesting number there is still machines/sec, which CI tracks across
// revisions.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <thread>

using namespace s1lisp;
using namespace s1lisp::bench;

namespace {

constexpr uint32_t FirstSeed = 5000;
constexpr unsigned Budget = 12;
/// Minimum acceptable jobs=4 speedup over serial on a >= 4-thread host.
constexpr double ScalingFloor = 2.0;

struct Sweep {
  double Ns = 0;
  uint64_t Rows = 0; ///< fresh machines booted (config x grid point)
  unsigned Divergent = 0;
};

Sweep runSweep(unsigned Jobs, vm::Engine Eng) {
  fuzz::OracleOptions O;
  O.Jobs = Jobs;
  O.Engine = Eng;
  Sweep S;
  auto Start = std::chrono::steady_clock::now();
  for (unsigned I = 0; I < Budget; ++I) {
    fuzz::Generator G(FirstSeed + I, {});
    fuzz::GeneratedProgram P = G.generate();
    fuzz::CheckResult R = fuzz::checkProgram(P, O);
    S.Rows += R.RowsCompared;
    if (R.St == fuzz::CheckResult::Status::Diverged)
      ++S.Divergent;
  }
  auto End = std::chrono::steady_clock::now();
  S.Ns = std::chrono::duration<double, std::nano>(End - Start).count();
  return S;
}

int printTable() {
  unsigned Hw = std::max(1u, std::thread::hardware_concurrency());
  tableHeader("Differential-fuzz oracle throughput (ablation-matrix sweep)");
  printf("hardware threads: %u; %u seeded programs per sweep\n", Hw, Budget);
  printf("%-22s %6s %10s %12s %14s\n", "sweep", "jobs", "rows",
         "machines/s", "wall ms");
  JsonReport Report("fuzz_throughput");
  // Job sweep {1, 2, 4, hardware_concurrency}, one row set per job count,
  // deduplicated when hardware_concurrency lands on a swept value. The
  // legacy-engine row pins the decode-per-instruction baseline at 1 job.
  struct Row {
    std::string Name;
    unsigned Jobs;
    vm::Engine Eng;
  };
  std::vector<Row> Rows;
  Rows.push_back({"serial/threaded", 1, vm::Engine::Threaded});
  unsigned PrevJ = 1, MaxJ = 1;
  for (unsigned J : {2u, 4u, Hw}) {
    if (J <= PrevJ)
      continue;
    Rows.push_back({"parallel" + std::to_string(J) + "/threaded", J,
                    vm::Engine::Threaded});
    PrevJ = MaxJ = J;
  }
  Rows.push_back({"serial/legacy", 1, vm::Engine::Legacy});
  double SerialNs = 0, ParallelNs = 0, Jobs4Ns = 0;
  bool Clean = true;
  for (const Row &R : Rows) {
    Sweep S = runSweep(R.Jobs, R.Eng);
    Clean = Clean && S.Divergent == 0;
    double PerSec = S.Rows / (S.Ns / 1e9);
    printf("%-22s %6u %10" PRIu64 " %12.0f %14.1f%s\n", R.Name.c_str(), R.Jobs,
           S.Rows, PerSec, S.Ns / 1e6, S.Divergent ? "  DIVERGED" : "");
    std::string Prefix = R.Name;
    for (char &C : Prefix)
      if (C == '/')
        C = '_';
    Report.add(Prefix + ".jobs", R.Jobs);
    Report.add(Prefix + ".rows", S.Rows);
    Report.add(Prefix + ".machines_per_sec", static_cast<uint64_t>(PerSec));
    Report.add(Prefix + ".wall_ns", static_cast<uint64_t>(S.Ns));
    Report.add(Prefix + ".divergent", S.Divergent);
    if (R.Jobs == 1 && R.Eng == vm::Engine::Threaded)
      SerialNs = S.Ns;
    if (R.Jobs == MaxJ && R.Jobs > 1)
      ParallelNs = S.Ns;
    if (R.Jobs == 4 && R.Eng == vm::Engine::Threaded)
      Jobs4Ns = S.Ns;
  }
  int Status = 0;
  if (ParallelNs > 0) {
    double Scaling = SerialNs / ParallelNs;
    printf("parallel scaling: %.2fx over serial at %u jobs\n", Scaling, MaxJ);
    Report.add("scaling_x100", static_cast<uint64_t>(Scaling * 100));
    // Scaling floor at 4 jobs: the oracle's configs are independent
    // (private module clones), so anything below 2x on a >= 4-thread
    // host is a shared-state bug, not noise. Single-core hosts skip.
    if (Hw >= 4 && Jobs4Ns > 0) {
      double Scaling4 = SerialNs / Jobs4Ns;
      Report.add("scaling_floor_checked", 1);
      if (Scaling4 < ScalingFloor) {
        fprintf(stderr,
                "FATAL: oracle scaling %.2fx at 4 jobs is below the %.1fx "
                "floor on a %u-thread host\n",
                Scaling4, ScalingFloor, Hw);
        Status = 1;
      }
    } else {
      Report.add("scaling_floor_checked", 0);
      printf("scaling floor skipped: %u hardware thread(s) < 4\n", Hw);
    }
  }
  Report.write();
  if (!Clean) {
    fprintf(stderr, "FATAL: sweep reported divergences\n");
    return 1;
  }
  return Status;
}

void BM_OracleSerial(benchmark::State &State) {
  fuzz::Generator G(FirstSeed, {});
  fuzz::GeneratedProgram P = G.generate();
  fuzz::OracleOptions O;
  for (auto _ : State)
    benchmark::DoNotOptimize(fuzz::checkProgram(P, O).RowsCompared);
}
BENCHMARK(BM_OracleSerial);

void BM_OracleParallel(benchmark::State &State) {
  fuzz::Generator G(FirstSeed, {});
  fuzz::GeneratedProgram P = G.generate();
  fuzz::OracleOptions O;
  O.Jobs = std::max(1u, std::thread::hardware_concurrency());
  for (auto _ : State)
    benchmark::DoNotOptimize(fuzz::checkProgram(P, O).RowsCompared);
}
BENCHMARK(BM_OracleParallel);

} // namespace

int main(int argc, char **argv) {
  int Status = printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return Status;
}
