//===- bench/bench_compile_throughput.cpp - Compiler-side throughput ------===//
//
// Measures the compiler itself (optimize + CSE + codegen units + link)
// over one generated 100-function module, reporting forms per second:
//
//  * -O0 versus -O1+CSE at jobs=1 — the cost of the §5 optimizer;
//  * the per-function pipeline at jobs 1/2/4/hw — parallel scaling
//    (degenerate on a single-core host, where every parallel row is
//    serial throughput plus scheduling overhead);
//  * the allocator/analysis ablation at jobs=1 — heap nodes + full
//    per-pass re-analysis (the recompute-the-world baseline), arena
//    nodes + full re-analysis, and arena + incremental re-analysis
//    (the default).
//
// The frontend runs once; every timed repetition deep-clones the
// converted module outside the timer, so the numbers isolate the
// middle- and back-end work the PR's throughput changes target.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "fuzz/Generator.h"
#include "support/Arena.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cinttypes>
#include <thread>
#include <vector>

using namespace s1lisp;
using namespace s1lisp::bench;

namespace {

constexpr uint32_t Seed = 7000;
constexpr unsigned Helpers = 99; ///< +1 entry defun = 100 functions
constexpr unsigned Reps = 12;
/// Minimum acceptable jobs=4 speedup over serial on a >= 4-thread host.
constexpr double ScalingFloor = 2.0;

std::string generateSource() {
  fuzz::GenOptions GO;
  GO.Helpers = Helpers;
  // Larger bodies than the fuzz default: the baseline optimizer's
  // per-query effect/complexity walks are linear in the body, so the
  // incremental-analysis delta only shows on non-trivial trees.
  GO.MaxDepth = 6;
  GO.SizeBudget = 400;
  fuzz::Generator G(Seed, GO);
  return G.generate().Source;
}

/// Converts once; the timed loop clones from this.
ir::Module &baseModule() {
  static ir::Module BaseM;
  static bool Done = false;
  if (!Done) {
    DiagEngine Diags;
    if (!frontend::convertSource(BaseM, generateSource(), Diags)) {
      fprintf(stderr, "bench module failed to convert: %s\n",
              Diags.str().c_str());
      abort();
    }
    Done = true;
  }
  return BaseM;
}

driver::CompilerOptions optConfig(unsigned Jobs, bool Incremental) {
  driver::CompilerOptions O;
  O.Cse = true;
  O.Jobs = Jobs;
  O.Opt.IncrementalAnalysis = Incremental;
  return O;
}

/// Best-of-Reps wall time for one full-module compile. The minimum is the
/// least noisy estimator here: every repetition does identical work, so
/// anything above the minimum is scheduler/cache interference.
double timeRowNs(const driver::CompilerOptions &Opts) {
  const ir::Module &BaseM = baseModule();
  double Best = 0;
  for (unsigned R = 0; R <= Reps; ++R) {
    ir::Module M;
    BaseM.clone(M);
    auto Start = std::chrono::steady_clock::now();
    driver::CompileOutcome Out = driver::compileModule(M, Opts);
    auto End = std::chrono::steady_clock::now();
    if (!Out.Ok) {
      fprintf(stderr, "bench compile failed: %s\n", Out.Error.c_str());
      abort();
    }
    double Ns = std::chrono::duration<double, std::nano>(End - Start).count();
    if (R > 0 && (Best == 0 || Ns < Best)) // first rep is warm-up
      Best = Ns;
  }
  return Best;
}

/// Best-of-Reps wall time for the source-level optimizer (meta-evaluation
/// + CSE) alone over every function of the module. The allocator/analysis
/// ablation only touches this phase — node allocation during rewrites and
/// the re-analysis after each rewrite — so timing it in isolation keeps
/// the codegen back end (identical across the ablation rows) from
/// drowning the delta in scheduling noise.
double timeOptNs(bool Incremental) {
  const ir::Module &BaseM = baseModule();
  opt::OptOptions OO;
  OO.IncrementalAnalysis = Incremental;
  opt::CseOptions CO;
  double Best = 0;
  for (unsigned R = 0; R <= Reps; ++R) {
    ir::Module M;
    BaseM.clone(M);
    auto Start = std::chrono::steady_clock::now();
    for (auto &F : M.functions()) {
      opt::metaEvaluate(*F, OO, nullptr);
      opt::eliminateCommonSubexpressions(*F, CO, nullptr);
    }
    auto End = std::chrono::steady_clock::now();
    double Ns = std::chrono::duration<double, std::nano>(End - Start).count();
    if (R > 0 && (Best == 0 || Ns < Best)) // first rep is warm-up
      Best = Ns;
  }
  return Best;
}

int printTable() {
  unsigned Hw = std::max(1u, std::thread::hardware_concurrency());
  const size_t Forms = baseModule().functions().size();
  tableHeader("Compiler throughput (100-function module, frontend excluded)");
  printf("hardware threads: %u; %zu forms per compile, best of %u reps\n", Hw,
         Forms, Reps);
  printf("%-18s %6s %12s %14s\n", "row", "jobs", "forms/s", "wall ms");

  JsonReport Report("compile_throughput");
  struct Row {
    std::string Name;
    driver::CompilerOptions Opts;
  };
  std::vector<Row> Rows;
  {
    driver::CompilerOptions O0;
    O0.Optimize = false;
    Rows.push_back({"o0_serial", O0});
  }
  Rows.push_back({"o1_jobs1", optConfig(1, true)});
  unsigned PrevJ = 1;
  for (unsigned J : {2u, 4u, Hw}) {
    if (J <= PrevJ)
      continue; // dedup when hardware_concurrency lands on a swept value
    Rows.push_back({"o1_jobs" + std::to_string(J), optConfig(J, true)});
    PrevJ = J;
  }
  int Status = 0;
  double Jobs1Ns = 0, Jobs4Ns = 0;
  for (const Row &R : Rows) {
    double Ns = timeRowNs(R.Opts);
    double PerSec = static_cast<double>(Forms) / (Ns / 1e9);
    printf("%-18s %6u %12.0f %14.1f\n", R.Name.c_str(), R.Opts.Jobs, PerSec,
           Ns / 1e6);
    Report.add(R.Name + ".jobs", R.Opts.Jobs);
    Report.add(R.Name + ".forms_per_sec", static_cast<uint64_t>(PerSec));
    Report.add(R.Name + ".wall_ns", static_cast<uint64_t>(Ns));
    if (R.Name == "o1_jobs1")
      Jobs1Ns = Ns;
    if (R.Name == "o1_jobs4")
      Jobs4Ns = Ns;
  }
  if (Jobs4Ns > 0) {
    double Scaling = Jobs1Ns / Jobs4Ns;
    printf("parallel scaling: %.2fx over serial at 4 jobs\n", Scaling);
    Report.add("parallel_scaling_x100", static_cast<uint64_t>(Scaling * 100));
    // Scaling floor: negative scaling is a bug, not a data point. Only a
    // host with >= 4 hardware threads can meaningfully run 4 jobs, so
    // single-core CI hosts skip (loudly) rather than fail.
    if (Hw >= 4) {
      Report.add("scaling_floor_checked", 1);
      if (Scaling < ScalingFloor) {
        fprintf(stderr,
                "FATAL: parallel scaling %.2fx at 4 jobs is below the %.1fx "
                "floor on a %u-thread host\n",
                Scaling, ScalingFloor, Hw);
        Status = 1;
      }
    } else {
      Report.add("scaling_floor_checked", 0);
      printf("scaling floor skipped: %u hardware thread(s) < 4\n", Hw);
    }
  }

  // Allocator × analysis ablation over the optimizer phase alone, jobs=1.
  printf("optimizer-phase ablation (meta-eval + CSE only):\n");
  struct AblRow {
    std::string Name;
    bool HeapNodes;
    bool Incremental;
  };
  AblRow AblRows[] = {
      {"heap_full_j1", true, false},
      {"arena_full_j1", false, false},
      {"arena_incr_j1", false, true},
  };
  double HeapFullNs = 0, ArenaIncrNs = 0;
  for (const AblRow &R : AblRows) {
    if (R.HeapNodes)
      NodeArena::setBumpEnabled(false);
    double Ns = timeOptNs(R.Incremental);
    if (R.HeapNodes)
      NodeArena::setBumpEnabled(true);
    double PerSec = static_cast<double>(Forms) / (Ns / 1e9);
    printf("%-18s %6u %12.0f %14.1f\n", R.Name.c_str(), 1u, PerSec, Ns / 1e6);
    Report.add(R.Name + ".jobs", 1);
    Report.add(R.Name + ".forms_per_sec", static_cast<uint64_t>(PerSec));
    Report.add(R.Name + ".wall_ns", static_cast<uint64_t>(Ns));
    if (R.Name == "heap_full_j1")
      HeapFullNs = Ns;
    if (R.Name == "arena_incr_j1")
      ArenaIncrNs = Ns;
  }
  if (ArenaIncrNs > 0) {
    double Speedup = HeapFullNs / ArenaIncrNs;
    printf("arena+incremental: %.2fx over heap+full at 1 job\n", Speedup);
    Report.add("arena_incremental_speedup_x100",
               static_cast<uint64_t>(Speedup * 100));
  }
  Report.write();
  return Status;
}

void BM_CompileSerial(benchmark::State &State) {
  const ir::Module &BaseM = baseModule();
  driver::CompilerOptions Opts = optConfig(1, true);
  for (auto _ : State) {
    ir::Module M;
    BaseM.clone(M);
    benchmark::DoNotOptimize(driver::compileModule(M, Opts).Ok);
  }
}
BENCHMARK(BM_CompileSerial);

void BM_CompileParallel(benchmark::State &State) {
  const ir::Module &BaseM = baseModule();
  driver::CompilerOptions Opts =
      optConfig(std::max(1u, std::thread::hardware_concurrency()), true);
  for (auto _ : State) {
    ir::Module M;
    BaseM.clone(M);
    benchmark::DoNotOptimize(driver::compileModule(M, Opts).Ok);
  }
}
BENCHMARK(BM_CompileParallel);

} // namespace

int main(int argc, char **argv) {
  int Status = printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return Status;
}
