//===- bench/bench_gc.cpp - Generational collector cost curves ------------===//
//
// Drives the examples/gc/ workloads through the interpreter's generational
// heap at millions of conses and reports the three numbers that describe a
// collector: allocation rate (how fast the mutator conses with the
// collector disabled), pause distribution (the histogram and maximum the
// heap records per collection), and the mutator-throughput-vs-heap-budget
// curve (how much throughput each halving of the budget costs). Every run
// checks its workload's closed-form checksum, so a collector bug shows up
// as a wrong answer here before it shows up as a slow one.
//
// Table rows land in BENCH_gc.json for the CI artifact diff; the
// google-benchmark loops at the end give wall-clock numbers for the same
// shapes at reduced sizes.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cinttypes>
#include <fstream>
#include <sstream>

using namespace s1lisp;
using namespace s1lisp::bench;

namespace {

std::string slurp(const char *Name) {
  std::ifstream In(std::string(S1LISP_EXAMPLES_DIR) + "/gc/" + Name);
  std::stringstream Buf;
  Buf << In.rdbuf();
  if (Buf.str().empty()) {
    fprintf(stderr, "cannot read examples/gc/%s\n", Name);
    abort();
  }
  return Buf.str();
}

int64_t sumSquares(int64_t N) { return N * (N - 1) * (2 * N - 1) / 6; }

struct Workload {
  const char *Name;
  const char *File;
  const char *Fn;
  int64_t N;    ///< size argument for the table runs
  int Reps;     ///< calls per measured run
  int64_t (*Golden)(int64_t N);
};

// Sizes are chosen so the suite conses millions of cells per table run:
// append-reverse alone allocates ~n^3 cells (every round copies the whole
// accumulator twice), map-chain ~8n per call, assoc 2n per call plus an
// O(n^2) probe phase over promoted cells.
const Workload Workloads[] = {
    {"assoc", "assoc.lisp", "alist-workload", 6000, 2, sumSquares},
    {"append-reverse", "append-reverse.lisp", "append-reverse-workload", 150,
     1, [](int64_t N) { return N * (N * (N + 1) / 2); }},
    {"map-chain", "map-chain.lisp", "map-chain-workload", 30000, 4,
     [](int64_t N) { return 3 * (sumSquares(N) + N); }},
};

struct Measured {
  double Sec = 0;
  uint64_t Conses = 0;
  sexpr::GcStats Gc;
};

/// Runs one workload Reps times on a fresh interpreter configured with the
/// given heap budget (0 = collector off), verifying the checksum each call.
Measured runWorkload(const Workload &W, size_t BudgetBytes) {
  ir::Module M;
  DiagEngine Diags;
  std::string Src = slurp(W.File);
  if (!frontend::convertSource(M, Src, Diags)) {
    fprintf(stderr, "%s did not convert: %s\n", W.File, Diags.str().c_str());
    abort();
  }
  interp::Interpreter I(M);
  I.setFuel(4'000'000'000ull);
  if (BudgetBytes)
    I.setHeapBudget(BudgetBytes);
  int64_t Want = W.Golden(W.N);
  std::vector<interp::RtValue> Args = {
      interp::RtValue::data(sexpr::Value::fixnum(W.N))};

  auto Start = std::chrono::steady_clock::now();
  for (int Rep = 0; Rep < W.Reps; ++Rep) {
    auto R = I.call(W.Fn, Args);
    if (!R.Ok) {
      fprintf(stderr, "%s failed: %s\n", W.Name, R.Error.c_str());
      abort();
    }
    if (R.Value.str() != std::to_string(Want)) {
      fprintf(stderr, "%s checksum mismatch: want %lld got %s\n", W.Name,
              static_cast<long long>(Want), R.Value.str().c_str());
      abort();
    }
  }
  auto End = std::chrono::steady_clock::now();

  Measured Out;
  Out.Sec = std::chrono::duration<double>(End - Start).count();
  Out.Conses = I.heap().consCount();
  Out.Gc = I.gcStats();
  return Out;
}

uint64_t consPerSec(const Measured &M) {
  return M.Sec > 0 ? static_cast<uint64_t>(M.Conses / M.Sec) : 0;
}

int printTable() {
  JsonReport Report("gc");

  // --- Allocation rate and GC overhead per workload ----------------------
  tableHeader("GC workloads: allocation rate and collection overhead");
  printf("%-15s %12s %13s %13s %8s %7s %12s %10s\n", "workload", "conses",
         "off cons/s", "gc cons/s", "minors", "majors", "pause-ns", "max-ns");
  sexpr::GcStats Pauses; // pause histogram aggregated across every GC run
  auto Fold = [&Pauses](const sexpr::GcStats &G) {
    Pauses.PauseNsTotal += G.PauseNsTotal;
    Pauses.PauseNsMax = std::max(Pauses.PauseNsMax, G.PauseNsMax);
    Pauses.Collections += G.Collections;
    Pauses.MajorCollections += G.MajorCollections;
    for (size_t I = 0; I < Pauses.PauseBuckets.size(); ++I)
      Pauses.PauseBuckets[I] += G.PauseBuckets[I];
  };
  constexpr size_t TableBudget = 8u << 20; // 8 MiB: comfortable for all three
  for (const Workload &W : Workloads) {
    Measured Off = runWorkload(W, 0);
    Measured On = runWorkload(W, TableBudget);
    Fold(On.Gc);
    printf("%-15s %12" PRIu64 " %13" PRIu64 " %13" PRIu64 " %8" PRIu64
           " %7" PRIu64 " %12" PRIu64 " %10" PRIu64 "\n",
           W.Name, On.Conses, consPerSec(Off), consPerSec(On),
           On.Gc.Collections, On.Gc.MajorCollections, On.Gc.PauseNsTotal,
           On.Gc.PauseNsMax);
    std::string P(W.Name);
    Report.add(P + ".conses", On.Conses);
    Report.add(P + ".alloc_rate_gc_off", consPerSec(Off));
    Report.add(P + ".alloc_rate_gc_on", consPerSec(On));
    Report.add(P + ".minor_collections", On.Gc.Collections);
    Report.add(P + ".major_collections", On.Gc.MajorCollections);
    Report.add(P + ".cells_promoted", On.Gc.CellsPromoted);
    Report.add(P + ".cells_swept", On.Gc.CellsSwept);
    Report.add(P + ".pause_ns_total", On.Gc.PauseNsTotal);
    Report.add(P + ".pause_ns_max", On.Gc.PauseNsMax);
  }

  // --- Pause distribution -------------------------------------------------
  tableHeader("Pause distribution across all collected runs");
  const char *BucketNames[] = {"lt_10us", "lt_100us", "lt_1ms", "ge_1ms"};
  uint64_t Total = Pauses.Collections + Pauses.MajorCollections;
  printf("%" PRIu64 " pauses (%" PRIu64 " minor, %" PRIu64 " major), "
         "max %" PRIu64 " ns, mean %" PRIu64 " ns\n",
         Total, Pauses.Collections, Pauses.MajorCollections, Pauses.PauseNsMax,
         Total ? Pauses.PauseNsTotal / Total : 0);
  for (size_t I = 0; I < Pauses.PauseBuckets.size(); ++I) {
    printf("  %-8s %10" PRIu64 "\n", BucketNames[I], Pauses.PauseBuckets[I]);
    Report.add(std::string("pause.bucket_") + BucketNames[I],
               Pauses.PauseBuckets[I]);
  }
  Report.add("pause.count", Total);
  Report.add("pause.ns_max", Pauses.PauseNsMax);
  Report.add("pause.ns_mean", Total ? Pauses.PauseNsTotal / Total : 0);

  // --- Mutator throughput vs heap budget ----------------------------------
  // The churn workload is the budget-sensitive one: live data grows to n^2
  // cells while garbage is ~n^3, so small budgets collect constantly.
  tableHeader("Mutator throughput vs heap budget (append-reverse churn)");
  printf("%10s %13s %8s %7s %12s\n", "budget", "cons/s", "minors", "majors",
         "pause-ns");
  const Workload &Churn = Workloads[1];
  for (size_t BudgetMb : {1, 2, 4, 8, 16, 32}) {
    Measured M = runWorkload(Churn, BudgetMb << 20);
    Fold(M.Gc);
    printf("%8zuMB %13" PRIu64 " %8" PRIu64 " %7" PRIu64 " %12" PRIu64 "\n",
           BudgetMb, consPerSec(M), M.Gc.Collections, M.Gc.MajorCollections,
           M.Gc.PauseNsTotal);
    std::string P = "curve.budget_" + std::to_string(BudgetMb) + "mb";
    Report.add(P + ".cons_per_sec", consPerSec(M));
    Report.add(P + ".minor_collections", M.Gc.Collections);
    Report.add(P + ".major_collections", M.Gc.MajorCollections);
    Report.add(P + ".pause_ns_total", M.Gc.PauseNsTotal);
  }

  Report.write();
  return 0;
}

//===----------------------------------------------------------------------===//
// Wall-clock loops at reduced sizes.
//===----------------------------------------------------------------------===//

void benchWorkload(benchmark::State &State, const Workload &W, int64_t N,
                   size_t BudgetBytes) {
  ir::Module M;
  DiagEngine Diags;
  std::string Src = slurp(W.File);
  if (!frontend::convertSource(M, Src, Diags))
    abort();
  interp::Interpreter I(M);
  I.setFuel(4'000'000'000ull);
  if (BudgetBytes)
    I.setHeapBudget(BudgetBytes);
  std::vector<interp::RtValue> Args = {
      interp::RtValue::data(sexpr::Value::fixnum(N))};
  for (auto _ : State) {
    auto R = I.call(W.Fn, Args);
    if (!R.Ok)
      abort();
    benchmark::DoNotOptimize(R.Value);
  }
}

void BM_MapChainGcOff(benchmark::State &State) {
  benchWorkload(State, Workloads[2], 4000, 0);
}
BENCHMARK(BM_MapChainGcOff);

void BM_MapChainBudget4M(benchmark::State &State) {
  benchWorkload(State, Workloads[2], 4000, 4u << 20);
}
BENCHMARK(BM_MapChainBudget4M);

void BM_AppendReverseGcOff(benchmark::State &State) {
  benchWorkload(State, Workloads[1], 48, 0);
}
BENCHMARK(BM_AppendReverseGcOff);

void BM_AppendReverseBudget4M(benchmark::State &State) {
  benchWorkload(State, Workloads[1], 48, 4u << 20);
}
BENCHMARK(BM_AppendReverseBudget4M);

} // namespace

int main(int argc, char **argv) {
  int Status = printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return Status;
}
