//===- bench/bench_phases.cpp - Experiment T1: the Table 1 pipeline -------===//
//
// Table 1 is the phase structure of the compiler. This harness walks a
// program corpus through the pipeline phase by phase, timing each one and
// reporting per-phase tree statistics — the architectural table, with
// measurements attached.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/Analysis.h"
#include "annotate/Annotate.h"
#include "opt/MetaEval.h"
#include "tnbind/TnBind.h"

#include <benchmark/benchmark.h>
#include <chrono>

using namespace s1lisp;
using namespace s1lisp::bench;

namespace {

const char *Corpus =
    "(defun quadratic (a b c)"
    "  (let ((d (- (* b b) (* 4.0 a c))))"
    "    (cond ((< d 0) '()) ((= d 0) (list (/ (- b) (* 2.0 a))))"
    "          (t (let ((two-a (* 2.0 a)) (sd (sqrt d)))"
    "               (list (/ (+ (- b) sd) two-a) (/ (- (- b) sd) two-a)))))))"
    "(defun exptl (x n a)"
    "  (cond ((zerop n) a) ((oddp n) (exptl (* x x) (floor n 2) (* a x)))"
    "        (t (exptl (* x x) (floor n 2) a))))"
    "(defun testfn (a &optional (b 3.0) (c a))"
    "  (let ((d (+$f a b c)) (e (*$f a b c)))"
    "    (let ((q (sin$f e))) (exptl 2 3 1) q)))"
    "(defun walk (l acc)"
    "  (cond ((null l) acc) ((consp (car l)) (walk (cdr l) (walk (car l) acc)))"
    "        (t (walk (cdr l) (cons (car l) acc)))))";

template <typename Fn> double timeMs(Fn &&F) {
  auto T0 = std::chrono::steady_clock::now();
  F();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

void printTable() {
  tableHeader("T1: phase structure with per-phase cost (corpus of 4 defuns)");

  ir::Module M;
  DiagEngine Diags;
  double TConvert = timeMs([&] { frontend::convertSource(M, Corpus, Diags); });

  size_t NodesBefore = 0;
  for (const auto &F : M.functions())
    NodesBefore += ir::treeSize(F->Root);

  double TAnalyze = timeMs([&] {
    for (const auto &F : M.functions())
      analysis::analyze(*F);
  });

  unsigned Rewrites = 0;
  double TOptimize = timeMs([&] {
    for (const auto &F : M.functions())
      Rewrites += opt::metaEvaluate(*F);
  });
  size_t NodesAfter = 0;
  for (const auto &F : M.functions())
    NodesAfter += ir::treeSize(F->Root);

  annotate::AnnotateStats Ann{};
  double TAnnotate = timeMs([&] {
    for (const auto &F : M.functions()) {
      auto S = annotate::annotate(*F);
      Ann.OpenLambdas += S.OpenLambdas;
      Ann.JumpLambdas += S.JumpLambdas;
      Ann.FullClosures += S.FullClosures;
      Ann.RawFloatVariables += S.RawFloatVariables;
      Ann.PdlSites += S.PdlSites;
    }
  });

  double TTnBind = timeMs([&] {
    for (const auto &F : M.functions())
      tnbind::allocateVariables(F->Root);
  });

  s1::Program Prog;
  double TCodegen = timeMs([&] {
    auto Out = driver::compileModule(M, bench::noOptConfig());
    Prog = std::move(Out.Program);
  });

  size_t Instrs = 0;
  for (const auto &F : Prog.Functions)
    Instrs += F.Code.size();

  printf("  %-38s %8.3f ms   (%zu tree nodes)\n",
         "Preliminary conversion", TConvert, NodesBefore);
  printf("  %-38s %8.3f ms\n", "Source-program analysis", TAnalyze);
  printf("  %-38s %8.3f ms   (%u rewrites, %zu nodes after)\n",
         "Source-level optimization", TOptimize, Rewrites, NodesAfter);
  printf("  %-38s %8.3f ms   (open=%u jump=%u closures=%u rawflo=%u pdl=%u)\n",
         "Machine-dependent annotation", TAnnotate, Ann.OpenLambdas,
         Ann.JumpLambdas, Ann.FullClosures, Ann.RawFloatVariables, Ann.PdlSites);
  printf("  %-38s %8.3f ms\n", "TNBIND storage allocation", TTnBind);
  printf("  %-38s %8.3f ms   (%zu instructions emitted)\n",
         "Code generation", TCodegen, Instrs);
}

void BM_WholePipeline(benchmark::State &State) {
  for (auto _ : State) {
    ir::Module M;
    auto Out = driver::compileSource(M, Corpus);
    benchmark::DoNotOptimize(Out.Ok);
  }
}
BENCHMARK(BM_WholePipeline);

void BM_ConvertOnly(benchmark::State &State) {
  for (auto _ : State) {
    ir::Module M;
    DiagEngine Diags;
    frontend::convertSource(M, Corpus, Diags);
    benchmark::DoNotOptimize(M.functions().size());
  }
}
BENCHMARK(BM_ConvertOnly);

void BM_OptimizeOnly(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    ir::Module M;
    DiagEngine Diags;
    frontend::convertSource(M, Corpus, Diags);
    State.ResumeTiming();
    for (const auto &F : M.functions())
      opt::metaEvaluate(*F);
  }
}
BENCHMARK(BM_OptimizeOnly);

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
