//===- bench/bench_cse.cpp - Experiment F10: §4.3 CSE ---------------------===//
//
// §4.3 specifies common subexpression elimination as an optional phase
// expressed through source-level lambda introduction, and predicts "its
// contribution to program speed will be smaller than the other
// techniques". We implement it as specified and measure exactly that.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "opt/Cse.h"

#include <benchmark/benchmark.h>

using namespace s1lisp;
using namespace s1lisp::bench;

namespace {

// A kernel with a fat, thrice-repeated pure subexpression.
const char *Source =
    "(defun redundant (a b c)"
    "  (+ (* (+ (* a b) (* b c) (* a c)) 2)"
    "     (* (+ (* a b) (* b c) (* a c)) 3)"
    "     (* (+ (* a b) (* b c) (* a c)) 5)))"
    "(defun drive (n)"
    "  (let ((s 0)) (dotimes (i n) (setq s (+ s (redundant i 2 3)))) s))";

s1lisp::bench::Compiled compileWithCse(bool RunCse, unsigned *Hoisted) {
  Compiled C;
  C.M = std::make_unique<ir::Module>();
  DiagEngine Diags;
  frontend::convertSource(*C.M, Source, Diags);
  unsigned Total = 0;
  for (const auto &F : C.M->functions()) {
    opt::metaEvaluate(*F);
    if (RunCse)
      Total += opt::eliminateCommonSubexpressions(*F);
  }
  if (Hoisted)
    *Hoisted = Total;
  auto Out = driver::compileModule(
      *C.M, bench::noOptConfig());
  if (!Out.Ok) {
    fprintf(stderr, "cse bench compile failed: %s\n", Out.Error.c_str());
    abort();
  }
  C.Program = std::move(Out.Program);
  C.VM = std::make_unique<vm::Machine>(C.Program, C.M->Syms, C.M->DataHeap);
  return C;
}

void printTable() {
  tableHeader("F10 / §4.3: common subexpression elimination");
  JsonReport Report("cse");
  printf("%-18s %10s %16s %12s\n", "configuration", "hoisted", "instrs/call",
         "result");
  const int N = 500;
  for (bool RunCse : {false, true}) {
    unsigned Hoisted = 0;
    Compiled P = compileWithCse(RunCse, &Hoisted);
    P.VM->resetStats();
    auto R = runOrDie(P, "drive", {fx(N)});
    printf("%-18s %10u %16.1f %12s\n", RunCse ? "with cse" : "without",
           Hoisted, static_cast<double>(P.VM->stats().Instructions) / N,
           sexpr::toString(*R.Result).c_str());
    const char *Key = RunCse ? "cse" : "nocse";
    Report.add(std::string("instructions.") + Key, P.VM->stats().Instructions);
    Report.add(std::string("hoisted.") + Key, Hoisted);
  }
  Report.write();
  printf("Shape check (paper): CSE helps, but modestly compared with the\n"
         "other techniques — exactly the paper's stated reason to defer it.\n");
}

void BM_WithoutCse(benchmark::State &State) {
  Compiled P = compileWithCse(false, nullptr);
  for (auto _ : State)
    runOrDie(P, "drive", {fx(200)});
}
BENCHMARK(BM_WithoutCse);

void BM_WithCse(benchmark::State &State) {
  Compiled P = compileWithCse(true, nullptr);
  for (auto _ : State)
    runOrDie(P, "drive", {fx(200)});
}
BENCHMARK(BM_WithCse);

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
