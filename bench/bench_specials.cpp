//===- bench/bench_specials.cpp - Experiment F8: §4.4 lookup caching ------===//
//
// Deep binding needs a linear search per special-variable access; §4.4
// caches the binding address in the frame "searched for once ... from
// then on each special variable can be accessed indirectly through a
// cached pointer in constant time". We measure searches and search steps
// per access, cached vs. uncached, at several dynamic binding depths.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace s1lisp;
using namespace s1lisp::bench;

namespace {

// `nest` pushes `depth` unrelated dynamic bindings, then polls *v* n times.
const char *Source =
    "(defvar *v*)"
    "(defvar *pad*)"
    "(defun poll (n)"
    "  (let ((s 0)) (dotimes (i n) (setq s (+ s *v*))) s))"
    "(defun nest (depth n)"
    "  (if (zerop depth)"
    "      (poll n)"
    "      (let ((*pad* depth)) (nest (1- depth) n))))";

void printTable() {
  tableHeader("F8 / §4.4: special-variable lookup caching (deep binding)");
  printf("%-22s %8s %12s %16s %18s\n", "configuration", "depth", "accesses",
         "searches", "steps/access");
  struct Cfg {
    const char *Name;
    driver::CompilerOptions Opts;
  } Cfgs[] = {
      {"cached (paper)", fullConfig()},
      {"uncached", noSpecialCacheConfig()},
  };
  const int N = 500;
  for (const Cfg &C : Cfgs) {
    for (int Depth : {0, 8, 64}) {
      Compiled P = compileOrDie(Source, C.Opts);
      P.VM->setGlobalSpecial(P.M->Syms.intern("*v*"), fx(1));
      P.VM->resetStats();
      runOrDie(P, "nest", {fx(Depth), fx(N)});
      printf("%-22s %8d %12d %16llu %18.2f\n", C.Name, Depth, N,
             static_cast<unsigned long long>(P.VM->stats().SpecialSearches),
             static_cast<double>(P.VM->stats().SpecialSearchSteps) / N);
    }
  }
  printf("Shape check (paper): cached lookups search once per entry, so\n"
         "steps/access falls toward zero; uncached pays depth per access.\n");
}

void BM_SpecialsCached(benchmark::State &State) {
  Compiled P = compileOrDie(Source, fullConfig());
  P.VM->setGlobalSpecial(P.M->Syms.intern("*v*"), fx(1));
  for (auto _ : State)
    runOrDie(P, "nest", {fx(32), fx(200)});
}
BENCHMARK(BM_SpecialsCached);

void BM_SpecialsUncached(benchmark::State &State) {
  Compiled P = compileOrDie(Source, noSpecialCacheConfig());
  P.VM->setGlobalSpecial(P.M->Syms.intern("*v*"), fx(1));
  for (auto _ : State)
    runOrDie(P, "nest", {fx(32), fx(200)});
}
BENCHMARK(BM_SpecialsUncached);

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
