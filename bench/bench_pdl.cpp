//===- bench/bench_pdl.cpp - Experiment F7: §6.3 pdl numbers --------------===//
//
// Boxed floats whose lifetimes the PDLOKP/PDLNUMP analysis can bound are
// allocated in the stack frame instead of the heap. We count heap objects
// per call of a testfn-shaped function (float LET temporaries passed to a
// user procedure) with pdl numbers on and off, and verify that returning
// a float still heap-allocates (returning is unsafe — the Table 4
// SQ-SINGLE-FLONUM-CONS call).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace s1lisp;
using namespace s1lisp::bench;

namespace {

const char *Source =
    "(defun frotz (a b c) (if (eql a b) c a))"
    "(defun testfn-shape (a b c)"
    "  (let ((d (+$f a b c)) (e (*$f a b c)))"
    "    (frotz d e (max$f d e))"
    "    (+$f d e)))"
    "(defun drive (n)"
    "  (dotimes (i n) (testfn-shape 1.0 2.0 3.0))"
    "  'done)";

void printTable() {
  tableHeader("F7 / §6.3: pdl numbers (stack allocation of boxed floats)");
  printf("%-24s %18s %18s\n", "configuration", "heap allocs/call",
         "stack high-water");
  struct Cfg {
    const char *Name;
    driver::CompilerOptions Opts;
  } Cfgs[] = {
      {"pdl numbers (paper)", fullConfig()},
      {"heap-only", noPdlConfig()},
  };
  const int N = 2000;
  for (const Cfg &C : Cfgs) {
    Compiled P = compileOrDie(Source, C.Opts);
    P.VM->resetStats();
    runOrDie(P, "drive", {fx(N)});
    printf("%-24s %18.2f %18llu\n", C.Name,
           static_cast<double>(P.VM->stats().HeapObjects) / N,
           static_cast<unsigned long long>(P.VM->stats().StackHighWater));
  }

  // Returning a float is an unsafe position: the result must be certified
  // into the heap even with pdl numbers enabled.
  Compiled P = compileOrDie("(defun ret-float (x) (+$f x 1.0))", fullConfig());
  P.VM->resetStats();
  auto R = runOrDie(P, "ret-float", {fl(2.0)});
  printf("return path: result=%s heap allocs=%llu (>=1: returning is "
         "unsafe, §6.3)\n",
         sexpr::toString(*R.Result).c_str(),
         static_cast<unsigned long long>(P.VM->stats().HeapObjects));
  printf("Shape check (paper): pdl numbers take the per-call heap boxes of\n"
         "the LET temporaries to zero; the returned value still conses.\n");
}

void BM_PdlOn(benchmark::State &State) {
  Compiled P = compileOrDie(Source, fullConfig());
  for (auto _ : State)
    runOrDie(P, "drive", {fx(500)});
}
BENCHMARK(BM_PdlOn);

void BM_PdlOff(benchmark::State &State) {
  Compiled P = compileOrDie(Source, noPdlConfig());
  for (auto _ : State)
    runOrDie(P, "drive", {fx(500)});
}
BENCHMARK(BM_PdlOff);

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
