//===- bench/bench_tailcall.cpp - Experiment F1: §2 tail recursion --------===//
//
// §2's exptl "behaves iteratively (it cannot produce stack overflow no
// matter how large n is)". We measure the stack high-water mark of the
// compiled code across argument magnitudes, with tail calls compiled as
// parameter-passing gotos and with the ablation that uses plain calls.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace s1lisp;
using namespace s1lisp::bench;

namespace {

const char *Source =
    "(defun exptl (x n a)" // §2, verbatim shape (fixnum arithmetic)
    "  (cond ((zerop n) a)"
    "        ((oddp n) (exptl (* x x) (floor n 2) (* a x)))"
    "        (t (exptl (* x x) (floor n 2) a))))"
    "(defun count-down (n) (if (zerop n) 'done (count-down (1- n))))";

void printTable() {
  tableHeader("F1 / §2: tail-recursive calls are parameter-passing gotos");
  printf("%-22s %10s %18s %12s %12s\n", "configuration", "n",
         "stack high-water", "tail jumps", "calls");
  struct Cfg {
    const char *Name;
    driver::CompilerOptions Opts;
  } Cfgs[] = {
      {"tail calls (paper)", fullConfig()},
      {"plain calls", noTailConfig()},
  };
  for (const Cfg &C : Cfgs) {
    for (int64_t N : {100, 1000, 10000}) {
      Compiled P = compileOrDie(Source, C.Opts);
      P.VM->resetStats();
      auto R = P.VM->call("count-down", {fx(N)});
      if (!R.Ok) {
        printf("%-22s %10lld %18s %12s %12s\n", C.Name,
               static_cast<long long>(N), "OVERFLOW", "-", "-");
        continue;
      }
      printf("%-22s %10lld %18llu %12llu %12llu\n", C.Name,
             static_cast<long long>(N),
             static_cast<unsigned long long>(P.VM->stats().StackHighWater),
             static_cast<unsigned long long>(P.VM->stats().TailCalls),
             static_cast<unsigned long long>(P.VM->stats().Calls));
    }
  }
  printf("Shape check (paper): with tail calls the high-water mark is flat\n"
         "in n; with plain calls it grows linearly until overflow.\n");

  // exptl correctness across magnitudes (32-bit fixnum range).
  Compiled P = compileOrDie(Source, fullConfig());
  auto R = runOrDie(P, "exptl", {fx(3), fx(7), fx(1)});
  printf("exptl(3,7,1) = %s (expected 2187)\n",
         sexpr::toString(*R.Result).c_str());
}

void BM_TailRecursion(benchmark::State &State) {
  Compiled P = compileOrDie(Source, fullConfig());
  for (auto _ : State)
    runOrDie(P, "count-down", {fx(10000)});
}
BENCHMARK(BM_TailRecursion);

void BM_ExptlRepeatedSquaring(benchmark::State &State) {
  Compiled P = compileOrDie(Source, fullConfig());
  for (auto _ : State)
    runOrDie(P, "exptl", {fx(3), fx(7), fx(1)});
}
BENCHMARK(BM_ExptlRepeatedSquaring);

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
