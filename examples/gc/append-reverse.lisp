; Append/reverse churn, scaled by N.  Every round copies the whole
; accumulator twice (reverse, then append's prefix copy), so the round's
; input becomes garbage the moment the round ends: live data grows
; linearly while total allocation is quadratic -- the nursery-churn
; shape a generational collector is built for.
;
; (append-reverse-workload n) = sum of ((i mod n) + 1) over the n*n
; elements of the final accumulator.
(defun iota (n)
  (do ((i n (1- i))
       (acc '() (cons i acc)))
      ((zerop i) acc)))

(defun sum-list (l)
  (do ((cur l (cdr cur))
       (s 0 (+ s (car cur))))
      ((null cur) s)))

(defun append-reverse-workload (n)
  (do ((seg (iota n))
       (i 0 (1+ i))
       (acc '() (append (reverse acc) seg)))
      ((= i n) (sum-list acc))))

(defun main ()
  (append-reverse-workload 12))
