; Association-list workload, scaled by N.  build-alist conses one pair
; plus one spine cell per entry; probe-sum then walks the alist N times
; with assoc, allocating nothing -- a live-data-heavy shape that makes
; the collector prove promoted cells stay reachable and mutable.
;
; (alist-workload n) = sum of i*i for i in [0, n)  = n(n-1)(2n-1)/6.
(defun build-alist (n)
  (do ((i 0 (1+ i))
       (acc '() (cons (cons i (* i i)) acc)))
      ((= i n) acc)))

(defun probe-sum (alist n)
  (do ((i 0 (1+ i))
       (s 0 (+ s (cdr (assoc i alist)))))
      ((= i n) s)))

(defun alist-workload (n)
  (probe-sum (build-alist n) n))

(defun main ()
  (alist-workload 64))
