; Chained list transformations, scaled by N.  my-map is iterative
; (accumulate reversed, then reverse) so the chain works at bench sizes
; without deep recursion; each stage conses 2N cells and orphans its
; input, handing the collector a steady pipeline of short-lived lists
; threaded through closures.
;
; (map-chain-workload n) = sum of 3*(i*i + 1) for i in [0, n)
;                        = 3 * (n(n-1)(2n-1)/6 + n).
(defun my-map (f l)
  (do ((cur l (cdr cur))
       (acc '() (cons (funcall f (car cur)) acc)))
      ((null cur) (reverse acc))))

(defun sum-list (l)
  (do ((cur l (cdr cur))
       (s 0 (+ s (car cur))))
      ((null cur) s)))

(defun map-chain-workload (n)
  (sum-list
   (my-map (lambda (x) (* x 3))
           (my-map (lambda (x) (+ x 1))
                   (my-map (lambda (x) (* x x))
                           (iota n))))))

(defun iota (n)
  (do ((i n (1- i))
       (acc '() (cons (1- i) acc)))
      ((zerop i) acc)))

(defun main ()
  (map-chain-workload 32))
