//===- examples/testfn_transcript.cpp - The §7 worked example -------------===//
//
// Recreates the paper's §7 end to end: testfn is converted, the optimizer
// transcript is printed in the paper's ";**** courtesy of" style (assoc/
// commut canonicalization, constant-first reversal, META-SUBSTITUTE moving
// sinc$f past frotz), the final optimized source is shown, and the
// generated assembly listing — the Table 4 analogue — follows, complete
// with the dispatch on the number of arguments and pdl-number slots.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "frontend/Convert.h"
#include "ir/BackTranslate.h"
#include "opt/MetaEval.h"
#include "stats/Remark.h"
#include "sexpr/Printer.h"
#include "vm/Machine.h"

#include <cstdio>

using namespace s1lisp;
using sexpr::Value;

int main() {
  const char *Source =
      "(defun frotz (a b c) (if (eql a b) c a))"
      ""
      "(defun testfn (a &optional (b 3.0) (c a))"
      "  (let ((d (+$f a b c)) (e (*$f a b c)))"
      "    (let ((q (sin$f e)))"
      "      (frotz d e (max$f d e))"
      "      q)))";

  ir::Module M;
  DiagEngine Diags;
  if (!frontend::convertSource(M, Source, Diags)) {
    fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  ir::Function *F = M.lookup("testfn");
  printf("=== testfn before optimization ===\n%s\n\n",
         sexpr::toPrettyString(ir::backTranslateFunction(*F)).c_str());

  stats::RemarkStream Log;
  opt::metaEvaluate(*F, {}, &Log);
  printf("=== Optimizer transcript (the paper's debugging output) ===\n%s\n",
         Log.str().c_str());

  printf("=== testfn after optimization ===\n%s\n\n",
         sexpr::toPrettyString(ir::backTranslateFunction(*F)).c_str());

  stats::RemarkStream FrotzLog;
  opt::metaEvaluate(*M.lookup("frotz"), {}, &FrotzLog);
  driver::CompilerOptions NoOpt;
  NoOpt.Optimize = false; // already optimized above
  auto Out = driver::compileModule(M, NoOpt);
  if (!Out.Ok) {
    fprintf(stderr, "compile error: %s\n", Out.Error.c_str());
    return 1;
  }
  printf("=== Generated code (the Table 4 analogue) ===\n");
  for (const s1::AsmFunction &Fn : Out.Program.Functions)
    if (Fn.Name == "testfn")
      printf("%s\n", s1::printListing(Fn).c_str());

  vm::Machine VM(Out.Program, M.Syms, M.DataHeap);
  printf("=== Execution across the argument-count dispatch ===\n");
  const std::vector<std::vector<Value>> ArgSets = {
      {Value::flonum(0.25)},
      {Value::flonum(0.25), Value::flonum(2.0)},
      {Value::flonum(0.25), Value::flonum(2.0), Value::flonum(8.0)}};
  for (const auto &Args : ArgSets) {
    VM.resetStats();
    auto R = VM.call("testfn", Args);
    printf("(testfn");
    for (Value V : Args)
      printf(" %s", sexpr::toString(V).c_str());
    printf(") => %s   [%llu instrs, %llu heap allocs]\n",
           R.Ok ? sexpr::toString(*R.Result).c_str() : R.Error.c_str(),
           static_cast<unsigned long long>(VM.stats().Instructions),
           static_cast<unsigned long long>(VM.stats().HeapObjects));
  }
  return 0;
}
