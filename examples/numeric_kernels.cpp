//===- examples/numeric_kernels.cpp - The "number world" ------------------===//
//
// The paper's motivation (§1): a Lisp compiler that competes on numerical
// code. This example runs the §6.1-style array kernels and a mixed
// symbolic/numeric workload, compiled vs. interpreted, with the machine
// counters that show where the three §6 techniques pay off.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "frontend/Convert.h"
#include "interp/Interp.h"
#include "sexpr/Printer.h"
#include "vm/Machine.h"

#include <cstdio>

using namespace s1lisp;
using sexpr::Value;

namespace {

const char *Kernels =
    // Dot product over float arrays (raw SWFLO arithmetic throughout).
    "(defun dot (u v n)"
    "  (let ((s 0.0))"
    "    (dotimes (i n) (setq s (+$f s (*$f (aref$f u i) (aref$f v i)))))"
    "    s))"
    // The §6.1 matrix statement over a full matrix.
    "(defun matmul-row (z a b c n)"
    "  (dotimes (i n)"
    "    (dotimes (k n)"
    "      (aset$f z i k (+$f (*$f (aref$f a i 0) (aref$f b 0 k))"
    "                         (aref$f c i k)))))"
    "  z)"
    // Mixed symbolic + numeric: polynomial as a list of coefficients.
    "(defun poly-eval (coeffs x)"
    "  (let ((acc 0.0))"
    "    (dolist (c coeffs) (setq acc (+$f (*$f acc x) c)))"
    "    acc))"
    "(defun fill-iota (v n)"
    "  (dotimes (i n) (aset$f v i (float i))) v)"
    "(defun bench-dot (n reps)"
    "  (let ((u (fill-iota (make-array$f n) n))"
    "        (v (fill-iota (make-array$f n) n))"
    "        (s 0.0))"
    "    (dotimes (r reps) (setq s (dot u v n)))"
    "    s))";

} // namespace

int main() {
  ir::Module M;
  auto Out = driver::compileSource(M, Kernels);
  if (!Out.Ok) {
    fprintf(stderr, "compile error: %s\n", Out.Error.c_str());
    return 1;
  }
  vm::Machine VM(Out.Program, M.Syms, M.DataHeap);

  printf("=== dot product, n=256, 10 repetitions ===\n");
  VM.resetStats();
  auto R = VM.call("bench-dot", {Value::fixnum(256), Value::fixnum(10)});
  printf("result %s\n", R.Ok ? sexpr::toString(*R.Result).c_str()
                             : R.Error.c_str());
  printf("instructions      %llu\n",
         static_cast<unsigned long long>(VM.stats().Instructions));
  printf("data-movement MOV %llu\n",
         static_cast<unsigned long long>(VM.stats().Movs));
  printf("heap allocations  %llu  (raw floats stay raw in the loop)\n",
         static_cast<unsigned long long>(VM.stats().HeapObjects));

  printf("\n=== polynomial over a coefficient list (pointer world) ===\n");
  ir::Module MI;
  DiagEngine Diags;
  frontend::convertSource(MI, Kernels, Diags);
  interp::Interpreter I(MI);
  Value Coeffs = MI.DataHeap.list({Value::flonum(1.0), Value::flonum(-2.0),
                                   Value::flonum(3.0), Value::flonum(0.5)});
  auto RI = I.call("poly-eval", {interp::RtValue::data(Coeffs),
                                 interp::RtValue::data(Value::flonum(2.0))});
  auto RC = VM.call("poly-eval", {Coeffs, Value::flonum(2.0)});
  printf("interpreted: %s   compiled: %s   (must agree)\n",
         RI.Value.str().c_str(),
         RC.Ok ? sexpr::toString(*RC.Result).c_str() : RC.Error.c_str());

  printf("\n=== interpreter vs compiled work, dot kernel ===\n");
  I.resetStats();
  I.call("bench-dot", {interp::RtValue::data(Value::fixnum(64)),
                       interp::RtValue::data(Value::fixnum(2))});
  VM.resetStats();
  VM.call("bench-dot", {Value::fixnum(64), Value::fixnum(2)});
  printf("interpreter steps %llu vs compiled instructions %llu\n",
         static_cast<unsigned long long>(I.stats().Steps),
         static_cast<unsigned long long>(VM.stats().Instructions));
  return 0;
}
