; The paper's 7 worked example (Table 4).  TESTFN exercises &optional
; defaulting, float-specific arithmetic, and a call to a substitutable
; helper -- compile with --transcript or --remarks to watch the 5
; rewrite rules fire.
(defun frotz (a b c)
  (if (eql a b) c a))

(defun testfn (a &optional (b 3.0) (c a))
  (let ((d (+$f a b c)) (e (*$f a b c)))
    (let ((q (sin$f e)))
      (frotz d e (max$f d e))
      q)))

(defun main ()
  (testfn 0.25 2.0 8.0))
