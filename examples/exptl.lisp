; Integer exponentiation, the classic recursive benchmark shape: a
; straight-line reduction the optimizer's constant-fold and
; identity-elimination rules get to chew on.
(defun exptl (b n)
  (if (zerop n)
      1
      (* b (exptl b (1- n)))))

(defun main ()
  (exptl 2 10))
