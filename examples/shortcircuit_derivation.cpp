//===- examples/shortcircuit_derivation.cpp - The §5 derivation -----------===//
//
// §5's centerpiece: boolean short-circuiting "falls out" of general
// lambda-calculus transformations. This example shows the full journey
// for (if (and a (or b c)) expression1 expression2): the macro expansion
// into the basic construct set, every optimizer rewrite, the final goto
// structure, and the generated jump code.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "frontend/Convert.h"
#include "ir/BackTranslate.h"
#include "opt/MetaEval.h"
#include "stats/Remark.h"
#include "sexpr/Printer.h"
#include "vm/Machine.h"

#include <cstdio>

using namespace s1lisp;
using sexpr::Value;

int main() {
  const char *Source = "(defun sc (a b c)"
                       "  (if (and a (or b c)) (expression1) (expression2)))"
                       "(defun expression1 () 'e1)"
                       "(defun expression2 () 'e2)";

  ir::Module M;
  DiagEngine Diags;
  if (!frontend::convertSource(M, Source, Diags)) {
    fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  ir::Function *F = M.lookup("sc");

  printf("=== After preliminary conversion (AND/OR expanded per §5) ===\n%s\n\n",
         sexpr::toPrettyString(ir::backTranslateFunction(*F)).c_str());

  stats::RemarkStream Log;
  opt::metaEvaluate(*F, {}, &Log);
  printf("=== Derivation (every rewrite, in the paper's style) ===\n%s\n",
         Log.str().c_str());

  printf("=== Final form: pure conditional structure, thunks shared ===\n%s\n\n",
         sexpr::toPrettyString(ir::backTranslateFunction(*F)).c_str());

  for (const auto &Fn : M.functions())
    if (Fn->name() != "sc")
      opt::metaEvaluate(*Fn);
  driver::CompilerOptions NoOpt;
  NoOpt.Optimize = false; // already optimized above
  auto Out = driver::compileModule(M, NoOpt);
  if (!Out.Ok) {
    fprintf(stderr, "compile error: %s\n", Out.Error.c_str());
    return 1;
  }
  printf("=== Generated jump code (calls to the thunks are JMPAs) ===\n");
  for (const s1::AsmFunction &Fn : Out.Program.Functions)
    if (Fn.Name == "sc")
      printf("%s\n", s1::printListing(Fn).c_str());

  vm::Machine VM(Out.Program, M.Syms, M.DataHeap);
  Value T = Value::symbol(M.Syms.t());
  Value Nil = Value::nil();
  printf("=== Truth table ===\n");
  for (Value A : {T, Nil})
    for (Value B : {T, Nil})
      for (Value C : {T, Nil}) {
        auto R = VM.call("sc", {A, B, C});
        printf("(sc %s %s %s) => %s\n", sexpr::toString(A).c_str(),
               sexpr::toString(B).c_str(), sexpr::toString(C).c_str(),
               R.Ok ? sexpr::toString(*R.Result).c_str() : R.Error.c_str());
      }
  return 0;
}
