//===- examples/quickstart.cpp - Hello, S1LISP ----------------------------===//
//
// The five-minute tour of the public API: read and compile a small Lisp
// program, look at the assembly the compiler produced, run it on the
// simulated S-1/64, and cross-check against the interpreter.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "frontend/Convert.h"
#include "interp/Interp.h"
#include "sexpr/Printer.h"
#include "vm/Machine.h"

#include <cstdio>

using namespace s1lisp;
using sexpr::Value;

int main() {
  const char *Program =
      "(defun hypotenuse (a b)"
      "  (sqrt$f (+$f (*$f a a) (*$f b b))))"
      ""
      "(defun classify (x)"
      "  (cond ((minusp x) 'negative)"
      "        ((zerop x) 'zero)"
      "        (t 'positive)))";

  // 1. Compile. One call runs the whole Table 1 pipeline: conversion,
  //    analysis, the source-level optimizer, annotation, TNBIND, codegen.
  ir::Module M;
  auto Compiled = driver::compileSource(M, Program);
  if (!Compiled.Ok) {
    fprintf(stderr, "compile error: %s\n", Compiled.Error.c_str());
    return 1;
  }

  // 2. Inspect the generated code (parenthesized assembly, Table 4 style).
  printf("%s", driver::listing(Compiled.Program).c_str());

  // 3. Execute on the simulated S-1/64.
  vm::Machine VM(Compiled.Program, M.Syms, M.DataHeap);
  auto R = VM.call("hypotenuse", {Value::flonum(3.0), Value::flonum(4.0)});
  printf("(hypotenuse 3.0 4.0) => %s\n", sexpr::toString(*R.Result).c_str());
  printf("  [%llu instructions, %llu heap objects]\n",
         static_cast<unsigned long long>(VM.stats().Instructions),
         static_cast<unsigned long long>(VM.stats().HeapObjects));

  auto R2 = VM.call("classify", {Value::fixnum(-7)});
  printf("(classify -7) => %s\n", sexpr::toString(*R2.Result).c_str());

  // 4. The interpreter is the semantic oracle; it should agree.
  interp::Interpreter I(M);
  auto RI = I.call("hypotenuse", {interp::RtValue::data(Value::flonum(3.0)),
                                  interp::RtValue::data(Value::flonum(4.0))});
  printf("interpreter agrees: %s\n", RI.Value.str().c_str());
  return 0;
}
