//===- examples/quadratic.cpp - The §4.1 back-translation demo ------------===//
//
// Reproduces the paper's first worked artifact: the quadratic-formula
// defun is converted to the internal tree (twelve basic constructs,
// Table 2) and back-translated into source — LETs as explicit lambda
// calls, COND as nested IFs — exactly the §4.1 listing. Then it runs.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "frontend/Convert.h"
#include "ir/BackTranslate.h"
#include "sexpr/Printer.h"
#include "vm/Machine.h"

#include <cstdio>

using namespace s1lisp;
using sexpr::Value;

int main() {
  const char *Source =
      "(defun quadratic (a b c)"
      "  (let ((d (- (* b b) (* 4.0 a c))))"
      "    (cond ((< d 0) '())"
      "          ((= d 0) (list (/ (- b) (* 2.0 a))))"
      "          (t (let ((two-a (* 2.0 a)) (sd (sqrt d)))"
      "               (list (/ (+ (- b) sd) two-a)"
      "                     (/ (- (- b) sd) two-a)))))))";

  ir::Module M;
  DiagEngine Diags;
  if (!frontend::convertSource(M, Source, Diags)) {
    fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  ir::Function *F = M.lookup("quadratic");

  printf("=== Internal tree, back-translated (the paper's §4.1 listing) ===\n");
  printf("%s\n\n",
         sexpr::toPrettyString(ir::backTranslateFunction(*F)).c_str());

  printf("=== With explicit quoting of constants ===\n");
  ir::BackTranslateOptions Quoted;
  Quoted.QuoteNumbers = true;
  printf("%s\n\n",
         sexpr::toPrettyString(ir::backTranslateFunction(*F, Quoted)).c_str());

  printf("=== Node inventory (Table 2 constructs used) ===\n");
  unsigned Counts[16] = {};
  ir::forEachNode(static_cast<ir::Node *>(F->Root), [&Counts](ir::Node *N) {
    Counts[static_cast<int>(N->kind())]++;
  });
  for (int K = 0; K < 12; ++K)
    if (Counts[K])
      printf("  %-10s %u\n", ir::nodeKindName(static_cast<ir::NodeKind>(K)),
             Counts[K]);

  // Compile and solve x^2 - 3x + 2 = 0.
  auto Out = driver::compileModule(M);
  if (!Out.Ok) {
    fprintf(stderr, "compile error: %s\n", Out.Error.c_str());
    return 1;
  }
  vm::Machine VM(Out.Program, M.Syms, M.DataHeap);
  for (auto [A, B, C] : {std::tuple{1.0, -3.0, 2.0}, {1.0, 2.0, 1.0},
                         {1.0, 0.0, 1.0}}) {
    auto R = VM.call("quadratic",
                     {Value::flonum(A), Value::flonum(B), Value::flonum(C)});
    printf("\n(quadratic %.1f %.1f %.1f) => %s", A, B, C,
           R.Ok ? sexpr::toString(*R.Result).c_str() : R.Error.c_str());
  }
  printf("\n");
  return 0;
}
