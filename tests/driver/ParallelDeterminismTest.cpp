//===- tests/driver/ParallelDeterminismTest.cpp ---------------------------===//
//
// Determinism under contention: the sharded symbol table, thread-affine
// heap regions, and lock-free tallies must not leak worker scheduling
// into the output. An intern-heavy module (remark back-translation
// interns on every worker; constant folding allocates ratios and conses
// from the shared module heap) compiles repeatedly at jobs 1/2/4/8 and
// must produce identical programs, listings, symbol address assignments,
// remark transcripts, and counter totals every time. A second suite
// checks that none of this perturbs ir/StableHash content addresses: a
// memo populated by a parallel compile must serve a 100% hit rate to a
// serial recompile of equivalent IR, and vice versa.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "frontend/Convert.h"
#include "fuzz/Generator.h"
#include "stats/Stats.h"

#include "gtest/gtest.h"

#include <map>
#include <mutex>
#include <string>
#include <unordered_map>

using namespace s1lisp;

namespace {

/// A generated 40-function module plus hand-built functions that lean on
/// the contended paths: every worker interns fresh distinct names (per-
/// function parameter names surface in remark back-translation) and the
/// constant folder allocates ratios/conses from the shared module heap.
std::string internHeavySource() {
  fuzz::GenOptions GO;
  GO.Helpers = 39;
  fuzz::Generator G(4242, GO);
  std::string Src = G.generate().Source;
  for (int I = 1; I <= 24; ++I) {
    std::string N = std::to_string(I);
    Src += "\n(defun contend-" + N + " (alpha-" + N + " beta-" + N + ")"
           "  (+ (* (/ 1 3) (/ " + N + " 7))"
           "     (+ (* alpha-" + N + " (/ " + N + " 9))"
           "        (* beta-" + N + " (/ 2 " + N + ")))))";
  }
  return Src;
}

struct CompiledAt {
  ir::Module M;
  s1::Program P;
  stats::RemarkStream Remarks;
  std::string StatsJson;
  size_t SymCount = 0;
};

void compileAt(CompiledAt &Out, const std::string &Source, unsigned Jobs) {
  driver::CompilerOptions Opts;
  Opts.Cse = true;
  Opts.Jobs = Jobs;
  stats::resetStats();
  driver::CompileOutcome R =
      driver::compileSource(Out.M, Source, Opts, &Out.Remarks);
  ASSERT_TRUE(R.Ok) << R.Error;
  Out.P = std::move(R.Program);
  Out.StatsJson = stats::reportStatsJson();
  Out.SymCount = Out.M.Syms.size();
}

/// SymbolAddr keys are per-module Symbol pointers; compare by name.
std::map<std::string, uint64_t> symbolAddrsByName(const s1::Program &P) {
  std::map<std::string, uint64_t> Out;
  for (const auto &[Sym, Addr] : P.SymbolAddr)
    Out[Sym->name()] = Addr;
  return Out;
}

TEST(ParallelDeterminism, ContendedCompilesAreBitIdentical) {
  std::string Source = internHeavySource();
  bool PrevEnabled = stats::enabled();
  stats::setEnabled(true);

  CompiledAt Serial;
  compileAt(Serial, Source, 1);
  if (::testing::Test::HasFatalFailure())
    return;
  std::string SerialListing = driver::listing(Serial.P);
  auto SerialSyms = symbolAddrsByName(Serial.P);

  // Repeated runs at each job count: one lucky schedule proves nothing.
  for (unsigned Rep = 0; Rep < 3; ++Rep) {
    for (unsigned Jobs : {2u, 4u, 8u}) {
      CompiledAt Par;
      compileAt(Par, Source, Jobs);
      if (::testing::Test::HasFatalFailure())
        return;
      EXPECT_EQ(SerialListing, driver::listing(Par.P))
          << "listing differs, jobs=" << Jobs << " rep=" << Rep;
      EXPECT_EQ(Serial.P.Static, Par.P.Static)
          << "static image differs, jobs=" << Jobs << " rep=" << Rep;
      EXPECT_EQ(SerialSyms, symbolAddrsByName(Par.P))
          << "symbol address assignment differs, jobs=" << Jobs
          << " rep=" << Rep;
      EXPECT_EQ(Serial.P.StringAddr, Par.P.StringAddr)
          << "jobs=" << Jobs << " rep=" << Rep;
      EXPECT_EQ(Serial.Remarks.Remarks, Par.Remarks.Remarks)
          << "remark transcript differs, jobs=" << Jobs << " rep=" << Rep;
      EXPECT_EQ(Serial.StatsJson, Par.StatsJson)
          << "counter totals differ, jobs=" << Jobs << " rep=" << Rep;
      // The set of names interned (frontend + optimizer rewrites +
      // link) is schedule-invariant, whatever shard each landed in.
      EXPECT_EQ(Serial.SymCount, Par.SymCount)
          << "interned symbol population differs, jobs=" << Jobs
          << " rep=" << Rep;
    }
  }
  stats::setEnabled(PrevEnabled);
}

/// Minimal thread-safe FunctionMemo over a plain map.
class MapMemo : public driver::FunctionMemo {
public:
  std::shared_ptr<const driver::MemoizedFunction> lookup(uint64_t Key) override {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Map.find(Key);
    return It == Map.end() ? nullptr : It->second;
  }
  void insert(uint64_t Key,
              std::shared_ptr<const driver::MemoizedFunction> Fn) override {
    std::lock_guard<std::mutex> Lock(Mu);
    Map.emplace(Key, std::move(Fn));
  }

private:
  std::mutex Mu;
  std::unordered_map<uint64_t, std::shared_ptr<const driver::MemoizedFunction>>
      Map;
};

TEST(ParallelDeterminism, ShardedInterningKeepsMemoHitRate) {
  ir::Module Base;
  DiagEngine Diags;
  ASSERT_TRUE(frontend::convertSource(Base, internHeavySource(), Diags))
      << Diags.str();
  const unsigned N = static_cast<unsigned>(Base.functions().size());

  driver::CompilerOptions Opts;
  Opts.Cse = true;
  MapMemo Memo;

  // Populate the memo from a parallel compile: every content address is
  // computed against sharded-interned symbols on worker threads.
  ir::Module Warm;
  Base.clone(Warm);
  Opts.Jobs = 8;
  driver::CompileOutcome First = driver::compileModule(Warm, Opts, nullptr, &Memo);
  ASSERT_TRUE(First.Ok) << First.Error;
  EXPECT_EQ(First.MemoMisses, N);
  EXPECT_EQ(First.MemoHits, 0u);

  // A serial recompile of a fresh clone (fresh symbol pointers, fresh
  // heap) must hit on every function: ir/StableHash content addresses
  // depend only on names and structure, never on shard or schedule.
  ir::Module Cold;
  Base.clone(Cold);
  Opts.Jobs = 1;
  driver::CompileOutcome Second = driver::compileModule(Cold, Opts, nullptr, &Memo);
  ASSERT_TRUE(Second.Ok) << Second.Error;
  EXPECT_EQ(Second.MemoHits, N);
  EXPECT_EQ(Second.MemoMisses, 0u);
  EXPECT_EQ(driver::listing(First.Program), driver::listing(Second.Program));

  // And back up to 8 jobs against the warm memo: still all hits.
  ir::Module Again;
  Base.clone(Again);
  Opts.Jobs = 8;
  driver::CompileOutcome Third = driver::compileModule(Again, Opts, nullptr, &Memo);
  ASSERT_TRUE(Third.Ok) << Third.Error;
  EXPECT_EQ(Third.MemoHits, N);
  EXPECT_EQ(Third.MemoMisses, 0u);
  EXPECT_EQ(driver::listing(First.Program), driver::listing(Third.Program));
}

} // namespace
