//===- tests/driver/ParallelCompileTest.cpp -------------------------------===//
//
// The parallel per-function pipeline's contract: for any job count the
// driver produces a bit-identical program (listings, static image, symbol
// and string tables, function metadata), the same remark transcript in
// the same order, and the same optimizer counter totals. Also covers the
// Module::clone independence the shared-frontend oracle relies on.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "frontend/Convert.h"
#include "fuzz/Generator.h"
#include "ir/BackTranslate.h"
#include "sexpr/Printer.h"
#include "stats/Stats.h"

#include "gtest/gtest.h"

#include <map>

using namespace s1lisp;

namespace {

/// A 100-function generated module: big enough that a 4-way fan-out
/// actually interleaves units, varied enough (closures, floats, strings
/// via the full grammar) to exercise the per-unit static pools and the
/// deterministic link.
std::string bigSource() {
  fuzz::GenOptions GO;
  GO.Helpers = 99;
  fuzz::Generator G(9100, GO);
  return G.generate().Source;
}

std::string fnText(ir::Function &F) {
  return sexpr::toString(ir::backTranslateFunction(F));
}

struct CompiledAt {
  ir::Module M;
  s1::Program P;
  stats::RemarkStream Remarks;
  std::string StatsJson;
};

void compileAt(CompiledAt &Out, const std::string &Source, unsigned Jobs) {
  driver::CompilerOptions Opts;
  Opts.Cse = true;
  Opts.Jobs = Jobs;
  stats::resetStats();
  driver::CompileOutcome R =
      driver::compileSource(Out.M, Source, Opts, &Out.Remarks);
  ASSERT_TRUE(R.Ok) << R.Error;
  Out.P = std::move(R.Program);
  Out.StatsJson = stats::reportStatsJson();
}

/// SymbolAddr keys are per-module Symbol pointers; compare by name.
std::map<std::string, uint64_t> symbolAddrsByName(const s1::Program &P) {
  std::map<std::string, uint64_t> Out;
  for (const auto &[Sym, Addr] : P.SymbolAddr)
    Out[Sym->name()] = Addr;
  return Out;
}

TEST(ParallelCompile, BitIdenticalAcrossJobCounts) {
  std::string Source = bigSource();
  bool PrevEnabled = stats::enabled();
  stats::setEnabled(true);

  CompiledAt Serial;
  compileAt(Serial, Source, 1);
  if (::testing::Test::HasFatalFailure())
    return;

  for (unsigned Jobs : {2u, 4u, 8u}) {
    CompiledAt Par;
    compileAt(Par, Source, Jobs);
    if (::testing::Test::HasFatalFailure())
      break;

    // The whole program text: every function's listing, in order.
    EXPECT_EQ(driver::listing(Serial.P), driver::listing(Par.P))
        << "listings differ at jobs=" << Jobs;

    // The static data image and its symbol/string directories.
    EXPECT_EQ(Serial.P.Static, Par.P.Static) << "jobs=" << Jobs;
    EXPECT_EQ(symbolAddrsByName(Serial.P), symbolAddrsByName(Par.P))
        << "jobs=" << Jobs;
    EXPECT_EQ(Serial.P.StringAddr, Par.P.StringAddr) << "jobs=" << Jobs;

    // Function metadata, in the same order.
    ASSERT_EQ(Serial.P.Functions.size(), Par.P.Functions.size());
    for (size_t I = 0; I < Serial.P.Functions.size(); ++I) {
      const s1::AsmFunction &A = Serial.P.Functions[I];
      const s1::AsmFunction &B = Par.P.Functions[I];
      EXPECT_EQ(A.Name, B.Name) << "function " << I << " jobs=" << Jobs;
      EXPECT_EQ(A.FrameSize, B.FrameSize) << A.Name;
      EXPECT_EQ(A.MinArgs, B.MinArgs) << A.Name;
      EXPECT_EQ(A.MaxArgs, B.MaxArgs) << A.Name;
      EXPECT_EQ(A.HasRest, B.HasRest) << A.Name;
    }

    // The remark transcript arrives merged in function order, so it is
    // identical element-for-element, not just as a multiset.
    EXPECT_EQ(Serial.Remarks.Remarks, Par.Remarks.Remarks)
        << "jobs=" << Jobs;

    // Worker-local tallies fold into the same counter totals.
    EXPECT_EQ(Serial.StatsJson, Par.StatsJson) << "jobs=" << Jobs;
  }
  stats::setEnabled(PrevEnabled);
}

TEST(ParallelCompile, OversubscribedJobsStillCompile) {
  // More workers than functions: the work queue must drain cleanly.
  ir::Module M;
  driver::CompilerOptions Opts;
  Opts.Jobs = 16;
  auto R = driver::compileSource(M, "(defun solo (x) (+ x 1))", Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GE(R.Program.Functions.size(), 1u);
}

TEST(ModuleClone, ClonesAreIndependent) {
  ir::Module Base;
  DiagEngine Diags;
  ASSERT_TRUE(frontend::convertSource(
      Base, "(defvar *g* 0)\n"
            "(defun helper (n) (if (< n 1) \"done\" (helper (- n 1))))\n"
            "(defun fut (a) (progn (setq *g* a) (helper a)))",
      Diags))
      << Diags.str();

  ir::Module A, B;
  Base.clone(A);
  Base.clone(B);
  ASSERT_EQ(A.functions().size(), Base.functions().size());
  ASSERT_NE(B.lookup("fut"), nullptr);

  // Optimizing one clone mutates its trees in place; the sibling clone and
  // the original must keep their exact shape.
  std::string BaseBefore = fnText(*Base.lookup("fut"));
  std::string BBefore = fnText(*B.lookup("fut"));
  opt::OptOptions OO;
  for (auto &F : A.functions())
    opt::metaEvaluate(*F, OO, nullptr);
  EXPECT_EQ(fnText(*Base.lookup("fut")), BaseBefore);
  EXPECT_EQ(fnText(*B.lookup("fut")), BBefore);

  // Clones re-intern symbols and carry the special proclamations, so each
  // compiles on its own tables.
  EXPECT_TRUE(A.isSpecial(A.Syms.intern("*g*")));
  EXPECT_NE(A.Syms.intern("*g*"), Base.Syms.intern("*g*"));
  driver::CompileOutcome RA = driver::compileModule(A);
  driver::CompileOutcome RB = driver::compileModule(B);
  ASSERT_TRUE(RA.Ok) << RA.Error;
  ASSERT_TRUE(RB.Ok) << RB.Error;
  // B was untouched by A's optimization: it matches a fresh compile of the
  // original source.
  ir::Module Fresh;
  driver::CompileOutcome RF = driver::compileSource(
      Fresh, "(defvar *g* 0)\n"
             "(defun helper (n) (if (< n 1) \"done\" (helper (- n 1))))\n"
             "(defun fut (a) (progn (setq *g* a) (helper a)))");
  ASSERT_TRUE(RF.Ok) << RF.Error;
  EXPECT_EQ(driver::listing(RB.Program), driver::listing(RF.Program));
}

} // namespace
