//===- tests/integration/CompiledVsInterpTest.cpp -------------------------===//
//
// The end-to-end differential harness: every program is run through the
// interpreter (the semantic oracle) and through the full compiler + S-1/64
// simulator, across a grid of arguments and across optimization settings.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "frontend/Convert.h"
#include "interp/Interp.h"
#include "sexpr/Printer.h"
#include "vm/Machine.h"

#include <gtest/gtest.h>

using namespace s1lisp;
using sexpr::Value;

namespace {

std::string interpResult(const std::string &Src, const std::string &Fn,
                         const std::vector<Value> &Args) {
  ir::Module M;
  DiagEngine Diags;
  if (!frontend::convertSource(M, Src, Diags))
    return "CONVERT-ERROR: " + Diags.str();
  interp::Interpreter I(M);
  std::vector<interp::RtValue> RtArgs;
  for (Value V : Args)
    RtArgs.push_back(interp::RtValue::data(V));
  auto R = I.call(Fn, RtArgs);
  if (!R.Ok)
    return "ERROR";
  return R.Value.str();
}

std::string compiledResult(const std::string &Src, const std::string &Fn,
                           const std::vector<Value> &Args,
                           const driver::CompilerOptions &Opts,
                           std::string *FullError = nullptr) {
  ir::Module M;
  auto Out = driver::compileSource(M, Src, Opts);
  if (!Out.Ok)
    return "COMPILE-ERROR: " + Out.Error;
  vm::Machine VM(Out.Program, M.Syms, M.DataHeap);
  auto R = VM.call(Fn, Args);
  if (!R.Ok) {
    if (FullError)
      *FullError = R.Error;
    return "ERROR";
  }
  if (!R.Result)
    return "#<undecodable>";
  return sexpr::toString(*R.Result);
}

struct ProgramCase {
  const char *Name;
  const char *Source;
  const char *Fn;
  std::vector<std::vector<Value>> ArgSets;
};

Value fx(int64_t N) { return Value::fixnum(N); }
Value fl(double D) { return Value::flonum(D); }

std::vector<ProgramCase> corpus() {
  return {
      {"arith", "(defun fut (a b) (+ (* a a) (- b 1)))", "fut",
       {{fx(3), fx(4)}, {fx(-2), fx(0)}, {fx(0), fx(0)}}},
      {"float-arith", "(defun fut (a b) (+$f (*$f a a) (/$f b 2.0)))", "fut",
       {{fl(3.0), fl(4.0)}, {fl(-1.5), fl(1.0)}}},
      {"mixed-generic",
       "(defun fut (a b) (if (> a b) (/ a b) (list a b)))", "fut",
       {{fx(6), fx(4)}, {fx(1), fx(3)}, {fx(7), fx(2)}}},
      {"ratio", "(defun fut (a b) (/ a b))", "fut",
       {{fx(1), fx(3)}, {fx(4), fx(2)}, {fx(-6), fx(4)}}},
      {"let-nesting",
       "(defun fut (a b) (let ((x (+ a 1)) (y (* b 2))) (let ((z (+ x y))) "
       "(- z x))))",
       "fut",
       {{fx(5), fx(7)}, {fx(0), fx(0)}}},
      {"conditionals",
       "(defun fut (a b) (cond ((zerop a) 'zero) ((minusp a) (- b)) "
       "((oddp a) (+ b 1)) (t b)))",
       "fut",
       {{fx(0), fx(9)}, {fx(-3), fx(9)}, {fx(3), fx(9)}, {fx(4), fx(9)}}},
      {"short-circuit",
       "(defun fut (a b) (if (and (plusp a) (or (minusp b) (zerop b))) "
       "'yes 'no))",
       "fut",
       {{fx(1), fx(-1)}, {fx(1), fx(0)}, {fx(1), fx(1)}, {fx(0), fx(-1)}}},
      {"tail-recursion",
       "(defun fut (n acc) (if (zerop n) acc (fut (1- n) (+ acc n))))", "fut",
       {{fx(10), fx(0)}, {fx(0), fx(5)}, {fx(1000), fx(0)}}},
      {"exptl",
       "(defun fut (x n a) (cond ((zerop n) a) ((oddp n) "
       "(fut (* x x) (floor n 2) (* a x))) (t (fut (* x x) (floor n 2) a))))",
       "fut",
       {{fx(2), fx(10), fx(1)}, {fx(3), fx(5), fx(1)}, {fx(5), fx(0), fx(1)}}},
      {"lists",
       "(defun fut (a b) (let ((l (list a b (+ a b)))) "
       "(cons (length l) (reverse l))))",
       "fut",
       {{fx(1), fx(2)}, {fx(-1), fx(1)}}},
      {"car-cdr",
       "(defun fut (l) (if (consp l) (cons (car l) (cddr l)) 'atom))", "fut",
       {{fx(5)}}},
      {"member-assoc",
       "(defun fut (a) (list (member a '(1 2 3)) (assoc a '((1 . one) (2 . two)))))",
       "fut",
       {{fx(2)}, {fx(9)}}},
      {"setq-progn",
       "(defun fut (a) (let ((x 0)) (setq x (+ x a)) (setq x (* x 2)) x))",
       "fut",
       {{fx(5)}, {fx(-3)}}},
      {"prog-loop",
       "(defun fut (n) (prog ((i 0) (acc 0)) loop (when (> i n) (return acc))"
       " (setq acc (+ acc i)) (setq i (1+ i)) (go loop)))",
       "fut",
       {{fx(10)}, {fx(0)}}},
      {"do-loop",
       "(defun fut (n) (do ((i 0 (1+ i)) (a 0 b) (b 1 (+ a b))) ((= i n) a)))",
       "fut",
       {{fx(10)}, {fx(1)}, {fx(0)}}},
      {"case-dispatch",
       "(defun fut (x) (case x ((1 2) 'small) ((10) 'ten) (t 'other)))", "fut",
       {{fx(1)}, {fx(10)}, {fx(99)}}},
      {"catch-throw",
       "(defun fut (l) (catch 'found (dolist (x l) (when (minusp x) "
       "(throw 'found x))) 'none))",
       "fut",
       {{}}}, // arguments prepared specially below
      {"closures",
       "(defun make-adder (n) (lambda (x) (+ x n)))"
       "(defun fut (n v) (funcall (make-adder n) v))",
       "fut",
       {{fx(10), fx(5)}, {fx(-1), fx(1)}}},
      {"closure-mutation",
       "(defun fut () (let ((n 0)) (let ((inc (lambda () (setq n (+ n 1))))) "
       "(funcall inc) (funcall inc) n)))",
       "fut",
       {{}}},
      {"higher-order",
       "(defun twice (f x) (funcall f (funcall f x)))"
       "(defun fut (a) (twice (lambda (v) (* v v)) a))",
       "fut",
       {{fx(3)}, {fx(-2)}}},
      {"optionals",
       "(defun hdr (a &optional (b 3) (c (+ a b))) (list a b c))"
       "(defun fut (k) (case k ((1) (hdr 10)) ((2) (hdr 10 20)) "
       "(t (hdr 10 20 30))))",
       "fut",
       {{fx(1)}, {fx(2)}, {fx(3)}}},
      {"rest-args",
       "(defun gather (a &rest more) (cons a more))"
       "(defun fut (k) (case k ((0) (gather 1)) ((1) (gather 1 2)) "
       "(t (gather 1 2 3))))",
       "fut",
       {{fx(0)}, {fx(1)}, {fx(2)}}},
      {"specials",
       "(defvar *depth*)"
       "(defun probe () *depth*)"
       "(defun fut (*depth*) (+ (probe) 1))",
       "fut",
       {{fx(41)}}},
      {"special-setq",
       "(defvar *acc*)"
       "(defun bump (x) (setq *acc* (+ *acc* x)))"
       "(defun fut (a) (let ((*acc* 0)) (bump a) (bump a) *acc*))",
       "fut",
       {{fx(7)}}},
      {"float-arrays",
       "(defun fut (n) (let ((a (make-array$f n)) (s 0.0))"
       " (dotimes (i n) (aset$f a i (float (* i i))))"
       " (dotimes (i n) (setq s (+$f s (aref$f a i)))) s))",
       "fut",
       {{fx(6)}}},
      {"matrix",
       "(defun fut (i j k)"
       " (let ((a (make-array$f 2 2)) (b (make-array$f 2 2))"
       "       (c (make-array$f 2 2)) (z (make-array$f 2 2)))"
       "  (aset$f a i j 3.0) (aset$f b j k 4.0) (aset$f c i k 0.5)"
       "  (aset$f z i k (+$f (*$f (aref$f a i j) (aref$f b j k))"
       "                     (aref$f c i k)))"
       "  (aref$f z i k)))",
       "fut",
       {{fx(1), fx(0), fx(1)}, {fx(0), fx(1), fx(0)}}},
      {"quadratic",
       "(defun fut (a b c)"
       "  (let ((d (- (* b b) (* 4.0 a c))))"
       "    (cond ((< d 0) '()) ((= d 0) (list (/ (- b) (* 2.0 a))))"
       "          (t (let ((two-a (* 2.0 a)) (sd (sqrt d)))"
       "               (list (/ (+ (- b) sd) two-a) (/ (- (- b) sd) two-a)))))))",
       "fut",
       {{fl(1.0), fl(-3.0), fl(2.0)}, {fl(1.0), fl(2.0), fl(1.0)},
        {fl(1.0), fl(0.0), fl(1.0)}}},
      {"testfn",
       "(defun frotz (a b c) (list a b c))"
       "(defun fut (a &optional (b 3.0) (c a))"
       "  (let ((d (+$f a b c)) (e (*$f a b c)))"
       "    (let ((q (sin$f e))) (frotz d e (max$f d e)) q)))",
       "fut",
       {{fl(0.25)}, {fl(1.0), fl(2.0)}, {fl(1.0), fl(2.0), fl(0.125)}}},
      {"errors-div0", "(defun fut (a) (/ a 0))", "fut", {{fx(1)}}},
      {"errors-type", "(defun fut (a) (car a))", "fut", {{fx(1)}}},
      {"errors-unbound", "(defvar *nope*) (defun fut () *nope*)", "fut", {{}}},
      {"errors-throw", "(defun fut () (throw 'missing 1))", "fut", {{}}},
  };
}

class CompiledVsInterp : public ::testing::TestWithParam<int> {};

TEST_P(CompiledVsInterp, Agree) {
  ProgramCase Case = corpus()[GetParam()];

  // The catch-throw case needs list arguments built in each module's heap,
  // so it gets a literal-based driver instead.
  if (std::string(Case.Name) == "catch-throw") {
    ir::Module Shared;
    Value L = Shared.DataHeap.list({fx(3), fx(-7), fx(2)});
    Value L2 = Shared.DataHeap.list({fx(1)});
    for (Value Arg : {L, L2, Value::nil()}) {
      std::string I = interpResult(Case.Source, Case.Fn, {Arg});
      std::string C = compiledResult(Case.Source, Case.Fn, {Arg}, {});
      EXPECT_EQ(I, C) << Case.Name;
    }
    return;
  }

  for (const auto &Args : Case.ArgSets) {
    std::string I = interpResult(Case.Source, Case.Fn, Args);
    ASSERT_EQ(I.find("CONVERT-ERROR"), std::string::npos) << I;

    // Full optimization, no optimization, and ablated backends must all
    // agree with the interpreter.
    driver::CompilerOptions Full;
    driver::CompilerOptions NoOpt;
    NoOpt.Optimize = false;
    driver::CompilerOptions Naive;
    Naive.Codegen.TnBind.UseRegisters = false;
    Naive.Codegen.RegisterTemps = false;
    Naive.Codegen.Annotate.RepAnalysis = false;
    Naive.Codegen.Annotate.PdlNumbers = false;
    Naive.Codegen.SpecialCache = false;
    Naive.Codegen.TailCalls = false;

    int Which = 0;
    for (const auto &Opts : {Full, NoOpt, Naive}) {
      std::string FullError;
      std::string C = compiledResult(Case.Source, Case.Fn, Args, Opts, &FullError);
      // Trigonometric results differ in the low bits: the compiler uses
      // the paper's truncated 0.159154942 cycles conversion (§5/§7), the
      // interpreter computes radians directly. Compare floats with a
      // tolerance when both results are plain numbers.
      char *EndI = nullptr, *EndC = nullptr;
      double DI = strtod(I.c_str(), &EndI);
      double DC = strtod(C.c_str(), &EndC);
      bool BothNumeric = EndI && *EndI == '\0' && EndC && *EndC == '\0' &&
                         !I.empty() && !C.empty();
      if (BothNumeric) {
        EXPECT_NEAR(DI, DC, 1e-6 * (1.0 + std::abs(DI)))
            << Case.Name << " (config " << Which << ") " << FullError;
      } else {
        EXPECT_EQ(I, C) << Case.Name << " (config " << Which << ") "
                        << FullError;
      }
      ++Which;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, CompiledVsInterp,
                         ::testing::Range(0, static_cast<int>(corpus().size())),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           std::string N = corpus()[Info.param].Name;
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

//===----------------------------------------------------------------------===//
// Machine-level property checks
//===----------------------------------------------------------------------===//

TEST(CompiledProperties, TailCallsUseConstantStack) {
  ir::Module M;
  auto Out = driver::compileSource(
      M, "(defun count-down (n) (if (zerop n) 'done (count-down (1- n))))");
  ASSERT_TRUE(Out.Ok) << Out.Error;
  vm::Machine VM(Out.Program, M.Syms, M.DataHeap);
  auto R1 = VM.call("count-down", {fx(10)});
  ASSERT_TRUE(R1.Ok) << R1.Error;
  uint64_t Small = VM.stats().StackHighWater;
  VM.resetStats();
  auto R2 = VM.call("count-down", {fx(50000)});
  ASSERT_TRUE(R2.Ok) << R2.Error;
  EXPECT_EQ(VM.stats().StackHighWater, Small)
      << "stack must not grow with recursion depth (§2)";
  EXPECT_GE(VM.stats().TailCalls, 50000u);
}

// Regression: a tail call passing fewer arguments than the activation
// received (here h1 entered with 3 words thanks to a supplied &optional,
// tail-calling 2-arg h0) must not shift the return word — the caller pops
// exactly what it pushed, and a slid stack let the callee's argument
// words bleed into the caller's frame locals. Found by the seeded fuzzer.
TEST(CompiledProperties, TailCallFromWiderActivationKeepsStackDiscipline) {
  const char *Src = "(defun h0 (x y) 0)\n"
                    "(defun h1 (p q &optional (r 9)) (h0 -1 q))\n"
                    "(defun fut (a b) (let ((v (h1 (h1 a a 3) 0))) b))\n"
                    "(defun main () (fut 0 3))";
  EXPECT_EQ(interpResult(Src, "main", {}), "3");
  driver::CompilerOptions O2;
  EXPECT_EQ(compiledResult(Src, "main", {}, O2), "3");
  driver::CompilerOptions O0;
  O0.Optimize = false;
  EXPECT_EQ(compiledResult(Src, "main", {}, O0), "3");
}

TEST(CompiledProperties, NonTailRecursionOverflowsGracefully) {
  ir::Module M;
  auto Out = driver::compileSource(
      M, "(defun deep (n) (if (zerop n) 0 (+ 1 (deep (1- n)))))");
  ASSERT_TRUE(Out.Ok) << Out.Error;
  vm::Machine VM(Out.Program, M.Syms, M.DataHeap);
  auto ROk = VM.call("deep", {fx(1000)});
  ASSERT_TRUE(ROk.Ok) << ROk.Error;
  EXPECT_EQ(sexpr::toString(*ROk.Result), "1000");
  auto RBad = VM.call("deep", {fx(10000000)});
  EXPECT_FALSE(RBad.Ok);
  EXPECT_NE(RBad.Error.find("stack overflow"), std::string::npos) << RBad.Error;
}

TEST(CompiledProperties, ArityCheckedAtRuntime) {
  ir::Module M;
  auto Out = driver::compileSource(M, "(defun f2 (a b) (+ a b))");
  ASSERT_TRUE(Out.Ok) << Out.Error;
  vm::Machine VM(Out.Program, M.Syms, M.DataHeap);
  EXPECT_TRUE(VM.call("f2", {fx(1), fx(2)}).Ok);
  EXPECT_FALSE(VM.call("f2", {fx(1)}).Ok);
  EXPECT_FALSE(VM.call("f2", {fx(1), fx(2), fx(3)}).Ok);
}

TEST(CompiledProperties, SpecialCacheReducesSearchSteps) {
  const char *Src = "(defvar *v*)"
                    "(defun poll (n) (let ((s 0)) (dotimes (i n) "
                    "(setq s (+ s *v*))) s))";
  auto Measure = [&](bool Cache) {
    ir::Module M;
    driver::CompilerOptions Opts;
    Opts.Codegen.SpecialCache = Cache;
    auto Out = driver::compileSource(M, Src, Opts);
    EXPECT_TRUE(Out.Ok) << Out.Error;
    vm::Machine VM(Out.Program, M.Syms, M.DataHeap);
    VM.setGlobalSpecial(M.Syms.intern("*v*"), fx(2));
    auto R = VM.call("poll", {fx(100)});
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(sexpr::toString(*R.Result), "200");
    return VM.stats().SpecialSearches;
  };
  uint64_t Cached = Measure(true);
  uint64_t Uncached = Measure(false);
  EXPECT_LE(Cached, 4u) << "one search per entry (§4.4)";
  EXPECT_GE(Uncached, 100u) << "a search per access without the cache";
}

TEST(CompiledProperties, PdlNumbersAvoidHeapBoxing) {
  // Float temporaries bound in a let and passed to a safe generic op:
  // with pdl numbers their pointer forms live in the frame.
  const char *Src = "(defun use (p q) (if (eql p q) 1 2))"
                    "(defun fut (x) (let ((d (+$f x 1.0)) (e (*$f x 2.0)))"
                    " (use d e)))";
  auto Measure = [&](bool Pdl) {
    ir::Module M;
    driver::CompilerOptions Opts;
    Opts.Codegen.Annotate.PdlNumbers = Pdl;
    auto Out = driver::compileSource(M, Src, Opts);
    EXPECT_TRUE(Out.Ok) << Out.Error;
    vm::Machine VM(Out.Program, M.Syms, M.DataHeap);
    VM.resetStats();
    auto R = VM.call("fut", {fl(3.0)});
    EXPECT_TRUE(R.Ok) << R.Error;
    return VM.stats().HeapObjects;
  };
  uint64_t WithPdl = Measure(true);
  uint64_t WithoutPdl = Measure(false);
  EXPECT_LT(WithPdl, WithoutPdl)
      << "stack allocation must eliminate heap boxes (§6.3)";
}

TEST(CompiledProperties, ListingLooksLikeTable4) {
  ir::Module M;
  auto Out = driver::compileSource(
      M, "(defun testfn (a &optional (b 3.0) (c a)) (+$f a b c))");
  ASSERT_TRUE(Out.Ok) << Out.Error;
  std::string L = driver::listing(Out.Program);
  EXPECT_NE(L.find("Dispatch on number of arguments"), std::string::npos) << L;
  EXPECT_NE(L.find("FADD"), std::string::npos);
  EXPECT_NE(L.find("%RET"), std::string::npos);
}

} // namespace
