//===- tests/integration/RandomProgramTest.cpp ----------------------------===//
//
// Property-based differential testing: a seeded generator produces random
// well-formed programs over fixnum arithmetic, lets, conditionals and
// list primitives; each program must evaluate identically in the
// interpreter, the unoptimized compiler, and the fully optimized compiler
// across an argument grid. This is the harness that caught most optimizer
// ordering bugs during development.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "frontend/Convert.h"
#include "interp/Interp.h"
#include "sexpr/Printer.h"
#include "vm/Machine.h"

#include <gtest/gtest.h>

#include <random>

using namespace s1lisp;
using sexpr::Value;

namespace {

/// Generates a random expression over the in-scope variables. All
/// generated operations are total over fixnums (no division), so the only
/// possible runtime error is fixnum overflow — excluded by keeping
/// constants and depth small.
class Generator {
public:
  explicit Generator(uint32_t Seed) : Rng(Seed) {}

  std::string program() {
    Vars = {"a", "b"};
    return "(defun fut (a b) " + expr(3) + ")";
  }

private:
  std::mt19937 Rng;
  std::vector<std::string> Vars;

  int pick(int N) { return std::uniform_int_distribution<int>(0, N - 1)(Rng); }

  std::string var() { return Vars[pick(static_cast<int>(Vars.size()))]; }

  std::string atom() {
    switch (pick(3)) {
    case 0:
      return std::to_string(pick(7) - 3);
    default:
      return var();
    }
  }

  std::string boolExpr(int Depth) {
    if (Depth == 0)
      return "(oddp " + atom() + ")";
    switch (pick(5)) {
    case 0:
      return "(< " + expr(Depth - 1) + " " + expr(Depth - 1) + ")";
    case 1:
      return "(= " + expr(Depth - 1) + " " + expr(Depth - 1) + ")";
    case 2:
      return "(and " + boolExpr(Depth - 1) + " " + boolExpr(Depth - 1) + ")";
    case 3:
      return "(or " + boolExpr(Depth - 1) + " " + boolExpr(Depth - 1) + ")";
    default:
      return "(zerop (mod " + expr(Depth - 1) + " 7))";
    }
  }

  std::string expr(int Depth) {
    if (Depth == 0)
      return atom();
    switch (pick(8)) {
    case 0:
      return "(+ " + expr(Depth - 1) + " " + expr(Depth - 1) + ")";
    case 1:
      return "(- " + expr(Depth - 1) + " " + expr(Depth - 1) + ")";
    case 2:
      return "(* " + expr(Depth - 1) + " " + atom() + ")";
    case 3:
      return "(if " + boolExpr(Depth - 1) + " " + expr(Depth - 1) + " " +
             expr(Depth - 1) + ")";
    case 4: {
      // (let ((v <init>)) <body with v in scope>)
      std::string V = "v" + std::to_string(Vars.size());
      std::string Init = expr(Depth - 1);
      Vars.push_back(V);
      std::string Body = expr(Depth - 1);
      Vars.pop_back();
      return "(let ((" + V + " " + Init + ")) " + Body + ")";
    }
    case 5:
      return "(max " + expr(Depth - 1) + " " + expr(Depth - 1) + ")";
    case 6:
      return "(min " + atom() + " " + expr(Depth - 1) + ")";
    default:
      return "(car (list " + expr(Depth - 1) + " " + atom() + "))";
    }
  }
};

std::string evalInterp(const std::string &Src, int64_t A, int64_t B) {
  ir::Module M;
  DiagEngine Diags;
  if (!frontend::convertSource(M, Src, Diags))
    return "CONVERT-ERROR";
  interp::Interpreter I(M);
  auto R = I.call("fut", {interp::RtValue::data(Value::fixnum(A)),
                          interp::RtValue::data(Value::fixnum(B))});
  return R.Ok ? R.Value.str() : "ERROR";
}

std::string evalCompiled(const std::string &Src, int64_t A, int64_t B,
                         bool Optimize) {
  ir::Module M;
  driver::CompilerOptions Opts;
  Opts.Optimize = Optimize;
  auto Out = driver::compileSource(M, Src, Opts);
  if (!Out.Ok)
    return "COMPILE-ERROR: " + Out.Error;
  vm::Machine VM(Out.Program, M.Syms, M.DataHeap);
  auto R = VM.call("fut", {Value::fixnum(A), Value::fixnum(B)});
  if (!R.Ok)
    return "ERROR";
  return R.Result ? sexpr::toString(*R.Result) : "#<undecodable>";
}

class RandomProgram : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RandomProgram, AllThreeImplementationsAgree) {
  Generator G(GetParam());
  std::string Src = G.program();
  SCOPED_TRACE(Src);
  for (int64_t A : {-5, 0, 1, 4}) {
    for (int64_t B : {-2, 3}) {
      std::string I = evalInterp(Src, A, B);
      ASSERT_NE(I, "CONVERT-ERROR");
      EXPECT_EQ(I, evalCompiled(Src, A, B, /*Optimize=*/false))
          << "unoptimized, args " << A << "," << B;
      EXPECT_EQ(I, evalCompiled(Src, A, B, /*Optimize=*/true))
          << "optimized, args " << A << "," << B;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram, ::testing::Range(1u, 41u));

} // namespace
