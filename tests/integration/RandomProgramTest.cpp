//===- tests/integration/RandomProgramTest.cpp ----------------------------===//
//
// The original seeded random-program property test, now a thin wrapper
// over the src/fuzz library: a restricted grammar (fixnum arithmetic only,
// no helper defuns) checked interpreter-vs-compiled at O2 and O0. The
// full-grammar, full-ablation-matrix tier lives in
// tests/fuzz/DifferentialFuzzTest.cpp.
//
//===----------------------------------------------------------------------===//

#include "driver/Ablation.h"
#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"

#include "gtest/gtest.h"

using namespace s1lisp;

namespace {

class RandomProgram : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomProgram, CompiledMatchesInterpreter) {
  fuzz::GenOptions GO;
  GO.MaxDepth = 3;
  GO.Helpers = 0;
  GO.Floats = false;

  fuzz::OracleOptions OO;
  OO.Configs = {*driver::ablationByName("O2"), *driver::ablationByName("O0")};

  fuzz::Generator G(GetParam(), GO);
  fuzz::GeneratedProgram P = G.generate();
  fuzz::CheckResult R = fuzz::checkProgram(P, OO);
  ASSERT_NE(R.St, fuzz::CheckResult::Status::ConvertError)
      << R.ConvertMessage << "\n"
      << P.Source;
  EXPECT_EQ(R.St, fuzz::CheckResult::Status::Agree)
      << (R.Divergences.empty()
              ? std::string()
              : R.Divergences.front().Config + ": " +
                    R.Divergences.front().Reference.Text + " vs " +
                    R.Divergences.front().Actual.Text)
      << "\n"
      << P.Source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram, ::testing::Range(1u, 41u));

} // namespace
