//===- tests/integration/ExptlGoldenTest.cpp ------------------------------===//
//
// Golden checks over examples/exptl.lisp, mirroring the testfn Table-4
// transcript example: every engine (interpreter, -O0, fully optimized)
// computes the §2 result, the assembly listing carries both functions,
// and the back-translated optimized source still reads like the paper's.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "frontend/Convert.h"
#include "interp/Interp.h"
#include "ir/BackTranslate.h"
#include "sexpr/Printer.h"
#include "vm/Machine.h"

#include "gtest/gtest.h"

#include <fstream>
#include <sstream>

using namespace s1lisp;
using sexpr::Value;

namespace {

std::string readExptl() {
  std::ifstream In(std::string(S1LISP_EXAMPLES_DIR) + "/exptl.lisp");
  EXPECT_TRUE(In.good()) << "examples/exptl.lisp not found";
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

std::string runCompiled(const std::string &Source, bool Optimize) {
  ir::Module M;
  driver::CompilerOptions Opts;
  Opts.Optimize = Optimize;
  auto Out = driver::compileSource(M, Source, Opts);
  if (!Out.Ok)
    return "COMPILE-ERROR: " + Out.Error;
  vm::Machine VM(Out.Program, M.Syms, M.DataHeap);
  auto R = VM.call("main", {});
  if (!R.Ok)
    return "ERROR: " + R.Error;
  return R.Result ? sexpr::toString(*R.Result) : "#<undecodable>";
}

TEST(ExptlGolden, AllEnginesComputeTheSection2Result) {
  std::string Source = readExptl();

  ir::Module M;
  DiagEngine Diags;
  ASSERT_TRUE(frontend::convertSource(M, Source, Diags)) << Diags.str();
  interp::Interpreter I(M);
  auto R = I.call("main", {});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value.str(), "1024");

  EXPECT_EQ(runCompiled(Source, /*Optimize=*/false), "1024");
  EXPECT_EQ(runCompiled(Source, /*Optimize=*/true), "1024");
}

TEST(ExptlGolden, ListingCarriesBothFunctions) {
  std::string Source = readExptl();
  ir::Module M;
  auto Out = driver::compileSource(M, Source);
  ASSERT_TRUE(Out.Ok) << Out.Error;
  std::string Listing = driver::listing(Out.Program);
  EXPECT_NE(Listing.find("exptl"), std::string::npos);
  EXPECT_NE(Listing.find("main"), std::string::npos);
}

TEST(ExptlGolden, OptimizedBackTranslationKeepsTheRecursion) {
  std::string Source = readExptl();
  ir::Module M;
  auto Out = driver::compileSource(M, Source);
  ASSERT_TRUE(Out.Ok) << Out.Error;
  ir::Function *F = M.lookup("exptl");
  ASSERT_NE(F, nullptr);
  std::string Back = sexpr::toPrettyString(ir::backTranslateFunction(*F));
  // The optimizer must not unroll or destroy the recursive structure.
  EXPECT_NE(Back.find("exptl"), std::string::npos) << Back;
  EXPECT_NE(Back.find("zerop"), std::string::npos) << Back;
}

} // namespace
