//===- tests/integration/GcWorkloadsTest.cpp ------------------------------===//
//
// Golden-value coverage for the cons-heavy workloads in examples/gc/.
// Each workload has a closed-form checksum, so the same sources serve
// three masters: these tests pin the values at small sizes (interpreter
// and compiled, with and without a collection forced at every cons),
// bench_gc re-runs them at millions of conses, and the examples stay
// runnable documentation.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "frontend/Convert.h"
#include "interp/Interp.h"
#include "sexpr/Printer.h"
#include "vm/Machine.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace s1lisp;
using sexpr::Value;

namespace {

std::string slurp(const std::string &Name) {
  std::ifstream In(std::string(S1LISP_EXAMPLES_DIR) + "/gc/" + Name);
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

struct Workload {
  const char *File;
  const char *Fn;
  int64_t (*Golden)(int64_t N); // closed-form checksum
  int64_t MainValue;            // value of (main) at the file's built-in size
};

int64_t sumSquares(int64_t N) { return N * (N - 1) * (2 * N - 1) / 6; }

const Workload Workloads[] = {
    {"assoc.lisp", "alist-workload", sumSquares, 85344},
    {"append-reverse.lisp", "append-reverse-workload",
     [](int64_t N) { return N * (N * (N + 1) / 2); }, 936},
    {"map-chain.lisp", "map-chain-workload",
     [](int64_t N) { return 3 * (sumSquares(N) + N); }, 31344},
};

std::string interpRun(const std::string &Src, const std::string &Fn,
                      const std::vector<Value> &Args, uint64_t GcEvery) {
  ir::Module M;
  DiagEngine Diags;
  if (!frontend::convertSource(M, Src, Diags))
    return "CONVERT-ERROR: " + Diags.str();
  interp::Interpreter I(M);
  if (GcEvery) {
    I.setGcEvery(GcEvery);
    I.setGcVerify(true);
  }
  std::vector<interp::RtValue> RtArgs;
  for (Value V : Args)
    RtArgs.push_back(interp::RtValue::data(V));
  auto R = I.call(Fn, RtArgs);
  return R.Ok ? R.Value.str() : "ERROR: " + R.Error;
}

std::string compiledRun(const std::string &Src, const std::string &Fn,
                        const std::vector<Value> &Args, uint64_t GcEvery) {
  ir::Module M;
  auto Out = driver::compileSource(M, Src);
  if (!Out.Ok)
    return "COMPILE-ERROR: " + Out.Error;
  vm::Machine VM(Out.Program, M.Syms, M.DataHeap);
  VM.setGcEvery(GcEvery);
  auto R = VM.call(Fn, Args);
  if (!R.Ok)
    return "ERROR: " + R.Error;
  return R.Result ? sexpr::toString(*R.Result) : "#<undecodable>";
}

class GcWorkloads : public ::testing::TestWithParam<int> {};

TEST_P(GcWorkloads, GoldenValuesAtSmallSizes) {
  const Workload &W = Workloads[GetParam()];
  std::string Src = slurp(W.File);
  ASSERT_FALSE(Src.empty()) << W.File;

  for (int64_t N : {0, 1, 5, 24}) {
    std::string Want = std::to_string(W.Golden(N));
    std::vector<Value> Args = {Value::fixnum(N)};
    // The collector must be invisible: GC off, a collection every 64
    // conses, and a collection at every cons all print the same number,
    // in both engines, with the interpreter's heap verifier enabled.
    for (uint64_t GcEvery : {0, 64, 1}) {
      EXPECT_EQ(interpRun(Src, W.Fn, Args, GcEvery), Want)
          << W.File << " n=" << N << " gc-every=" << GcEvery;
      EXPECT_EQ(compiledRun(Src, W.Fn, Args, GcEvery), Want)
          << W.File << " n=" << N << " gc-every=" << GcEvery;
    }
  }
}

TEST_P(GcWorkloads, MainMatchesDocumentedChecksum) {
  const Workload &W = Workloads[GetParam()];
  std::string Src = slurp(W.File);
  ASSERT_FALSE(Src.empty()) << W.File;
  std::string Want = std::to_string(W.MainValue);
  EXPECT_EQ(interpRun(Src, "main", {}, 0), Want) << W.File;
  EXPECT_EQ(compiledRun(Src, "main", {}, 0), Want) << W.File;
}

INSTANTIATE_TEST_SUITE_P(Corpus, GcWorkloads,
                         ::testing::Range(0, 3),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           std::string N = Workloads[Info.param].Fn;
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

} // namespace
