//===- tests/s1/IsaTest.cpp - Target description tests --------------------===//

#include "s1/Isa.h"

#include <gtest/gtest.h>

using namespace s1lisp;
using namespace s1lisp::s1;

namespace {

TEST(IsaTest, TaggedPointerEncoding) {
  uint64_t W = makePointer(Tag::Cons, 0x1234);
  EXPECT_EQ(tagOf(W), Tag::Cons);
  EXPECT_EQ(addrOf(W), 0x1234u);
  EXPECT_EQ(NilWord, 0u);
  EXPECT_EQ(tagOf(NilWord), Tag::Nil);
}

TEST(IsaTest, FixnumImmediates) {
  EXPECT_EQ(fixnumValue(makeFixnum(42)), 42);
  EXPECT_EQ(fixnumValue(makeFixnum(-42)), -42);
  EXPECT_EQ(fixnumValue(makeFixnum(INT32_MIN)), INT32_MIN);
  EXPECT_EQ(fixnumValue(makeFixnum(INT32_MAX)), INT32_MAX);
  EXPECT_EQ(tagOf(makeFixnum(-1)), Tag::Fixnum);
}

TEST(IsaTest, RegisterRoles) {
  EXPECT_TRUE(isRtReg(RTA));
  EXPECT_TRUE(isRtReg(RTB));
  EXPECT_FALSE(isRtReg(RV));
  EXPECT_FALSE(isAllocatableReg(SP));
  EXPECT_FALSE(isAllocatableReg(FP));
  EXPECT_FALSE(isAllocatableReg(RTA));
  EXPECT_FALSE(isAllocatableReg(ENV));
  EXPECT_TRUE(isAllocatableReg(7));
  EXPECT_TRUE(isAllocatableReg(26));
  EXPECT_STREQ(regName(RTA), "RTA");
  EXPECT_STREQ(regName(SP), "SP");
}

TEST(IsaTest, TwoAndAHalfAddressValidation) {
  // OP M1,M2 — both general: fine.
  Instruction TwoOp;
  TwoOp.Op = Opcode::FADD;
  TwoOp.A = Operand::mem(FP, 4);
  TwoOp.B = Operand::mem(FP, 8);
  EXPECT_TRUE(validOperandPattern(TwoOp));

  // OP RTA,M1,M2 — destination is RT: fine.
  Instruction ThreeRt = TwoOp;
  ThreeRt.A = Operand::reg(RTA);
  ThreeRt.B = Operand::mem(FP, 4);
  ThreeRt.X = Operand::mem(FP, 8);
  EXPECT_TRUE(validOperandPattern(ThreeRt));

  // OP M1,RTA,M2 — first source is RT: fine.
  Instruction ThreeSrc = ThreeRt;
  ThreeSrc.A = Operand::mem(FP, 4);
  ThreeSrc.B = Operand::reg(RTA);
  EXPECT_TRUE(validOperandPattern(ThreeSrc));

  // OP M1,M2,M3 — three general operands: the encoding does not exist.
  Instruction Bad = ThreeRt;
  Bad.A = Operand::reg(7);
  Bad.B = Operand::reg(8);
  Bad.X = Operand::reg(9);
  EXPECT_FALSE(validOperandPattern(Bad));

  // Immediate destination is meaningless.
  Instruction ImmDst = TwoOp;
  ImmDst.A = Operand::imm(3);
  EXPECT_FALSE(validOperandPattern(ImmDst));

  // Non-arithmetic opcodes are exempt.
  Instruction Mov;
  Mov.Op = Opcode::MOV;
  Mov.A = Operand::reg(7);
  Mov.B = Operand::reg(8);
  EXPECT_TRUE(validOperandPattern(Mov));
}

TEST(IsaTest, FinalizeResolvesLabels) {
  AsmFunction F;
  F.Name = "t";
  int L = F.newLabel();
  Instruction J;
  J.Op = Opcode::JMPA;
  J.A = Operand::label(L);
  F.emit(J);
  F.placeLabel(L);
  std::string Error;
  ASSERT_TRUE(F.finalize(Error)) << Error;
  EXPECT_EQ(F.LabelPos[L], 1);
}

TEST(IsaTest, FinalizeRejectsUnplacedLabel) {
  AsmFunction F;
  F.Name = "t";
  int L = F.newLabel();
  Instruction J;
  J.Op = Opcode::JMPA;
  J.A = Operand::label(L);
  F.emit(J);
  std::string Error;
  EXPECT_FALSE(F.finalize(Error));
  EXPECT_NE(Error.find("unplaced label"), std::string::npos);
}

TEST(IsaTest, FinalizeRejectsBadPattern) {
  AsmFunction F;
  F.Name = "t";
  Instruction Bad;
  Bad.Op = Opcode::ADD;
  Bad.A = Operand::reg(7);
  Bad.B = Operand::reg(8);
  Bad.X = Operand::reg(9);
  F.emit(Bad);
  std::string Error;
  EXPECT_FALSE(F.finalize(Error));
  EXPECT_NE(Error.find("2 1/2-address"), std::string::npos);
}

TEST(IsaTest, CountOpcode) {
  AsmFunction F;
  Instruction M;
  M.Op = Opcode::MOV;
  M.A = Operand::reg(7);
  M.B = Operand::reg(8);
  F.emit(M);
  F.emit(M);
  EXPECT_EQ(F.countOpcode(Opcode::MOV), 2u);
  EXPECT_EQ(F.countOpcode(Opcode::FADD), 0u);
}

TEST(IsaTest, ListingStyle) {
  AsmFunction F;
  F.Name = "demo";
  Instruction I;
  I.Op = Opcode::FADD;
  I.A = Operand::reg(RTA);
  I.B = Operand::mem(FP, -3);
  I.X = Operand::mem(FP, -4);
  I.Comment = "(+$F C B)";
  F.emit(I);
  std::string L = printListing(F);
  EXPECT_NE(L.find("(FADD RTA (FP -3) (FP -4))"), std::string::npos) << L;
  EXPECT_NE(L.find(";(+$F C B)"), std::string::npos) << L;
}

TEST(IsaTest, OperandPrinting) {
  EXPECT_EQ(printOperand(Operand::reg(RTB)), "RTB");
  EXPECT_EQ(printOperand(Operand::imm(-7)), "(? -7)");
  EXPECT_EQ(printOperand(Operand::mem(FP, 2)), "(FP 2)");
  EXPECT_EQ(printOperand(Operand::memIndexed(7, 3, RTA)), "(R7 3 RTA)");
  EXPECT_EQ(printOperand(Operand::memIndexed(7, 3, RTA, 2)), "(R7 3 RTA^2)");
}

TEST(IsaTest, RtErrorMessages) {
  EXPECT_STREQ(rtErrorMessage(RtError::WrongNumberOfArguments),
               "wrong number of arguments");
  EXPECT_STREQ(rtErrorMessage(RtError::UncaughtThrow), "uncaught throw");
}

} // namespace
