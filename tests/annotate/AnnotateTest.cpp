//===- tests/annotate/AnnotateTest.cpp - §4.4/§6.2/§6.3 phase tests -------===//

#include "annotate/Annotate.h"

#include "frontend/Convert.h"
#include "opt/MetaEval.h"

#include <gtest/gtest.h>

using namespace s1lisp;
using namespace s1lisp::ir;

namespace {

class AnnotateTest : public ::testing::Test {
protected:
  ir::Module M;

  Function *prep(const std::string &Src, bool Optimize = false) {
    DiagEngine Diags;
    EXPECT_TRUE(frontend::convertSource(M, Src, Diags)) << Diags.str();
    Function *F = M.functions().back().get();
    if (Optimize)
      opt::metaEvaluate(*F);
    return F;
  }

  const LambdaNode *findLambda(Function *F, LambdaStrategy S) {
    const LambdaNode *Found = nullptr;
    forEachNode(static_cast<Node *>(F->Root), [&](Node *N) {
      if (auto *L = dyn_cast<LambdaNode>(N))
        if (L != F->Root && L->Strategy == S && !Found)
          Found = L;
    });
    return Found;
  }
};

TEST_F(AnnotateTest, LetLambdasAreOpen) {
  Function *F = prep("(defun f (a) (let ((x (+ a 1))) x))");
  auto Stats = annotate::annotate(*F);
  EXPECT_EQ(Stats.OpenLambdas, 1u);
  EXPECT_EQ(Stats.FullClosures, 0u);
  EXPECT_NE(findLambda(F, LambdaStrategy::Open), nullptr);
}

TEST_F(AnnotateTest, OrThunksAreJumpLambdas) {
  Function *F = prep("(defun f (a b) (or a b))");
  auto Stats = annotate::annotate(*F);
  EXPECT_EQ(Stats.JumpLambdas, 1u);
  EXPECT_EQ(Stats.FullClosures, 0u)
      << "the or-expansion thunk must not become a heap closure";
}

TEST_F(AnnotateTest, EscapingLambdasAreFullClosures) {
  Function *F = prep("(defun f (a) (lambda () a))");
  auto Stats = annotate::annotate(*F);
  EXPECT_EQ(Stats.FullClosures, 1u);
  EXPECT_EQ(Stats.HeapVariables, 1u) << "a is captured and must be heap-bound";
  EXPECT_TRUE(F->Root->Required[0]->HeapAllocated);
}

TEST_F(AnnotateTest, UncapturedVariablesStayOnTheStack) {
  Function *F = prep("(defun f (a b) (+ a b))");
  annotate::annotate(*F);
  EXPECT_FALSE(F->Root->Required[0]->HeapAllocated);
  EXPECT_FALSE(F->Root->Required[1]->HeapAllocated);
}

TEST_F(AnnotateTest, ThunkCalledOutsideTailIsNotJump) {
  // The thunk's call result feeds an addition: not a local tail position.
  Function *F = prep("(defun f (th) (+ 1 ((lambda () 2))))");
  auto Stats = annotate::annotate(*F);
  // ((lambda () 2)) is an Open call (direct), not a thunk situation.
  EXPECT_EQ(Stats.JumpLambdas, 0u);
}

TEST_F(AnnotateTest, LocalTailPositionWalksLetsAndIfs) {
  Function *F = prep("(defun f (p) (let ((x 1)) (if p x 2)))");
  const auto *Let = cast<CallNode>(F->Root->Body);
  const auto *L = cast<LambdaNode>(Let->CalleeExpr);
  const auto *If = cast<IfNode>(L->Body);
  EXPECT_TRUE(annotate::isLocalTailPosition(F->Root->Body, If->Then));
  EXPECT_TRUE(annotate::isLocalTailPosition(F->Root->Body, If->Else));
  EXPECT_FALSE(annotate::isLocalTailPosition(F->Root->Body, If->Test));
}

TEST_F(AnnotateTest, RawFloatVariables) {
  Function *F = prep("(defun f (x)"
                     "  (let ((d (+$f x 1.0)) (e (*$f x 2.0)))"
                     "    (+$f d e)))");
  auto Stats = annotate::annotate(*F);
  EXPECT_EQ(Stats.RawFloatVariables, 2u);
  // The root parameter arrives as a pointer by convention.
  EXPECT_EQ(F->Root->Required[0]->VarRep, Rep::POINTER);
}

TEST_F(AnnotateTest, MixedTypeFlowsStayPointer) {
  // y is initialized with a fixnum literal but never used raw: POINTER.
  Function *F = prep("(defun f (x) (let ((y 1)) (if (integerp y) y x)))");
  annotate::annotate(*F);
  for (const Variable *V : F->variables()) {
    if (V->name()->name() == "y") {
      EXPECT_EQ(V->VarRep, Rep::POINTER);
    }
  }
}

TEST_F(AnnotateTest, WrittenFloatVariableStaysRawWhenWritesAgree) {
  Function *F = prep("(defun f (x)"
                     "  (let ((acc 0.0))"
                     "    (setq acc (+$f acc x))"
                     "    (setq acc (*$f acc 2.0))"
                     "    (+$f acc 1.0)))");
  auto Stats = annotate::annotate(*F);
  EXPECT_GE(Stats.RawFloatVariables, 1u) << "acc should live unboxed";
}

TEST_F(AnnotateTest, PdlAuthorizedForSafeUses) {
  Function *F = prep("(defun callee (p q) p)"
                     "(defun f (x)"
                     "  (let ((d (+$f x 1.0)) (e (*$f x 2.0)))"
                     "    (callee d e)"
                     "    nil))",
                     /*Optimize=*/false);
  auto Stats = annotate::annotate(*F);
  EXPECT_GE(Stats.PdlSites, 2u)
      << "d and e only flow into a user call: stack allocation allowed";
}

TEST_F(AnnotateTest, PdlDeniedWhenStoredIntoTheHeap) {
  Function *F = prep("(defun f (x) (cons (+$f x 1.0) nil))");
  auto Stats = annotate::annotate(*F);
  EXPECT_EQ(Stats.PdlSites, 0u)
      << "cons stores the pointer into a heap object: unsafe (§6.3)";
}

TEST_F(AnnotateTest, PdlDeniedForReturnedValues) {
  Function *F = prep("(defun f (x) (+$f x 1.0))");
  auto Stats = annotate::annotate(*F);
  EXPECT_EQ(Stats.PdlSites, 0u) << "returning is an unsafe operation";
}

TEST_F(AnnotateTest, PdlAuthorizerPassesThroughIfArms) {
  // (atan$f (if p x y) 3.0): both arms' pdl numbers are authorized by the
  // atan call, not the if — the paper's own example.
  Function *F = prep("(defun g (v) v)"
                     "(defun f (p a b)"
                     "  (g (atan$f (if p (+$f a 1.0) (*$f b 2.0)) 3.0))"
                     "  nil)");
  auto Stats = annotate::annotate(*F);
  EXPECT_GE(Stats.PdlSites, 0u);
  // Check the specific nodes: the raw +$f inside the if coerces for... it
  // feeds atan$f raw, so no coercion site exists inside the arms. The
  // atan RESULT, however, becomes a pointer for the call to g: one site.
  unsigned Authorized = 0;
  forEachNode(static_cast<Node *>(F->Root), [&](Node *N) {
    Authorized += N->Ann.PdlOkp != nullptr;
  });
  EXPECT_GE(Authorized, 1u);
}

TEST_F(AnnotateTest, AblationFlagsWork) {
  Function *F = prep("(defun f (x) (let ((d (+$f x 1.0))) (print d) nil))");
  annotate::AnnotateOptions Off;
  Off.RepAnalysis = false;
  Off.PdlNumbers = false;
  auto Stats = annotate::annotate(*F, Off);
  EXPECT_EQ(Stats.RawFloatVariables, 0u);
  EXPECT_EQ(Stats.PdlSites, 0u);
  for (const Variable *V : F->variables())
    EXPECT_EQ(V->VarRep, Rep::POINTER);
}

} // namespace
