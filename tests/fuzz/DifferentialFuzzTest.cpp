//===- tests/fuzz/DifferentialFuzzTest.cpp --------------------------------===//
//
// The bounded tier of the differential fuzzer: a fixed block of seeds runs
// through the full ablation matrix on every ctest invocation, plus unit
// coverage of the generator's determinism and weights table, the oracle's
// error classification, and the delta-debugging reducer (demonstrated
// against a deliberately mis-flagged constant folder).
//
//===----------------------------------------------------------------------===//

#include "driver/Ablation.h"
#include "frontend/Convert.h"
#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reducer.h"
#include "interp/Interp.h"
#include "sexpr/Printer.h"
#include "vm/Machine.h"

#include "gtest/gtest.h"

#include <fstream>
#include <optional>
#include <sstream>

using namespace s1lisp;

namespace {

std::string describe(const fuzz::CheckResult &R) {
  if (R.Divergences.empty())
    return "";
  const fuzz::Divergence &D = R.Divergences.front();
  std::ostringstream Out;
  Out << "config " << D.Config << " arg row " << D.ArgIndex
      << "\n  reference: " << D.Reference.Text
      << "\n  actual:    " << D.Actual.Text;
  return Out.str();
}

//===----------------------------------------------------------------------===//
// Bounded differential tier: 500 seeded programs x the full matrix.
// Batched so ctest -j spreads the seeds across cores.
//===----------------------------------------------------------------------===//

constexpr unsigned BatchSize = 25;

class DifferentialFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(DifferentialFuzz, AgreesAcrossAblationMatrix) {
  fuzz::GenOptions GO; // library defaults: full grammar, floats, helpers
  fuzz::OracleOptions OO; // full ablation matrix
  // Tight fuel keeps the tier's wall clock bounded: the rare seed whose
  // loops run long exhausts fuel instead, and fuel rows are tolerated as
  // tainted by the oracle (the CLI soak keeps the roomier defaults).
  OO.InterpFuel = 200'000;
  OO.VmFuel = 2'000'000;
  for (unsigned Seed = GetParam(); Seed < GetParam() + BatchSize; ++Seed) {
    fuzz::Generator G(Seed, GO);
    fuzz::GeneratedProgram P = G.generate();
    fuzz::CheckResult R = fuzz::checkProgram(P, OO);
    ASSERT_NE(R.St, fuzz::CheckResult::Status::ConvertError)
        << "seed " << Seed << " did not convert:\n"
        << R.ConvertMessage << "\n"
        << P.Source;
    EXPECT_EQ(R.St, fuzz::CheckResult::Status::Agree)
        << "seed " << Seed << " diverged: " << describe(R) << "\n"
        << P.Source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range(1u, 501u, BatchSize));

//===----------------------------------------------------------------------===//
// Forced-GC schedules: the same generated programs re-run with a collection
// forced every N conses. A moving collector earns its keep here — any
// missed root shows up as a divergence from the GC-off baseline, and the
// heap verifier (enabled for every interpreter run below) aborts on
// structural corruption right after the faulty collection.
//===----------------------------------------------------------------------===//

/// Interpreter outcomes for every grid row of a generated program, with a
/// collection forced every GcEvery conses (0 = collector off). Each row
/// gets a fresh evaluator, mirroring the oracle's own discipline.
std::optional<std::vector<fuzz::Outcome>>
interpGrid(const fuzz::GeneratedProgram &P, uint64_t Fuel, uint64_t GcEvery) {
  ir::Module M;
  DiagEngine Diags;
  if (!frontend::convertSource(M, P.Source, Diags))
    return std::nullopt;
  std::vector<fuzz::Outcome> Out;
  for (const std::vector<sexpr::Value> &Row : P.ArgGrid) {
    interp::Interpreter I(M);
    I.setFuel(Fuel);
    if (GcEvery) {
      I.setGcEvery(GcEvery);
      I.setGcVerify(true); // verify() after every collection, abort if dirty
    }
    std::vector<interp::RtValue> Args;
    Args.reserve(Row.size());
    for (sexpr::Value V : Row)
      Args.push_back(interp::RtValue::data(V));
    interp::Interpreter::Result R = I.call(P.Entry, Args);
    Out.push_back(R.Ok ? fuzz::Outcome::value(R.Value.str())
                       : fuzz::Outcome::error(R.Error));
  }
  return Out;
}

class GcScheduleFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(GcScheduleFuzz, SchedulesAreObservationallyIdentical) {
  constexpr uint64_t InterpFuel = 100'000;
  constexpr uint64_t VmFuel = 1'000'000;
  constexpr uint64_t Schedules[] = {1, 7, 64};

  // Two configurations bound the cost of the 3-schedule re-run: the full
  // optimizer and the bare translator. The optimization-sensitive rows are
  // the 500-seed tier's job; this tier varies only the collector.
  std::vector<driver::AblationConfig> Configs;
  Configs.push_back(driver::ablationMatrix().front());
  ASSERT_EQ(Configs.front().Name, "O2");
  std::optional<driver::AblationConfig> O0 = driver::ablationByName("O0");
  ASSERT_TRUE(O0.has_value());
  Configs.push_back(*O0);

  for (unsigned Seed = GetParam(); Seed < GetParam() + BatchSize; ++Seed) {
    fuzz::Generator G(Seed);
    fuzz::GeneratedProgram P = G.generate();

    std::optional<std::vector<fuzz::Outcome>> Baseline =
        interpGrid(P, InterpFuel, /*GcEvery=*/0);
    ASSERT_TRUE(Baseline.has_value())
        << "seed " << Seed << " did not convert:\n"
        << P.Source;

    for (uint64_t N : Schedules) {
      // Cross-schedule identity: collecting every N conses must not
      // change a single observable outcome relative to the GC-off run.
      std::optional<std::vector<fuzz::Outcome>> Got =
          interpGrid(P, InterpFuel, N);
      ASSERT_TRUE(Got.has_value());
      ASSERT_EQ(Got->size(), Baseline->size());
      for (size_t Row = 0; Row < Baseline->size(); ++Row) {
        const fuzz::Outcome &Want = (*Baseline)[Row];
        const fuzz::Outcome &Have = (*Got)[Row];
        ASSERT_EQ(Have.K, Want.K)
            << "seed " << Seed << " gc-every=" << N << " row " << Row
            << "\n  baseline: " << Want.Text << "\n  actual:   " << Have.Text
            << "\n" << P.Source;
        if (Want.K == fuzz::Outcome::Kind::Value)
          EXPECT_EQ(Have.Text, Want.Text)
              << "seed " << Seed << " gc-every=" << N << " row " << Row << "\n"
              << P.Source;
        else
          EXPECT_EQ(Have.EC, Want.EC)
              << "seed " << Seed << " gc-every=" << N << " row " << Row
              << "\n  baseline: " << Want.Text << "\n  actual:   " << Have.Text
              << "\n" << P.Source;
      }

      // The interp-vs-VM differential holds at this schedule too (the VM
      // side forces its own word-heap collections every N allocations).
      fuzz::OracleOptions OO;
      OO.Configs = Configs;
      OO.InterpFuel = InterpFuel;
      OO.VmFuel = VmFuel;
      OO.GcEvery = N;
      fuzz::CheckResult R = fuzz::checkProgram(P, OO);
      EXPECT_EQ(R.St, fuzz::CheckResult::Status::Agree)
          << "seed " << Seed << " gc-every=" << N << " diverged: "
          << describe(R) << "\n"
          << P.Source;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcScheduleFuzz,
                         ::testing::Range(1u, 201u, BatchSize));

//===----------------------------------------------------------------------===//
// Generator properties
//===----------------------------------------------------------------------===//

TEST(FuzzGenerator, Deterministic) {
  for (uint32_t Seed : {1u, 7u, 1234u}) {
    fuzz::Generator A(Seed), B(Seed);
    EXPECT_EQ(A.generate().Source, B.generate().Source);
  }
  fuzz::Generator A(3), B(4);
  EXPECT_NE(A.generate().Source, B.generate().Source);
}

TEST(FuzzGenerator, ZeroWeightDisablesConstruct) {
  fuzz::GenOptions GO;
  ASSERT_TRUE(fuzz::applyWeightOverride(GO.W, "do=0,case=0,cond=0"));
  for (uint32_t Seed = 1; Seed <= 30; ++Seed) {
    fuzz::Generator G(Seed, GO);
    std::string Src = G.generate().Source;
    EXPECT_EQ(Src.find("(do "), std::string::npos) << Src;
    EXPECT_EQ(Src.find("(case "), std::string::npos) << Src;
    EXPECT_EQ(Src.find("(cond "), std::string::npos) << Src;
  }
}

TEST(FuzzGenerator, WeightOverrideParsing) {
  fuzz::GenWeights W;
  EXPECT_TRUE(fuzz::applyWeightOverride(W, "do=20"));
  EXPECT_EQ(W.Do, 20u);
  EXPECT_TRUE(fuzz::applyWeightOverride(W, "arith=1,let*=5,float=0"));
  EXPECT_EQ(W.Arith, 1u);
  EXPECT_EQ(W.LetStar, 5u);
  EXPECT_EQ(W.FloatArith, 0u);
  EXPECT_FALSE(fuzz::applyWeightOverride(W, "bogus=1"));
  EXPECT_FALSE(fuzz::applyWeightOverride(W, "do="));
  EXPECT_FALSE(fuzz::applyWeightOverride(W, "do=abc"));
}

TEST(FuzzGenerator, ProgramsConvertAndCarryGrid) {
  for (uint32_t Seed = 600; Seed < 620; ++Seed) {
    fuzz::Generator G(Seed);
    fuzz::GeneratedProgram P = G.generate();
    EXPECT_FALSE(P.ArgGrid.empty());
    ir::Module M;
    DiagEngine Diags;
    EXPECT_TRUE(frontend::convertSource(M, P.Source, Diags))
        << Diags.str() << "\n"
        << P.Source;
  }
}

//===----------------------------------------------------------------------===//
// Oracle unit behavior
//===----------------------------------------------------------------------===//

TEST(FuzzOracle, ClassifiesErrors) {
  using fuzz::ErrorClass;
  EXPECT_EQ(fuzz::classifyError("fixnum overflow (compiled fixnums are 32-bit)"),
            ErrorClass::Overflow);
  EXPECT_EQ(fuzz::classifyError("wrong type of argument to '+'"),
            ErrorClass::WrongType);
  EXPECT_EQ(fuzz::classifyError("wrong number of arguments (3)"),
            ErrorClass::WrongArgCount);
  EXPECT_EQ(fuzz::classifyError("division by zero"),
            ErrorClass::DivisionByZero);
  EXPECT_EQ(fuzz::classifyError("instruction fuel exhausted"),
            ErrorClass::Fuel);
  EXPECT_EQ(fuzz::classifyError("evaluation fuel exhausted"),
            ErrorClass::Fuel);
  EXPECT_EQ(fuzz::classifyError("function 'nope' is not defined"),
            ErrorClass::Undefined);
  EXPECT_EQ(fuzz::classifyError("stack overflow"), ErrorClass::Other);
  EXPECT_EQ(fuzz::classifyError("some novel message"), ErrorClass::Other);
}

TEST(FuzzOracle, AgreesOnHandWrittenProgram) {
  fuzz::GeneratedProgram P;
  P.Source = "(defun fut (a b) (+ (* a 3) (- b 1)))";
  P.ArgGrid = {{sexpr::Value::fixnum(2), sexpr::Value::fixnum(5)},
               {sexpr::Value::fixnum(-1), sexpr::Value::fixnum(0)}};
  fuzz::CheckResult R = fuzz::checkProgram(P);
  EXPECT_EQ(R.St, fuzz::CheckResult::Status::Agree) << describe(R);
  EXPECT_GT(R.RowsCompared, 0u);
}

TEST(FuzzOracle, WrongArgCountAgreesAsError) {
  // fut calls its helper with too many arguments; both engines must
  // report the same error class on every configuration.
  fuzz::GeneratedProgram P;
  P.Source = "(defun one (x) x)\n(defun fut (a b) (one a b))";
  P.ArgGrid = {{sexpr::Value::fixnum(1), sexpr::Value::fixnum(2)}};
  fuzz::CheckResult R = fuzz::checkProgram(P);
  EXPECT_EQ(R.St, fuzz::CheckResult::Status::Agree) << describe(R);
}

//===----------------------------------------------------------------------===//
// Reducer: find an injected miscompile, shrink it, write a runnable repro.
//===----------------------------------------------------------------------===//

TEST(FuzzReducer, CountsForms) {
  EXPECT_EQ(fuzz::countForms("(defun fut (a b) (+ 1 2))"), 3u);
  EXPECT_EQ(fuzz::countForms("x"), 0u);
  EXPECT_EQ(fuzz::countForms("(f (g (h 1)))"), 3u);
}

TEST(FuzzReducer, ShrinksInjectedFoldFault) {
  // The hidden fault knob makes every folded constant fixnum addition come
  // out off by one under O2, so interpreter and compiled results diverge.
  driver::AblationConfig Faulted = driver::ablationMatrix().front();
  ASSERT_EQ(Faulted.Name, "O2");
  Faulted.Opts.Opt.FaultConstantFold = true;

  fuzz::OracleOptions OO;
  OO.Configs = {Faulted};
  OO.CaptureStats = true;

  for (uint32_t Seed = 1; Seed <= 80; ++Seed) {
    fuzz::Generator G(Seed);
    fuzz::GeneratedProgram P = G.generate();
    fuzz::CheckResult R = fuzz::checkProgram(P, OO);
    if (R.St != fuzz::CheckResult::Status::Diverged)
      continue;

    fuzz::ReduceOptions RO;
    RO.Oracle = OO;
    auto Min = fuzz::reduceDivergence(P, R.Divergences.front(), Faulted, RO);
    ASSERT_TRUE(Min.has_value()) << "seed " << Seed << "\n" << P.Source;
    EXPECT_LE(Min->Forms, 10u) << Min->Source;
    EXPECT_EQ(fuzz::countForms(Min->Source), Min->Forms);

    std::string Path = ::testing::TempDir() + "s1lisp-fuzz-repro.lisp";
    ASSERT_TRUE(fuzz::writeRepro(Path, *Min, Seed));

    // The repro is runnable: it converts, and (main) replays the
    // divergence between the interpreter and the faulted configuration.
    std::ifstream In(Path);
    std::stringstream Buf;
    Buf << In.rdbuf();
    std::string Repro = Buf.str();
    EXPECT_NE(Repro.find("(defun main"), std::string::npos);
    EXPECT_NE(Repro.find(";; config: O2"), std::string::npos);

    ir::Module IM;
    DiagEngine Diags;
    ASSERT_TRUE(frontend::convertSource(IM, Repro, Diags)) << Diags.str();
    interp::Interpreter I(IM);
    auto RefRun = I.call("main", {});

    ir::Module CM;
    auto Compiled = driver::compileSource(CM, Repro, Faulted.Opts);
    ASSERT_TRUE(Compiled.Ok) << Compiled.Error;
    vm::Machine VM(Compiled.Program, CM.Syms, CM.DataHeap);
    auto ActRun = VM.call("main", {});

    if (Min->Final.Reference.K == fuzz::Outcome::Kind::Value &&
        Min->Final.Actual.K == fuzz::Outcome::Kind::Value) {
      ASSERT_TRUE(RefRun.Ok) << RefRun.Error;
      ASSERT_TRUE(ActRun.Ok && ActRun.Result.has_value()) << ActRun.Error;
      EXPECT_NE(RefRun.Value.str(), sexpr::toString(*ActRun.Result))
          << "repro no longer diverges:\n"
          << Repro;
    }
    return; // one demonstration is the point
  }
  FAIL() << "fault injection produced no divergence in 80 seeds";
}

TEST(FuzzReducer, DivergenceCarriesStatsDelta) {
  driver::AblationConfig Faulted = driver::ablationMatrix().front();
  Faulted.Opts.Opt.FaultConstantFold = true;
  fuzz::OracleOptions OO;
  OO.Configs = {Faulted};
  OO.CaptureStats = true;
  for (uint32_t Seed = 1; Seed <= 80; ++Seed) {
    fuzz::Generator G(Seed);
    fuzz::GeneratedProgram P = G.generate();
    fuzz::CheckResult R = fuzz::checkProgram(P, OO);
    if (R.St != fuzz::CheckResult::Status::Diverged)
      continue;
    // The offending configuration's compile folded at least one constant,
    // and the delta snapshot attached to the divergence shows it.
    EXPECT_NE(R.Divergences.front().StatsJson.find("opt"), std::string::npos)
        << R.Divergences.front().StatsJson;
    return;
  }
  FAIL() << "fault injection produced no divergence in 80 seeds";
}

} // namespace
