//===- tests/stats/StatsTest.cpp - Observability subsystem tests ----------===//
//
// Covers the three pillars of src/stats: the self-registering counter
// registry, nested RAII phase timing, and structured remarks with their
// JSON round-trip.
//
//===----------------------------------------------------------------------===//

#include "stats/Remark.h"
#include "stats/Stats.h"

#include <gtest/gtest.h>

#include <thread>

using namespace s1lisp;

namespace {

/// RAII guard: enables counters/timing for a test and restores the old
/// global state (and wipes any values the test accumulated) afterwards.
struct StatsScope {
  bool OldEnabled, OldTiming;
  StatsScope() : OldEnabled(stats::enabled()), OldTiming(stats::timingEnabled()) {
    stats::setEnabled(true);
    stats::setTimingEnabled(true);
    stats::resetStats();
    stats::resetPhaseTimes();
  }
  ~StatsScope() {
    stats::resetStats();
    stats::resetPhaseTimes();
    stats::setEnabled(OldEnabled);
    stats::setTimingEnabled(OldTiming);
  }
};

TEST(Statistic, RegistersAndCounts) {
  StatsScope Scope;
  stats::Statistic Counter("test.stats.counter", "a test counter");
  ++Counter;
  Counter += 41;
  EXPECT_EQ(Counter.value(), 42u);
  EXPECT_EQ(stats::statValue("test.stats.counter"), 42u);

  bool Found = false;
  for (const stats::StatValue &SV : stats::allStats())
    if (SV.Name == "test.stats.counter") {
      Found = true;
      EXPECT_EQ(SV.Value, 42u);
      EXPECT_STREQ(SV.Desc.c_str(), "a test counter");
    }
  EXPECT_TRUE(Found);
}

TEST(Statistic, DisabledCountersAreInert) {
  StatsScope Scope;
  stats::setEnabled(false);
  stats::Statistic Counter("test.stats.gated", "gated");
  ++Counter;
  Counter += 10;
  Counter.updateMax(99);
  EXPECT_EQ(Counter.value(), 0u);
}

TEST(Statistic, UpdateMaxKeepsHighWater) {
  StatsScope Scope;
  stats::Statistic Counter("test.stats.max", "high water");
  Counter.updateMax(7);
  Counter.updateMax(3);
  EXPECT_EQ(Counter.value(), 7u);
  Counter.updateMax(11);
  EXPECT_EQ(Counter.value(), 11u);
}

TEST(Statistic, DeregistersOnDestruction) {
  StatsScope Scope;
  {
    stats::Statistic Counter("test.stats.transient", "scoped");
    ++Counter;
    EXPECT_EQ(stats::statValue("test.stats.transient"), 1u);
  }
  EXPECT_EQ(stats::statValue("test.stats.transient"), 0u);
}

TEST(Statistic, ReportsRenderNamesAndValues) {
  StatsScope Scope;
  stats::Statistic Counter("test.stats.report", "shown in reports");
  Counter += 5;
  std::string Text = stats::reportStats();
  EXPECT_NE(Text.find("test.stats.report"), std::string::npos);
  EXPECT_NE(Text.find("shown in reports"), std::string::npos);
  std::string Json = stats::reportStatsJson();
  EXPECT_NE(Json.find("\"test.stats.report\": 5"), std::string::npos);
}

TEST(PhaseTimer, RecordsInvocationsAndWallTime) {
  StatsScope Scope;
  for (int I = 0; I < 3; ++I) {
    stats::PhaseTimer T("test.phase.outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  auto Times = stats::phaseTimes();
  ASSERT_EQ(Times.size(), 1u);
  EXPECT_EQ(Times[0].Name, "test.phase.outer");
  EXPECT_EQ(Times[0].Invocations, 3u);
  EXPECT_GT(Times[0].WallSeconds, 0.0);
}

TEST(PhaseTimer, NestedScopesSplitSelfTime) {
  StatsScope Scope;
  {
    stats::PhaseTimer Outer("test.phase.parent");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      stats::PhaseTimer Inner("test.phase.child");
      std::this_thread::sleep_for(std::chrono::milliseconds(4));
    }
  }
  double ParentWall = 0, ParentSelf = 0, ChildWall = 0;
  for (const stats::PhaseTime &PT : stats::phaseTimes()) {
    if (PT.Name == "test.phase.parent") {
      ParentWall = PT.WallSeconds;
      ParentSelf = PT.SelfWallSeconds;
    } else if (PT.Name == "test.phase.child") {
      ChildWall = PT.WallSeconds;
    }
  }
  // The parent's wall clock covers the child; its self time must not.
  EXPECT_GT(ChildWall, 0.0);
  EXPECT_GE(ParentWall, ChildWall);
  EXPECT_LT(ParentSelf, ParentWall);
  EXPECT_NEAR(ParentSelf + ChildWall, ParentWall, 1e-3);
}

TEST(PhaseTimer, DisabledTimingRecordsNothing) {
  StatsScope Scope;
  stats::setTimingEnabled(false);
  { stats::PhaseTimer T("test.phase.gated"); }
  EXPECT_TRUE(stats::phaseTimes().empty());
}

TEST(RemarkStream, TranscriptMatchesOptLogFormat) {
  stats::RemarkStream RS;
  RS.remark({"opt.metaeval", "META-IF-IDENTITY", "f", "(if t a b)", "a", ""});
  RS.remark({"opt.metaeval", "META-SUBSTITUTE", "f", "", "",
             "1 substitution for the variable x by 3"});
  EXPECT_EQ(RS.str(),
            ";**** Optimizing this form: (if t a b)\n"
            ";**** to be this form: a\n"
            ";**** courtesy of META-IF-IDENTITY\n"
            ";**** 1 substitution for the variable x by 3\n"
            ";**** courtesy of META-SUBSTITUTE\n");
  EXPECT_EQ(RS.count("META-IF-IDENTITY"), 1u);
  EXPECT_EQ(RS.count("NO-SUCH-RULE"), 0u);
}

TEST(RemarkStream, JsonRoundTrips) {
  stats::RemarkStream RS;
  RS.remark({"opt.metaeval", "META-CALL-LAMBDA", "testfn",
             "((lambda (x) x) 3)", "3", ""});
  RS.remark({"opt.cse", "META-INTRODUCE-COMMON-SUBEXPRESSION", "g", "", "",
             "2 occurrences hoisted\nwith \"quotes\" and \\backslash"});

  std::vector<stats::Remark> Parsed;
  ASSERT_TRUE(stats::parseRemarksJson(RS.json(), Parsed));
  ASSERT_EQ(Parsed.size(), 2u);
  EXPECT_EQ(Parsed[0], RS.Remarks[0]);
  EXPECT_EQ(Parsed[1], RS.Remarks[1]);
}

TEST(RemarkStream, ParserRejectsMalformedJson) {
  std::vector<stats::Remark> Parsed;
  EXPECT_FALSE(stats::parseRemarksJson("", Parsed));
  EXPECT_FALSE(stats::parseRemarksJson("[{\"phase\": }]", Parsed));
  EXPECT_FALSE(stats::parseRemarksJson("[] trailing", Parsed));
}

} // namespace
