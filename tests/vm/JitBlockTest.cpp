//===- tests/vm/JitBlockTest.cpp ------------------------------------------===//
//
// Block-compiler-specific equivalence tiers. EngineEquivalenceTest pins
// the three engines to each other on ordinary runs; this file aims the
// same oracle at the spots the block compiler's optimizations could
// plausibly diverge:
//
//  * safepoint batching — fuel exhaustion is forced at EVERY instruction
//    offset of a synthetic multi-instruction block, so the bulk
//    fuel-charge, the fused-branch precharge, the bulk PerOpcode bump,
//    and the trap stubs' exact-state rollback are each observed mid-block
//    (trap message and every MachineStats counter must match threaded
//    byte-for-byte / bit-for-bit);
//  * the inlined cons fast path under forced collections, cross-checked
//    against the interpreter with its after-every-GC heap verifier on
//    (the library behind --gc-verify);
//  * compare+branch fusion over the full NumPred × GenericCompare ×
//    branch-polarity matrix;
//  * a 100-seed fuzz sweep per engine at --gc-every={1,7}.
//
//===----------------------------------------------------------------------===//

#include "driver/Ablation.h"
#include "driver/Compiler.h"
#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"
#include "interp/Interp.h"
#include "sexpr/Printer.h"
#include "vm/Jit.h"
#include "vm/Machine.h"

#include "gtest/gtest.h"

#include <sstream>

using namespace s1lisp;
using sexpr::Value;

namespace {

struct EngineRun {
  bool Ok = false;
  std::string Text; ///< printed value, or the error message
  vm::MachineStats Stats;
};

EngineRun runOn(const s1::Program &P, ir::Module &M, const std::string &Entry,
                const std::vector<Value> &Args, vm::Engine Eng, uint64_t Fuel,
                bool DetailedStats = true, uint64_t GcEvery = 0) {
  vm::Machine VM(P, M.Syms, M.DataHeap);
  VM.setEngine(Eng);
  VM.setDetailedStats(DetailedStats);
  VM.setGcEvery(GcEvery);
  VM.setFuel(Fuel);
  vm::Machine::RunResult R = VM.call(Entry, Args);
  EngineRun Out;
  Out.Ok = R.Ok;
  Out.Text = R.Ok ? (R.Result ? sexpr::toString(*R.Result) : "#<undecodable>")
                  : R.Error;
  Out.Stats = VM.stats();
  return Out;
}

std::string diffStats(const vm::MachineStats &L, const vm::MachineStats &T,
                      const char *LName, const char *TName) {
  std::ostringstream Out;
  auto Cmp = [&](const char *Name, uint64_t A, uint64_t B) {
    if (A != B)
      Out << "  " << Name << ": " << LName << " " << A << " vs " << TName
          << " " << B << "\n";
  };
  Cmp("Instructions", L.Instructions, T.Instructions);
  Cmp("Movs", L.Movs, T.Movs);
  Cmp("Calls", L.Calls, T.Calls);
  Cmp("TailCalls", L.TailCalls, T.TailCalls);
  Cmp("Syscalls", L.Syscalls, T.Syscalls);
  Cmp("HeapObjects", L.HeapObjects, T.HeapObjects);
  Cmp("HeapWordsUsed", L.HeapWordsUsed, T.HeapWordsUsed);
  Cmp("StackHighWater", L.StackHighWater, T.StackHighWater);
  Cmp("SpecialSearches", L.SpecialSearches, T.SpecialSearches);
  Cmp("SpecialSearchSteps", L.SpecialSearchSteps, T.SpecialSearchSteps);
  Cmp("GcRuns", L.GcRuns, T.GcRuns);
  Cmp("GcWordsReclaimed", L.GcWordsReclaimed, T.GcWordsReclaimed);
  for (size_t I = 0; I < L.PerOpcode.size(); ++I)
    if (L.PerOpcode[I] != T.PerOpcode[I])
      Out << "  PerOpcode[" << I << "]: " << LName << " " << L.PerOpcode[I]
          << " vs " << TName << " " << T.PerOpcode[I] << "\n";
  return Out.str();
}

driver::CompileOutcome compileOrDie(ir::Module &M, const std::string &Source) {
  driver::CompileOutcome Out = driver::compileSource(M, Source, {});
  EXPECT_TRUE(Out.Ok) << Out.Error;
  return Out;
}

/// Compiles and runs one grid point on every engine against the threaded
/// baseline — exact text (including trap messages) and bit-identical
/// stats. Used by the fusion and cons tiers; the fuel sweep drives runOn
/// directly because it varies the fuel limit.
void expectNativeMatchesThreaded(const std::string &Source,
                                 const std::string &Entry,
                                 const std::vector<Value> &Args,
                                 uint64_t GcEvery = 0) {
  ir::Module M;
  driver::CompileOutcome Out = compileOrDie(M, Source);
  if (!Out.Ok)
    return;
  for (bool Detailed : {true, false}) {
    EngineRun T = runOn(Out.Program, M, Entry, Args, vm::Engine::Threaded,
                        2'000'000, Detailed, GcEvery);
    if (vm::jitAvailable()) {
      EngineRun N = runOn(Out.Program, M, Entry, Args, vm::Engine::Native,
                          2'000'000, Detailed, GcEvery);
      ASSERT_EQ(T.Ok, N.Ok) << "threaded: " << T.Text
                            << "\nnative:   " << N.Text;
      EXPECT_EQ(T.Text, N.Text) << "detailed=" << Detailed;
      EXPECT_EQ(diffStats(T.Stats, N.Stats, "threaded", "native"), "")
          << "detailed=" << Detailed << " gc-every=" << GcEvery;
    }
    EngineRun L = runOn(Out.Program, M, Entry, Args, vm::Engine::Legacy,
                        2'000'000, Detailed, GcEvery);
    ASSERT_EQ(T.Ok, L.Ok) << "threaded: " << T.Text << "\nlegacy: " << L.Text;
    if (T.Ok)
      EXPECT_EQ(T.Text, L.Text);
    else
      EXPECT_EQ(fuzz::classifyError(T.Text), fuzz::classifyError(L.Text));
    EXPECT_EQ(diffStats(T.Stats, L.Stats, "threaded", "legacy"), "")
        << "detailed=" << Detailed << " gc-every=" << GcEvery;
  }
}

//===----------------------------------------------------------------------===//
// Safepoint batching: fuel exhaustion at every offset of a block.
//
// The entry of `sweep` compiles to a long run of PUSHes (ListN collects
// its arguments on the stack) capped by a fused compare+branch, then the
// taken arm conses onto a fresh list — so a fuel sweep from 1 to the
// total retired count lands the trap on every batched offset, on the
// precharged fused branch, and inside the inline-cons block. The stubs
// must reconstruct the exact instruction counter, per-opcode histogram,
// SP/StackHighWater, and trap text the threaded loop produces when its
// per-instruction check fires at the same boundary.
//===----------------------------------------------------------------------===//

constexpr char SweepSource[] =
    "(defun sweep (n)"
    "  (if (< n 50)"
    "      (cons n (list n n n n n n n n))"
    "      (list n n)))";

void fuelSweep(bool Detailed, uint64_t GcEvery) {
  if (!vm::jitAvailable())
    GTEST_SKIP() << "no native tier on this host";
  ir::Module M;
  driver::CompileOutcome Out = compileOrDie(M, SweepSource);
  if (!Out.Ok)
    return;
  std::vector<Value> Args = {Value::fixnum(7)};
  // Total retired instructions for the full run, from the oracle engine.
  EngineRun Full = runOn(Out.Program, M, "sweep", Args, vm::Engine::Threaded,
                         2'000'000, Detailed, GcEvery);
  ASSERT_TRUE(Full.Ok) << Full.Text;
  uint64_t Total = Full.Stats.Instructions;
  ASSERT_GT(Total, 10u) << "synthetic block too short to sweep";
  for (uint64_t Fuel = 1; Fuel <= Total + 1; ++Fuel) {
    EngineRun T = runOn(Out.Program, M, "sweep", Args, vm::Engine::Threaded,
                        Fuel, Detailed, GcEvery);
    EngineRun N = runOn(Out.Program, M, "sweep", Args, vm::Engine::Native,
                        Fuel, Detailed, GcEvery);
    ASSERT_EQ(T.Ok, N.Ok) << "fuel=" << Fuel << "\n  threaded: " << T.Text
                          << "\n  native:   " << N.Text;
    // Byte-identical even for traps: the stubs must reproduce the
    // threaded engine's message, not merely its error class.
    EXPECT_EQ(T.Text, N.Text) << "fuel=" << Fuel;
    EXPECT_EQ(diffStats(T.Stats, N.Stats, "threaded", "native"), "")
        << "fuel=" << Fuel << " detailed=" << Detailed
        << " gc-every=" << GcEvery;
    if (Fuel < Total) {
      EXPECT_FALSE(T.Ok) << "fuel=" << Fuel << " of " << Total;
    }
  }
}

TEST(JitBlock, FuelTrapAtEveryOffsetDetailed) {
  fuelSweep(/*Detailed=*/true, /*GcEvery=*/0);
}

TEST(JitBlock, FuelTrapAtEveryOffsetSlim) {
  fuelSweep(/*Detailed=*/false, /*GcEvery=*/0);
}

TEST(JitBlock, FuelTrapAtEveryOffsetUnderGc) {
  // With a schedule set the batched lane is compiled differently (entry
  // GC check kept, fuel check not merged into the fit test) — sweep that
  // shape too.
  fuelSweep(/*Detailed=*/true, /*GcEvery=*/1);
}

//===----------------------------------------------------------------------===//
// Inlined cons under forced collections, with the heap verifier on.
//===----------------------------------------------------------------------===//

constexpr char ConsLoopSource[] =
    "(defun build (n acc)"
    "  (if (zerop n) acc (build (- n 1) (cons n acc))))"
    "(defun drive (n) (length (build n nil)))";

TEST(JitBlock, InlineConsAgreesUnderForcedGc) {
  for (uint64_t GcEvery : {0, 1, 3, 7})
    expectNativeMatchesThreaded(ConsLoopSource, "drive",
                                {Value::fixnum(300)}, GcEvery);
}

TEST(JitBlock, InlineConsSurvivesHeapVerifier) {
  // The interpreter shares the runtime-heap library behind --gc-verify:
  // with a schedule set it re-walks the whole heap after every
  // collection and aborts on any dangling or mistagged cell. Running the
  // same source there (gc-every=1, verify on) and demanding the same
  // printed value pins the VM engines — including the JIT's inline
  // bump-allocation — to a verified-heap reference.
  ir::Module M;
  driver::CompileOutcome Out = compileOrDie(M, ConsLoopSource);
  if (!Out.Ok)
    return;
  std::vector<Value> Args = {Value::fixnum(120)};
  EngineRun T = runOn(Out.Program, M, "drive", Args, vm::Engine::Threaded,
                      2'000'000, true, /*GcEvery=*/1);
  ASSERT_TRUE(T.Ok) << T.Text;
  if (vm::jitAvailable()) {
    EngineRun N = runOn(Out.Program, M, "drive", Args, vm::Engine::Native,
                        2'000'000, true, /*GcEvery=*/1);
    ASSERT_TRUE(N.Ok) << N.Text;
    EXPECT_EQ(T.Text, N.Text);
    EXPECT_EQ(diffStats(T.Stats, N.Stats, "threaded", "native"), "");
  }
  interp::Interpreter I(M);
  I.setFuel(2'000'000);
  I.setGcEvery(1);
  I.setGcVerify(true);
  interp::Interpreter::Result R =
      I.call("drive", {interp::RtValue::data(Args[0])});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value.str(), T.Text);
}

//===----------------------------------------------------------------------===//
// Compare+branch fusion matrix: every fusable predicate and comparison,
// under both branch polarities (the plain test branches on EQ-with-nil,
// the negated test flips the codegen'd condition), with arguments that
// exercise both the taken and the fall-through edge, and with the fused
// pair split across a forced-GC safepoint.
//===----------------------------------------------------------------------===//

TEST(JitBlock, FusionMatrixNumPreds) {
  const char *Preds[] = {"zerop", "oddp", "evenp", "plusp", "minusp"};
  for (const char *P : Preds)
    for (bool Negated : {false, true}) {
      std::ostringstream Src;
      Src << "(defun f (a b) (if " << (Negated ? "(not (" : "(") << P
          << " a)" << (Negated ? ")" : "") << " (+ b 1) (- b 1)))";
      for (int64_t A : {-3, -2, 0, 2, 5})
        for (uint64_t GcEvery : {0, 1})
          expectNativeMatchesThreaded(
              Src.str(), "f", {Value::fixnum(A), Value::fixnum(10)}, GcEvery);
    }
}

TEST(JitBlock, FusionMatrixGenericCompares) {
  const char *Ops[] = {"=", "<", ">", "<=", ">=", "/="};
  for (const char *Op : Ops)
    for (bool Negated : {false, true}) {
      std::ostringstream Src;
      Src << "(defun f (a b) (if " << (Negated ? "(not (" : "(") << Op
          << " a b)" << (Negated ? ")" : "") << " (+ a b) (- a b)))";
      for (auto [A, B] : {std::pair<int64_t, int64_t>{3, 7},
                          {7, 3},
                          {4, 4}})
        for (uint64_t GcEvery : {0, 1})
          expectNativeMatchesThreaded(
              Src.str(), "f", {Value::fixnum(A), Value::fixnum(B)}, GcEvery);
    }
}

//===----------------------------------------------------------------------===//
// Fuzzed tier: 100 seeds per engine, interpreter-differential with
// forced collections every {1,7} allocations (interpreter side verifies
// its heap after every collection). One optimized configuration bounds
// the cost; the full ablation matrix is DifferentialFuzzTest's job.
//===----------------------------------------------------------------------===//

constexpr unsigned JitFuzzBatch = 25;

class JitGcFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(JitGcFuzz, EnginesAgreeUnderForcedGc) {
  std::vector<driver::AblationConfig> Configs = {
      driver::ablationMatrix().front()};
  ASSERT_EQ(Configs.front().Name, "O2");
  std::vector<vm::Engine> Engines = {vm::Engine::Legacy,
                                     vm::Engine::Threaded};
  if (vm::jitAvailable())
    Engines.push_back(vm::Engine::Native);
  for (unsigned Seed = GetParam(); Seed < GetParam() + JitFuzzBatch; ++Seed) {
    fuzz::Generator G(Seed, {});
    fuzz::GeneratedProgram P = G.generate();
    for (vm::Engine Eng : Engines)
      for (uint64_t GcEvery : {1, 7}) {
        fuzz::OracleOptions OO;
        OO.Configs = Configs;
        OO.InterpFuel = 100'000;
        OO.VmFuel = 1'000'000;
        OO.Engine = Eng;
        OO.GcEvery = GcEvery;
        fuzz::CheckResult R = fuzz::checkProgram(P, OO);
        EXPECT_EQ(R.St, fuzz::CheckResult::Status::Agree)
            << "seed " << Seed << " engine " << vm::engineName(Eng)
            << " gc-every=" << GcEvery << " diverged ("
            << R.Divergences.size() << " rows)\n"
            << (R.Divergences.empty()
                    ? std::string()
                    : "  first: " + R.Divergences.front().Reference.Text +
                          " vs " + R.Divergences.front().Actual.Text + "\n")
            << P.Source;
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitGcFuzz,
                         ::testing::Range(3000u, 3100u, JitFuzzBatch));

} // namespace
