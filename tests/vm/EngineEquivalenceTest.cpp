//===- tests/vm/EngineEquivalenceTest.cpp ---------------------------------===//
//
// The three dispatch engines — the legacy per-step switch, the pre-decoded
// threaded loop, and the native template-JIT — must be observably
// indistinguishable: same printed values, same error classes, and
// bit-identical MachineStats (including the per-opcode histogram, which is
// why the legacy engine may not retire LABEL pseudo-ops). A block of fuzz
// seeds drives every engine over each program's argument grid, and
// targeted cases pin down the spots where the engines are easiest to get
// wrong: traps, special-variable lookup caching, detailed-stats gating,
// and collections forced mid-run. On hosts without the JIT
// (vm::jitAvailable() false) the native rows are skipped; Machine itself
// falls back to the threaded loop there.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"
#include "sexpr/Printer.h"
#include "vm/Jit.h"
#include "vm/Machine.h"

#include "gtest/gtest.h"

#include <sstream>

using namespace s1lisp;
using sexpr::Value;

namespace {

/// Legacy + threaded, plus native when this host can JIT.
std::vector<vm::Engine> enginesUnderTest() {
  std::vector<vm::Engine> Engines = {vm::Engine::Legacy, vm::Engine::Threaded};
  if (vm::jitAvailable())
    Engines.push_back(vm::Engine::Native);
  return Engines;
}

struct EngineRun {
  bool Ok = false;
  std::string Text; ///< printed value, or the error message
  vm::MachineStats Stats;
};

EngineRun runOn(const s1::Program &P, ir::Module &M, const std::string &Entry,
                const std::vector<Value> &Args, vm::Engine Eng,
                bool DetailedStats = true, uint64_t GcEvery = 0) {
  vm::Machine VM(P, M.Syms, M.DataHeap);
  VM.setEngine(Eng);
  VM.setDetailedStats(DetailedStats);
  VM.setGcEvery(GcEvery);
  VM.setFuel(2'000'000);
  vm::Machine::RunResult R = VM.call(Entry, Args);
  EngineRun Out;
  Out.Ok = R.Ok;
  Out.Text = R.Ok ? (R.Result ? sexpr::toString(*R.Result) : "#<undecodable>")
                  : R.Error;
  Out.Stats = VM.stats();
  return Out;
}

std::string diffStats(const vm::MachineStats &L, const vm::MachineStats &T,
                      const char *LName, const char *TName) {
  std::ostringstream Out;
  auto Cmp = [&](const char *Name, uint64_t A, uint64_t B) {
    if (A != B)
      Out << "  " << Name << ": " << LName << " " << A << " vs " << TName
          << " " << B << "\n";
  };
  Cmp("Instructions", L.Instructions, T.Instructions);
  Cmp("Movs", L.Movs, T.Movs);
  Cmp("Calls", L.Calls, T.Calls);
  Cmp("TailCalls", L.TailCalls, T.TailCalls);
  Cmp("Syscalls", L.Syscalls, T.Syscalls);
  Cmp("HeapObjects", L.HeapObjects, T.HeapObjects);
  Cmp("HeapWordsUsed", L.HeapWordsUsed, T.HeapWordsUsed);
  Cmp("StackHighWater", L.StackHighWater, T.StackHighWater);
  Cmp("SpecialSearches", L.SpecialSearches, T.SpecialSearches);
  Cmp("SpecialSearchSteps", L.SpecialSearchSteps, T.SpecialSearchSteps);
  // Collections happen at an instruction boundary all engines share, so
  // even the GC counters are bit-identical. (Pause *timing* lives outside
  // MachineStats precisely so this comparison stays exact.)
  Cmp("GcRuns", L.GcRuns, T.GcRuns);
  Cmp("GcWordsReclaimed", L.GcWordsReclaimed, T.GcWordsReclaimed);
  for (size_t I = 0; I < L.PerOpcode.size(); ++I)
    if (L.PerOpcode[I] != T.PerOpcode[I])
      Out << "  PerOpcode[" << I << "]: " << LName << " " << L.PerOpcode[I]
          << " vs " << TName << " " << T.PerOpcode[I] << "\n";
  return Out.str();
}

/// Compiles and runs one grid point on every engine, asserting
/// observational equivalence against the legacy baseline.
void expectEquivalent(const std::string &Source, const std::string &Entry,
                      const std::vector<Value> &Args,
                      const driver::CompilerOptions &Opts = {},
                      uint64_t GcEvery = 0) {
  ir::Module M;
  driver::CompileOutcome Out = driver::compileSource(M, Source, Opts);
  ASSERT_TRUE(Out.Ok) << Out.Error;
  EngineRun L = runOn(Out.Program, M, Entry, Args, vm::Engine::Legacy,
                      /*DetailedStats=*/true, GcEvery);
  for (vm::Engine Eng : enginesUnderTest()) {
    if (Eng == vm::Engine::Legacy)
      continue;
    const char *Name = vm::engineName(Eng);
    EngineRun T = runOn(Out.Program, M, Entry, Args, Eng,
                        /*DetailedStats=*/true, GcEvery);
    ASSERT_EQ(L.Ok, T.Ok) << "legacy: " << L.Text << "\n"
                          << Name << ": " << T.Text;
    if (L.Ok)
      EXPECT_EQ(L.Text, T.Text) << "engine " << Name;
    else
      EXPECT_EQ(fuzz::classifyError(L.Text), fuzz::classifyError(T.Text))
          << "legacy: " << L.Text << "\n"
          << Name << ": " << T.Text;
    EXPECT_EQ(diffStats(L.Stats, T.Stats, "legacy", Name), "");
  }
}

//===----------------------------------------------------------------------===//
// Fuzzed tier: 200 seeded programs, every grid point on every engine.
//===----------------------------------------------------------------------===//

constexpr unsigned BatchSize = 25;

class EngineEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(EngineEquivalence, FuzzSeedsAgree) {
  std::vector<vm::Engine> Engines = enginesUnderTest();
  for (unsigned Seed = GetParam(); Seed < GetParam() + BatchSize; ++Seed) {
    fuzz::Generator G(Seed, {});
    fuzz::GeneratedProgram P = G.generate();
    ir::Module M;
    driver::CompileOutcome Out = driver::compileSource(M, P.Source, {});
    ASSERT_TRUE(Out.Ok) << "seed " << Seed << ": " << Out.Error;
    for (size_t Row = 0; Row < P.ArgGrid.size(); ++Row) {
      EngineRun L =
          runOn(Out.Program, M, P.Entry, P.ArgGrid[Row], vm::Engine::Legacy);
      for (vm::Engine Eng : Engines) {
        if (Eng == vm::Engine::Legacy)
          continue;
        const char *Name = vm::engineName(Eng);
        EngineRun T = runOn(Out.Program, M, P.Entry, P.ArgGrid[Row], Eng);
        ASSERT_EQ(L.Ok, T.Ok)
            << "seed " << Seed << " row " << Row << "\n  legacy: " << L.Text
            << "\n  " << Name << ": " << T.Text << "\n"
            << P.Source;
        if (L.Ok)
          EXPECT_EQ(L.Text, T.Text)
              << "seed " << Seed << " row " << Row << " engine " << Name;
        else
          EXPECT_EQ(fuzz::classifyError(L.Text), fuzz::classifyError(T.Text))
              << "seed " << Seed << " row " << Row << "\n  legacy: " << L.Text
              << "\n  " << Name << ": " << T.Text;
        EXPECT_EQ(diffStats(L.Stats, T.Stats, "legacy", Name), "")
            << "seed " << Seed << " row " << Row << "\n"
            << P.Source;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalence,
                         ::testing::Range(2000u, 2200u, BatchSize));

//===----------------------------------------------------------------------===//
// GC-forced tier: the same equivalence with the word-heap collector
// running mid-program. Collections fire at an instruction boundary all
// engines share (the JIT emits a GcPending safepoint check before every
// instruction when a schedule is set), so values, error classes, and
// every counter — including GcRuns and GcWordsReclaimed — must stay
// bit-identical.
//===----------------------------------------------------------------------===//

class EngineEquivalenceGc : public ::testing::TestWithParam<unsigned> {};

TEST_P(EngineEquivalenceGc, FuzzSeedsAgreeUnderForcedCollections) {
  std::vector<vm::Engine> Engines = enginesUnderTest();
  for (unsigned Seed = GetParam(); Seed < GetParam() + BatchSize; ++Seed) {
    fuzz::Generator G(Seed, {});
    fuzz::GeneratedProgram P = G.generate();
    ir::Module M;
    driver::CompileOutcome Out = driver::compileSource(M, P.Source, {});
    ASSERT_TRUE(Out.Ok) << "seed " << Seed << ": " << Out.Error;
    for (uint64_t GcEvery : {1, 7}) {
      for (size_t Row = 0; Row < P.ArgGrid.size(); ++Row) {
        EngineRun L = runOn(Out.Program, M, P.Entry, P.ArgGrid[Row],
                            vm::Engine::Legacy, true, GcEvery);
        for (vm::Engine Eng : Engines) {
          if (Eng == vm::Engine::Legacy)
            continue;
          const char *Name = vm::engineName(Eng);
          EngineRun T = runOn(Out.Program, M, P.Entry, P.ArgGrid[Row], Eng,
                              true, GcEvery);
          ASSERT_EQ(L.Ok, T.Ok)
              << "seed " << Seed << " row " << Row << " gc-every=" << GcEvery
              << "\n  legacy: " << L.Text << "\n  " << Name << ": " << T.Text
              << "\n"
              << P.Source;
          if (L.Ok)
            EXPECT_EQ(L.Text, T.Text) << "seed " << Seed << " row " << Row
                                      << " gc-every=" << GcEvery << " engine "
                                      << Name;
          else
            EXPECT_EQ(fuzz::classifyError(L.Text), fuzz::classifyError(T.Text))
                << "seed " << Seed << " row " << Row << " gc-every=" << GcEvery
                << "\n  legacy: " << L.Text << "\n  " << Name << ": "
                << T.Text;
          EXPECT_EQ(diffStats(L.Stats, T.Stats, "legacy", Name), "")
              << "seed " << Seed << " row " << Row << " gc-every=" << GcEvery
              << "\n"
              << P.Source;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalenceGc,
                         ::testing::Range(2000u, 2100u, BatchSize));

//===----------------------------------------------------------------------===//
// Targeted cases
//===----------------------------------------------------------------------===//

TEST(EngineEquivalenceFixed, RecursionAndArithmetic) {
  expectEquivalent("(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) "
                   "(fib (- n 2)))))",
                   "fib", {Value::fixnum(15)});
}

TEST(EngineEquivalenceFixed, LoopsCountLabelsIdentically) {
  // dotimes compiles to backward branches over stripped LABELs; the
  // legacy engine must not retire those pseudo-ops as instructions.
  expectEquivalent("(defun k (n) (let ((s 0)) (dotimes (i n) "
                   "(setq s (+ s i))) s))",
                   "k", {Value::fixnum(500)});
}

TEST(EngineEquivalenceFixed, SpecialLookupStepsMatch) {
  // The threaded engine's per-symbol lookup cache must charge exactly the
  // steps the legacy linear search counts, across rebinds and unbinds.
  expectEquivalent("(defvar *v*)"
                   "(defvar *pad*)"
                   "(defun poll (n)"
                   "  (let ((s 0)) (dotimes (i n) (setq s (+ s *v*))) s))"
                   "(defun nest (depth n)"
                   "  (if (zerop depth)"
                   "      (poll n)"
                   "      (let ((*pad* depth) (*v* depth))"
                   "        (+ (nest (1- depth) n) *v*))))",
                   "nest", {Value::fixnum(12), Value::fixnum(40)});
}

TEST(EngineEquivalenceFixed, TrapsAgree) {
  expectEquivalent("(defun boom (n) (/ n 0))", "boom", {Value::fixnum(7)});
  expectEquivalent("(defun deep (n) (+ 1 (deep n)))", "deep",
                   {Value::fixnum(1)});
  expectEquivalent("(defun car-of-fixnum (n) (car n))", "car-of-fixnum",
                   {Value::fixnum(3)});
}

TEST(EngineEquivalenceFixed, FixnumOverflowTrapsAgree) {
  // Exercises the JIT's inline fixnum fast paths right at their overflow
  // exits (the 32-bit compiled-fixnum range check).
  expectEquivalent("(defun ovf (n) (* n n))", "ovf", {Value::fixnum(70000)});
  expectEquivalent("(defun inc (n) (1+ n))", "inc",
                   {Value::fixnum(2147483647)});
}

TEST(EngineEquivalenceFixed, UnoptimizedCodeAgrees) {
  driver::CompilerOptions NoOpt;
  NoOpt.Optimize = false;
  NoOpt.Codegen.TnBind.UseRegisters = false;
  expectEquivalent("(defun k (n) (let ((s 0)) (dotimes (i n) "
                   "(setq s (+ s i))) s))",
                   "k", {Value::fixnum(200)}, NoOpt);
}

TEST(EngineEquivalenceFixed, ListChurnWithCollectionEveryAllocation) {
  // A list-heavy loop whose intermediate lists die every iteration: the
  // collector has real garbage to reclaim mid-run, and all engines must
  // reclaim the same words at the same points.
  expectEquivalent("(defun churn (n)"
                   "  (let ((s 0)) (dotimes (i n)"
                   "    (setq s (+ s (length (reverse (list i (+ i 1) (+ i 2)))))))"
                   "  s))",
                   "churn", {Value::fixnum(200)}, {}, /*GcEvery=*/1);
}

TEST(EngineEquivalenceFixed, CollectionsActuallyRanAndReclaimed) {
  ir::Module M;
  driver::CompileOutcome Out = driver::compileSource(
      M, "(defun churn (n)"
         "  (let ((s 0)) (dotimes (i n)"
         "    (setq s (+ s (length (reverse (list i i i)))))) s))");
  ASSERT_TRUE(Out.Ok) << Out.Error;
  for (vm::Engine Eng : enginesUnderTest()) {
    EngineRun R = runOn(Out.Program, M, "churn", {Value::fixnum(300)}, Eng,
                        true, /*GcEvery=*/8);
    ASSERT_TRUE(R.Ok) << R.Text;
    EXPECT_EQ(R.Text, "900");
    EXPECT_GT(R.Stats.GcRuns, 0u);
    EXPECT_GT(R.Stats.GcWordsReclaimed, 0u);
  }
}

TEST(EngineEquivalenceFixed, DisabledDetailGatesOnlyDetailCounters) {
  const char *Source = "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) "
                       "(fib (- n 2)))))";
  ir::Module M;
  driver::CompileOutcome Out = driver::compileSource(M, Source, {});
  ASSERT_TRUE(Out.Ok) << Out.Error;
  for (vm::Engine Eng : enginesUnderTest()) {
    EngineRun On = runOn(Out.Program, M, "fib", {Value::fixnum(12)}, Eng,
                         /*DetailedStats=*/true);
    EngineRun Off = runOn(Out.Program, M, "fib", {Value::fixnum(12)}, Eng,
                          /*DetailedStats=*/false);
    EXPECT_EQ(On.Text, Off.Text);
    // Architectural counters survive; only the detail set goes dark.
    EXPECT_EQ(On.Stats.Instructions, Off.Stats.Instructions);
    EXPECT_EQ(On.Stats.Calls, Off.Stats.Calls);
    EXPECT_EQ(On.Stats.SpecialSearchSteps, Off.Stats.SpecialSearchSteps);
    EXPECT_EQ(Off.Stats.Movs, 0u);
    EXPECT_GT(On.Stats.Movs, 0u);
    uint64_t OffHistogram = 0;
    for (uint64_t C : Off.Stats.PerOpcode)
      OffHistogram += C;
    EXPECT_EQ(OffHistogram, 0u);
  }
}

TEST(EngineEquivalenceFixed, NativeReportsAvailability) {
  // On x86-64 hosts the JIT must be present; elsewhere compileJit returns
  // null and Machine::runNative falls back to the threaded loop (tested
  // implicitly: the suites above still pass with Engine::Native).
#if defined(__x86_64__) && (defined(__linux__) || defined(__APPLE__))
  EXPECT_TRUE(vm::jitAvailable());
#else
  EXPECT_FALSE(vm::jitAvailable());
#endif
}

} // namespace
