//===- tests/vm/MachineTest.cpp - Simulator unit tests --------------------===//
//
// Drives the S-1/64 simulator with hand-assembled programs, independent of
// the compiler, to pin down the execution model: frame discipline, tail
// calls, syscalls, encode/decode, certification, and traps.
//
//===----------------------------------------------------------------------===//

#include "vm/Machine.h"

#include "sexpr/Printer.h"

#include <functional>
#include <gtest/gtest.h>

using namespace s1lisp;
using namespace s1lisp::s1;
using namespace s1lisp::vm;
using sexpr::Value;

namespace {

/// Builds the standard prologue/epilogue around a body emitted by \p Body.
/// The body receives the argument count in the saved slot FP+1 and args at
/// FP-2-argc+i; it must leave the result in RV.
AsmFunction makeFunction(const std::string &Name, unsigned MinArgs,
                         unsigned MaxArgs,
                         const std::function<void(AsmFunction &)> &Body,
                         unsigned FrameSlots = 4) {
  AsmFunction F;
  F.Name = Name;
  F.MinArgs = MinArgs;
  F.MaxArgs = MaxArgs;
  auto E = [&F](Opcode Op, Operand A = {}, Operand B = {}, Operand X = {}) {
    Instruction I;
    I.Op = Op;
    I.A = A;
    I.B = B;
    I.X = X;
    F.emit(I);
  };
  E(Opcode::PUSH, Operand::reg(FP));
  E(Opcode::MOV, Operand::reg(FP), Operand::reg(SP));
  E(Opcode::PUSH, Operand::reg(ENV));
  E(Opcode::PUSH, Operand::reg(RTA));
  E(Opcode::ADD, Operand::reg(SP), Operand::imm(FrameSlots));
  Body(F);
  E(Opcode::MOV, Operand::reg(ENV), Operand::mem(FP, 0));
  E(Opcode::MOV, Operand::reg(SP), Operand::reg(FP));
  E(Opcode::POP, Operand::reg(FP));
  E(Opcode::RET);
  std::string Error;
  EXPECT_TRUE(F.finalize(Error)) << Error;
  return F;
}

class MachineTest : public ::testing::Test {
protected:
  sexpr::SymbolTable Syms;
  sexpr::Heap H;

  Machine makeMachine(Program &P) { return Machine(P, Syms, H); }
};

TEST_F(MachineTest, RawArithmeticAndReturn) {
  Program P;
  P.Functions.push_back(makeFunction("add40-2", 1, 1, [](AsmFunction &F) {
    Instruction I;
    // RV := raw(arg0) + 2, retagged as a fixnum.
    I.Op = Opcode::PUSH;
    I.A = Operand::mem(FP, -3);
    F.emit(I);
    Instruction S;
    S.Op = Opcode::SYSCALL;
    S.A = Operand::imm(static_cast<int64_t>(Syscall::UnboxFixnum));
    S.B = Operand::imm(0);
    S.X = Operand::imm(0);
    F.emit(S);
    Instruction A;
    A.Op = Opcode::ADD;
    A.A = Operand::reg(RV);
    A.B = Operand::imm(2);
    F.emit(A);
    Instruction Pu;
    Pu.Op = Opcode::PUSH;
    Pu.A = Operand::reg(RV);
    F.emit(Pu);
    Instruction C;
    C.Op = Opcode::SYSCALL;
    C.A = Operand::imm(static_cast<int64_t>(Syscall::ConsFixnum));
    C.B = Operand::imm(0);
    C.X = Operand::imm(0);
    F.emit(C);
  }));
  Machine M = makeMachine(P);
  auto R = M.call("add40-2", {Value::fixnum(40)});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Result->fixnum(), 42);
}

TEST_F(MachineTest, EncodeDecodeRoundTrip) {
  Program P;
  Machine M = makeMachine(P);
  Value L = H.list({Value::fixnum(1), Value::flonum(2.5), H.makeRatio(1, 3),
                    Value::symbol(Syms.intern("sym")), H.string("hi")});
  uint64_t W = M.encode(L);
  auto Back = M.decode(W);
  ASSERT_TRUE(Back);
  EXPECT_EQ(sexpr::toString(*Back), "(1 2.5 1/3 sym \"hi\")");
}

TEST_F(MachineTest, DecodeDepthLimit) {
  Program P;
  Machine M = makeMachine(P);
  Value Deep = Value::nil();
  for (int I = 0; I < 200; ++I)
    Deep = H.cons(Value::fixnum(I), Deep);
  auto Shallow = M.decode(M.encode(Deep), /*Depth=*/16);
  EXPECT_FALSE(Shallow) << "depth limit must refuse very deep structures";
  auto Full = M.decode(M.encode(Deep), /*Depth=*/512);
  EXPECT_TRUE(Full);
}

TEST_F(MachineTest, ArrayAccessors) {
  Program P;
  Machine M = makeMachine(P);
  uint64_t A = M.makeArrayF(3, 2);
  M.writeArrayF(A, 2, 1, 6.5);
  EXPECT_DOUBLE_EQ(M.readArrayF(A, 2, 1), 6.5);
  EXPECT_DOUBLE_EQ(M.readArrayF(A, 0, 0), 0.0);
}

TEST_F(MachineTest, CertifyCopiesStackObjectsOnly) {
  Program P;
  P.Functions.push_back(makeFunction("certify-stack", 0, 0, [](AsmFunction &F) {
    auto E = [&F](Instruction I) { F.emit(I); };
    // Store a raw double into a frame slot, make a stack pointer to it,
    // certify, and return the certified pointer.
    Instruction St;
    St.Op = Opcode::MOV;
    St.A = Operand::mem(FP, 2);
    St.B = Operand::fimm(3.25);
    E(St);
    Instruction Tag;
    Tag.Op = Opcode::MOVTAG;
    Tag.A = Operand::reg(RV);
    Tag.B = Operand::mem(FP, 2);
    Tag.X = Operand::imm(static_cast<int64_t>(Tag::SingleFlonum));
    E(Tag);
    Instruction Pu;
    Pu.Op = Opcode::PUSH;
    Pu.A = Operand::reg(RV);
    E(Pu);
    Instruction Cert;
    Cert.Op = Opcode::SYSCALL;
    Cert.A = Operand::imm(static_cast<int64_t>(Syscall::Certify));
    Cert.B = Operand::imm(0);
    Cert.X = Operand::imm(0);
    E(Cert);
  }));
  Machine M = makeMachine(P);
  auto R = M.call("certify-stack", {});
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_TRUE(R.Result);
  EXPECT_DOUBLE_EQ(R.Result->flonum(), 3.25);
  EXPECT_FALSE(isStackAddress(addrOf(R.ResultWord)))
      << "certification must have copied the pdl number into the heap";
  EXPECT_GE(M.stats().HeapObjects, 1u);
}

TEST_F(MachineTest, GlobalSpecialsAndLookup) {
  Program P;
  P.Functions.push_back(makeFunction("read-special", 1, 1, [](AsmFunction &F) {
    Instruction Pu;
    Pu.Op = Opcode::PUSH;
    Pu.A = Operand::mem(FP, -3); // the symbol argument
    F.emit(Pu);
    Instruction L;
    L.Op = Opcode::SYSCALL;
    L.A = Operand::imm(static_cast<int64_t>(Syscall::SpecLookup));
    L.B = Operand::imm(0);
    L.X = Operand::imm(0);
    F.emit(L);
    // RV holds the cell address; load the value through R0.
    Instruction M1;
    M1.Op = Opcode::MOV;
    M1.A = Operand::reg(0);
    M1.B = Operand::reg(RV);
    F.emit(M1);
    Instruction M2;
    M2.Op = Opcode::MOV;
    M2.A = Operand::reg(RV);
    M2.B = Operand::mem(0, 0);
    F.emit(M2);
  }));
  Machine M = makeMachine(P);
  const sexpr::Symbol *S = Syms.intern("*g*");
  M.setGlobalSpecial(S, Value::fixnum(99));
  auto R = M.call("read-special", {Value::symbol(S)});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Result->fixnum(), 99);
  EXPECT_EQ(M.stats().SpecialSearches, 1u);
}

TEST_F(MachineTest, FuelExhaustionTraps) {
  Program P;
  AsmFunction F;
  F.Name = "spin";
  int L = F.newLabel();
  F.placeLabel(L);
  Instruction J;
  J.Op = Opcode::JMPA;
  J.A = Operand::label(L);
  F.emit(J);
  std::string Error;
  ASSERT_TRUE(F.finalize(Error));
  P.Functions.push_back(std::move(F));
  Machine M = makeMachine(P);
  M.setFuel(1000);
  auto R = M.call("spin", {});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("fuel"), std::string::npos);
}

TEST_F(MachineTest, UndefinedFunction) {
  Program P;
  Machine M = makeMachine(P);
  auto R = M.call("absent", {});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("undefined compiled function"), std::string::npos);
}

TEST_F(MachineTest, PerOpcodeCounters) {
  Program P;
  P.Functions.push_back(makeFunction("movs", 0, 0, [](AsmFunction &F) {
    for (int I = 0; I < 3; ++I) {
      Instruction M;
      M.Op = Opcode::MOV;
      M.A = Operand::reg(RV);
      M.B = Operand::imm(0);
      F.emit(M);
    }
  }));
  Machine M = makeMachine(P);
  ASSERT_TRUE(M.call("movs", {}).Ok);
  // Three body MOVs plus the three frame-discipline MOVs of the
  // prologue/epilogue helper.
  EXPECT_EQ(M.stats().Movs, 6u);
  EXPECT_GT(M.stats().Instructions, 6u);
}

} // namespace
