//===- tests/interp/InterpTest.cpp - Evaluator tests ----------------------===//

#include "interp/Interp.h"

#include "frontend/Convert.h"
#include "sexpr/Printer.h"

#include <gtest/gtest.h>

using namespace s1lisp;
using namespace s1lisp::interp;
using sexpr::Value;

namespace {

class InterpTest : public ::testing::Test {
protected:
  ir::Module M;

  void load(const std::string &Src) {
    DiagEngine Diags;
    ASSERT_TRUE(frontend::convertSource(M, Src, Diags)) << Diags.str();
  }

  /// Calls \p Name and renders the result (or "ERROR: ...").
  std::string run(const std::string &Name, std::vector<RtValue> Args = {},
                  Interpreter *Ip = nullptr) {
    Interpreter Local(M);
    Interpreter &I = Ip ? *Ip : Local;
    auto R = I.call(Name, Args);
    if (!R.Ok)
      return "ERROR: " + R.Error;
    return R.Value.str();
  }

  static RtValue fx(int64_t N) { return RtValue::data(Value::fixnum(N)); }
  static RtValue fl(double D) { return RtValue::data(Value::flonum(D)); }
};

TEST_F(InterpTest, ArithmeticAndCalls) {
  load("(defun f (x y) (+ (* x x) y))");
  EXPECT_EQ(run("f", {fx(3), fx(4)}), "13");
}

TEST_F(InterpTest, IfAndPredicates) {
  load("(defun sign (x) (cond ((minusp x) -1) ((zerop x) 0) (t 1)))");
  EXPECT_EQ(run("sign", {fx(-5)}), "-1");
  EXPECT_EQ(run("sign", {fx(0)}), "0");
  EXPECT_EQ(run("sign", {fl(2.5)}), "1");
}

TEST_F(InterpTest, LexicalClosures) {
  load("(defun make-adder (n) (lambda (x) (+ x n)))"
       "(defun use-it (n v) (funcall (make-adder n) v))");
  EXPECT_EQ(run("use-it", {fx(10), fx(5)}), "15");
}

TEST_F(InterpTest, ClosureCapturesMutableState) {
  load("(defun counter-demo ()"
       "  (let ((n 0))"
       "    (let ((inc (lambda () (setq n (+ n 1)))))"
       "      (funcall inc) (funcall inc) (funcall inc) n)))");
  EXPECT_EQ(run("counter-demo"), "3");
}

TEST_F(InterpTest, OptionalDefaultsComputeOverEarlierParams) {
  // The paper's testfn defaulting rules (§7).
  load("(defun hdr (a &optional (b 3.0) (c a)) (list a b c))");
  EXPECT_EQ(run("hdr", {fx(1)}), "(1 3.0 1)");
  EXPECT_EQ(run("hdr", {fx(1), fx(2)}), "(1 2 1)");
  EXPECT_EQ(run("hdr", {fx(1), fx(2), fx(7)}), "(1 2 7)");
  EXPECT_EQ(run("hdr", {}), "ERROR: wrong number of arguments (0)");
  EXPECT_EQ(run("hdr", {fx(1), fx(2), fx(3), fx(4)}),
            "ERROR: wrong number of arguments (4)");
}

TEST_F(InterpTest, RestParameter) {
  load("(defun gather (a &rest more) (cons a more))");
  EXPECT_EQ(run("gather", {fx(1), fx(2), fx(3)}), "(1 2 3)");
  EXPECT_EQ(run("gather", {fx(1)}), "(1)");
}

TEST_F(InterpTest, TailRecursionIsIterative) {
  // §2's exptl: repeated squaring, tail calls only. 100000 iterations of a
  // simple countdown must not grow the C++ stack.
  load("(defun exptl (x n a)"
       "  (cond ((zerop n) a)"
       "        ((oddp n) (exptl (* x x) (floor n 2) (* a x)))"
       "        (t (exptl (* x x) (floor n 2) a))))"
       "(defun count-down (n) (if (zerop n) 'done (count-down (1- n))))");
  EXPECT_EQ(run("exptl", {fx(2), fx(10), fx(1)}), "1024");
  EXPECT_EQ(run("exptl", {fx(3), fx(5), fx(1)}), "243");

  Interpreter I(M);
  auto R = I.call("count-down", {fx(100000)});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value.str(), "done");
  EXPECT_LT(I.stats().MaxApplyDepth, 10u)
      << "tail calls must reuse the frame, not recurse";
  EXPECT_GE(I.stats().TailTransfers, 100000u);
}

TEST_F(InterpTest, MutualTailRecursion) {
  load("(defun even? (n) (if (zerop n) t (odd? (1- n))))"
       "(defun odd? (n) (if (zerop n) nil (even? (1- n))))");
  Interpreter I(M);
  auto R = I.call("even?", {fx(50001)});
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Value.str(), "nil");
  EXPECT_LT(I.stats().MaxApplyDepth, 10u);
}

TEST_F(InterpTest, ProgGoReturn) {
  load("(defun sum-to (n)"
       "  (prog ((i 0) (acc 0))"
       "   loop (when (> i n) (return acc))"
       "        (setq acc (+ acc i))"
       "        (setq i (1+ i))"
       "        (go loop)))");
  EXPECT_EQ(run("sum-to", {fx(10)}), "55");
  EXPECT_EQ(run("sum-to", {fx(0)}), "0");
}

TEST_F(InterpTest, DoLoopParallelStepping) {
  // Fibonacci via parallel do-stepping: b's step sees the OLD a.
  load("(defun fib (n)"
       "  (do ((i 0 (1+ i)) (a 0 b) (b 1 (+ a b)))"
       "      ((= i n) a)))");
  EXPECT_EQ(run("fib", {fx(10)}), "55");
  EXPECT_EQ(run("fib", {fx(1)}), "1");
  EXPECT_EQ(run("fib", {fx(0)}), "0");
}

TEST_F(InterpTest, CatchThrow) {
  load("(defun find-first-negative (l)"
       "  (catch 'found"
       "    (dolist (x l) (when (minusp x) (throw 'found x)))"
       "    'none))");
  ir::Module &Mod = M;
  Value L = Mod.DataHeap.list({Value::fixnum(3), Value::fixnum(-7), Value::fixnum(2)});
  EXPECT_EQ(run("find-first-negative", {RtValue::data(L)}), "-7");
  Value L2 = Mod.DataHeap.list({Value::fixnum(3)});
  EXPECT_EQ(run("find-first-negative", {RtValue::data(L2)}), "none");
}

TEST_F(InterpTest, UncaughtThrowIsAnError) {
  load("(defun oops () (throw 'missing 1))");
  EXPECT_EQ(run("oops"), "ERROR: uncaught throw");
}

TEST_F(InterpTest, CaseDispatch) {
  load("(defun classify (x) (case x ((1 2 3) 'small) ((10) 'ten) (t 'other)))");
  EXPECT_EQ(run("classify", {fx(2)}), "small");
  EXPECT_EQ(run("classify", {fx(10)}), "ten");
  EXPECT_EQ(run("classify", {fx(99)}), "other");
}

TEST_F(InterpTest, SpecialVariablesDeepBinding) {
  load("(defvar *depth*)"
       "(defun probe () *depth*)"
       "(defun with-depth (*depth*) (probe))");
  Interpreter I(M);
  I.setGlobalSpecial(M.Syms.intern("*depth*"), fx(0));
  EXPECT_EQ(run("probe", {}, &I), "0");
  // Dynamic binding: probe sees the caller's rebinding.
  EXPECT_EQ(run("with-depth", {fx(42)}, &I), "42");
  // And it is unwound afterwards.
  EXPECT_EQ(run("probe", {}, &I), "0");
  EXPECT_GT(I.stats().SpecialSearches, 0u);
}

TEST_F(InterpTest, SetqOfSpecialMutatesInnermostBinding) {
  load("(defvar *v*)"
       "(defun bump () (setq *v* (+ *v* 1)))"
       "(defun shadowed (*v*) (bump) (bump) *v*)");
  Interpreter I(M);
  I.setGlobalSpecial(M.Syms.intern("*v*"), fx(100));
  EXPECT_EQ(run("shadowed", {fx(0)}, &I), "2");
  EXPECT_EQ(run("bump", {}, &I), "101") << "global value was untouched by the shadow";
}

TEST_F(InterpTest, ListPrimitives) {
  load("(defun work (l) (list (length l) (reverse l) (nth 1 l) (member 2 l)))");
  Value L = M.DataHeap.list({Value::fixnum(1), Value::fixnum(2), Value::fixnum(3)});
  EXPECT_EQ(run("work", {RtValue::data(L)}), "(3 (3 2 1) 2 (2 3))");
}

TEST_F(InterpTest, RplacaMutation) {
  load("(defun smash (l) (rplaca l 'new) l)");
  Interpreter I(M);
  Value L = M.DataHeap.list({Value::fixnum(1), Value::fixnum(2)});
  auto R = I.call("smash", {RtValue::data(L)});
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Value.str(), "(new 2)");
}

TEST_F(InterpTest, FloatWorld) {
  load("(defun hyp (a b) (sqrt$f (+$f (*$f a a) (*$f b b))))"
       "(defun sinc-check (x) (sinc$f x))");
  EXPECT_EQ(run("hyp", {fl(3.0), fl(4.0)}), "5.0");
  // sinc$f(0.25) = sin(pi/2) = 1.
  Interpreter I(M);
  auto R = I.call("sinc-check", {fl(0.25)});
  ASSERT_TRUE(R.Ok);
  EXPECT_NEAR(R.Value.dataValue().flonum(), 1.0, 1e-12);
}

TEST_F(InterpTest, FloatArrays) {
  load("(defun fill-and-sum (n)"
       "  (let ((a (make-array$f n)))"
       "    (dotimes (i n) (aset$f a i (float i)))"
       "    (let ((s 0.0))"
       "      (dotimes (i n) (setq s (+$f s (aref$f a i))))"
       "      s)))");
  EXPECT_EQ(run("fill-and-sum", {fx(5)}), "10.0");
}

TEST_F(InterpTest, TwoDimensionalArrays) {
  // The §6.1 statement: Z[I,K] := A[I,J]*B[J,K] + C[I,K].
  load("(defun update (z a b c i j k)"
       "  (aset$f z i k (+$f (*$f (aref$f a i j) (aref$f b j k))"
       "                     (aref$f c i k))))"
       "(defun read2 (z i k) (aref$f z i k))");
  Interpreter I(M);
  RtValue A = I.makeArray(2, 2), B = I.makeArray(2, 2), C = I.makeArray(2, 2),
          Z = I.makeArray(2, 2);
  A.arrayValue()->at(1, 0) = 3.0;
  B.arrayValue()->at(0, 1) = 4.0;
  C.arrayValue()->at(1, 1) = 0.5;
  auto R = I.call("update", {Z, A, B, C, fx(1), fx(0), fx(1)});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_DOUBLE_EQ(Z.arrayValue()->at(1, 1), 12.5);
  auto R2 = I.call("read2", {Z, fx(1), fx(1)});
  EXPECT_EQ(R2.Value.str(), "12.5");
}

TEST_F(InterpTest, ArrayBoundsChecked) {
  load("(defun peek (a i) (aref$f a i))");
  Interpreter I(M);
  RtValue A = I.makeArray(3);
  auto R = I.call("peek", {A, fx(3)});
  EXPECT_FALSE(R.Ok);
}

TEST_F(InterpTest, ApplySpreadsList) {
  load("(defun spread (l) (apply (function +) 1 l))");
  Value L = M.DataHeap.list({Value::fixnum(2), Value::fixnum(3)});
  EXPECT_EQ(run("spread", {RtValue::data(L)}), "6");
}

TEST_F(InterpTest, ErrorsSurface) {
  load("(defun bad-call (x) (x-undefined x))"
       "(defun bad-type () (car 5))"
       "(defun div0 () (/ 1 0))"
       "(defun raise () (error \"boom\"))");
  EXPECT_EQ(run("bad-call", {fx(1)}), "ERROR: undefined function 'x-undefined'");
  EXPECT_EQ(run("bad-type"), "ERROR: wrong type of argument to 'car/cdr'");
  EXPECT_EQ(run("div0"), "ERROR: wrong type of argument to '/'");
  EXPECT_EQ(run("raise"), "ERROR: boom");
}

TEST_F(InterpTest, FuelBoundsRunawayLoops) {
  load("(defun spin () (spin))");
  Interpreter I(M);
  I.setFuel(10000);
  auto R = I.call("spin", {});
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Error, "evaluation fuel exhausted");
}

TEST_F(InterpTest, PrintWritesOutput) {
  load("(defun greet () (print 'hello) (print 42))");
  Interpreter I(M);
  ASSERT_TRUE(I.call("greet", {}).Ok);
  EXPECT_EQ(I.output(), "hello\n42\n");
}

TEST_F(InterpTest, QuadraticEndToEnd) {
  // §4.1's quadratic on (x-1)(x-2) = x^2 - 3x + 2.
  load("(defun quadratic (a b c)"
       "  (let ((d (- (* b b) (* 4.0 a c))))"
       "    (cond ((< d 0) '())"
       "          ((= d 0) (list (/ (- b) (* 2.0 a))))"
       "          (t (let ((two-a (* 2.0 a)) (sd (sqrt d)))"
       "               (list (/ (+ (- b) sd) two-a)"
       "                     (/ (- (- b) sd) two-a)))))))");
  EXPECT_EQ(run("quadratic", {fl(1.0), fl(-3.0), fl(2.0)}), "(2.0 1.0)");
  EXPECT_EQ(run("quadratic", {fl(1.0), fl(2.0), fl(1.0)}), "(-1.0)");
  EXPECT_EQ(run("quadratic", {fl(1.0), fl(0.0), fl(1.0)}), "nil");
}

} // namespace
