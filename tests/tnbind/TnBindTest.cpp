//===- tests/tnbind/TnBindTest.cpp - storage allocation tests -------------===//

#include "tnbind/TnBind.h"

#include "annotate/Annotate.h"
#include "frontend/Convert.h"
#include "s1/Isa.h"

#include <gtest/gtest.h>

using namespace s1lisp;
using namespace s1lisp::tnbind;

namespace {

class TnBindTest : public ::testing::Test {
protected:
  ir::Module M;

  ir::Function *prep(const std::string &Src) {
    ir::Function *F = frontend::convertDefun(M, Src);
    annotate::annotate(*F);
    return F;
  }

  Location locOf(const TnBindResult &R, const ir::Variable *V) {
    auto It = R.VarLocs.find(V);
    return It == R.VarLocs.end() ? Location() : It->second;
  }
};

TEST_F(TnBindTest, LeafVariablesGetRegisters) {
  ir::Function *F = prep("(defun f (a b) (+& a b))");
  TnBindResult R = allocateVariables(F->Root);
  EXPECT_EQ(R.VarsInRegisters, 2u);
  EXPECT_EQ(R.VarsInFrame, 0u);
  for (const ir::Variable *V : F->Root->Required)
    EXPECT_TRUE(locOf(R, V).isRegister());
}

TEST_F(TnBindTest, VariablesLiveAcrossCallsGoToFrame) {
  ir::Function *F = prep("(defun f (a) (g) (h a) a)");
  TnBindResult R = allocateVariables(F->Root);
  const ir::Variable *A = F->Root->Required[0];
  EXPECT_TRUE(locOf(R, A).isFrame())
      << "a is live across the calls to g and h";
}

TEST_F(TnBindTest, DisjointLifetimesShareRegisters) {
  // x dies before y is born; the packer may reuse the register.
  ir::Function *F = prep("(defun f (a)"
                         "  (let ((x (+& a 1)))"
                         "    (let ((y (+& x 1))) y)))");
  TnBindResult R = allocateVariables(F->Root);
  EXPECT_GE(R.VarsInRegisters, 3u);
}

TEST_F(TnBindTest, NaiveModePinsEverythingToFrame) {
  ir::Function *F = prep("(defun f (a b) (+& a b))");
  TnBindOptions Naive;
  Naive.UseRegisters = false;
  TnBindResult R = allocateVariables(F->Root, Naive);
  EXPECT_EQ(R.VarsInRegisters, 0u);
  EXPECT_EQ(R.VarsInFrame, 2u);
  EXPECT_TRUE(R.RegistersUsed.empty());
}

TEST_F(TnBindTest, SpecialAndHeapVariablesAreSkipped) {
  DiagEngine Diags;
  ASSERT_TRUE(frontend::convertSource(
      M,
      "(defvar *s*)"
      "(defun f (a *s*) (lambda () a))",
      Diags))
      << Diags.str();
  ir::Function *F = M.lookup("f");
  annotate::annotate(*F);
  TnBindResult R = allocateVariables(F->Root);
  const ir::Variable *A = F->Root->Required[0];
  const ir::Variable *S = F->Root->Required[1];
  EXPECT_TRUE(A->HeapAllocated);
  EXPECT_EQ(R.VarLocs.count(A), 0u) << "heap variables live in environments";
  EXPECT_EQ(R.VarLocs.count(S), 0u) << "specials live on the binding stack";
}

TEST_F(TnBindTest, LoopVariablesStayDistinct) {
  // The regression behind fib: loop-carried variables must not share
  // registers even though their static last-use precedes the back edge.
  ir::Function *F = prep("(defun f (n)"
                         "  (do ((i 0 (1+ i)) (a 0 b) (b 1 (+ a b)))"
                         "      ((= i n) a)))");
  TnBindResult R = allocateVariables(F->Root);
  std::vector<Location> Locs;
  for (const ir::Variable *V : F->variables()) {
    auto It = R.VarLocs.find(V);
    if (It != R.VarLocs.end() && It->second.isRegister())
      Locs.push_back(It->second);
  }
  for (size_t I = 0; I < Locs.size(); ++I)
    for (size_t J = I + 1; J < Locs.size(); ++J)
      EXPECT_FALSE(Locs[I].Reg == Locs[J].Reg &&
                   // same register is fine only for genuinely disjoint
                   // lifetimes; inside one loop nothing is disjoint, and
                   // this function is a single loop.
                   true)
          << "two loop variables share R" << int(Locs[I].Reg);
}

TEST_F(TnBindTest, RegistersUsedReported) {
  ir::Function *F = prep("(defun f (a b c) (+& a b c))");
  TnBindResult R = allocateVariables(F->Root);
  EXPECT_EQ(R.RegistersUsed.size(), 3u);
  for (uint8_t Reg : R.RegistersUsed)
    EXPECT_TRUE(s1::isAllocatableReg(Reg));
}

} // namespace
