//===- tests/sexpr/ValueTest.cpp - Value model unit tests -----------------===//

#include "sexpr/Printer.h"
#include "sexpr/Value.h"

#include <gtest/gtest.h>

using namespace s1lisp;
using namespace s1lisp::sexpr;

namespace {

class ValueTest : public ::testing::Test {
protected:
  SymbolTable Syms;
  Heap H;
};

TEST_F(ValueTest, NilBasics) {
  Value N = Value::nil();
  EXPECT_TRUE(N.isNil());
  EXPECT_TRUE(N.isAtom());
  EXPECT_FALSE(N.isTrue());
  EXPECT_TRUE(N.car().isNil());
  EXPECT_TRUE(N.cdr().isNil());
}

TEST_F(ValueTest, SymbolInterning) {
  const Symbol *A1 = Syms.intern("foo");
  const Symbol *A2 = Syms.intern("foo");
  const Symbol *B = Syms.intern("Foo");
  EXPECT_EQ(A1, A2);
  EXPECT_NE(A1, B) << "symbols are case-sensitive";
  EXPECT_EQ(A1->name(), "foo");
}

TEST_F(ValueTest, ConsAccessors) {
  Value C = H.cons(Value::fixnum(1), Value::fixnum(2));
  EXPECT_TRUE(C.isCons());
  EXPECT_EQ(C.car().fixnum(), 1);
  EXPECT_EQ(C.cdr().fixnum(), 2);
}

TEST_F(ValueTest, ListBuildAndFlatten) {
  Value L = H.list({Value::fixnum(1), Value::fixnum(2), Value::fixnum(3)});
  EXPECT_TRUE(isProperList(L));
  EXPECT_EQ(listLength(L), 3u);
  auto V = listToVector(L);
  ASSERT_EQ(V.size(), 3u);
  EXPECT_EQ(V[2].fixnum(), 3);
}

TEST_F(ValueTest, ImproperListDetected) {
  Value L = H.cons(Value::fixnum(1), Value::fixnum(2));
  EXPECT_FALSE(isProperList(L));
}

TEST_F(ValueTest, RatioNormalization) {
  Value R = H.makeRatio(4, 6);
  ASSERT_TRUE(R.isRatio());
  EXPECT_EQ(R.ratio().Num, 2);
  EXPECT_EQ(R.ratio().Den, 3);
}

TEST_F(ValueTest, RatioCollapsesToFixnum) {
  Value R = H.makeRatio(6, 3);
  ASSERT_TRUE(R.isFixnum());
  EXPECT_EQ(R.fixnum(), 2);
}

TEST_F(ValueTest, RatioSignNormalization) {
  Value R = H.makeRatio(1, -2);
  ASSERT_TRUE(R.isRatio());
  EXPECT_EQ(R.ratio().Num, -1);
  EXPECT_EQ(R.ratio().Den, 2);
}

TEST_F(ValueTest, EqlSemantics) {
  EXPECT_TRUE(eql(Value::fixnum(3), Value::fixnum(3)));
  EXPECT_FALSE(eql(Value::fixnum(3), Value::flonum(3.0)))
      << "eql distinguishes exact from inexact";
  Value C1 = H.cons(Value::nil(), Value::nil());
  Value C2 = H.cons(Value::nil(), Value::nil());
  EXPECT_TRUE(eql(C1, C1));
  EXPECT_FALSE(eql(C1, C2));
}

TEST_F(ValueTest, EqualIsStructural) {
  Value A = H.list({Value::fixnum(1), H.list({Value::fixnum(2)})});
  Value B = H.list({Value::fixnum(1), H.list({Value::fixnum(2)})});
  EXPECT_TRUE(equal(A, B));
  Value C = H.list({Value::fixnum(1), H.list({Value::fixnum(3)})});
  EXPECT_FALSE(equal(A, C));
}

TEST_F(ValueTest, PrinterRoundShapes) {
  EXPECT_EQ(toString(Value::nil()), "nil");
  EXPECT_EQ(toString(Value::fixnum(-42)), "-42");
  EXPECT_EQ(toString(Value::flonum(3.0)), "3.0");
  EXPECT_EQ(toString(H.makeRatio(1, 3)), "1/3");
  EXPECT_EQ(toString(H.string("a\"b")), "\"a\\\"b\"");
  Value L = H.list({Value::symbol(Syms.intern("f")), Value::fixnum(1)});
  EXPECT_EQ(toString(L), "(f 1)");
  Value Dotted = H.cons(Value::fixnum(1), Value::fixnum(2));
  EXPECT_EQ(toString(Dotted), "(1 . 2)");
}

TEST_F(ValueTest, FlonumPrintingRoundTrips) {
  for (double D : {0.159154942, 1e30, -2.5e-7, 0.1, 12345.0}) {
    std::string S = formatFlonum(D);
    EXPECT_EQ(strtod(S.c_str(), nullptr), D) << S;
  }
}

} // namespace
