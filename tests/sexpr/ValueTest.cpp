//===- tests/sexpr/ValueTest.cpp - Value model unit tests -----------------===//

#include "sexpr/Printer.h"
#include "sexpr/Value.h"
#include "support/Parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

using namespace s1lisp;
using namespace s1lisp::sexpr;

namespace {

class ValueTest : public ::testing::Test {
protected:
  SymbolTable Syms;
  Heap H;
};

TEST_F(ValueTest, NilBasics) {
  Value N = Value::nil();
  EXPECT_TRUE(N.isNil());
  EXPECT_TRUE(N.isAtom());
  EXPECT_FALSE(N.isTrue());
  EXPECT_TRUE(N.car().isNil());
  EXPECT_TRUE(N.cdr().isNil());
}

TEST_F(ValueTest, SymbolInterning) {
  const Symbol *A1 = Syms.intern("foo");
  const Symbol *A2 = Syms.intern("foo");
  const Symbol *B = Syms.intern("Foo");
  EXPECT_EQ(A1, A2);
  EXPECT_NE(A1, B) << "symbols are case-sensitive";
  EXPECT_EQ(A1->name(), "foo");
}

TEST_F(ValueTest, ConsAccessors) {
  Value C = H.cons(Value::fixnum(1), Value::fixnum(2));
  EXPECT_TRUE(C.isCons());
  EXPECT_EQ(C.car().fixnum(), 1);
  EXPECT_EQ(C.cdr().fixnum(), 2);
}

TEST_F(ValueTest, ListBuildAndFlatten) {
  Value L = H.list({Value::fixnum(1), Value::fixnum(2), Value::fixnum(3)});
  EXPECT_TRUE(isProperList(L));
  EXPECT_EQ(listLength(L), 3u);
  auto V = listToVector(L);
  ASSERT_EQ(V.size(), 3u);
  EXPECT_EQ(V[2].fixnum(), 3);
}

TEST_F(ValueTest, ImproperListDetected) {
  Value L = H.cons(Value::fixnum(1), Value::fixnum(2));
  EXPECT_FALSE(isProperList(L));
}

TEST_F(ValueTest, RatioNormalization) {
  Value R = H.makeRatio(4, 6);
  ASSERT_TRUE(R.isRatio());
  EXPECT_EQ(R.ratio().Num, 2);
  EXPECT_EQ(R.ratio().Den, 3);
}

TEST_F(ValueTest, RatioCollapsesToFixnum) {
  Value R = H.makeRatio(6, 3);
  ASSERT_TRUE(R.isFixnum());
  EXPECT_EQ(R.fixnum(), 2);
}

TEST_F(ValueTest, RatioSignNormalization) {
  Value R = H.makeRatio(1, -2);
  ASSERT_TRUE(R.isRatio());
  EXPECT_EQ(R.ratio().Num, -1);
  EXPECT_EQ(R.ratio().Den, 2);
}

TEST_F(ValueTest, EqlSemantics) {
  EXPECT_TRUE(eql(Value::fixnum(3), Value::fixnum(3)));
  EXPECT_FALSE(eql(Value::fixnum(3), Value::flonum(3.0)))
      << "eql distinguishes exact from inexact";
  Value C1 = H.cons(Value::nil(), Value::nil());
  Value C2 = H.cons(Value::nil(), Value::nil());
  EXPECT_TRUE(eql(C1, C1));
  EXPECT_FALSE(eql(C1, C2));
}

TEST_F(ValueTest, EqualIsStructural) {
  Value A = H.list({Value::fixnum(1), H.list({Value::fixnum(2)})});
  Value B = H.list({Value::fixnum(1), H.list({Value::fixnum(2)})});
  EXPECT_TRUE(equal(A, B));
  Value C = H.list({Value::fixnum(1), H.list({Value::fixnum(3)})});
  EXPECT_FALSE(equal(A, C));
}

TEST_F(ValueTest, PrinterRoundShapes) {
  EXPECT_EQ(toString(Value::nil()), "nil");
  EXPECT_EQ(toString(Value::fixnum(-42)), "-42");
  EXPECT_EQ(toString(Value::flonum(3.0)), "3.0");
  EXPECT_EQ(toString(H.makeRatio(1, 3)), "1/3");
  EXPECT_EQ(toString(H.string("a\"b")), "\"a\\\"b\"");
  Value L = H.list({Value::symbol(Syms.intern("f")), Value::fixnum(1)});
  EXPECT_EQ(toString(L), "(f 1)");
  Value Dotted = H.cons(Value::fixnum(1), Value::fixnum(2));
  EXPECT_EQ(toString(Dotted), "(1 . 2)");
}

TEST_F(ValueTest, FlonumPrintingRoundTrips) {
  for (double D : {0.159154942, 1e30, -2.5e-7, 0.1, 12345.0}) {
    std::string S = formatFlonum(D);
    EXPECT_EQ(strtod(S.c_str(), nullptr), D) << S;
  }
}

// --- Concurrency contracts of the sharded table and striped heap. These
// run through support::parallelFor so the worker pool itself is also
// under test (and under TSan in the sanitizer CI job).

TEST_F(ValueTest, ConcurrentInternYieldsOneIdentityPerName) {
  // Every worker interns the same 64 names; each name must resolve to
  // exactly one Symbol no matter which shard or thread got there first.
  constexpr unsigned Workers = 8;
  constexpr unsigned Names = 64;
  const size_t Baseline = Syms.size(); // ctor pre-interns t/quote
  std::vector<std::vector<const Symbol *>> Seen(Workers);
  support::parallelFor(Workers, Workers, [&](size_t W) {
    for (unsigned Round = 0; Round < 50; ++Round)
      for (unsigned N = 0; N < Names; ++N)
        Seen[W].push_back(Syms.intern("contended-" + std::to_string(N)));
  });
  for (unsigned N = 0; N < Names; ++N) {
    const Symbol *Canon = Syms.intern("contended-" + std::to_string(N));
    EXPECT_EQ(Canon->name(), "contended-" + std::to_string(N));
    for (unsigned W = 0; W < Workers; ++W)
      for (unsigned Round = 0; Round < 50; ++Round)
        EXPECT_EQ(Seen[W][Round * Names + N], Canon)
            << "worker " << W << " saw a duplicate identity for name " << N;
  }
  EXPECT_EQ(Syms.size(), Baseline + Names);
}

TEST_F(ValueTest, ConcurrentDistinctInternsAllLand) {
  // Disjoint name sets from every worker: size() must converge on the
  // exact population even though it reads shard counters lock-free.
  constexpr unsigned Workers = 8;
  constexpr unsigned PerWorker = 200;
  const size_t Baseline = Syms.size(); // ctor pre-interns t/quote
  support::parallelFor(Workers, Workers, [&](size_t W) {
    for (unsigned N = 0; N < PerWorker; ++N)
      Syms.intern("w" + std::to_string(W) + "-n" + std::to_string(N));
  });
  EXPECT_EQ(Syms.size(), Baseline + size_t(Workers) * PerWorker);
  std::set<const Symbol *> Unique;
  for (unsigned W = 0; W < Workers; ++W)
    for (unsigned N = 0; N < PerWorker; ++N)
      Unique.insert(Syms.intern("w" + std::to_string(W) + "-n" +
                                std::to_string(N)));
  EXPECT_EQ(Unique.size(), size_t(Workers) * PerWorker);
}

TEST_F(ValueTest, ConcurrentConsKeepsCellsAndCount) {
  // Workers allocate from thread-affine regions; every cell must survive
  // with its payload intact, and consCount() must total the regions.
  constexpr unsigned Workers = 8;
  constexpr unsigned PerWorker = 500;
  std::vector<std::vector<Value>> Cells(Workers);
  support::parallelFor(Workers, Workers, [&](size_t W) {
    for (unsigned N = 0; N < PerWorker; ++N)
      Cells[W].push_back(H.cons(Value::fixnum(int64_t(W)),
                                Value::fixnum(int64_t(N))));
  });
  EXPECT_EQ(H.consCount(), size_t(Workers) * PerWorker);
  for (unsigned W = 0; W < Workers; ++W)
    for (unsigned N = 0; N < PerWorker; ++N) {
      ASSERT_TRUE(Cells[W][N].isCons());
      EXPECT_EQ(Cells[W][N].car().fixnum(), int64_t(W));
      EXPECT_EQ(Cells[W][N].cdr().fixnum(), int64_t(N));
    }
}

TEST_F(ValueTest, AggregatesReadableWhileWritersRun) {
  // size()/consCount() are documented lock-free: a reader spinning
  // through them must never block writers or tear (monotone growth).
  constexpr unsigned Writers = 4;
  std::atomic<bool> Stop{false};
  size_t LastSyms = 0, LastConses = 0;
  bool Monotone = true;
  support::parallelFor(Writers + 1, Writers + 1, [&](size_t W) {
    if (W == 0) { // reader
      while (!Stop.load(std::memory_order_acquire)) {
        size_t S = Syms.size(), C = H.consCount();
        if (S < LastSyms || C < LastConses)
          Monotone = false;
        LastSyms = S;
        LastConses = C;
      }
      return;
    }
    for (unsigned N = 0; N < 300; ++N) {
      Syms.intern("live-w" + std::to_string(W) + "-" + std::to_string(N));
      H.cons(Value::fixnum(int64_t(N)), Value::nil());
    }
    if (W == 1) // any single writer finishing is enough signal
      Stop.store(true, std::memory_order_release);
  });
  Stop.store(true, std::memory_order_release);
  EXPECT_TRUE(Monotone) << "lock-free aggregate went backwards";
  EXPECT_EQ(H.consCount(), size_t(Writers) * 300);
}

} // namespace
