//===- tests/sexpr/ReaderTest.cpp - Reader tests --------------------------===//

#include "sexpr/Printer.h"
#include "sexpr/Reader.h"

#include <gtest/gtest.h>

using namespace s1lisp;
using namespace s1lisp::sexpr;

namespace {

class ReaderTest : public ::testing::Test {
protected:
  SymbolTable Syms;
  Heap H;

  Value read1(std::string_view Src) { return readOne(Syms, H, Src); }

  /// Read then print; the canonical round-trip check.
  std::string roundTrip(std::string_view Src) { return toString(read1(Src)); }

  bool failsToRead(std::string_view Src) {
    DiagEngine Diags;
    Reader R(Syms, H, Src, Diags);
    auto V = R.read();
    return !V || Diags.hasErrors();
  }

  /// Read expecting failure; return the diagnostic text so tests can pin
  /// down WHICH error fired, not just that one did.
  std::string readError(std::string_view Src) {
    DiagEngine Diags;
    Reader R(Syms, H, Src, Diags);
    (void)R.read();
    return Diags.str();
  }
};

TEST_F(ReaderTest, Atoms) {
  EXPECT_TRUE(read1("nil").isNil());
  EXPECT_EQ(read1("42").fixnum(), 42);
  EXPECT_EQ(read1("-7").fixnum(), -7);
  EXPECT_DOUBLE_EQ(read1("3.5").flonum(), 3.5);
  EXPECT_DOUBLE_EQ(read1("1e3").flonum(), 1000.0);
  EXPECT_DOUBLE_EQ(read1("-2.5e-2").flonum(), -0.025);
  EXPECT_DOUBLE_EQ(read1(".5").flonum(), 0.5);
  EXPECT_EQ(read1("2/4").ratio().Den, 2);
  EXPECT_EQ(read1("foo").symbol()->name(), "foo");
  EXPECT_EQ(read1("+").symbol()->name(), "+");
  EXPECT_EQ(read1("+$f").symbol()->name(), "+$f");
  EXPECT_EQ(read1("1+").symbol()->name(), "1+");
  EXPECT_EQ(read1("a.b").symbol()->name(), "a.b");
}

TEST_F(ReaderTest, Lists) {
  EXPECT_EQ(roundTrip("(a b c)"), "(a b c)");
  EXPECT_EQ(roundTrip("()"), "nil");
  EXPECT_EQ(roundTrip("(a (b c) d)"), "(a (b c) d)");
  EXPECT_EQ(roundTrip("(a . b)"), "(a . b)");
  EXPECT_EQ(roundTrip("(a b . c)"), "(a b . c)");
}

TEST_F(ReaderTest, QuoteSugar) {
  EXPECT_EQ(roundTrip("'x"), "(quote x)");
  EXPECT_EQ(roundTrip("'(1 2)"), "(quote (1 2))");
}

TEST_F(ReaderTest, Strings) {
  EXPECT_EQ(read1("\"hi\"").stringValue(), "hi");
  EXPECT_EQ(read1("\"a\\\"b\\\\c\\n\"").stringValue(), "a\"b\\c\n");
}

TEST_F(ReaderTest, Comments) {
  EXPECT_EQ(roundTrip("; header\n(a ; mid\n b)"), "(a b)");
  EXPECT_EQ(roundTrip("#| block #| nested |# |# (x)"), "(x)");
}

TEST_F(ReaderTest, MultipleForms) {
  DiagEngine Diags;
  auto Forms = readAll(Syms, H, "(a) 42 sym", Diags);
  ASSERT_EQ(Forms.size(), 3u);
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Forms[1].fixnum(), 42);
}

TEST_F(ReaderTest, SourceLocationsRecorded) {
  Value V = read1("\n  (f x)");
  ASSERT_TRUE(V.isCons());
  EXPECT_EQ(V.consCell()->Loc.Line, 2u);
  EXPECT_EQ(V.consCell()->Loc.Column, 3u);
}

TEST_F(ReaderTest, Errors) {
  EXPECT_TRUE(failsToRead("(a b"));
  EXPECT_TRUE(failsToRead(")"));
  EXPECT_TRUE(failsToRead("\"unterminated"));
  EXPECT_TRUE(failsToRead("(a . )"));
  EXPECT_TRUE(failsToRead("(. b)"));
  EXPECT_TRUE(failsToRead("(a . b c)"));
  EXPECT_TRUE(failsToRead("#| never closed"));
  EXPECT_TRUE(failsToRead(""));
}

TEST_F(ReaderTest, UnterminatedFormsNameTheConstruct) {
  EXPECT_NE(readError("\"no closing quote").find("unterminated string literal"),
            std::string::npos);
  EXPECT_NE(readError("\"escape at eof\\").find("unterminated string literal"),
            std::string::npos);
  EXPECT_NE(readError("(a (b c)").find("unterminated list"),
            std::string::npos);
  EXPECT_NE(readError("(").find("unterminated list"), std::string::npos);
}

TEST_F(ReaderTest, DottedListMisuseDiagnosed) {
  EXPECT_NE(readError("(. b)").find("dotted pair with no car"),
            std::string::npos);
  EXPECT_NE(readError("(a . b c)").find("expected ')' after dotted tail"),
            std::string::npos);
  EXPECT_NE(readError("(a . b . c)").find("expected ')' after dotted tail"),
            std::string::npos);
  // A dot INSIDE a symbol is not dotted-pair syntax.
  EXPECT_EQ(read1("(a.b)").car().symbol()->name(), "a.b");
}

TEST_F(ReaderTest, MalformedRatioDiagnosed) {
  EXPECT_NE(readError("1/0").find("ratio with zero denominator"),
            std::string::npos);
  EXPECT_NE(readError("(+ 1 3/0)").find("ratio with zero denominator"),
            std::string::npos);
  // Non-numeric slash tokens are ordinary symbols, not broken ratios.
  EXPECT_EQ(read1("a/b").symbol()->name(), "a/b");
}

TEST_F(ReaderTest, DeepNestingIsBoundedNotCrashing) {
  // One past the limit must produce a diagnostic rather than a stack
  // overflow; the reader recursion depth is capped at MaxNestingDepth.
  unsigned Deep = Reader::MaxNestingDepth + 1;
  std::string Src(Deep, '(');
  Src += "x";
  Src.append(Deep, ')');
  EXPECT_NE(readError(Src).find("expression nesting too deep"),
            std::string::npos);

  // Well inside the limit still reads fine.
  std::string Ok(100, '(');
  Ok += "x";
  Ok.append(100, ')');
  DiagEngine Diags;
  Reader R(Syms, H, Ok, Diags);
  auto V = R.read();
  ASSERT_TRUE(V.has_value());
  EXPECT_FALSE(Diags.hasErrors());
}

TEST_F(ReaderTest, PaperQuadraticReads) {
  const char *Src = "(defun quadratic (a b c)\n"
                    "  (let ((d (- (* b b) (* 4.0 a c))))\n"
                    "    (cond ((< d 0) '())\n"
                    "          ((= d 0) (list (/ (- b) (* 2.0 a))))\n"
                    "          (t (let ((two-a (* 2.0 a)) (sd (sqrt d)))\n"
                    "               (list (/ (+ (- b) sd) two-a)\n"
                    "                     (/ (- (- b) sd) two-a)))))))";
  Value V = read1(Src);
  EXPECT_TRUE(isProperList(V));
  EXPECT_EQ(V.car().symbol()->name(), "defun");
  EXPECT_EQ(listLength(V), 4u);
}

// Property: print(read(print(read(s)))) == print(read(s)) over a corpus.
class RoundTripProperty : public ::testing::TestWithParam<const char *> {};

TEST_P(RoundTripProperty, Stable) {
  SymbolTable Syms;
  Heap H;
  Value V1 = readOne(Syms, H, GetParam());
  std::string P1 = toString(V1);
  Value V2 = readOne(Syms, H, P1);
  EXPECT_EQ(toString(V2), P1);
  EXPECT_TRUE(equal(V1, V2));
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTripProperty,
    ::testing::Values("(lambda (x) (+ x 1))", "((a . b) (c . (d)))",
                      "(1 2.5 3/4 \"s\" sym (nested (deep (er))))",
                      "'(quote (quote x))", "(- -1 -2.0 -3/4)",
                      "(if p (f) (g))", "(progn)", "(((())))",
                      "(do ((i 0 (1+ i))) ((= i 10)) (f i))"));

} // namespace
