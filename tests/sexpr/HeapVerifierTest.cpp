//===- tests/sexpr/HeapVerifierTest.cpp -----------------------------------===//
//
// The moving-collector stress harness: forced collections under every
// schedule the runtime exposes, with Heap::verify() asserted clean after
// each one. Covers evacuation of every cell kind, identity preservation
// of shared structure, the write barrier (tenured-to-nursery and
// cross-heap edges), root providers, and tenured reclamation by the
// mark-sweep fallback.
//
//===----------------------------------------------------------------------===//

#include "sexpr/Value.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace s1lisp;
using sexpr::Heap;
using sexpr::Value;

namespace {

std::string verifyError(Heap &H) {
  std::string Err;
  return H.verify(&Err) ? std::string() : Err;
}

TEST(HeapVerifier, CleanOnFreshHeap) {
  Heap H;
  EXPECT_EQ(verifyError(H), "");
}

TEST(HeapVerifier, ForcedCollectionPreservesListContents) {
  Heap H;
  Value L = Value::nil();
  Heap::RootScope Roots(H);
  Roots.add(&L);
  for (int I = 99; I >= 0; --I)
    L = H.cons(Value::fixnum(I), L);
  H.collect();
  ASSERT_EQ(verifyError(H), "");

  Value Cur = L;
  for (int I = 0; I < 100; ++I) {
    ASSERT_TRUE(Cur.isCons());
    EXPECT_EQ(Cur.car().fixnum(), I);
    Cur = Cur.cdr();
  }
  EXPECT_TRUE(Cur.isNil());
}

TEST(HeapVerifier, EveryCellKindSurvivesEvacuation) {
  Heap H;
  Value L = Value::nil();
  Heap::RootScope Roots(H);
  Roots.add(&L);
  L = H.cons(H.string("a long string that certainly heap-allocates"), L);
  L = H.cons(H.makeRatio(2, 6), L); // normalizes to 1/3, a RatioCell
  L = H.cons(Value::flonum(2.5), L);
  L = H.cons(Value::fixnum(7), L);
  H.collect();
  ASSERT_EQ(verifyError(H), "");

  EXPECT_EQ(L.car().fixnum(), 7);
  EXPECT_DOUBLE_EQ(L.cdr().car().flonum(), 2.5);
  EXPECT_EQ(L.cdr().cdr().car().ratio().Num, 1);
  EXPECT_EQ(L.cdr().cdr().car().ratio().Den, 3);
  EXPECT_EQ(L.cdr().cdr().cdr().car().stringValue(),
            "a long string that certainly heap-allocates");
}

TEST(HeapVerifier, SharedStructureKeepsIdentity) {
  Heap H;
  Value Shared = H.cons(Value::fixnum(42), Value::nil());
  Value Pair = H.cons(Shared, Shared);
  Heap::RootScope Roots(H);
  Roots.add(&Pair);
  H.collect();
  ASSERT_EQ(verifyError(H), "");
  // One object before the move must still be one object after it.
  EXPECT_EQ(Pair.car().consCell(), Pair.cdr().consCell());
  EXPECT_TRUE(sexpr::eql(Pair.car(), Pair.cdr()));
  EXPECT_EQ(Pair.car().car().fixnum(), 42);
}

TEST(HeapVerifier, CyclePromotesWithoutLooping) {
  Heap H;
  Value A = H.cons(Value::fixnum(1), Value::nil());
  Value B = H.cons(Value::fixnum(2), A);
  A.consCell()->Cdr = B; // cycle A -> B -> A
  H.writeBarrier(A.consCell());
  Heap::RootScope Roots(H);
  Roots.add(&A);
  H.collect();
  ASSERT_EQ(verifyError(H), "");
  EXPECT_EQ(A.car().fixnum(), 1);
  EXPECT_EQ(A.cdr().car().fixnum(), 2);
  EXPECT_EQ(A.cdr().cdr().consCell(), A.consCell());
}

TEST(HeapVerifier, GcEveryOneStaysCleanUnderChurn) {
  Heap H;
  H.setGcEvery(1);
  H.setVerifyAfterGc(true); // aborts the test hard on any corruption
  Value L = Value::nil();
  Heap::RootScope Roots(H);
  Roots.add(&L);
  long Expect = 0;
  for (int I = 0; I < 500; ++I) {
    L = H.cons(Value::fixnum(I), L);
    Expect += I;
  }
  ASSERT_EQ(verifyError(H), "");
  EXPECT_GE(H.gcStats().Collections, 400u);

  long Sum = 0;
  for (Value Cur = L; Cur.isCons(); Cur = Cur.cdr())
    Sum += Cur.car().fixnum();
  EXPECT_EQ(Sum, Expect);
}

TEST(HeapVerifier, WriteBarrierCatchesTenuredToNurseryEdge) {
  Heap H;
  H.setGcEvery(1'000'000); // enabled, but only collects when forced
  Value Old = H.cons(Value::fixnum(1), Value::nil());
  Heap::RootScope Roots(H);
  Roots.add(&Old);
  H.collect(); // Old is tenured now
  ASSERT_GE(H.tenuredCells(), 1u);

  Value Young = H.cons(Value::fixnum(2), Value::nil());
  Old.consCell()->Cdr = Young;
  H.writeBarrier(Old.consCell());
  // Young is unreachable from the shadow stack except through Old's
  // mutated cdr — exactly what the remembered set must cover.
  Young = Value::nil();
  H.collect();
  ASSERT_EQ(verifyError(H), "");
  EXPECT_EQ(Old.cdr().car().fixnum(), 2);
}

TEST(HeapVerifier, MajorCollectionReclaimsTenuredGarbage) {
  Heap H;
  H.setGcEvery(1'000'000);
  {
    Value L = Value::nil();
    Heap::RootScope Roots(H);
    Roots.add(&L);
    for (int I = 0; I < 200; ++I)
      L = H.cons(Value::fixnum(I), L);
    H.collect(); // promotes the whole list
    EXPECT_GE(H.tenuredCells(), 200u);
  }
  // The list is no longer rooted; the forced major pass must sweep it.
  H.collect();
  ASSERT_EQ(verifyError(H), "");
  EXPECT_GE(H.gcStats().CellsSwept, 200u);
  EXPECT_LT(H.tenuredCells(), 200u);
}

TEST(HeapVerifier, RootProviderSlotsAreMovedInPlace) {
  struct Slots : sexpr::RootProvider {
    std::vector<Value> Held;
    void visitRoots(const std::function<void(Value &)> &Visit) override {
      for (Value &V : Held)
        Visit(V);
    }
  };
  Heap H;
  Slots P;
  H.registerRootProvider(&P);
  P.Held.push_back(H.cons(Value::fixnum(5), H.string("tail")));
  H.collect();
  ASSERT_EQ(verifyError(H), "");
  EXPECT_EQ(P.Held[0].car().fixnum(), 5);
  EXPECT_EQ(P.Held[0].cdr().stringValue(), "tail");
  H.unregisterRootProvider(&P);
  // With its only root gone, the next full collection reclaims the cell.
  H.collect();
  ASSERT_EQ(verifyError(H), "");
}

TEST(HeapVerifier, CrossHeapEdgeIsAPermanentRoot) {
  // A cell of heap A mutated to point into heap B's cells is B-foreign;
  // the mirror case — B's cell pointing into A — makes A's cell an
  // external root for A's collector via A's persistent cross-heap set.
  Heap A, B;
  A.setGcEvery(1'000'000);
  Value Target = A.cons(Value::fixnum(9), Value::nil());
  Heap::RootScope Roots(A);
  Roots.add(&Target);

  Value Holder = B.cons(Value::nil(), Value::nil());
  Holder.consCell()->Car = Target;
  A.writeBarrier(Holder.consCell()); // foreign cell, lands in A's cross-heap set

  A.collect();
  ASSERT_EQ(verifyError(A), "");
  // The foreign holder's slot was rewritten to the moved cell.
  EXPECT_TRUE(sexpr::eql(Holder.car(), Target));
  EXPECT_EQ(Holder.car().car().fixnum(), 9);
}

TEST(HeapVerifier, NurseryIsReusedAcrossCollections) {
  Heap H;
  H.setGcEvery(64);
  H.setVerifyAfterGc(true);
  // Pure churn: nothing is rooted, so every collection empties the
  // nursery and promotes nothing.
  for (int I = 0; I < 10'000; ++I)
    H.cons(Value::fixnum(I), Value::nil());
  ASSERT_EQ(verifyError(H), "");
  EXPECT_GE(H.gcStats().Collections, 100u);
  EXPECT_EQ(H.gcStats().CellsPromoted, 0u);
  EXPECT_EQ(H.consCount(), 10'000u); // the tally is monotone
}

TEST(HeapVerifier, ConsArgumentsAreSelfRooted) {
  Heap H;
  H.setGcEvery(1);
  H.setVerifyAfterGc(true);
  // cons(car, cdr) may collect before allocating; its own arguments must
  // survive the move without any caller-side rooting.
  Value L = Value::nil();
  Heap::RootScope Roots(H);
  Roots.add(&L);
  for (int I = 0; I < 100; ++I)
    L = H.cons(H.cons(Value::fixnum(I), Value::nil()), L);
  ASSERT_EQ(verifyError(H), "");
  int I = 99;
  for (Value Cur = L; Cur.isCons(); Cur = Cur.cdr(), --I)
    EXPECT_EQ(Cur.car().car().fixnum(), I);
}

} // namespace
