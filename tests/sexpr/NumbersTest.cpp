//===- tests/sexpr/NumbersTest.cpp - Numeric tower tests ------------------===//

#include "sexpr/Numbers.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

using namespace s1lisp;
using namespace s1lisp::sexpr;

namespace {

class NumbersTest : public ::testing::Test {
protected:
  Heap H;

  Value fx(int64_t N) { return Value::fixnum(N); }
  Value fl(double D) { return Value::flonum(D); }
  Value rat(int64_t N, int64_t D) { return H.makeRatio(N, D); }
};

TEST_F(NumbersTest, FixnumAdd) {
  auto R = arith(H, ArithOp::Add, fx(2), fx(3));
  ASSERT_TRUE(R);
  EXPECT_EQ(R->fixnum(), 5);
}

TEST_F(NumbersTest, FlonumContagion) {
  auto R = arith(H, ArithOp::Add, fx(2), fl(0.5));
  ASSERT_TRUE(R);
  ASSERT_TRUE(R->isFlonum());
  EXPECT_DOUBLE_EQ(R->flonum(), 2.5);
}

TEST_F(NumbersTest, ExactDivisionYieldsRatio) {
  auto R = arith(H, ArithOp::Div, fx(1), fx(3));
  ASSERT_TRUE(R);
  ASSERT_TRUE(R->isRatio());
  EXPECT_EQ(R->ratio().Num, 1);
  EXPECT_EQ(R->ratio().Den, 3);
}

TEST_F(NumbersTest, RatioArithmeticNormalizes) {
  auto R = arith(H, ArithOp::Add, rat(1, 6), rat(1, 3));
  ASSERT_TRUE(R);
  ASSERT_TRUE(R->isRatio());
  EXPECT_EQ(R->ratio().Num, 1);
  EXPECT_EQ(R->ratio().Den, 2);
}

TEST_F(NumbersTest, RatioCollapse) {
  auto R = arith(H, ArithOp::Add, rat(1, 2), rat(1, 2));
  ASSERT_TRUE(R);
  EXPECT_TRUE(R->isFixnum());
  EXPECT_EQ(R->fixnum(), 1);
}

TEST_F(NumbersTest, DivisionByZeroFails) {
  EXPECT_FALSE(arith(H, ArithOp::Div, fx(1), fx(0)));
  EXPECT_FALSE(arith(H, ArithOp::Div, fl(1.0), fl(0.0)));
  EXPECT_FALSE(arith(H, ArithOp::Mod, fx(1), fx(0)));
}

TEST_F(NumbersTest, OverflowDetected) {
  int64_t Max = std::numeric_limits<int64_t>::max();
  EXPECT_FALSE(arith(H, ArithOp::Add, fx(Max), fx(1)));
  EXPECT_FALSE(arith(H, ArithOp::Mul, fx(Max), fx(2)));
  EXPECT_FALSE(negate(H, fx(std::numeric_limits<int64_t>::min())));
}

TEST_F(NumbersTest, FloorFamilyMatchesCommonLisp) {
  // (floor 7 2) = 3, (floor -7 2) = -4, (ceiling -7 2) = -3,
  // (truncate -7 2) = -3, (round 5 2) = 2 (ties to even), (round 7 2) = 4.
  EXPECT_EQ(arith(H, ArithOp::Floor, fx(7), fx(2))->fixnum(), 3);
  EXPECT_EQ(arith(H, ArithOp::Floor, fx(-7), fx(2))->fixnum(), -4);
  EXPECT_EQ(arith(H, ArithOp::Ceiling, fx(-7), fx(2))->fixnum(), -3);
  EXPECT_EQ(arith(H, ArithOp::Truncate, fx(-7), fx(2))->fixnum(), -3);
  EXPECT_EQ(arith(H, ArithOp::Round, fx(5), fx(2))->fixnum(), 2);
  EXPECT_EQ(arith(H, ArithOp::Round, fx(7), fx(2))->fixnum(), 4);
}

TEST_F(NumbersTest, ModRemSigns) {
  // CL: (mod -7 2) = 1, (rem -7 2) = -1, (mod 7 -2) = -1.
  EXPECT_EQ(arith(H, ArithOp::Mod, fx(-7), fx(2))->fixnum(), 1);
  EXPECT_EQ(arith(H, ArithOp::Rem, fx(-7), fx(2))->fixnum(), -1);
  EXPECT_EQ(arith(H, ArithOp::Mod, fx(7), fx(-2))->fixnum(), -1);
}

TEST_F(NumbersTest, MaxMinWithContagion) {
  auto R = arith(H, ArithOp::Max, fx(2), fl(1.5));
  ASSERT_TRUE(R);
  ASSERT_TRUE(R->isFlonum());
  EXPECT_DOUBLE_EQ(R->flonum(), 2.0);
  auto M = arith(H, ArithOp::Min, fx(2), fx(7));
  EXPECT_EQ(M->fixnum(), 2);
}

TEST_F(NumbersTest, ExptExactAndInexact) {
  EXPECT_EQ(arith(H, ArithOp::Expt, fx(2), fx(10))->fixnum(), 1024);
  auto R = arith(H, ArithOp::Expt, fl(2.0), fx(-1));
  ASSERT_TRUE(R);
  EXPECT_DOUBLE_EQ(R->flonum(), 0.5);
  EXPECT_FALSE(arith(H, ArithOp::Expt, fx(10), fx(40))) << "overflow declines";
}

TEST_F(NumbersTest, CompareAcrossTypes) {
  EXPECT_TRUE(*compare(CompareOp::Lt, rat(1, 3), fl(0.34)));
  EXPECT_TRUE(*compare(CompareOp::Eq, fx(2), fl(2.0)))
      << "numeric = compares value, unlike eql";
  EXPECT_TRUE(*compare(CompareOp::Gt, rat(2, 3), rat(1, 2)));
  EXPECT_FALSE(compare(CompareOp::Lt, fx(1), Value::nil()));
}

TEST_F(NumbersTest, Predicates) {
  EXPECT_TRUE(*isZero(fx(0)));
  EXPECT_TRUE(*isZero(fl(0.0)));
  EXPECT_FALSE(*isZero(rat(1, 2)));
  EXPECT_TRUE(*isOdd(fx(-3)));
  EXPECT_TRUE(*isEven(fx(0)));
  EXPECT_FALSE(isOdd(fl(3.0))) << "oddp applies to integers only";
  EXPECT_TRUE(*isMinus(rat(-1, 2)));
  EXPECT_TRUE(*isPlus(fl(0.5)));
}

TEST_F(NumbersTest, NegateAndAbs) {
  EXPECT_EQ(negate(H, fx(5))->fixnum(), -5);
  EXPECT_EQ(numAbs(H, rat(-2, 3))->ratio().Num, 2);
  EXPECT_DOUBLE_EQ(numAbs(H, fl(-2.5))->flonum(), 2.5);
}

// Property sweep: floor/mod identity  a = floor(a,b)*b + mod(a,b).
class FloorModProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FloorModProperty, Identity) {
  Heap H;
  auto [A, B] = GetParam();
  if (B == 0)
    return;
  Value Fa = Value::fixnum(A), Fb = Value::fixnum(B);
  int64_t Q = arith(H, ArithOp::Floor, Fa, Fb)->fixnum();
  int64_t M = arith(H, ArithOp::Mod, Fa, Fb)->fixnum();
  EXPECT_EQ(Q * B + M, A);
  // mod result has the sign of the divisor (or zero).
  EXPECT_TRUE(M == 0 || (M > 0) == (B > 0));
  EXPECT_LT(std::abs(M), std::abs(B));
}

std::vector<std::pair<int, int>> floorModCases() {
  std::vector<std::pair<int, int>> Cases;
  for (int A : {-17, -8, -1, 0, 1, 5, 16, 23})
    for (int B : {-7, -3, -1, 1, 2, 5, 9})
      Cases.push_back({A, B});
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FloorModProperty,
                         ::testing::ValuesIn(floorModCases()));

} // namespace
