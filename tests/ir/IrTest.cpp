//===- tests/ir/IrTest.cpp - Internal tree structural tests ---------------===//

#include "ir/BackTranslate.h"
#include "ir/Ir.h"
#include "ir/Primitives.h"

#include <gtest/gtest.h>

using namespace s1lisp;
using namespace s1lisp::ir;
using sexpr::Value;

namespace {

class IrTest : public ::testing::Test {
protected:
  Module M;
  Function *F = M.addFunction("test");

  const sexpr::Symbol *sym(const char *S) { return M.Syms.intern(S); }
};

TEST_F(IrTest, FactoriesSetParents) {
  Node *Lit = F->makeLiteral(Value::fixnum(1));
  Node *Nil = F->makeNil();
  IfNode *If = F->makeIf(Lit, Nil, F->makeNil());
  EXPECT_EQ(Lit->Parent, If);
  EXPECT_EQ(Nil->Parent, If);
  EXPECT_EQ(If->kind(), NodeKind::If);
}

TEST_F(IrTest, VariableBackPointers) {
  Variable *V = F->makeVariable(sym("x"));
  VarRefNode *R1 = F->makeVarRef(V);
  SetqNode *S = F->makeSetq(V, F->makeLiteral(Value::fixnum(2)));
  ASSERT_EQ(V->Refs.size(), 2u);
  EXPECT_EQ(V->Refs[0], R1);
  EXPECT_EQ(V->Refs[1], S);
  EXPECT_TRUE(V->Written);
}

TEST_F(IrTest, ForEachChildOrder) {
  Node *A = F->makeLiteral(Value::fixnum(1));
  Node *B = F->makeLiteral(Value::fixnum(2));
  Node *C = F->makeLiteral(Value::fixnum(3));
  IfNode *If = F->makeIf(A, B, C);
  std::vector<Node *> Seen;
  forEachChild(If, [&Seen](Node *N) { Seen.push_back(N); });
  EXPECT_EQ(Seen, (std::vector<Node *>{A, B, C}));
}

TEST_F(IrTest, ReplaceChild) {
  Node *A = F->makeLiteral(Value::fixnum(1));
  PrognNode *P = F->makeProgn({A, F->makeNil()});
  Node *New = F->makeLiteral(Value::fixnum(9));
  replaceChild(P, A, New);
  EXPECT_EQ(P->Forms[0], New);
  EXPECT_EQ(New->Parent, P);
}

TEST_F(IrTest, CloneRenamesBoundVariables) {
  // ((lambda (x) x) 5): cloning must produce a fresh x.
  LambdaNode *L = F->makeLambda();
  Variable *X = F->makeVariable(sym("x"));
  X->Binder = L;
  L->Required = {X};
  L->Body = F->makeVarRef(X);
  L->Body->Parent = L;
  CallNode *Call = F->makeCallExpr(L, {F->makeLiteral(Value::fixnum(5))});

  auto *Copy = cast<CallNode>(cloneTree(*F, Call));
  auto *CopyL = cast<LambdaNode>(Copy->CalleeExpr);
  ASSERT_EQ(CopyL->Required.size(), 1u);
  EXPECT_NE(CopyL->Required[0], X) << "bound variable must be freshened";
  EXPECT_EQ(cast<VarRefNode>(CopyL->Body)->Var, CopyL->Required[0]);
}

TEST_F(IrTest, CloneKeepsFreeVariables) {
  Variable *Free = F->makeVariable(sym("y"));
  Node *Ref = F->makeVarRef(Free);
  auto *Copy = cast<VarRefNode>(cloneTree(*F, Ref));
  EXPECT_EQ(Copy->Var, Free);
}

TEST_F(IrTest, CloneRemapsProgBodyTargets) {
  ProgBodyNode *PB = F->makeProgBody({});
  GoNode *G = F->makeGo(sym("loop"), PB);
  PB->Items = {{sym("loop"), nullptr}, {nullptr, G}};
  G->Parent = PB;

  auto *Copy = cast<ProgBodyNode>(cloneTree(*F, PB));
  ASSERT_EQ(Copy->Items.size(), 2u);
  auto *CopyGo = cast<GoNode>(Copy->Items[1].Stmt);
  EXPECT_EQ(CopyGo->Target, Copy) << "go target remapped into the clone";
}

TEST_F(IrTest, TreeSize) {
  Node *N = F->makeIf(F->makeNil(), F->makeNil(), F->makeNil());
  EXPECT_EQ(treeSize(N), 4u);
}

TEST_F(IrTest, RepPredicates) {
  EXPECT_TRUE(repIsPdlEligible(Rep::SWFLO));
  EXPECT_TRUE(repIsPdlEligible(Rep::DWCPLX));
  EXPECT_FALSE(repIsPdlEligible(Rep::SWFIX)) << "fixnums fit in the pointer";
  EXPECT_FALSE(repIsPdlEligible(Rep::POINTER));
  EXPECT_STREQ(repName(Rep::SWFLO), "SWFLO");
}

TEST_F(IrTest, EffectAlgebra) {
  EffectInfo Pure;
  EffectInfo Writes{EffectWrites};
  EffectInfo Reads{EffectReads};
  EffectInfo Alloc{EffectAllocates};
  EXPECT_TRUE(Pure.pure());
  EXPECT_TRUE(Pure.duplicable());
  EXPECT_TRUE(Alloc.eliminable());
  EXPECT_FALSE(Alloc.duplicable()) << "allocation must not be duplicated";
  EXPECT_FALSE(Writes.eliminable());
  EXPECT_TRUE(Pure.commutesWith(Writes));
  EXPECT_FALSE(Writes.commutesWith(Reads));
  EXPECT_FALSE(Writes.commutesWith(Writes));
  EXPECT_TRUE(Reads.commutesWith(Reads));
  EffectInfo Unknown{EffectUnknownCall};
  EXPECT_TRUE(Pure.commutesWith(Unknown))
      << "pure math moves past unknown calls (the frotz motion of §7)";
  EXPECT_FALSE(Reads.commutesWith(Unknown));
}

TEST_F(IrTest, PrimitiveTable) {
  const PrimInfo *Add = lookupPrim("+");
  ASSERT_NE(Add, nullptr);
  EXPECT_TRUE(Add->Assoc);
  EXPECT_TRUE(Add->Commut);
  EXPECT_TRUE(Add->Foldable);
  EXPECT_EQ(*Add->FixIdentity, 0);

  const PrimInfo *FAdd = lookupPrim("+$f");
  ASSERT_NE(FAdd, nullptr);
  EXPECT_EQ(FAdd->ArgRep, Rep::SWFLO);
  EXPECT_EQ(FAdd->ResultRep, Rep::SWFLO);
  EXPECT_EQ(*FAdd->FloatIdentity, 0.0);

  const PrimInfo *ConsP = lookupPrim("cons");
  ASSERT_NE(ConsP, nullptr);
  EXPECT_TRUE(ConsP->Effects.eliminable());
  EXPECT_FALSE(ConsP->Effects.duplicable());

  const PrimInfo *Rplaca = lookupPrim("rplaca");
  ASSERT_NE(Rplaca, nullptr);
  EXPECT_FALSE(Rplaca->Effects.eliminable());

  const PrimInfo *Lt = lookupPrim("<");
  ASSERT_NE(Lt, nullptr);
  EXPECT_TRUE(Lt->CompareLike);
  EXPECT_EQ(Lt->ResultRep, Rep::BIT);

  EXPECT_EQ(lookupPrim("no-such-fn"), nullptr);
  EXPECT_FALSE(lookupPrim("eq")->acceptsArgCount(3));
  EXPECT_TRUE(lookupPrim("list")->acceptsArgCount(17));
}

TEST_F(IrTest, VerifyCatchesBadParent) {
  LambdaNode *L = F->makeLambda();
  Node *Body = F->makeNil();
  L->Body = Body; // deliberately not setting Body->Parent
  Body->Parent = nullptr;
  F->Root = L;
  DiagEngine Diags;
  EXPECT_FALSE(verify(*F, Diags));
}

TEST_F(IrTest, ModuleLookup) {
  EXPECT_EQ(M.lookup("test"), F);
  EXPECT_EQ(M.lookup("absent"), nullptr);
  M.Specials.push_back(sym("*x*"));
  EXPECT_TRUE(M.isSpecial(sym("*x*")));
  EXPECT_FALSE(M.isSpecial(sym("y")));
}

} // namespace
