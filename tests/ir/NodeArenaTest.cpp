//===- tests/ir/NodeArenaTest.cpp -----------------------------------------===//
//
// The bump arena backing IR nodes: allocation/destruction bookkeeping,
// move semantics, the process-wide heap-fallback switch the throughput
// bench flips, and Function::reclaim compaction preserving tree identity.
//
//===----------------------------------------------------------------------===//

#include "frontend/Convert.h"
#include "ir/BackTranslate.h"
#include "ir/Ir.h"
#include "sexpr/Printer.h"
#include "support/Arena.h"

#include "gtest/gtest.h"

using namespace s1lisp;

namespace {

struct Counting {
  static int Live;
  std::vector<int> Payload{1, 2, 3}; // non-trivial dtor
  Counting() { ++Live; }
  ~Counting() { --Live; }
};
int Counting::Live = 0;

TEST(NodeArena, CreatesAndDestroysInBulk) {
  {
    NodeArena A;
    for (int I = 0; I < 100; ++I)
      A.create<Counting>();
    EXPECT_EQ(Counting::Live, 100);
    EXPECT_EQ(A.size(), 100u);
    EXPECT_GE(A.allocatedBytes(), 100 * sizeof(Counting));
  }
  EXPECT_EQ(Counting::Live, 0) << "arena death must run destructors";
}

TEST(NodeArena, MoveTransfersOwnership) {
  NodeArena A;
  Counting *P = A.create<Counting>();
  EXPECT_EQ(P->Payload.size(), 3u);
  NodeArena B(std::move(A));
  EXPECT_EQ(B.size(), 1u);
  EXPECT_EQ(A.size(), 0u);
  EXPECT_EQ(Counting::Live, 1) << "move must not destroy";
  NodeArena C;
  C.create<Counting>();
  C = std::move(B);
  EXPECT_EQ(Counting::Live, 1) << "move-assign destroys the old contents";
  EXPECT_EQ(C.size(), 1u);
}

TEST(NodeArena, SpansChunkBoundaries) {
  NodeArena A;
  struct Big {
    char Bytes[10000];
  };
  std::vector<Big *> Ptrs;
  for (int I = 0; I < 20; ++I) // 200 KB, several 64 KB chunks
    Ptrs.push_back(A.create<Big>());
  for (Big *P : Ptrs) {
    P->Bytes[0] = 'x'; // every pointer stays valid as chunks grow
    P->Bytes[sizeof(P->Bytes) - 1] = 'y';
  }
  EXPECT_EQ(A.size(), 20u);
}

TEST(NodeArena, HeapFallbackKeepsBookkeeping) {
  ASSERT_TRUE(NodeArena::bumpEnabled());
  NodeArena::setBumpEnabled(false);
  {
    NodeArena A;
    for (int I = 0; I < 10; ++I)
      A.create<Counting>();
    EXPECT_EQ(Counting::Live, 10);
    EXPECT_EQ(A.size(), 10u);
    EXPECT_GE(A.allocatedBytes(), 10 * sizeof(Counting));
  }
  EXPECT_EQ(Counting::Live, 0);
  NodeArena::setBumpEnabled(true);
}

TEST(NodeArena, ReclaimPreservesFunction) {
  // reclaim() copies the live tree into a fresh arena and drops the old
  // one; the function must read back identically and still verify.
  ir::Module M;
  DiagEngine Diags;
  ASSERT_TRUE(frontend::convertSource(
      M,
      "(defun f (a b)\n"
      "  (let ((x (+ a b)) (y (* a 2)))\n"
      "    (if (> x y) (cons x (list y \"big\")) (do ((i 0 (+ i 1)))\n"
      "        ((> i x) y) (setq y (+ y i))))))",
      Diags))
      << Diags.str();
  ir::Function &F = *M.lookup("f");
  std::string Before = sexpr::toString(ir::backTranslateFunction(F));
  size_t SizeBefore = ir::treeSize(F.Root);
  size_t ObjectsBefore = F.arenaObjects();

  size_t Freed = F.reclaim();
  (void)Freed;

  EXPECT_EQ(sexpr::toString(ir::backTranslateFunction(F)), Before);
  EXPECT_EQ(ir::treeSize(F.Root), SizeBefore);
  EXPECT_LE(F.arenaObjects(), ObjectsBefore);
  DiagEngine VerifyDiags;
  EXPECT_TRUE(ir::verify(F, VerifyDiags)) << VerifyDiags.str();
}

} // namespace
