//===- tests/frontend/ConvertTest.cpp - Preliminary conversion tests ------===//
//
// Checks §4.1: conversion to the basic construct set, with back-translation
// as the observable (the paper's own debugging technique).
//
//===----------------------------------------------------------------------===//

#include "frontend/Convert.h"
#include "interp/Interp.h"
#include "ir/BackTranslate.h"
#include "sexpr/Printer.h"
#include "sexpr/Reader.h"

#include <gtest/gtest.h>

using namespace s1lisp;
using namespace s1lisp::ir;

namespace {

class ConvertTest : public ::testing::Test {
protected:
  Module M;

  /// Converts "(defun t0 () <expr>)" and back-translates the body flat.
  std::string convertExpr(const std::string &Expr) {
    Function *F = frontend::convertDefun(M, "(defun t0 () " + Expr + ")");
    return sexpr::toString(backTranslate(*F, F->Root->Body));
  }

  Function *defun(const std::string &Src) { return frontend::convertDefun(M, Src); }

  bool fails(const std::string &Src) {
    DiagEngine Diags;
    return !frontend::convertSource(M, Src, Diags);
  }
};

TEST_F(ConvertTest, ConstantsAreQuotedInternally) {
  Function *F = defun("(defun t0 () 42)");
  auto *Lit = dyn_cast<LiteralNode>(F->Root->Body);
  ASSERT_NE(Lit, nullptr);
  EXPECT_EQ(Lit->Datum.fixnum(), 42);
  // Back-translation omits quote around numbers (§4.1) unless asked.
  EXPECT_EQ(convertExpr("42"), "42");
  BackTranslateOptions Quoted;
  Quoted.QuoteNumbers = true;
  EXPECT_EQ(sexpr::toString(backTranslate(*F, F->Root->Body, Quoted)),
            "(quote 42)");
}

TEST_F(ConvertTest, QuoteAndSymbols) {
  EXPECT_EQ(convertExpr("'(a b)"), "(quote (a b))");
  EXPECT_EQ(convertExpr("'sym"), "(quote sym)");
  EXPECT_EQ(convertExpr("t"), "(quote t)");
  EXPECT_EQ(convertExpr("nil"), "(quote nil)");
}

TEST_F(ConvertTest, IfTwoAndThreeArms) {
  EXPECT_EQ(convertExpr("(if (f) 1 2)"), "(if (f) 1 2)");
  EXPECT_EQ(convertExpr("(if (f) 1)"), "(if (f) 1 (quote nil))");
}

TEST_F(ConvertTest, LetBecomesLambdaCall) {
  EXPECT_EQ(convertExpr("(let ((x 1) (y 2)) (g x y))"),
            "((lambda (x y) (g x y)) 1 2)");
  EXPECT_EQ(convertExpr("(let (x) x)"), "((lambda (x) x) (quote nil))");
}

TEST_F(ConvertTest, LetStarNests) {
  EXPECT_EQ(convertExpr("(let* ((x 1) (y x)) y)"),
            "((lambda (x) ((lambda (y) y) x)) 1)");
}

TEST_F(ConvertTest, LetInitsSeeOuterScope) {
  // (let ((x 1)) (let ((x 2) (y x)) ...)) — y's init is the OUTER x.
  Function *F = defun("(defun t0 (x) (let ((x 2) (y x)) y))");
  auto *OuterCall = cast<CallNode>(F->Root->Body);
  auto *InnerLambda = cast<LambdaNode>(OuterCall->CalleeExpr);
  Variable *OuterX = F->Root->Required[0];
  Variable *InnerX = InnerLambda->Required[0];
  EXPECT_NE(OuterX, InnerX) << "alpha renaming keeps them distinct";
  auto *YInit = cast<VarRefNode>(OuterCall->Args[1]);
  EXPECT_EQ(YInit->Var, OuterX);
}

TEST_F(ConvertTest, CondExpandsToIfs) {
  EXPECT_EQ(convertExpr("(cond ((f) 1) (t 2))"), "(if (f) 1 2)");
  EXPECT_EQ(convertExpr("(cond ((f) 1))"), "(if (f) 1 (quote nil))");
  EXPECT_EQ(convertExpr("(cond)"), "(quote nil)");
  // Body-less clause returns the test value via the or-trick.
  EXPECT_EQ(convertExpr("(cond ((f)) (t 2))"),
            "((lambda (v f) (if v v (f))) (f) (lambda () 2))");
}

TEST_F(ConvertTest, AndOrExpansion) {
  EXPECT_EQ(convertExpr("(and)"), "(quote t)");
  EXPECT_EQ(convertExpr("(and a b)"), "(if a b (quote nil))");
  EXPECT_EQ(convertExpr("(or)"), "(quote nil)");
  EXPECT_EQ(convertExpr("(or a)"), "a");
  // The paper's §5 expansion of (or b c).
  EXPECT_EQ(convertExpr("(or b c)"),
            "((lambda (v f) (if v v (f))) b (lambda () c))");
}

TEST_F(ConvertTest, WhenUnless) {
  EXPECT_EQ(convertExpr("(when p 1 2)"), "(if p (progn 1 2) (quote nil))");
  EXPECT_EQ(convertExpr("(unless p 1)"), "(if p (quote nil) 1)");
}

TEST_F(ConvertTest, SetqChains) {
  Function *F = defun("(defun t0 (a b) (setq a 1 b 2))");
  EXPECT_EQ(sexpr::toString(backTranslate(*F, F->Root->Body)),
            "(progn (setq a 1) (setq b 2))");
  EXPECT_TRUE(F->Root->Required[0]->Written);
}

TEST_F(ConvertTest, OptionalParametersWithDefaults) {
  // The paper's testfn header: (a &optional (b 3.0) (c a)).
  Function *F = defun("(defun testfn (a &optional (b 3.0) (c a)) c)");
  ASSERT_EQ(F->Root->Required.size(), 1u);
  ASSERT_EQ(F->Root->Optionals.size(), 2u);
  EXPECT_EQ(F->Root->Rest, nullptr);
  auto *BDefault = cast<LiteralNode>(F->Root->Optionals[0].Default);
  EXPECT_DOUBLE_EQ(BDefault->Datum.flonum(), 3.0);
  // c's default refers to parameter a.
  auto *CDefault = cast<VarRefNode>(F->Root->Optionals[1].Default);
  EXPECT_EQ(CDefault->Var, F->Root->Required[0]);
  EXPECT_TRUE(F->Root->acceptsArgCount(1));
  EXPECT_TRUE(F->Root->acceptsArgCount(3));
  EXPECT_FALSE(F->Root->acceptsArgCount(0));
  EXPECT_FALSE(F->Root->acceptsArgCount(4));
}

TEST_F(ConvertTest, RestParameter) {
  Function *F = defun("(defun t1 (a &rest more) more)");
  ASSERT_NE(F->Root->Rest, nullptr);
  EXPECT_TRUE(F->Root->acceptsArgCount(9));
}

TEST_F(ConvertTest, BackTranslateLambdaList) {
  Function *F = defun("(defun testfn2 (a &optional (b 3.0) (c a) d &rest r) a)");
  EXPECT_EQ(sexpr::toString(backTranslateFunction(*F)),
            "(defun testfn2 (a &optional (b 3.0) (c a) d &rest r) a)");
}

TEST_F(ConvertTest, PrognOfOneUnwraps) {
  EXPECT_EQ(convertExpr("(progn (f))"), "(f)");
  EXPECT_EQ(convertExpr("(progn)"), "(quote nil)");
}

TEST_F(ConvertTest, ProgTranslation) {
  // prog => let of a progbody (§4.1's description of prog).
  Function *F = defun("(defun t2 (n) (prog (acc) loop (when (zerop n) (return acc))"
                      " (setq acc (cons n acc)) (setq n (1- n)) (go loop)))");
  auto *Call = cast<CallNode>(F->Root->Body);
  ASSERT_TRUE(Call->isLetLike());
  auto *L = cast<LambdaNode>(Call->CalleeExpr);
  auto *PB = dyn_cast<ProgBodyNode>(L->Body);
  ASSERT_NE(PB, nullptr);
  EXPECT_TRUE(PB->hasTag(M.Syms.intern("loop")));
  // The go and return nodes point back at this progbody.
  bool SawGo = false, SawReturn = false;
  forEachNode(static_cast<Node *>(PB), [&](Node *N) {
    if (auto *G = dyn_cast<GoNode>(N)) {
      SawGo = true;
      EXPECT_EQ(G->Target, PB);
    }
    if (auto *R = dyn_cast<ReturnNode>(N)) {
      SawReturn = true;
      EXPECT_EQ(R->Target, PB);
    }
  });
  EXPECT_TRUE(SawGo);
  EXPECT_TRUE(SawReturn);
}

TEST_F(ConvertTest, CaseBecomesCaseq) {
  Function *F = defun("(defun t3 (x) (case x ((1 2) 'small) (9 'nine) (t 'other)))");
  auto *C = dyn_cast<CaseqNode>(F->Root->Body);
  ASSERT_NE(C, nullptr);
  ASSERT_EQ(C->Clauses.size(), 2u);
  EXPECT_EQ(C->Clauses[0].Keys.size(), 2u);
  EXPECT_EQ(C->Clauses[1].Keys.size(), 1u);
  auto *D = dyn_cast<LiteralNode>(C->Default);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Datum.symbol()->name(), "other");
}

TEST_F(ConvertTest, CatchBecomesCatcher) {
  EXPECT_EQ(convertExpr("(catch 'done (f) (g))"),
            "(catcher (quote done) (progn (f) (g)))");
}

TEST_F(ConvertTest, SpecialsViaDefvar) {
  DiagEngine Diags;
  ASSERT_TRUE(frontend::convertSource(
      M, "(defvar *depth*) (defun probe () *depth*)", Diags));
  Function *F = M.lookup("probe");
  ASSERT_NE(F, nullptr);
  auto *Ref = cast<VarRefNode>(F->Root->Body);
  EXPECT_TRUE(Ref->Var->isSpecial());
}

TEST_F(ConvertTest, SpecialsViaDeclare) {
  Function *F = defun("(defun t4 (x) (declare (special s)) (g s x))");
  auto *Call = cast<CallNode>(F->Root->Body);
  EXPECT_TRUE(cast<VarRefNode>(Call->Args[0])->Var->isSpecial());
  EXPECT_FALSE(cast<VarRefNode>(Call->Args[1])->Var->isSpecial());
}

TEST_F(ConvertTest, SpecialBoundAsParameter) {
  DiagEngine Diags;
  ASSERT_TRUE(frontend::convertSource(
      M, "(defvar *level*) (defun go-deeper (*level*) (probe2))", Diags));
  Function *F = M.lookup("go-deeper");
  EXPECT_TRUE(F->Root->Required[0]->isSpecial());
}

TEST_F(ConvertTest, DoLoopExpands) {
  Function *F = defun("(defun iota-sum (n)"
                      " (do ((i 0 (1+ i)) (acc 0 (+ acc i)))"
                      "     ((= i n) acc)))");
  // Expansion shape: a let-lambda whose body is a progbody with a go.
  auto *Call = cast<CallNode>(F->Root->Body);
  ASSERT_TRUE(Call->isLetLike());
  bool SawGo = false;
  forEachNode(F->Root->Body, [&SawGo](Node *N) { SawGo |= N->kind() == NodeKind::Go; });
  EXPECT_TRUE(SawGo);
}

TEST_F(ConvertTest, PaperQuadraticBackTranslation) {
  // §4.1's worked example: the quadratic defun back-translates into the
  // lambda/if nest the paper prints.
  Function *F = defun(
      "(defun quadratic (a b c)"
      "  (let ((d (- (* b b) (* 4.0 a c))))"
      "    (cond ((< d 0) '())"
      "          ((= d 0) (list (/ (- b) (* 2.0 a))))"
      "          (t (let ((2a (* 2.0 a)) (sd (sqrt d)))"
      "               (list (/ (+ (- b) sd) 2a)"
      "                     (/ (- (- b) sd) 2a)))))))");
  std::string Out = sexpr::toString(backTranslate(*F, F->Root->Body));
  EXPECT_EQ(Out,
            "((lambda (d) (if (< d 0) (quote nil) (if (= d 0) "
            "(list (/ (- b) (* 2.0 a))) "
            "((lambda (2a sd) (list (/ (+ (- b) sd) 2a) (/ (- (- b) sd) 2a))) "
            "(* 2.0 a) (sqrt d))))) (- (* b b) (* 4.0 a c)))");
}

TEST_F(ConvertTest, Errors) {
  EXPECT_TRUE(fails("(defun)"));
  EXPECT_TRUE(fails("(defun f)"));
  EXPECT_TRUE(fails("(defun f (x) (if))"));
  EXPECT_TRUE(fails("(defun f (x) (go nowhere))"));
  EXPECT_TRUE(fails("(defun f (x) (return 1))"));
  EXPECT_TRUE(fails("(defun f (x) (quote a b))"));
  EXPECT_TRUE(fails("(defun f (x &rest) x)"));
  EXPECT_TRUE(fails("(defun f (&optional o x) x)") == false)
      << "&optional then plain symbol is legal";
  EXPECT_TRUE(fails("(defun f (x) (car 1 2))")) << "prim arity checked";
  EXPECT_TRUE(fails("(not-defun f (x) x)"));
  EXPECT_TRUE(fails("(defun f (x) ((g) 1))")) << "computed callee needs funcall";
}

//===----------------------------------------------------------------------===//
// Lambda-list edge cases: defaulting chains and &rest boundaries, checked
// both structurally and behaviorally (through the interpreter, the
// semantic oracle the fuzzer also trusts).
//===----------------------------------------------------------------------===//

TEST_F(ConvertTest, OptionalDefaultMayReferenceEarlierOptional) {
  // Defaults evaluate left to right, each in a scope that already holds
  // the parameters before it — including earlier &optional ones.
  Function *F = defun("(defun t2 (a &optional (b (+ a 1)) (c (* b 2))) c)");
  ASSERT_EQ(F->Root->Optionals.size(), 2u);
  // c's default (* b 2) must bind to the optional parameter b itself.
  auto *CDefault = cast<CallNode>(F->Root->Optionals[1].Default);
  auto *BRef = cast<VarRefNode>(CDefault->Args[0]);
  EXPECT_EQ(BRef->Var, F->Root->Optionals[0].Var);
}

TEST_F(ConvertTest, OptionalDefaultChainEvaluatesLeftToRight) {
  ir::Module M2;
  DiagEngine Diags;
  ASSERT_TRUE(frontend::convertSource(
      M2, "(defun f (a &optional (b (+ a 1)) (c (* b 2))) (+ a (+ b c)))",
      Diags))
      << Diags.str();
  interp::Interpreter I(M2);
  auto run = [&](std::vector<int64_t> Args) {
    std::vector<interp::RtValue> Rt;
    for (int64_t V : Args)
      Rt.push_back(interp::RtValue::data(sexpr::Value::fixnum(V)));
    auto R = I.call("f", Rt);
    EXPECT_TRUE(R.Ok) << R.Error;
    return R.Value.str();
  };
  EXPECT_EQ(run({10}), "43");        // b=11, c=22
  EXPECT_EQ(run({10, 4}), "22");     // b=4 supplied, c=8 from the chain
  EXPECT_EQ(run({10, 4, 100}), "114"); // everything supplied
}

TEST_F(ConvertTest, RestWithZeroExtrasIsEmptyList) {
  ir::Module M2;
  DiagEngine Diags;
  ASSERT_TRUE(frontend::convertSource(
      M2, "(defun f (a &rest r) (if (null r) (quote empty) (length r)))",
      Diags))
      << Diags.str();
  interp::Interpreter I(M2);
  auto run = [&](std::vector<int64_t> Args) {
    std::vector<interp::RtValue> Rt;
    for (int64_t V : Args)
      Rt.push_back(interp::RtValue::data(sexpr::Value::fixnum(V)));
    auto R = I.call("f", Rt);
    EXPECT_TRUE(R.Ok) << R.Error;
    return R.Value.str();
  };
  EXPECT_EQ(run({1}), "empty");
  EXPECT_EQ(run({1, 2}), "1");
  EXPECT_EQ(run({1, 2, 3, 4}), "3");
}

TEST_F(ConvertTest, UnsuppliedOptionalFallsBackPerCallSite) {
  // The same function called at different arities re-evaluates only the
  // defaults for the parameters actually missing at that call.
  ir::Module M2;
  DiagEngine Diags;
  ASSERT_TRUE(frontend::convertSource(
      M2,
      "(defun pad (x &optional (y x) (z (+ x y))) (list x y z))\n"
      "(defun use1 () (pad 2))\n"
      "(defun use2 () (pad 2 5))\n"
      "(defun use3 () (pad 2 5 9))",
      Diags))
      << Diags.str();
  interp::Interpreter I(M2);
  auto run = [&](const char *Fn) {
    auto R = I.call(Fn, {});
    EXPECT_TRUE(R.Ok) << R.Error;
    return R.Value.str();
  };
  EXPECT_EQ(run("use1"), "(2 2 4)");
  EXPECT_EQ(run("use2"), "(2 5 7)");
  EXPECT_EQ(run("use3"), "(2 5 9)");
}

TEST_F(ConvertTest, VerifierAcceptsAllConversions) {
  const char *Sources[] = {
      "(defun a (x) (+ x 1))",
      "(defun b (x) (let* ((y x) (z (* y y))) (cons y z)))",
      "(defun c (n) (dotimes (i n (list i)) (f i)))",
      "(defun d (l) (dolist (e l) (g e)))",
      "(defun e (x) (and (or x (f)) (unless x 1)))",
      "(defun g2 (x) (prog1 (f x) (h x) (h2 x)))",
      "(defun h3 (x) (prog2 (f x) (g x) (h x)))",
  };
  for (const char *Src : Sources) {
    Function *F = defun(Src);
    DiagEngine Diags;
    EXPECT_TRUE(verify(*F, Diags)) << Src << "\n" << Diags.str();
  }
}

} // namespace
