//===- tests/service/CompileCacheTest.cpp ---------------------------------===//
//
// The content-addressed compilation cache's contract: alpha-renamed
// sources hit (the memo key hashes structure, not spellings), semantic
// changes and callee-index shifts miss, every ablation configuration owns
// a distinct options fingerprint (and Jobs none at all), LRU eviction
// honors the byte budget, and — the load-bearing property — a warm cache
// links programs bit-identical to a fresh compile, counters and remarks
// included.
//
//===----------------------------------------------------------------------===//

#include "service/CompileCache.h"

#include "driver/Ablation.h"
#include "driver/Compiler.h"
#include "fuzz/Generator.h"
#include "stats/Stats.h"

#include "gtest/gtest.h"

#include <map>
#include <set>

using namespace s1lisp;
using namespace s1lisp::service;

namespace {

driver::CompileOutcome compileWith(ir::Module &M, const std::string &Source,
                                   CompileCache *Cache,
                                   stats::RemarkStream *Remarks = nullptr) {
  driver::CompilerOptions Opts;
  Opts.Cse = true;
  return driver::compileSource(M, Source, Opts, Remarks, Cache);
}

/// Per-request counter view the service reports: everything the compile
/// recorded except the cache's own service.* traffic (hit and miss
/// requests differ there by design).
std::vector<stats::TallyDelta> compilerDeltas(const stats::LocalTally &T) {
  std::vector<stats::TallyDelta> Out;
  for (const stats::TallyDelta &D : T.deltas())
    if (D.Name.rfind("service.", 0) != 0)
      Out.push_back(D);
  return Out;
}

/// SymbolAddr keys are per-module Symbol pointers; compare by name.
std::map<std::string, uint64_t> symbolAddrsByName(const s1::Program &P) {
  std::map<std::string, uint64_t> Out;
  for (const auto &[Sym, Addr] : P.SymbolAddr)
    Out[Sym->name()] = Addr;
  return Out;
}

/// A synthetic cache entry of roughly \p Words * 8 retained bytes, for
/// budget tests that shouldn't depend on real codegen sizes.
std::shared_ptr<driver::MemoizedFunction> entryOfWords(size_t Words) {
  auto MF = std::make_shared<driver::MemoizedFunction>();
  MF->Unit.Ok = true;
  MF->Unit.Static.assign(Words, 0);
  return MF;
}

TEST(CompileCache, AlphaRenamedSourceHits) {
  const std::string A = "(defun add3 (x y z) (+ x (+ y z)))\n"
                        "(defun fut (n) (add3 n n n))\n";
  // Same functions with every local consistently renamed.
  const std::string B = "(defun add3 (u v w) (+ u (+ v w)))\n"
                        "(defun fut (m) (add3 m m m))\n";

  CompileCache Cache;
  ir::Module MA, MB;
  driver::CompileOutcome RA = compileWith(MA, A, &Cache);
  ASSERT_TRUE(RA.Ok) << RA.Error;
  EXPECT_EQ(RA.MemoHits, 0u);
  EXPECT_EQ(RA.MemoMisses, 2u);

  driver::CompileOutcome RB = compileWith(MB, B, &Cache);
  ASSERT_TRUE(RB.Ok) << RB.Error;
  EXPECT_EQ(RB.MemoHits, 2u);
  EXPECT_EQ(RB.MemoMisses, 0u);

  // The renamed module linked the cached units: programs match.
  EXPECT_EQ(driver::listing(RA.Program), driver::listing(RB.Program));
}

TEST(CompileCache, SemanticChangeMisses) {
  CompileCache Cache;
  ir::Module MA, MB;
  driver::CompileOutcome RA = compileWith(
      MA, "(defun f (x) (+ x 1))\n(defun fut (n) (f n))\n", &Cache);
  ASSERT_TRUE(RA.Ok) << RA.Error;

  // f's body changes (a different literal); fut is untouched.
  driver::CompileOutcome RB = compileWith(
      MB, "(defun f (x) (+ x 2))\n(defun fut (n) (f n))\n", &Cache);
  ASSERT_TRUE(RB.Ok) << RB.Error;
  EXPECT_EQ(RB.MemoHits, 1u);
  EXPECT_EQ(RB.MemoMisses, 1u);
}

TEST(CompileCache, CalleeIndexShiftMisses) {
  // g calls f; units bake the callee's module-function index into the
  // call, so the same g text in a module where f sits at a different
  // slot must not reuse the cached unit.
  CompileCache Cache;
  ir::Module MA, MB;
  driver::CompileOutcome RA = compileWith(
      MA, "(defun f () 1)\n(defun g () (f))\n", &Cache);
  ASSERT_TRUE(RA.Ok) << RA.Error;
  EXPECT_EQ(RA.MemoMisses, 2u);

  driver::CompileOutcome RB = compileWith(
      MB, "(defun h () 2)\n(defun f () 1)\n(defun g () (f))\n", &Cache);
  ASSERT_TRUE(RB.Ok) << RB.Error;
  // f references no globals, so it hits at its new slot; h is new and g's
  // callee signature shifted, so both miss.
  EXPECT_EQ(RB.MemoHits, 1u);
  EXPECT_EQ(RB.MemoMisses, 2u);
}

TEST(CompileCache, OptionsFingerprintSeparatesTheAblationMatrix) {
  std::vector<driver::AblationConfig> Matrix = driver::ablationMatrix();
  ASSERT_GT(Matrix.size(), 10u);
  std::set<uint64_t> Fingerprints;
  for (const driver::AblationConfig &C : Matrix)
    EXPECT_TRUE(
        Fingerprints.insert(driver::optionsFingerprint(C.Opts)).second)
        << "fingerprint collision at config '" << C.Name << "'";

  // Jobs is pure parallelism — output is bit-identical for any count — so
  // it must not split the cache.
  driver::CompilerOptions J1 = Matrix.front().Opts, J8 = Matrix.front().Opts;
  J1.Jobs = 1;
  J8.Jobs = 8;
  EXPECT_EQ(driver::optionsFingerprint(J1), driver::optionsFingerprint(J8));
}

TEST(CompileCache, DifferentOptionsMissEachOther) {
  const std::string Src = "(defun fut (x) (* (+ x 0) 1))\n";
  CompileCache Cache;
  ir::Module MA, MB;
  driver::CompilerOptions O2;
  driver::CompilerOptions O0;
  O0.Optimize = false;
  driver::CompileOutcome RA = driver::compileSource(MA, Src, O2, nullptr, &Cache);
  ASSERT_TRUE(RA.Ok) << RA.Error;
  driver::CompileOutcome RB = driver::compileSource(MB, Src, O0, nullptr, &Cache);
  ASSERT_TRUE(RB.Ok) << RB.Error;
  EXPECT_EQ(RB.MemoHits, 0u);
  EXPECT_EQ(RB.MemoMisses, 1u);
  EXPECT_EQ(Cache.entries(), 2u);
}

TEST(CompileCache, WarmCacheLinksBitIdenticalPrograms) {
  // A generated many-function module (closures, floats, strings) so the
  // equality below covers static pools, string tables, and lifted
  // closures, not just straight-line code.
  fuzz::GenOptions GO;
  GO.Helpers = 24;
  std::string Source = fuzz::Generator(4242, GO).generate().Source;

  // Fresh: no memo anywhere near the compile.
  ir::Module MFresh;
  stats::RemarkStream FreshRemarks;
  stats::LocalTally FreshTally;
  driver::CompileOutcome Fresh = [&] {
    stats::TallyScope Scope(FreshTally);
    return compileWith(MFresh, Source, nullptr, &FreshRemarks);
  }();
  ASSERT_TRUE(Fresh.Ok) << Fresh.Error;

  // Prime the cache, then compile the same source again from it.
  CompileCache Cache;
  ir::Module MPrime;
  driver::CompileOutcome Prime = compileWith(MPrime, Source, &Cache);
  ASSERT_TRUE(Prime.Ok) << Prime.Error;
  EXPECT_EQ(Prime.MemoHits, 0u);

  ir::Module MWarm;
  stats::RemarkStream WarmRemarks;
  stats::LocalTally WarmTally;
  driver::CompileOutcome Warm = [&] {
    stats::TallyScope Scope(WarmTally);
    return compileWith(MWarm, Source, &Cache, &WarmRemarks);
  }();
  ASSERT_TRUE(Warm.Ok) << Warm.Error;
  EXPECT_EQ(Warm.MemoMisses, 0u);
  EXPECT_EQ(Warm.MemoHits, Prime.MemoMisses);

  // Bit-identity: program text, static image, symbol/string directories.
  EXPECT_EQ(driver::listing(Fresh.Program), driver::listing(Warm.Program));
  EXPECT_EQ(Fresh.Program.Static, Warm.Program.Static);
  EXPECT_EQ(symbolAddrsByName(Fresh.Program), symbolAddrsByName(Warm.Program));
  EXPECT_EQ(Fresh.Program.StringAddr, Warm.Program.StringAddr);
  ASSERT_EQ(Fresh.Program.Functions.size(), Warm.Program.Functions.size());
  for (size_t I = 0; I < Fresh.Program.Functions.size(); ++I) {
    const s1::AsmFunction &A = Fresh.Program.Functions[I];
    const s1::AsmFunction &B = Warm.Program.Functions[I];
    EXPECT_EQ(A.Name, B.Name) << "function " << I;
    EXPECT_EQ(A.FrameSize, B.FrameSize) << A.Name;
    EXPECT_EQ(A.MinArgs, B.MinArgs) << A.Name;
    EXPECT_EQ(A.MaxArgs, B.MaxArgs) << A.Name;
    EXPECT_EQ(A.HasRest, B.HasRest) << A.Name;
  }

  // The hit replayed the recorded remarks and counter deltas: transcripts
  // and (service.*-filtered) stats match a fresh compile exactly.
  EXPECT_EQ(FreshRemarks.Remarks, WarmRemarks.Remarks);
  EXPECT_EQ(stats::tallyDeltasJson(compilerDeltas(FreshTally)),
            stats::tallyDeltasJson(compilerDeltas(WarmTally)));
}

TEST(CompileCache, CrossModuleReuseOfSharedHelpers) {
  // Two different programs sharing a helper library: the second compile
  // reuses the helpers and only compiles its own entry.
  const std::string Lib = "(defun sq (x) (* x x))\n"
                          "(defun cube (x) (* x (sq x)))\n";
  CompileCache Cache;
  ir::Module MA, MB;
  driver::CompileOutcome RA =
      compileWith(MA, Lib + "(defun fut (n) (sq n))\n", &Cache);
  ASSERT_TRUE(RA.Ok) << RA.Error;
  EXPECT_EQ(RA.MemoMisses, 3u);

  driver::CompileOutcome RB =
      compileWith(MB, Lib + "(defun fut (n) (cube (+ n 1)))\n", &Cache);
  ASSERT_TRUE(RB.Ok) << RB.Error;
  EXPECT_EQ(RB.MemoHits, 2u);
  EXPECT_EQ(RB.MemoMisses, 1u);
}

TEST(CompileCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  auto Probe = entryOfWords(1000);
  const size_t EntryBytes = Probe->byteSize();
  ASSERT_GT(EntryBytes, 0u);

  CompileCache Cache(3 * EntryBytes + EntryBytes / 2);
  for (uint64_t Key = 1; Key <= 3; ++Key)
    Cache.insert(Key, entryOfWords(1000));
  EXPECT_EQ(Cache.entries(), 3u);
  EXPECT_EQ(Cache.evictions(), 0u);

  // Touch key 1 so key 2 becomes the LRU victim.
  EXPECT_NE(Cache.lookup(1), nullptr);
  Cache.insert(4, entryOfWords(1000));
  EXPECT_EQ(Cache.entries(), 3u);
  EXPECT_EQ(Cache.evictions(), 1u);
  EXPECT_LE(Cache.bytes(), Cache.maxBytes());
  EXPECT_EQ(Cache.lookup(2), nullptr);
  EXPECT_NE(Cache.lookup(1), nullptr);
  EXPECT_NE(Cache.lookup(4), nullptr);
}

TEST(CompileCache, ShrinkingTheBudgetEvictsImmediately) {
  CompileCache Cache;
  for (uint64_t Key = 1; Key <= 8; ++Key)
    Cache.insert(Key, entryOfWords(1000));
  ASSERT_EQ(Cache.entries(), 8u);

  Cache.setMaxBytes(2 * entryOfWords(1000)->byteSize() + 16);
  EXPECT_LE(Cache.entries(), 2u);
  EXPECT_LE(Cache.bytes(), Cache.maxBytes());
  EXPECT_GE(Cache.evictions(), 6u);
}

TEST(CompileCache, OversizedEntryIsNotStored) {
  auto Big = entryOfWords(10000);
  CompileCache Cache(Big->byteSize() / 2);
  Cache.insert(7, Big);
  EXPECT_EQ(Cache.entries(), 0u);
  EXPECT_EQ(Cache.lookup(7), nullptr);
}

TEST(CompileCache, ClearDropsEverything) {
  CompileCache Cache;
  Cache.insert(1, entryOfWords(10));
  Cache.insert(2, entryOfWords(10));
  ASSERT_EQ(Cache.entries(), 2u);
  Cache.clear();
  EXPECT_EQ(Cache.entries(), 0u);
  EXPECT_EQ(Cache.bytes(), 0u);
  EXPECT_EQ(Cache.lookup(1), nullptr);
}

} // namespace
