//===- tests/service/ProtocolTest.cpp -------------------------------------===//
//
// The wire format's contract: encode/decode round-trips any field content
// (binary bytes, empty values, duplicate keys, order preserved), malformed
// payloads are rejected rather than misparsed, and frame I/O over a real
// descriptor distinguishes a clean EOF from a truncated stream.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "gtest/gtest.h"

#include <unistd.h>

using namespace s1lisp;
using namespace s1lisp::service;

namespace {

TEST(Protocol, RoundTripPreservesFieldsInOrder) {
  Message M;
  M.set("cmd", "compile");
  M.set("source", "(defun f (x) \"str with \\\"quotes\\\" and\nnewlines\")");
  M.set("binary", std::string("\x00\x1f\xff\x7f", 4));
  M.set("empty", "");
  M.set("cmd", "second-value-of-duplicate-key");

  Message Out;
  ASSERT_TRUE(decodeMessage(encodeMessage(M), Out));
  ASSERT_EQ(Out.Fields.size(), M.Fields.size());
  for (size_t I = 0; I < M.Fields.size(); ++I) {
    EXPECT_EQ(Out.Fields[I].first, M.Fields[I].first) << "field " << I;
    EXPECT_EQ(Out.Fields[I].second, M.Fields[I].second) << "field " << I;
  }
}

TEST(Protocol, AccessorSemantics) {
  Message M;
  M.set("cmd", "first");
  M.set("cmd", "second");
  M.set("on", "1");
  M.set("off", "0");
  M.set("blank", "");
  M.set("word", "yes");

  // get() returns the first of a duplicate key.
  ASSERT_NE(M.get("cmd"), nullptr);
  EXPECT_EQ(*M.get("cmd"), "first");
  EXPECT_EQ(M.get("missing"), nullptr);
  EXPECT_EQ(M.getOr("missing", "dflt"), "dflt");
  EXPECT_EQ(M.getOr("on"), "1");
  EXPECT_TRUE(M.has("blank"));
  EXPECT_FALSE(M.has("missing"));

  // flag(): present, non-empty, and not "0".
  EXPECT_TRUE(M.flag("on"));
  EXPECT_TRUE(M.flag("word"));
  EXPECT_FALSE(M.flag("off"));
  EXPECT_FALSE(M.flag("blank"));
  EXPECT_FALSE(M.flag("missing"));
}

TEST(Protocol, EmptyMessageRoundTrips) {
  Message M, Out;
  std::string Payload = encodeMessage(M);
  ASSERT_TRUE(decodeMessage(Payload, Out));
  EXPECT_TRUE(Out.Fields.empty());
}

TEST(Protocol, RejectsTruncatedPayloads) {
  Message M;
  M.set("key", "value");
  M.set("another", "field");
  std::string Full = encodeMessage(M);

  // Every strict prefix is either short of the announced field count or
  // cuts a length/byte run; none may decode.
  for (size_t Len = 0; Len < Full.size(); ++Len) {
    Message Out;
    EXPECT_FALSE(decodeMessage(std::string_view(Full.data(), Len), Out))
        << "prefix of length " << Len << " decoded";
  }
}

TEST(Protocol, RejectsTrailingGarbage) {
  Message M;
  M.set("key", "value");
  std::string Payload = encodeMessage(M) + "x";
  Message Out;
  EXPECT_FALSE(decodeMessage(Payload, Out));
}

TEST(Protocol, RejectsAbsurdFieldCount) {
  // A count claiming ~4 billion fields in a 4-byte payload.
  std::string Payload = "\xff\xff\xff\xff";
  Message Out;
  EXPECT_FALSE(decodeMessage(Payload, Out));
}

TEST(Protocol, FrameIoOverPipe) {
  int Fds[2];
  ASSERT_EQ(pipe(Fds), 0);

  // Big enough for several read()s, small enough to fit the pipe buffer
  // (writeFrame would otherwise block with no reader draining it).
  Message Req;
  Req.set("cmd", "ping");
  Req.set("payload", std::string(30000, 'z'));
  ASSERT_TRUE(writeFrame(Fds[1], Req));

  Message Got;
  ASSERT_EQ(readFrame(Fds[0], Got), ReadStatus::Ok);
  EXPECT_EQ(Got.getOr("cmd"), "ping");
  EXPECT_EQ(Got.getOr("payload").size(), 30000u);

  // Peer hangs up at a frame boundary: clean EOF, not an error.
  close(Fds[1]);
  EXPECT_EQ(readFrame(Fds[0], Got), ReadStatus::Eof);
  close(Fds[0]);
}

TEST(Protocol, TruncatedFrameIsAnError) {
  int Fds[2];
  ASSERT_EQ(pipe(Fds), 0);

  // A length prefix promising 100 bytes, then only 3 before hangup.
  std::string Junk("\x00\x00\x00\x64" "abc", 7);
  ASSERT_EQ(write(Fds[1], Junk.data(), Junk.size()),
            static_cast<ssize_t>(Junk.size()));
  close(Fds[1]);

  Message Got;
  std::string Err;
  EXPECT_EQ(readFrame(Fds[0], Got, &Err), ReadStatus::Error);
  EXPECT_FALSE(Err.empty());
  close(Fds[0]);
}

TEST(Protocol, OversizedFrameLengthIsAnError) {
  int Fds[2];
  ASSERT_EQ(pipe(Fds), 0);

  // Length prefix above MaxFrameBytes: rejected before any allocation.
  std::string Junk("\xff\xff\xff\xff", 4);
  ASSERT_EQ(write(Fds[1], Junk.data(), Junk.size()),
            static_cast<ssize_t>(Junk.size()));
  close(Fds[1]);

  Message Got;
  EXPECT_EQ(readFrame(Fds[0], Got), ReadStatus::Error);
  close(Fds[0]);
}

} // namespace
