//===- tests/service/ServerTest.cpp ---------------------------------------===//
//
// The transport-independent request core: Server::handle() compiles and
// runs sources, reports memo traffic, isolates each request's counters
// from concurrent requests (the TallyScope contract), serves identical
// answers warm or cold, and fails cleanly on malformed requests.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "gtest/gtest.h"

#include <string>
#include <thread>
#include <vector>

using namespace s1lisp;
using namespace s1lisp::service;

namespace {

const char *ExptSrc = "(defun exptl (b n)\n"
                      "  (if (zerop n) 1 (* b (exptl b (1- n)))))\n"
                      "(defun fut () (exptl 2 10))\n";

const char *TriSrc = "(defun tri (n)\n"
                     "  (if (zerop n) 0 (+ n (tri (1- n)))))\n"
                     "(defun fut () (tri 100))\n";

Message compileReq(const std::string &Source) {
  Message Req;
  Req.set("cmd", "compile");
  Req.set("source", Source);
  Req.set("entry", "fut");
  return Req;
}

TEST(Server, PingAndUnknownCmd) {
  Server Srv({});
  Message Ping;
  Ping.set("cmd", "ping");
  EXPECT_EQ(Srv.handle(Ping).getOr("ok"), "1");

  Message Bogus;
  Bogus.set("cmd", "frobnicate");
  Message Resp = Srv.handle(Bogus);
  EXPECT_EQ(Resp.getOr("ok"), "0");
  EXPECT_NE(Resp.getOr("error").find("frobnicate"), std::string::npos);
  EXPECT_EQ(Srv.requestCount(), 2u);
}

TEST(Server, CompileRunAndMemoTraffic) {
  Server Srv({});
  Message Resp = Srv.handle(compileReq(ExptSrc));
  EXPECT_EQ(Resp.getOr("ok"), "1");
  EXPECT_EQ(Resp.getOr("value"), "1024");
  EXPECT_EQ(Resp.getOr("memo-hits"), "0");
  EXPECT_EQ(Resp.getOr("memo-misses"), "2");

  // The repeat is served from the cache, same value.
  Message Again = Srv.handle(compileReq(ExptSrc));
  EXPECT_EQ(Again.getOr("ok"), "1");
  EXPECT_EQ(Again.getOr("value"), "1024");
  EXPECT_EQ(Again.getOr("memo-hits"), "2");
  EXPECT_EQ(Again.getOr("memo-misses"), "0");
  EXPECT_EQ(Srv.cache().entries(), 2u);
}

TEST(Server, WarmResponsesMatchColdByteForByte) {
  Server Srv({});
  Message Req = compileReq(ExptSrc);
  Req.set("listing", "1");
  Req.set("transcript", "1");
  Req.set("remarks", "1");
  Req.set("stats", "json");

  Message Cold = Srv.handle(Req);
  ASSERT_EQ(Cold.getOr("ok"), "1");
  EXPECT_FALSE(Cold.getOr("listing").empty());
  EXPECT_FALSE(Cold.getOr("stats").empty());

  Message Warm = Srv.handle(Req);
  ASSERT_EQ(Warm.getOr("ok"), "1");
  EXPECT_EQ(Warm.getOr("memo-misses"), "0");
  for (const char *Key : {"value", "listing", "transcript", "remarks", "stats"})
    EXPECT_EQ(Cold.getOr(Key), Warm.getOr(Key)) << "field '" << Key << "'";
}

TEST(Server, InterpreterOracleRun) {
  Server Srv({});
  Message Req = compileReq(ExptSrc);
  Req.set("run", "interp");
  Message Resp = Srv.handle(Req);
  EXPECT_EQ(Resp.getOr("ok"), "1");
  EXPECT_EQ(Resp.getOr("value"), "1024");
}

TEST(Server, CacheBypassLeavesTheCacheCold) {
  Server Srv({});
  Message Req = compileReq(ExptSrc);
  Req.set("cache", "0");
  Message Resp = Srv.handle(Req);
  EXPECT_EQ(Resp.getOr("ok"), "1");
  EXPECT_EQ(Resp.getOr("value"), "1024");
  EXPECT_EQ(Resp.getOr("memo-hits"), "0");
  EXPECT_EQ(Resp.getOr("memo-misses"), "0");
  EXPECT_EQ(Srv.cache().entries(), 0u);
}

TEST(Server, CompilerOptionsChangeTheMemoKey) {
  Server Srv({});
  Message Req = compileReq(ExptSrc);
  ASSERT_EQ(Srv.handle(Req).getOr("ok"), "1");

  Message NoOpt = compileReq(ExptSrc);
  NoOpt.set("options", "-O0");
  Message Resp = Srv.handle(NoOpt);
  EXPECT_EQ(Resp.getOr("ok"), "1");
  EXPECT_EQ(Resp.getOr("value"), "1024");
  EXPECT_EQ(Resp.getOr("memo-hits"), "0");
  EXPECT_EQ(Resp.getOr("memo-misses"), "2");
}

// The per-request engine choice rides the options field through the
// shared driver flag table. An engine is an execution preference, not a
// compilation input: it is excluded from the memo fingerprint, so every
// engine shares cache entries and is served byte-identical compile
// output (listing included) and the same run value.
TEST(Server, EngineRowsShareCacheAndServeIdenticalBytes) {
  Server Srv({});
  Message Base = compileReq(ExptSrc);
  Base.set("listing", "1");

  Message Cold = Srv.handle(Base);
  ASSERT_EQ(Cold.getOr("ok"), "1");
  ASSERT_EQ(Cold.getOr("memo-misses"), "2");
  ASSERT_EQ(Cold.getOr("value"), "1024");

  for (const char *Eng :
       {"--engine=legacy", "--engine=threaded", "--engine=native"}) {
    Message Req = compileReq(ExptSrc);
    Req.set("listing", "1");
    Req.set("options", Eng);
    Message Resp = Srv.handle(Req);
    ASSERT_EQ(Resp.getOr("ok"), "1") << Eng;
    // Same fingerprint as the engine-less cold request: pure cache hits.
    EXPECT_EQ(Resp.getOr("memo-hits"), "2") << Eng;
    EXPECT_EQ(Resp.getOr("memo-misses"), "0") << Eng;
    EXPECT_EQ(Resp.getOr("listing"), Cold.getOr("listing")) << Eng;
    EXPECT_EQ(Resp.getOr("value"), Cold.getOr("value")) << Eng;
  }

  Message BadEngineOpt = compileReq(ExptSrc);
  BadEngineOpt.set("options", "--engine=abacus");
  EXPECT_EQ(Srv.handle(BadEngineOpt).getOr("ok"), "0");
}

TEST(Server, ErrorPaths) {
  Server Srv({});

  Message NoSource;
  NoSource.set("cmd", "compile");
  Message Resp = Srv.handle(NoSource);
  EXPECT_EQ(Resp.getOr("ok"), "0");
  EXPECT_NE(Resp.getOr("error").find("source"), std::string::npos);

  Message BadOpt = compileReq(ExptSrc);
  BadOpt.set("options", "--definitely-not-a-pass");
  Resp = Srv.handle(BadOpt);
  EXPECT_EQ(Resp.getOr("ok"), "0");
  EXPECT_NE(Resp.getOr("error").find("--definitely-not-a-pass"),
            std::string::npos);

  Message BadJobs = compileReq(ExptSrc);
  BadJobs.set("jobs", "zero");
  EXPECT_EQ(Srv.handle(BadJobs).getOr("ok"), "0");

  Message BadEngine = compileReq(ExptSrc);
  BadEngine.set("engine", "abacus");
  EXPECT_EQ(Srv.handle(BadEngine).getOr("ok"), "0");

  // A missing entry function compiles fine but reports a run error.
  Message BadEntry = compileReq(ExptSrc);
  BadEntry.Fields.clear();
  BadEntry.set("cmd", "compile");
  BadEntry.set("source", ExptSrc);
  BadEntry.set("entry", "nope");
  Resp = Srv.handle(BadEntry);
  EXPECT_EQ(Resp.getOr("ok"), "1");
  EXPECT_FALSE(Resp.has("value"));
  EXPECT_NE(Resp.getOr("run-error").find("nope"), std::string::npos);

  Message BadSyntax;
  BadSyntax.set("cmd", "compile");
  BadSyntax.set("source", "(defun oops (x");
  EXPECT_EQ(Srv.handle(BadSyntax).getOr("ok"), "0");
}

TEST(Server, StatsCmdReportsCacheAndTraffic) {
  Server Srv({});
  ASSERT_EQ(Srv.handle(compileReq(ExptSrc)).getOr("ok"), "1");

  Message Req;
  Req.set("cmd", "stats");
  Message Resp = Srv.handle(Req);
  EXPECT_EQ(Resp.getOr("ok"), "1");
  EXPECT_EQ(Resp.getOr("cache-entries"), "2");
  EXPECT_EQ(Resp.getOr("cache-misses"), "2");
  EXPECT_EQ(Resp.getOr("requests"), "1"); // count precedes this request
  EXPECT_TRUE(Resp.has("stats"));
}

TEST(Server, ShutdownCmdAcknowledges) {
  Server Srv({});
  Message Req;
  Req.set("cmd", "shutdown");
  EXPECT_EQ(Srv.handle(Req).getOr("ok"), "1");
}

// The satellite regression: two clients interleaving different workloads
// must each see exactly the counters a solo run of their request reports
// — no bleed-through between concurrently executing requests.
TEST(Server, InterleavedRequestsKeepStatsIsolated) {
  Message ReqA = compileReq(ExptSrc);
  ReqA.set("stats", "json");
  Message ReqB = compileReq(TriSrc);
  ReqB.set("stats", "json");

  // Solo baselines from private servers.
  std::string SoloA, SoloB, ValueA, ValueB;
  {
    Server Solo({});
    Message R = Solo.handle(ReqA);
    ASSERT_EQ(R.getOr("ok"), "1");
    SoloA = R.getOr("stats");
    ValueA = R.getOr("value");
  }
  {
    Server Solo({});
    Message R = Solo.handle(ReqB);
    ASSERT_EQ(R.getOr("ok"), "1");
    SoloB = R.getOr("stats");
    ValueB = R.getOr("value");
  }
  ASSERT_FALSE(SoloA.empty());
  ASSERT_NE(SoloA, SoloB) << "workloads too similar to detect bleed-through";

  Server Shared({});
  constexpr int Iterations = 25;
  std::vector<std::string> BadA, BadB;
  std::thread ThreadA([&] {
    for (int I = 0; I < Iterations; ++I) {
      Message R = Shared.handle(ReqA);
      if (R.getOr("stats") != SoloA || R.getOr("value") != ValueA)
        BadA.push_back(R.getOr("stats"));
    }
  });
  std::thread ThreadB([&] {
    for (int I = 0; I < Iterations; ++I) {
      Message R = Shared.handle(ReqB);
      if (R.getOr("stats") != SoloB || R.getOr("value") != ValueB)
        BadB.push_back(R.getOr("stats"));
    }
  });
  ThreadA.join();
  ThreadB.join();

  EXPECT_TRUE(BadA.empty()) << BadA.size() << " polluted responses, first:\n"
                            << BadA.front() << "\nexpected:\n" << SoloA;
  EXPECT_TRUE(BadB.empty()) << BadB.size() << " polluted responses, first:\n"
                            << BadB.front() << "\nexpected:\n" << SoloB;
  EXPECT_EQ(Shared.requestCount(), 2u * Iterations);
}

} // namespace
