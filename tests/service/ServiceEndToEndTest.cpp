//===- tests/service/ServiceEndToEndTest.cpp ------------------------------===//
//
// The whole service stack over a real unix socket: fork/exec the s1lispd
// binary, speak the protocol through service::Client, drive the s1lispc
// --server passthrough against the same daemon, and shut it down cleanly.
// Paths to the tools come from the build (S1LISPD_PATH / S1LISPC_PATH).
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Protocol.h"

#include "gtest/gtest.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/wait.h>
#include <unistd.h>

using namespace s1lisp;
using namespace s1lisp::service;

namespace {

/// Runs one daemon for the whole suite: exec'd in SetUp, shut down over
/// the protocol in TearDown (SIGKILL only as a last resort).
class ServiceEndToEnd : public ::testing::Test {
protected:
  void SetUp() override {
    Socket = "/tmp/s1lispd-test-" + std::to_string(getpid()) + ".sock";
    Daemon = fork();
    ASSERT_GE(Daemon, 0) << "fork failed";
    if (Daemon == 0) {
      std::string SocketArg = "--socket=" + Socket;
      execl(S1LISPD_PATH, "s1lispd", SocketArg.c_str(), "--workers=2",
            static_cast<char *>(nullptr));
      _exit(127); // exec failed
    }
    // The daemon binds asynchronously; poll until the socket accepts.
    for (int Try = 0; Try < 250 && !Conn.connected(); ++Try) {
      if (Conn.connectUnix(Socket))
        break;
      usleep(20000);
    }
    ASSERT_TRUE(Conn.connected()) << "daemon never came up on " << Socket;
  }

  void TearDown() override {
    if (Daemon <= 0)
      return;
    Message Req, Resp;
    Req.set("cmd", "shutdown");
    Client Closer;
    if (Conn.connected())
      Conn.roundTrip(Req, Resp);
    else if (Closer.connectUnix(Socket))
      Closer.roundTrip(Req, Resp);

    int Status = 0;
    for (int Try = 0; Try < 250; ++Try) {
      if (waitpid(Daemon, &Status, WNOHANG) == Daemon) {
        EXPECT_TRUE(WIFEXITED(Status) && WEXITSTATUS(Status) == 0)
            << "daemon exit status " << Status;
        unlink(Socket.c_str());
        return;
      }
      usleep(20000);
    }
    kill(Daemon, SIGKILL);
    waitpid(Daemon, &Status, 0);
    unlink(Socket.c_str());
    FAIL() << "daemon ignored the shutdown request";
  }

  std::string Socket;
  pid_t Daemon = -1;
  Client Conn;
};

TEST_F(ServiceEndToEnd, PingCompileRunOverTheSocket) {
  Message Req, Resp;
  Req.set("cmd", "ping");
  ASSERT_TRUE(Conn.roundTrip(Req, Resp));
  EXPECT_EQ(Resp.getOr("ok"), "1");

  Message Compile;
  Compile.set("cmd", "compile");
  Compile.set("source", "(defun exptl (b n)\n"
                        "  (if (zerop n) 1 (* b (exptl b (1- n)))))\n"
                        "(defun fut () (exptl 2 10))\n");
  Compile.set("entry", "fut");
  Compile.set("listing", "1");
  ASSERT_TRUE(Conn.roundTrip(Compile, Resp));
  EXPECT_EQ(Resp.getOr("ok"), "1");
  EXPECT_EQ(Resp.getOr("value"), "1024");
  EXPECT_FALSE(Resp.getOr("listing").empty());

  // Same request on a second connection: a pure cache hit, same answer.
  Client Second;
  ASSERT_TRUE(Second.connectUnix(Socket));
  Message Warm;
  ASSERT_TRUE(Second.roundTrip(Compile, Warm));
  EXPECT_EQ(Warm.getOr("memo-hits"), "2");
  EXPECT_EQ(Warm.getOr("memo-misses"), "0");
  EXPECT_EQ(Warm.getOr("value"), Resp.getOr("value"));
  EXPECT_EQ(Warm.getOr("listing"), Resp.getOr("listing"));

  Message Stats;
  Stats.set("cmd", "stats");
  ASSERT_TRUE(Conn.roundTrip(Stats, Resp));
  EXPECT_EQ(Resp.getOr("ok"), "1");
  EXPECT_EQ(Resp.getOr("cache-entries"), "2");
  EXPECT_EQ(Resp.getOr("cache-hits"), "2");
}

TEST_F(ServiceEndToEnd, CompileErrorsTravelBack) {
  Message Req, Resp;
  Req.set("cmd", "compile");
  Req.set("source", "(defun oops (x");
  ASSERT_TRUE(Conn.roundTrip(Req, Resp));
  EXPECT_EQ(Resp.getOr("ok"), "0");
  EXPECT_FALSE(Resp.getOr("error").empty());

  // The connection survives a failed request.
  Message Ping;
  Ping.set("cmd", "ping");
  ASSERT_TRUE(Conn.roundTrip(Ping, Resp));
  EXPECT_EQ(Resp.getOr("ok"), "1");
}

TEST_F(ServiceEndToEnd, S1lispcServerPassthrough) {
  std::string Out = "/tmp/s1lispc-server-test-" + std::to_string(getpid());
  std::string Cmd = std::string(S1LISPC_PATH) + " " + S1LISP_EXAMPLES_DIR +
                    "/exptl.lisp --run --server=" + Socket +
                    " > " + Out + " 2>&1";
  int Rc = std::system(Cmd.c_str());
  ASSERT_TRUE(WIFEXITED(Rc) && WEXITSTATUS(Rc) == 0) << "rc=" << Rc;

  std::string Text;
  if (FILE *F = fopen(Out.c_str(), "r")) {
    char Buf[4096];
    size_t N;
    while ((N = fread(Buf, 1, sizeof(Buf), F)) > 0)
      Text.append(Buf, N);
    fclose(F);
  }
  unlink(Out.c_str());
  EXPECT_NE(Text.find("=> 1024"), std::string::npos) << Text;
}

} // namespace
