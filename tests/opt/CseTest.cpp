//===- tests/opt/CseTest.cpp - §4.3 common subexpression elimination ------===//

#include "opt/Cse.h"

#include "frontend/Convert.h"
#include "interp/Interp.h"
#include "ir/BackTranslate.h"
#include "sexpr/Printer.h"

#include <gtest/gtest.h>

using namespace s1lisp;
using namespace s1lisp::opt;
using sexpr::Value;

namespace {

class CseTest : public ::testing::Test {
protected:
  ir::Module M;

  std::string runCse(const std::string &Src, unsigned *Hoisted = nullptr) {
    ir::Function *F = frontend::convertDefun(M, Src);
    unsigned N = eliminateCommonSubexpressions(*F);
    if (Hoisted)
      *Hoisted = N;
    return sexpr::toString(ir::backTranslate(*F, F->Root->Body));
  }
};

TEST_F(CseTest, HoistsRepeatedPureExpression) {
  unsigned Hoisted = 0;
  std::string Out =
      runCse("(defun f (a b) (+ (* a b a) (* a b a)))", &Hoisted);
  EXPECT_EQ(Hoisted, 1u);
  EXPECT_NE(Out.find("(lambda (cse)"), std::string::npos) << Out;
  // The repeated (* a b a) appears exactly once afterwards.
  size_t First = Out.find("(* a b a)");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Out.find("(* a b a)", First + 1), std::string::npos) << Out;
}

TEST_F(CseTest, LeavesSingleOccurrencesAlone) {
  unsigned Hoisted = 9;
  runCse("(defun f (a b) (+ (* a b a) (* b a b)))", &Hoisted);
  EXPECT_EQ(Hoisted, 0u);
}

TEST_F(CseTest, RefusesEffectfulExpressions) {
  unsigned Hoisted = 9;
  runCse("(defun f (a) (+ (g a) (g a)))", &Hoisted);
  EXPECT_EQ(Hoisted, 0u) << "unknown calls must not be deduplicated";
  runCse("(defun f (a b) (list (cons a b) (cons a b)))", &Hoisted);
  EXPECT_EQ(Hoisted, 0u) << "allocation must not be deduplicated (eq!)";
}

TEST_F(CseTest, RefusesSmallExpressions) {
  unsigned Hoisted = 9;
  runCse("(defun f (a) (+ (1+ a) (1+ a)))", &Hoisted);
  EXPECT_EQ(Hoisted, 0u) << "below the complexity threshold";
}

TEST_F(CseTest, DoesNotCrossLambdaBoundaries) {
  unsigned Hoisted = 9;
  runCse("(defun f (a b) (lambda () (+ (* a b a) (* a b a))))", &Hoisted);
  EXPECT_EQ(Hoisted, 0u)
      << "hoisting out of a lambda would change evaluation frequency";
}

TEST_F(CseTest, MutatedVariablesBlockCse) {
  unsigned Hoisted = 9;
  runCse("(defun f (a b) (+ (* a b a) (progn (setq a 1) (* a b a))))",
         &Hoisted);
  EXPECT_EQ(Hoisted, 0u)
      << "reads of a written variable are ordering-sensitive";
}

TEST_F(CseTest, SemanticsPreserved) {
  const char *Src = "(defun f (a b)"
                    "  (+ (* (+ a b) (+ a b) 2) (* (+ a b) (+ a b) 3)))";
  for (int64_t A : {-3, 0, 5})
    for (int64_t B : {1, 7}) {
      ir::Module M1, M2;
      frontend::convertDefun(M1, Src);
      ir::Function *F2 = frontend::convertDefun(M2, Src);
      eliminateCommonSubexpressions(*F2);
      interp::Interpreter I1(M1), I2(M2);
      auto R1 = I1.call("f", {interp::RtValue::data(Value::fixnum(A)),
                              interp::RtValue::data(Value::fixnum(B))});
      auto R2 = I2.call("f", {interp::RtValue::data(Value::fixnum(A)),
                              interp::RtValue::data(Value::fixnum(B))});
      ASSERT_TRUE(R1.Ok && R2.Ok);
      EXPECT_EQ(R1.Value.str(), R2.Value.str()) << A << "," << B;
    }
}

TEST_F(CseTest, TranscriptEntry) {
  ir::Function *F =
      frontend::convertDefun(M, "(defun f (a b) (+ (* a b a) (* a b a)))");
  stats::RemarkStream Log;
  eliminateCommonSubexpressions(*F, {}, &Log);
  ASSERT_EQ(Log.Remarks.size(), 1u);
  EXPECT_EQ(Log.Remarks[0].Rule, "META-INTRODUCE-COMMON-SUBEXPRESSION");
  EXPECT_NE(Log.Remarks[0].Detail.find("2 occurrences"), std::string::npos);
}

} // namespace
