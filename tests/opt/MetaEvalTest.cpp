//===- tests/opt/MetaEvalTest.cpp - Source-level optimizer tests ----------===//
//
// Exercises §5 of the paper: the beta-conversion rules, nested-if
// distribution (boolean short-circuiting), compile-time evaluation,
// assoc/commut canonicalization, and the §7 testfn transcript steps.
// Every optimization is also checked against the interpreter on both the
// original and optimized trees (differential testing).
//
//===----------------------------------------------------------------------===//

#include "opt/MetaEval.h"

#include "stats/Remark.h"

#include "frontend/Convert.h"
#include "interp/Interp.h"
#include "ir/BackTranslate.h"
#include "sexpr/Printer.h"

#include <gtest/gtest.h>

using namespace s1lisp;
using namespace s1lisp::ir;
using namespace s1lisp::opt;
using sexpr::Value;

namespace {

class MetaEvalTest : public ::testing::Test {
protected:
  ir::Module M;

  /// Converts a one-expression defun, optimizes, returns flat back-trans.
  std::string optimizeExpr(const std::string &Expr, OptOptions Opts = {},
                           stats::RemarkStream *Log = nullptr) {
    static int Counter = 0;
    std::string Name = "opt-probe-" + std::to_string(Counter++);
    Function *F = frontend::convertDefun(
        M, "(defun " + Name + " (p q r x y z) " + Expr + ")");
    metaEvaluate(*F, Opts, Log);
    return sexpr::toString(backTranslate(*F, F->Root->Body));
  }
};

TEST_F(MetaEvalTest, CallLambdaRule) {
  // ((lambda () body)) => body — the first beta rule.
  EXPECT_EQ(optimizeExpr("((lambda () (f x)))"), "(f x)");
}

TEST_F(MetaEvalTest, DropUnusedArgument) {
  // Unused parameter with effect-free argument: both disappear.
  EXPECT_EQ(optimizeExpr("((lambda (unused) (f x)) (cons y z))"), "(f x)")
      << "heap allocation may be eliminated (§5)";
  // Effectful argument must stay.
  EXPECT_EQ(optimizeExpr("((lambda (unused) (f x)) (rplaca y z))"),
            "((lambda (unused) (f x)) (rplaca y z))");
}

TEST_F(MetaEvalTest, SubstituteConstant) {
  EXPECT_EQ(optimizeExpr("((lambda (k) (f k k)) 7)"), "(f 7 7)");
}

TEST_F(MetaEvalTest, SubstituteVariable) {
  EXPECT_EQ(optimizeExpr("((lambda (v) (f v v)) x)"), "(f x x)");
}

TEST_F(MetaEvalTest, NoSubstitutionOfWrittenVariable) {
  std::string Out = optimizeExpr("((lambda (v) (progn (setq v 1) (f v))) x)");
  EXPECT_NE(Out.find("lambda"), std::string::npos)
      << "assigned variables must keep their binding: " << Out;
}

TEST_F(MetaEvalTest, SubstitutePureSingleUse) {
  EXPECT_EQ(optimizeExpr("((lambda (s) (f s)) (+ x y))"), "(f (+ x y))");
}

TEST_F(MetaEvalTest, PureSmallDuplicates) {
  // (+ x 1) is first canonicalized to (+ 1 x), then duplicated.
  EXPECT_EQ(optimizeExpr("((lambda (s) (f s s)) (+ x 1))"),
            "(f (+ 1 x) (+ 1 x))");
}

TEST_F(MetaEvalTest, LargePureExprNotDuplicated) {
  OptOptions Opts;
  Opts.DuplicationLimit = 3;
  std::string Out = optimizeExpr(
      "((lambda (s) (f s s)) (+ (* x x) (* y y) (* z z) (* x y)))", Opts);
  EXPECT_NE(Out.find("lambda"), std::string::npos) << Out;
}

TEST_F(MetaEvalTest, EffectfulSingleUseFirstPosition) {
  // (rplaca x y) is evaluated first by the body, so it may move in.
  EXPECT_EQ(optimizeExpr("((lambda (e) (f e x)) (rplaca y z))"),
            "(f (rplaca y z) x)");
}

TEST_F(MetaEvalTest, EffectfulUseInConditionalArmStays) {
  // The single use is inside an if-arm: moving it would skip or delay the
  // side effect.
  std::string Out = optimizeExpr("((lambda (e) (if p (f e) (g))) (rplaca y z))");
  EXPECT_NE(Out.find("lambda"), std::string::npos) << Out;
}

TEST_F(MetaEvalTest, EffectfulDoesNotReorderPastLaterArgs) {
  // e's write must not move past d's read of the same structure.
  std::string Out = optimizeExpr(
      "((lambda (e d) (f e d)) (rplaca y z) (car y))");
  EXPECT_NE(Out.find("lambda"), std::string::npos) << Out;
}

TEST_F(MetaEvalTest, ProcedureIntegrationSingleRef) {
  // A lambda referred to once is integrated, then beta-reduced.
  EXPECT_EQ(optimizeExpr("((lambda (th) (th)) (lambda () (f x)))"), "(f x)");
}

TEST_F(MetaEvalTest, CompileTimeEvaluation) {
  EXPECT_EQ(optimizeExpr("(+ 1 2 3)"), "6");
  EXPECT_EQ(optimizeExpr("(* 2.5 4.0)"), "10.0");
  EXPECT_EQ(optimizeExpr("(car '(a b))"), "(quote a)");
  EXPECT_EQ(optimizeExpr("(length '(1 2 3))"), "3");
  EXPECT_EQ(optimizeExpr("(< 1 2)"), "(quote t)");
  EXPECT_EQ(optimizeExpr("(/ 1 3)"), "1/3");
  EXPECT_EQ(optimizeExpr("(sqrt$f 4.0)"), "2.0");
  // Division by zero does not fold (the runtime error is preserved).
  EXPECT_EQ(optimizeExpr("(/ 1 0)"), "(/ 1 0)");
}

TEST_F(MetaEvalTest, DeadCodeElimination) {
  EXPECT_EQ(optimizeExpr("(if 't (f) (g))"), "(f)");
  EXPECT_EQ(optimizeExpr("(if nil (f) (g))"), "(g)");
  EXPECT_EQ(optimizeExpr("(if (< 1 2) (f) (g))"), "(f)")
      << "constant folding feeds dead-code elimination";
  EXPECT_EQ(optimizeExpr("(case 2 ((1) (f)) ((2) (g)) (t (h)))"), "(g)");
  EXPECT_EQ(optimizeExpr("(case 9 ((1) (f)) (t (h)))"), "(h)");
}

TEST_F(MetaEvalTest, PrognCleanup) {
  EXPECT_EQ(optimizeExpr("(progn 1 2 (f))"), "(f)");
  EXPECT_EQ(optimizeExpr("(progn (progn (f) (g)) (h))"),
            "(progn (f) (g) (h))");
  EXPECT_EQ(optimizeExpr("(progn x y 3)"), "3");
}

TEST_F(MetaEvalTest, AssocCommutCanonicalization) {
  // §7: (+$f a b c) => (+$f (+$f c b) a).
  OptOptions NoSubst;
  EXPECT_EQ(optimizeExpr("(+$f p q r)", NoSubst),
            "(+$f (+$f r q) p)");
  EXPECT_EQ(optimizeExpr("(* p q r x)", NoSubst), "(* (* (* x r) q) p)");
}

TEST_F(MetaEvalTest, ConstantsMoveFirst) {
  // §7: (*$f e 0.159154942) => (*$f 0.159154942 e).
  EXPECT_EQ(optimizeExpr("(*$f x 2.0)"), "(*$f 2.0 x)");
  EXPECT_EQ(optimizeExpr("(+ x 1)"), "(+ 1 x)");
}

TEST_F(MetaEvalTest, NaryExpansion) {
  EXPECT_EQ(optimizeExpr("(- p q r)"), "(- (- p q) r)");
  EXPECT_EQ(optimizeExpr("(- x)"), "(neg x)");
  EXPECT_EQ(optimizeExpr("(-$f x)"), "(neg$f x)");
  EXPECT_EQ(optimizeExpr("(/ x)"), "(/ 1 x)");
}

TEST_F(MetaEvalTest, IdentityElimination) {
  EXPECT_EQ(optimizeExpr("(+ x 0)"), "x");
  EXPECT_EQ(optimizeExpr("(* 1 x)"), "x");
  // Float identity requires the survivor to already be a float.
  EXPECT_EQ(optimizeExpr("(+$f (*$f x y) 0.0)"), "(*$f x y)");
  EXPECT_EQ(optimizeExpr("(+$f x 0.0)"), "(+$f 0.0 x)")
      << "x might be a fixnum pointer; +$f coerces, so it must stay";
}

TEST_F(MetaEvalTest, SinToSinc) {
  EXPECT_EQ(optimizeExpr("(sin$f x)"), "(sinc$f (*$f 0.159154942 x))");
  EXPECT_EQ(optimizeExpr("(cos$f x)"), "(cosc$f (*$f 0.159154942 x))");
  OptOptions NoTrig;
  NoTrig.MachineTrig = false;
  EXPECT_EQ(optimizeExpr("(sin$f x)", NoTrig), "(sin$f x)");
}

TEST_F(MetaEvalTest, RedundantTestElimination) {
  EXPECT_EQ(optimizeExpr("(if p (if p (f) (g)) (h))"), "(if p (f) (h))");
  EXPECT_EQ(optimizeExpr("(if p (f) (if p (g) (h)))"), "(if p (f) (h))");
  // Effectful tests are not assumed stable.
  std::string Out = optimizeExpr("(if (f) (if (f) 1 2) 3)");
  EXPECT_EQ(Out, "(if (f) (if (f) 1 2) 3)");
}

TEST_F(MetaEvalTest, IfOfProgn) {
  EXPECT_EQ(optimizeExpr("(if (progn (f) p) x y)"),
            "(progn (f) (if p x y))");
}

TEST_F(MetaEvalTest, IfOfLet) {
  EXPECT_EQ(optimizeExpr("(if ((lambda (v) (g v)) (f)) x y)"),
            "(if (g (f)) x y)")
      << "let hoisted out of the test, then v substituted";
}

TEST_F(MetaEvalTest, PaperBooleanShortCircuit) {
  // §5's centerpiece: (if (and a (or b c)) e1 e2) reduces to pure
  // conditional structure with the thunks f/g shared, not duplicated.
  stats::RemarkStream Log;
  std::string Out = optimizeExpr("(if (and p (or q r)) (win) (lose))", {}, &Log);
  // The and/or and the nested ifs must be gone from test positions:
  // the result is a nest of ifs over p, q, r calling shared thunks.
  EXPECT_EQ(Out.find("(and"), std::string::npos);
  EXPECT_EQ(Out.find("(or"), std::string::npos);
  EXPECT_GT(Log.count("META-DISTRIBUTE-NESTED-IF"), 0u);
  EXPECT_GT(Log.count("META-SUBSTITUTE"), 0u);
  // (win) and (lose) each appear exactly once (shared via the f/g thunks
  // or fully integrated): no space-wasting duplication of the arm code.
  size_t WinCount = 0, Pos = 0;
  while ((Pos = Out.find("(win)", Pos)) != std::string::npos) {
    ++WinCount;
    Pos += 5;
  }
  EXPECT_EQ(WinCount, 1u) << Out;
}

TEST_F(MetaEvalTest, TranscriptFormat) {
  stats::RemarkStream Log;
  optimizeExpr("(+$f p q r)", {}, &Log);
  std::string T = Log.str();
  EXPECT_NE(T.find(";**** Optimizing this form: (+$f p q r)"), std::string::npos) << T;
  EXPECT_NE(T.find(";**** to be this form: (+$f (+$f r q) p)"), std::string::npos) << T;
  EXPECT_NE(T.find(";**** courtesy of META-EVALUATE-ASSOC-COMMUT-CALL"),
            std::string::npos) << T;
}

TEST_F(MetaEvalTest, PaperTestfnPipeline) {
  // §7's worked example end to end: after optimization the variable q is
  // gone, sin$f became sinc$f with the constant first, and the sinc call
  // moved past the call to frotz.
  Function *F = frontend::convertDefun(
      M, "(defun testfn (a &optional (b 3.0) (c a))"
         "  (let ((d (+$f a b c)) (e (*$f a b c)))"
         "    (let ((q (sin$f e)))"
         "      (frotz d e (max$f d e))"
         "      q)))");
  stats::RemarkStream Log;
  metaEvaluate(*F, {}, &Log);
  std::string Out = sexpr::toString(backTranslate(*F, F->Root->Body));

  EXPECT_GT(Log.count("META-EVALUATE-ASSOC-COMMUT-CALL"), 0u);
  EXPECT_GT(Log.count("CONSIDER-REVERSING-ARGUMENTS"), 0u);
  EXPECT_GT(Log.count("META-SUBSTITUTE"), 0u);

  // The paper's result:
  // ((lambda (d e) (progn (frotz d e (max$f d e))
  //                       (sinc$f (*$f 0.159154942 e))))
  //  (+$f (+$f c b) a) (*$f (*$f c b) a))
  EXPECT_EQ(Out,
            "((lambda (d e) (progn (frotz d e (max$f d e)) "
            "(sinc$f (*$f 0.159154942 e)))) "
            "(+$f (+$f c b) a) (*$f (*$f c b) a))");
}

//===----------------------------------------------------------------------===//
// Differential property tests: optimization preserves semantics.
//===----------------------------------------------------------------------===//

struct DiffCase {
  const char *Source; ///< full defun named "fut"
  std::vector<int64_t> Args;
};

class OptDifferential : public ::testing::TestWithParam<const char *> {};

TEST_P(OptDifferential, InterpreterAgreesBeforeAndAfter) {
  // Convert twice: optimize one copy, run both on a grid of arguments.
  for (int64_t A : {-3, 0, 1, 2, 7}) {
    for (int64_t B : {-1, 0, 2, 5}) {
      ir::Module M1, M2;
      frontend::convertDefun(M1, GetParam());
      Function *F2 = frontend::convertDefun(M2, GetParam());
      metaEvaluate(*F2);

      interp::Interpreter I1(M1), I2(M2);
      std::vector<interp::RtValue> Args = {
          interp::RtValue::data(Value::fixnum(A)),
          interp::RtValue::data(Value::fixnum(B))};
      auto R1 = I1.call("fut", Args);
      auto R2 = I2.call("fut", Args);
      ASSERT_EQ(R1.Ok, R2.Ok) << GetParam() << " args " << A << "," << B
                              << ": " << R1.Error << " vs " << R2.Error;
      // Compare printed forms: the two modules intern symbols separately,
      // so pointer-based eql cannot be used across them.
      if (R1.Ok) {
        EXPECT_EQ(R1.Value.str(), R2.Value.str())
            << GetParam() << " args " << A << "," << B;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, OptDifferential,
    ::testing::Values(
        "(defun fut (a b) (if (and (plusp a) (or (minusp b) (zerop b))) (+ a b) (- a b)))",
        "(defun fut (a b) (let ((x (+ a 1)) (y (* b b))) (+ x y x)))",
        "(defun fut (a b) (let* ((x (+ a b)) (y (* x x))) (- y x)))",
        "(defun fut (a b) (cond ((= a 0) 'zero) ((= a b) 'same) (t (list a b))))",
        "(defun fut (a b) (+ (* 2 3) a (- b) (* 1 b) 0))",
        "(defun fut (a b) (progn (setq a (+ a 1)) (progn a b (+ a b))))",
        "(defun fut (a b) (if (if (plusp a) (plusp b) (minusp b)) 'yes 'no))",
        "(defun fut (a b) (let ((f (lambda (n) (* n n)))) (+ (funcall f a) (funcall f b))))",
        "(defun fut (a b) (do ((i 0 (1+ i)) (acc 0 (+ acc a))) ((= i 3) (+ acc b))))",
        "(defun fut (a b) (let ((l (list a b 3))) (+ (length l) (car l))))",
        "(defun fut (a b) (case (mod a 3) ((0) b) ((1) (+ b 1)) (t (+ b 2))))",
        "(defun fut (a b) (let ((u (cons a b))) (car u)))",
        "(defun fut (a b) (max (min a b) (- a b) 0))",
        "(defun fut (a b) (if (> a 0) (if (> a 0) (+ a b) 99) (- a b)))"));

} // namespace
