//===- tests/opt/IncrementalAnalysisTest.cpp ------------------------------===//
//
// Equivalence of the incremental re-analysis machinery against the
// recompute-the-world baseline, over generated programs:
//
//  * VerifyAnalysis cross-checks the dirty-spine caches (referent lists,
//    effects, complexity) against a full recompute after every optimizer
//    pass, aborting on divergence;
//  * independently, both analysis modes must reach the same optimized
//    tree, checked through the back-translator.
//
//===----------------------------------------------------------------------===//

#include "frontend/Convert.h"
#include "fuzz/Generator.h"
#include "ir/BackTranslate.h"
#include "opt/Cse.h"
#include "opt/MetaEval.h"
#include "sexpr/Printer.h"

#include "gtest/gtest.h"

using namespace s1lisp;

namespace {

constexpr unsigned BatchSize = 30;
constexpr uint32_t FirstSeed = 2000;
constexpr uint32_t NumSeeds = 300;

std::string moduleText(ir::Module &M) {
  std::string Out;
  for (auto &F : M.functions()) {
    Out += sexpr::toString(ir::backTranslateFunction(*F));
    Out += '\n';
  }
  return Out;
}

class IncrementalAnalysis : public ::testing::TestWithParam<unsigned> {};

TEST_P(IncrementalAnalysis, MatchesFullRecomputeOnFuzzPrograms) {
  for (uint32_t Seed = GetParam(); Seed < GetParam() + BatchSize; ++Seed) {
    fuzz::Generator G(Seed);
    fuzz::GeneratedProgram P = G.generate();
    ir::Module Base;
    DiagEngine Diags;
    ASSERT_TRUE(frontend::convertSource(Base, P.Source, Diags))
        << "seed " << Seed << ": " << Diags.str();

    // Run 1: incremental caches, with the after-every-pass cross-check on.
    // A stale referent list / cached effect aborts inside the optimizer.
    ir::Module Incr;
    Base.clone(Incr);
    opt::OptOptions Checked;
    Checked.VerifyAnalysis = true;
    for (auto &F : Incr.functions()) {
      opt::metaEvaluate(*F, Checked, nullptr);
      opt::eliminateCommonSubexpressions(*F, {}, nullptr);
    }

    // Run 2: the baseline that recomputes analysis every pass. Both modes
    // must converge on the same tree.
    ir::Module Full;
    Base.clone(Full);
    opt::OptOptions Baseline;
    Baseline.IncrementalAnalysis = false;
    for (auto &F : Full.functions()) {
      opt::metaEvaluate(*F, Baseline, nullptr);
      opt::eliminateCommonSubexpressions(*F, {}, nullptr);
    }

    EXPECT_EQ(moduleText(Incr), moduleText(Full))
        << "seed " << Seed << " optimized differently\n"
        << P.Source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalAnalysis,
                         ::testing::Range(FirstSeed, FirstSeed + NumSeeds,
                                          BatchSize));

} // namespace
