
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/annotate/AnnotateTest.cpp" "tests/CMakeFiles/s1lisp_tests.dir/annotate/AnnotateTest.cpp.o" "gcc" "tests/CMakeFiles/s1lisp_tests.dir/annotate/AnnotateTest.cpp.o.d"
  "/root/repo/tests/frontend/ConvertTest.cpp" "tests/CMakeFiles/s1lisp_tests.dir/frontend/ConvertTest.cpp.o" "gcc" "tests/CMakeFiles/s1lisp_tests.dir/frontend/ConvertTest.cpp.o.d"
  "/root/repo/tests/integration/CompiledVsInterpTest.cpp" "tests/CMakeFiles/s1lisp_tests.dir/integration/CompiledVsInterpTest.cpp.o" "gcc" "tests/CMakeFiles/s1lisp_tests.dir/integration/CompiledVsInterpTest.cpp.o.d"
  "/root/repo/tests/integration/RandomProgramTest.cpp" "tests/CMakeFiles/s1lisp_tests.dir/integration/RandomProgramTest.cpp.o" "gcc" "tests/CMakeFiles/s1lisp_tests.dir/integration/RandomProgramTest.cpp.o.d"
  "/root/repo/tests/interp/InterpTest.cpp" "tests/CMakeFiles/s1lisp_tests.dir/interp/InterpTest.cpp.o" "gcc" "tests/CMakeFiles/s1lisp_tests.dir/interp/InterpTest.cpp.o.d"
  "/root/repo/tests/ir/IrTest.cpp" "tests/CMakeFiles/s1lisp_tests.dir/ir/IrTest.cpp.o" "gcc" "tests/CMakeFiles/s1lisp_tests.dir/ir/IrTest.cpp.o.d"
  "/root/repo/tests/opt/CseTest.cpp" "tests/CMakeFiles/s1lisp_tests.dir/opt/CseTest.cpp.o" "gcc" "tests/CMakeFiles/s1lisp_tests.dir/opt/CseTest.cpp.o.d"
  "/root/repo/tests/opt/MetaEvalTest.cpp" "tests/CMakeFiles/s1lisp_tests.dir/opt/MetaEvalTest.cpp.o" "gcc" "tests/CMakeFiles/s1lisp_tests.dir/opt/MetaEvalTest.cpp.o.d"
  "/root/repo/tests/s1/IsaTest.cpp" "tests/CMakeFiles/s1lisp_tests.dir/s1/IsaTest.cpp.o" "gcc" "tests/CMakeFiles/s1lisp_tests.dir/s1/IsaTest.cpp.o.d"
  "/root/repo/tests/sexpr/NumbersTest.cpp" "tests/CMakeFiles/s1lisp_tests.dir/sexpr/NumbersTest.cpp.o" "gcc" "tests/CMakeFiles/s1lisp_tests.dir/sexpr/NumbersTest.cpp.o.d"
  "/root/repo/tests/sexpr/ReaderTest.cpp" "tests/CMakeFiles/s1lisp_tests.dir/sexpr/ReaderTest.cpp.o" "gcc" "tests/CMakeFiles/s1lisp_tests.dir/sexpr/ReaderTest.cpp.o.d"
  "/root/repo/tests/sexpr/ValueTest.cpp" "tests/CMakeFiles/s1lisp_tests.dir/sexpr/ValueTest.cpp.o" "gcc" "tests/CMakeFiles/s1lisp_tests.dir/sexpr/ValueTest.cpp.o.d"
  "/root/repo/tests/tnbind/TnBindTest.cpp" "tests/CMakeFiles/s1lisp_tests.dir/tnbind/TnBindTest.cpp.o" "gcc" "tests/CMakeFiles/s1lisp_tests.dir/tnbind/TnBindTest.cpp.o.d"
  "/root/repo/tests/vm/MachineTest.cpp" "tests/CMakeFiles/s1lisp_tests.dir/vm/MachineTest.cpp.o" "gcc" "tests/CMakeFiles/s1lisp_tests.dir/vm/MachineTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s1_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s1_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s1_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s1_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s1_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s1_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s1_annotate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s1_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s1_tnbind.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s1_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s1_s1.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s1_sexpr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s1_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
