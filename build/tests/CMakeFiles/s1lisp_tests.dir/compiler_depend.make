# Empty compiler generated dependencies file for s1lisp_tests.
# This may be replaced when dependencies are built.
