file(REMOVE_RECURSE
  "CMakeFiles/s1lisp_tests.dir/annotate/AnnotateTest.cpp.o"
  "CMakeFiles/s1lisp_tests.dir/annotate/AnnotateTest.cpp.o.d"
  "CMakeFiles/s1lisp_tests.dir/frontend/ConvertTest.cpp.o"
  "CMakeFiles/s1lisp_tests.dir/frontend/ConvertTest.cpp.o.d"
  "CMakeFiles/s1lisp_tests.dir/integration/CompiledVsInterpTest.cpp.o"
  "CMakeFiles/s1lisp_tests.dir/integration/CompiledVsInterpTest.cpp.o.d"
  "CMakeFiles/s1lisp_tests.dir/integration/RandomProgramTest.cpp.o"
  "CMakeFiles/s1lisp_tests.dir/integration/RandomProgramTest.cpp.o.d"
  "CMakeFiles/s1lisp_tests.dir/interp/InterpTest.cpp.o"
  "CMakeFiles/s1lisp_tests.dir/interp/InterpTest.cpp.o.d"
  "CMakeFiles/s1lisp_tests.dir/ir/IrTest.cpp.o"
  "CMakeFiles/s1lisp_tests.dir/ir/IrTest.cpp.o.d"
  "CMakeFiles/s1lisp_tests.dir/opt/CseTest.cpp.o"
  "CMakeFiles/s1lisp_tests.dir/opt/CseTest.cpp.o.d"
  "CMakeFiles/s1lisp_tests.dir/opt/MetaEvalTest.cpp.o"
  "CMakeFiles/s1lisp_tests.dir/opt/MetaEvalTest.cpp.o.d"
  "CMakeFiles/s1lisp_tests.dir/s1/IsaTest.cpp.o"
  "CMakeFiles/s1lisp_tests.dir/s1/IsaTest.cpp.o.d"
  "CMakeFiles/s1lisp_tests.dir/sexpr/NumbersTest.cpp.o"
  "CMakeFiles/s1lisp_tests.dir/sexpr/NumbersTest.cpp.o.d"
  "CMakeFiles/s1lisp_tests.dir/sexpr/ReaderTest.cpp.o"
  "CMakeFiles/s1lisp_tests.dir/sexpr/ReaderTest.cpp.o.d"
  "CMakeFiles/s1lisp_tests.dir/sexpr/ValueTest.cpp.o"
  "CMakeFiles/s1lisp_tests.dir/sexpr/ValueTest.cpp.o.d"
  "CMakeFiles/s1lisp_tests.dir/tnbind/TnBindTest.cpp.o"
  "CMakeFiles/s1lisp_tests.dir/tnbind/TnBindTest.cpp.o.d"
  "CMakeFiles/s1lisp_tests.dir/vm/MachineTest.cpp.o"
  "CMakeFiles/s1lisp_tests.dir/vm/MachineTest.cpp.o.d"
  "s1lisp_tests"
  "s1lisp_tests.pdb"
  "s1lisp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s1lisp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
