# Empty dependencies file for bench_specials.
# This may be replaced when dependencies are built.
