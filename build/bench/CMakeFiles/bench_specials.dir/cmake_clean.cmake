file(REMOVE_RECURSE
  "CMakeFiles/bench_specials.dir/bench_specials.cpp.o"
  "CMakeFiles/bench_specials.dir/bench_specials.cpp.o.d"
  "bench_specials"
  "bench_specials.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_specials.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
