file(REMOVE_RECURSE
  "CMakeFiles/bench_cse.dir/bench_cse.cpp.o"
  "CMakeFiles/bench_cse.dir/bench_cse.cpp.o.d"
  "bench_cse"
  "bench_cse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
