# Empty compiler generated dependencies file for bench_cse.
# This may be replaced when dependencies are built.
