file(REMOVE_RECURSE
  "CMakeFiles/bench_pdl.dir/bench_pdl.cpp.o"
  "CMakeFiles/bench_pdl.dir/bench_pdl.cpp.o.d"
  "bench_pdl"
  "bench_pdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
