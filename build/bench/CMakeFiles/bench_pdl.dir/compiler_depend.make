# Empty compiler generated dependencies file for bench_pdl.
# This may be replaced when dependencies are built.
