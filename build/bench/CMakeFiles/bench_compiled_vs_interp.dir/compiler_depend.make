# Empty compiler generated dependencies file for bench_compiled_vs_interp.
# This may be replaced when dependencies are built.
