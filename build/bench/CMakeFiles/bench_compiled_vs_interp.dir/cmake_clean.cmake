file(REMOVE_RECURSE
  "CMakeFiles/bench_compiled_vs_interp.dir/bench_compiled_vs_interp.cpp.o"
  "CMakeFiles/bench_compiled_vs_interp.dir/bench_compiled_vs_interp.cpp.o.d"
  "bench_compiled_vs_interp"
  "bench_compiled_vs_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compiled_vs_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
