file(REMOVE_RECURSE
  "CMakeFiles/bench_shortcircuit.dir/bench_shortcircuit.cpp.o"
  "CMakeFiles/bench_shortcircuit.dir/bench_shortcircuit.cpp.o.d"
  "bench_shortcircuit"
  "bench_shortcircuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shortcircuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
