# Empty dependencies file for bench_shortcircuit.
# This may be replaced when dependencies are built.
