# Empty dependencies file for bench_phases.
# This may be replaced when dependencies are built.
