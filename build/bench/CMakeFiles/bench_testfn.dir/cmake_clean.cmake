file(REMOVE_RECURSE
  "CMakeFiles/bench_testfn.dir/bench_testfn.cpp.o"
  "CMakeFiles/bench_testfn.dir/bench_testfn.cpp.o.d"
  "bench_testfn"
  "bench_testfn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_testfn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
