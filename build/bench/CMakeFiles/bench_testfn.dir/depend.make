# Empty dependencies file for bench_testfn.
# This may be replaced when dependencies are built.
