# Empty compiler generated dependencies file for bench_tnbind.
# This may be replaced when dependencies are built.
