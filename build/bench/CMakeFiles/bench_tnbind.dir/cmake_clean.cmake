file(REMOVE_RECURSE
  "CMakeFiles/bench_tnbind.dir/bench_tnbind.cpp.o"
  "CMakeFiles/bench_tnbind.dir/bench_tnbind.cpp.o.d"
  "bench_tnbind"
  "bench_tnbind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tnbind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
