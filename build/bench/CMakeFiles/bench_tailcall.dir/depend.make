# Empty dependencies file for bench_tailcall.
# This may be replaced when dependencies are built.
