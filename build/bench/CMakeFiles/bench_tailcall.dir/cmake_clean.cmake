file(REMOVE_RECURSE
  "CMakeFiles/bench_tailcall.dir/bench_tailcall.cpp.o"
  "CMakeFiles/bench_tailcall.dir/bench_tailcall.cpp.o.d"
  "bench_tailcall"
  "bench_tailcall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tailcall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
