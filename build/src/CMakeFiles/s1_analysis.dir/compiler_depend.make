# Empty compiler generated dependencies file for s1_analysis.
# This may be replaced when dependencies are built.
