file(REMOVE_RECURSE
  "libs1_analysis.a"
)
