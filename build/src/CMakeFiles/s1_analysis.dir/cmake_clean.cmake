file(REMOVE_RECURSE
  "CMakeFiles/s1_analysis.dir/analysis/Analysis.cpp.o"
  "CMakeFiles/s1_analysis.dir/analysis/Analysis.cpp.o.d"
  "libs1_analysis.a"
  "libs1_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s1_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
