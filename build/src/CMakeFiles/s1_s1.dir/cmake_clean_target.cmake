file(REMOVE_RECURSE
  "libs1_s1.a"
)
