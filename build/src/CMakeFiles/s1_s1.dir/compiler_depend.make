# Empty compiler generated dependencies file for s1_s1.
# This may be replaced when dependencies are built.
