file(REMOVE_RECURSE
  "CMakeFiles/s1_s1.dir/s1/Isa.cpp.o"
  "CMakeFiles/s1_s1.dir/s1/Isa.cpp.o.d"
  "libs1_s1.a"
  "libs1_s1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s1_s1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
