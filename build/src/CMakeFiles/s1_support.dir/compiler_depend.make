# Empty compiler generated dependencies file for s1_support.
# This may be replaced when dependencies are built.
