
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/Diag.cpp" "src/CMakeFiles/s1_support.dir/support/Diag.cpp.o" "gcc" "src/CMakeFiles/s1_support.dir/support/Diag.cpp.o.d"
  "/root/repo/src/support/SourceLocation.cpp" "src/CMakeFiles/s1_support.dir/support/SourceLocation.cpp.o" "gcc" "src/CMakeFiles/s1_support.dir/support/SourceLocation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
