file(REMOVE_RECURSE
  "CMakeFiles/s1_support.dir/support/Diag.cpp.o"
  "CMakeFiles/s1_support.dir/support/Diag.cpp.o.d"
  "CMakeFiles/s1_support.dir/support/SourceLocation.cpp.o"
  "CMakeFiles/s1_support.dir/support/SourceLocation.cpp.o.d"
  "libs1_support.a"
  "libs1_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s1_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
