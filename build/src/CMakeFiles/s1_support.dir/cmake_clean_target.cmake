file(REMOVE_RECURSE
  "libs1_support.a"
)
