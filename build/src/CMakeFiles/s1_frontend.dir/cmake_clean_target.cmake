file(REMOVE_RECURSE
  "libs1_frontend.a"
)
