file(REMOVE_RECURSE
  "CMakeFiles/s1_frontend.dir/frontend/Convert.cpp.o"
  "CMakeFiles/s1_frontend.dir/frontend/Convert.cpp.o.d"
  "libs1_frontend.a"
  "libs1_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s1_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
