# Empty dependencies file for s1_frontend.
# This may be replaced when dependencies are built.
