
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/annotate/Annotate.cpp" "src/CMakeFiles/s1_annotate.dir/annotate/Annotate.cpp.o" "gcc" "src/CMakeFiles/s1_annotate.dir/annotate/Annotate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s1_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s1_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s1_sexpr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/s1_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
