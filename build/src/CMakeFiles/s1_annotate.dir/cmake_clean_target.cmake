file(REMOVE_RECURSE
  "libs1_annotate.a"
)
