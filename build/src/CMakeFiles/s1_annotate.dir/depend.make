# Empty dependencies file for s1_annotate.
# This may be replaced when dependencies are built.
