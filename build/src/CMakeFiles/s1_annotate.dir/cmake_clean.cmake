file(REMOVE_RECURSE
  "CMakeFiles/s1_annotate.dir/annotate/Annotate.cpp.o"
  "CMakeFiles/s1_annotate.dir/annotate/Annotate.cpp.o.d"
  "libs1_annotate.a"
  "libs1_annotate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s1_annotate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
