# Empty dependencies file for s1_sexpr.
# This may be replaced when dependencies are built.
