file(REMOVE_RECURSE
  "libs1_sexpr.a"
)
