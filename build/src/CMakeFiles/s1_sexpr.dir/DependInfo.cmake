
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sexpr/Numbers.cpp" "src/CMakeFiles/s1_sexpr.dir/sexpr/Numbers.cpp.o" "gcc" "src/CMakeFiles/s1_sexpr.dir/sexpr/Numbers.cpp.o.d"
  "/root/repo/src/sexpr/Printer.cpp" "src/CMakeFiles/s1_sexpr.dir/sexpr/Printer.cpp.o" "gcc" "src/CMakeFiles/s1_sexpr.dir/sexpr/Printer.cpp.o.d"
  "/root/repo/src/sexpr/Reader.cpp" "src/CMakeFiles/s1_sexpr.dir/sexpr/Reader.cpp.o" "gcc" "src/CMakeFiles/s1_sexpr.dir/sexpr/Reader.cpp.o.d"
  "/root/repo/src/sexpr/Value.cpp" "src/CMakeFiles/s1_sexpr.dir/sexpr/Value.cpp.o" "gcc" "src/CMakeFiles/s1_sexpr.dir/sexpr/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/s1_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
