file(REMOVE_RECURSE
  "CMakeFiles/s1_sexpr.dir/sexpr/Numbers.cpp.o"
  "CMakeFiles/s1_sexpr.dir/sexpr/Numbers.cpp.o.d"
  "CMakeFiles/s1_sexpr.dir/sexpr/Printer.cpp.o"
  "CMakeFiles/s1_sexpr.dir/sexpr/Printer.cpp.o.d"
  "CMakeFiles/s1_sexpr.dir/sexpr/Reader.cpp.o"
  "CMakeFiles/s1_sexpr.dir/sexpr/Reader.cpp.o.d"
  "CMakeFiles/s1_sexpr.dir/sexpr/Value.cpp.o"
  "CMakeFiles/s1_sexpr.dir/sexpr/Value.cpp.o.d"
  "libs1_sexpr.a"
  "libs1_sexpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s1_sexpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
