# Empty compiler generated dependencies file for s1_driver.
# This may be replaced when dependencies are built.
