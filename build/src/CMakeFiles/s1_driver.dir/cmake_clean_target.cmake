file(REMOVE_RECURSE
  "libs1_driver.a"
)
