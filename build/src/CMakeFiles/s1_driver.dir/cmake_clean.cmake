file(REMOVE_RECURSE
  "CMakeFiles/s1_driver.dir/driver/Compiler.cpp.o"
  "CMakeFiles/s1_driver.dir/driver/Compiler.cpp.o.d"
  "libs1_driver.a"
  "libs1_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s1_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
