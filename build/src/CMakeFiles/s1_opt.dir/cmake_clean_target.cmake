file(REMOVE_RECURSE
  "libs1_opt.a"
)
