file(REMOVE_RECURSE
  "CMakeFiles/s1_opt.dir/opt/Cse.cpp.o"
  "CMakeFiles/s1_opt.dir/opt/Cse.cpp.o.d"
  "CMakeFiles/s1_opt.dir/opt/Fold.cpp.o"
  "CMakeFiles/s1_opt.dir/opt/Fold.cpp.o.d"
  "CMakeFiles/s1_opt.dir/opt/MetaEval.cpp.o"
  "CMakeFiles/s1_opt.dir/opt/MetaEval.cpp.o.d"
  "libs1_opt.a"
  "libs1_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s1_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
