# Empty compiler generated dependencies file for s1_opt.
# This may be replaced when dependencies are built.
