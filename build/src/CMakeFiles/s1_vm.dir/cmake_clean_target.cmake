file(REMOVE_RECURSE
  "libs1_vm.a"
)
