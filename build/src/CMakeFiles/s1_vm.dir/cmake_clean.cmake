file(REMOVE_RECURSE
  "CMakeFiles/s1_vm.dir/vm/Machine.cpp.o"
  "CMakeFiles/s1_vm.dir/vm/Machine.cpp.o.d"
  "libs1_vm.a"
  "libs1_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s1_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
