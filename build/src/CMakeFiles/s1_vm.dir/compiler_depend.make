# Empty compiler generated dependencies file for s1_vm.
# This may be replaced when dependencies are built.
