# Empty dependencies file for s1_codegen.
# This may be replaced when dependencies are built.
