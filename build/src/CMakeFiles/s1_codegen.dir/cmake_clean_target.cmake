file(REMOVE_RECURSE
  "libs1_codegen.a"
)
