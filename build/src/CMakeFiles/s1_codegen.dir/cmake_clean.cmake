file(REMOVE_RECURSE
  "CMakeFiles/s1_codegen.dir/codegen/Codegen.cpp.o"
  "CMakeFiles/s1_codegen.dir/codegen/Codegen.cpp.o.d"
  "libs1_codegen.a"
  "libs1_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s1_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
