file(REMOVE_RECURSE
  "CMakeFiles/s1_interp.dir/interp/Interp.cpp.o"
  "CMakeFiles/s1_interp.dir/interp/Interp.cpp.o.d"
  "libs1_interp.a"
  "libs1_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s1_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
