# Empty dependencies file for s1_interp.
# This may be replaced when dependencies are built.
