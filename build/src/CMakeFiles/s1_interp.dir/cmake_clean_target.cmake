file(REMOVE_RECURSE
  "libs1_interp.a"
)
