file(REMOVE_RECURSE
  "CMakeFiles/s1_tnbind.dir/tnbind/TnBind.cpp.o"
  "CMakeFiles/s1_tnbind.dir/tnbind/TnBind.cpp.o.d"
  "libs1_tnbind.a"
  "libs1_tnbind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s1_tnbind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
