# Empty dependencies file for s1_tnbind.
# This may be replaced when dependencies are built.
