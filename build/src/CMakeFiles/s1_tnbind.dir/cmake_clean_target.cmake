file(REMOVE_RECURSE
  "libs1_tnbind.a"
)
