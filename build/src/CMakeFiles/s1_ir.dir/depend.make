# Empty dependencies file for s1_ir.
# This may be replaced when dependencies are built.
