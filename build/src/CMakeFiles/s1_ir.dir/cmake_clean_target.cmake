file(REMOVE_RECURSE
  "libs1_ir.a"
)
