file(REMOVE_RECURSE
  "CMakeFiles/s1_ir.dir/ir/BackTranslate.cpp.o"
  "CMakeFiles/s1_ir.dir/ir/BackTranslate.cpp.o.d"
  "CMakeFiles/s1_ir.dir/ir/Ir.cpp.o"
  "CMakeFiles/s1_ir.dir/ir/Ir.cpp.o.d"
  "CMakeFiles/s1_ir.dir/ir/Primitives.cpp.o"
  "CMakeFiles/s1_ir.dir/ir/Primitives.cpp.o.d"
  "libs1_ir.a"
  "libs1_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s1_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
