file(REMOVE_RECURSE
  "CMakeFiles/quadratic.dir/quadratic.cpp.o"
  "CMakeFiles/quadratic.dir/quadratic.cpp.o.d"
  "quadratic"
  "quadratic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quadratic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
