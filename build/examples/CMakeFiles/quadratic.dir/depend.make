# Empty dependencies file for quadratic.
# This may be replaced when dependencies are built.
