file(REMOVE_RECURSE
  "CMakeFiles/testfn_transcript.dir/testfn_transcript.cpp.o"
  "CMakeFiles/testfn_transcript.dir/testfn_transcript.cpp.o.d"
  "testfn_transcript"
  "testfn_transcript.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testfn_transcript.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
