# Empty dependencies file for testfn_transcript.
# This may be replaced when dependencies are built.
