file(REMOVE_RECURSE
  "CMakeFiles/shortcircuit_derivation.dir/shortcircuit_derivation.cpp.o"
  "CMakeFiles/shortcircuit_derivation.dir/shortcircuit_derivation.cpp.o.d"
  "shortcircuit_derivation"
  "shortcircuit_derivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shortcircuit_derivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
