# Empty compiler generated dependencies file for shortcircuit_derivation.
# This may be replaced when dependencies are built.
