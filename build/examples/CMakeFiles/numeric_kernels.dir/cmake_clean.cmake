file(REMOVE_RECURSE
  "CMakeFiles/numeric_kernels.dir/numeric_kernels.cpp.o"
  "CMakeFiles/numeric_kernels.dir/numeric_kernels.cpp.o.d"
  "numeric_kernels"
  "numeric_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
