# Empty dependencies file for numeric_kernels.
# This may be replaced when dependencies are built.
