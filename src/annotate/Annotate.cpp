//===- annotate/Annotate.cpp ----------------------------------------------===//

#include "annotate/Annotate.h"

#include "analysis/Analysis.h"
#include "ir/Primitives.h"
#include "stats/Stats.h"

#include <unordered_set>

S1_STAT(NumOpenLambdas, "annotate.lambdas.open", "lambdas compiled open (LET)");
S1_STAT(NumJumpLambdas, "annotate.lambdas.jump", "lambdas compiled as jumps");
S1_STAT(NumFullClosures, "annotate.lambdas.closure",
        "lambdas compiled as full closures");
S1_STAT(NumHeapVars, "annotate.vars.heap", "variables given heap binding cells");
S1_STAT(NumRawFloatVars, "annotate.vars.rawfloat",
        "variables kept as raw machine floats");
S1_STAT(NumRawFixnumVars, "annotate.vars.rawfixnum",
        "variables kept as raw machine fixnums");
S1_STAT(NumPdlSites, "annotate.pdl.sites",
        "coercion sites authorized to stack-allocate boxes");

using namespace s1lisp;
using namespace s1lisp::annotate;
using namespace s1lisp::ir;

bool annotate::isLocalTailPosition(const Node *Body, const Node *Site) {
  // Walk upward from Site to Body; every hop must be value-transparent.
  const Node *Cur = Site;
  while (Cur != Body) {
    const Node *Parent = Cur->Parent;
    if (!Parent)
      return false;
    switch (Parent->kind()) {
    case NodeKind::If: {
      const auto *I = cast<IfNode>(Parent);
      if (Cur == I->Test)
        return false;
      break;
    }
    case NodeKind::Progn: {
      const auto *P = cast<PrognNode>(Parent);
      if (P->Forms.empty() || P->Forms.back() != Cur)
        return false;
      break;
    }
    case NodeKind::Caseq: {
      const auto *C = cast<CaseqNode>(Parent);
      if (Cur == C->Key)
        return false;
      break;
    }
    case NodeKind::Lambda: {
      // The body of a LET's lambda is value-transparent through the call:
      // hop from the lambda to the enclosing direct call.
      const auto *L = cast<LambdaNode>(Parent);
      if (L->Body != Cur || !L->Parent)
        return false;
      const auto *C = dyn_cast<CallNode>(L->Parent);
      if (!C || C->CalleeExpr != L)
        return false;
      // A jump out of a special-binding LET would skip its unbinding.
      for (const Variable *P : L->allParams())
        if (P->isSpecial())
          return false;
      Cur = L->Parent; // continue from the call node
      continue;
    }
    default:
      return false;
    }
    Cur = Parent;
  }
  return true;
}

namespace {

/// Is this lambda the callee of a direct call (a LET)?
bool isOpenLambda(const LambdaNode *L) {
  const auto *C = dyn_cast<CallNode>(L->Parent);
  return C && C->CalleeExpr == L;
}

/// Classifies a lambda that is an argument of an open call binding
/// variable \p V: Jump if every reference to V is the callee of a
/// zero-argument call sitting in local tail position of the binder's body.
bool qualifiesAsJumpThunk(const LambdaNode *Thunk, const Variable *V,
                          const LambdaNode *Binder) {
  if (!Thunk->Required.empty() || !Thunk->Optionals.empty() || Thunk->Rest)
    return false;
  if (V->Refs.empty())
    return false;
  for (const Node *Ref : V->Refs) {
    if (Ref->kind() != NodeKind::VarRef)
      return false; // a setq disqualifies
    const auto *Call = dyn_cast<CallNode>(Ref->Parent);
    if (!Call || Call->CalleeExpr != Ref || !Call->Args.empty())
      return false;
    if (!isLocalTailPosition(Binder->Body, Call))
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Binding annotation
//===----------------------------------------------------------------------===//

void annotateBindings(Function &F, AnnotateStats &Stats) {
  recomputeVariableRefs(F);

  forEachNode(static_cast<Node *>(F.Root), [&](Node *N) {
    auto *L = dyn_cast<LambdaNode>(N);
    if (!L)
      return;
    if (L == F.Root) {
      L->Strategy = LambdaStrategy::Open; // the root is entered directly
      return;
    }
    if (isOpenLambda(L)) {
      L->Strategy = LambdaStrategy::Open;
      ++Stats.OpenLambdas;
      return;
    }
    // A lambda argument of an open call may be a jump thunk.
    if (auto *C = dyn_cast<CallNode>(L->Parent)) {
      if (C->CalleeExpr && C->CalleeExpr != L) {
        if (auto *Binder = dyn_cast<LambdaNode>(C->CalleeExpr)) {
          for (size_t J = 0; J < Binder->Required.size() && J < C->Args.size();
               ++J) {
            if (C->Args[J] != L)
              continue;
            if (qualifiesAsJumpThunk(L, Binder->Required[J], Binder)) {
              L->Strategy = LambdaStrategy::Jump;
              ++Stats.JumpLambdas;
              return;
            }
          }
        }
      }
    }
    L->Strategy = LambdaStrategy::FullClosure;
    ++Stats.FullClosures;
  });

  // Heap allocation: a variable referenced from inside a FullClosure
  // lambda nested below its binder must live in a heap environment.
  forEachNode(static_cast<Node *>(F.Root), [&](Node *N) {
    auto *L = dyn_cast<LambdaNode>(N);
    if (!L || L->Strategy != LambdaStrategy::FullClosure)
      return;
    std::unordered_set<const Variable *> BoundInside;
    forEachNode(static_cast<Node *>(L), [&](Node *M) {
      if (auto *Inner = dyn_cast<LambdaNode>(M))
        for (Variable *P : Inner->allParams())
          BoundInside.insert(P);
    });
    forEachNode(static_cast<Node *>(L), [&](Node *M) {
      Variable *V = nullptr;
      if (auto *VR = dyn_cast<VarRefNode>(M))
        V = VR->Var;
      else if (auto *SQ = dyn_cast<SetqNode>(M))
        V = SQ->Var;
      if (V && !V->isSpecial() && !BoundInside.count(V) && V->Binder)
        V->HeapAllocated = true;
    });
  });
  for (Variable *V : F.variables())
    Stats.HeapVariables += V->HeapAllocated;
}

//===----------------------------------------------------------------------===//
// Representation annotation (§6.2)
//===----------------------------------------------------------------------===//

/// The representation a context wants for \p Child.
Rep wantedRepOf(const Node *Child) {
  const Node *Parent = Child->Parent;
  if (!Parent)
    return Rep::POINTER;
  if (const auto *C = dyn_cast<CallNode>(Parent)) {
    if (C->Name) {
      const PrimInfo *P = lookupPrim(C->Name);
      if (P) {
        for (const Node *A : C->Args)
          if (A == Child)
            return P->ArgRep;
      }
    }
    return Rep::POINTER; // user calls take pointers
  }
  if (const auto *I = dyn_cast<IfNode>(Parent)) {
    if (Child == I->Test)
      return Rep::JUMP;
    return Parent->Ann.WantRep;
  }
  if (Parent->kind() == NodeKind::Progn) {
    const auto *P = cast<PrognNode>(Parent);
    if (!P->Forms.empty() && P->Forms.back() == Child)
      return Parent->Ann.WantRep;
    return Rep::NONE;
  }
  return Rep::POINTER;
}

/// The representation \p N naturally delivers, given variable reps.
Rep deliveredRepOf(const Node *N) {
  switch (N->kind()) {
  case NodeKind::Literal: {
    const auto *L = cast<LiteralNode>(N);
    // A numeric literal can be materialized in whatever rep the context
    // wants; report the natural raw rep for numbers.
    if (L->Datum.isFlonum())
      return N->Ann.WantRep == Rep::SWFLO ? Rep::SWFLO : Rep::POINTER;
    if (L->Datum.isFixnum())
      return N->Ann.WantRep == Rep::SWFIX ? Rep::SWFIX : Rep::POINTER;
    return Rep::POINTER;
  }
  case NodeKind::VarRef:
    return cast<VarRefNode>(N)->Var->VarRep;
  case NodeKind::Call: {
    const auto *C = cast<CallNode>(N);
    if (C->Name) {
      if (const PrimInfo *P = lookupPrim(C->Name)) {
        if (P->ResultRep == Rep::BIT)
          return Rep::POINTER; // value-ized booleans are t/nil pointers
        return P->ResultRep;
      }
    }
    if (C->isLetLike())
      return cast<LambdaNode>(C->CalleeExpr)->Body->Ann.IsRep;
    return Rep::POINTER;
  }
  case NodeKind::If: {
    const auto *I = cast<IfNode>(N);
    Rep T = I->Then->Ann.IsRep, E = I->Else->Ann.IsRep;
    if (T == E)
      return T;
    // §6.2: when the arms disagree, prefer the context's WANTREP when one
    // arm already delivers it and the other is convertible — letting the
    // (sqrt$f q) arm stay raw while (car r) merely dereferences.
    Rep Want = N->Ann.WantRep;
    if ((T == Want || E == Want) &&
        (Want == Rep::SWFLO || Want == Rep::SWFIX || Want == Rep::POINTER))
      return Want;
    return Rep::POINTER;
  }
  case NodeKind::Progn: {
    const auto *P = cast<PrognNode>(N);
    return P->Forms.empty() ? Rep::POINTER : P->Forms.back()->Ann.IsRep;
  }
  default:
    return Rep::POINTER;
  }
}

void annotateReps(Function &F, bool Enable, AnnotateStats &Stats) {
  // Default: everything is a pointer.
  forEachNode(static_cast<Node *>(F.Root), [](Node *N) {
    N->Ann.WantRep = Rep::POINTER;
    N->Ann.IsRep = Rep::POINTER;
  });
  for (Variable *V : F.variables())
    V->VarRep = Rep::POINTER;
  if (!Enable)
    return;

  // Iterate to a small fixpoint: variable reps feed node reps and back.
  for (int Iter = 0; Iter < 4; ++Iter) {
    bool Changed = false;

    // Top-down WANTREP, bottom-up ISREP (preorder parents first, then a
    // postorder recomputation).
    forEachNode(static_cast<Node *>(F.Root),
                [](Node *N) { N->Ann.WantRep = wantedRepOf(N); });
    // Postorder ISREP.
    std::function<void(Node *)> Post = [&](Node *N) {
      forEachChild(N, [&Post](Node *C) { Post(C); });
      Rep R = deliveredRepOf(N);
      if (N->Ann.IsRep != R) {
        N->Ann.IsRep = R;
      }
    };
    Post(F.Root);

    // Variables: a non-special, non-heap, unwritten-or-consistent variable
    // whose every read is wanted raw and whose initializer delivers raw is
    // kept raw; "if not all references agree, POINTER can always be used".
    for (Variable *V : F.variables()) {
      if (V->isSpecial() || V->HeapAllocated || !V->Binder)
        continue;
      const LambdaNode *Binder = V->Binder;
      // Only open-lambda (LET) and root parameters participate.
      bool IsOpen = Binder == F.Root ||
                    (Binder->Parent && isOpenLambda(Binder));
      if (!IsOpen)
        continue;
      // Root parameters arrive as pointers by convention, so only LET
      // parameters (with a visible initializer) may go raw.
      bool HasInit = false;
      if (Binder != F.Root && Binder->Parent) {
        const auto *C = cast<CallNode>(Binder->Parent);
        for (size_t J = 0; J < Binder->Required.size() && J < C->Args.size(); ++J)
          if (Binder->Required[J] == V)
            HasInit = true;
      }
      if (!HasInit)
        continue;

      // The variable may be kept raw when every value flowing into it is
      // statically of that raw type (the initializer and every setq).
      // Reads in pointer contexts then merely re-box an eql value — and
      // eq "is not guaranteed to work on numbers" (§6.3), so this is
      // invisible to correct programs. At least one raw-wanting use must
      // exist to make it worthwhile; "POINTER can always be used"
      // otherwise.
      auto WriteRepOf = [](const Node *E) {
        if (const auto *Lit = dyn_cast<LiteralNode>(E)) {
          if (Lit->Datum.isFlonum())
            return Rep::SWFLO;
          if (Lit->Datum.isFixnum())
            return Rep::SWFIX;
          return Rep::POINTER;
        }
        return E->Ann.IsRep;
      };
      // The initializer's rep, with literal awareness.
      Rep FlowRep = Rep::POINTER;
      {
        const auto *C = cast<CallNode>(Binder->Parent);
        for (size_t J = 0; J < Binder->Required.size() && J < C->Args.size(); ++J)
          if (Binder->Required[J] == V)
            FlowRep = WriteRepOf(C->Args[J]);
      }
      bool AllWritesAgree = FlowRep == Rep::SWFLO || FlowRep == Rep::SWFIX;
      unsigned RawWants = 0;
      for (const Node *Ref : V->Refs) {
        if (Ref->kind() == NodeKind::Setq) {
          if (WriteRepOf(cast<SetqNode>(Ref)->ValueExpr) != FlowRep)
            AllWritesAgree = false;
          continue;
        }
        RawWants += Ref->Ann.WantRep == FlowRep;
      }
      Rep NewRep =
          AllWritesAgree && RawWants >= 1 ? FlowRep : Rep::POINTER;
      if (V->VarRep != NewRep) {
        V->VarRep = NewRep;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }

  for (Variable *V : F.variables()) {
    Stats.RawFloatVariables += V->VarRep == Rep::SWFLO;
    Stats.RawFixnumVariables += V->VarRep == Rep::SWFIX;
  }
}

//===----------------------------------------------------------------------===//
// Pdl-number annotation (§6.3)
//===----------------------------------------------------------------------===//

/// Is a pointer produced at \p Child consumed only by safe operations
/// within the current function frame? Walks upward to find the
/// authorizing node; null when the value might escape.
const Node *pdlAuthorizer(const Node *Child) {
  const Node *Cur = Child;
  while (true) {
    const Node *Parent = Cur->Parent;
    if (!Parent)
      return nullptr; // function result: returning is unsafe
    switch (Parent->kind()) {
    case NodeKind::If: {
      const auto *I = cast<IfNode>(Parent);
      if (Cur == I->Test)
        return Parent; // the conditional test is a safe operation
      Cur = Parent;    // arms pass the parent's authorization down
      continue;
    }
    case NodeKind::Progn: {
      const auto *P = cast<PrognNode>(Parent);
      if (!P->Forms.empty() && P->Forms.back() == Cur) {
        Cur = Parent;
        continue;
      }
      return Parent; // value dropped: trivially safe
    }
    case NodeKind::Call: {
      const auto *C = cast<CallNode>(Parent);
      if (C->CalleeExpr && C->CalleeExpr == Cur)
        return nullptr;
      if (C->Name) {
        const PrimInfo *P = lookupPrim(C->Name);
        if (!P)
          return Parent; // user call: passing a pointer is safe (§6.3)
        // Unsafe prims: those that store pointers into the heap or global
        // state (cons, list, rplaca, setq-like), or re-throw values.
        switch (P->Op) {
        case Prim::Cons:
        case Prim::List:
        case Prim::Append:
        case Prim::Rplaca:
        case Prim::Rplacd:
        case Prim::Throw:
        case Prim::Funcall:
        case Prim::Apply:
          return nullptr;
        default:
          return Parent; // arithmetic, predicates, print, ... are safe
        }
      }
      if (C->isLetLike())
        return nullptr; // handled separately via the variable path
      return Parent;
    }
    default:
      return nullptr; // setq, caseq key, catcher, return, ...
    }
  }
}

void annotatePdl(Function &F, bool Enable, AnnotateStats &Stats) {
  forEachNode(static_cast<Node *>(F.Root), [](Node *N) {
    N->Ann.PdlOkp = nullptr;
    N->Ann.PdlNump = false;
  });
  if (!Enable)
    return;

  forEachNode(static_cast<Node *>(F.Root), [&](Node *N) {
    // PDLNUMP: the node produces a raw float but the context needs a
    // pointer, so a coercion (boxing) happens here.
    bool Coerces = repIsPdlEligible(N->Ann.IsRep) &&
                   N->Ann.WantRep == Rep::POINTER;
    if (!Coerces)
      return;
    N->Ann.PdlNump = true;

    // Direct flow into a safe consumer.
    if (const Node *Auth = pdlAuthorizer(N)) {
      N->Ann.PdlOkp = Auth;
      ++Stats.PdlSites;
      return;
    }

    // LET-variable flow: ((lambda (d ...) body) <this> ...) where every
    // use of d is a safe position and d cannot escape the frame.
    const auto *C = dyn_cast<CallNode>(N->Parent);
    if (!C || !C->isLetLike())
      return;
    const auto *L = cast<LambdaNode>(C->CalleeExpr);
    const Variable *V = nullptr;
    for (size_t J = 0; J < L->Required.size() && J < C->Args.size(); ++J)
      if (C->Args[J] == N)
        V = L->Required[J];
    if (!V || V->isSpecial() || V->HeapAllocated || V->Written)
      return;
    for (const Node *Ref : V->Refs)
      if (!pdlAuthorizer(Ref))
        return;
    N->Ann.PdlOkp = C; // the LET bounds the lifetime
    ++Stats.PdlSites;
  });
}

} // namespace

AnnotateStats annotate::annotate(Function &F, const AnnotateOptions &Opts) {
  stats::PhaseTimer Timer("annotate");
  AnnotateStats Stats;
  analysis::analyze(F);
  annotateBindings(F, Stats);
  annotateReps(F, Opts.RepAnalysis, Stats);
  annotatePdl(F, Opts.PdlNumbers, Stats);
  NumOpenLambdas += Stats.OpenLambdas;
  NumJumpLambdas += Stats.JumpLambdas;
  NumFullClosures += Stats.FullClosures;
  NumHeapVars += Stats.HeapVariables;
  NumRawFloatVars += Stats.RawFloatVariables;
  NumRawFixnumVars += Stats.RawFixnumVariables;
  NumPdlSites += Stats.PdlSites;
  return Stats;
}
