//===- annotate/Annotate.h - Machine-dependent annotation -------*- C++ -*-===//
///
/// \file
/// The machine-dependent annotation phases of Table 1:
///
///  * Binding annotation (§4.4): how is each lambda-expression compiled —
///    open (a manifest LET call), jump (a shared thunk whose calls become
///    parameter-passing gotos), or a full run-time closure — and which
///    variables need heap-allocated binding cells because closures
///    reference them.
///
///  * Representation annotation (§6.2): the WANTREP/ISREP analysis that
///    decides which quantities live as raw machine numbers and which as
///    LISP pointers; variables whose every use wants SWFLO/SWFIX are kept
///    raw (the paper's heuristic: disagreement means POINTER).
///
///  * Pdl-number annotation (§6.3): the PDLOKP/PDLNUMP flags marking raw
///    numbers whose pointer form may be allocated in the stack frame
///    instead of the heap.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_ANNOTATE_ANNOTATE_H
#define S1LISP_ANNOTATE_ANNOTATE_H

#include "ir/Ir.h"

namespace s1lisp {
namespace annotate {

struct AnnotateOptions {
  /// Allow raw (unboxed) representations for variables (§6.2 ablation).
  bool RepAnalysis = true;
  /// Allow stack allocation of boxed numbers (§6.3 ablation).
  bool PdlNumbers = true;
};

/// Statistics for EXPERIMENTS.md.
struct AnnotateStats {
  unsigned OpenLambdas = 0;
  unsigned JumpLambdas = 0;
  unsigned FullClosures = 0;
  unsigned HeapVariables = 0;
  unsigned RawFloatVariables = 0;
  unsigned RawFixnumVariables = 0;
  unsigned PdlSites = 0; ///< coercion sites authorized to stack-allocate
};

/// Runs all three annotation phases. Requires analysis::analyze(F) first
/// (tail flags and effects must be current).
AnnotateStats annotate(ir::Function &F, const AnnotateOptions &Opts = {});

/// True when \p Site's value flows only through if/caseq arms and progn
/// tails into the value of \p Body (i.e. every consumer shares the body's
/// continuation) — the condition for jump-compiling thunk calls.
bool isLocalTailPosition(const ir::Node *Body, const ir::Node *Site);

} // namespace annotate
} // namespace s1lisp

#endif // S1LISP_ANNOTATE_ANNOTATE_H
