//===- sexpr/Value.cpp ----------------------------------------------------===//

#include "sexpr/Value.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <numeric>

using namespace s1lisp;
using namespace s1lisp::sexpr;

const std::string &Value::stringValue() const {
  assert(isString() && "not a string");
  return Str->Str;
}

Value Value::car() const {
  if (isNil())
    return Value::nil();
  assert(isCons() && "car of a non-list");
  return C->Car;
}

Value Value::cdr() const {
  if (isNil())
    return Value::nil();
  assert(isCons() && "cdr of a non-list");
  return C->Cdr;
}

SymbolTable::SymbolTable() {
  SymT = intern("t");
  SymQuote = intern("quote");
}

const Symbol *SymbolTable::intern(std::string_view Name) {
  Shard &S = Shards[StringHash{}(Name) & (NumShards - 1)];
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Map.find(Name);
  if (It != S.Map.end())
    return It->second;
  S.Storage.emplace_back(std::string(Name));
  const Symbol *Sym = &S.Storage.back();
  S.Map.emplace(std::string(Name), Sym);
  S.Count.store(S.Map.size(), std::memory_order_release);
  return Sym;
}

//===----------------------------------------------------------------------===//
// Heap: allocation
//===----------------------------------------------------------------------===//

Heap::Heap() = default;

Heap::~Heap() {
  // Only strings own out-of-line storage; conses and ratios are trivially
  // destructible.
  for (Region &R : Regions) {
    for (auto &Ch : R.Nursery)
      for (size_t I = 0; I < Ch->Used; ++I)
        destroyPayload(&Ch->Slots[I]);
    for (auto &Ch : R.Tenured)
      for (size_t I = 0; I < Ch->Used; ++I)
        if (!Ch->Slots[I].H.Free)
          destroyPayload(&Ch->Slots[I]);
  }
}

Heap::Region &Heap::myRegion() {
  // Threads take regions round-robin: the parallel pipeline's handful of
  // workers each get a private region; collisions only appear past
  // NumRegions live allocating threads, and are still correct (the region
  // mutex covers them).
  static std::atomic<size_t> NextSlot{0};
  thread_local const size_t Slot =
      NextSlot.fetch_add(1, std::memory_order_relaxed);
  return Regions[Slot & (NumRegions - 1)];
}

Heap::Slot *Heap::slotOf(void *Payload) {
  return reinterpret_cast<Slot *>(static_cast<char *>(Payload) -
                                  offsetof(Slot, Payload));
}

void Heap::registerChunk(Chunk *Ch) {
  std::lock_guard<std::mutex> Lock(RangeMu);
  RangeEntry E{Ch->Slots.get(), Ch->Slots.get() + Ch->Cap, Ch};
  Ranges.insert(std::upper_bound(Ranges.begin(), Ranges.end(), E,
                                 [](const RangeEntry &A, const RangeEntry &B) {
                                   return A.Begin < B.Begin;
                                 }),
                E);
}

Heap::Chunk *Heap::owningChunk(const void *Payload) {
  std::lock_guard<std::mutex> Lock(RangeMu);
  auto It = std::upper_bound(Ranges.begin(), Ranges.end(), Payload,
                             [](const void *P, const RangeEntry &E) {
                               return P < static_cast<const void *>(E.Begin);
                             });
  if (It == Ranges.begin())
    return nullptr;
  --It;
  if (Payload < static_cast<const void *>(It->End))
    return It->Ch;
  return nullptr;
}

Heap::Slot *Heap::nurseryAlloc(Region &R, CellKind K) {
  // Advance past full chunks (capacity is reused across collections; a
  // reset just rewinds Used and ActiveNursery).
  while (R.ActiveNursery < R.Nursery.size() &&
         R.Nursery[R.ActiveNursery]->Used == R.Nursery[R.ActiveNursery]->Cap)
    ++R.ActiveNursery;
  if (R.ActiveNursery == R.Nursery.size()) {
    auto Ch = std::make_unique<Chunk>();
    Ch->Slots = std::make_unique<Slot[]>(ChunkSlots);
    Ch->Cap = ChunkSlots;
    Ch->Nursery = true;
    Ch->RegionIdx = static_cast<size_t>(&R - Regions);
    registerChunk(Ch.get());
    R.Nursery.push_back(std::move(Ch));
  }
  Chunk &Ch = *R.Nursery[R.ActiveNursery];
  Slot *S = &Ch.Slots[Ch.Used++];
  S->H = CellHeader{K, 0, 0, 0, nullptr};
  NurseryLive.fetch_add(1, std::memory_order_relaxed);
  return S;
}

Heap::Slot *Heap::tenuredAlloc(size_t RegionIdx, CellKind K) {
  Region &R = Regions[RegionIdx];
  std::lock_guard<std::mutex> Lock(R.Mu);
  Slot *S = nullptr;
  if (!R.FreeList.empty()) {
    S = R.FreeList.back();
    R.FreeList.pop_back();
  } else {
    if (R.Tenured.empty() || R.Tenured.back()->Used == R.Tenured.back()->Cap) {
      auto Ch = std::make_unique<Chunk>();
      Ch->Slots = std::make_unique<Slot[]>(ChunkSlots);
      Ch->Cap = ChunkSlots;
      Ch->Nursery = false;
      Ch->RegionIdx = RegionIdx;
      registerChunk(Ch.get());
      R.Tenured.push_back(std::move(Ch));
    }
    Chunk &Ch = *R.Tenured.back();
    S = &Ch.Slots[Ch.Used++];
  }
  S->H = CellHeader{K, 0, 0, 0, nullptr};
  ++TenuredLive;
  return S;
}

Value Heap::cons(Value Car, Value Cdr, SourceLocation Loc) {
  // The only collection trigger. cons() roots its own arguments, so
  // callers never need to; the trigger runs before any lock is taken.
  if (gcEnabled() && !InGc)
    maybeCollect(&Car, &Cdr);
  Region &R = myRegion();
  std::lock_guard<std::mutex> Lock(R.Mu);
  Slot *S = nurseryAlloc(R, CellKind::ConsCell);
  Cons *C = new (S->Payload) Cons{Car, Cdr, Loc};
  R.ConsTally.fetch_add(1, std::memory_order_release);
  return Value::cons(C);
}

Value Heap::string(std::string S) {
  Region &R = myRegion();
  std::lock_guard<std::mutex> Lock(R.Mu);
  Slot *Sl = nurseryAlloc(R, CellKind::StringCell);
  StringObj *O = new (Sl->Payload) StringObj{std::move(S)};
  return Value::string(O);
}

Value Heap::makeRatio(int64_t Num, int64_t Den) {
  assert(Den != 0 && "ratio with zero denominator");
  if (Den < 0) {
    Num = -Num;
    Den = -Den;
  }
  int64_t G = std::gcd(Num < 0 ? -Num : Num, Den);
  if (G > 1) {
    Num /= G;
    Den /= G;
  }
  if (Den == 1)
    return Value::fixnum(Num);
  Region &R = myRegion();
  std::lock_guard<std::mutex> Lock(R.Mu);
  Slot *Sl = nurseryAlloc(R, CellKind::RatioCell);
  Ratio *Rt = new (Sl->Payload) Ratio{Num, Den};
  return Value::ratio(Rt);
}

Value Heap::list(std::initializer_list<Value> Items) {
  return list(std::vector<Value>(Items));
}

Value Heap::list(const std::vector<Value> &Items) {
  // A collection triggered by one of the conses below would move cells
  // the remaining items still point at, so root a mutable copy. Rooting
  // is skipped on GC-free heaps: the shadow stack is single-mutator
  // state, and the parallel compiler pipeline (always GC-free) calls
  // list() from worker threads.
  std::vector<Value> Tmp(Items);
  RootScope Roots(*this);
  if (gcEnabled())
    for (Value &V : Tmp)
      Roots.add(&V);
  Value Result = Value::nil();
  for (size_t I = Tmp.size(); I > 0; --I)
    Result = cons(Tmp[I - 1], Result);
  return Result;
}

//===----------------------------------------------------------------------===//
// Heap: collection
//===----------------------------------------------------------------------===//

void Heap::registerRootProvider(RootProvider *P) { Providers.push_back(P); }

void Heap::unregisterRootProvider(RootProvider *P) {
  Providers.erase(std::remove(Providers.begin(), Providers.end(), P),
                  Providers.end());
}

void Heap::writeBarrier(Cons *C) {
  if (!gcEnabled())
    return;
  Chunk *Ch = owningChunk(C);
  if (!Ch) {
    // A cell of another heap was just pointed (possibly) at our cells: it
    // becomes a permanent external root. It is never cleared — dropping
    // it at a major collection would let the sweep free cells the foreign
    // heap still reaches.
    RememberedForeign.insert(C);
    return;
  }
  // Own nursery cells are scanned when they are evacuated, so only
  // tenured cells can hide an old-to-young edge.
  if (!Ch->Nursery)
    RememberedOwn.insert(C);
}

void Heap::maybeCollect(Value *Car, Value *Cdr) {
  ++AllocSinceGc;
  bool Trigger = false;
  if (GcEvery != 0) {
    Trigger = AllocSinceGc >= GcEvery;
  } else if (BudgetBytes != 0) {
    size_t Limit = std::min<size_t>(size_t(1) << 20,
                                    std::max<size_t>(BudgetBytes / 4, 1));
    Trigger = NurseryLive.load(std::memory_order_relaxed) * sizeof(Slot) >=
              Limit;
  }
  if (!Trigger)
    return;
  AllocSinceGc = 0;
  collectImpl({Car, Cdr}, /*ForceMajor=*/false);
}

void Heap::collect() { collectImpl({}, /*ForceMajor=*/true); }

void Heap::forEachRootSlot(const std::function<void(Value &)> &F,
                           std::initializer_list<Value *> Extra) {
  for (Value *V : ShadowStack)
    F(*V);
  for (RootProvider *P : Providers)
    P->visitRoots(F);
  for (Value *V : Extra)
    if (V)
      F(*V);
}

void Heap::evacuate(Value &V, std::vector<Cons *> &Scan) {
  void *P = nullptr;
  switch (V.kind()) {
  case ValueKind::Cons:
    P = V.C;
    break;
  case ValueKind::String:
    P = const_cast<StringObj *>(V.Str);
    break;
  case ValueKind::Ratio:
    P = const_cast<Ratio *>(V.Rat);
    break;
  default:
    return;
  }
  Chunk *Ch = owningChunk(P);
  if (!Ch || !Ch->Nursery)
    return; // another heap's cell, or already tenured
  Slot *S = slotOf(P);
  if (!S->H.Forward) {
    Slot *NS = tenuredAlloc(Ch->RegionIdx, S->H.Kind);
    switch (S->H.Kind) {
    case CellKind::ConsCell: {
      Cons *NC = new (NS->Payload) Cons(*reinterpret_cast<Cons *>(P));
      S->H.Forward = NC;
      Scan.push_back(NC);
      break;
    }
    case CellKind::StringCell: {
      auto *Old = reinterpret_cast<StringObj *>(P);
      S->H.Forward = new (NS->Payload) StringObj{std::move(Old->Str)};
      break;
    }
    case CellKind::RatioCell:
      S->H.Forward = new (NS->Payload) Ratio(*reinterpret_cast<Ratio *>(P));
      break;
    }
    ++Stats.CellsPromoted;
    Stats.BytesPromoted += sizeof(Slot);
  }
  switch (V.kind()) {
  case ValueKind::Cons:
    V.C = static_cast<Cons *>(S->H.Forward);
    break;
  case ValueKind::String:
    V.Str = static_cast<StringObj *>(S->H.Forward);
    break;
  case ValueKind::Ratio:
    V.Rat = static_cast<Ratio *>(S->H.Forward);
    break;
  default:
    break;
  }
}

void Heap::markValue(Value V, std::vector<Cons *> &Work) {
  void *P = nullptr;
  switch (V.kind()) {
  case ValueKind::Cons:
    P = V.C;
    break;
  case ValueKind::String:
    P = const_cast<StringObj *>(V.Str);
    break;
  case ValueKind::Ratio:
    P = const_cast<Ratio *>(V.Rat);
    break;
  default:
    return;
  }
  Chunk *Ch = owningChunk(P);
  if (!Ch)
    return;
  Slot *S = slotOf(P);
  if (S->H.Mark)
    return;
  S->H.Mark = 1;
  if (S->H.Kind == CellKind::ConsCell)
    Work.push_back(reinterpret_cast<Cons *>(P));
}

void Heap::destroyPayload(Slot *S) {
  if (S->H.Kind == CellKind::StringCell)
    reinterpret_cast<StringObj *>(S->Payload)->~StringObj();
}

void Heap::majorMarkSweep(std::initializer_list<Value *> Extra) {
  ++Stats.MajorCollections;
  std::vector<Cons *> Work;
  forEachRootSlot([this, &Work](Value &V) { markValue(V, Work); }, Extra);
  // Mutated foreign cells reach into this heap from outside; their fields
  // are external roots for the sweep.
  for (Cons *C : RememberedForeign) {
    markValue(C->Car, Work);
    markValue(C->Cdr, Work);
  }
  while (!Work.empty()) {
    Cons *C = Work.back();
    Work.pop_back();
    markValue(C->Car, Work);
    markValue(C->Cdr, Work);
  }
  for (Region &R : Regions) {
    std::lock_guard<std::mutex> Lock(R.Mu);
    for (auto &Ch : R.Tenured)
      for (size_t I = 0; I < Ch->Used; ++I) {
        Slot &S = Ch->Slots[I];
        if (S.H.Free)
          continue;
        if (S.H.Mark) {
          S.H.Mark = 0;
          continue;
        }
        destroyPayload(&S);
        S.H.Free = 1;
        R.FreeList.push_back(&S);
        ++Stats.CellsSwept;
        Stats.BytesSwept += sizeof(Slot);
        --TenuredLive;
      }
  }
}

void Heap::collectImpl(std::initializer_list<Value *> Extra, bool ForceMajor) {
  if (InGc)
    return;
  InGc = true;
  auto T0 = std::chrono::steady_clock::now();

  // Minor collection: evacuate every reachable nursery cell into the
  // tenured generation (Cheney-style worklist over copied conses), then
  // reset the nursery for reuse.
  std::vector<Cons *> Scan;
  forEachRootSlot([this, &Scan](Value &V) { evacuate(V, Scan); }, Extra);
  for (Cons *C : RememberedOwn) {
    evacuate(C->Car, Scan);
    evacuate(C->Cdr, Scan);
  }
  for (Cons *C : RememberedForeign) {
    evacuate(C->Car, Scan);
    evacuate(C->Cdr, Scan);
  }
  while (!Scan.empty()) {
    Cons *C = Scan.back();
    Scan.pop_back();
    evacuate(C->Car, Scan);
    evacuate(C->Cdr, Scan);
  }
  // Old-to-young edges were promoted along with everything else; the
  // write barrier repopulates this set as the mutator runs on.
  RememberedOwn.clear();

  for (Region &R : Regions) {
    std::lock_guard<std::mutex> Lock(R.Mu);
    for (auto &Ch : R.Nursery) {
      // Forwarded strings hold a moved-from std::string; dead ones hold a
      // live one. Both destruct safely.
      for (size_t I = 0; I < Ch->Used; ++I)
        destroyPayload(&Ch->Slots[I]);
      Ch->Used = 0;
    }
    R.ActiveNursery = 0;
  }
  NurseryLive.store(0, std::memory_order_relaxed);
  ++Stats.Collections;

  if (ForceMajor ||
      (BudgetBytes != 0 && TenuredLive * sizeof(Slot) > BudgetBytes))
    majorMarkSweep(Extra);

  auto Ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
  Stats.PauseNsTotal += Ns;
  Stats.PauseNsMax = std::max(Stats.PauseNsMax, Ns);
  size_t Bucket = Ns < 10'000 ? 0 : Ns < 100'000 ? 1 : Ns < 1'000'000 ? 2 : 3;
  ++Stats.PauseBuckets[Bucket];

  InGc = false;

  if (VerifyAfterGc) {
    std::string Err;
    if (!verify(&Err)) {
      fprintf(stderr, "s1lisp: heap verification failed after GC: %s\n",
              Err.c_str());
      abort();
    }
  }
}

bool Heap::verify(std::string *Err) {
  auto Fail = [&](const char *M) {
    if (Err)
      *Err = M;
    return false;
  };

  // 1. Reachability: every cell reachable from the registered roots must
  //    be un-forwarded, un-freed, kind-consistent, and inside its chunk's
  //    live extent.
  std::unordered_set<const void *> Visited;
  std::vector<Value> Work;
  forEachRootSlot([&Work](Value &V) { Work.push_back(V); }, {});
  for (Cons *C : RememberedForeign) {
    Work.push_back(C->Car);
    Work.push_back(C->Cdr);
  }
  while (!Work.empty()) {
    Value V = Work.back();
    Work.pop_back();
    void *P = nullptr;
    switch (V.kind()) {
    case ValueKind::Cons:
      P = V.C;
      break;
    case ValueKind::String:
      P = const_cast<StringObj *>(V.Str);
      break;
    case ValueKind::Ratio:
      P = const_cast<Ratio *>(V.Rat);
      break;
    default:
      continue;
    }
    Chunk *Ch = owningChunk(P);
    if (!Ch)
      continue; // another heap's cell; it validates there
    if (!Visited.insert(P).second)
      continue;
    Slot *S = slotOf(P);
    if (S->H.Forward)
      return Fail("reachable cell still carries a forwarding pointer");
    if (S->H.Free)
      return Fail("reachable cell lies in freed space");
    if (static_cast<size_t>(S - Ch->Slots.get()) >= Ch->Used)
      return Fail("reachable cell beyond its chunk's live extent");
    if ((V.isCons() && S->H.Kind != CellKind::ConsCell) ||
        (V.isString() && S->H.Kind != CellKind::StringCell) ||
        (V.isRatio() && S->H.Kind != CellKind::RatioCell))
      return Fail("reachable cell's header kind disagrees with its tag");
    if (V.isCons()) {
      Work.push_back(V.car());
      Work.push_back(V.cdr());
    }
  }

  // 2. No live nursery cons may point at freed space, and no tenured slot
  //    may carry a stale forwarding pointer.
  for (Region &R : Regions) {
    std::lock_guard<std::mutex> Lock(R.Mu);
    for (auto &Ch : R.Nursery)
      for (size_t I = 0; I < Ch->Used; ++I) {
        Slot &S = Ch->Slots[I];
        if (S.H.Free)
          return Fail("nursery slot marked free");
        if (S.H.Kind != CellKind::ConsCell || S.H.Forward)
          continue;
        Cons *C = reinterpret_cast<Cons *>(S.Payload);
        for (Value Child : {C->Car, C->Cdr}) {
          void *CP = nullptr;
          if (Child.isCons())
            CP = Child.C;
          else if (Child.isString())
            CP = const_cast<StringObj *>(Child.Str);
          else if (Child.isRatio())
            CP = const_cast<Ratio *>(Child.Rat);
          if (!CP || !owningChunk(CP))
            continue;
          if (slotOf(CP)->H.Free)
            return Fail("live nursery cell points at freed space");
        }
      }
    for (auto &Ch : R.Tenured)
      for (size_t I = 0; I < Ch->Used; ++I)
        if (!Ch->Slots[I].H.Free && Ch->Slots[I].H.Forward)
          return Fail("tenured slot carries a forwarding pointer");
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Free functions
//===----------------------------------------------------------------------===//

bool sexpr::isProperList(Value V) {
  while (V.isCons())
    V = V.cdr();
  return V.isNil();
}

size_t sexpr::listLength(Value V) {
  size_t N = 0;
  while (V.isCons()) {
    ++N;
    V = V.cdr();
  }
  assert(V.isNil() && "listLength of an improper list");
  return N;
}

std::vector<Value> sexpr::listToVector(Value V) {
  std::vector<Value> Out;
  while (V.isCons()) {
    Out.push_back(V.car());
    V = V.cdr();
  }
  assert(V.isNil() && "listToVector of an improper list");
  return Out;
}

bool sexpr::eql(Value A, Value B) {
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case ValueKind::Nil:
    return true;
  case ValueKind::Symbol:
    return A.symbol() == B.symbol();
  case ValueKind::Fixnum:
    return A.fixnum() == B.fixnum();
  case ValueKind::Flonum:
    return A.flonum() == B.flonum();
  case ValueKind::Ratio:
    return A.ratio().Num == B.ratio().Num && A.ratio().Den == B.ratio().Den;
  case ValueKind::String:
    return &A.stringValue() == &B.stringValue();
  case ValueKind::Cons:
    return A.consCell() == B.consCell();
  }
  return false;
}

bool sexpr::equal(Value A, Value B) {
  if (A.kind() != B.kind())
    return false;
  if (A.isCons())
    return equal(A.car(), B.car()) && equal(A.cdr(), B.cdr());
  if (A.isString())
    return A.stringValue() == B.stringValue();
  return eql(A, B);
}
