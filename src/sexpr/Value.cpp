//===- sexpr/Value.cpp ----------------------------------------------------===//

#include "sexpr/Value.h"

#include <numeric>

using namespace s1lisp;
using namespace s1lisp::sexpr;

const std::string &Value::stringValue() const {
  assert(isString() && "not a string");
  return Str->Str;
}

Value Value::car() const {
  if (isNil())
    return Value::nil();
  assert(isCons() && "car of a non-list");
  return C->Car;
}

Value Value::cdr() const {
  if (isNil())
    return Value::nil();
  assert(isCons() && "cdr of a non-list");
  return C->Cdr;
}

SymbolTable::SymbolTable() {
  SymT = intern("t");
  SymQuote = intern("quote");
}

const Symbol *SymbolTable::intern(std::string_view Name) {
  Shard &S = Shards[StringHash{}(Name) & (NumShards - 1)];
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Map.find(Name);
  if (It != S.Map.end())
    return It->second;
  S.Storage.emplace_back(std::string(Name));
  const Symbol *Sym = &S.Storage.back();
  S.Map.emplace(std::string(Name), Sym);
  S.Count.store(S.Map.size(), std::memory_order_release);
  return Sym;
}

Heap::Region &Heap::myRegion() {
  // Threads take regions round-robin: the parallel pipeline's handful of
  // workers each get a private region; collisions only appear past
  // NumRegions live allocating threads, and are still correct (the region
  // mutex covers them).
  static std::atomic<size_t> NextSlot{0};
  thread_local const size_t Slot =
      NextSlot.fetch_add(1, std::memory_order_relaxed);
  return Regions[Slot & (NumRegions - 1)];
}

Value Heap::cons(Value Car, Value Cdr, SourceLocation Loc) {
  Region &R = myRegion();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Conses.push_back({Car, Cdr, Loc});
  R.ConsTally.store(R.Conses.size(), std::memory_order_release);
  return Value::cons(&R.Conses.back());
}

Value Heap::string(std::string S) {
  Region &R = myRegion();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Strings.push_back({std::move(S)});
  return Value::string(&R.Strings.back());
}

Value Heap::makeRatio(int64_t Num, int64_t Den) {
  assert(Den != 0 && "ratio with zero denominator");
  if (Den < 0) {
    Num = -Num;
    Den = -Den;
  }
  int64_t G = std::gcd(Num < 0 ? -Num : Num, Den);
  if (G > 1) {
    Num /= G;
    Den /= G;
  }
  if (Den == 1)
    return Value::fixnum(Num);
  Region &R = myRegion();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Ratios.push_back({Num, Den});
  return Value::ratio(&R.Ratios.back());
}

Value Heap::list(std::initializer_list<Value> Items) {
  return list(std::vector<Value>(Items));
}

Value Heap::list(const std::vector<Value> &Items) {
  Value Result = Value::nil();
  for (size_t I = Items.size(); I > 0; --I)
    Result = cons(Items[I - 1], Result);
  return Result;
}

bool sexpr::isProperList(Value V) {
  while (V.isCons())
    V = V.cdr();
  return V.isNil();
}

size_t sexpr::listLength(Value V) {
  size_t N = 0;
  while (V.isCons()) {
    ++N;
    V = V.cdr();
  }
  assert(V.isNil() && "listLength of an improper list");
  return N;
}

std::vector<Value> sexpr::listToVector(Value V) {
  std::vector<Value> Out;
  while (V.isCons()) {
    Out.push_back(V.car());
    V = V.cdr();
  }
  assert(V.isNil() && "listToVector of an improper list");
  return Out;
}

bool sexpr::eql(Value A, Value B) {
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case ValueKind::Nil:
    return true;
  case ValueKind::Symbol:
    return A.symbol() == B.symbol();
  case ValueKind::Fixnum:
    return A.fixnum() == B.fixnum();
  case ValueKind::Flonum:
    return A.flonum() == B.flonum();
  case ValueKind::Ratio:
    return A.ratio().Num == B.ratio().Num && A.ratio().Den == B.ratio().Den;
  case ValueKind::String:
    return &A.stringValue() == &B.stringValue();
  case ValueKind::Cons:
    return A.consCell() == B.consCell();
  }
  return false;
}

bool sexpr::equal(Value A, Value B) {
  if (A.kind() != B.kind())
    return false;
  if (A.isCons())
    return equal(A.car(), B.car()) && equal(A.cdr(), B.cdr());
  if (A.isString())
    return A.stringValue() == B.stringValue();
  return eql(A, B);
}
