//===- sexpr/Numbers.cpp --------------------------------------------------===//

#include "sexpr/Numbers.h"

#include <cmath>

using namespace s1lisp;
using namespace s1lisp::sexpr;

namespace {

/// Checked int64 helpers; return false on overflow.
bool addOv(int64_t A, int64_t B, int64_t &Out) { return !__builtin_add_overflow(A, B, &Out); }
bool subOv(int64_t A, int64_t B, int64_t &Out) { return !__builtin_sub_overflow(A, B, &Out); }
bool mulOv(int64_t A, int64_t B, int64_t &Out) { return !__builtin_mul_overflow(A, B, &Out); }

struct Rat {
  int64_t Num;
  int64_t Den;
};

std::optional<Rat> asExact(Value V) {
  if (V.isFixnum())
    return Rat{V.fixnum(), 1};
  if (V.isRatio())
    return Rat{V.ratio().Num, V.ratio().Den};
  return std::nullopt;
}

/// Exact rational arithmetic with overflow checking. Division by an exact
/// zero fails.
std::optional<Value> exactArith(Heap &H, ArithOp Op, Rat A, Rat B) {
  int64_t N, D, T1, T2;
  switch (Op) {
  case ArithOp::Add:
  case ArithOp::Sub: {
    // a/b +- c/d = (a*d +- c*b) / (b*d)
    if (!mulOv(A.Num, B.Den, T1) || !mulOv(B.Num, A.Den, T2))
      return std::nullopt;
    bool Ok = Op == ArithOp::Add ? addOv(T1, T2, N) : subOv(T1, T2, N);
    if (!Ok || !mulOv(A.Den, B.Den, D))
      return std::nullopt;
    return H.makeRatio(N, D);
  }
  case ArithOp::Mul:
    if (!mulOv(A.Num, B.Num, N) || !mulOv(A.Den, B.Den, D))
      return std::nullopt;
    return H.makeRatio(N, D);
  case ArithOp::Div:
    if (B.Num == 0)
      return std::nullopt;
    if (!mulOv(A.Num, B.Den, N) || !mulOv(A.Den, B.Num, D))
      return std::nullopt;
    return H.makeRatio(N, D);
  default:
    return std::nullopt;
  }
}

int64_t floorDiv(int64_t A, int64_t B) {
  int64_t Q = A / B;
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Q;
  return Q;
}

int64_t ceilDiv(int64_t A, int64_t B) {
  int64_t Q = A / B;
  if ((A % B != 0) && ((A < 0) == (B < 0)))
    ++Q;
  return Q;
}

/// Round-half-to-even quotient, Common Lisp ROUND.
int64_t roundDiv(int64_t A, int64_t B) {
  int64_t Floor = floorDiv(A, B);
  int64_t Rem = A - Floor * B; // 0 <= Rem < |B| when B > 0
  int64_t AbsB = B < 0 ? -B : B;
  int64_t Twice = 2 * Rem;
  if (Twice < AbsB)
    return Floor;
  if (Twice > AbsB)
    return Floor + 1;
  // Exactly halfway: pick the even quotient.
  return (Floor % 2 == 0) ? Floor : Floor + 1;
}

} // namespace

std::optional<double> sexpr::toDouble(Value V) {
  switch (V.kind()) {
  case ValueKind::Fixnum:
    return static_cast<double>(V.fixnum());
  case ValueKind::Flonum:
    return V.flonum();
  case ValueKind::Ratio:
    return static_cast<double>(V.ratio().Num) / static_cast<double>(V.ratio().Den);
  default:
    return std::nullopt;
  }
}

std::optional<Value> sexpr::arith(Heap &H, ArithOp Op, Value A, Value B) {
  if (!A.isNumber() || !B.isNumber())
    return std::nullopt;

  // Integer-quotient family first: defined on any reals, result is a fixnum
  // for exact args (we only support exact args for these, matching the
  // S-1's sixteen integer-division rounding modes on integer operands).
  switch (Op) {
  case ArithOp::Floor:
  case ArithOp::Ceiling:
  case ArithOp::Truncate:
  case ArithOp::Round:
  case ArithOp::Mod:
  case ArithOp::Rem: {
    if (!A.isFixnum() || !B.isFixnum())
      return std::nullopt;
    int64_t X = A.fixnum(), Y = B.fixnum();
    if (Y == 0)
      return std::nullopt;
    switch (Op) {
    case ArithOp::Floor:
      return Value::fixnum(floorDiv(X, Y));
    case ArithOp::Ceiling:
      return Value::fixnum(ceilDiv(X, Y));
    case ArithOp::Truncate:
      return Value::fixnum(X / Y);
    case ArithOp::Round:
      return Value::fixnum(roundDiv(X, Y));
    case ArithOp::Mod:
      return Value::fixnum(X - floorDiv(X, Y) * Y);
    case ArithOp::Rem:
      return Value::fixnum(X % Y);
    default:
      break;
    }
    return std::nullopt;
  }
  case ArithOp::Max:
  case ArithOp::Min: {
    auto Less = compare(CompareOp::Lt, A, B);
    if (!Less)
      return std::nullopt;
    bool PickA = Op == ArithOp::Max ? !*Less : *Less;
    Value Picked = PickA ? A : B;
    // Flonum contagion applies to MAX/MIN results in this dialect.
    if ((A.isFlonum() || B.isFlonum()) && !Picked.isFlonum())
      return Value::flonum(*toDouble(Picked));
    return Picked;
  }
  case ArithOp::Expt: {
    // Exact base with small non-negative fixnum power stays exact.
    if (B.isFixnum() && B.fixnum() >= 0 && B.fixnum() <= 63 && A.isFixnum()) {
      int64_t Result = 1, Base = A.fixnum();
      for (int64_t I = 0; I < B.fixnum(); ++I)
        if (!mulOv(Result, Base, Result))
          return std::nullopt;
      return Value::fixnum(Result);
    }
    auto X = toDouble(A), Y = toDouble(B);
    if (!X || !Y)
      return std::nullopt;
    return Value::flonum(std::pow(*X, *Y));
  }
  default:
    break;
  }

  // Contagion: any flonum operand forces inexact arithmetic.
  if (A.isFlonum() || B.isFlonum()) {
    double X = *toDouble(A), Y = *toDouble(B);
    switch (Op) {
    case ArithOp::Add:
      return Value::flonum(X + Y);
    case ArithOp::Sub:
      return Value::flonum(X - Y);
    case ArithOp::Mul:
      return Value::flonum(X * Y);
    case ArithOp::Div:
      if (Y == 0.0)
        return std::nullopt;
      return Value::flonum(X / Y);
    default:
      return std::nullopt;
    }
  }

  auto RA = asExact(A), RB = asExact(B);
  assert(RA && RB && "exact path requires exact operands");
  return exactArith(H, Op, *RA, *RB);
}

std::optional<Value> sexpr::negate(Heap &H, Value A) {
  switch (A.kind()) {
  case ValueKind::Fixnum: {
    int64_t Out;
    if (!subOv(0, A.fixnum(), Out))
      return std::nullopt;
    return Value::fixnum(Out);
  }
  case ValueKind::Flonum:
    return Value::flonum(-A.flonum());
  case ValueKind::Ratio:
    return H.makeRatio(-A.ratio().Num, A.ratio().Den);
  default:
    return std::nullopt;
  }
}

std::optional<Value> sexpr::numAbs(Heap &H, Value A) {
  auto Neg = isMinus(A);
  if (!Neg)
    return std::nullopt;
  return *Neg ? negate(H, A) : std::optional<Value>(A);
}

std::optional<Value> sexpr::add1(Heap &H, Value A) {
  return arith(H, ArithOp::Add, A, Value::fixnum(1));
}

std::optional<Value> sexpr::sub1(Heap &H, Value A) {
  return arith(H, ArithOp::Sub, A, Value::fixnum(1));
}

std::optional<bool> sexpr::compare(CompareOp Op, Value A, Value B) {
  if (!A.isNumber() || !B.isNumber())
    return std::nullopt;

  int Sign; // -1, 0, +1 for A <=> B
  if (A.isFlonum() || B.isFlonum()) {
    double X = *toDouble(A), Y = *toDouble(B);
    if (std::isnan(X) || std::isnan(Y))
      return Op == CompareOp::Ne; // NaN is unequal to everything.
    Sign = X < Y ? -1 : (X > Y ? 1 : 0);
  } else {
    auto RA = asExact(A), RB = asExact(B);
    // a/b <=> c/d via a*d <=> c*b (exact, checked).
    int64_t L, R;
    if (!mulOv(RA->Num, RB->Den, L) || !mulOv(RB->Num, RA->Den, R)) {
      // Fall back to double comparison on overflow; good enough for folding.
      double X = *toDouble(A), Y = *toDouble(B);
      Sign = X < Y ? -1 : (X > Y ? 1 : 0);
    } else {
      Sign = L < R ? -1 : (L > R ? 1 : 0);
    }
  }

  switch (Op) {
  case CompareOp::Lt:
    return Sign < 0;
  case CompareOp::Le:
    return Sign <= 0;
  case CompareOp::Gt:
    return Sign > 0;
  case CompareOp::Ge:
    return Sign >= 0;
  case CompareOp::Eq:
    return Sign == 0;
  case CompareOp::Ne:
    return Sign != 0;
  }
  return std::nullopt;
}

std::optional<bool> sexpr::isZero(Value V) {
  if (!V.isNumber())
    return std::nullopt;
  return compare(CompareOp::Eq, V, Value::fixnum(0));
}

std::optional<bool> sexpr::isOdd(Value V) {
  if (!V.isFixnum())
    return std::nullopt;
  return (V.fixnum() % 2) != 0;
}

std::optional<bool> sexpr::isEven(Value V) {
  if (!V.isFixnum())
    return std::nullopt;
  return (V.fixnum() % 2) == 0;
}

std::optional<bool> sexpr::isMinus(Value V) {
  if (!V.isNumber())
    return std::nullopt;
  return compare(CompareOp::Lt, V, Value::fixnum(0));
}

std::optional<bool> sexpr::isPlus(Value V) {
  if (!V.isNumber())
    return std::nullopt;
  return compare(CompareOp::Gt, V, Value::fixnum(0));
}
