//===- sexpr/Reader.h - Lisp reader -----------------------------*- C++ -*-===//
///
/// \file
/// Converts program text into S-expression Values. Supports lists, dotted
/// pairs, 'quote, strings with escapes, ; line comments, #| block comments,
/// fixnums, flonums, and ratios (e.g. 2/3). Symbols are case-sensitive.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_SEXPR_READER_H
#define S1LISP_SEXPR_READER_H

#include "sexpr/Value.h"
#include "support/Diag.h"

#include <optional>
#include <string_view>
#include <vector>

namespace s1lisp {
namespace sexpr {

/// A recursive-descent reader over one source buffer.
class Reader {
public:
  /// Nesting bound for lists/quotes. The reader recurses per level, so a
  /// hostile "((((..." would otherwise exhaust the C++ stack; beyond this
  /// depth it reports "expression nesting too deep" instead.
  static constexpr unsigned MaxNestingDepth = 1000;

  Reader(SymbolTable &Symbols, Heap &H, std::string_view Source, DiagEngine &Diags)
      : Symbols(Symbols), H(H), Src(Source), Diags(Diags) {}

  /// Reads the next datum; nullopt at end of input or on a syntax error
  /// (which is reported to the DiagEngine).
  std::optional<Value> read();

  /// Reads every remaining datum. Stops at the first syntax error.
  std::vector<Value> readAll();

private:
  bool atEnd() const { return Pos >= Src.size(); }
  char peek() const { return Src[Pos]; }
  char advance();
  void skipWhitespaceAndComments();
  SourceLocation here() const { return {Line, Column}; }

  std::optional<Value> readDatum();
  std::optional<Value> readList(SourceLocation Open);
  std::optional<Value> readString(SourceLocation Open);
  Value readAtom();

  SymbolTable &Symbols;
  Heap &H;
  std::string_view Src;
  DiagEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
  unsigned Depth = 0; ///< current readDatum nesting, bounded by MaxNestingDepth
};

/// Convenience: reads all forms from \p Source.
std::vector<Value> readAll(SymbolTable &Symbols, Heap &H, std::string_view Source,
                           DiagEngine &Diags);

/// Convenience for tests: reads exactly one form; asserts on failure.
Value readOne(SymbolTable &Symbols, Heap &H, std::string_view Source);

} // namespace sexpr
} // namespace s1lisp

#endif // S1LISP_SEXPR_READER_H
