//===- sexpr/Printer.h - S-expression printing ------------------*- C++ -*-===//
///
/// \file
/// Renders Values back into read-able text. Flonums print with enough
/// digits to round-trip and always carry a decimal point or exponent, so
/// 3.0 prints as "3.0", never "3".
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_SEXPR_PRINTER_H
#define S1LISP_SEXPR_PRINTER_H

#include "sexpr/Value.h"

#include <string>

namespace s1lisp {
namespace sexpr {

/// Prints one datum.
std::string toString(Value V);

/// Prints with indentation for nested lists deeper than \p WrapColumn
/// characters; used by the back-translator transcripts.
std::string toPrettyString(Value V, unsigned WrapColumn = 72);

/// Formats a double the way the printer does; exposed for assembly listings.
std::string formatFlonum(double D);

} // namespace sexpr
} // namespace s1lisp

#endif // S1LISP_SEXPR_PRINTER_H
