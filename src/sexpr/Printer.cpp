//===- sexpr/Printer.cpp --------------------------------------------------===//

#include "sexpr/Printer.h"

#include <charconv>
#include <cmath>

using namespace s1lisp;
using namespace s1lisp::sexpr;

std::string sexpr::formatFlonum(double D) {
  if (std::isnan(D))
    return "+nan";
  if (std::isinf(D))
    return D > 0 ? "+inf" : "-inf";
  char Buf[64];
  auto [End, Ec] = std::to_chars(Buf, Buf + sizeof(Buf), D);
  (void)Ec;
  std::string S(Buf, End);
  // Guarantee a flonum spelling: needs '.' or exponent marker.
  if (S.find('.') == std::string::npos && S.find('e') == std::string::npos &&
      S.find("inf") == std::string::npos && S.find("nan") == std::string::npos)
    S += ".0";
  return S;
}

namespace {

void printTo(std::string &Out, Value V) {
  switch (V.kind()) {
  case ValueKind::Nil:
    Out += "nil";
    return;
  case ValueKind::Symbol:
    Out += V.symbol()->name();
    return;
  case ValueKind::Fixnum:
    Out += std::to_string(V.fixnum());
    return;
  case ValueKind::Flonum:
    Out += formatFlonum(V.flonum());
    return;
  case ValueKind::Ratio:
    Out += std::to_string(V.ratio().Num);
    Out += '/';
    Out += std::to_string(V.ratio().Den);
    return;
  case ValueKind::String: {
    Out += '"';
    for (char C : V.stringValue()) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    Out += '"';
    return;
  }
  case ValueKind::Cons: {
    Out += '(';
    Value Cur = V;
    bool First = true;
    while (Cur.isCons()) {
      if (!First)
        Out += ' ';
      First = false;
      printTo(Out, Cur.car());
      Cur = Cur.cdr();
    }
    if (!Cur.isNil()) {
      Out += " . ";
      printTo(Out, Cur);
    }
    Out += ')';
    return;
  }
  }
}

void prettyTo(std::string &Out, Value V, unsigned Indent, unsigned WrapColumn) {
  std::string Flat = sexpr::toString(V);
  if (Flat.size() + Indent <= WrapColumn || V.isAtom()) {
    Out += Flat;
    return;
  }
  // Print "(head item...)" with items aligned under the head when the flat
  // form is too wide.
  Out += '(';
  Value Head = V.car();
  std::string HeadText = sexpr::toString(Head);
  Out += HeadText;
  unsigned ChildIndent = Indent + 2;
  Value Cur = V.cdr();
  bool HeadIsAtom = Head.isAtom();
  bool First = true;
  while (Cur.isCons()) {
    if (First && HeadIsAtom && HeadText.size() <= 8) {
      Out += ' ';
      ChildIndent = Indent + 1 + static_cast<unsigned>(HeadText.size()) + 1;
    } else {
      Out += '\n';
      Out.append(ChildIndent, ' ');
    }
    prettyTo(Out, Cur.car(), ChildIndent, WrapColumn);
    First = false;
    Cur = Cur.cdr();
  }
  if (!Cur.isNil()) {
    Out += " . ";
    printTo(Out, Cur);
  }
  Out += ')';
}

} // namespace

std::string sexpr::toString(Value V) {
  std::string Out;
  printTo(Out, V);
  return Out;
}

std::string sexpr::toPrettyString(Value V, unsigned WrapColumn) {
  std::string Out;
  prettyTo(Out, V, 0, WrapColumn);
  return Out;
}
