//===- sexpr/Numbers.h - Numeric tower arithmetic ---------------*- C++ -*-===//
///
/// \file
/// Generic arithmetic over the fixnum / ratio / flonum tower with the usual
/// contagion rules (any flonum operand makes the result a flonum; fixnum
/// division yields an exact ratio). Shared by the interpreter, the constant
/// folder (the paper's compile-time expression evaluation, §5), and the VM's
/// generic-arithmetic builtins.
///
/// All entry points return false / nullopt instead of trapping on domain
/// errors (division by zero, overflow in exact arithmetic, wrong types), so
/// the constant folder can simply decline to fold.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_SEXPR_NUMBERS_H
#define S1LISP_SEXPR_NUMBERS_H

#include "sexpr/Value.h"

#include <optional>

namespace s1lisp {
namespace sexpr {

/// Binary operations the tower supports.
enum class ArithOp { Add, Sub, Mul, Div, Floor, Ceiling, Truncate, Round, Mod, Rem, Max, Min, Expt };

/// Numeric comparisons.
enum class CompareOp { Lt, Le, Gt, Ge, Eq, Ne };

/// Applies \p Op to two numbers. Returns nullopt on non-numbers, division
/// by zero, or exact-arithmetic overflow.
std::optional<Value> arith(Heap &H, ArithOp Op, Value A, Value B);

/// Unary negation.
std::optional<Value> negate(Heap &H, Value A);

/// abs.
std::optional<Value> numAbs(Heap &H, Value A);

/// 1+ / 1-.
std::optional<Value> add1(Heap &H, Value A);
std::optional<Value> sub1(Heap &H, Value A);

/// Numeric comparison; nullopt on non-numbers.
std::optional<bool> compare(CompareOp Op, Value A, Value B);

/// Converts any number to double.
std::optional<double> toDouble(Value V);

/// zerop / oddp / evenp / minusp / plusp; nullopt when the predicate does
/// not apply to the value's type.
std::optional<bool> isZero(Value V);
std::optional<bool> isOdd(Value V);
std::optional<bool> isEven(Value V);
std::optional<bool> isMinus(Value V);
std::optional<bool> isPlus(Value V);

} // namespace sexpr
} // namespace s1lisp

#endif // S1LISP_SEXPR_NUMBERS_H
