//===- sexpr/Value.h - Lisp S-expression values -----------------*- C++ -*-===//
///
/// \file
/// The S-expression data model used by the reader, the compiler's constant
/// folder, and the baseline interpreter's data world: symbols, the numeric
/// tower (fixnum / ratio / flonum), strings, and conses.
///
/// A Value is a small tagged union passed by value. Conses, strings and
/// ratios live in a Heap; symbols are interned in a SymbolTable. Nothing is
/// freed until the owning Heap/SymbolTable dies, which matches the lifetime
/// of one compilation session.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_SEXPR_VALUE_H
#define S1LISP_SEXPR_VALUE_H

#include "support/SourceLocation.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace s1lisp {
namespace sexpr {

class Value;

/// An interned symbol. Pointer identity is symbol identity.
class Symbol {
public:
  explicit Symbol(std::string Name) : Name(std::move(Name)) {}
  const std::string &name() const { return Name; }

private:
  std::string Name;
};

/// A mutable cons cell. \c Loc records where the reader saw the open paren,
/// so later phases can attach diagnostics to source positions.
struct Cons;

/// Heap-allocated string payload.
struct StringObj {
  std::string Str;
};

/// An exact rational. Always normalized: Den > 0, gcd(|Num|, Den) == 1,
/// and Den != 1 (a denominator of one would have been a fixnum).
struct Ratio {
  int64_t Num = 0;
  int64_t Den = 1;
};

/// Discriminator for Value.
enum class ValueKind : uint8_t {
  Nil,
  Symbol,
  Fixnum,
  Flonum,
  Ratio,
  String,
  Cons,
};

/// A Lisp datum: 16 bytes, copied freely.
class Value {
public:
  Value() : Kind(ValueKind::Nil), Fix(0) {}

  static Value nil() { return Value(); }
  static Value fixnum(int64_t N) {
    Value V;
    V.Kind = ValueKind::Fixnum;
    V.Fix = N;
    return V;
  }
  static Value flonum(double D) {
    Value V;
    V.Kind = ValueKind::Flonum;
    V.Flo = D;
    return V;
  }
  static Value symbol(const Symbol *S) {
    assert(S && "null symbol");
    Value V;
    V.Kind = ValueKind::Symbol;
    V.Sym = S;
    return V;
  }
  static Value string(const StringObj *S) {
    Value V;
    V.Kind = ValueKind::String;
    V.Str = S;
    return V;
  }
  static Value ratio(const Ratio *R) {
    Value V;
    V.Kind = ValueKind::Ratio;
    V.Rat = R;
    return V;
  }
  static Value cons(Cons *C) {
    Value V;
    V.Kind = ValueKind::Cons;
    V.C = C;
    return V;
  }

  ValueKind kind() const { return Kind; }
  bool isNil() const { return Kind == ValueKind::Nil; }
  bool isSymbol() const { return Kind == ValueKind::Symbol; }
  bool isFixnum() const { return Kind == ValueKind::Fixnum; }
  bool isFlonum() const { return Kind == ValueKind::Flonum; }
  bool isRatio() const { return Kind == ValueKind::Ratio; }
  bool isString() const { return Kind == ValueKind::String; }
  bool isCons() const { return Kind == ValueKind::Cons; }
  bool isNumber() const { return isFixnum() || isFlonum() || isRatio(); }
  /// An atom is anything that is not a cons (NIL included).
  bool isAtom() const { return !isCons(); }

  int64_t fixnum() const {
    assert(isFixnum() && "not a fixnum");
    return Fix;
  }
  double flonum() const {
    assert(isFlonum() && "not a flonum");
    return Flo;
  }
  const Symbol *symbol() const {
    assert(isSymbol() && "not a symbol");
    return Sym;
  }
  const Ratio &ratio() const {
    assert(isRatio() && "not a ratio");
    return *Rat;
  }
  const std::string &stringValue() const;
  Cons *consCell() const {
    assert(isCons() && "not a cons");
    return C;
  }

  /// car/cdr with the Lisp convention (car nil) = (cdr nil) = nil.
  Value car() const;
  Value cdr() const;

  /// True for anything but NIL (Lisp generalized boolean).
  bool isTrue() const { return !isNil(); }

private:
  ValueKind Kind;
  union {
    int64_t Fix;
    double Flo;
    const Symbol *Sym;
    const StringObj *Str;
    const Ratio *Rat;
    Cons *C;
  };
};

struct Cons {
  Value Car;
  Value Cdr;
  SourceLocation Loc;
};

/// Interns symbols; owns their storage. Also pre-interns the handful of
/// symbols the compiler needs constantly (T, NIL-as-symbol is not used;
/// NIL the datum is ValueKind::Nil). Interning is thread-safe (interned
/// pointers are stable, so readers need no lock) — the parallel driver
/// optimizes functions of one module concurrently, and the optimizer
/// interns rewritten call names.
///
/// The table is sharded by name hash: concurrent interns of different
/// names take different locks, so pipeline workers stop convoying on one
/// global mutex. Identity stays global (one Symbol per name, whichever
/// shard it hashes to), and nothing enumerates the table, so the shard a
/// symbol lands in — and the order shards fill in — is unobservable:
/// compiled units refer to symbols by name with unit-local ordinals, and
/// the serial link assigns every final ordinal/address in first-use unit
/// order (codegen::linkUnits), keeping output bit-identical for any job
/// count.
class SymbolTable {
public:
  SymbolTable();
  SymbolTable(const SymbolTable &) = delete;
  SymbolTable &operator=(const SymbolTable &) = delete;

  /// Returns the unique Symbol for \p Name, creating it on first use.
  const Symbol *intern(std::string_view Name);

  /// The symbol T (canonical true).
  const Symbol *t() const { return SymT; }
  const Symbol *quote() const { return SymQuote; }

  /// Total symbols interned so far. Aggregates per-shard counters without
  /// taking any shard lock, so it never blocks (or is blocked by)
  /// concurrent intern calls on the hot path.
  size_t size() const {
    size_t N = 0;
    for (const Shard &S : Shards)
      N += S.Count.load(std::memory_order_acquire);
    return N;
  }

private:
  /// Heterogeneous string hashing so lookups take string_view without
  /// materializing a std::string per probe.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view S) const {
      return std::hash<std::string_view>{}(S);
    }
    size_t operator()(const std::string &S) const {
      return std::hash<std::string_view>{}(S);
    }
  };

  static constexpr size_t NumShards = 16; ///< power of two
  struct Shard {
    mutable std::mutex Mu;
    std::unordered_map<std::string, const Symbol *, StringHash,
                       std::equal_to<>>
        Map;
    std::deque<Symbol> Storage;
    /// Map.size(), published after each insert for lock-free size().
    std::atomic<size_t> Count{0};
  };
  Shard Shards[NumShards];
  const Symbol *SymT;
  const Symbol *SymQuote;
};

/// Allocates conses, strings, and ratios. Storage is stable (deque) and is
/// released only when the Heap dies. Allocation is thread-safe for the same
/// reason interning is: the parallel driver's constant folder allocates
/// ratios (and the CSE/backtranslate paths conses) from the module heap on
/// worker threads. Reads of allocated cells need no lock.
///
/// Internally the heap is a set of regions with thread affinity: each
/// allocating thread is assigned a region round-robin (cached
/// thread-locally), so pipeline workers allocate from effectively private
/// regions and never contend on a global allocation mutex. The per-region
/// mutex stays — a rare slot collision, or a reader racing size
/// accounting, must remain safe — but on the fan-out paths it is
/// uncontended. Regions are plain storage inside the one heap; cells
/// "fold into the module heap" by construction, published to the serial
/// link by the parallelFor join, so no merge step exists to get wrong.
class Heap {
public:
  Heap() = default;
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  Value cons(Value Car, Value Cdr, SourceLocation Loc = SourceLocation());
  Value string(std::string S);
  /// Makes an exact rational; normalizes, and returns a fixnum when the
  /// normalized denominator is 1. \p Den must be nonzero.
  Value makeRatio(int64_t Num, int64_t Den);

  /// Builds a proper list from \p Items.
  Value list(std::initializer_list<Value> Items);
  Value list(const std::vector<Value> &Items);

  /// Total cons cells allocated. Sums per-region counters without taking
  /// any region lock, so it never blocks concurrent allocation.
  size_t consCount() const {
    size_t N = 0;
    for (const Region &R : Regions)
      N += R.ConsTally.load(std::memory_order_acquire);
    return N;
  }

private:
  static constexpr size_t NumRegions = 16; ///< power of two
  struct Region {
    mutable std::mutex Mu;
    std::deque<Cons> Conses;
    std::deque<StringObj> Strings;
    std::deque<Ratio> Ratios;
    /// Conses.size(), published after each insert for lock-free counts.
    std::atomic<size_t> ConsTally{0};
  };

  /// The calling thread's region (stable for the thread's lifetime).
  Region &myRegion();

  Region Regions[NumRegions];
};

/// True if \p V is a proper (NIL-terminated, acyclic within 2^32 cells) list.
bool isProperList(Value V);

/// The length of a proper list; asserts on improper lists.
size_t listLength(Value V);

/// Flattens a proper list into a vector; asserts on improper lists.
std::vector<Value> listToVector(Value V);

/// Structural equality: EQL on atoms (numbers compare by exact value and
/// type; symbols by identity; strings by contents) and recursive on conses.
bool equal(Value A, Value B);

/// Identity-or-number equality, the paper's EQL: symbols/conses by pointer,
/// numbers by type+value, strings by pointer.
bool eql(Value A, Value B);

} // namespace sexpr
} // namespace s1lisp

#endif // S1LISP_SEXPR_VALUE_H
