//===- sexpr/Value.h - Lisp S-expression values -----------------*- C++ -*-===//
///
/// \file
/// The S-expression data model used by the reader, the compiler's constant
/// folder, and the baseline interpreter's data world: symbols, the numeric
/// tower (fixnum / ratio / flonum), strings, and conses.
///
/// A Value is a small tagged union passed by value. Conses, strings and
/// ratios live in a Heap; symbols are interned in a SymbolTable. Symbols
/// are immortal (pointer identity is symbol identity for the lifetime of
/// the table), but heap cells are collectible: a Heap is a generational
/// collector with a bump-allocated nursery per thread-affine region,
/// copying promotion into tenured chunks, and a mark-sweep fallback for
/// the tenured generation. Collection is off by default — a heap with no
/// GC schedule configured behaves exactly like the old grow-only
/// allocator — and is enabled per-heap with setGcEvery()/setHeapBudget().
///
/// Because promotion moves cells, a GC-enabled heap requires the precise
/// root discipline below (see "Root discipline"); GC-enabled heaps are
/// single-mutator.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_SEXPR_VALUE_H
#define S1LISP_SEXPR_VALUE_H

#include "support/SourceLocation.h"

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace s1lisp {
namespace sexpr {

class Value;

/// An interned symbol. Pointer identity is symbol identity.
class Symbol {
public:
  explicit Symbol(std::string Name) : Name(std::move(Name)) {}
  const std::string &name() const { return Name; }

private:
  std::string Name;
};

/// A mutable cons cell. \c Loc records where the reader saw the open paren,
/// so later phases can attach diagnostics to source positions.
struct Cons;

/// Heap-allocated string payload.
struct StringObj {
  std::string Str;
};

/// An exact rational. Always normalized: Den > 0, gcd(|Num|, Den) == 1,
/// and Den != 1 (a denominator of one would have been a fixnum).
struct Ratio {
  int64_t Num = 0;
  int64_t Den = 1;
};

/// Discriminator for Value.
enum class ValueKind : uint8_t {
  Nil,
  Symbol,
  Fixnum,
  Flonum,
  Ratio,
  String,
  Cons,
};

/// A Lisp datum: 16 bytes, copied freely.
class Value {
public:
  Value() : Kind(ValueKind::Nil), Fix(0) {}

  static Value nil() { return Value(); }
  static Value fixnum(int64_t N) {
    Value V;
    V.Kind = ValueKind::Fixnum;
    V.Fix = N;
    return V;
  }
  static Value flonum(double D) {
    Value V;
    V.Kind = ValueKind::Flonum;
    V.Flo = D;
    return V;
  }
  static Value symbol(const Symbol *S) {
    assert(S && "null symbol");
    Value V;
    V.Kind = ValueKind::Symbol;
    V.Sym = S;
    return V;
  }
  static Value string(const StringObj *S) {
    Value V;
    V.Kind = ValueKind::String;
    V.Str = S;
    return V;
  }
  static Value ratio(const Ratio *R) {
    Value V;
    V.Kind = ValueKind::Ratio;
    V.Rat = R;
    return V;
  }
  static Value cons(Cons *C) {
    Value V;
    V.Kind = ValueKind::Cons;
    V.C = C;
    return V;
  }

  ValueKind kind() const { return Kind; }
  bool isNil() const { return Kind == ValueKind::Nil; }
  bool isSymbol() const { return Kind == ValueKind::Symbol; }
  bool isFixnum() const { return Kind == ValueKind::Fixnum; }
  bool isFlonum() const { return Kind == ValueKind::Flonum; }
  bool isRatio() const { return Kind == ValueKind::Ratio; }
  bool isString() const { return Kind == ValueKind::String; }
  bool isCons() const { return Kind == ValueKind::Cons; }
  bool isNumber() const { return isFixnum() || isFlonum() || isRatio(); }
  /// An atom is anything that is not a cons (NIL included).
  bool isAtom() const { return !isCons(); }

  int64_t fixnum() const {
    assert(isFixnum() && "not a fixnum");
    return Fix;
  }
  double flonum() const {
    assert(isFlonum() && "not a flonum");
    return Flo;
  }
  const Symbol *symbol() const {
    assert(isSymbol() && "not a symbol");
    return Sym;
  }
  const Ratio &ratio() const {
    assert(isRatio() && "not a ratio");
    return *Rat;
  }
  const std::string &stringValue() const;
  Cons *consCell() const {
    assert(isCons() && "not a cons");
    return C;
  }

  /// car/cdr with the Lisp convention (car nil) = (cdr nil) = nil.
  Value car() const;
  Value cdr() const;

  /// True for anything but NIL (Lisp generalized boolean).
  bool isTrue() const { return !isNil(); }

private:
  /// The collector reads and rewrites the payload pointers in place when
  /// promotion moves a cell.
  friend class Heap;

  ValueKind Kind;
  union {
    int64_t Fix;
    double Flo;
    const Symbol *Sym;
    const StringObj *Str;
    const Ratio *Rat;
    Cons *C;
  };
};

struct Cons {
  Value Car;
  Value Cdr;
  SourceLocation Loc;
};

/// Interns symbols; owns their storage. Also pre-interns the handful of
/// symbols the compiler needs constantly (T, NIL-as-symbol is not used;
/// NIL the datum is ValueKind::Nil). Interning is thread-safe (interned
/// pointers are stable, so readers need no lock) — the parallel driver
/// optimizes functions of one module concurrently, and the optimizer
/// interns rewritten call names.
///
/// The table is sharded by name hash: concurrent interns of different
/// names take different locks, so pipeline workers stop convoying on one
/// global mutex. Identity stays global (one Symbol per name, whichever
/// shard it hashes to), and nothing enumerates the table, so the shard a
/// symbol lands in — and the order shards fill in — is unobservable:
/// compiled units refer to symbols by name with unit-local ordinals, and
/// the serial link assigns every final ordinal/address in first-use unit
/// order (codegen::linkUnits), keeping output bit-identical for any job
/// count.
class SymbolTable {
public:
  SymbolTable();
  SymbolTable(const SymbolTable &) = delete;
  SymbolTable &operator=(const SymbolTable &) = delete;

  /// Returns the unique Symbol for \p Name, creating it on first use.
  const Symbol *intern(std::string_view Name);

  /// The symbol T (canonical true).
  const Symbol *t() const { return SymT; }
  const Symbol *quote() const { return SymQuote; }

  /// Total symbols interned so far. Aggregates per-shard counters without
  /// taking any shard lock, so it never blocks (or is blocked by)
  /// concurrent intern calls on the hot path.
  size_t size() const {
    size_t N = 0;
    for (const Shard &S : Shards)
      N += S.Count.load(std::memory_order_acquire);
    return N;
  }

private:
  /// Heterogeneous string hashing so lookups take string_view without
  /// materializing a std::string per probe.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view S) const {
      return std::hash<std::string_view>{}(S);
    }
    size_t operator()(const std::string &S) const {
      return std::hash<std::string_view>{}(S);
    }
  };

  static constexpr size_t NumShards = 16; ///< power of two
  struct Shard {
    mutable std::mutex Mu;
    std::unordered_map<std::string, const Symbol *, StringHash,
                       std::equal_to<>>
        Map;
    std::deque<Symbol> Storage;
    /// Map.size(), published after each insert for lock-free size().
    std::atomic<size_t> Count{0};
  };
  Shard Shards[NumShards];
  const Symbol *SymT;
  const Symbol *SymQuote;
};

/// Enumerates the Value slots a heap client keeps live across
/// collections. The interpreter, the VM's decode path, and the driver's
/// constant pools each implement this; the collector calls \c visitRoots
/// with a visitor it applies to every root slot, rewriting moved cells in
/// place.
class RootProvider {
public:
  virtual ~RootProvider() = default;
  virtual void visitRoots(const std::function<void(Value &)> &Visit) = 0;
};

/// Counters one Heap's collector maintains. Kept per-heap (sexpr sits
/// below the stats registry in the library layering); the interpreter,
/// the VM, and the tools publish them into src/stats.
struct GcStats {
  uint64_t Collections = 0;      ///< minor (nursery) collections
  uint64_t MajorCollections = 0; ///< tenured mark-sweep passes
  uint64_t CellsPromoted = 0;
  uint64_t BytesPromoted = 0;
  uint64_t CellsSwept = 0;
  uint64_t BytesSwept = 0;
  uint64_t PauseNsTotal = 0;
  uint64_t PauseNsMax = 0;
  /// Pause histogram: <10us, <100us, <1ms, >=1ms.
  std::array<uint64_t, 4> PauseBuckets{};
};

/// Allocates conses, strings, and ratios — and, when a GC schedule is
/// configured, collects them.
///
/// Storage is slot-chunked with thread affinity: each allocating thread
/// is assigned a region round-robin (cached thread-locally), so pipeline
/// workers allocate from effectively private regions and never contend on
/// a global allocation mutex. New cells are bump-allocated into the
/// region's nursery chunks; a collection evacuates every reachable
/// nursery cell into the region's tenured chunks (copying promotion with
/// forwarding pointers), resets the nursery for reuse, and — when the
/// tenured generation exceeds the configured budget — runs a mark-sweep
/// pass over tenured chunks, returning dead slots to per-region free
/// lists.
///
/// Root discipline (GC-enabled heaps only): collections move cells, so
/// every Value held live across an allocation must be reachable from a
/// registered RootProvider, from the shadow stack (pushRoot/popRoots /
/// RootScope), or be one of cons()'s own arguments (which cons roots
/// itself). Mutating Car/Cdr of an already-allocated cons must be
/// followed by writeBarrier() so old-to-young and cross-heap pointers
/// stay visible to the collector. Heaps with GC enabled are
/// single-mutator: the parallel compiler pipeline always runs with GC off
/// (the default), where allocation is thread-safe exactly as before and
/// no cell ever moves.
class Heap {
public:
  Heap();
  ~Heap();
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  Value cons(Value Car, Value Cdr, SourceLocation Loc = SourceLocation());
  Value string(std::string S);
  /// Makes an exact rational; normalizes, and returns a fixnum when the
  /// normalized denominator is 1. \p Den must be nonzero.
  Value makeRatio(int64_t Num, int64_t Den);

  /// Builds a proper list from \p Items.
  Value list(std::initializer_list<Value> Items);
  Value list(const std::vector<Value> &Items);

  /// Total cons cells allocated (monotone; GC does not roll it back).
  /// Sums per-region counters without taking any region lock, so it
  /// never blocks concurrent allocation.
  size_t consCount() const {
    size_t N = 0;
    for (const Region &R : Regions)
      N += R.ConsTally.load(std::memory_order_acquire);
    return N;
  }

  //===--- GC configuration ----------------------------------------------===//

  /// Collect after every \p N cons allocations (0 disables the schedule).
  /// Only cons() can trigger a collection; string()/makeRatio() allocate
  /// without ever collecting, so arithmetic loops may hold intermediate
  /// values across them without rooting.
  void setGcEvery(uint64_t N) { GcEvery = N; }
  uint64_t gcEvery() const { return GcEvery; }

  /// Sets the tenured-generation budget in bytes. When set, nursery
  /// pressure also triggers minor collections, and a minor collection
  /// that leaves the tenured generation over budget runs the mark-sweep
  /// fallback. 0 (default) means unbounded.
  void setHeapBudget(size_t Bytes) { BudgetBytes = Bytes; }
  size_t heapBudget() const { return BudgetBytes; }

  bool gcEnabled() const { return GcEvery != 0 || BudgetBytes != 0; }

  /// Forces a full collection now: minor evacuation, then the tenured
  /// mark-sweep regardless of budget.
  void collect();

  //===--- Roots ----------------------------------------------------------===//

  void registerRootProvider(RootProvider *P);
  void unregisterRootProvider(RootProvider *P);

  /// Shadow stack for transient roots: the pointed-to slots are updated
  /// in place when a collection moves their referents.
  void pushRoot(Value *Slot) { ShadowStack.push_back(Slot); }
  void popRoots(size_t N) {
    assert(N <= ShadowStack.size());
    ShadowStack.resize(ShadowStack.size() - N);
  }

  /// RAII shadow-stack frame.
  class RootScope {
  public:
    explicit RootScope(Heap &H) : H(H) {}
    ~RootScope() { H.popRoots(N); }
    RootScope(const RootScope &) = delete;
    RootScope &operator=(const RootScope &) = delete;
    void add(Value *Slot) {
      H.pushRoot(Slot);
      ++N;
    }

  private:
    Heap &H;
    size_t N = 0;
  };

  /// Records that \p C's Car/Cdr were just mutated. Own tenured cells land
  /// in the (per-minor-GC) remembered set; cells owned by *another* heap
  /// land in the persistent cross-heap set — a mutated foreign cell (a
  /// module literal pointing into a runtime heap, say) is an external
  /// root that must survive major collections too.
  void writeBarrier(Cons *C);

  //===--- Verification and stats ----------------------------------------===//

  /// Debug walk over the whole heap: every cell reachable from the
  /// registered roots must lie in a live region with no surviving
  /// forwarding pointer, and no live nursery cell may point at freed
  /// tenured space. Returns false and fills \p Err on the first
  /// violation.
  bool verify(std::string *Err = nullptr);

  /// When set, every collection re-verifies the heap and aborts (with a
  /// message on stderr) on any violation — the fuzz GC schedules run
  /// with this on.
  void setVerifyAfterGc(bool On) { VerifyAfterGc = On; }

  const GcStats &gcStats() const { return Stats; }

  /// Cells currently live in the tenured generation (post-sweep view;
  /// promoted minus swept).
  size_t tenuredCells() const { return TenuredLive; }

private:
  enum class CellKind : uint8_t { ConsCell, StringCell, RatioCell };

  /// Per-cell metadata preceding every payload. \c Forward doubles as the
  /// broken-heart pointer during evacuation; it must be null whenever the
  /// mutator runs.
  struct CellHeader {
    CellKind Kind;
    uint8_t Mark = 0;
    uint8_t Free = 0;
    uint8_t Pad = 0;
    void *Forward = nullptr;
  };

  static constexpr size_t PayloadMax =
      sizeof(Cons) > sizeof(StringObj)
          ? (sizeof(Cons) > sizeof(Ratio) ? sizeof(Cons) : sizeof(Ratio))
          : (sizeof(StringObj) > sizeof(Ratio) ? sizeof(StringObj)
                                               : sizeof(Ratio));

  /// One uniform allocation slot: header plus payload storage big enough
  /// for any cell kind. Uniform slots keep chunk walking, forwarding, and
  /// free-list reuse kind-agnostic.
  struct Slot {
    CellHeader H;
    alignas(alignof(std::max_align_t)) unsigned char Payload[PayloadMax];
  };

  struct Chunk {
    std::unique_ptr<Slot[]> Slots;
    size_t Cap = 0;
    size_t Used = 0;
    bool Nursery = true;
    size_t RegionIdx = 0;
  };

  static constexpr size_t NumRegions = 16;     ///< power of two
  static constexpr size_t ChunkSlots = 1024;   ///< slots per chunk

  struct Region {
    mutable std::mutex Mu;
    /// Bump-allocated nursery chunks; ActiveNursery indexes the chunk
    /// currently bumping. Reset (not freed) by every minor collection.
    std::vector<std::unique_ptr<Chunk>> Nursery;
    size_t ActiveNursery = 0;
    /// Promotion target chunks plus the free list mark-sweep refills.
    std::vector<std::unique_ptr<Chunk>> Tenured;
    std::vector<Slot *> FreeList;
    /// Monotone cons-allocation count, published for lock-free consCount().
    std::atomic<size_t> ConsTally{0};
  };

  struct RangeEntry {
    const Slot *Begin;
    const Slot *End;
    Chunk *Ch;
  };

  /// The calling thread's region (stable for the thread's lifetime).
  Region &myRegion();

  static Slot *slotOf(void *Payload);
  void *payloadOf(Slot *S) const { return S->Payload; }

  Slot *nurseryAlloc(Region &R, CellKind K);
  Slot *tenuredAlloc(size_t RegionIdx, CellKind K);
  void registerChunk(Chunk *Ch);
  /// The owning chunk, or null for pointers into other heaps (or no heap).
  Chunk *owningChunk(const void *Payload);

  void maybeCollect(Value *Car, Value *Cdr);
  void collectImpl(std::initializer_list<Value *> Extra, bool ForceMajor);
  void forEachRootSlot(const std::function<void(Value &)> &F,
                       std::initializer_list<Value *> Extra);
  /// Evacuates \p V's referent out of the nursery if it is ours and still
  /// there, rewriting \p V; appends newly copied conses to \p ScanList.
  void evacuate(Value &V, std::vector<Cons *> &ScanList);
  void majorMarkSweep(std::initializer_list<Value *> Extra);
  void markValue(Value V, std::vector<Cons *> &Work);
  void destroyPayload(Slot *S);

  Region Regions[NumRegions];

  mutable std::mutex RangeMu;
  std::vector<RangeEntry> Ranges; ///< sorted by Begin

  uint64_t GcEvery = 0;
  size_t BudgetBytes = 0;
  uint64_t AllocSinceGc = 0;
  std::atomic<size_t> NurseryLive{0}; ///< live (un-reset) nursery slots
  size_t TenuredLive = 0;             ///< tenured slots in use
  bool VerifyAfterGc = false;
  bool InGc = false;

  std::vector<Value *> ShadowStack;
  std::vector<RootProvider *> Providers;
  std::unordered_set<Cons *> RememberedOwn; ///< own tenured, maybe old->young
  std::unordered_set<Cons *> RememberedForeign; ///< foreign cells aimed here

  GcStats Stats;
};

/// True if \p V is a proper (NIL-terminated, acyclic within 2^32 cells) list.
bool isProperList(Value V);

/// The length of a proper list; asserts on improper lists.
size_t listLength(Value V);

/// Flattens a proper list into a vector; asserts on improper lists.
std::vector<Value> listToVector(Value V);

/// Structural equality: EQL on atoms (numbers compare by exact value and
/// type; symbols by identity; strings by contents) and recursive on conses.
bool equal(Value A, Value B);

/// Identity-or-number equality, the paper's EQL: symbols/conses by pointer,
/// numbers by type+value, strings by pointer.
bool eql(Value A, Value B);

} // namespace sexpr
} // namespace s1lisp

#endif // S1LISP_SEXPR_VALUE_H
