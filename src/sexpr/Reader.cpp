//===- sexpr/Reader.cpp ---------------------------------------------------===//

#include "sexpr/Reader.h"

#include <cerrno>
#include <cstdlib>
#include <string>

using namespace s1lisp;
using namespace s1lisp::sexpr;

namespace {

bool isDelimiter(char C) {
  return C == '(' || C == ')' || C == '\'' || C == '"' || C == ';' || C == ' ' ||
         C == '\t' || C == '\n' || C == '\r';
}

/// Classifies an atom's spelling: fixnum, ratio, flonum, or symbol.
enum class AtomClass { Fixnum, Ratio, Flonum, Symbol };

AtomClass classifyAtom(std::string_view S) {
  size_t I = 0;
  if (I < S.size() && (S[I] == '+' || S[I] == '-'))
    ++I;
  if (I == S.size())
    return AtomClass::Symbol; // bare "+" or "-"
  size_t Digits = 0;
  while (I < S.size() && isdigit(static_cast<unsigned char>(S[I]))) {
    ++I;
    ++Digits;
  }
  if (Digits == 0) {
    // Allow ".5" style flonums.
    if (I < S.size() && S[I] == '.' && I + 1 < S.size() &&
        isdigit(static_cast<unsigned char>(S[I + 1])))
      return AtomClass::Flonum;
    return AtomClass::Symbol;
  }
  if (I == S.size())
    return AtomClass::Fixnum;
  if (S[I] == '/') {
    ++I;
    size_t DenDigits = 0;
    while (I < S.size() && isdigit(static_cast<unsigned char>(S[I]))) {
      ++I;
      ++DenDigits;
    }
    return (DenDigits > 0 && I == S.size()) ? AtomClass::Ratio : AtomClass::Symbol;
  }
  if (S[I] == '.' || S[I] == 'e' || S[I] == 'E') {
    // Validate the float tail: [.digits][(e|E)[+-]digits]
    if (S[I] == '.') {
      ++I;
      while (I < S.size() && isdigit(static_cast<unsigned char>(S[I])))
        ++I;
    }
    if (I < S.size() && (S[I] == 'e' || S[I] == 'E')) {
      ++I;
      if (I < S.size() && (S[I] == '+' || S[I] == '-'))
        ++I;
      size_t ExpDigits = 0;
      while (I < S.size() && isdigit(static_cast<unsigned char>(S[I]))) {
        ++I;
        ++ExpDigits;
      }
      if (ExpDigits == 0)
        return AtomClass::Symbol;
    }
    return I == S.size() ? AtomClass::Flonum : AtomClass::Symbol;
  }
  return AtomClass::Symbol;
}

} // namespace

char Reader::advance() {
  char C = Src[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Reader::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\n' || C == '\r') {
      advance();
      continue;
    }
    if (C == ';') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '#' && Pos + 1 < Src.size() && Src[Pos + 1] == '|') {
      SourceLocation Open = here();
      advance();
      advance();
      unsigned Depth = 1;
      while (!atEnd() && Depth > 0) {
        char D = advance();
        if (D == '#' && !atEnd() && peek() == '|') {
          advance();
          ++Depth;
        } else if (D == '|' && !atEnd() && peek() == '#') {
          advance();
          --Depth;
        }
      }
      if (Depth > 0)
        Diags.error(Open, "unterminated block comment");
      continue;
    }
    return;
  }
}

std::optional<Value> Reader::read() {
  skipWhitespaceAndComments();
  if (atEnd())
    return std::nullopt;
  return readDatum();
}

std::vector<Value> Reader::readAll() {
  std::vector<Value> Out;
  while (true) {
    size_t Before = Diags.diagnostics().size();
    auto V = read();
    if (!V || Diags.diagnostics().size() != Before)
      break;
    Out.push_back(*V);
  }
  return Out;
}

std::optional<Value> Reader::readDatum() {
  skipWhitespaceAndComments();
  if (atEnd()) {
    Diags.error(here(), "unexpected end of input");
    return std::nullopt;
  }
  SourceLocation Loc = here();
  char C = peek();
  if (C == '(') {
    if (Depth >= MaxNestingDepth) {
      Diags.error(Loc, "expression nesting too deep");
      return std::nullopt;
    }
    advance();
    ++Depth;
    auto L = readList(Loc);
    --Depth;
    return L;
  }
  if (C == ')') {
    Diags.error(Loc, "unmatched ')'");
    advance();
    return std::nullopt;
  }
  if (C == '\'') {
    if (Depth >= MaxNestingDepth) {
      Diags.error(Loc, "expression nesting too deep");
      return std::nullopt;
    }
    advance();
    ++Depth;
    auto Quoted = readDatum();
    --Depth;
    if (!Quoted)
      return std::nullopt;
    return H.cons(Value::symbol(Symbols.quote()), H.cons(*Quoted, Value::nil(), Loc), Loc);
  }
  if (C == '"') {
    advance();
    return readString(Loc);
  }
  return readAtom();
}

std::optional<Value> Reader::readList(SourceLocation Open) {
  std::vector<Value> Items;
  Value Tail = Value::nil();
  while (true) {
    skipWhitespaceAndComments();
    if (atEnd()) {
      Diags.error(Open, "unterminated list");
      return std::nullopt;
    }
    if (peek() == ')') {
      advance();
      break;
    }
    // Dotted tail: a lone "." followed by exactly one datum and ')'.
    if (peek() == '.' &&
        (Pos + 1 >= Src.size() || isDelimiter(Src[Pos + 1]))) {
      SourceLocation DotLoc = here();
      advance();
      if (Items.empty()) {
        Diags.error(DotLoc, "dotted pair with no car");
        return std::nullopt;
      }
      auto TailDatum = readDatum();
      if (!TailDatum)
        return std::nullopt;
      Tail = *TailDatum;
      skipWhitespaceAndComments();
      if (atEnd() || peek() != ')') {
        Diags.error(DotLoc, "expected ')' after dotted tail");
        return std::nullopt;
      }
      advance();
      break;
    }
    auto Item = readDatum();
    if (!Item)
      return std::nullopt;
    Items.push_back(*Item);
  }
  Value Result = Tail;
  for (size_t I = Items.size(); I > 0; --I)
    Result = H.cons(Items[I - 1], Result, Open);
  return Result;
}

std::optional<Value> Reader::readString(SourceLocation Open) {
  std::string Out;
  while (true) {
    if (atEnd()) {
      Diags.error(Open, "unterminated string literal");
      return std::nullopt;
    }
    char C = advance();
    if (C == '"')
      return H.string(std::move(Out));
    if (C == '\\') {
      if (atEnd()) {
        Diags.error(Open, "unterminated string literal");
        return std::nullopt;
      }
      char E = advance();
      switch (E) {
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      default:
        Out += E; // \" and \\ and anything else: literal.
        break;
      }
      continue;
    }
    Out += C;
  }
}

Value Reader::readAtom() {
  SourceLocation Loc = here();
  size_t Start = Pos;
  while (!atEnd() && !isDelimiter(peek()))
    advance();
  std::string_view Text = Src.substr(Start, Pos - Start);
  assert(!Text.empty() && "readAtom with no characters");

  switch (classifyAtom(Text)) {
  case AtomClass::Fixnum: {
    errno = 0;
    long long N = strtoll(std::string(Text).c_str(), nullptr, 10);
    if (errno == ERANGE)
      break; // Out-of-range integers become symbols; no bignums here.
    return Value::fixnum(N);
  }
  case AtomClass::Ratio: {
    std::string S(Text);
    size_t Slash = S.find('/');
    errno = 0;
    long long Num = strtoll(S.substr(0, Slash).c_str(), nullptr, 10);
    long long Den = strtoll(S.substr(Slash + 1).c_str(), nullptr, 10);
    if (errno == ERANGE)
      break; // Out-of-range components become symbols, like fixnums.
    if (Den == 0) {
      Diags.error(Loc, "ratio with zero denominator: " + S);
      return Value::nil();
    }
    return H.makeRatio(Num, Den);
  }
  case AtomClass::Flonum:
    return Value::flonum(strtod(std::string(Text).c_str(), nullptr));
  case AtomClass::Symbol:
    break;
  }
  if (Text == "nil")
    return Value::nil();
  return Value::symbol(Symbols.intern(Text));
}

std::vector<Value> sexpr::readAll(SymbolTable &Symbols, Heap &H,
                                  std::string_view Source, DiagEngine &Diags) {
  Reader R(Symbols, H, Source, Diags);
  return R.readAll();
}

Value sexpr::readOne(SymbolTable &Symbols, Heap &H, std::string_view Source) {
  DiagEngine Diags;
  Reader R(Symbols, H, Source, Diags);
  auto V = R.read();
  assert(V && !Diags.hasErrors() && "readOne: malformed input");
  return *V;
}
