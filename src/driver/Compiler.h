//===- driver/Compiler.h - The whole pipeline -------------------*- C++ -*-===//
///
/// \file
/// The Table 1 pipeline as one facade: preliminary conversion →
/// source-program analysis → source-level optimization → machine-dependent
/// annotation → TNBIND → code generation. Each phase has switches so the
/// benchmark harness can ablate it.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_DRIVER_COMPILER_H
#define S1LISP_DRIVER_COMPILER_H

#include "codegen/Codegen.h"
#include "ir/Ir.h"
#include "opt/Cse.h"
#include "opt/MetaEval.h"
#include "stats/Remark.h"

#include <string>
#include <string_view>

namespace s1lisp {
namespace driver {

struct CompilerOptions {
  bool Optimize = true; ///< run the §5 source-level optimizer
  bool Cse = false;     ///< run the §4.3 CSE phase after the optimizer
  opt::OptOptions Opt;
  opt::CseOptions CseOpts;
  codegen::CodegenOptions Codegen;
};

struct CompileOutcome {
  bool Ok = false;
  std::string Error;
  s1::Program Program;
};

/// Reads, converts, optimizes and compiles every top-level form in
/// \p Source into \p M. When \p Remarks is given, every optimizer rewrite
/// is recorded there as a structured remark.
CompileOutcome compileSource(ir::Module &M, std::string_view Source,
                             const CompilerOptions &Opts = {},
                             stats::RemarkStream *Remarks = nullptr);

/// Compiles an already-converted (and possibly optimized) module.
CompileOutcome compileModule(ir::Module &M, const CompilerOptions &Opts = {});

/// The whole program as a parenthesized assembly listing (Table 4 style).
std::string listing(const s1::Program &P);

} // namespace driver
} // namespace s1lisp

#endif // S1LISP_DRIVER_COMPILER_H
