//===- driver/Compiler.h - The whole pipeline -------------------*- C++ -*-===//
///
/// \file
/// The Table 1 pipeline as one facade: preliminary conversion →
/// source-program analysis → source-level optimization → machine-dependent
/// annotation → TNBIND → code generation. Each phase has switches so the
/// benchmark harness can ablate it.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_DRIVER_COMPILER_H
#define S1LISP_DRIVER_COMPILER_H

#include "codegen/Codegen.h"
#include "ir/Ir.h"
#include "opt/Cse.h"
#include "opt/MetaEval.h"
#include "stats/Remark.h"

#include <string>
#include <string_view>

namespace s1lisp {
namespace driver {

struct CompilerOptions {
  bool Optimize = true; ///< run the §5 source-level optimizer
  bool Cse = false;     ///< run the §4.3 CSE phase after the optimizer
  opt::OptOptions Opt;
  opt::CseOptions CseOpts;
  codegen::CodegenOptions Codegen;
  /// Worker threads for the per-function pipeline: optimize + CSE fan out
  /// over the module's functions, and code generation compiles each
  /// function's unit concurrently before a serial link. Propagated into
  /// CodegenOptions::Jobs. Output (program, listings, remark set, merged
  /// stats) is bit-identical for any job count.
  unsigned Jobs = 1;
};

struct CompileOutcome {
  bool Ok = false;
  std::string Error;
  s1::Program Program;
};

/// Reads, converts, optimizes and compiles every top-level form in
/// \p Source into \p M. When \p Remarks is given, every optimizer rewrite
/// is recorded there as a structured remark.
CompileOutcome compileSource(ir::Module &M, std::string_view Source,
                             const CompilerOptions &Opts = {},
                             stats::RemarkStream *Remarks = nullptr);

/// Compiles an already-converted module: optimize + CSE + codegen, fanned
/// out per function when Opts.Jobs > 1. Remarks, when given, arrive merged
/// in module-function order regardless of the job count.
CompileOutcome compileModule(ir::Module &M, const CompilerOptions &Opts = {},
                             stats::RemarkStream *Remarks = nullptr);

/// The whole program as a parenthesized assembly listing (Table 4 style).
std::string listing(const s1::Program &P);

} // namespace driver
} // namespace s1lisp

#endif // S1LISP_DRIVER_COMPILER_H
