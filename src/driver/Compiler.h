//===- driver/Compiler.h - The whole pipeline -------------------*- C++ -*-===//
///
/// \file
/// The Table 1 pipeline as one facade: preliminary conversion →
/// source-program analysis → source-level optimization → machine-dependent
/// annotation → TNBIND → code generation. Each phase has switches so the
/// benchmark harness can ablate it.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_DRIVER_COMPILER_H
#define S1LISP_DRIVER_COMPILER_H

#include "codegen/Codegen.h"
#include "ir/Ir.h"
#include "opt/Cse.h"
#include "opt/MetaEval.h"
#include "stats/Remark.h"
#include "stats/Stats.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace s1lisp {
namespace driver {

struct CompilerOptions {
  bool Optimize = true; ///< run the §5 source-level optimizer
  bool Cse = false;     ///< run the §4.3 CSE phase after the optimizer
  opt::OptOptions Opt;
  opt::CseOptions CseOpts;
  codegen::CodegenOptions Codegen;
  /// Worker threads for the per-function pipeline: optimize + CSE fan out
  /// over the module's functions, and code generation compiles each
  /// function's unit concurrently before a serial link. Propagated into
  /// CodegenOptions::Jobs. Output (program, listings, remark set, merged
  /// stats) is bit-identical for any job count.
  unsigned Jobs = 1;
  /// Execution-engine preference ("legacy" / "threaded" / "native"),
  /// carried by the shared flag table for --run consumers; empty = the
  /// Machine default. Excluded from optionsFingerprint like Jobs: the
  /// engine never changes compiled output, so cache entries stay shared
  /// across engines (the service byte-identity test relies on this).
  std::string Engine;
};

struct CompileOutcome {
  bool Ok = false;
  std::string Error;
  s1::Program Program;
  /// Per-function memo traffic for this compile (zero without a memo).
  unsigned MemoHits = 0;
  unsigned MemoMisses = 0;
};

/// Everything the middle end produces for one function, keyed by content:
/// the relocatable unit plus the counter deltas and optimizer remarks that
/// a fresh compile of the function would have emitted. A memo hit replays
/// the deltas and remarks, so cached and fresh compiles report identical
/// totals and transcripts.
struct MemoizedFunction {
  codegen::CompiledUnit Unit;
  std::vector<stats::TallyDelta> Tally;
  std::vector<stats::Remark> Remarks;

  size_t byteSize() const;
};

/// A per-function compilation memo the driver probes before running the
/// middle end. Keys are content addresses: alpha-normalized IR hash mixed
/// with the function name, the options fingerprint, and the module-index
/// resolution of every global name the unit could reference (units bake
/// call indices into immediates, so reuse is only sound where those
/// resolutions agree). Implementations must be safe to call from
/// concurrent compiles; entries are shared_ptr so eviction never frees a
/// unit mid-link.
class FunctionMemo {
public:
  virtual ~FunctionMemo() = default;
  virtual std::shared_ptr<const MemoizedFunction> lookup(uint64_t Key) = 0;
  virtual void insert(uint64_t Key,
                      std::shared_ptr<const MemoizedFunction> Fn) = 0;
};

/// Fingerprint of every output-relevant option (Jobs is excluded: output
/// is bit-identical for any job count). Two option sets with equal
/// fingerprints compile every function identically, so the fingerprint is
/// the options half of the memo key.
uint64_t optionsFingerprint(const CompilerOptions &Opts);

/// Reads, converts, optimizes and compiles every top-level form in
/// \p Source into \p M. When \p Remarks is given, every optimizer rewrite
/// is recorded there as a structured remark.
CompileOutcome compileSource(ir::Module &M, std::string_view Source,
                             const CompilerOptions &Opts = {},
                             stats::RemarkStream *Remarks = nullptr,
                             FunctionMemo *Memo = nullptr);

/// Compiles an already-converted module: optimize + CSE + codegen, fanned
/// out per function when Opts.Jobs > 1. Remarks, when given, arrive merged
/// in module-function order regardless of the job count. With \p Memo,
/// each function is looked up by content address first; hits skip the
/// middle end entirely (the function's IR stays unoptimized) and link the
/// cached unit, misses compile and are offered back to the memo.
CompileOutcome compileModule(ir::Module &M, const CompilerOptions &Opts = {},
                             stats::RemarkStream *Remarks = nullptr,
                             FunctionMemo *Memo = nullptr);

/// The whole program as a parenthesized assembly listing (Table 4 style).
std::string listing(const s1::Program &P);

} // namespace driver
} // namespace s1lisp

#endif // S1LISP_DRIVER_COMPILER_H
