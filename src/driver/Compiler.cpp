//===- driver/Compiler.cpp ------------------------------------------------===//

#include "driver/Compiler.h"

#include "frontend/Convert.h"
#include "ir/StableHash.h"
#include "stats/Stats.h"
#include "support/Parallel.h"

#include <optional>
#include <vector>

using namespace s1lisp;
using namespace s1lisp::driver;

size_t MemoizedFunction::byteSize() const {
  size_t Bytes = sizeof(MemoizedFunction) + Unit.byteSize();
  for (const stats::TallyDelta &D : Tally)
    Bytes += sizeof(stats::TallyDelta) + D.Name.size();
  for (const stats::Remark &R : Remarks)
    Bytes += sizeof(stats::Remark) + R.Phase.size() + R.Rule.size() +
             R.Function.size() + R.Before.size() + R.After.size() +
             R.Detail.size();
  return Bytes;
}

uint64_t driver::optionsFingerprint(const CompilerOptions &O) {
  uint64_t H = ir::hashString(0, "s1lisp.options.v1");
  auto B = [&H](bool V) { H = ir::hashCombine(H, V ? 1 : 0); };
  auto U = [&H](uint64_t V) { H = ir::hashCombine(H, V); };
  B(O.Optimize);
  B(O.Cse);
  B(O.Opt.Substitute);
  B(O.Opt.IfDistribute);
  B(O.Opt.ConstantFold);
  B(O.Opt.AssocCommut);
  B(O.Opt.IdentityElim);
  B(O.Opt.RedundantTest);
  B(O.Opt.MachineTrig);
  B(O.Opt.DeadCode);
  U(O.Opt.DuplicationLimit);
  U(O.Opt.MaxPasses);
  // IncrementalAnalysis/VerifyAnalysis don't change output, but keeping
  // them in the key costs only a cold cache when they flip — and keeps
  // "equal fingerprint => identical compile" trivially true.
  B(O.Opt.IncrementalAnalysis);
  B(O.Opt.VerifyAnalysis);
  B(O.Opt.FaultConstantFold);
  U(O.CseOpts.MinComplexity);
  U(O.CseOpts.MaxRounds);
  B(O.Codegen.TnBind.UseRegisters);
  B(O.Codegen.Annotate.RepAnalysis);
  B(O.Codegen.Annotate.PdlNumbers);
  B(O.Codegen.SpecialCache);
  B(O.Codegen.TailCalls);
  B(O.Codegen.RegisterTemps);
  // Jobs deliberately excluded: output is bit-identical for any count.
  return H;
}

namespace {

/// The memo key for function \p F under \p OptsFp: content hash + name +
/// options + the module-index resolution of every global name the unit's
/// code could bake into an immediate.
uint64_t
memoKey(const ir::Function &F, uint64_t OptsFp,
        const std::unordered_map<std::string, int> &FuncIndex) {
  uint64_t K = ir::stableFunctionHash(F);
  K = ir::hashString(K, F.name());
  K = ir::hashCombine(K, OptsFp);
  for (const std::string &Name : ir::referencedGlobalNames(F)) {
    K = ir::hashString(K, Name);
    auto It = FuncIndex.find(Name);
    K = ir::hashCombine(K, It == FuncIndex.end()
                               ? ~0ull
                               : static_cast<uint64_t>(It->second));
  }
  return K;
}

} // namespace

CompileOutcome driver::compileModule(ir::Module &M, const CompilerOptions &Opts,
                                     stats::RemarkStream *Remarks,
                                     FunctionMemo *Memo) {
  CompileOutcome Out;
  const size_t N = M.functions().size();

  // Pre-assign module-function indices so mutually recursive calls resolve
  // identically in every unit.
  std::unordered_map<std::string, int> FuncIndex;
  for (const auto &F : M.functions())
    FuncIndex[F->name()] = static_cast<int>(FuncIndex.size());

  codegen::CodegenOptions CG = Opts.Codegen;
  CG.Jobs = Opts.Jobs;

  struct Slot {
    uint64_t Key = 0;
    std::shared_ptr<const MemoizedFunction> Hit;
    std::shared_ptr<MemoizedFunction> Fresh;
  };
  std::vector<Slot> Slots(N);

  // Serial probe pass: hashing is cheap next to the middle end, and a
  // serial pass keeps the memo's hit/miss counter order deterministic.
  if (Memo) {
    stats::PhaseTimer Timer("driver.memo");
    const uint64_t OptsFp = optionsFingerprint(Opts);
    for (size_t I = 0; I < N; ++I) {
      Slots[I].Key = memoKey(*M.functions()[I], OptsFp, FuncIndex);
      Slots[I].Hit = Memo->lookup(Slots[I].Key);
      ++(Slots[I].Hit ? Out.MemoHits : Out.MemoMisses);
    }
  }

  // Compile the misses, fanned out per function. Each function optimizes
  // and generates code against private remark/stat sinks; folding those in
  // function order afterwards makes the transcript and counter totals
  // independent of worker scheduling AND lets a memo store the deltas for
  // bit-identical replay on later hits. Without a memo, the sinks are only
  // engaged when the caller collects stats/remarks, preserving the
  // plain path's costs. The nested phase timers fire only at Jobs <= 1,
  // where the lambda runs on this thread.
  const bool Tally = stats::enabled();
  support::parallelFor(N, Opts.Jobs, [&](size_t I) {
    if (Slots[I].Hit)
      return;
    ir::Function &F = *M.functions()[I];
    auto MF = std::make_shared<MemoizedFunction>();
    stats::LocalTally T;
    stats::RemarkStream R;
    stats::RemarkStream *RS = (Memo || Remarks) ? &R : nullptr;
    {
      std::optional<stats::TallyScope> Scope;
      if (Memo || Tally)
        Scope.emplace(T);
      if (Opts.Optimize || Opts.Cse) {
        stats::PhaseTimer Timer("driver.optimize");
        if (Opts.Optimize) {
          stats::PhaseTimer T2("opt.metaeval");
          opt::metaEvaluate(F, Opts.Opt, RS);
        }
        if (Opts.Cse) {
          stats::PhaseTimer T2("opt.cse");
          opt::eliminateCommonSubexpressions(F, Opts.CseOpts, RS);
        }
      }
      MF->Unit = codegen::compileFunctionUnit(M, F, CG, FuncIndex);
    }
    MF->Tally = T.deltas();
    MF->Remarks = std::move(R.Remarks);
    Slots[I].Fresh = std::move(MF);
  });

  // Fold observability in function order: counter deltas replay through
  // the ambient record() path (so a surrounding TallyScope — e.g. a
  // service request's — sees them), remarks merge into the caller's
  // stream. Cached and fresh slots replay identically.
  for (size_t I = 0; I < N; ++I) {
    const MemoizedFunction *MF =
        Slots[I].Hit ? Slots[I].Hit.get() : Slots[I].Fresh.get();
    stats::applyTallyDeltas(MF->Tally);
    if (Remarks)
      for (const stats::Remark &Rm : MF->Remarks)
        Remarks->remark(Rm);
  }

  if (Memo)
    for (Slot &S : Slots)
      if (S.Fresh && S.Fresh->Unit.Ok)
        Memo->insert(S.Key, S.Fresh);

  std::vector<const codegen::CompiledUnit *> Units;
  Units.reserve(N);
  for (const Slot &S : Slots)
    Units.push_back(S.Hit ? &S.Hit->Unit : &S.Fresh->Unit);
  codegen::CompileResult R = codegen::linkUnits(M, Units);
  if (!R.Ok) {
    Out.Error = R.Error;
    return Out;
  }
  Out.Ok = true;
  Out.Program = std::move(R.Program);
  return Out;
}

CompileOutcome driver::compileSource(ir::Module &M, std::string_view Source,
                                     const CompilerOptions &Opts,
                                     stats::RemarkStream *Remarks,
                                     FunctionMemo *Memo) {
  CompileOutcome Out;
  DiagEngine Diags;
  {
    stats::PhaseTimer Timer("frontend.convert");
    if (!frontend::convertSource(M, Source, Diags)) {
      Out.Error = Diags.str();
      return Out;
    }
  }
  return compileModule(M, Opts, Remarks, Memo);
}

std::string driver::listing(const s1::Program &P) {
  std::string Out;
  for (const s1::AsmFunction &F : P.Functions) {
    Out += s1::printListing(F);
    Out += '\n';
  }
  return Out;
}
