//===- driver/Compiler.cpp ------------------------------------------------===//

#include "driver/Compiler.h"

#include "frontend/Convert.h"

using namespace s1lisp;
using namespace s1lisp::driver;

CompileOutcome driver::compileModule(ir::Module &M, const CompilerOptions &Opts) {
  CompileOutcome Out;
  if (Opts.Optimize)
    for (const auto &F : M.functions())
      opt::metaEvaluate(*F, Opts.Opt);
  codegen::CompileResult R = codegen::compileModule(M, Opts.Codegen);
  if (!R.Ok) {
    Out.Error = R.Error;
    return Out;
  }
  Out.Ok = true;
  Out.Program = std::move(R.Program);
  return Out;
}

CompileOutcome driver::compileSource(ir::Module &M, std::string_view Source,
                                     const CompilerOptions &Opts,
                                     opt::OptLog *Log) {
  CompileOutcome Out;
  DiagEngine Diags;
  if (!frontend::convertSource(M, Source, Diags)) {
    Out.Error = Diags.str();
    return Out;
  }
  if (Opts.Optimize)
    for (const auto &F : M.functions())
      opt::metaEvaluate(*F, Opts.Opt, Log);
  return compileModule(M, CompilerOptions{false, Opts.Opt, Opts.Codegen});
}

std::string driver::listing(const s1::Program &P) {
  std::string Out;
  for (const s1::AsmFunction &F : P.Functions) {
    Out += s1::printListing(F);
    Out += '\n';
  }
  return Out;
}
