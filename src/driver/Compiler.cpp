//===- driver/Compiler.cpp ------------------------------------------------===//

#include "driver/Compiler.h"

#include "frontend/Convert.h"
#include "stats/Stats.h"
#include "support/Parallel.h"

#include <optional>
#include <vector>

using namespace s1lisp;
using namespace s1lisp::driver;

CompileOutcome driver::compileModule(ir::Module &M, const CompilerOptions &Opts,
                                     stats::RemarkStream *Remarks) {
  CompileOutcome Out;
  const size_t N = M.functions().size();
  if (N && (Opts.Optimize || Opts.Cse)) {
    stats::PhaseTimer Timer("driver.optimize");
    // Each function optimizes against private remark/stat sinks; merging
    // in function order afterwards makes the transcript and counter totals
    // independent of worker scheduling. The nested phase timers fire only
    // at Jobs <= 1, where the lambda runs on this thread.
    std::vector<stats::RemarkStream> FnRemarks(Remarks ? N : 0);
    std::vector<stats::LocalTally> Tallies(N);
    const bool Tally = stats::enabled();
    support::parallelFor(N, Opts.Jobs, [&](size_t I) {
      std::optional<stats::TallyScope> Scope;
      if (Tally)
        Scope.emplace(Tallies[I]);
      stats::RemarkStream *R = Remarks ? &FnRemarks[I] : nullptr;
      ir::Function &F = *M.functions()[I];
      if (Opts.Optimize) {
        stats::PhaseTimer T("opt.metaeval");
        opt::metaEvaluate(F, Opts.Opt, R);
      }
      if (Opts.Cse) {
        stats::PhaseTimer T("opt.cse");
        opt::eliminateCommonSubexpressions(F, Opts.CseOpts, R);
      }
    });
    if (Tally)
      for (stats::LocalTally &T : Tallies)
        T.apply();
    if (Remarks)
      for (stats::RemarkStream &R : FnRemarks)
        for (stats::Remark &Rm : R.Remarks)
          Remarks->remark(std::move(Rm));
  }
  codegen::CodegenOptions CG = Opts.Codegen;
  CG.Jobs = Opts.Jobs;
  codegen::CompileResult R = codegen::compileModule(M, CG);
  if (!R.Ok) {
    Out.Error = R.Error;
    return Out;
  }
  Out.Ok = true;
  Out.Program = std::move(R.Program);
  return Out;
}

CompileOutcome driver::compileSource(ir::Module &M, std::string_view Source,
                                     const CompilerOptions &Opts,
                                     stats::RemarkStream *Remarks) {
  CompileOutcome Out;
  DiagEngine Diags;
  {
    stats::PhaseTimer Timer("frontend.convert");
    if (!frontend::convertSource(M, Source, Diags)) {
      Out.Error = Diags.str();
      return Out;
    }
  }
  return compileModule(M, Opts, Remarks);
}

std::string driver::listing(const s1::Program &P) {
  std::string Out;
  for (const s1::AsmFunction &F : P.Functions) {
    Out += s1::printListing(F);
    Out += '\n';
  }
  return Out;
}
