//===- driver/Compiler.cpp ------------------------------------------------===//

#include "driver/Compiler.h"

#include "frontend/Convert.h"
#include "stats/Stats.h"

using namespace s1lisp;
using namespace s1lisp::driver;

CompileOutcome driver::compileModule(ir::Module &M, const CompilerOptions &Opts) {
  CompileOutcome Out;
  if (Opts.Optimize)
    for (const auto &F : M.functions())
      opt::metaEvaluate(*F, Opts.Opt);
  if (Opts.Cse)
    for (const auto &F : M.functions())
      opt::eliminateCommonSubexpressions(*F, Opts.CseOpts);
  codegen::CompileResult R = codegen::compileModule(M, Opts.Codegen);
  if (!R.Ok) {
    Out.Error = R.Error;
    return Out;
  }
  Out.Ok = true;
  Out.Program = std::move(R.Program);
  return Out;
}

CompileOutcome driver::compileSource(ir::Module &M, std::string_view Source,
                                     const CompilerOptions &Opts,
                                     stats::RemarkStream *Remarks) {
  CompileOutcome Out;
  DiagEngine Diags;
  {
    stats::PhaseTimer Timer("frontend.convert");
    if (!frontend::convertSource(M, Source, Diags)) {
      Out.Error = Diags.str();
      return Out;
    }
  }
  if (Opts.Optimize)
    for (const auto &F : M.functions())
      opt::metaEvaluate(*F, Opts.Opt, Remarks);
  if (Opts.Cse)
    for (const auto &F : M.functions())
      opt::eliminateCommonSubexpressions(*F, Opts.CseOpts, Remarks);
  CompilerOptions Rest = Opts;
  Rest.Optimize = false;
  Rest.Cse = false;
  return compileModule(M, Rest);
}

std::string driver::listing(const s1::Program &P) {
  std::string Out;
  for (const s1::AsmFunction &F : P.Functions) {
    Out += s1::printListing(F);
    Out += '\n';
  }
  return Out;
}
