//===- driver/Ablation.h - Ablation-matrix enumeration ----------*- C++ -*-===//
///
/// \file
/// One canonical enumeration of the compiler's ablation matrix: the
/// baseline optimization levels plus every single-pass ablation of
/// CompilerOptions, each under the stable name the CLI tools use
/// (O0, O2, O2+cse, no-substitute, ...). The differential fuzzer runs
/// every generated program through all of these; the benchmark harness
/// and tests pick configurations from the same table so nobody grows a
/// private, drifting copy of the switch list.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_DRIVER_ABLATION_H
#define S1LISP_DRIVER_ABLATION_H

#include "driver/Compiler.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace s1lisp {
namespace driver {

/// One named point in the ablation matrix.
struct AblationConfig {
  std::string Name;
  CompilerOptions Opts;
};

/// The full matrix: "O2" (everything on), "O0", "O2+cse", then one entry
/// per single-pass ablation ("no-substitute", "no-tail-calls", ...), each
/// of which is O2 with exactly that switch off. "O2" is always first.
std::vector<AblationConfig> ablationMatrix();

/// Looks a configuration up by its matrix name; nullopt when unknown.
std::optional<AblationConfig> ablationByName(const std::string &Name);

/// Applies one s1lispc-style compiler flag to \p O: "-O0", "-O2",
/// "--cse", "--engine=<legacy|threaded|native>", or any "--no-<pass>"
/// ablation. Returns false (leaving \p O untouched) when the token is not
/// a compiler flag — including "--engine=" with an unknown engine name.
/// s1lispc, the compile service, and tests all parse through this one
/// table, so the flag surface can't drift between the CLI and the daemon
/// protocol.
bool applyCompilerFlag(std::string_view Flag, CompilerOptions &O);

} // namespace driver
} // namespace s1lisp

#endif // S1LISP_DRIVER_ABLATION_H
