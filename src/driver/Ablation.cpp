//===- driver/Ablation.cpp ------------------------------------------------===//

#include "driver/Ablation.h"

#include "vm/Machine.h"

using namespace s1lisp;
using namespace s1lisp::driver;

std::vector<AblationConfig> driver::ablationMatrix() {
  std::vector<AblationConfig> Out;
  auto Add = [&Out](const char *Name, auto &&Tweak) {
    CompilerOptions O;
    Tweak(O);
    Out.push_back({Name, O});
  };

  Add("O2", [](CompilerOptions &) {});
  Add("O0", [](CompilerOptions &O) { O.Optimize = false; });
  Add("O2+cse", [](CompilerOptions &O) { O.Cse = true; });

  Add("no-substitute", [](CompilerOptions &O) { O.Opt.Substitute = false; });
  Add("no-if-distribute",
      [](CompilerOptions &O) { O.Opt.IfDistribute = false; });
  Add("no-constant-fold",
      [](CompilerOptions &O) { O.Opt.ConstantFold = false; });
  Add("no-assoc-commut", [](CompilerOptions &O) { O.Opt.AssocCommut = false; });
  Add("no-identity-elim",
      [](CompilerOptions &O) { O.Opt.IdentityElim = false; });
  Add("no-redundant-test",
      [](CompilerOptions &O) { O.Opt.RedundantTest = false; });
  Add("no-machine-trig", [](CompilerOptions &O) { O.Opt.MachineTrig = false; });
  Add("no-dead-code", [](CompilerOptions &O) { O.Opt.DeadCode = false; });

  Add("no-registers",
      [](CompilerOptions &O) { O.Codegen.TnBind.UseRegisters = false; });
  Add("no-register-temps",
      [](CompilerOptions &O) { O.Codegen.RegisterTemps = false; });
  Add("no-rep-analysis",
      [](CompilerOptions &O) { O.Codegen.Annotate.RepAnalysis = false; });
  Add("no-pdl-numbers",
      [](CompilerOptions &O) { O.Codegen.Annotate.PdlNumbers = false; });
  Add("no-special-cache",
      [](CompilerOptions &O) { O.Codegen.SpecialCache = false; });
  Add("no-tail-calls", [](CompilerOptions &O) { O.Codegen.TailCalls = false; });
  return Out;
}

std::optional<AblationConfig> driver::ablationByName(const std::string &Name) {
  for (AblationConfig &C : ablationMatrix())
    if (C.Name == Name)
      return std::move(C);
  return std::nullopt;
}

bool driver::applyCompilerFlag(std::string_view Flag, CompilerOptions &O) {
  if (Flag == "-O0") {
    O.Optimize = false;
    return true;
  }
  if (Flag == "-O2") {
    O.Optimize = true;
    return true;
  }
  if (Flag == "--cse") {
    O.Cse = true;
    return true;
  }
  if (Flag.rfind("--engine=", 0) == 0) {
    std::string_view Name = Flag.substr(sizeof("--engine=") - 1);
    if (!vm::engineByName(Name))
      return false; // unknown engine: let the caller report it
    O.Engine = std::string(Name);
    return true;
  }
  struct Ablation {
    std::string_view Name;
    void (*Off)(CompilerOptions &);
  };
  static const Ablation Ablations[] = {
      {"--no-substitute", [](CompilerOptions &O) { O.Opt.Substitute = false; }},
      {"--no-if-distribute",
       [](CompilerOptions &O) { O.Opt.IfDistribute = false; }},
      {"--no-constant-fold",
       [](CompilerOptions &O) { O.Opt.ConstantFold = false; }},
      {"--no-assoc-commut",
       [](CompilerOptions &O) { O.Opt.AssocCommut = false; }},
      {"--no-identity-elim",
       [](CompilerOptions &O) { O.Opt.IdentityElim = false; }},
      {"--no-redundant-test",
       [](CompilerOptions &O) { O.Opt.RedundantTest = false; }},
      {"--no-machine-trig",
       [](CompilerOptions &O) { O.Opt.MachineTrig = false; }},
      {"--no-dead-code", [](CompilerOptions &O) { O.Opt.DeadCode = false; }},
      {"--no-registers",
       [](CompilerOptions &O) { O.Codegen.TnBind.UseRegisters = false; }},
      {"--no-register-temps",
       [](CompilerOptions &O) { O.Codegen.RegisterTemps = false; }},
      {"--no-rep-analysis",
       [](CompilerOptions &O) { O.Codegen.Annotate.RepAnalysis = false; }},
      {"--no-pdl-numbers",
       [](CompilerOptions &O) { O.Codegen.Annotate.PdlNumbers = false; }},
      {"--no-special-cache",
       [](CompilerOptions &O) { O.Codegen.SpecialCache = false; }},
      {"--no-tail-calls",
       [](CompilerOptions &O) { O.Codegen.TailCalls = false; }},
  };
  for (const Ablation &A : Ablations)
    if (Flag == A.Name) {
      A.Off(O);
      return true;
    }
  return false;
}
