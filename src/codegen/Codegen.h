//===- codegen/Codegen.h - Single-pass code generation ----------*- C++ -*-===//
///
/// \file
/// The code generation phase: one pass over the decorated tree per
/// compilation unit (a module function plus one unit per lifted closure),
/// emitting S-1/64 assembly. Optional arguments compile into the per-count
/// dispatch of Table 4; tail calls become TAILCALL "parameter-passing
/// gotos"; jump-strategy thunks are emitted once and their call sites are
/// plain JMPAs (the §5 short-circuit code shape); raw floats stay in
/// registers and are boxed only at POINTER boundaries, on the stack when
/// the pdl-number annotation authorizes it.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_CODEGEN_CODEGEN_H
#define S1LISP_CODEGEN_CODEGEN_H

#include "annotate/Annotate.h"
#include "ir/Ir.h"
#include "s1/Isa.h"
#include "tnbind/TnBind.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace s1lisp {
namespace codegen {

struct CodegenOptions {
  tnbind::TnBindOptions TnBind;
  annotate::AnnotateOptions Annotate;
  /// Cache special-variable binding addresses in the frame (§4.4).
  bool SpecialCache = true;
  /// Compile tail calls as jumps (§2).
  bool TailCalls = true;
  /// Let expression temporaries use registers (ablation: frame slots only).
  bool RegisterTemps = true;
  /// Worker threads for per-function compilation units. Each module
  /// function (plus its lifted closures) compiles into a private unit;
  /// units are linked serially in module order, so the output is
  /// bit-identical for any job count.
  unsigned Jobs = 1;
};

struct CompileResult {
  bool Ok = false;
  std::string Error;
  s1::Program Program;
};

/// One module function (plus every closure lifted out of it) compiled
/// into a private, relocatable unit: a local static pool addressed from
/// zero, symbol references by unit-local ordinal into SymNames, and
/// lifted-closure references encoded as negative ordinals. Units carry no
/// pointers into any Module — symbols travel as names — so a unit is a
/// serialized compilation artifact: the compile service's
/// content-addressed cache stores units and links them into later
/// requests' programs, bit-identically to a fresh compile.
struct CompiledUnit {
  bool Ok = false;
  std::string Error;
  /// [0] is the module function; lifted closures follow in lift order.
  std::vector<s1::AsmFunction> Fns;
  /// Local data pool (cons cells, flonum/ratio payloads, string headers).
  std::vector<uint64_t> Static;
  /// Pool slots holding encoded words the link must relocate.
  std::vector<size_t> PtrSlots;
  /// Symbol names in first-use order; a Symbol word's address field
  /// indexes here until the link rewrites it.
  std::vector<std::string> SymNames;
  /// Static string objects at unit-local addresses.
  std::vector<std::pair<uint64_t, std::string>> Strings;

  /// Approximate retained bytes, for cache budget accounting.
  size_t byteSize() const;
};

/// Compiles one function of \p M into a relocatable unit. \p FuncIndex is
/// the module-function index assignment (name -> slot) the unit's direct
/// calls are resolved against; compileModule builds it in module order.
CompiledUnit compileFunctionUnit(ir::Module &M, ir::Function &F,
                                 const CodegenOptions &Opts,
                                 const std::unordered_map<std::string, int> &FuncIndex);

/// Serially links units (one per module function, in module order) into a
/// program: unit pools are concatenated, symbol names are interned into
/// \p M and assigned global value cells in first-use order, and encoded
/// words in pools and instruction immediates are relocated. Output is a
/// pure function of the unit contents, so cached and freshly compiled
/// units link bit-identically.
CompileResult linkUnits(ir::Module &M,
                        const std::vector<const CompiledUnit *> &Units);

/// Compiles every function in \p M. The module must already be optimized
/// (or not — the generator handles unoptimized trees too) but NOT yet
/// annotated: annotation runs here so its options stay consistent.
CompileResult compileModule(ir::Module &M, const CodegenOptions &Opts = {});

} // namespace codegen
} // namespace s1lisp

#endif // S1LISP_CODEGEN_CODEGEN_H
