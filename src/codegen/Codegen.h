//===- codegen/Codegen.h - Single-pass code generation ----------*- C++ -*-===//
///
/// \file
/// The code generation phase: one pass over the decorated tree per
/// compilation unit (a module function plus one unit per lifted closure),
/// emitting S-1/64 assembly. Optional arguments compile into the per-count
/// dispatch of Table 4; tail calls become TAILCALL "parameter-passing
/// gotos"; jump-strategy thunks are emitted once and their call sites are
/// plain JMPAs (the §5 short-circuit code shape); raw floats stay in
/// registers and are boxed only at POINTER boundaries, on the stack when
/// the pdl-number annotation authorizes it.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_CODEGEN_CODEGEN_H
#define S1LISP_CODEGEN_CODEGEN_H

#include "annotate/Annotate.h"
#include "ir/Ir.h"
#include "s1/Isa.h"
#include "tnbind/TnBind.h"

#include <string>

namespace s1lisp {
namespace codegen {

struct CodegenOptions {
  tnbind::TnBindOptions TnBind;
  annotate::AnnotateOptions Annotate;
  /// Cache special-variable binding addresses in the frame (§4.4).
  bool SpecialCache = true;
  /// Compile tail calls as jumps (§2).
  bool TailCalls = true;
  /// Let expression temporaries use registers (ablation: frame slots only).
  bool RegisterTemps = true;
  /// Worker threads for per-function compilation units. Each module
  /// function (plus its lifted closures) compiles into a private unit;
  /// units are linked serially in module order, so the output is
  /// bit-identical for any job count.
  unsigned Jobs = 1;
};

struct CompileResult {
  bool Ok = false;
  std::string Error;
  s1::Program Program;
};

/// Compiles every function in \p M. The module must already be optimized
/// (or not — the generator handles unoptimized trees too) but NOT yet
/// annotated: annotation runs here so its options stay consistent.
CompileResult compileModule(ir::Module &M, const CodegenOptions &Opts = {});

} // namespace codegen
} // namespace s1lisp

#endif // S1LISP_CODEGEN_CODEGEN_H
