//===- codegen/Codegen.cpp ------------------------------------------------===//

#include "codegen/Codegen.h"

#include "analysis/Analysis.h"
#include "ir/Primitives.h"
#include "sexpr/Numbers.h"
#include "sexpr/Printer.h"
#include "stats/Stats.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

S1_STAT(NumFunctionsCompiled, "codegen.functions",
        "functions (incl. lifted closures) compiled");
S1_STAT(NumClosuresLifted, "codegen.closures.lifted",
        "closure bodies lifted to their own units");
S1_STAT(NumInstructionsEmitted, "codegen.instructions",
        "assembly instructions emitted");
S1_STAT(NumMovsEmitted, "codegen.movs", "data-movement MOVs emitted");
S1_STAT(NumSpecialsCached, "codegen.specials.cached",
        "special-variable binding addresses cached at entry");

using namespace s1lisp;
using namespace s1lisp::codegen;
using namespace s1lisp::ir;
using namespace s1lisp::s1;
using sexpr::Value;
using tnbind::Location;

namespace {

/// Compile-time shape of one heap environment frame.
struct EnvLayout {
  int Parent = -1;
  std::vector<const Variable *> Slots;
};

struct LiftedLambda {
  const LambdaNode *Lambda;
  ir::Function *IrFunction;
  int EnvLayoutId; ///< layout of the environment the closure captures
  int FuncIndex;
  std::string Name;
};

class ModuleCompiler {
public:
  ModuleCompiler(ir::Module &M, const CodegenOptions &Opts) : M(M), Opts(Opts) {}

  bool run(CompileResult &Result);

  /// Encodes a literal into the static image; returns its word.
  uint64_t encodeStatic(Value V);
  uint64_t symbolCell(const sexpr::Symbol *S);
  uint64_t tWord() { return encodeStatic(Value::symbol(M.Syms.t())); }

  int functionIndexFor(const std::string &Name) const {
    auto It = FuncIndex.find(Name);
    return It == FuncIndex.end() ? -1 : It->second;
  }

  int addEnvLayout(int Parent, std::vector<const Variable *> Slots) {
    Layouts.push_back({Parent, std::move(Slots)});
    return static_cast<int>(Layouts.size()) - 1;
  }
  const EnvLayout &layout(int Id) const { return Layouts[Id]; }

  /// Queues a closure body for compilation; returns its function index.
  int liftClosure(const LambdaNode *L, ir::Function *IrF, int EnvLayoutId);

  ir::Module &M;
  const CodegenOptions &Opts;
  s1::Program Program;
  std::string Error;

private:
  std::unordered_map<std::string, int> FuncIndex;
  std::vector<EnvLayout> Layouts;
  std::deque<LiftedLambda> LiftQueue;
  unsigned LiftCounter = 0;
};

//===----------------------------------------------------------------------===//
// Function compilation
//===----------------------------------------------------------------------===//

/// A value being carried between emissions: where it is, what rep it has,
/// and which resource (if any) must be released after use.
struct TempVal {
  Operand Op;
  Rep R = Rep::POINTER;
  enum class Res : uint8_t { None, RtA, RtB, Reg, Frame, Literal } Owned = Res::None;
  Value Lit; ///< set when Owned == Literal (unmaterialized constant)
  /// A second held resource (e.g. the array base register of a fused
  /// indexed operand, whose index register is the first resource).
  Operand Op2;
  Res Owned2 = Res::None;

  static TempVal literal(Value V) {
    TempVal T;
    T.Owned = Res::Literal;
    T.Lit = V;
    return T;
  }
  bool isLiteral() const { return Owned == Res::Literal; }
  bool ownsRt() const {
    return Owned == Res::RtA || Owned == Res::RtB || Owned2 == Res::RtA ||
           Owned2 == Res::RtB;
  }
};

class FunctionCompiler {
public:
  FunctionCompiler(ModuleCompiler &MC, ir::Function &IrF, const LambdaNode *Entry,
                   int IncomingLayout, std::string Name)
      : MC(MC), IrF(IrF), Entry(Entry), IncomingLayout(IncomingLayout) {
    Out.Name = std::move(Name);
  }

  bool compile(AsmFunction &Result);

private:
  //===--- infrastructure -------------------------------------------------===//
  ModuleCompiler &MC;
  ir::Function &IrF;
  const LambdaNode *Entry;
  int IncomingLayout;
  AsmFunction Out;
  std::string Err;
  bool Failed = false;

  tnbind::TnBindResult Tns;
  int FrameBase = 2; ///< slots 0/1 hold saved ENV and argc
  int NextSlot = 0;  ///< next free frame slot (relative)
  std::vector<int> FreeSlots;
  std::vector<uint8_t> ScratchRegs;
  std::unordered_set<uint8_t> ScratchInUse;
  bool RtBusy[2] = {false, false};
  int EpilogueLabel = -1;
  int FramePatchIndex = -1;
  unsigned SpecialBindCount = 0; ///< dynamic bindings made by the prologue
  std::unordered_map<const sexpr::Symbol *, int> SpecialCacheSlot;
  std::unordered_set<const Node *> ContainsCallCache;
  bool ContainsCallComputed = false;

  /// Active local heap-environment scopes, innermost last.
  struct EnvScope {
    int LayoutId;
    int FrameSlot;
  };
  std::vector<EnvScope> EnvScopes;

  /// Jump-strategy thunks awaiting emission.
  struct ThunkInfo {
    int Label = -1;
    const Node *Body = nullptr;
    bool Tail = false;
    Operand Dest;
    Rep DestRep = Rep::POINTER;
    int JoinLabel = -1;
  };
  std::unordered_map<const Variable *, ThunkInfo *> ActiveThunks;
  std::deque<ThunkInfo> ThunkStorage;

  /// Progbody contexts.
  struct ProgCtx {
    const ProgBodyNode *Body;
    std::unordered_map<const sexpr::Symbol *, int> TagLabels;
    int ExitLabel;
    Operand Dest;
    Rep DestRep;
    bool Tail;
  };
  std::vector<ProgCtx> ProgCtxs;

  void fail(const std::string &Msg) {
    if (!Failed)
      Err = Out.Name + ": " + Msg;
    Failed = true;
  }

  void emit(Opcode Op, Operand A = {}, Operand B = {}, Operand X = {},
            std::string Comment = "") {
    Instruction I;
    I.Op = Op;
    I.A = A;
    I.B = B;
    I.X = X;
    I.Comment = std::move(Comment);
    Out.emit(std::move(I));
  }
  void emitJcc(Cond C, Operand A, Operand B, int Label, std::string Comment = "",
               bool FloatCmp = false) {
    Instruction I;
    I.Op = FloatCmp ? Opcode::FJMPZ : Opcode::JMPZ;
    I.C = C;
    I.A = A;
    I.B = B;
    I.X = Operand::label(Label);
    I.Comment = std::move(Comment);
    Out.emit(std::move(I));
  }
  void emitSyscall(Syscall S, int64_t Sub = 0, int64_t Extra = 0,
                   std::string Comment = "") {
    emit(Opcode::SYSCALL, Operand::imm(static_cast<int64_t>(S)),
         Operand::imm(Sub), Operand::imm(Extra), std::move(Comment));
  }

  //===--- resources ------------------------------------------------------===//
  int acquireSlot() {
    if (!FreeSlots.empty()) {
      int S = FreeSlots.back();
      FreeSlots.pop_back();
      return S;
    }
    return NextSlot++;
  }
  void releaseSlot(int S) { FreeSlots.push_back(S); }
  int permanentSlot() { return NextSlot++; } // never recycled (pdl, caches)

  Operand frameOp(int Slot) { return Operand::mem(FP, FrameBase + Slot); }

  int acquireReg() {
    if (MC.Opts.RegisterTemps)
      for (uint8_t R : ScratchRegs)
        if (!ScratchInUse.count(R)) {
          ScratchInUse.insert(R);
          return R;
        }
    return -1;
  }

  /// A writable destination for a fresh temporary; frame slot when the
  /// value must survive calls or no register is free.
  TempVal acquireTemp(Rep R, bool SurvivesCalls) {
    if (!SurvivesCalls) {
      int Reg = acquireReg();
      if (Reg >= 0) {
        TempVal T;
        T.Op = Operand::reg(static_cast<uint8_t>(Reg));
        T.R = R;
        T.Owned = TempVal::Res::Reg;
        return T;
      }
    }
    TempVal T;
    T.Op = frameOp(acquireSlot());
    T.R = R;
    T.Owned = TempVal::Res::Frame;
    return T;
  }

  TempVal rtTemp(uint8_t Which, Rep R) {
    RtBusy[Which == RTB] = true;
    TempVal T;
    T.Op = Operand::reg(Which);
    T.R = R;
    T.Owned = Which == RTA ? TempVal::Res::RtA : TempVal::Res::RtB;
    return T;
  }

  void releaseOne(TempVal::Res Kind, const Operand &Op) {
    switch (Kind) {
    case TempVal::Res::RtA:
      RtBusy[0] = false;
      break;
    case TempVal::Res::RtB:
      RtBusy[1] = false;
      break;
    case TempVal::Res::Reg:
      ScratchInUse.erase(Op.R);
      break;
    case TempVal::Res::Frame:
      releaseSlot(static_cast<int>(Op.Imm) - FrameBase);
      break;
    default:
      break;
    }
  }

  void release(TempVal &T) {
    releaseOne(T.Owned, T.Op);
    releaseOne(T.Owned2, T.Op2);
    T.Owned = TempVal::Res::None;
    T.Owned2 = TempVal::Res::None;
  }

  /// Does evaluating \p N potentially clobber registers (calls, closures,
  /// catch unwinding)? Computed once per subtree.
  bool containsCall(const Node *N) {
    bool Found = false;
    forEachNode(N, [&Found](const Node *C) {
      if (Found)
        return;
      if (C->kind() == NodeKind::Catcher || C->kind() == NodeKind::Lambda) {
        Found = true;
        return;
      }
      if (const auto *Call = dyn_cast<CallNode>(C)) {
        if (Call->CalleeExpr && !Call->isLetLike()) {
          Found = true;
          return;
        }
        if (Call->Name) {
          const PrimInfo *P = lookupPrim(Call->Name);
          if (!P || P->Op == Prim::Funcall || P->Op == Prim::Apply)
            Found = true;
        }
      }
    });
    return Found;
  }

  /// Guards a held temporary against clobbering by \p Upcoming: volatile
  /// registers (RV) and scratch registers are spilled to the frame.
  void protectAcross(TempVal &T, const Node *Upcoming) {
    if (!Upcoming || !containsCall(Upcoming))
      return;
    bool Volatile = T.Op.M == Operand::Mode::Reg &&
                    (T.Op.R == RV || T.Op.R == 1 || T.Owned == TempVal::Res::RtA ||
                     T.Owned == TempVal::Res::RtB || T.Owned == TempVal::Res::Reg);
    // Variables allocated to registers by TNBIND were already forced to
    // the frame when live across calls, so only temps need saving.
    if (T.Op.M == Operand::Mode::Reg && T.Owned == TempVal::Res::None &&
        T.Op.R != FP && T.Op.R != SP && T.Op.R != ENV)
      Volatile = true;
    if (!Volatile)
      return;
    TempVal Saved;
    Saved.Op = frameOp(acquireSlot());
    Saved.R = T.R;
    Saved.Owned = TempVal::Res::Frame;
    emit(Opcode::MOV, Saved.Op, T.Op, {}, "Save across call");
    release(T);
    T = Saved;
  }

  //===--- variables ------------------------------------------------------===//
  struct VarAccess {
    enum class Kind { Direct, Heap, Special, Thunk } K;
    Operand Op;      ///< Direct
    int Depth = 0;   ///< Heap: hops from the innermost scope/incoming ENV
    int Index = 0;   ///< Heap: slot index
    bool Local = false; ///< Heap: starts from a local scope slot
    int ScopeSlot = 0;  ///< Heap/Local: frame slot holding the env pointer
  };

  VarAccess accessOf(const Variable *V);
  TempVal readVar(const Variable *V);
  void writeVar(const Variable *V, TempVal &Val);

  //===--- compilation ----------------------------------------------------===//
  bool prologue();
  void epilogue();

  TempVal compileValue(const Node *N);
  void compileInto(const Node *N, Operand Dest, Rep DestRep);
  void compileEffect(const Node *N);
  void compileJump(const Node *N, int TrueLabel, int FalseLabel);
  void compileTail(const Node *N);

  TempVal compileCallValue(const CallNode *C);
  TempVal compilePrimValue(const CallNode *C, const PrimInfo &P);
  TempVal compileLet(const CallNode *C, int Mode, Operand Dest, Rep DestRep);
  void setupLet(const CallNode *C, std::vector<const Variable *> &SpecialParams,
                bool &PushedEnvScope, std::vector<ThunkInfo *> &Thunks);
  void finishLet(const std::vector<const Variable *> &SpecialParams,
                 bool PushedEnvScope, const std::vector<ThunkInfo *> &Thunks,
                 int JoinLabel, Operand Dest, Rep DestRep, bool Tail);
  void compileUserCall(const CallNode *C, bool Tail, TempVal *Result);
  void compileFuncall(const CallNode *C, bool Tail, TempVal *Result,
                      bool IsApply);
  TempVal emitArithChain(const CallNode *C, Opcode Op, Rep R);
  TempVal compileArithOperand(const Node *N, Rep R);
  TempVal compileArefOperand(const CallNode *C);
  TempVal emitCarCdr(const CallNode *C, const PrimInfo &P);
  void emitJumpForPrim(const CallNode *C, const PrimInfo &P, int TrueLabel,
                       int FalseLabel);
  TempVal resultFromRv(Rep R);
  TempVal emitGenericBinary(Syscall S, int64_t Sub, const Node *A, const Node *B);
  int DynBinds = 0; ///< active dynamic bindings (disable tail calls)
  TempVal materialize(TempVal V, Rep Want, const Node *Origin);
  void moveInto(TempVal &V, Operand Dest, Rep DestRep, const Node *Origin);
  TempVal makeClosureValue(const LambdaNode *L);
  Operand currentEnvOperand();
  TempVal boolFromJump(const Node *N);
  void pushPointerArgs(const std::vector<Node *> &Args);
  TempVal ensureInReg(TempVal V);

  uint64_t litWord(Value V) { return MC.encodeStatic(V); }
};

//===----------------------------------------------------------------------===//
// ModuleCompiler
//===----------------------------------------------------------------------===//

uint64_t ModuleCompiler::symbolCell(const sexpr::Symbol *S) {
  auto It = Program.SymbolAddr.find(S);
  if (It != Program.SymbolAddr.end())
    return It->second;
  uint64_t Addr = /*StaticBase*/ 16 + Program.Static.size();
  Program.Static.push_back(~0ull); // globally unbound
  Program.SymbolAddr[S] = Addr;
  return Addr;
}

uint64_t ModuleCompiler::encodeStatic(Value V) {
  switch (V.kind()) {
  case sexpr::ValueKind::Nil:
    return NilWord;
  case sexpr::ValueKind::Fixnum:
    if (V.fixnum() < INT32_MIN || V.fixnum() > INT32_MAX) {
      Error = "literal fixnum out of the compiled 32-bit range";
      return NilWord;
    }
    return makeFixnum(V.fixnum());
  case sexpr::ValueKind::Symbol:
    return makePointer(Tag::Symbol, symbolCell(V.symbol()));
  case sexpr::ValueKind::Flonum: {
    uint64_t Addr = 16 + Program.Static.size();
    uint64_t Bits;
    double D = V.flonum();
    static_assert(sizeof(Bits) == sizeof(D));
    __builtin_memcpy(&Bits, &D, sizeof(Bits));
    Program.Static.push_back(Bits);
    return makePointer(Tag::SingleFlonum, Addr);
  }
  case sexpr::ValueKind::Ratio: {
    uint64_t Addr = 16 + Program.Static.size();
    Program.Static.push_back(static_cast<uint64_t>(V.ratio().Num));
    Program.Static.push_back(static_cast<uint64_t>(V.ratio().Den));
    return makePointer(Tag::Ratio, Addr);
  }
  case sexpr::ValueKind::String: {
    uint64_t Addr = 16 + Program.Static.size();
    Program.Static.push_back(V.stringValue().size());
    Program.StringAddr.push_back({Addr, V.stringValue()});
    return makePointer(Tag::String, Addr);
  }
  case sexpr::ValueKind::Cons: {
    uint64_t Car = encodeStatic(V.car());
    uint64_t Cdr = encodeStatic(V.cdr());
    uint64_t Addr = 16 + Program.Static.size();
    Program.Static.push_back(Car);
    Program.Static.push_back(Cdr);
    return makePointer(Tag::Cons, Addr);
  }
  }
  return NilWord;
}

int ModuleCompiler::liftClosure(const LambdaNode *L, ir::Function *IrF,
                                int EnvLayoutId) {
  ++NumClosuresLifted;
  // Module functions occupy indices [0, N); lifted closures follow in the
  // order they are queued, regardless of how many module functions have
  // been *compiled* so far.
  int Index = static_cast<int>(M.functions().size()) +
              static_cast<int>(LiftCounter);
  std::string Name = IrF->name() + "$lambda-" + std::to_string(++LiftCounter);
  LiftQueue.push_back({L, IrF, EnvLayoutId, Index, Name});
  return Index;
}

bool ModuleCompiler::run(CompileResult &Result) {
  // Pre-assign indices so mutually recursive calls resolve.
  for (const auto &F : M.functions())
    FuncIndex[F->name()] = static_cast<int>(FuncIndex.size());

  // Annotate and compile each module function.
  for (const auto &F : M.functions()) {
    annotate::annotate(*F, Opts.Annotate);
    FunctionCompiler FC(*this, *F, F->Root, /*IncomingLayout=*/-1, F->name());
    AsmFunction Asm;
    if (!FC.compile(Asm)) {
      Result.Error = Error;
      return false;
    }
    Program.Functions.push_back(std::move(Asm));
  }

  // Compile lifted closures (the queue may grow while we drain it).
  while (!LiftQueue.empty()) {
    LiftedLambda L = LiftQueue.front();
    LiftQueue.pop_front();
    assert(static_cast<int>(Program.Functions.size()) == L.FuncIndex &&
           "lift queue out of order");
    FunctionCompiler FC(*this, *L.IrFunction, L.Lambda, L.EnvLayoutId, L.Name);
    AsmFunction Asm;
    if (!FC.compile(Asm)) {
      Result.Error = Error;
      return false;
    }
    Program.Functions.push_back(std::move(Asm));
  }

  if (!Error.empty()) {
    Result.Error = Error;
    return false;
  }
  Result.Program = std::move(Program);
  Result.Ok = true;
  return true;
}

//===----------------------------------------------------------------------===//
// FunctionCompiler: frame, variables
//===----------------------------------------------------------------------===//

FunctionCompiler::VarAccess FunctionCompiler::accessOf(const Variable *V) {
  VarAccess A;
  if (ActiveThunks.count(V)) {
    A.K = VarAccess::Kind::Thunk;
    return A;
  }
  if (V->isSpecial()) {
    A.K = VarAccess::Kind::Special;
    return A;
  }
  if (V->HeapAllocated) {
    A.K = VarAccess::Kind::Heap;
    // Search local scopes innermost-first.
    int Hops = 0;
    for (size_t J = EnvScopes.size(); J > 0; --J, ++Hops) {
      const EnvLayout &L = MC.layout(EnvScopes[J - 1].LayoutId);
      for (size_t K = 0; K < L.Slots.size(); ++K)
        if (L.Slots[K] == V) {
          A.Local = true;
          A.ScopeSlot = EnvScopes[J - 1].FrameSlot;
          A.Depth = 0;
          A.Index = static_cast<int>(K);
          return A;
        }
    }
    // Then the captured chain.
    int Depth = 0;
    for (int Id = IncomingLayout; Id >= 0; Id = MC.layout(Id).Parent, ++Depth) {
      const EnvLayout &L = MC.layout(Id);
      for (size_t K = 0; K < L.Slots.size(); ++K)
        if (L.Slots[K] == V) {
          A.Local = false;
          A.Depth = Depth;
          A.Index = static_cast<int>(K);
          return A;
        }
    }
    fail("heap variable " + V->debugName() + " not found in any environment");
    return A;
  }
  A.K = VarAccess::Kind::Direct;
  auto It = Tns.VarLocs.find(V);
  if (It == Tns.VarLocs.end()) {
    fail("variable " + V->debugName() + " has no TN location");
    A.Op = Operand::reg(0);
    return A;
  }
  A.Op = It->second.isRegister() ? Operand::reg(It->second.Reg)
                                 : frameOp(It->second.Slot);
  return A;
}

TempVal FunctionCompiler::readVar(const Variable *V) {
  VarAccess A = accessOf(V);
  switch (A.K) {
  case VarAccess::Kind::Direct: {
    TempVal T;
    T.Op = A.Op;
    T.R = V->VarRep;
    return T;
  }
  case VarAccess::Kind::Heap: {
    int R = acquireReg();
    TempVal T;
    if (R < 0) {
      // Walk through R0 scratch, land in a frame temp.
      emit(Opcode::MOV, Operand::reg(0),
           A.Local ? frameOp(A.ScopeSlot) : Operand::reg(ENV), {}, "Env chain");
      for (int J = 0; J < A.Depth; ++J)
        emit(Opcode::MOV, Operand::reg(0), Operand::mem(0, 0), {}, "Outer env");
      T = acquireTemp(Rep::POINTER, false);
      emit(Opcode::MOV, T.Op, Operand::mem(0, 1 + A.Index), {},
           "Heap variable " + V->debugName());
      return T;
    }
    T.Op = Operand::reg(static_cast<uint8_t>(R));
    T.Owned = TempVal::Res::Reg;
    T.R = Rep::POINTER;
    emit(Opcode::MOV, T.Op,
         A.Local ? frameOp(A.ScopeSlot) : Operand::reg(ENV), {}, "Env chain");
    for (int J = 0; J < A.Depth; ++J)
      emit(Opcode::MOV, T.Op, Operand::mem(T.Op.R, 0), {}, "Outer env");
    emit(Opcode::MOV, T.Op, Operand::mem(T.Op.R, 1 + A.Index), {},
         "Heap variable " + V->debugName());
    return T;
  }
  case VarAccess::Kind::Special: {
    int Slot;
    auto It = SpecialCacheSlot.find(V->name());
    if (It != SpecialCacheSlot.end()) {
      Slot = It->second;
    } else {
      // Uncached (ablation): look it up right here, every time.
      emit(Opcode::PUSH, Operand::imm(static_cast<int64_t>(
                             litWord(Value::symbol(V->name())))));
      emitSyscall(Syscall::SpecLookup, 0, 0,
                  "Deep search for " + V->name()->name());
      Slot = -1;
    }
    TempVal Addr = acquireTemp(Rep::POINTER, false);
    if (Slot >= 0)
      emit(Opcode::MOV, Addr.Op, frameOp(Slot), {},
           "Cached binding address of " + V->name()->name());
    else
      emit(Opcode::MOV, Addr.Op, Operand::reg(RV));
    TempVal ValueT = Addr; // reuse the register for the value
    Operand Cell = Addr.Op.M == Operand::Mode::Reg
                       ? Operand::mem(Addr.Op.R, 0)
                       : Operand();
    if (Addr.Op.M != Operand::Mode::Reg) {
      // Frame temp: bounce through R0.
      emit(Opcode::MOV, Operand::reg(0), Addr.Op);
      Cell = Operand::mem(0, 0);
    }
    emit(Opcode::MOV, ValueT.Op, Cell, {}, "Special value " + V->name()->name());
    int LOk = Out.newLabel();
    emitJcc(Cond::NEQ, ValueT.Op, Operand::imm(static_cast<int64_t>(~0ull)), LOk);
    emitSyscall(Syscall::Error, static_cast<int64_t>(RtError::UnboundVariable));
    Out.placeLabel(LOk);
    ValueT.R = Rep::POINTER;
    return ValueT;
  }
  case VarAccess::Kind::Thunk:
    fail("jump thunk variable used as a value");
    return TempVal();
  }
  return TempVal();
}

void FunctionCompiler::writeVar(const Variable *V, TempVal &Val) {
  VarAccess A = accessOf(V);
  switch (A.K) {
  case VarAccess::Kind::Direct: {
    moveInto(Val, A.Op, V->VarRep, nullptr);
    return;
  }
  case VarAccess::Kind::Heap: {
    TempVal P = materialize(std::move(Val), Rep::POINTER, nullptr);
    Val = P;
    emit(Opcode::MOV, Operand::reg(0),
         A.Local ? frameOp(A.ScopeSlot) : Operand::reg(ENV), {}, "Env chain");
    for (int J = 0; J < A.Depth; ++J)
      emit(Opcode::MOV, Operand::reg(0), Operand::mem(0, 0));
    TempVal M = materialize(std::move(Val), Rep::POINTER, nullptr);
    Val = M;
    emit(Opcode::MOV, Operand::mem(0, 1 + A.Index), Val.Op, {},
         "Store heap variable " + V->debugName());
    return;
  }
  case VarAccess::Kind::Special: {
    TempVal P = materialize(std::move(Val), Rep::POINTER, nullptr);
    Val = P;
    auto It = SpecialCacheSlot.find(V->name());
    if (It != SpecialCacheSlot.end()) {
      emit(Opcode::MOV, Operand::reg(0), frameOp(It->second));
    } else {
      emit(Opcode::PUSH, Operand::imm(static_cast<int64_t>(
                             litWord(Value::symbol(V->name())))));
      emitSyscall(Syscall::SpecLookup);
      emit(Opcode::MOV, Operand::reg(0), Operand::reg(RV));
    }
    emit(Opcode::MOV, Operand::mem(0, 0), Val.Op, {},
         "Set special " + V->name()->name());
    return;
  }
  case VarAccess::Kind::Thunk:
    fail("setq of a jump thunk variable");
    return;
  }
}

//===----------------------------------------------------------------------===//
// FunctionCompiler: prologue / epilogue
//===----------------------------------------------------------------------===//

bool FunctionCompiler::compile(AsmFunction &Result) {
  analysis::analyzeTails(IrF);
  Tns = tnbind::allocateVariables(Entry, MC.Opts.TnBind);
  NextSlot = static_cast<int>(Tns.FrameSlots);
  for (uint8_t R = 7; R <= 26; ++R) {
    bool Taken = false;
    for (uint8_t Used : Tns.RegistersUsed)
      Taken |= Used == R;
    if (!Taken && isAllocatableReg(R))
      ScratchRegs.push_back(R);
  }

  if (prologue()) {
    EpilogueLabel = Out.newLabel();
    compileTail(Entry->Body);
    epilogue();
  }
  if (Failed) {
    MC.Error = Err;
    return false;
  }
  Out.FrameSize = static_cast<unsigned>(FrameBase + NextSlot);
  // Patch the frame allocation in the prologue.
  Out.Code[FramePatchIndex].B.Imm = NextSlot;
  std::string FinalizeError;
  if (!Out.finalize(FinalizeError)) {
    MC.Error = FinalizeError;
    return false;
  }
  Result = std::move(Out);
  return true;
}

bool FunctionCompiler::prologue() {
  const LambdaNode *L = Entry;
  size_t MinA = L->minArgs(), MaxA = L->maxFixedArgs();
  Out.MinArgs = static_cast<unsigned>(MinA);
  Out.MaxArgs = static_cast<unsigned>(MaxA);
  Out.HasRest = L->Rest != nullptr;
  if (L->Rest && !L->Optionals.empty()) {
    fail("&optional together with &rest is not supported by the compiler");
    return false;
  }

  emit(Opcode::PUSH, Operand::reg(FP), {}, {}, "Prologue: save FP");
  emit(Opcode::MOV, Operand::reg(FP), Operand::reg(SP));
  emit(Opcode::PUSH, Operand::reg(ENV), {}, {}, "Save caller environment");
  emit(Opcode::PUSH, Operand::reg(RTA), {}, {}, "Save argument count");
  if (IncomingLayout >= 0)
    emit(Opcode::MOV, Operand::reg(ENV), Operand::reg(1), {},
         "Closure environment from %CALLPTR");
  FramePatchIndex = static_cast<int>(Out.Code.size());
  emit(Opcode::ADD, Operand::reg(SP), Operand::imm(0), {}, "Allocate frame");

  // Arity checking (Table 4's first two instructions).
  int LArityOk = Out.newLabel();
  int LArityBad = Out.newLabel();
  emitJcc(Cond::LT, Operand::reg(RTA), Operand::imm(static_cast<int64_t>(MinA)),
          LArityBad, "Jump if too few arguments");
  if (!L->Rest)
    emitJcc(Cond::GT, Operand::reg(RTA), Operand::imm(static_cast<int64_t>(MaxA)),
            LArityBad, "Jump if too many arguments");
  emitJcc(Cond::GE, Operand::reg(RTA), Operand::imm(0), LArityOk);
  Out.placeLabel(LArityBad);
  emitSyscall(Syscall::Error, static_cast<int64_t>(RtError::WrongNumberOfArguments));
  Out.placeLabel(LArityOk);

  // Allocate a local heap environment when parameters are captured.
  std::vector<const Variable *> HeapParams;
  for (const Variable *P : L->allParams())
    if (P->HeapAllocated && !P->isSpecial())
      HeapParams.push_back(P);
  // Parameters land in a temp slot first when they need heap/special homes.
  std::unordered_map<const Variable *, int> StageSlot;
  for (const Variable *P : L->allParams())
    if (P->HeapAllocated || P->isSpecial())
      StageSlot[P] = permanentSlot();

  if (!HeapParams.empty()) {
    emit(Opcode::PUSH, currentEnvOperand(), {}, {}, "Parent environment");
    emitSyscall(Syscall::MakeEnv, static_cast<int64_t>(HeapParams.size()), 0,
                "Heap-allocate parameter environment");
    int Slot = permanentSlot();
    emit(Opcode::MOV, frameOp(Slot), Operand::reg(RV));
    EnvScopes.push_back({MC.addEnvLayout(IncomingLayout, HeapParams), Slot});
  }

  auto StoreParam = [&](const Variable *P, Operand Src) {
    auto It = StageSlot.find(P);
    if (It != StageSlot.end()) {
      if (Src.M != Operand::Mode::None) {
        emit(Opcode::MOV, Operand::reg(0), Src);
        emit(Opcode::MOV, frameOp(It->second), Operand::reg(0), {},
             "Stage parameter " + P->name()->name());
      }
      return;
    }
    TempVal V;
    V.Op = Src;
    V.R = Rep::POINTER;
    moveInto(V, accessOf(P).Op, P->VarRep, nullptr);
  };
  auto StoreParamValue = [&](const Variable *P, TempVal V) {
    auto It = StageSlot.find(P);
    if (It != StageSlot.end()) {
      moveInto(V, frameOp(It->second), Rep::POINTER, nullptr);
      release(V);
      return;
    }
    moveInto(V, accessOf(P).Op, P->VarRep, nullptr);
    release(V);
  };

  std::vector<Variable *> Params = L->allParams();
  size_t NFixed = L->Rest ? Params.size() - 1 : Params.size();

  if (L->Rest) {
    // Compute the argument base: FP - 2 - argc.
    emit(Opcode::MOV, Operand::reg(0), Operand::reg(FP));
    emit(Opcode::SUB, Operand::reg(0), Operand::mem(FP, 1), {},
         "FP - argc");
    emit(Opcode::SUB, Operand::reg(0), Operand::imm(2), {}, "Argument base");
    for (size_t I = 0; I < NFixed; ++I)
      StoreParam(Params[I], Operand::mem(0, static_cast<int64_t>(I)));
    emit(Opcode::MOV, Operand::reg(1), Operand::reg(0));
    emit(Opcode::ADD, Operand::reg(1), Operand::imm(static_cast<int64_t>(NFixed)));
    emit(Opcode::PUSH, Operand::reg(1), {}, {}, "&rest base");
    emit(Opcode::MOV, Operand::reg(1), Operand::mem(FP, 1));
    emit(Opcode::SUB, Operand::reg(1), Operand::imm(static_cast<int64_t>(NFixed)));
    emit(Opcode::PUSH, Operand::reg(1), {}, {}, "&rest count");
    emitSyscall(Syscall::MakeRestList, 0, 0, "Collect &rest arguments");
    TempVal RestV;
    RestV.Op = Operand::reg(RV);
    RestV.R = Rep::POINTER;
    StoreParamValue(L->Rest, RestV);
  } else if (L->Optionals.empty()) {
    // Exactly MaxA arguments.
    for (size_t I = 0; I < Params.size(); ++I)
      StoreParam(Params[I],
                 Operand::mem(FP, -2 - static_cast<int64_t>(Params.size()) +
                                      static_cast<int64_t>(I)));
  } else {
    // Table 4's dispatch on the number of arguments: one customized case
    // per supplied-argument count, each initializing the defaulted
    // parameters with arbitrary computations.
    int LBody = Out.newLabel();
    std::vector<int> CaseLabels;
    for (size_t K = MinA; K <= MaxA; ++K)
      CaseLabels.push_back(Out.newLabel());
    for (size_t K = MinA; K < MaxA; ++K)
      emitJcc(Cond::EQ, Operand::reg(RTA), Operand::imm(static_cast<int64_t>(K)),
              CaseLabels[K - MinA], "Dispatch on number of arguments");
    emitJcc(Cond::GE, Operand::reg(RTA), Operand::imm(0),
            CaseLabels[MaxA - MinA]);
    for (size_t K = MinA; K <= MaxA; ++K) {
      Out.placeLabel(CaseLabels[K - MinA],
                     "Come here if " + std::to_string(K) + " arguments");
      for (size_t I = 0; I < K; ++I)
        StoreParam(Params[I], Operand::mem(FP, -2 - static_cast<int64_t>(K) +
                                                   static_cast<int64_t>(I)));
      for (size_t I = K; I < MaxA; ++I) {
        const auto &O = L->Optionals[I - MinA];
        TempVal D = compileValue(O.Default);
        StoreParamValue(O.Var, D);
      }
      emitJcc(Cond::GE, Operand::reg(RTA), Operand::imm(0), LBody);
    }
    Out.placeLabel(LBody);
  }

  // Move heap-allocated parameters into the environment and push dynamic
  // bindings for special parameters, in parameter order.
  for (const Variable *P : Params) {
    auto It = StageSlot.find(P);
    if (It == StageSlot.end())
      continue;
    if (P->isSpecial()) {
      emit(Opcode::PUSH, Operand::imm(static_cast<int64_t>(
                             litWord(Value::symbol(P->name())))));
      emit(Opcode::PUSH, frameOp(It->second));
      emitSyscall(Syscall::SpecBind, 0, 0, "Bind special " + P->name()->name());
      ++SpecialBindCount;
    } else {
      TempVal V;
      V.Op = frameOp(It->second);
      V.R = Rep::POINTER;
      writeVar(P, V);
    }
  }

  // Special-variable lookup caching (§4.4): one search per special on
  // entry, after our own bindings are in place.
  if (MC.Opts.SpecialCache) {
    // Symbols this unit dynamically binds anywhere below the entry (LET
    // special params) cannot use the entry-time cache: the binding they
    // must see does not exist yet. The paper's smallest-subtree refinement
    // would cache those at the inner binding; we fall back to per-access
    // lookups for them.
    std::unordered_set<const sexpr::Symbol *> BoundBelow;
    forEachNode(static_cast<const Node *>(Entry), [&](const Node *N) {
      const auto *IL = dyn_cast<LambdaNode>(N);
      if (!IL || IL == Entry)
        return;
      for (const Variable *P : IL->allParams())
        if (P->isSpecial())
          BoundBelow.insert(P->name());
    });
    std::vector<const sexpr::Symbol *> Specials;
    forEachNode(static_cast<const Node *>(Entry), [&](const Node *N) {
      const Variable *V = nullptr;
      if (const auto *VR = dyn_cast<VarRefNode>(N))
        V = VR->Var;
      else if (const auto *SQ = dyn_cast<SetqNode>(N))
        V = SQ->Var;
      if (V && V->isSpecial() && !BoundBelow.count(V->name())) {
        for (const sexpr::Symbol *S : Specials)
          if (S == V->name())
            return;
        Specials.push_back(V->name());
      }
    });
    for (const sexpr::Symbol *S : Specials) {
      int Slot = permanentSlot();
      emit(Opcode::PUSH,
           Operand::imm(static_cast<int64_t>(litWord(Value::symbol(S)))));
      emitSyscall(Syscall::SpecLookup, 0, 0,
                  "Cache binding address of " + S->name());
      emit(Opcode::MOV, frameOp(Slot), Operand::reg(RV));
      SpecialCacheSlot[S] = Slot;
      ++NumSpecialsCached;
    }
  }
  return !Failed;
}

void FunctionCompiler::epilogue() {
  Out.placeLabel(EpilogueLabel, "Function exit");
  if (SpecialBindCount > 0)
    emitSyscall(Syscall::SpecUnbind, static_cast<int64_t>(SpecialBindCount), 0,
                "Unwind dynamic bindings");
  emit(Opcode::MOV, Operand::reg(ENV), Operand::mem(FP, 0), {},
       "Restore caller environment");
  emit(Opcode::MOV, Operand::reg(SP), Operand::reg(FP));
  emit(Opcode::POP, Operand::reg(FP), {}, {}, "Restore FP");
  emit(Opcode::RET, {}, {}, {}, "Return");
}

Operand FunctionCompiler::currentEnvOperand() {
  if (!EnvScopes.empty())
    return frameOp(EnvScopes.back().FrameSlot);
  if (IncomingLayout >= 0)
    return Operand::reg(ENV);
  return Operand::imm(0); // NIL: no environment
}

//===----------------------------------------------------------------------===//
// Expression compilation is split into CodegenExpr.inc (same translation
// unit) to keep each file reviewable.
//===----------------------------------------------------------------------===//

#include "codegen/CodegenExpr.inc"

} // namespace

CompileResult codegen::compileModule(ir::Module &M, const CodegenOptions &Opts) {
  stats::PhaseTimer Timer("codegen");
  CompileResult Result;
  ModuleCompiler MC(M, Opts);
  MC.run(Result);
  if (Result.Ok) {
    for (const s1::AsmFunction &F : Result.Program.Functions) {
      ++NumFunctionsCompiled;
      NumInstructionsEmitted += F.Code.size();
      NumMovsEmitted += F.countOpcode(s1::Opcode::MOV);
    }
  }
  return Result;
}
