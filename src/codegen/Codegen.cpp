//===- codegen/Codegen.cpp ------------------------------------------------===//

#include "codegen/Codegen.h"

#include "analysis/Analysis.h"
#include "ir/Primitives.h"
#include "sexpr/Numbers.h"
#include "sexpr/Printer.h"
#include "stats/Stats.h"
#include "support/Parallel.h"

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

S1_STAT(NumFunctionsCompiled, "codegen.functions",
        "functions (incl. lifted closures) compiled");
S1_STAT(NumClosuresLifted, "codegen.closures.lifted",
        "closure bodies lifted to their own units");
S1_STAT(NumInstructionsEmitted, "codegen.instructions",
        "assembly instructions emitted");
S1_STAT(NumMovsEmitted, "codegen.movs", "data-movement MOVs emitted");
S1_STAT(NumSpecialsCached, "codegen.specials.cached",
        "special-variable binding addresses cached at entry");

using namespace s1lisp;
using namespace s1lisp::codegen;
using namespace s1lisp::ir;
using namespace s1lisp::s1;
using sexpr::Value;
using tnbind::Location;

namespace {

/// Compile-time shape of one heap environment frame.
struct EnvLayout {
  int Parent = -1;
  std::vector<const Variable *> Slots;
};

struct LiftedLambda {
  const LambdaNode *Lambda;
  ir::Function *IrFunction;
  int EnvLayoutId; ///< layout of the environment the closure captures
  int LocalIndex;  ///< ordinal among this unit's lifted closures
  std::string Name;
};

/// Compiles ONE module function (plus every closure lifted out of it) into
/// a private, relocatable unit: a local static pool addressed from
/// StaticBase, unit-local symbol ordinals inside Symbol-tagged words, and
/// unit-local lift indices inside MakeClosure operands. Units are
/// independent, so they compile on worker threads; the serial link in
/// codegen::compileModule relocates them in module order.
class ModuleCompiler {
public:
  ModuleCompiler(ir::Module &M, const CodegenOptions &Opts,
                 const std::unordered_map<std::string, int> &FuncIndex)
      : M(M), Opts(Opts), FuncIndex(FuncIndex) {}

  bool run(ir::Function &F);

  /// Encodes a literal into the unit's static pool; returns its word.
  /// Symbol words carry a unit-local ordinal in the address field until
  /// the link rewrites them.
  uint64_t encodeStatic(Value V);
  uint64_t symbolCell(const sexpr::Symbol *S);
  uint64_t tWord() { return encodeStatic(Value::symbol(M.Syms.t())); }

  int functionIndexFor(const std::string &Name) const {
    auto It = FuncIndex.find(Name);
    return It == FuncIndex.end() ? -1 : It->second;
  }

  int addEnvLayout(int Parent, std::vector<const Variable *> Slots) {
    Layouts.push_back({Parent, std::move(Slots)});
    return static_cast<int>(Layouts.size()) - 1;
  }
  const EnvLayout &layout(int Id) const { return Layouts[Id]; }

  /// Queues a closure body for compilation; returns the encoded unit-local
  /// function reference (-1 - ordinal) the link resolves to a global index.
  int liftClosure(const LambdaNode *L, ir::Function *IrF, int EnvLayoutId);

  ir::Module &M;
  const CodegenOptions &Opts;
  std::string Error;

  //===--- link inputs ----------------------------------------------------===//
  /// [0] is the module function; lifted closures follow in queue order.
  std::vector<s1::AsmFunction> Fns;
  /// Local data pool (cons cells, flonum/ratio payloads, string headers —
  /// never symbol cells), addressed from StaticBase.
  std::vector<uint64_t> Static;
  /// Pool slots holding encoded words that the link must relocate (cons
  /// car/cdr). Raw payload words (float bits, ratio ints, string lengths)
  /// are deliberately absent: they can alias any tag pattern.
  std::vector<size_t> PtrSlots;
  /// Symbols in first-use order; a Symbol word's address field indexes here.
  std::vector<const sexpr::Symbol *> SymList;
  /// Static string objects at unit-local addresses.
  std::vector<std::pair<uint64_t, std::string>> Strings;

private:
  const std::unordered_map<std::string, int> &FuncIndex;
  std::unordered_map<const sexpr::Symbol *, uint64_t> SymIdx;
  std::vector<EnvLayout> Layouts;
  std::deque<LiftedLambda> LiftQueue;
  unsigned LiftCounter = 0;
};

//===----------------------------------------------------------------------===//
// Function compilation
//===----------------------------------------------------------------------===//

/// A value being carried between emissions: where it is, what rep it has,
/// and which resource (if any) must be released after use.
struct TempVal {
  Operand Op;
  Rep R = Rep::POINTER;
  enum class Res : uint8_t { None, RtA, RtB, Reg, Frame, Literal } Owned = Res::None;
  Value Lit; ///< set when Owned == Literal (unmaterialized constant)
  /// A second held resource (e.g. the array base register of a fused
  /// indexed operand, whose index register is the first resource).
  Operand Op2;
  Res Owned2 = Res::None;

  static TempVal literal(Value V) {
    TempVal T;
    T.Owned = Res::Literal;
    T.Lit = V;
    return T;
  }
  bool isLiteral() const { return Owned == Res::Literal; }
  bool ownsRt() const {
    return Owned == Res::RtA || Owned == Res::RtB || Owned2 == Res::RtA ||
           Owned2 == Res::RtB;
  }
};

class FunctionCompiler {
public:
  FunctionCompiler(ModuleCompiler &MC, ir::Function &IrF, const LambdaNode *Entry,
                   int IncomingLayout, std::string Name)
      : MC(MC), IrF(IrF), Entry(Entry), IncomingLayout(IncomingLayout) {
    Out.Name = std::move(Name);
  }

  bool compile(AsmFunction &Result);

private:
  //===--- infrastructure -------------------------------------------------===//
  ModuleCompiler &MC;
  ir::Function &IrF;
  const LambdaNode *Entry;
  int IncomingLayout;
  AsmFunction Out;
  std::string Err;
  bool Failed = false;

  tnbind::TnBindResult Tns;
  int FrameBase = 2; ///< slots 0/1 hold saved ENV and argc
  int NextSlot = 0;  ///< next free frame slot (relative)
  std::vector<int> FreeSlots;
  std::vector<uint8_t> ScratchRegs;
  std::unordered_set<uint8_t> ScratchInUse;
  bool RtBusy[2] = {false, false};
  int EpilogueLabel = -1;
  int FramePatchIndex = -1;
  unsigned SpecialBindCount = 0; ///< dynamic bindings made by the prologue
  std::unordered_map<const sexpr::Symbol *, int> SpecialCacheSlot;
  std::unordered_set<const Node *> ContainsCallCache;
  bool ContainsCallComputed = false;

  /// Active local heap-environment scopes, innermost last.
  struct EnvScope {
    int LayoutId;
    int FrameSlot;
  };
  std::vector<EnvScope> EnvScopes;

  /// Jump-strategy thunks awaiting emission.
  struct ThunkInfo {
    int Label = -1;
    const Node *Body = nullptr;
    bool Tail = false;
    Operand Dest;
    Rep DestRep = Rep::POINTER;
    int JoinLabel = -1;
  };
  std::unordered_map<const Variable *, ThunkInfo *> ActiveThunks;
  std::deque<ThunkInfo> ThunkStorage;

  /// Progbody contexts.
  struct ProgCtx {
    const ProgBodyNode *Body;
    std::unordered_map<const sexpr::Symbol *, int> TagLabels;
    int ExitLabel;
    Operand Dest;
    Rep DestRep;
    bool Tail;
  };
  std::vector<ProgCtx> ProgCtxs;

  void fail(const std::string &Msg) {
    if (!Failed)
      Err = Out.Name + ": " + Msg;
    Failed = true;
  }

  void emit(Opcode Op, Operand A = {}, Operand B = {}, Operand X = {},
            std::string Comment = "") {
    Instruction I;
    I.Op = Op;
    I.A = A;
    I.B = B;
    I.X = X;
    I.Comment = std::move(Comment);
    Out.emit(std::move(I));
  }
  void emitJcc(Cond C, Operand A, Operand B, int Label, std::string Comment = "",
               bool FloatCmp = false) {
    Instruction I;
    I.Op = FloatCmp ? Opcode::FJMPZ : Opcode::JMPZ;
    I.C = C;
    I.A = A;
    I.B = B;
    I.X = Operand::label(Label);
    I.Comment = std::move(Comment);
    Out.emit(std::move(I));
  }
  void emitSyscall(Syscall S, int64_t Sub = 0, int64_t Extra = 0,
                   std::string Comment = "") {
    emit(Opcode::SYSCALL, Operand::imm(static_cast<int64_t>(S)),
         Operand::imm(Sub), Operand::imm(Extra), std::move(Comment));
  }

  //===--- resources ------------------------------------------------------===//
  int acquireSlot() {
    if (!FreeSlots.empty()) {
      int S = FreeSlots.back();
      FreeSlots.pop_back();
      return S;
    }
    return NextSlot++;
  }
  void releaseSlot(int S) { FreeSlots.push_back(S); }
  int permanentSlot() { return NextSlot++; } // never recycled (pdl, caches)

  Operand frameOp(int Slot) { return Operand::mem(FP, FrameBase + Slot); }

  int acquireReg() {
    if (MC.Opts.RegisterTemps)
      for (uint8_t R : ScratchRegs)
        if (!ScratchInUse.count(R)) {
          ScratchInUse.insert(R);
          return R;
        }
    return -1;
  }

  /// A writable destination for a fresh temporary; frame slot when the
  /// value must survive calls or no register is free.
  TempVal acquireTemp(Rep R, bool SurvivesCalls) {
    if (!SurvivesCalls) {
      int Reg = acquireReg();
      if (Reg >= 0) {
        TempVal T;
        T.Op = Operand::reg(static_cast<uint8_t>(Reg));
        T.R = R;
        T.Owned = TempVal::Res::Reg;
        return T;
      }
    }
    TempVal T;
    T.Op = frameOp(acquireSlot());
    T.R = R;
    T.Owned = TempVal::Res::Frame;
    return T;
  }

  TempVal rtTemp(uint8_t Which, Rep R) {
    RtBusy[Which == RTB] = true;
    TempVal T;
    T.Op = Operand::reg(Which);
    T.R = R;
    T.Owned = Which == RTA ? TempVal::Res::RtA : TempVal::Res::RtB;
    return T;
  }

  void releaseOne(TempVal::Res Kind, const Operand &Op) {
    switch (Kind) {
    case TempVal::Res::RtA:
      RtBusy[0] = false;
      break;
    case TempVal::Res::RtB:
      RtBusy[1] = false;
      break;
    case TempVal::Res::Reg:
      ScratchInUse.erase(Op.R);
      break;
    case TempVal::Res::Frame:
      releaseSlot(static_cast<int>(Op.Imm) - FrameBase);
      break;
    default:
      break;
    }
  }

  void release(TempVal &T) {
    releaseOne(T.Owned, T.Op);
    releaseOne(T.Owned2, T.Op2);
    T.Owned = TempVal::Res::None;
    T.Owned2 = TempVal::Res::None;
  }

  /// Does evaluating \p N potentially clobber registers (calls, closures,
  /// catch unwinding)? Computed once per subtree.
  bool containsCall(const Node *N) {
    bool Found = false;
    forEachNode(N, [&Found](const Node *C) {
      if (Found)
        return;
      if (C->kind() == NodeKind::Catcher || C->kind() == NodeKind::Lambda) {
        Found = true;
        return;
      }
      if (const auto *Call = dyn_cast<CallNode>(C)) {
        if (Call->CalleeExpr && !Call->isLetLike()) {
          Found = true;
          return;
        }
        if (Call->Name) {
          const PrimInfo *P = lookupPrim(Call->Name);
          if (!P || P->Op == Prim::Funcall || P->Op == Prim::Apply)
            Found = true;
        }
      }
    });
    return Found;
  }

  /// Guards a held temporary against clobbering by \p Upcoming: volatile
  /// registers (RV) and scratch registers are spilled to the frame.
  void protectAcross(TempVal &T, const Node *Upcoming) {
    if (!Upcoming || !containsCall(Upcoming))
      return;
    bool Volatile = T.Op.M == Operand::Mode::Reg &&
                    (T.Op.R == RV || T.Op.R == 1 || T.Owned == TempVal::Res::RtA ||
                     T.Owned == TempVal::Res::RtB || T.Owned == TempVal::Res::Reg);
    // Variables allocated to registers by TNBIND were already forced to
    // the frame when live across calls, so only temps need saving.
    if (T.Op.M == Operand::Mode::Reg && T.Owned == TempVal::Res::None &&
        T.Op.R != FP && T.Op.R != SP && T.Op.R != ENV)
      Volatile = true;
    if (!Volatile)
      return;
    TempVal Saved;
    Saved.Op = frameOp(acquireSlot());
    Saved.R = T.R;
    Saved.Owned = TempVal::Res::Frame;
    emit(Opcode::MOV, Saved.Op, T.Op, {}, "Save across call");
    release(T);
    T = Saved;
  }

  //===--- variables ------------------------------------------------------===//
  struct VarAccess {
    enum class Kind { Direct, Heap, Special, Thunk } K;
    Operand Op;      ///< Direct
    int Depth = 0;   ///< Heap: hops from the innermost scope/incoming ENV
    int Index = 0;   ///< Heap: slot index
    bool Local = false; ///< Heap: starts from a local scope slot
    int ScopeSlot = 0;  ///< Heap/Local: frame slot holding the env pointer
  };

  VarAccess accessOf(const Variable *V);
  TempVal readVar(const Variable *V);
  void writeVar(const Variable *V, TempVal &Val);

  //===--- compilation ----------------------------------------------------===//
  bool prologue();
  void epilogue();

  TempVal compileValue(const Node *N);
  void compileInto(const Node *N, Operand Dest, Rep DestRep);
  void compileEffect(const Node *N);
  void compileJump(const Node *N, int TrueLabel, int FalseLabel);
  void compileTail(const Node *N);

  TempVal compileCallValue(const CallNode *C);
  TempVal compilePrimValue(const CallNode *C, const PrimInfo &P);
  TempVal compileLet(const CallNode *C, int Mode, Operand Dest, Rep DestRep);
  void setupLet(const CallNode *C, std::vector<const Variable *> &SpecialParams,
                bool &PushedEnvScope, std::vector<ThunkInfo *> &Thunks);
  void finishLet(const std::vector<const Variable *> &SpecialParams,
                 bool PushedEnvScope, const std::vector<ThunkInfo *> &Thunks,
                 int JoinLabel, Operand Dest, Rep DestRep, bool Tail);
  void compileUserCall(const CallNode *C, bool Tail, TempVal *Result);
  void compileFuncall(const CallNode *C, bool Tail, TempVal *Result,
                      bool IsApply);
  TempVal emitArithChain(const CallNode *C, Opcode Op, Rep R);
  TempVal compileArithOperand(const Node *N, Rep R);
  TempVal compileArefOperand(const CallNode *C);
  TempVal emitCarCdr(const CallNode *C, const PrimInfo &P);
  void emitJumpForPrim(const CallNode *C, const PrimInfo &P, int TrueLabel,
                       int FalseLabel);
  TempVal resultFromRv(Rep R);
  TempVal emitGenericBinary(Syscall S, int64_t Sub, const Node *A, const Node *B);
  int DynBinds = 0; ///< active dynamic bindings (disable tail calls)
  TempVal materialize(TempVal V, Rep Want, const Node *Origin);
  void moveInto(TempVal &V, Operand Dest, Rep DestRep, const Node *Origin);
  TempVal makeClosureValue(const LambdaNode *L);
  Operand currentEnvOperand();
  TempVal boolFromJump(const Node *N);
  void pushPointerArgs(const std::vector<Node *> &Args);
  TempVal ensureInReg(TempVal V);

  uint64_t litWord(Value V) { return MC.encodeStatic(V); }
};

//===----------------------------------------------------------------------===//
// ModuleCompiler
//===----------------------------------------------------------------------===//

uint64_t ModuleCompiler::symbolCell(const sexpr::Symbol *S) {
  auto It = SymIdx.find(S);
  if (It != SymIdx.end())
    return It->second;
  uint64_t Idx = SymList.size();
  SymList.push_back(S);
  SymIdx[S] = Idx;
  return Idx;
}

uint64_t ModuleCompiler::encodeStatic(Value V) {
  switch (V.kind()) {
  case sexpr::ValueKind::Nil:
    return NilWord;
  case sexpr::ValueKind::Fixnum:
    if (V.fixnum() < INT32_MIN || V.fixnum() > INT32_MAX) {
      Error = "literal fixnum out of the compiled 32-bit range";
      return NilWord;
    }
    return makeFixnum(V.fixnum());
  case sexpr::ValueKind::Symbol:
    return makePointer(Tag::Symbol, symbolCell(V.symbol()));
  case sexpr::ValueKind::Flonum: {
    uint64_t Addr = 16 + Static.size();
    uint64_t Bits;
    double D = V.flonum();
    static_assert(sizeof(Bits) == sizeof(D));
    __builtin_memcpy(&Bits, &D, sizeof(Bits));
    Static.push_back(Bits);
    return makePointer(Tag::SingleFlonum, Addr);
  }
  case sexpr::ValueKind::Ratio: {
    uint64_t Addr = 16 + Static.size();
    Static.push_back(static_cast<uint64_t>(V.ratio().Num));
    Static.push_back(static_cast<uint64_t>(V.ratio().Den));
    return makePointer(Tag::Ratio, Addr);
  }
  case sexpr::ValueKind::String: {
    uint64_t Addr = 16 + Static.size();
    Static.push_back(V.stringValue().size());
    Strings.push_back({Addr, V.stringValue()});
    return makePointer(Tag::String, Addr);
  }
  case sexpr::ValueKind::Cons: {
    uint64_t Car = encodeStatic(V.car());
    uint64_t Cdr = encodeStatic(V.cdr());
    uint64_t Addr = 16 + Static.size();
    PtrSlots.push_back(Static.size());
    Static.push_back(Car);
    PtrSlots.push_back(Static.size());
    Static.push_back(Cdr);
    return makePointer(Tag::Cons, Addr);
  }
  }
  return NilWord;
}

int ModuleCompiler::liftClosure(const LambdaNode *L, ir::Function *IrF,
                                int EnvLayoutId) {
  ++NumClosuresLifted;
  int LocalIndex = static_cast<int>(LiftCounter);
  std::string Name = IrF->name() + "$lambda-" + std::to_string(++LiftCounter);
  LiftQueue.push_back({L, IrF, EnvLayoutId, LocalIndex, Name});
  // The global index of a lifted closure is unknowable while units compile
  // concurrently; MakeClosure carries -1 - ordinal until the link patches
  // it. Module-function references stay positive and need no patching.
  return -1 - LocalIndex;
}

bool ModuleCompiler::run(ir::Function &F) {
  annotate::annotate(F, Opts.Annotate);
  {
    FunctionCompiler FC(*this, F, F.Root, /*IncomingLayout=*/-1, F.name());
    AsmFunction Asm;
    if (!FC.compile(Asm))
      return false;
    Fns.push_back(std::move(Asm));
  }

  // Compile lifted closures (the queue may grow while we drain it).
  while (!LiftQueue.empty()) {
    LiftedLambda L = LiftQueue.front();
    LiftQueue.pop_front();
    assert(static_cast<int>(Fns.size()) == L.LocalIndex + 1 &&
           "lift queue out of order");
    FunctionCompiler FC(*this, *L.IrFunction, L.Lambda, L.EnvLayoutId, L.Name);
    AsmFunction Asm;
    if (!FC.compile(Asm))
      return false;
    Fns.push_back(std::move(Asm));
  }
  return Error.empty();
}

//===----------------------------------------------------------------------===//
// FunctionCompiler: frame, variables
//===----------------------------------------------------------------------===//

FunctionCompiler::VarAccess FunctionCompiler::accessOf(const Variable *V) {
  VarAccess A;
  if (ActiveThunks.count(V)) {
    A.K = VarAccess::Kind::Thunk;
    return A;
  }
  if (V->isSpecial()) {
    A.K = VarAccess::Kind::Special;
    return A;
  }
  if (V->HeapAllocated) {
    A.K = VarAccess::Kind::Heap;
    // Search local scopes innermost-first.
    int Hops = 0;
    for (size_t J = EnvScopes.size(); J > 0; --J, ++Hops) {
      const EnvLayout &L = MC.layout(EnvScopes[J - 1].LayoutId);
      for (size_t K = 0; K < L.Slots.size(); ++K)
        if (L.Slots[K] == V) {
          A.Local = true;
          A.ScopeSlot = EnvScopes[J - 1].FrameSlot;
          A.Depth = 0;
          A.Index = static_cast<int>(K);
          return A;
        }
    }
    // Then the captured chain.
    int Depth = 0;
    for (int Id = IncomingLayout; Id >= 0; Id = MC.layout(Id).Parent, ++Depth) {
      const EnvLayout &L = MC.layout(Id);
      for (size_t K = 0; K < L.Slots.size(); ++K)
        if (L.Slots[K] == V) {
          A.Local = false;
          A.Depth = Depth;
          A.Index = static_cast<int>(K);
          return A;
        }
    }
    fail("heap variable " + V->debugName() + " not found in any environment");
    return A;
  }
  A.K = VarAccess::Kind::Direct;
  auto It = Tns.VarLocs.find(V);
  if (It == Tns.VarLocs.end()) {
    fail("variable " + V->debugName() + " has no TN location");
    A.Op = Operand::reg(0);
    return A;
  }
  A.Op = It->second.isRegister() ? Operand::reg(It->second.Reg)
                                 : frameOp(It->second.Slot);
  return A;
}

TempVal FunctionCompiler::readVar(const Variable *V) {
  VarAccess A = accessOf(V);
  switch (A.K) {
  case VarAccess::Kind::Direct: {
    TempVal T;
    T.Op = A.Op;
    T.R = V->VarRep;
    return T;
  }
  case VarAccess::Kind::Heap: {
    int R = acquireReg();
    TempVal T;
    if (R < 0) {
      // Walk through R0 scratch, land in a frame temp.
      emit(Opcode::MOV, Operand::reg(0),
           A.Local ? frameOp(A.ScopeSlot) : Operand::reg(ENV), {}, "Env chain");
      for (int J = 0; J < A.Depth; ++J)
        emit(Opcode::MOV, Operand::reg(0), Operand::mem(0, 0), {}, "Outer env");
      T = acquireTemp(Rep::POINTER, false);
      emit(Opcode::MOV, T.Op, Operand::mem(0, 1 + A.Index), {},
           "Heap variable " + V->debugName());
      return T;
    }
    T.Op = Operand::reg(static_cast<uint8_t>(R));
    T.Owned = TempVal::Res::Reg;
    T.R = Rep::POINTER;
    emit(Opcode::MOV, T.Op,
         A.Local ? frameOp(A.ScopeSlot) : Operand::reg(ENV), {}, "Env chain");
    for (int J = 0; J < A.Depth; ++J)
      emit(Opcode::MOV, T.Op, Operand::mem(T.Op.R, 0), {}, "Outer env");
    emit(Opcode::MOV, T.Op, Operand::mem(T.Op.R, 1 + A.Index), {},
         "Heap variable " + V->debugName());
    return T;
  }
  case VarAccess::Kind::Special: {
    int Slot;
    auto It = SpecialCacheSlot.find(V->name());
    if (It != SpecialCacheSlot.end()) {
      Slot = It->second;
    } else {
      // Uncached (ablation): look it up right here, every time.
      emit(Opcode::PUSH, Operand::imm(static_cast<int64_t>(
                             litWord(Value::symbol(V->name())))));
      emitSyscall(Syscall::SpecLookup, 0, 0,
                  "Deep search for " + V->name()->name());
      Slot = -1;
    }
    TempVal Addr = acquireTemp(Rep::POINTER, false);
    if (Slot >= 0)
      emit(Opcode::MOV, Addr.Op, frameOp(Slot), {},
           "Cached binding address of " + V->name()->name());
    else
      emit(Opcode::MOV, Addr.Op, Operand::reg(RV));
    TempVal ValueT = Addr; // reuse the register for the value
    Operand Cell = Addr.Op.M == Operand::Mode::Reg
                       ? Operand::mem(Addr.Op.R, 0)
                       : Operand();
    if (Addr.Op.M != Operand::Mode::Reg) {
      // Frame temp: bounce through R0.
      emit(Opcode::MOV, Operand::reg(0), Addr.Op);
      Cell = Operand::mem(0, 0);
    }
    emit(Opcode::MOV, ValueT.Op, Cell, {}, "Special value " + V->name()->name());
    int LOk = Out.newLabel();
    emitJcc(Cond::NEQ, ValueT.Op, Operand::imm(static_cast<int64_t>(~0ull)), LOk);
    emitSyscall(Syscall::Error, static_cast<int64_t>(RtError::UnboundVariable));
    Out.placeLabel(LOk);
    ValueT.R = Rep::POINTER;
    return ValueT;
  }
  case VarAccess::Kind::Thunk:
    fail("jump thunk variable used as a value");
    return TempVal();
  }
  return TempVal();
}

void FunctionCompiler::writeVar(const Variable *V, TempVal &Val) {
  VarAccess A = accessOf(V);
  switch (A.K) {
  case VarAccess::Kind::Direct: {
    moveInto(Val, A.Op, V->VarRep, nullptr);
    return;
  }
  case VarAccess::Kind::Heap: {
    TempVal P = materialize(std::move(Val), Rep::POINTER, nullptr);
    Val = P;
    emit(Opcode::MOV, Operand::reg(0),
         A.Local ? frameOp(A.ScopeSlot) : Operand::reg(ENV), {}, "Env chain");
    for (int J = 0; J < A.Depth; ++J)
      emit(Opcode::MOV, Operand::reg(0), Operand::mem(0, 0));
    TempVal M = materialize(std::move(Val), Rep::POINTER, nullptr);
    Val = M;
    emit(Opcode::MOV, Operand::mem(0, 1 + A.Index), Val.Op, {},
         "Store heap variable " + V->debugName());
    return;
  }
  case VarAccess::Kind::Special: {
    TempVal P = materialize(std::move(Val), Rep::POINTER, nullptr);
    Val = P;
    auto It = SpecialCacheSlot.find(V->name());
    if (It != SpecialCacheSlot.end()) {
      emit(Opcode::MOV, Operand::reg(0), frameOp(It->second));
    } else {
      emit(Opcode::PUSH, Operand::imm(static_cast<int64_t>(
                             litWord(Value::symbol(V->name())))));
      emitSyscall(Syscall::SpecLookup);
      emit(Opcode::MOV, Operand::reg(0), Operand::reg(RV));
    }
    emit(Opcode::MOV, Operand::mem(0, 0), Val.Op, {},
         "Set special " + V->name()->name());
    return;
  }
  case VarAccess::Kind::Thunk:
    fail("setq of a jump thunk variable");
    return;
  }
}

//===----------------------------------------------------------------------===//
// FunctionCompiler: prologue / epilogue
//===----------------------------------------------------------------------===//

bool FunctionCompiler::compile(AsmFunction &Result) {
  analysis::analyzeTails(IrF);
  Tns = tnbind::allocateVariables(Entry, MC.Opts.TnBind);
  NextSlot = static_cast<int>(Tns.FrameSlots);
  for (uint8_t R = 7; R <= 26; ++R) {
    bool Taken = false;
    for (uint8_t Used : Tns.RegistersUsed)
      Taken |= Used == R;
    if (!Taken && isAllocatableReg(R))
      ScratchRegs.push_back(R);
  }

  if (prologue()) {
    EpilogueLabel = Out.newLabel();
    compileTail(Entry->Body);
    epilogue();
  }
  if (Failed) {
    MC.Error = Err;
    return false;
  }
  Out.FrameSize = static_cast<unsigned>(FrameBase + NextSlot);
  // Patch the frame allocation in the prologue.
  Out.Code[FramePatchIndex].B.Imm = NextSlot;
  std::string FinalizeError;
  if (!Out.finalize(FinalizeError)) {
    MC.Error = FinalizeError;
    return false;
  }
  Result = std::move(Out);
  return true;
}

bool FunctionCompiler::prologue() {
  const LambdaNode *L = Entry;
  size_t MinA = L->minArgs(), MaxA = L->maxFixedArgs();
  Out.MinArgs = static_cast<unsigned>(MinA);
  Out.MaxArgs = static_cast<unsigned>(MaxA);
  Out.HasRest = L->Rest != nullptr;
  if (L->Rest && !L->Optionals.empty()) {
    fail("&optional together with &rest is not supported by the compiler");
    return false;
  }

  emit(Opcode::PUSH, Operand::reg(FP), {}, {}, "Prologue: save FP");
  emit(Opcode::MOV, Operand::reg(FP), Operand::reg(SP));
  emit(Opcode::PUSH, Operand::reg(ENV), {}, {}, "Save caller environment");
  emit(Opcode::PUSH, Operand::reg(RTA), {}, {}, "Save argument count");
  if (IncomingLayout >= 0)
    emit(Opcode::MOV, Operand::reg(ENV), Operand::reg(1), {},
         "Closure environment from %CALLPTR");
  FramePatchIndex = static_cast<int>(Out.Code.size());
  emit(Opcode::ADD, Operand::reg(SP), Operand::imm(0), {}, "Allocate frame");

  // Arity checking (Table 4's first two instructions).
  int LArityOk = Out.newLabel();
  int LArityBad = Out.newLabel();
  emitJcc(Cond::LT, Operand::reg(RTA), Operand::imm(static_cast<int64_t>(MinA)),
          LArityBad, "Jump if too few arguments");
  if (!L->Rest)
    emitJcc(Cond::GT, Operand::reg(RTA), Operand::imm(static_cast<int64_t>(MaxA)),
            LArityBad, "Jump if too many arguments");
  emitJcc(Cond::GE, Operand::reg(RTA), Operand::imm(0), LArityOk);
  Out.placeLabel(LArityBad);
  emitSyscall(Syscall::Error, static_cast<int64_t>(RtError::WrongNumberOfArguments));
  Out.placeLabel(LArityOk);

  // Allocate a local heap environment when parameters are captured.
  std::vector<const Variable *> HeapParams;
  for (const Variable *P : L->allParams())
    if (P->HeapAllocated && !P->isSpecial())
      HeapParams.push_back(P);
  // Parameters land in a temp slot first when they need heap/special homes.
  std::unordered_map<const Variable *, int> StageSlot;
  for (const Variable *P : L->allParams())
    if (P->HeapAllocated || P->isSpecial())
      StageSlot[P] = permanentSlot();

  if (!HeapParams.empty()) {
    emit(Opcode::PUSH, currentEnvOperand(), {}, {}, "Parent environment");
    emitSyscall(Syscall::MakeEnv, static_cast<int64_t>(HeapParams.size()), 0,
                "Heap-allocate parameter environment");
    int Slot = permanentSlot();
    emit(Opcode::MOV, frameOp(Slot), Operand::reg(RV));
    EnvScopes.push_back({MC.addEnvLayout(IncomingLayout, HeapParams), Slot});
  }

  auto StoreParam = [&](const Variable *P, Operand Src) {
    auto It = StageSlot.find(P);
    if (It != StageSlot.end()) {
      if (Src.M != Operand::Mode::None) {
        emit(Opcode::MOV, Operand::reg(0), Src);
        emit(Opcode::MOV, frameOp(It->second), Operand::reg(0), {},
             "Stage parameter " + P->name()->name());
      }
      return;
    }
    TempVal V;
    V.Op = Src;
    V.R = Rep::POINTER;
    moveInto(V, accessOf(P).Op, P->VarRep, nullptr);
  };
  auto StoreParamValue = [&](const Variable *P, TempVal V) {
    auto It = StageSlot.find(P);
    if (It != StageSlot.end()) {
      moveInto(V, frameOp(It->second), Rep::POINTER, nullptr);
      release(V);
      return;
    }
    moveInto(V, accessOf(P).Op, P->VarRep, nullptr);
    release(V);
  };

  std::vector<Variable *> Params = L->allParams();
  size_t NFixed = L->Rest ? Params.size() - 1 : Params.size();

  if (L->Rest) {
    // Compute the argument base: FP - 2 - argc.
    emit(Opcode::MOV, Operand::reg(0), Operand::reg(FP));
    emit(Opcode::SUB, Operand::reg(0), Operand::mem(FP, 1), {},
         "FP - argc");
    emit(Opcode::SUB, Operand::reg(0), Operand::imm(2), {}, "Argument base");
    for (size_t I = 0; I < NFixed; ++I)
      StoreParam(Params[I], Operand::mem(0, static_cast<int64_t>(I)));
    emit(Opcode::MOV, Operand::reg(1), Operand::reg(0));
    emit(Opcode::ADD, Operand::reg(1), Operand::imm(static_cast<int64_t>(NFixed)));
    emit(Opcode::PUSH, Operand::reg(1), {}, {}, "&rest base");
    emit(Opcode::MOV, Operand::reg(1), Operand::mem(FP, 1));
    emit(Opcode::SUB, Operand::reg(1), Operand::imm(static_cast<int64_t>(NFixed)));
    emit(Opcode::PUSH, Operand::reg(1), {}, {}, "&rest count");
    emitSyscall(Syscall::MakeRestList, 0, 0, "Collect &rest arguments");
    TempVal RestV;
    RestV.Op = Operand::reg(RV);
    RestV.R = Rep::POINTER;
    StoreParamValue(L->Rest, RestV);
  } else if (L->Optionals.empty()) {
    // Exactly MaxA arguments.
    for (size_t I = 0; I < Params.size(); ++I)
      StoreParam(Params[I],
                 Operand::mem(FP, -2 - static_cast<int64_t>(Params.size()) +
                                      static_cast<int64_t>(I)));
  } else {
    // Table 4's dispatch on the number of arguments: one customized case
    // per supplied-argument count, each initializing the defaulted
    // parameters with arbitrary computations.
    int LBody = Out.newLabel();
    std::vector<int> CaseLabels;
    for (size_t K = MinA; K <= MaxA; ++K)
      CaseLabels.push_back(Out.newLabel());
    for (size_t K = MinA; K < MaxA; ++K)
      emitJcc(Cond::EQ, Operand::reg(RTA), Operand::imm(static_cast<int64_t>(K)),
              CaseLabels[K - MinA], "Dispatch on number of arguments");
    emitJcc(Cond::GE, Operand::reg(RTA), Operand::imm(0),
            CaseLabels[MaxA - MinA]);
    for (size_t K = MinA; K <= MaxA; ++K) {
      Out.placeLabel(CaseLabels[K - MinA],
                     "Come here if " + std::to_string(K) + " arguments");
      for (size_t I = 0; I < K; ++I)
        StoreParam(Params[I], Operand::mem(FP, -2 - static_cast<int64_t>(K) +
                                                   static_cast<int64_t>(I)));
      for (size_t I = K; I < MaxA; ++I) {
        const auto &O = L->Optionals[I - MinA];
        TempVal D = compileValue(O.Default);
        StoreParamValue(O.Var, D);
      }
      emitJcc(Cond::GE, Operand::reg(RTA), Operand::imm(0), LBody);
    }
    Out.placeLabel(LBody);
  }

  // Move heap-allocated parameters into the environment and push dynamic
  // bindings for special parameters, in parameter order.
  for (const Variable *P : Params) {
    auto It = StageSlot.find(P);
    if (It == StageSlot.end())
      continue;
    if (P->isSpecial()) {
      emit(Opcode::PUSH, Operand::imm(static_cast<int64_t>(
                             litWord(Value::symbol(P->name())))));
      emit(Opcode::PUSH, frameOp(It->second));
      emitSyscall(Syscall::SpecBind, 0, 0, "Bind special " + P->name()->name());
      ++SpecialBindCount;
    } else {
      TempVal V;
      V.Op = frameOp(It->second);
      V.R = Rep::POINTER;
      writeVar(P, V);
    }
  }

  // Special-variable lookup caching (§4.4): one search per special on
  // entry, after our own bindings are in place.
  if (MC.Opts.SpecialCache) {
    // Symbols this unit dynamically binds anywhere below the entry (LET
    // special params) cannot use the entry-time cache: the binding they
    // must see does not exist yet. The paper's smallest-subtree refinement
    // would cache those at the inner binding; we fall back to per-access
    // lookups for them.
    std::unordered_set<const sexpr::Symbol *> BoundBelow;
    forEachNode(static_cast<const Node *>(Entry), [&](const Node *N) {
      const auto *IL = dyn_cast<LambdaNode>(N);
      if (!IL || IL == Entry)
        return;
      for (const Variable *P : IL->allParams())
        if (P->isSpecial())
          BoundBelow.insert(P->name());
    });
    std::vector<const sexpr::Symbol *> Specials;
    forEachNode(static_cast<const Node *>(Entry), [&](const Node *N) {
      const Variable *V = nullptr;
      if (const auto *VR = dyn_cast<VarRefNode>(N))
        V = VR->Var;
      else if (const auto *SQ = dyn_cast<SetqNode>(N))
        V = SQ->Var;
      if (V && V->isSpecial() && !BoundBelow.count(V->name())) {
        for (const sexpr::Symbol *S : Specials)
          if (S == V->name())
            return;
        Specials.push_back(V->name());
      }
    });
    for (const sexpr::Symbol *S : Specials) {
      int Slot = permanentSlot();
      emit(Opcode::PUSH,
           Operand::imm(static_cast<int64_t>(litWord(Value::symbol(S)))));
      emitSyscall(Syscall::SpecLookup, 0, 0,
                  "Cache binding address of " + S->name());
      emit(Opcode::MOV, frameOp(Slot), Operand::reg(RV));
      SpecialCacheSlot[S] = Slot;
      ++NumSpecialsCached;
    }
  }
  return !Failed;
}

void FunctionCompiler::epilogue() {
  Out.placeLabel(EpilogueLabel, "Function exit");
  if (SpecialBindCount > 0)
    emitSyscall(Syscall::SpecUnbind, static_cast<int64_t>(SpecialBindCount), 0,
                "Unwind dynamic bindings");
  emit(Opcode::MOV, Operand::reg(ENV), Operand::mem(FP, 0), {},
       "Restore caller environment");
  emit(Opcode::MOV, Operand::reg(SP), Operand::reg(FP));
  emit(Opcode::POP, Operand::reg(FP), {}, {}, "Restore FP");
  emit(Opcode::RET, {}, {}, {}, "Return");
}

Operand FunctionCompiler::currentEnvOperand() {
  if (!EnvScopes.empty())
    return frameOp(EnvScopes.back().FrameSlot);
  if (IncomingLayout >= 0)
    return Operand::reg(ENV);
  return Operand::imm(0); // NIL: no environment
}

//===----------------------------------------------------------------------===//
// Expression compilation is split into CodegenExpr.inc (same translation
// unit) to keep each file reviewable.
//===----------------------------------------------------------------------===//

#include "codegen/CodegenExpr.inc"

} // namespace

size_t CompiledUnit::byteSize() const {
  size_t Bytes = sizeof(CompiledUnit) + Error.size();
  for (const s1::AsmFunction &F : Fns) {
    Bytes += sizeof(s1::AsmFunction) + F.Name.size() +
             F.Code.size() * sizeof(s1::Instruction) +
             F.LabelPos.size() * sizeof(int);
    for (const s1::Instruction &I : F.Code)
      Bytes += I.Comment.size();
  }
  Bytes += Static.size() * sizeof(uint64_t);
  Bytes += PtrSlots.size() * sizeof(size_t);
  for (const std::string &S : SymNames)
    Bytes += sizeof(std::string) + S.size();
  for (const auto &[Addr, Str] : Strings)
    Bytes += sizeof(Addr) + sizeof(std::string) + Str.size();
  return Bytes;
}

CompiledUnit codegen::compileFunctionUnit(
    ir::Module &M, ir::Function &F, const CodegenOptions &Opts,
    const std::unordered_map<std::string, int> &FuncIndex) {
  stats::PhaseTimer Timer("codegen");
  ModuleCompiler MC(M, Opts, FuncIndex);
  CompiledUnit Unit;
  if (!MC.run(F)) {
    Unit.Error = MC.Error;
    return Unit;
  }
  Unit.Ok = true;
  Unit.Fns = std::move(MC.Fns);
  Unit.Static = std::move(MC.Static);
  Unit.PtrSlots = std::move(MC.PtrSlots);
  Unit.SymNames.reserve(MC.SymList.size());
  for (const sexpr::Symbol *S : MC.SymList)
    Unit.SymNames.push_back(S->name());
  Unit.Strings = std::move(MC.Strings);
  return Unit;
}

CompileResult codegen::linkUnits(ir::Module &M,
                                 const std::vector<const CompiledUnit *> &Units) {
  stats::PhaseTimer Timer("codegen");
  CompileResult Result;
  const size_t NumUnits = Units.size();
  for (const CompiledUnit *U : Units)
    if (!U->Ok) {
      Result.Error = U->Error;
      return Result;
    }

  //===--- link: relocate units in module order ---------------------------===//
  s1::Program P;
  const int NumModuleFns = static_cast<int>(NumUnits);
  std::vector<uint64_t> Delta(NumUnits); // unit-local addr + Delta = global
  std::vector<int> LiftBase(NumUnits);   // lifts of earlier units
  uint64_t DataWords = 0;
  int Lifts = 0;
  for (size_t U = 0; U < NumUnits; ++U) {
    Delta[U] = DataWords;
    DataWords += Units[U]->Static.size();
    LiftBase[U] = Lifts;
    Lifts += static_cast<int>(Units[U]->Fns.size()) - 1;
  }

  // Units carry symbol names; resolve them against this module's table
  // (a cached unit may have been compiled for a different Module).
  std::vector<std::vector<const sexpr::Symbol *>> Syms(NumUnits);
  for (size_t U = 0; U < NumUnits; ++U) {
    Syms[U].reserve(Units[U]->SymNames.size());
    for (const std::string &Name : Units[U]->SymNames)
      Syms[U].push_back(M.Syms.intern(Name));
  }

  // Data image: unit pools in module order, then one cell per distinct
  // symbol (first-global-use order), initialized globally unbound.
  P.Static.reserve(DataWords);
  for (const CompiledUnit *U : Units)
    P.Static.insert(P.Static.end(), U->Static.begin(), U->Static.end());
  for (size_t U = 0; U < NumUnits; ++U)
    for (const sexpr::Symbol *S : Syms[U])
      if (!P.SymbolAddr.count(S)) {
        P.SymbolAddr[S] = /*StaticBase*/ 16 + P.Static.size();
        P.Static.push_back(~0ull);
      }

  // Rewrites one encoded word from unit U's local space into the global
  // one. Non-pointer tags (immediates, raw small ints, ~0 markers) pass
  // through untouched.
  auto PatchWord = [&](uint64_t W, size_t U) -> uint64_t {
    switch (tagOf(W)) {
    case Tag::Symbol:
      return makePointer(Tag::Symbol, P.SymbolAddr.at(Syms[U][addrOf(W)]));
    case Tag::Cons:
    case Tag::SingleFlonum:
    case Tag::String:
    case Tag::Ratio:
      return (W & ~AddrMask) | ((addrOf(W) + Delta[U]) & AddrMask);
    default:
      return W;
    }
  };

  for (size_t U = 0; U < NumUnits; ++U)
    for (size_t Slot : Units[U]->PtrSlots) {
      uint64_t &W = P.Static[Delta[U] + Slot];
      W = PatchWord(W, U);
    }
  for (size_t U = 0; U < NumUnits; ++U)
    for (const auto &[Addr, Str] : Units[U]->Strings)
      P.StringAddr.push_back({Addr + Delta[U], Str});

  // Functions: module functions in order, then each unit's lifted closures
  // in unit order. Instruction immediates are patched by tag; MakeClosure
  // operands carrying encoded unit-local lift ordinals (negative) become
  // global indices first, so the general pass sees only small positives.
  // Units stay untouched (a cached unit links into many programs): the
  // patches apply to the program's own copies.
  auto PatchFn = [&](s1::AsmFunction &F, size_t U) {
    for (s1::Instruction &I : F.Code) {
      if (I.Op == Opcode::SYSCALL && I.A.M == Operand::Mode::Imm &&
          I.A.Imm == static_cast<int64_t>(Syscall::MakeClosure) &&
          I.B.Imm < 0)
        I.B.Imm = NumModuleFns + LiftBase[U] + (-1 - I.B.Imm);
      for (Operand *O : {&I.A, &I.B, &I.X})
        if (O->M == Operand::Mode::Imm)
          O->Imm = static_cast<int64_t>(
              PatchWord(static_cast<uint64_t>(O->Imm), U));
    }
  };
  for (size_t U = 0; U < NumUnits; ++U) {
    P.Functions.push_back(Units[U]->Fns[0]);
    PatchFn(P.Functions.back(), U);
  }
  for (size_t U = 0; U < NumUnits; ++U)
    for (size_t L = 1; L < Units[U]->Fns.size(); ++L) {
      P.Functions.push_back(Units[U]->Fns[L]);
      PatchFn(P.Functions.back(), U);
    }

  Result.Program = std::move(P);
  Result.Ok = true;
  for (const s1::AsmFunction &F : Result.Program.Functions) {
    ++NumFunctionsCompiled;
    NumInstructionsEmitted += F.Code.size();
    NumMovsEmitted += F.countOpcode(s1::Opcode::MOV);
  }
  return Result;
}

CompileResult codegen::compileModule(ir::Module &M, const CodegenOptions &Opts) {
  // Pre-assign module-function indices so mutually recursive calls resolve
  // identically in every unit.
  std::unordered_map<std::string, int> FuncIndex;
  for (const auto &F : M.functions())
    FuncIndex[F->name()] = static_cast<int>(FuncIndex.size());

  const size_t NumUnits = M.functions().size();
  std::vector<CompiledUnit> Units(NumUnits);

  // Worker threads leave stats at their default (off); per-unit tallies
  // applied in unit order after the join keep counter totals identical to
  // a serial run.
  std::vector<stats::LocalTally> Tallies(NumUnits);
  const bool Tally = stats::enabled();
  support::parallelFor(NumUnits, Opts.Jobs, [&](size_t U) {
    std::optional<stats::TallyScope> Scope;
    if (Tally)
      Scope.emplace(Tallies[U]);
    Units[U] = compileFunctionUnit(M, *M.functions()[U], Opts, FuncIndex);
  });
  if (Tally)
    for (stats::LocalTally &T : Tallies)
      T.apply();

  std::vector<const CompiledUnit *> UnitPtrs;
  UnitPtrs.reserve(NumUnits);
  for (const CompiledUnit &U : Units)
    UnitPtrs.push_back(&U);
  return linkUnits(M, UnitPtrs);
}
