//===- support/Parallel.h - Minimal task fan-out ----------------*- C++ -*-===//
///
/// \file
/// parallelFor: run N independent tasks on up to J threads. Deliberately
/// tiny — an atomic work index over std::thread, no pool reuse, no
/// futures — because the only callers (the fuzzing oracle, the throughput
/// bench) fan out coarse tasks whose runtime dwarfs thread start-up.
///
/// Tasks must be independent and must not assume which thread runs them.
/// Note that stats collection and phase timing are thread-local and
/// default to off on new threads (stats/Stats.h), so spawned tasks do not
/// contribute to the spawning thread's counters.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_SUPPORT_PARALLEL_H
#define S1LISP_SUPPORT_PARALLEL_H

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace s1lisp {
namespace support {

/// Invokes Fn(I) for every I in [0, NumTasks), on the calling thread when
/// Jobs <= 1 (or there is at most one task), otherwise on min(Jobs,
/// NumTasks) worker threads. Returns after every task has completed.
/// Exceptions must not escape Fn.
template <typename FnT>
void parallelFor(size_t NumTasks, unsigned Jobs, FnT Fn) {
  if (Jobs <= 1 || NumTasks <= 1) {
    for (size_t I = 0; I < NumTasks; ++I)
      Fn(I);
    return;
  }
  std::atomic<size_t> Next{0};
  auto Worker = [&] {
    for (size_t I = Next.fetch_add(1); I < NumTasks; I = Next.fetch_add(1))
      Fn(I);
  };
  size_t NThreads = std::min<size_t>(Jobs, NumTasks);
  std::vector<std::thread> Threads;
  Threads.reserve(NThreads);
  for (size_t T = 0; T < NThreads; ++T)
    Threads.emplace_back(Worker);
  for (std::thread &T : Threads)
    T.join();
}

} // namespace support
} // namespace s1lisp

#endif // S1LISP_SUPPORT_PARALLEL_H
