//===- support/Parallel.h - Pooled task fan-out -----------------*- C++ -*-===//
///
/// \file
/// parallelFor: run N independent tasks on up to J workers. Workers come
/// from one lazily created process-wide thread pool (sized to the
/// hardware), so a fan-out costs a queue push instead of J thread
/// creations — small-module compiles and the jobs sweep in
/// bench_compile_throughput no longer pay thread start-up per call. The
/// calling thread participates in its own fan-out, which both uses the
/// blocked caller's core and guarantees progress even when every pool
/// thread is busy with other fan-outs (the compile-service daemon issues
/// concurrent ones).
///
/// Tasks must be independent and must not assume which thread runs them.
/// Every parallel task runs under stats::ThreadBaselineScope: stats
/// collection, tally routing, and phase timing are at their fresh-thread
/// defaults (off), whether the task lands on a pool thread or on the
/// participating caller — spawned tasks do not contribute to the
/// spawning thread's counters (stats/Stats.h).
///
/// A parallelFor issued from inside a pool task runs its tasks inline on
/// that thread: nested fan-outs cannot deadlock waiting for pool
/// capacity they themselves occupy.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_SUPPORT_PARALLEL_H
#define S1LISP_SUPPORT_PARALLEL_H

#include "stats/Stats.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>

namespace s1lisp {
namespace support {

namespace detail {

/// Shared state of one parallelFor fan-out. Every runner (pool helpers
/// and the caller) invokes Run, which pulls task indices from Next until
/// they run out; the caller then blocks until the last helper has
/// retired. Run is built inside the parallelFor template so the pool's
/// own translation unit (layered below stats) never references stats
/// symbols.
struct ForState {
  std::function<void()> Run;
  size_t NumTasks = 0;
  std::atomic<size_t> Next{0};

  std::mutex Mu;
  std::condition_variable AllDone;
  size_t OutstandingHelpers = 0;
};

/// Enqueues \p Helpers runner entries for \p St on the shared pool
/// (creating the pool's threads on first use).
void dispatchHelpers(std::shared_ptr<ForState> St, size_t Helpers);

/// Blocks until every helper dispatched for \p St has retired. Helpers
/// that dequeue after the caller drained the queue retire immediately.
void waitHelpers(ForState &St);

/// True on a pool thread (nested fan-outs run inline there).
bool onPoolThread();

} // namespace detail

/// Invokes Fn(I) for every I in [0, NumTasks), on the calling thread when
/// Jobs <= 1 (or there is at most one task), otherwise on up to Jobs
/// workers: the caller plus min(Jobs, NumTasks) - 1 pool helpers. Returns
/// after every task has completed. Exceptions must not escape Fn.
template <typename FnT>
void parallelFor(size_t NumTasks, unsigned Jobs, FnT Fn) {
  if (Jobs <= 1 || NumTasks <= 1 || detail::onPoolThread()) {
    for (size_t I = 0; I < NumTasks; ++I)
      Fn(I);
    return;
  }
  auto St = std::make_shared<detail::ForState>();
  St->NumTasks = NumTasks;
  // Fn by reference: the caller joins every helper before returning, so
  // Fn outlives every Run invocation.
  detail::ForState *S = St.get();
  St->Run = [&Fn, S] {
    stats::ThreadBaselineScope Baseline;
    for (size_t I = S->Next.fetch_add(1); I < S->NumTasks;
         I = S->Next.fetch_add(1))
      Fn(I);
  };
  detail::dispatchHelpers(St, std::min<size_t>(Jobs, NumTasks) - 1);
  St->Run();
  detail::waitHelpers(*St);
}

} // namespace support
} // namespace s1lisp

#endif // S1LISP_SUPPORT_PARALLEL_H
