//===- support/Arena.h - Bump allocator for IR objects ----------*- C++ -*-===//
///
/// \file
/// A chunked bump-pointer arena. IR nodes and variables are allocated here
/// and live exactly as long as the owning ir::Function (or until the
/// function compacts itself with ir::Function::reclaim()); destructors of
/// allocated objects are run when the arena dies.
///
/// Most node classes are trivially destructible, so the common allocation
/// is a pointer bump; only objects with std::vector members (progn, call,
/// lambda, caseq, progbody, Variable) register a destructor record.
///
/// For the arena-vs-heap row of bench_compile_throughput the allocator can
/// be switched process-wide back to per-object `new`/`delete`
/// (setBumpEnabled(false)); the bookkeeping is identical either way, only
/// the storage strategy changes.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_SUPPORT_ARENA_H
#define S1LISP_SUPPORT_ARENA_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace s1lisp {

/// Owns a growing set of objects in bump-allocated chunks and destroys
/// them all at once.
class NodeArena {
public:
  NodeArena() = default;
  NodeArena(const NodeArena &) = delete;
  NodeArena &operator=(const NodeArena &) = delete;
  NodeArena(NodeArena &&O) noexcept { *this = std::move(O); }
  NodeArena &operator=(NodeArena &&O) noexcept {
    if (this != &O) {
      destroyAll();
      Chunks = std::move(O.Chunks);
      Cur = O.Cur;
      End = O.End;
      Dtors = std::move(O.Dtors);
      HeapObjects = std::move(O.HeapObjects);
      ObjectTally = O.ObjectTally;
      ByteTally = O.ByteTally;
      O.Chunks.clear();
      O.Dtors.clear();
      O.HeapObjects.clear();
      O.Cur = O.End = nullptr;
      O.ObjectTally = O.ByteTally = 0;
    }
    return *this;
  }

  ~NodeArena() { destroyAll(); }

  /// Allocates and constructs a T owned by the arena.
  template <typename T, typename... Args> T *create(Args &&...As) {
    ++ObjectTally;
    if (!bumpEnabled()) {
      T *Ptr = new T(std::forward<Args>(As)...);
      ByteTally += sizeof(T);
      HeapObjects.push_back({Ptr, [](void *P) { delete static_cast<T *>(P); }});
      return Ptr;
    }
    void *Mem = allocate(sizeof(T), alignof(T));
    T *Ptr = new (Mem) T(std::forward<Args>(As)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      Dtors.push_back({Ptr, [](void *P) { static_cast<T *>(P)->~T(); }});
    return Ptr;
  }

  /// Objects allocated over the arena's lifetime (live and garbage alike).
  size_t size() const { return ObjectTally; }
  /// Bytes handed out (chunk headroom not counted).
  size_t allocatedBytes() const { return ByteTally; }

  /// Process-wide storage-strategy switch: true (default) bump-allocates,
  /// false falls back to per-object heap allocation. Exists solely so the
  /// throughput bench can measure what the arena buys; flip it only while
  /// no arena is live.
  static void setBumpEnabled(bool On) { bumpFlag().store(On, std::memory_order_relaxed); }
  static bool bumpEnabled() { return bumpFlag().load(std::memory_order_relaxed); }

private:
  static constexpr size_t ChunkBytes = 64 * 1024;

  struct Owned {
    void *Ptr;
    void (*Dtor)(void *);
  };

  void *allocate(size_t Size, size_t Align) {
    char *P = reinterpret_cast<char *>(
        (reinterpret_cast<uintptr_t>(Cur) + (Align - 1)) & ~(Align - 1));
    if (P + Size > End) {
      size_t Cap = Size + Align > ChunkBytes ? Size + Align : ChunkBytes;
      Chunks.push_back(std::make_unique<char[]>(Cap));
      Cur = Chunks.back().get();
      End = Cur + Cap;
      P = reinterpret_cast<char *>(
          (reinterpret_cast<uintptr_t>(Cur) + (Align - 1)) & ~(Align - 1));
    }
    Cur = P + Size;
    ByteTally += Size;
    return P;
  }

  void destroyAll() {
    // Destroy in reverse allocation order.
    for (size_t I = Dtors.size(); I > 0; --I)
      Dtors[I - 1].Dtor(Dtors[I - 1].Ptr);
    for (size_t I = HeapObjects.size(); I > 0; --I)
      HeapObjects[I - 1].Dtor(HeapObjects[I - 1].Ptr);
    Dtors.clear();
    HeapObjects.clear();
    Chunks.clear();
    Cur = End = nullptr;
  }

  static std::atomic<bool> &bumpFlag() {
    static std::atomic<bool> Flag{true};
    return Flag;
  }

  std::vector<std::unique_ptr<char[]>> Chunks;
  char *Cur = nullptr;
  char *End = nullptr;
  std::vector<Owned> Dtors;       ///< bump-allocated, non-trivial dtor
  std::vector<Owned> HeapObjects; ///< heap-fallback mode
  size_t ObjectTally = 0;
  size_t ByteTally = 0;
};

/// Historical name; the IR factories allocate from a NodeArena.
using Arena = NodeArena;

} // namespace s1lisp

#endif // S1LISP_SUPPORT_ARENA_H
