//===- support/Arena.h - Bump allocator for IR objects ----------*- C++ -*-===//
///
/// \file
/// A simple bump-pointer arena. IR nodes and variables are allocated here
/// and live exactly as long as the owning ir::Function; destructors of
/// allocated objects are run when the arena dies.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_SUPPORT_ARENA_H
#define S1LISP_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace s1lisp {

/// Owns a growing set of heap objects and destroys them all at once.
///
/// Unlike a raw bump allocator this arena remembers each object's destructor,
/// because IR nodes contain std::vector members.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  ~Arena() {
    // Destroy in reverse allocation order.
    for (size_t I = Objects.size(); I > 0; --I)
      Objects[I - 1].Dtor(Objects[I - 1].Ptr);
  }

  /// Allocates and constructs a T owned by the arena.
  template <typename T, typename... Args> T *create(Args &&...As) {
    T *Ptr = new T(std::forward<Args>(As)...);
    Objects.push_back({Ptr, [](void *P) { delete static_cast<T *>(P); }});
    return Ptr;
  }

  size_t size() const { return Objects.size(); }

private:
  struct Owned {
    void *Ptr;
    void (*Dtor)(void *);
  };
  std::vector<Owned> Objects;
};

} // namespace s1lisp

#endif // S1LISP_SUPPORT_ARENA_H
