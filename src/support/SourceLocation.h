//===- support/SourceLocation.h - Positions in Lisp source ------*- C++ -*-===//
//
// Part of the S1LISP project: a reproduction of Brooks, Gabriel & Steele,
// "An Optimizing Compiler for Lexically Scoped LISP" (1982).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line/column positions used by the reader and by diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_SUPPORT_SOURCELOCATION_H
#define S1LISP_SUPPORT_SOURCELOCATION_H

#include <cstdint>
#include <string>

namespace s1lisp {

/// A 1-based line/column position in a source buffer. Line 0 means "unknown".
struct SourceLocation {
  uint32_t Line = 0;
  uint32_t Column = 0;

  bool isValid() const { return Line != 0; }

  /// Renders "line:column", or "<unknown>" when invalid.
  std::string str() const;
};

inline bool operator==(SourceLocation A, SourceLocation B) {
  return A.Line == B.Line && A.Column == B.Column;
}

} // namespace s1lisp

#endif // S1LISP_SUPPORT_SOURCELOCATION_H
