//===- support/SourceLocation.cpp -----------------------------------------===//

#include "support/SourceLocation.h"

using namespace s1lisp;

std::string SourceLocation::str() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(Line) + ":" + std::to_string(Column);
}
