//===- support/Diag.cpp ---------------------------------------------------===//

#include "support/Diag.h"

using namespace s1lisp;

std::string Diagnostic::str() const {
  std::string Out;
  if (Loc.isValid())
    Out += Loc.str() + ": ";
  Out += Severity == DiagSeverity::Error ? "error: " : "warning: ";
  Out += Message;
  return Out;
}

std::string DiagEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
