//===- support/Parallel.cpp - The shared worker pool ----------------------===//

#include "support/Parallel.h"

#include <deque>
#include <thread>
#include <vector>

using namespace s1lisp;
using namespace s1lisp::support;

namespace {

thread_local bool IsPoolThread = false;

/// The process-wide pool: hardware_concurrency threads created on first
/// fan-out and joined at process exit. Entries are (fan-out, one helper
/// slot) pairs; a helper that dequeues after its fan-out's tasks are
/// drained retires immediately, so stale entries cost nothing.
class Pool {
public:
  static Pool &instance() {
    static Pool P;
    return P;
  }

  void enqueue(std::shared_ptr<detail::ForState> St, size_t Copies) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      for (size_t I = 0; I < Copies; ++I)
        Queue.push_back(St);
    }
    if (Copies == 1)
      WorkReady.notify_one();
    else
      WorkReady.notify_all();
  }

private:
  Pool() {
    unsigned N = std::max(1u, std::thread::hardware_concurrency());
    Threads.reserve(N);
    for (unsigned I = 0; I < N; ++I)
      Threads.emplace_back([this] { workerMain(); });
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Stopping = true;
    }
    WorkReady.notify_all();
    for (std::thread &T : Threads)
      T.join();
  }

  void workerMain() {
    IsPoolThread = true;
    for (;;) {
      std::shared_ptr<detail::ForState> St;
      {
        std::unique_lock<std::mutex> Lock(Mu);
        WorkReady.wait(Lock, [this] { return Stopping || !Queue.empty(); });
        if (Queue.empty())
          return; // Stopping, and no helper slots left to retire.
        St = std::move(Queue.front());
        Queue.pop_front();
      }
      St->Run();
      {
        std::lock_guard<std::mutex> Lock(St->Mu);
        --St->OutstandingHelpers;
        if (St->OutstandingHelpers == 0)
          St->AllDone.notify_all();
      }
    }
  }

  std::mutex Mu;
  std::condition_variable WorkReady;
  std::deque<std::shared_ptr<detail::ForState>> Queue;
  bool Stopping = false;
  std::vector<std::thread> Threads;
};

} // namespace

void detail::dispatchHelpers(std::shared_ptr<ForState> St, size_t Helpers) {
  if (!Helpers)
    return;
  St->OutstandingHelpers = Helpers;
  Pool::instance().enqueue(std::move(St), Helpers);
}

void detail::waitHelpers(ForState &St) {
  std::unique_lock<std::mutex> Lock(St.Mu);
  St.AllDone.wait(Lock, [&St] { return St.OutstandingHelpers == 0; });
}

bool detail::onPoolThread() { return IsPoolThread; }
