//===- support/Diag.h - Diagnostic collection -------------------*- C++ -*-===//
///
/// \file
/// A tiny diagnostic engine. Library phases never abort on malformed user
/// input; they report here and return failure, LLVM-style (no exceptions).
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_SUPPORT_DIAG_H
#define S1LISP_SUPPORT_DIAG_H

#include "support/SourceLocation.h"

#include <string>
#include <vector>

namespace s1lisp {

/// Severity of a reported diagnostic.
enum class DiagSeverity { Warning, Error };

/// One reported problem, tied to a source position when known.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLocation Loc;
  std::string Message;

  /// Renders "line:col: error: message" in the LLVM message style
  /// (lowercase first word, no trailing period).
  std::string str() const;
};

/// Accumulates diagnostics across phases of a single compilation.
class DiagEngine {
public:
  void error(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
  }
  void error(std::string Message) { error(SourceLocation(), std::move(Message)); }
  void warning(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
  }

  bool hasErrors() const {
    for (const Diagnostic &D : Diags)
      if (D.Severity == DiagSeverity::Error)
        return true;
    return false;
  }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// All diagnostics joined with newlines; handy for test failure messages.
  std::string str() const;

  void clear() { Diags.clear(); }

private:
  std::vector<Diagnostic> Diags;
};

} // namespace s1lisp

#endif // S1LISP_SUPPORT_DIAG_H
