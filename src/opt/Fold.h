//===- opt/Fold.h - Compile-time expression evaluation ----------*- C++ -*-===//
///
/// \file
/// Evaluates calls to side-effect-free primitives on constant operands at
/// compile time — "a very convenient thing to do in LISP with the apply
/// operator" (§5). Declines (returns nullopt) on any domain problem so the
/// optimizer simply leaves the call alone.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_OPT_FOLD_H
#define S1LISP_OPT_FOLD_H

#include "ir/Primitives.h"
#include "sexpr/Value.h"

#include <optional>
#include <vector>

namespace s1lisp {
namespace opt {

/// Folds \p Info applied to literal \p Args; results are allocated in \p H.
std::optional<sexpr::Value> foldPrim(const ir::PrimInfo &Info,
                                     const std::vector<sexpr::Value> &Args,
                                     sexpr::Heap &H,
                                     const sexpr::SymbolTable &Syms);

} // namespace opt
} // namespace s1lisp

#endif // S1LISP_OPT_FOLD_H
