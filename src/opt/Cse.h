//===- opt/Cse.h - Common subexpression elimination -------------*- C++ -*-===//
///
/// \file
/// §4.3: common sub-expression elimination "can be expressed as a
/// source-level transformation using lambda-expressions". The paper left
/// it unimplemented ("its contribution to program speed will be smaller
/// than the other techniques"); we implement it as specified: repeated
/// duplicable subexpressions are hoisted into a LET introduced around the
/// smallest enclosing body, and it runs as a separate optional phase so
/// the thrashing problem with substitution (§4.3's introduction/
/// elimination cycle) cannot arise.
///
/// Only duplicable (side-effect-free, allocation-free) expressions are
/// eliminated. Hoisting may evaluate an expression a conditional branch
/// would have skipped; like the paper's compiler, we accept the cost-only
/// consequence and never hoist anything whose evaluation can be observed.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_OPT_CSE_H
#define S1LISP_OPT_CSE_H

#include "ir/Ir.h"
#include "opt/MetaEval.h"

namespace s1lisp {
namespace opt {

struct CseOptions {
  /// Minimum complexity (object-code size estimate) worth a variable.
  unsigned MinComplexity = 4;
  unsigned MaxRounds = 8;
};

/// Eliminates common subexpressions in \p F; returns the number of
/// expressions hoisted. Run after metaEvaluate (it will not reverse these
/// introductions, per §4.3's phase separation).
unsigned eliminateCommonSubexpressions(ir::Function &F,
                                       const CseOptions &Opts = {},
                                       stats::RemarkStream *Remarks = nullptr);

} // namespace opt
} // namespace s1lisp

#endif // S1LISP_OPT_CSE_H
