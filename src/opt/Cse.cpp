//===- opt/Cse.cpp --------------------------------------------------------===//

#include "opt/Cse.h"

#include "analysis/Analysis.h"
#include "ir/BackTranslate.h"
#include "sexpr/Printer.h"
#include "stats/Stats.h"

#include <map>

S1_STAT(NumHoisted, "opt.cse.hoisted", "common subexpressions abstracted");

using namespace s1lisp;
using namespace s1lisp::opt;
using namespace s1lisp::ir;

namespace {

/// A stable structural key for a subtree (variables by identity, so two
/// textually equal trees over different bindings do not collide).
std::string keyOf(const Node *N) {
  switch (N->kind()) {
  case NodeKind::Literal:
    return "L" + sexpr::toString(cast<LiteralNode>(N)->Datum);
  case NodeKind::VarRef:
    return "V" + std::to_string(cast<VarRefNode>(N)->Var->id());
  case NodeKind::Call: {
    const auto *C = cast<CallNode>(N);
    std::string K = "C";
    K += C->Name ? C->Name->name() : std::string("<expr>");
    if (C->CalleeExpr)
      K += "{" + keyOf(C->CalleeExpr) + "}";
    for (const Node *A : C->Args)
      K += "(" + keyOf(A) + ")";
    return K;
  }
  case NodeKind::If: {
    const auto *I = cast<IfNode>(N);
    return "I(" + keyOf(I->Test) + ")(" + keyOf(I->Then) + ")(" + keyOf(I->Else) +
           ")";
  }
  default:
    // Unsupported shapes never participate.
    return "X" + std::to_string(reinterpret_cast<uintptr_t>(N));
  }
}

/// Collects candidate occurrences below \p Root without descending into
/// lambdas (hoisting across a lambda boundary would change how often the
/// expression evaluates) or into progbodies (loops re-evaluate).
void collectOccurrences(Node *Root, std::map<std::string, std::vector<Node *>> &Out,
                        const CseOptions &Opts) {
  if (Root->kind() == NodeKind::Lambda || Root->kind() == NodeKind::ProgBody)
    return;
  if (Root->kind() == NodeKind::Call) {
    EffectInfo Fx = analysis::effectsOf(Root);
    if (Fx.duplicable() && analysis::complexityOf(Root) >= Opts.MinComplexity)
      Out[keyOf(Root)].push_back(Root);
  }
  forEachChild(Root, [&](Node *C) { collectOccurrences(C, Out, Opts); });
}

bool isAncestor(const Node *Maybe, const Node *N) {
  for (const Node *Cur = N; Cur; Cur = Cur->Parent)
    if (Cur == Maybe)
      return true;
  return false;
}

} // namespace

unsigned opt::eliminateCommonSubexpressions(Function &F, const CseOptions &Opts,
                                            stats::RemarkStream *Log) {
  stats::PhaseTimer Timer("opt.cse");
  unsigned Hoisted = 0;
  for (unsigned Round = 0; Round < Opts.MaxRounds; ++Round) {
    analysis::analyze(F);
    std::map<std::string, std::vector<Node *>> Occurrences;
    collectOccurrences(F.Root->Body, Occurrences, Opts);

    // Pick the largest expression with at least two disjoint occurrences.
    Node *Best = nullptr;
    std::vector<Node *> BestSites;
    unsigned BestSize = 0;
    for (auto &[Key, Sites] : Occurrences) {
      if (Sites.size() < 2)
        continue;
      // Drop occurrences nested inside other occurrences of the same key.
      std::vector<Node *> Disjoint;
      for (Node *S : Sites) {
        bool Nested = false;
        for (Node *T : Sites)
          Nested |= T != S && isAncestor(T, S);
        if (!Nested)
          Disjoint.push_back(S);
      }
      if (Disjoint.size() < 2)
        continue;
      unsigned Size = analysis::complexityOf(Disjoint[0]);
      if (Size > BestSize) {
        BestSize = Size;
        Best = Disjoint[0];
        BestSites = Disjoint;
      }
    }
    if (!Best)
      break;

    std::string Before =
        Log ? backTranslateToString(F, F.Root->Body) : std::string();

    // Introduce ((lambda (cse) body') <expr>) around the function body,
    // replacing every occurrence with the new variable.
    LambdaNode *L = F.makeLambda();
    Variable *V = F.makeVariable(F.symbols().intern("cse"));
    V->Binder = L;
    L->Required = {V};

    Node *Hoist = cloneTree(F, Best);
    Node *OldBody = F.Root->Body;
    for (Node *Site : BestSites)
      replaceChild(Site->Parent, Site, F.makeVarRef(V));
    L->Body = OldBody;
    OldBody->Parent = L;
    CallNode *Let = F.makeCallExpr(L, {Hoist});
    F.Root->Body = Let;
    Let->Parent = F.Root;

    recomputeVariableRefs(F);
    ++Hoisted;
    ++NumHoisted;
    if (Log) {
      stats::Remark R;
      R.Phase = "opt.cse";
      R.Rule = "META-INTRODUCE-COMMON-SUBEXPRESSION";
      R.Function = F.name();
      R.Before = Before;
      R.After = backTranslateToString(F, F.Root->Body);
      R.Detail = std::to_string(BestSites.size()) + " occurrences hoisted";
      Log->remark(std::move(R));
    }
  }
  if (Hoisted) {
    DiagEngine Diags;
    [[maybe_unused]] bool Clean = verify(F, Diags);
    assert(Clean && "CSE broke tree invariants");
  }
  return Hoisted;
}
