//===- opt/MetaEval.h - Source-level optimizer ------------------*- C++ -*-===//
///
/// \file
/// The source-to-source transformation phase of §5: the lambda-calculus
/// beta-conversion rules (in the paper's three-rule formulation), the
/// nested-if distribution that yields boolean short-circuiting as a special
/// case, compile-time expression evaluation, dead-code elimination,
/// table-driven associative/commutative canonicalization and identity
/// elimination, and the machine-inspired sin$f→sinc$f rewrite.
///
/// Every transformed tree remains back-translatable to source; when a log
/// is supplied, each rewrite is recorded in the paper's transcript style:
///
///   ;**** Optimizing this form: (+$f a b c)
///   ;**** to be this form: (+$f (+$f c b) a)
///   ;**** courtesy of META-EVALUATE-ASSOC-COMMUT-CALL
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_OPT_METAEVAL_H
#define S1LISP_OPT_METAEVAL_H

#include "ir/Ir.h"
#include "stats/Remark.h"

namespace s1lisp {
namespace opt {

/// Per-technique switches so the benchmark harness can ablate each one.
struct OptOptions {
  bool Substitute = true;    ///< the three beta-conversion rules (§5)
  bool IfDistribute = true;  ///< (if (if x y z) v w) distribution
  bool ConstantFold = true;  ///< compile-time expression evaluation
  bool AssocCommut = true;   ///< n-ary→binary + constant-first reordering
  bool IdentityElim = true;  ///< (op x identity) => x
  bool RedundantTest = true; ///< (if p (if p x y) z) => (if p x z)
  bool MachineTrig = true;   ///< sin$f => sinc$f (S-1 SIN takes cycles)
  bool DeadCode = true;      ///< constant if/caseq pruning, progn cleanup
  /// Complexity cap for substituting one pure expression into several
  /// reference sites (the paper's conservative duplication heuristics).
  unsigned DuplicationLimit = 4;
  unsigned MaxPasses = 100;
  /// Maintain variable referent lists and cached per-node effects /
  /// complexity incrementally across rewrites (dirty spines from each
  /// changed node to the root) instead of recomputing the whole tree every
  /// pass. Off is the recompute-the-world baseline that
  /// bench_compile_throughput compares against.
  bool IncrementalAnalysis = true;
  /// Cross-check the incremental caches against a full recompute after
  /// every pass; also enabled by the S1LISP_VERIFY_ANALYSIS environment
  /// variable. Divergence aborts.
  bool VerifyAnalysis = false;
  /// Test-only fault injection: folded constant fixnum additions come out
  /// off by one. Exists so the differential fuzzer's delta-debugging
  /// reducer has a real, deterministic miscompile to find and shrink;
  /// never set it outside that harness.
  bool FaultConstantFold = false;
};

/// Runs the source-level optimizer to a fixpoint (bounded by MaxPasses).
/// Returns the number of rewrites applied. The tree is left analyzed,
/// verified, and back-translatable. When \p Remarks is given, every
/// rewrite is recorded as a structured stats::Remark (rendered in the
/// paper's ";**** courtesy of" style by RemarkStream::str()).
unsigned metaEvaluate(ir::Function &F, const OptOptions &Opts = {},
                      stats::RemarkStream *Remarks = nullptr);

} // namespace opt
} // namespace s1lisp

#endif // S1LISP_OPT_METAEVAL_H
