//===- opt/MetaEval.cpp ---------------------------------------------------===//

#include "opt/MetaEval.h"

#include "analysis/Analysis.h"
#include "ir/BackTranslate.h"
#include "ir/Primitives.h"
#include "opt/Fold.h"
#include "sexpr/Printer.h"
#include "stats/Stats.h"

using namespace s1lisp;
using namespace s1lisp::opt;
using namespace s1lisp::ir;
using analysis::effectsOf;
using sexpr::Value;

S1_STAT(NumRewrites, "opt.metaeval.rewrites", "source-level rewrites applied");
S1_STAT(NumFolded, "opt.fold.folded", "calls evaluated at compile time");
S1_STAT(NumPasses, "opt.metaeval.passes", "meta-evaluator fixpoint passes");
S1_STAT(NumFunctions, "opt.metaeval.functions", "functions meta-evaluated");

namespace {

/// A let-like call suitable for the beta rules: a manifest lambda with only
/// required parameters and a matching argument count.
bool isSimpleLet(const CallNode *C) {
  const auto *L = dyn_cast<LambdaNode>(C->CalleeExpr);
  return L && L->Optionals.empty() && !L->Rest &&
         L->Required.size() == C->Args.size();
}

/// Collects the VarRef/Setq nodes for \p V inside \p Scope.
std::vector<Node *> collectRefs(Variable *V, Node *Scope) {
  std::vector<Node *> Refs;
  forEachNode(Scope, [&](Node *N) {
    if (auto *VR = dyn_cast<VarRefNode>(N)) {
      if (VR->Var == V)
        Refs.push_back(N);
    } else if (auto *SQ = dyn_cast<SetqNode>(N)) {
      if (SQ->Var == V)
        Refs.push_back(N);
    }
  });
  return Refs;
}

bool anyIsSetq(const std::vector<Node *> &Refs) {
  for (const Node *R : Refs)
    if (R->kind() == NodeKind::Setq)
      return true;
  return false;
}

/// True when \p Target is the very first thing evaluated when \p Root is
/// evaluated (used for the side-effecting-substitution rule of §5).
bool isFirstEvaluated(Node *Root, const Node *Target) {
  Node *Cur = Root;
  while (true) {
    if (Cur == Target)
      return true;
    switch (Cur->kind()) {
    case NodeKind::Progn: {
      auto *P = cast<PrognNode>(Cur);
      if (P->Forms.empty())
        return false;
      Cur = P->Forms.front();
      break;
    }
    case NodeKind::If:
      Cur = cast<IfNode>(Cur)->Test;
      break;
    case NodeKind::Setq:
      Cur = cast<SetqNode>(Cur)->ValueExpr;
      break;
    case NodeKind::Caseq:
      Cur = cast<CaseqNode>(Cur)->Key;
      break;
    case NodeKind::Catcher:
      Cur = cast<CatcherNode>(Cur)->TagExpr;
      break;
    case NodeKind::Return:
      Cur = cast<ReturnNode>(Cur)->ValueExpr;
      break;
    case NodeKind::ProgBody: {
      auto *P = cast<ProgBodyNode>(Cur);
      Node *First = nullptr;
      for (auto &I : P->Items)
        if (I.Stmt) {
          First = I.Stmt;
          break;
        }
      if (!First)
        return false;
      Cur = First;
      break;
    }
    case NodeKind::Call: {
      auto *C = cast<CallNode>(Cur);
      if (C->CalleeExpr && C->CalleeExpr->kind() != NodeKind::Lambda) {
        Cur = C->CalleeExpr;
        break;
      }
      if (!C->Args.empty()) {
        Cur = C->Args.front();
        break;
      }
      if (auto *L = dyn_cast<LambdaNode>(C->CalleeExpr)) {
        Cur = L->Body; // no args: the body runs immediately
        break;
      }
      return false;
    }
    case NodeKind::Literal:
    case NodeKind::VarRef:
    case NodeKind::Lambda:
    case NodeKind::Go:
      return false;
    }
  }
}

class MetaEvaluator {
public:
  MetaEvaluator(Function &F, const OptOptions &Opts, stats::RemarkStream *Log)
      : F(F), Opts(Opts), Log(Log) {}

  unsigned run() {
    unsigned Total = 0;
    const bool Verify =
        Opts.IncrementalAnalysis &&
        (Opts.VerifyAnalysis || analysis::verifyAnalysisRequested());
    for (unsigned Pass = 0; Pass < Opts.MaxPasses; ++Pass) {
      ++NumPasses;
      Changed = false;
      // Incremental mode establishes exact referent lists once and the
      // rules keep them exact; the baseline rebuilds them every pass.
      if (!Opts.IncrementalAnalysis || Pass == 0)
        recomputeVariableRefs(F);
      Node *NewBody = rewrite(F.Root->Body);
      if (NewBody != F.Root->Body) {
        F.Root->Body = NewBody;
        NewBody->Parent = F.Root;
        dirtySpine(F.Root);
      }
      for (auto &O : F.Root->Optionals) {
        Node *NewDefault = rewrite(O.Default);
        if (NewDefault != O.Default) {
          O.Default = NewDefault;
          NewDefault->Parent = F.Root;
          dirtySpine(F.Root);
        }
      }
      Total += PassRewrites;
      PassRewrites = 0;
      if (Verify)
        analysis::verifyIncremental(F);
      if (!Changed)
        break;
      // Tree surgery strands the replaced nodes in the arena; once the
      // garbage clearly dominates, compact into a fresh arena. Cheap
      // passes never pay for this: the byte check fails first.
      if (Opts.IncrementalAnalysis && F.arenaBytes() > 64 * 1024 &&
          F.arenaObjects() > 3 * treeSize(F.Root))
        F.reclaim();
    }
    recomputeParents(F.Root);
    analysis::analyze(F);
    return Total;
  }

private:
  Function &F;
  const OptOptions &Opts;
  stats::RemarkStream *Log;
  bool Changed = false;
  unsigned PassRewrites = 0;

  void log(const char *Rule, const std::string &Before, const std::string &After,
           std::string Detail = "") {
    if (!Log)
      return;
    stats::Remark R;
    R.Phase = "opt.metaeval";
    R.Rule = Rule;
    R.Function = F.name();
    R.Before = Before;
    R.After = After;
    R.Detail = std::move(Detail);
    Log->remark(std::move(R));
  }

  std::string render(Node *N) { return backTranslateToString(F, N); }

  /// Applies \p Rule named \p Name; on success logs the rewrite and dirties
  /// the spine above the result. The replacement's parent chain still runs
  /// through the node it came out of (an extracted subtree) or is empty (a
  /// fresh node, whose attachment point replaceChild dirties), so walking
  /// it marks the real spine; rules that mutate *interior* nodes directly
  /// dirty those themselves.
  template <typename RuleFn>
  Node *apply(const char *Name, Node *N, RuleFn Rule) {
    std::string Before = Log ? render(N) : std::string();
    Node *R = Rule(N);
    if (!R)
      return nullptr;
    Changed = true;
    ++PassRewrites;
    dirtySpine(R);
    if (Log && LastDetail.empty())
      log(Name, Before, render(R));
    else if (Log)
      log(Name, Before, render(R), LastDetail);
    LastDetail.clear();
    return R;
  }
  std::string LastDetail;

  /// Effect/complexity queries for the rules: cached-incremental when the
  /// option is on, the pure recursive walks otherwise.
  EffectInfo fx(Node *N) {
    return Opts.IncrementalAnalysis ? analysis::effectsOfCached(N)
                                    : analysis::effectsOf(N);
  }
  unsigned cx(Node *N) {
    return Opts.IncrementalAnalysis ? analysis::complexityOfCached(N)
                                    : analysis::complexityOf(N);
  }

  /// The referent nodes of \p V within \p Scope. Incremental mode reads
  /// the exactly-maintained back-pointer list (V is bound inside Scope, so
  /// all of its references live there); the baseline walks the tree, since
  /// its lists go stale between the per-pass recomputes.
  std::vector<Node *> refsOf(Variable *V, Node *Scope) {
    if (Opts.IncrementalAnalysis)
      return V->Refs;
    return collectRefs(V, Scope);
  }

  Node *rewrite(Node *N) {
    // Children first (post-order), so rules see simplified operands.
    rewriteChildren(N);

    bool Any = true;
    while (Any) {
      Any = false;
      struct NamedRule {
        const char *Name;
        Node *(MetaEvaluator::*Fn)(Node *);
        bool Enabled;
      };
      const NamedRule Rules[] = {
          {"META-COMPILE-TIME-EVAL", &MetaEvaluator::tryConstantFold,
           Opts.ConstantFold},
          {"META-EVALUATE-ASSOC-COMMUT-CALL", &MetaEvaluator::tryAssocCommut,
           Opts.AssocCommut},
          {"META-EXPAND-NARY-CALL", &MetaEvaluator::tryExpandNary,
           Opts.AssocCommut},
          {"CONSIDER-REVERSING-ARGUMENTS", &MetaEvaluator::tryReverseArgs,
           Opts.AssocCommut},
          {"META-IDENTITY-ELIMINATION", &MetaEvaluator::tryIdentity,
           Opts.IdentityElim},
          {"META-SIN-TO-SINC", &MetaEvaluator::tryMachineTrig, Opts.MachineTrig},
          {"META-DEAD-CODE", &MetaEvaluator::tryDeadCode, Opts.DeadCode},
          {"META-REDUNDANT-TEST", &MetaEvaluator::tryRedundantTest,
           Opts.RedundantTest},
          {"META-IF-OF-PROGN", &MetaEvaluator::tryIfOfProgn, Opts.DeadCode},
          {"META-IF-OF-LET", &MetaEvaluator::tryIfOfLet, Opts.IfDistribute},
          {"META-DISTRIBUTE-NESTED-IF", &MetaEvaluator::tryIfDistribute,
           Opts.IfDistribute},
          {"META-PROGN-FLATTEN", &MetaEvaluator::tryPrognFlatten, Opts.DeadCode},
          {"META-CALL-LAMBDA", &MetaEvaluator::tryCallLambda, Opts.Substitute},
          {"META-DROP-UNUSED-ARGUMENT", &MetaEvaluator::tryDropUnused,
           Opts.Substitute},
          {"META-SUBSTITUTE", &MetaEvaluator::trySubstitute, Opts.Substitute},
      };
      for (const NamedRule &R : Rules) {
        if (!R.Enabled)
          continue;
        if (Node *New = apply(R.Name, N, [this, &R](Node *M) {
              return (this->*(R.Fn))(M);
            })) {
          N = New;
          Any = true;
          break;
        }
      }
    }
    return N;
  }

  void rewriteChildren(Node *N) {
    std::vector<Node *> Children;
    forEachChild(N, [&Children](Node *C) { Children.push_back(C); });
    for (Node *C : Children) {
      Node *NewC = rewrite(C);
      if (NewC != C)
        replaceChild(N, C, NewC);
    }
  }

  //===--------------------------------------------------------------------===//
  // Rules (each returns the replacement node, or null when inapplicable)
  //===--------------------------------------------------------------------===//

  /// ((lambda () body)) => body  — the first beta rule of §5.
  Node *tryCallLambda(Node *N) {
    auto *C = dyn_cast<CallNode>(N);
    if (!C || !C->CalleeExpr)
      return nullptr;
    auto *L = dyn_cast<LambdaNode>(C->CalleeExpr);
    if (!L || !L->Required.empty() || !L->Optionals.empty() || L->Rest ||
        !C->Args.empty())
      return nullptr;
    return L->Body;
  }

  /// Second beta rule: drop (vj, aj) pairs where vj is unreferenced and aj
  /// has no side effects "except possibly heap-allocation".
  Node *tryDropUnused(Node *N) {
    auto *C = dyn_cast<CallNode>(N);
    if (!C || !C->CalleeExpr || !isSimpleLet(C))
      return nullptr;
    auto *L = cast<LambdaNode>(C->CalleeExpr);
    bool Dropped = false;
    for (size_t J = L->Required.size(); J > 0; --J) {
      size_t I = J - 1;
      Variable *V = L->Required[I];
      // A special parameter is a dynamic binding: references reach it
      // through the deep-binding stack, not through this Variable.
      if (V->isSpecial())
        continue;
      if (!refsOf(V, L->Body).empty())
        continue;
      if (!fx(C->Args[I]).eliminable())
        continue;
      detachSubtree(C->Args[I]);
      L->Required.erase(L->Required.begin() + I);
      C->Args.erase(C->Args.begin() + I);
      Dropped = true;
    }
    return Dropped ? N : nullptr;
  }

  /// Third + second beta rules: substitute an argument expression for the
  /// occurrences of its variable when the §5 side conditions hold.
  Node *trySubstitute(Node *N) {
    auto *C = dyn_cast<CallNode>(N);
    if (!C || !C->CalleeExpr || !isSimpleLet(C))
      return nullptr;
    auto *L = cast<LambdaNode>(C->CalleeExpr);

    for (size_t J = 0; J < L->Required.size(); ++J) {
      Variable *V = L->Required[J];
      if (V->isSpecial())
        continue;
      Node *Arg = C->Args[J];
      std::vector<Node *> Refs = refsOf(V, L->Body);
      if (Refs.empty() || anyIsSetq(Refs))
        continue;

      EffectInfo ArgFx = fx(Arg);
      bool CanSubstitute = false;

      // Constants and stable variable references substitute anywhere.
      if (Arg->kind() == NodeKind::Literal) {
        CanSubstitute = true;
      } else if (auto *VR = dyn_cast<VarRefNode>(Arg)) {
        CanSubstitute = !VR->Var->isSpecial() && !VR->Var->Written;
      } else if (Arg->kind() == NodeKind::Lambda && Refs.size() == 1) {
        // Procedure integration: a lambda referred to in one place.
        CanSubstitute = true;
      } else if (ArgFx.pure() &&
                 (Refs.size() == 1 || cx(Arg) <= Opts.DuplicationLimit)) {
        CanSubstitute = true;
      } else if (Refs.size() == 1 && isFirstEvaluated(L->Body, Refs[0])) {
        // Side-effecting argument with a single reference that is the first
        // thing the body evaluates; later arguments must commute with it so
        // evaluation order is preserved.
        bool Commutes = true;
        for (size_t K = J + 1; K < C->Args.size(); ++K)
          Commutes &= ArgFx.commutesWith(fx(C->Args[K]));
        CanSubstitute = Commutes;
      }
      if (!CanSubstitute)
        continue;

      for (size_t R = 0; R < Refs.size(); ++R) {
        Node *Replacement =
            R + 1 == Refs.size() ? Arg : cloneTree(F, Arg);
        replaceChild(Refs[R]->Parent, Refs[R], Replacement);
      }
      // Every collected ref was a read (anyIsSetq vetoed writes) and has
      // just been replaced, so the variable is now referenced nowhere.
      V->Refs.clear();
      V->Written = false;
      L->Required.erase(L->Required.begin() + J);
      C->Args.erase(C->Args.begin() + J);
      LastDetail = std::to_string(Refs.size()) + " substitution" +
                   (Refs.size() == 1 ? "" : "s") + " for the variable " +
                   V->name()->name() + " by " + render(Arg);
      return N;
    }
    return nullptr;
  }

  /// Compile-time expression evaluation on constant operands.
  Node *tryConstantFold(Node *N) {
    auto *C = dyn_cast<CallNode>(N);
    if (!C || !C->Name)
      return nullptr;
    const PrimInfo *P = lookupPrim(C->Name);
    if (!P || !P->Foldable)
      return nullptr;
    std::vector<Value> Args;
    for (Node *A : C->Args) {
      auto *Lit = dyn_cast<LiteralNode>(A);
      if (!Lit)
        return nullptr;
      Args.push_back(Lit->Datum);
    }
    auto R = foldPrim(*P, Args, F.dataHeap(), F.symbols());
    if (!R)
      return nullptr;
    if (Opts.FaultConstantFold && P->Op == Prim::Add && R->isFixnum())
      R = Value::fixnum(R->fixnum() + 1);
    ++NumFolded;
    return F.makeLiteral(*R);
  }

  /// N-ary associative calls become compositions of two-argument calls,
  /// in the paper's right-to-left order: (+$f a b c) => (+$f (+$f c b) a).
  Node *tryAssocCommut(Node *N) {
    auto *C = dyn_cast<CallNode>(N);
    if (!C || !C->Name || C->Args.size() <= 2)
      return nullptr;
    const PrimInfo *P = lookupPrim(C->Name);
    if (!P || !P->Assoc || !P->Commut)
      return nullptr;
    size_t NArgs = C->Args.size();
    Node *Acc = F.makeCall(C->Name, {C->Args[NArgs - 1], C->Args[NArgs - 2]});
    for (size_t J = NArgs - 2; J > 0; --J)
      Acc = F.makeCall(C->Name, {Acc, C->Args[J - 1]});
    return Acc;
  }

  /// Non-commutative n-ary subtraction/division become left-nested binary
  /// calls; unary forms become explicit negation/reciprocal.
  Node *tryExpandNary(Node *N) {
    auto *C = dyn_cast<CallNode>(N);
    if (!C || !C->Name)
      return nullptr;
    const PrimInfo *P = lookupPrim(C->Name);
    if (!P)
      return nullptr;
    bool IsSub = P->Op == Prim::Sub || P->Op == Prim::FSub || P->Op == Prim::XSub;
    bool IsDiv = P->Op == Prim::Div || P->Op == Prim::FDiv;
    if (!IsSub && !IsDiv)
      return nullptr;
    if (C->Args.size() > 2) {
      Node *Acc = F.makeCall(C->Name, {C->Args[0], C->Args[1]});
      for (size_t J = 2; J < C->Args.size(); ++J)
        Acc = F.makeCall(C->Name, {Acc, C->Args[J]});
      return Acc;
    }
    if (C->Args.size() == 1 && IsSub) {
      Prim NegOp = P->Op == Prim::Sub    ? Prim::Neg
                   : P->Op == Prim::FSub ? Prim::FNeg
                                         : Prim::XNeg;
      return F.makeCall(F.symbols().intern(primInfo(NegOp).Name), {C->Args[0]});
    }
    if (C->Args.size() == 1 && IsDiv) {
      Node *One = F.makeLiteral(P->Op == Prim::FDiv ? Value::flonum(1.0)
                                                    : Value::fixnum(1));
      return F.makeCall(C->Name, {One, C->Args[0]});
    }
    return nullptr;
  }

  /// "By convention constant arguments are put first where possible."
  Node *tryReverseArgs(Node *N) {
    auto *C = dyn_cast<CallNode>(N);
    if (!C || !C->Name || C->Args.size() != 2)
      return nullptr;
    const PrimInfo *P = lookupPrim(C->Name);
    if (!P || !P->Commut)
      return nullptr;
    if (C->Args[0]->kind() == NodeKind::Literal ||
        C->Args[1]->kind() != NodeKind::Literal)
      return nullptr;
    std::swap(C->Args[0], C->Args[1]);
    return N;
  }

  /// Table-driven elimination of identity operands.
  Node *tryIdentity(Node *N) {
    auto *C = dyn_cast<CallNode>(N);
    if (!C || !C->Name || C->Args.size() != 2)
      return nullptr;
    const PrimInfo *P = lookupPrim(C->Name);
    if (!P || (!P->FixIdentity && !P->FloatIdentity))
      return nullptr;

    auto IsIdentity = [P](const Node *A) {
      const auto *Lit = dyn_cast<LiteralNode>(A);
      if (!Lit)
        return false;
      if (P->FixIdentity && Lit->Datum.isFixnum())
        return Lit->Datum.fixnum() == *P->FixIdentity;
      if (P->FloatIdentity && Lit->Datum.isFlonum())
        return Lit->Datum.flonum() == *P->FloatIdentity;
      return false;
    };
    // For the raw-float operators, dropping the operation also drops the
    // float coercion, so the surviving operand must already be a float.
    auto FloatSafe = [P, this](const Node *Other) {
      if (P->ArgRep != Rep::SWFLO)
        return true;
      if (const auto *Lit = dyn_cast<LiteralNode>(Other))
        return Lit->Datum.isFlonum();
      if (const auto *OC = dyn_cast<CallNode>(Other); OC && OC->Name) {
        const PrimInfo *OP = lookupPrim(OC->Name);
        return OP && OP->ResultRep == Rep::SWFLO;
      }
      (void)this;
      return false;
    };

    if (IsIdentity(C->Args[0]) && FloatSafe(C->Args[1]))
      return C->Args[1];
    if (IsIdentity(C->Args[1]) && FloatSafe(C->Args[0]))
      return C->Args[0];
    return nullptr;
  }

  /// sin$f/cos$f take radians; the S-1 SIN instruction takes cycles.
  Node *tryMachineTrig(Node *N) {
    auto *C = dyn_cast<CallNode>(N);
    if (!C || !C->Name || C->Args.size() != 1)
      return nullptr;
    const PrimInfo *P = lookupPrim(C->Name);
    if (!P || (P->Op != Prim::FSin && P->Op != Prim::FCos))
      return nullptr;
    // 0.159154942 is the paper's single-precision approximation to 1/2pi.
    // The constant is emitted second; CONSIDER-REVERSING-ARGUMENTS then
    // moves it first, exactly as in the §7 transcript.
    Node *Scaled = F.makeCall(
        F.symbols().intern("*$f"),
        {C->Args[0], F.makeLiteral(Value::flonum(0.159154942))});
    const char *Cyc = P->Op == Prim::FSin ? "sinc$f" : "cosc$f";
    return F.makeCall(F.symbols().intern(Cyc), {Scaled});
  }

  /// Constant-predicate if/caseq pruning.
  Node *tryDeadCode(Node *N) {
    if (auto *I = dyn_cast<IfNode>(N)) {
      auto *Lit = dyn_cast<LiteralNode>(I->Test);
      if (!Lit)
        return nullptr;
      Node *Taken = Lit->Datum.isNil() ? I->Else : I->Then;
      detachSubtree(Lit->Datum.isNil() ? I->Then : I->Else);
      return Taken;
    }
    if (auto *C = dyn_cast<CaseqNode>(N)) {
      auto *Key = dyn_cast<LiteralNode>(C->Key);
      if (!Key)
        return nullptr;
      Node *Taken = C->Default;
      for (auto &Cl : C->Clauses) {
        bool Match = false;
        for (Value K : Cl.Keys)
          Match |= sexpr::eql(K, Key->Datum);
        if (Match) {
          Taken = Cl.Body;
          break;
        }
      }
      for (auto &Cl : C->Clauses)
        if (Cl.Body != Taken)
          detachSubtree(Cl.Body);
      if (C->Default != Taken)
        detachSubtree(C->Default);
      return Taken;
    }
    return nullptr;
  }

  /// (if p (if p x y) z) => (if p x z) for a pure, repeatable test
  /// ("realizing that b is true in the inner if by virtue of the outer").
  Node *tryRedundantTest(Node *N) {
    auto *I = dyn_cast<IfNode>(N);
    if (!I || !fx(I->Test).duplicable())
      return nullptr;
    if (auto *TI = dyn_cast<IfNode>(I->Then)) {
      if (analysis::equalTrees(TI->Test, I->Test) &&
          fx(TI->Test).duplicable()) {
        detachSubtree(TI->Test);
        detachSubtree(TI->Else);
        replaceChild(I, I->Then, TI->Then);
        return N;
      }
    }
    if (auto *EI = dyn_cast<IfNode>(I->Else)) {
      if (analysis::equalTrees(EI->Test, I->Test) &&
          fx(EI->Test).duplicable()) {
        detachSubtree(EI->Test);
        detachSubtree(EI->Then);
        replaceChild(I, I->Else, EI->Else);
        return N;
      }
    }
    return nullptr;
  }

  /// (if (progn a .. p) x y) => (progn a .. (if p x y))
  Node *tryIfOfProgn(Node *N) {
    auto *I = dyn_cast<IfNode>(N);
    if (!I)
      return nullptr;
    auto *P = dyn_cast<PrognNode>(I->Test);
    if (!P || P->Forms.empty())
      return nullptr;
    Node *Last = P->Forms.back();
    P->Forms.pop_back();
    replaceChild(I, I->Test, Last);
    // P moves from under I to above it; break the stale back-link first so
    // the spine walk below cannot cycle I -> P -> I.
    P->Parent = I->Parent;
    P->Forms.push_back(I);
    I->Parent = P;
    dirtySpine(I);
    return P;
  }

  /// (if ((lambda (v..) p) a..) x y) => ((lambda (v..) (if p x y)) a..)
  /// — "valid only because all variables have been uniformly renamed".
  Node *tryIfOfLet(Node *N) {
    auto *I = dyn_cast<IfNode>(N);
    if (!I)
      return nullptr;
    auto *C = dyn_cast<CallNode>(I->Test);
    if (!C || !C->CalleeExpr || !isSimpleLet(C))
      return nullptr;
    auto *L = cast<LambdaNode>(C->CalleeExpr);
    Node *P = L->Body;
    IfNode *NewIf = F.makeIf(P, I->Then, I->Else);
    L->Body = NewIf;
    NewIf->Parent = L;
    dirtySpine(L);
    return C;
  }

  /// The §5 nested-if transformation:
  ///   (if (if x y z) v w) =>
  ///   ((lambda (f g) (if x (if y (f) (g)) (if z (f) (g))))
  ///    (lambda () v) (lambda () w))
  /// "The functions f and g are introduced to avoid space-wasting
  /// duplication of the code for v and w."
  Node *tryIfDistribute(Node *N) {
    auto *I = dyn_cast<IfNode>(N);
    if (!I)
      return nullptr;
    auto *Inner = dyn_cast<IfNode>(I->Test);
    if (!Inner)
      return nullptr;

    LambdaNode *Outer = F.makeLambda();
    Variable *Fv = F.makeVariable(F.symbols().intern("f"));
    Variable *Gv = F.makeVariable(F.symbols().intern("g"));
    Fv->Binder = Outer;
    Gv->Binder = Outer;
    Outer->Required = {Fv, Gv};

    auto CallThunk = [&](Variable *V) {
      return F.makeCallExpr(F.makeVarRef(V), {});
    };
    Node *ThenArm = F.makeIf(Inner->Then, CallThunk(Fv), CallThunk(Gv));
    Node *ElseArm = F.makeIf(Inner->Else, CallThunk(Fv), CallThunk(Gv));
    Outer->Body = F.makeIf(Inner->Test, ThenArm, ElseArm);
    Outer->Body->Parent = Outer;

    LambdaNode *ThunkV = F.makeLambda();
    ThunkV->Body = I->Then;
    I->Then->Parent = ThunkV;
    LambdaNode *ThunkW = F.makeLambda();
    ThunkW->Body = I->Else;
    I->Else->Parent = ThunkW;

    return F.makeCallExpr(Outer, {ThunkV, ThunkW});
  }

  /// progn cleanup: flatten nesting, drop effect-free non-final forms,
  /// unwrap singletons.
  Node *tryPrognFlatten(Node *N) {
    auto *P = dyn_cast<PrognNode>(N);
    if (!P)
      return nullptr;
    bool Mutated = false;

    std::vector<Node *> Flat;
    for (Node *FormN : P->Forms) {
      if (auto *Inner = dyn_cast<PrognNode>(FormN)) {
        for (Node *C : Inner->Forms)
          Flat.push_back(C);
        Mutated = true;
      } else {
        Flat.push_back(FormN);
      }
    }
    std::vector<Node *> Kept;
    for (size_t J = 0; J < Flat.size(); ++J) {
      bool IsLast = J + 1 == Flat.size();
      if (!IsLast && fx(Flat[J]).eliminable()) {
        detachSubtree(Flat[J]);
        Mutated = true;
        continue;
      }
      Kept.push_back(Flat[J]);
    }
    if (Kept.empty())
      return F.makeNil();
    if (Kept.size() == 1)
      return Kept.front();
    if (!Mutated)
      return nullptr;
    P->Forms = std::move(Kept);
    for (Node *C : P->Forms)
      C->Parent = P;
    return P;
  }
};

} // namespace

unsigned opt::metaEvaluate(Function &F, const OptOptions &Opts,
                           stats::RemarkStream *Remarks) {
  stats::PhaseTimer Timer("opt.metaeval");
  ++NumFunctions;
  MetaEvaluator M(F, Opts, Remarks);
  unsigned N = M.run();
  NumRewrites += N;
  DiagEngine Diags;
  [[maybe_unused]] bool Clean = verify(F, Diags);
  assert(Clean && "optimizer broke tree invariants");
  return N;
}
