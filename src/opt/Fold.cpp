//===- opt/Fold.cpp -------------------------------------------------------===//

#include "opt/Fold.h"

#include "sexpr/Numbers.h"

#include <cmath>

using namespace s1lisp;
using namespace s1lisp::opt;
using namespace s1lisp::ir;
using sexpr::Value;

namespace {

Value boolValue(bool B, const sexpr::SymbolTable &Syms) {
  return B ? Value::symbol(Syms.t()) : Value::nil();
}

std::optional<Value> foldArithChain(sexpr::ArithOp Op, Value Unit,
                                    bool UnitIsInverse,
                                    const std::vector<Value> &Args,
                                    sexpr::Heap &H) {
  if (Args.empty())
    return Unit;
  if (Args.size() == 1)
    return UnitIsInverse ? sexpr::arith(H, Op, Unit, Args[0])
                         : std::optional<Value>(Args[0]);
  Value Acc = Args[0];
  for (size_t I = 1; I < Args.size(); ++I) {
    auto R = sexpr::arith(H, Op, Acc, Args[I]);
    if (!R)
      return std::nullopt;
    Acc = *R;
  }
  return Acc;
}

std::optional<Value> foldCompareChain(sexpr::CompareOp Op,
                                      const std::vector<Value> &Args,
                                      const sexpr::SymbolTable &Syms) {
  for (size_t I = 0; I + 1 < Args.size(); ++I) {
    auto R = sexpr::compare(Op, Args[I], Args[I + 1]);
    if (!R)
      return std::nullopt;
    if (!*R)
      return Value::nil();
  }
  // Single-argument comparisons are vacuously true but still require
  // numeric arguments.
  if (Args.size() == 1 && !Args[0].isNumber())
    return std::nullopt;
  return boolValue(true, Syms);
}

std::optional<Value> foldFloat(Prim Op, const std::vector<Value> &Args) {
  std::vector<double> Xs;
  Xs.reserve(Args.size());
  for (Value A : Args) {
    auto D = sexpr::toDouble(A);
    if (!D)
      return std::nullopt;
    Xs.push_back(*D);
  }
  auto One = [&](double R) { return Value::flonum(R); };
  switch (Op) {
  case Prim::FAdd: {
    double Acc = Xs[0];
    for (size_t I = 1; I < Xs.size(); ++I)
      Acc += Xs[I];
    return One(Acc);
  }
  case Prim::FSub: {
    if (Xs.size() == 1)
      return One(-Xs[0]);
    double Acc = Xs[0];
    for (size_t I = 1; I < Xs.size(); ++I)
      Acc -= Xs[I];
    return One(Acc);
  }
  case Prim::FMul: {
    double Acc = Xs[0];
    for (size_t I = 1; I < Xs.size(); ++I)
      Acc *= Xs[I];
    return One(Acc);
  }
  case Prim::FDiv: {
    if (Xs.size() == 1)
      return Xs[0] == 0 ? std::nullopt : std::optional<Value>(One(1.0 / Xs[0]));
    double Acc = Xs[0];
    for (size_t I = 1; I < Xs.size(); ++I) {
      if (Xs[I] == 0)
        return std::nullopt;
      Acc /= Xs[I];
    }
    return One(Acc);
  }
  case Prim::FNeg:
    return One(-Xs[0]);
  case Prim::FAbs:
    return One(std::fabs(Xs[0]));
  case Prim::FMax: {
    double Acc = Xs[0];
    for (double X : Xs)
      Acc = std::max(Acc, X);
    return One(Acc);
  }
  case Prim::FMin: {
    double Acc = Xs[0];
    for (double X : Xs)
      Acc = std::min(Acc, X);
    return One(Acc);
  }
  case Prim::FSqrt:
    return Xs[0] < 0 ? std::nullopt : std::optional<Value>(One(std::sqrt(Xs[0])));
  case Prim::FSin:
    return One(std::sin(Xs[0]));
  case Prim::FCos:
    return One(std::cos(Xs[0]));
  case Prim::FExp:
    return One(std::exp(Xs[0]));
  case Prim::FLog:
    return Xs[0] <= 0 ? std::nullopt : std::optional<Value>(One(std::log(Xs[0])));
  case Prim::FSinc:
    return One(std::sin(Xs[0] * 2.0 * M_PI));
  case Prim::FCosc:
    return One(std::cos(Xs[0] * 2.0 * M_PI));
  case Prim::FAtan:
    return One(std::atan2(Xs[0], Xs[1]));
  default:
    return std::nullopt;
  }
}

} // namespace

std::optional<Value> opt::foldPrim(const PrimInfo &Info,
                                   const std::vector<Value> &Args,
                                   sexpr::Heap &H,
                                   const sexpr::SymbolTable &Syms) {
  using sexpr::ArithOp;
  using sexpr::CompareOp;
  if (!Info.acceptsArgCount(Args.size()))
    return std::nullopt;

  auto Bool = [&Syms](std::optional<bool> B) -> std::optional<Value> {
    if (!B)
      return std::nullopt;
    return boolValue(*B, Syms);
  };

  switch (Info.Op) {
  case Prim::Add:
    return foldArithChain(ArithOp::Add, Value::fixnum(0), false, Args, H);
  case Prim::Sub:
    return foldArithChain(ArithOp::Sub, Value::fixnum(0), true, Args, H);
  case Prim::Mul:
    return foldArithChain(ArithOp::Mul, Value::fixnum(1), false, Args, H);
  case Prim::Div:
    return foldArithChain(ArithOp::Div, Value::fixnum(1), true, Args, H);
  case Prim::Neg:
    return sexpr::negate(H, Args[0]);
  case Prim::Add1:
    return sexpr::add1(H, Args[0]);
  case Prim::Sub1:
    return sexpr::sub1(H, Args[0]);
  case Prim::Abs:
    return sexpr::numAbs(H, Args[0]);
  case Prim::Max:
    return foldArithChain(ArithOp::Max, Value::fixnum(0), false, Args, H);
  case Prim::Min:
    return foldArithChain(ArithOp::Min, Value::fixnum(0), false, Args, H);
  case Prim::Floor:
  case Prim::Ceiling:
  case Prim::Truncate:
  case Prim::Round:
  case Prim::Mod:
  case Prim::Rem:
  case Prim::Expt: {
    ArithOp Op = Info.Op == Prim::Floor      ? ArithOp::Floor
                 : Info.Op == Prim::Ceiling  ? ArithOp::Ceiling
                 : Info.Op == Prim::Truncate ? ArithOp::Truncate
                 : Info.Op == Prim::Round    ? ArithOp::Round
                 : Info.Op == Prim::Mod      ? ArithOp::Mod
                 : Info.Op == Prim::Rem      ? ArithOp::Rem
                                             : ArithOp::Expt;
    return sexpr::arith(H, Op, Args[0], Args[1]);
  }
  case Prim::Sqrt: {
    auto D = sexpr::toDouble(Args[0]);
    if (!D || *D < 0)
      return std::nullopt;
    return Value::flonum(std::sqrt(*D));
  }
  case Prim::ToFloat: {
    auto D = sexpr::toDouble(Args[0]);
    if (!D)
      return std::nullopt;
    return Value::flonum(*D);
  }

  case Prim::NumEq:
    return foldCompareChain(CompareOp::Eq, Args, Syms);
  case Prim::NumNe:
    return foldCompareChain(CompareOp::Ne, Args, Syms);
  case Prim::Lt:
    return foldCompareChain(CompareOp::Lt, Args, Syms);
  case Prim::Gt:
    return foldCompareChain(CompareOp::Gt, Args, Syms);
  case Prim::Le:
    return foldCompareChain(CompareOp::Le, Args, Syms);
  case Prim::Ge:
    return foldCompareChain(CompareOp::Ge, Args, Syms);
  case Prim::Zerop:
    return Bool(sexpr::isZero(Args[0]));
  case Prim::Oddp:
    return Bool(sexpr::isOdd(Args[0]));
  case Prim::Evenp:
    return Bool(sexpr::isEven(Args[0]));
  case Prim::Plusp:
    return Bool(sexpr::isPlus(Args[0]));
  case Prim::Minusp:
    return Bool(sexpr::isMinus(Args[0]));

  case Prim::FAdd:
  case Prim::FSub:
  case Prim::FMul:
  case Prim::FDiv:
  case Prim::FNeg:
  case Prim::FAbs:
  case Prim::FMax:
  case Prim::FMin:
  case Prim::FSqrt:
  case Prim::FSin:
  case Prim::FCos:
  case Prim::FExp:
  case Prim::FLog:
  case Prim::FSinc:
  case Prim::FCosc:
  case Prim::FAtan:
    return foldFloat(Info.Op, Args);

  case Prim::FLt:
  case Prim::FGt:
  case Prim::FLe:
  case Prim::FGe:
  case Prim::FEq: {
    auto A = sexpr::toDouble(Args[0]), B = sexpr::toDouble(Args[1]);
    if (!A || !B)
      return std::nullopt;
    switch (Info.Op) {
    case Prim::FLt:
      return boolValue(*A < *B, Syms);
    case Prim::FGt:
      return boolValue(*A > *B, Syms);
    case Prim::FLe:
      return boolValue(*A <= *B, Syms);
    case Prim::FGe:
      return boolValue(*A >= *B, Syms);
    default:
      return boolValue(*A == *B, Syms);
    }
  }

  case Prim::XAdd:
  case Prim::XSub:
  case Prim::XMul:
  case Prim::XNeg:
  case Prim::XLt:
  case Prim::XGt:
  case Prim::XLe:
  case Prim::XGe:
  case Prim::XEq: {
    std::vector<int64_t> Xs;
    for (Value A : Args) {
      if (!A.isFixnum())
        return std::nullopt;
      Xs.push_back(A.fixnum());
    }
    auto Fix = [](uint64_t X) { return Value::fixnum(static_cast<int64_t>(X)); };
    switch (Info.Op) {
    case Prim::XNeg:
      return Fix(-static_cast<uint64_t>(Xs[0]));
    case Prim::XLt:
      return boolValue(Xs[0] < Xs[1], Syms);
    case Prim::XGt:
      return boolValue(Xs[0] > Xs[1], Syms);
    case Prim::XLe:
      return boolValue(Xs[0] <= Xs[1], Syms);
    case Prim::XGe:
      return boolValue(Xs[0] >= Xs[1], Syms);
    case Prim::XEq:
      return boolValue(Xs[0] == Xs[1], Syms);
    default: {
      uint64_t Acc = static_cast<uint64_t>(Xs[0]);
      if (Xs.size() == 1 && Info.Op == Prim::XSub)
        return Fix(-Acc);
      for (size_t I = 1; I < Xs.size(); ++I) {
        uint64_t B = static_cast<uint64_t>(Xs[I]);
        Acc = Info.Op == Prim::XAdd ? Acc + B
              : Info.Op == Prim::XSub ? Acc - B
                                      : Acc * B;
      }
      return Fix(Acc);
    }
    }
  }

  case Prim::Null:
  case Prim::Not:
    return boolValue(Args[0].isNil(), Syms);
  case Prim::Atom:
    return boolValue(Args[0].isAtom(), Syms);
  case Prim::Consp:
    return boolValue(Args[0].isCons(), Syms);
  case Prim::Listp:
    return boolValue(Args[0].isCons() || Args[0].isNil(), Syms);
  case Prim::Symbolp:
    return boolValue(Args[0].isSymbol(), Syms);
  case Prim::Numberp:
    return boolValue(Args[0].isNumber(), Syms);
  case Prim::Floatp:
    return boolValue(Args[0].isFlonum(), Syms);
  case Prim::Integerp:
    return boolValue(Args[0].isFixnum(), Syms);
  case Prim::Stringp:
    return boolValue(Args[0].isString(), Syms);
  case Prim::Eq:
  case Prim::Eql:
    return boolValue(sexpr::eql(Args[0], Args[1]), Syms);
  case Prim::Equal:
    return boolValue(sexpr::equal(Args[0], Args[1]), Syms);

  case Prim::Car:
  case Prim::Cdr:
  case Prim::Caar:
  case Prim::Cadr:
  case Prim::Cddr:
  case Prim::Cdar: {
    Value V = Args[0];
    if (!V.isNil() && !V.isCons())
      return std::nullopt;
    switch (Info.Op) {
    case Prim::Car:
      return V.car();
    case Prim::Cdr:
      return V.cdr();
    case Prim::Caar:
      return V.car().car();
    case Prim::Cadr:
      return V.cdr().car();
    case Prim::Cddr:
      return V.cdr().cdr();
    default:
      return V.car().cdr();
    }
  }
  case Prim::Nth:
  case Prim::NthCdr: {
    if (!Args[0].isFixnum() || Args[0].fixnum() < 0)
      return std::nullopt;
    Value L = Args[1];
    for (int64_t I = 0; I < Args[0].fixnum() && L.isCons(); ++I)
      L = L.cdr();
    return Info.Op == Prim::Nth ? L.car() : L;
  }
  case Prim::Length: {
    if (Args[0].isString())
      return Value::fixnum(static_cast<int64_t>(Args[0].stringValue().size()));
    if (!sexpr::isProperList(Args[0]))
      return std::nullopt;
    return Value::fixnum(static_cast<int64_t>(sexpr::listLength(Args[0])));
  }
  case Prim::Identity:
    return Args[0];

  default:
    // Allocating, mutating, or control primitives never fold.
    return std::nullopt;
  }
}
