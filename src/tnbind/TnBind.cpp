//===- tnbind/TnBind.cpp --------------------------------------------------===//

#include "tnbind/TnBind.h"

#include "ir/Primitives.h"
#include "s1/Isa.h"
#include "stats/Stats.h"

#include <algorithm>

S1_STAT(NumUnits, "tnbind.units", "compilation units packed");
S1_STAT(NumVarsInRegisters, "tnbind.vars.registers",
        "variables packed into registers");
S1_STAT(NumVarsInFrame, "tnbind.vars.frame",
        "variables spilled to frame slots");
S1_STAT(NumFrameSlots, "tnbind.frame.slots", "frame slots consumed by TNs");

using namespace s1lisp;
using namespace s1lisp::tnbind;
using namespace s1lisp::ir;

namespace {

/// One TN with the annotations packing needs.
struct Tn {
  const Variable *Var = nullptr;
  unsigned Start = 0; ///< first event index (binding)
  unsigned End = 0;   ///< last event index (final reference)
  unsigned Weight = 0;
  bool AcrossCall = false;
  Location Loc;
};

/// Linearizes the unit in evaluation order, numbering events, recording
/// variable binding/reference positions and call positions. Nested
/// FullClosure lambdas are treated as leaves (their bodies run elsewhere,
/// but creating the closure is an allocation "call").
struct Linearizer {
  const LambdaNode *Root = nullptr;
  unsigned Clock = 0;
  std::vector<unsigned> CallPositions;
  std::unordered_map<const Variable *, Tn> Tns;

  void touch(const Variable *V) {
    auto It = Tns.find(V);
    if (It == Tns.end())
      return;
    It->second.End = Clock;
    ++It->second.Weight;
  }

  void bind(const Variable *V) {
    Tn T;
    T.Var = V;
    T.Start = Clock;
    T.End = Clock;
    Tns.emplace(V, T);
  }

  void walk(const Node *N) {
    ++Clock;
    switch (N->kind()) {
    case NodeKind::Lambda: {
      const auto *L = cast<LambdaNode>(N);
      if (L != Root && L->Strategy == LambdaStrategy::FullClosure) {
        CallPositions.push_back(Clock); // closure creation allocates
        return;                         // body belongs to another unit
      }
      // Open/Jump lambda encountered outside a call position: walk inside.
      for (const Variable *P : L->Required)
        bind(P);
      for (const auto &O : L->Optionals) {
        bind(O.Var);
        if (O.Default)
          walk(O.Default);
      }
      if (L->Rest)
        bind(L->Rest);
      walk(L->Body);
      return;
    }
    case NodeKind::VarRef:
      touch(cast<VarRefNode>(N)->Var);
      return;
    case NodeKind::Setq: {
      const auto *S = cast<SetqNode>(N);
      walk(S->ValueExpr);
      ++Clock;
      touch(S->Var);
      return;
    }
    case NodeKind::Call: {
      const auto *C = cast<CallNode>(N);
      if (C->isLetLike()) {
        // A LET. The code generator stores each argument into its
        // parameter's home as it is computed, so a parameter's lifetime
        // starts before the remaining arguments evaluate (which may
        // contain calls) — bind before walking the arguments.
        const auto *L = cast<LambdaNode>(C->CalleeExpr);
        for (const Variable *P : L->Required)
          bind(P);
        for (const Node *A : C->Args)
          walk(A);
        ++Clock;
        walk(L->Body);
        return;
      }
      if (C->CalleeExpr)
        walk(C->CalleeExpr);
      for (const Node *A : C->Args)
        walk(A);
      ++Clock;
      bool IsCall = true;
      if (C->Name) {
        if (const PrimInfo *P = lookupPrim(C->Name))
          IsCall = P->Op == Prim::Funcall || P->Op == Prim::Apply;
      }
      if (IsCall)
        CallPositions.push_back(Clock);
      return;
    }
    case NodeKind::ProgBody: {
      // A progbody with a go is a loop: every variable referenced inside
      // is live across the whole span (the back edge re-enters anywhere),
      // and calls anywhere inside threaten the whole span.
      unsigned SpanStart = Clock;
      bool HasGo = false;
      forEachNode(N, [&HasGo](const Node *C) {
        HasGo |= C->kind() == NodeKind::Go;
      });
      forEachChild(N, [this](const Node *C) { walk(C); });
      unsigned SpanEnd = Clock;
      if (HasGo) {
        forEachNode(N, [&](const Node *C) {
          const Variable *V = nullptr;
          if (const auto *VR = dyn_cast<VarRefNode>(C))
            V = VR->Var;
          else if (const auto *SQ = dyn_cast<SetqNode>(C))
            V = SQ->Var;
          if (!V)
            return;
          auto It = Tns.find(V);
          if (It == Tns.end())
            return;
          It->second.Start = std::min(It->second.Start, SpanStart);
          It->second.End = std::max(It->second.End, SpanEnd);
        });
      }
      return;
    }
    default:
      forEachChild(N, [this](const Node *C) { walk(C); });
      return;
    }
  }
};

} // namespace

TnBindResult tnbind::allocateVariables(const LambdaNode *Unit,
                                       const TnBindOptions &Opts) {
  stats::PhaseTimer Timer("tnbind");
  ++NumUnits;
  Linearizer Lin;
  Lin.Root = Unit;
  Lin.walk(Unit);

  TnBindResult Result;
  std::vector<Tn *> Order;
  for (auto &[V, T] : Lin.Tns) {
    // Heap-allocated and special variables live elsewhere.
    if (V->HeapAllocated || V->isSpecial())
      continue;
    for (unsigned CallPos : Lin.CallPositions)
      if (CallPos > T.Start && CallPos <= T.End) {
        T.AcrossCall = true;
        break;
      }
    Order.push_back(&T);
  }

  // Pack heaviest first; ties broken by id for determinism.
  std::sort(Order.begin(), Order.end(), [](const Tn *A, const Tn *B) {
    if (A->Weight != B->Weight)
      return A->Weight > B->Weight;
    return A->Var->id() < B->Var->id();
  });

  std::vector<std::vector<const Tn *>> RegUsers(s1::NumRegs);
  auto Overlaps = [](const Tn *A, const Tn *B) {
    return A->Start <= B->End && B->Start <= A->End;
  };

  for (Tn *T : Order) {
    if (Opts.UseRegisters && !T->AcrossCall) {
      bool Placed = false;
      for (uint8_t R = 0; R < s1::NumRegs && !Placed; ++R) {
        if (!s1::isAllocatableReg(R))
          continue;
        bool Free = true;
        for (const Tn *Other : RegUsers[R])
          Free &= !Overlaps(T, Other);
        if (Free) {
          RegUsers[R].push_back(T);
          T->Loc = Location::reg(R);
          ++Result.VarsInRegisters;
          Placed = true;
        }
      }
      if (Placed) {
        Result.VarLocs[T->Var] = T->Loc;
        continue;
      }
    }
    T->Loc = Location::frame(static_cast<int>(Result.FrameSlots++));
    ++Result.VarsInFrame;
    Result.VarLocs[T->Var] = T->Loc;
  }

  for (uint8_t R = 0; R < s1::NumRegs; ++R)
    if (!RegUsers[R].empty())
      Result.RegistersUsed.push_back(R);
  NumVarsInRegisters += Result.VarsInRegisters;
  NumVarsInFrame += Result.VarsInFrame;
  NumFrameSlots += Result.FrameSlots;
  return Result;
}
