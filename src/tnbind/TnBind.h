//===- tnbind/TnBind.h - TN-based storage allocation ------------*- C++ -*-===//
///
/// \file
/// The TNBIND phase (§6.1), after BLISS-11 and PQCC: every computational
/// quantity gets a TN ("temporary name") annotated with lifetime and usage
/// information, and a packing pass assigns each TN a storage location —
/// a general register or a stack-frame slot. Variables live across calls
/// are forced into the frame (all registers are caller-saved). Expression
/// temporaries are allocated by the code generator from the registers this
/// phase leaves free, with RTA/RTB preferred for arithmetic intermediates
/// so the 2 1/2-address instructions need no data-movement MOVs.
///
/// The naive ablation (UseRegisters = false) pins every variable into the
/// frame, reproducing the "every operand is a memory reference" baseline
/// the MOV-count benchmark compares against.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_TNBIND_TNBIND_H
#define S1LISP_TNBIND_TNBIND_H

#include "ir/Ir.h"

#include <unordered_map>
#include <vector>

namespace s1lisp {
namespace tnbind {

/// Where a TN ended up.
struct Location {
  enum class Kind : uint8_t { None, Register, Frame } K = Kind::None;
  uint8_t Reg = 0;
  int Slot = -1; ///< frame slot index, relative to the frame base

  static Location reg(uint8_t R) { return {Kind::Register, R, -1}; }
  static Location frame(int S) { return {Kind::Frame, 0, S}; }
  bool isRegister() const { return K == Kind::Register; }
  bool isFrame() const { return K == Kind::Frame; }
};

struct TnBindOptions {
  /// When false, every variable gets a frame slot (the naive baseline).
  bool UseRegisters = true;
};

struct TnBindResult {
  std::unordered_map<const ir::Variable *, Location> VarLocs;
  unsigned FrameSlots = 0; ///< frame slots consumed by variables
  unsigned VarsInRegisters = 0;
  unsigned VarsInFrame = 0;
  /// Registers handed to variables (the code generator avoids these for
  /// expression temporaries).
  std::vector<uint8_t> RegistersUsed;
};

/// Allocates storage for every stack-disciplined variable bound within
/// \p Unit (nested FullClosure lambdas excluded — their variables belong
/// to their own compilation units; heap-allocated and special variables
/// are handled by the environment/deep-binding machinery instead).
TnBindResult allocateVariables(const ir::LambdaNode *Unit,
                               const TnBindOptions &Opts = {});

} // namespace tnbind
} // namespace s1lisp

#endif // S1LISP_TNBIND_TNBIND_H
