//===- frontend/Convert.cpp -----------------------------------------------===//

#include "frontend/Convert.h"

#include "ir/Primitives.h"
#include "sexpr/Printer.h"
#include "sexpr/Reader.h"
#include "stats/Stats.h"

#include <unordered_set>

S1_STAT(NumTopLevelForms, "frontend.forms", "top-level forms converted");
S1_STAT(NumDefuns, "frontend.defuns", "functions converted");
S1_STAT(NumSpecialsProclaimed, "frontend.specials",
        "special variables proclaimed");

using namespace s1lisp;
using namespace s1lisp::frontend;
using namespace s1lisp::ir;
using sexpr::Value;

namespace {

SourceLocation locOf(Value Form) {
  return Form.isCons() ? Form.consCell()->Loc : SourceLocation();
}

/// One defun's conversion state.
class Converter {
public:
  Converter(Module &M, Function &F, DiagEngine &Diags)
      : M(M), F(F), Diags(Diags), Syms(M.Syms) {}

  /// Converts (defun name lambda-list body...). Fills F.Root.
  bool convertDefunBody(Value LambdaList, Value BodyForms, SourceLocation Loc);

private:
  // --- scope management ---
  struct ScopeMark {
    size_t Depth;
  };
  ScopeMark markScope() const { return {Scope.size()}; }
  void popScope(ScopeMark Mark) { Scope.resize(Mark.Depth); }
  void bind(const sexpr::Symbol *Name, Variable *Var) { Scope.push_back({Name, Var}); }

  Variable *lookupLexical(const sexpr::Symbol *Name) {
    for (size_t I = Scope.size(); I > 0; --I)
      if (Scope[I - 1].first == Name)
        return Scope[I - 1].second;
    return nullptr;
  }

  /// Special variables: one Variable per symbol per function, dynamic.
  Variable *specialVar(const sexpr::Symbol *Name) {
    auto It = SpecialVars.find(Name);
    if (It != SpecialVars.end())
      return It->second;
    Variable *V = F.makeVariable(Name, /*Special=*/true);
    SpecialVars.emplace(Name, V);
    return V;
  }

  bool isSpecialName(const sexpr::Symbol *Name) const {
    return M.isSpecial(Name) || LocalSpecials.count(Name);
  }

  // --- error helpers ---
  Node *errorAt(Value Form, const std::string &Msg) {
    Diags.error(locOf(Form), Msg);
    return F.makeNil();
  }

  const sexpr::Symbol *sym(const char *Name) { return Syms.intern(Name); }

  // --- conversion ---
  Node *convert(Value Form);
  Node *convertBody(Value Forms, SourceLocation Loc);
  Node *convertCall(Value Form);
  Node *convertLambdaForm(Value Form);
  bool parseLambdaList(LambdaNode *L, Value LambdaList, ScopeMark &BodyMark);

  Node *convertLet(Value Form, bool Sequential);
  Node *convertCond(Value Form);
  Node *convertAnd(Value Rest);
  Node *convertOr(Value Rest);
  Node *convertProg(Value Form);
  Node *convertDo(Value Form);
  Node *convertDotimesDolist(Value Form, bool IsDotimes);
  Node *convertCase(Value Form);
  Node *convertCatch(Value Form);
  Node *convertSetq(Value Form);
  Node *convertProg1(Value Form, size_t KeepIndex);

  void scanDeclarations(Value &BodyForms);

  Module &M;
  Function &F;
  DiagEngine &Diags;
  sexpr::SymbolTable &Syms;

  std::vector<std::pair<const sexpr::Symbol *, Variable *>> Scope;
  std::unordered_map<const sexpr::Symbol *, Variable *> SpecialVars;
  std::unordered_set<const sexpr::Symbol *> LocalSpecials;

  /// Enclosing progbodies, innermost last, with their tag sets.
  struct ProgCtx {
    ProgBodyNode *Body;
    std::vector<const sexpr::Symbol *> Tags;
  };
  std::vector<ProgCtx> ProgStack;
};

bool Converter::convertDefunBody(Value LambdaList, Value BodyForms,
                                 SourceLocation Loc) {
  LambdaNode *L = F.makeLambda();
  L->Loc = Loc;
  ScopeMark Outer = markScope();
  scanDeclarations(BodyForms);
  if (!parseLambdaList(L, LambdaList, Outer))
    return false;
  L->Body = convertBody(BodyForms, Loc);
  L->Body->Parent = L;
  popScope(Outer);
  F.Root = L;
  return !Diags.hasErrors();
}

/// Strips leading (declare ...) forms from a body, recording special
/// proclamations. Type declarations are accepted and ignored (the paper:
/// "treated as advice"; representation advice flows through the
/// type-specific operators instead).
void Converter::scanDeclarations(Value &BodyForms) {
  while (BodyForms.isCons()) {
    Value First = BodyForms.car();
    if (!First.isCons() || !First.car().isSymbol() ||
        First.car().symbol() != sym("declare"))
      return;
    for (Value D = First.cdr(); D.isCons(); D = D.cdr()) {
      Value Decl = D.car();
      if (Decl.isCons() && Decl.car().isSymbol() &&
          Decl.car().symbol() == sym("special")) {
        for (Value S = Decl.cdr(); S.isCons(); S = S.cdr())
          if (S.car().isSymbol())
            LocalSpecials.insert(S.car().symbol());
      }
      // Other declarations (type, ignore, ...) are advice; skip.
    }
    BodyForms = BodyForms.cdr();
  }
}

bool Converter::parseLambdaList(LambdaNode *L, Value LambdaList, ScopeMark &) {
  enum class Mode { Required, Optional, Rest, Done } Mode = Mode::Required;
  for (Value Cur = LambdaList; !Cur.isNil(); Cur = Cur.cdr()) {
    if (!Cur.isCons()) {
      Diags.error(locOf(LambdaList), "malformed lambda list");
      return false;
    }
    Value Item = Cur.car();
    if (Item.isSymbol() && Item.symbol() == sym("&optional")) {
      if (Mode != Mode::Required) {
        Diags.error(locOf(LambdaList), "&optional out of place");
        return false;
      }
      Mode = Mode::Optional;
      continue;
    }
    if (Item.isSymbol() && Item.symbol() == sym("&rest")) {
      if (Mode == Mode::Rest || Mode == Mode::Done) {
        Diags.error(locOf(LambdaList), "&rest out of place");
        return false;
      }
      Mode = Mode::Rest;
      continue;
    }

    auto makeParam = [&](const sexpr::Symbol *Name) {
      Variable *V = F.makeVariable(Name, isSpecialName(Name));
      V->Binder = L;
      bind(Name, V);
      return V;
    };

    switch (Mode) {
    case Mode::Required: {
      if (!Item.isSymbol()) {
        Diags.error(locOf(LambdaList), "required parameter must be a symbol");
        return false;
      }
      L->Required.push_back(makeParam(Item.symbol()));
      break;
    }
    case Mode::Optional: {
      const sexpr::Symbol *Name = nullptr;
      Node *Default = nullptr;
      if (Item.isSymbol()) {
        Name = Item.symbol();
      } else if (Item.isCons() && Item.car().isSymbol()) {
        Name = Item.car().symbol();
        if (Item.cdr().isCons())
          Default = convert(Item.cdr().car()); // sees earlier params
      }
      if (!Name) {
        Diags.error(locOf(LambdaList), "malformed &optional parameter");
        return false;
      }
      if (!Default)
        Default = F.makeNil();
      Variable *V = makeParam(Name);
      Default->Parent = L;
      L->Optionals.push_back({V, Default});
      break;
    }
    case Mode::Rest: {
      if (!Item.isSymbol()) {
        Diags.error(locOf(LambdaList), "&rest parameter must be a symbol");
        return false;
      }
      L->Rest = makeParam(Item.symbol());
      Mode = Mode::Done;
      break;
    }
    case Mode::Done:
      Diags.error(locOf(LambdaList), "parameters after &rest");
      return false;
    }
  }
  if (Mode == Mode::Rest) {
    Diags.error(locOf(LambdaList), "&rest with no parameter name");
    return false;
  }
  return true;
}

Node *Converter::convertBody(Value Forms, SourceLocation Loc) {
  scanDeclarations(Forms);
  std::vector<Node *> Converted;
  for (Value Cur = Forms; Cur.isCons(); Cur = Cur.cdr())
    Converted.push_back(convert(Cur.car()));
  if (Converted.empty())
    return F.makeNil();
  if (Converted.size() == 1)
    return Converted.front();
  PrognNode *P = F.makeProgn(std::move(Converted));
  P->Loc = Loc;
  return P;
}

Node *Converter::convert(Value Form) {
  // Self-evaluating atoms.
  if (Form.isNumber() || Form.isString() || Form.isNil()) {
    Node *N = F.makeLiteral(Form);
    return N;
  }
  if (Form.isSymbol()) {
    const sexpr::Symbol *S = Form.symbol();
    if (S == Syms.t())
      return F.makeLiteral(Value::symbol(S));
    if (isSpecialName(S))
      return F.makeVarRef(specialVar(S));
    if (Variable *V = lookupLexical(S))
      return F.makeVarRef(V);
    // Classic Lisp: a free reference is assumed to be a special variable.
    Diags.warning(SourceLocation(),
                  "free variable '" + S->name() + "' assumed special");
    return F.makeVarRef(specialVar(S));
  }

  assert(Form.isCons() && "unexpected value kind");
  Value Head = Form.car();

  // ((lambda ...) args): direct lambda application (LET after expansion).
  if (Head.isCons()) {
    if (Head.car().isSymbol() && Head.car().symbol() == sym("lambda")) {
      Node *Callee = convertLambdaForm(Head);
      std::vector<Node *> Args;
      for (Value A = Form.cdr(); A.isCons(); A = A.cdr())
        Args.push_back(convert(A.car()));
      CallNode *C = F.makeCallExpr(Callee, std::move(Args));
      C->Loc = locOf(Form);
      return C;
    }
    return errorAt(Form, "illegal function position");
  }
  if (!Head.isSymbol())
    return errorAt(Form, "illegal function position");

  const sexpr::Symbol *Op = Head.symbol();
  const std::string &Name = Op->name();
  Value Rest = Form.cdr();

  // --- special forms of the basic set ---
  if (Name == "quote") {
    if (!Rest.isCons() || !Rest.cdr().isNil())
      return errorAt(Form, "quote takes exactly one form");
    return F.makeLiteral(Rest.car());
  }
  if (Name == "if") {
    size_t N = sexpr::isProperList(Rest) ? sexpr::listLength(Rest) : 0;
    if (N < 2 || N > 3)
      return errorAt(Form, "if takes two or three forms");
    Node *Test = convert(Rest.car());
    Node *Then = convert(Rest.cdr().car());
    Node *Else = N == 3 ? convert(Rest.cdr().cdr().car()) : F.makeNil();
    IfNode *I = F.makeIf(Test, Then, Else);
    I->Loc = locOf(Form);
    return I;
  }
  if (Name == "progn")
    return convertBody(Rest, locOf(Form));
  if (Name == "lambda")
    return convertLambdaForm(Form);
  if (Name == "setq")
    return convertSetq(Form);
  if (Name == "go") {
    if (!Rest.isCons() || !Rest.car().isSymbol())
      return errorAt(Form, "go takes a tag symbol");
    const sexpr::Symbol *Tag = Rest.car().symbol();
    for (size_t I = ProgStack.size(); I > 0; --I) {
      ProgCtx &Ctx = ProgStack[I - 1];
      for (const sexpr::Symbol *T : Ctx.Tags)
        if (T == Tag)
          return F.makeGo(Tag, Ctx.Body);
    }
    return errorAt(Form, "go to unknown tag '" + Tag->name() + "'");
  }
  if (Name == "return") {
    if (ProgStack.empty())
      return errorAt(Form, "return outside prog");
    Node *V = Rest.isCons() ? convert(Rest.car()) : F.makeNil();
    return F.makeReturn(V, ProgStack.back().Body);
  }

  // --- macros expanded into the basic set ---
  if (Name == "let")
    return convertLet(Form, /*Sequential=*/false);
  if (Name == "let*")
    return convertLet(Form, /*Sequential=*/true);
  if (Name == "cond")
    return convertCond(Form);
  if (Name == "and")
    return convertAnd(Rest);
  if (Name == "or")
    return convertOr(Rest);
  if (Name == "when") {
    if (!Rest.isCons())
      return errorAt(Form, "when needs a test");
    return F.makeIf(convert(Rest.car()), convertBody(Rest.cdr(), locOf(Form)),
                    F.makeNil());
  }
  if (Name == "unless") {
    if (!Rest.isCons())
      return errorAt(Form, "unless needs a test");
    return F.makeIf(convert(Rest.car()), F.makeNil(),
                    convertBody(Rest.cdr(), locOf(Form)));
  }
  if (Name == "prog")
    return convertProg(Form);
  if (Name == "do")
    return convertDo(Form);
  if (Name == "dotimes")
    return convertDotimesDolist(Form, /*IsDotimes=*/true);
  if (Name == "dolist")
    return convertDotimesDolist(Form, /*IsDotimes=*/false);
  if (Name == "case" || Name == "caseq")
    return convertCase(Form);
  if (Name == "catch" || Name == "catcher")
    return convertCatch(Form);
  if (Name == "prog1")
    return convertProg1(Form, 0);
  if (Name == "prog2")
    return convertProg1(Form, 1);
  if (Name == "function") {
    // (function f) names a function; (function (lambda ...)) is the lambda.
    if (!Rest.isCons() || !Rest.cdr().isNil())
      return errorAt(Form, "function takes exactly one designator");
    Value Designator = Rest.car();
    if (Designator.isSymbol())
      return F.makeCall(Op, {F.makeLiteral(Designator)});
    if (Designator.isCons() && Designator.car().isSymbol() &&
        Designator.car().symbol() == sym("lambda"))
      return convertLambdaForm(Designator);
    return errorAt(Form, "function needs a symbol or lambda");
  }

  return convertCall(Form);
}

Node *Converter::convertCall(Value Form) {
  const sexpr::Symbol *Op = Form.car().symbol();
  std::vector<Node *> Args;
  for (Value A = Form.cdr(); A.isCons(); A = A.cdr())
    Args.push_back(convert(A.car()));

  // A lexically bound variable in function position is called through the
  // variable — the paper's dialect writes (f) for a let-bound function f
  // (see the §5 derivations).
  if (Variable *V = lookupLexical(Op)) {
    CallNode *C = F.makeCallExpr(F.makeVarRef(V), std::move(Args));
    C->Loc = locOf(Form);
    return C;
  }

  if (const PrimInfo *P = lookupPrim(Op)) {
    if (!P->acceptsArgCount(Args.size()))
      return errorAt(Form, std::string("wrong number of arguments to '") +
                               P->Name + "'");
  }
  CallNode *C = F.makeCall(Op, std::move(Args));
  C->Loc = locOf(Form);
  return C;
}

Node *Converter::convertLambdaForm(Value Form) {
  // (lambda lambda-list body...)
  Value Rest = Form.cdr();
  if (!Rest.isCons())
    return errorAt(Form, "lambda needs a parameter list");
  LambdaNode *L = F.makeLambda();
  L->Loc = locOf(Form);
  ScopeMark Outer = markScope();
  Value Body = Rest.cdr();
  scanDeclarations(Body);
  if (!parseLambdaList(L, Rest.car(), Outer))
    return F.makeNil();
  L->Body = convertBody(Body, locOf(Form));
  L->Body->Parent = L;
  popScope(Outer);
  return L;
}

Node *Converter::convertLet(Value Form, bool Sequential) {
  Value Rest = Form.cdr();
  if (!Rest.isCons())
    return errorAt(Form, "let needs a binding list");
  Value Bindings = Rest.car();
  Value Body = Rest.cdr();

  if (Sequential && Bindings.isCons() && Bindings.cdr().isCons()) {
    // (let* ((a x) more...) body) => (let ((a x)) (let* (more...) body))
    Value Inner = F.dataHeap().cons(
        Value::symbol(sym("let*")),
        F.dataHeap().cons(Bindings.cdr(), Body, locOf(Form)), locOf(Form));
    Value Outer = F.dataHeap().list(
        {Value::symbol(sym("let")),
         F.dataHeap().cons(Bindings.car(), Value::nil()), Inner});
    return convert(Outer);
  }

  // (let ((v1 e1) (v2 e2) v3) body) => ((lambda (v1 v2 v3) body) e1 e2 nil)
  std::vector<const sexpr::Symbol *> Names;
  std::vector<Node *> Inits; // converted in the OUTER scope
  for (Value B = Bindings; !B.isNil(); B = B.cdr()) {
    if (!B.isCons())
      return errorAt(Form, "malformed let binding list");
    Value Binding = B.car();
    if (Binding.isSymbol()) {
      Names.push_back(Binding.symbol());
      Inits.push_back(F.makeNil());
    } else if (Binding.isCons() && Binding.car().isSymbol()) {
      Names.push_back(Binding.car().symbol());
      Inits.push_back(Binding.cdr().isCons() ? convert(Binding.cdr().car())
                                             : F.makeNil());
    } else {
      return errorAt(Form, "malformed let binding");
    }
  }

  LambdaNode *L = F.makeLambda();
  L->Loc = locOf(Form);
  ScopeMark Outer = markScope();
  for (const sexpr::Symbol *Name : Names) {
    Variable *V = F.makeVariable(Name, isSpecialName(Name));
    V->Binder = L;
    bind(Name, V);
    L->Required.push_back(V);
  }
  L->Body = convertBody(Body, locOf(Form));
  L->Body->Parent = L;
  popScope(Outer);
  CallNode *C = F.makeCallExpr(L, std::move(Inits));
  C->Loc = locOf(Form);
  return C;
}

Node *Converter::convertCond(Value Form) {
  // (cond) => nil ; (cond (test) rest) => (or test (cond rest...))
  // (cond (test body..) rest) => (if test (progn body..) (cond rest...))
  // (cond (t body..)) => (progn body..)
  Value Clauses = Form.cdr();
  if (Clauses.isNil())
    return F.makeNil();
  if (!Clauses.isCons())
    return errorAt(Form, "malformed cond");
  Value Clause = Clauses.car();
  if (!Clause.isCons())
    return errorAt(Form, "malformed cond clause");
  Value Test = Clause.car();
  Value Body = Clause.cdr();
  Value RestClauses =
      F.dataHeap().cons(Value::symbol(sym("cond")), Clauses.cdr(), locOf(Form));

  bool TestIsT = Test.isSymbol() && Test.symbol() == Syms.t();
  if (Body.isNil()) {
    if (TestIsT)
      return F.makeLiteral(Value::symbol(Syms.t()));
    // Value-producing test: reuse the or-expansion to avoid double eval.
    return convertOr(F.dataHeap().list({Test, RestClauses}));
  }
  if (TestIsT)
    return convertBody(Body, locOf(Form));
  Node *Then = convertBody(Body, locOf(Form));
  Node *Else = convert(RestClauses);
  IfNode *I = F.makeIf(convert(Test), Then, Else);
  I->Loc = locOf(Form);
  return I;
}

Node *Converter::convertAnd(Value Rest) {
  // (and) => t ; (and a) => a ; (and a more..) => (if a (and more..) nil)
  if (Rest.isNil())
    return F.makeLiteral(Value::symbol(Syms.t()));
  if (Rest.cdr().isNil())
    return convert(Rest.car());
  Node *Test = convert(Rest.car());
  Node *Then = convertAnd(Rest.cdr());
  return F.makeIf(Test, Then, F.makeNil());
}

Node *Converter::convertOr(Value Rest) {
  // (or) => nil ; (or a) => a
  // (or a more..) => ((lambda (v f) (if v v (f))) a (lambda () (or more..)))
  // — the paper's expansion, avoiding double evaluation of a (§5).
  if (Rest.isNil())
    return F.makeNil();
  if (Rest.cdr().isNil())
    return convert(Rest.car());

  Node *First = convert(Rest.car());

  LambdaNode *Thunk = F.makeLambda();
  Thunk->Body = convertOr(Rest.cdr());
  Thunk->Body->Parent = Thunk;

  LambdaNode *L = F.makeLambda();
  Variable *V = F.makeVariable(sym("v"), false);
  Variable *Fv = F.makeVariable(sym("f"), false);
  V->Binder = L;
  Fv->Binder = L;
  L->Required = {V, Fv};
  Node *Call = F.makeCallExpr(F.makeVarRef(Fv), {});
  L->Body = F.makeIf(F.makeVarRef(V), F.makeVarRef(V), Call);
  L->Body->Parent = L;

  return F.makeCallExpr(L, {First, Thunk});
}

Node *Converter::convertSetq(Value Form) {
  // (setq v1 e1 v2 e2 ...) — value of the last assignment.
  Value Rest = Form.cdr();
  if (Rest.isNil())
    return F.makeNil();
  std::vector<Node *> Assignments;
  while (Rest.isCons()) {
    if (!Rest.car().isSymbol() || !Rest.cdr().isCons())
      return errorAt(Form, "malformed setq");
    const sexpr::Symbol *Name = Rest.car().symbol();
    Node *E = convert(Rest.cdr().car());
    Variable *V;
    if (isSpecialName(Name)) {
      V = specialVar(Name);
    } else if ((V = lookupLexical(Name)) == nullptr) {
      Diags.warning(locOf(Form),
                    "setq of free variable '" + Name->name() + "' assumed special");
      V = specialVar(Name);
    }
    SetqNode *S = F.makeSetq(V, E);
    S->Loc = locOf(Form);
    Assignments.push_back(S);
    Rest = Rest.cdr().cdr();
  }
  if (Assignments.size() == 1)
    return Assignments.front();
  return F.makeProgn(std::move(Assignments));
}

Node *Converter::convertProg(Value Form) {
  // (prog (vars) stmt-or-tag ...) =>
  //   (let (vars) (progbody ...))   with an implicit (return nil) fall-off.
  Value Rest = Form.cdr();
  if (!Rest.isCons())
    return errorAt(Form, "prog needs a binding list");
  Value Bindings = Rest.car();
  Value Stmts = Rest.cdr();

  // Bind the prog variables exactly like let.
  std::vector<const sexpr::Symbol *> Names;
  std::vector<Node *> Inits;
  for (Value B = Bindings; !B.isNil(); B = B.cdr()) {
    if (!B.isCons())
      return errorAt(Form, "malformed prog binding list");
    Value Binding = B.car();
    if (Binding.isSymbol()) {
      Names.push_back(Binding.symbol());
      Inits.push_back(F.makeNil());
    } else if (Binding.isCons() && Binding.car().isSymbol()) {
      Names.push_back(Binding.car().symbol());
      Inits.push_back(Binding.cdr().isCons() ? convert(Binding.cdr().car())
                                             : F.makeNil());
    } else {
      return errorAt(Form, "malformed prog binding");
    }
  }

  LambdaNode *L = F.makeLambda();
  L->Loc = locOf(Form);
  ScopeMark Outer = markScope();
  for (const sexpr::Symbol *Name : Names) {
    Variable *V = F.makeVariable(Name, isSpecialName(Name));
    V->Binder = L;
    bind(Name, V);
    L->Required.push_back(V);
  }

  // Collect tags first so forward gos resolve.
  std::vector<const sexpr::Symbol *> Tags;
  for (Value S = Stmts; S.isCons(); S = S.cdr())
    if (S.car().isSymbol())
      Tags.push_back(S.car().symbol());

  ProgBodyNode *PB = F.makeProgBody({});
  ProgStack.push_back({PB, Tags});
  std::vector<ProgBodyNode::Item> Items;
  for (Value S = Stmts; S.isCons(); S = S.cdr()) {
    Value Stmt = S.car();
    if (Stmt.isSymbol())
      Items.push_back({Stmt.symbol(), nullptr});
    else
      Items.push_back({nullptr, convert(Stmt)});
  }
  ProgStack.pop_back();
  PB->Items = std::move(Items);
  for (auto &I : PB->Items)
    if (I.Stmt)
      I.Stmt->Parent = PB;

  L->Body = PB;
  PB->Parent = L;
  popScope(Outer);
  return F.makeCallExpr(L, std::move(Inits));
}

Node *Converter::convertDo(Value Form) {
  // (do ((v init step)...) (end-test result...) body...) =>
  // (prog ((v init)...)
  //   loop (when end-test (return (progn result...)))
  //        body...
  //        <parallel step>
  //        (go loop))
  sexpr::Heap &H = F.dataHeap();
  Value Rest = Form.cdr();
  if (!Rest.isCons() || !Rest.cdr().isCons())
    return errorAt(Form, "malformed do");
  Value VarSpecs = Rest.car();
  Value EndClause = Rest.cdr().car();
  Value Body = Rest.cdr().cdr();
  if (!EndClause.isCons())
    return errorAt(Form, "do needs an (end-test result...) clause");

  std::vector<Value> Bindings;
  std::vector<std::pair<Value, Value>> Steps; // (var, step-expr)
  for (Value VS = VarSpecs; VS.isCons(); VS = VS.cdr()) {
    Value Spec = VS.car();
    if (Spec.isSymbol()) {
      Bindings.push_back(Spec);
      continue;
    }
    if (!Spec.isCons() || !Spec.car().isSymbol())
      return errorAt(Form, "malformed do variable spec");
    Value Var = Spec.car();
    Value Init = Spec.cdr().isCons() ? Spec.cdr().car() : Value::nil();
    Bindings.push_back(H.list({Var, Init}));
    if (Spec.cdr().isCons() && Spec.cdr().cdr().isCons())
      Steps.push_back({Var, Spec.cdr().cdr().car()});
  }

  Value LoopTag = Value::symbol(Syms.intern("do-loop"));
  Value EndTest = EndClause.car();
  Value ResultForms = EndClause.cdr();
  Value ReturnForm = H.list(
      {Value::symbol(sym("return")),
       H.cons(Value::symbol(sym("progn")), ResultForms, locOf(Form))});
  Value WhenForm =
      H.list({Value::symbol(sym("when")), EndTest, ReturnForm});

  std::vector<Value> Stmts{LoopTag, WhenForm};
  for (Value BodyForm = Body; BodyForm.isCons(); BodyForm = BodyForm.cdr())
    Stmts.push_back(BodyForm.car());

  // Parallel stepping: ((lambda (t1..tn) (setq v1 t1) ... ) step1 .. stepn)
  if (!Steps.empty()) {
    std::vector<Value> TempNames, SetqForms, StepExprs;
    for (size_t I = 0; I < Steps.size(); ++I) {
      Value Temp = Value::symbol(Syms.intern("do-step-" + std::to_string(I)));
      TempNames.push_back(Temp);
      SetqForms.push_back(H.list({Value::symbol(sym("setq")), Steps[I].first, Temp}));
      StepExprs.push_back(Steps[I].second);
    }
    std::vector<Value> LambdaForm{Value::symbol(sym("lambda")), H.list(TempNames)};
    for (Value SF : SetqForms)
      LambdaForm.push_back(SF);
    std::vector<Value> CallForm{H.list(LambdaForm)};
    for (Value SE : StepExprs)
      CallForm.push_back(SE);
    Stmts.push_back(H.list(CallForm));
  }
  Stmts.push_back(H.list({Value::symbol(sym("go")), LoopTag}));

  std::vector<Value> ProgForm{Value::symbol(sym("prog")), H.list(Bindings)};
  for (Value S : Stmts)
    ProgForm.push_back(S);
  return convert(H.list(ProgForm));
}

Node *Converter::convertDotimesDolist(Value Form, bool IsDotimes) {
  sexpr::Heap &H = F.dataHeap();
  Value Rest = Form.cdr();
  if (!Rest.isCons() || !Rest.car().isCons())
    return errorAt(Form, "malformed dotimes/dolist header");
  Value Header = Rest.car();
  Value Var = Header.car();
  if (!Var.isSymbol())
    return errorAt(Form, "dotimes/dolist variable must be a symbol");
  Value Limit = Header.cdr().isCons() ? Header.cdr().car() : Value::nil();
  Value Result = Header.cdr().cdr().isCons() ? Header.cdr().cdr().car() : Value::nil();
  Value Body = Rest.cdr();

  if (IsDotimes) {
    // (do ((var 0 (1+ var)) (lim limit)) ((>= var lim) result) body...)
    Value LimVar = Value::symbol(Syms.intern("dotimes-limit"));
    Value Do = H.list(
        {Value::symbol(sym("do")),
         H.list({H.list({Var, Value::fixnum(0),
                         H.list({Value::symbol(sym("1+")), Var})}),
                 H.list({LimVar, Limit})}),
         H.list({H.list({Value::symbol(sym(">=")), Var, LimVar}), Result})});
    std::vector<Value> Full = sexpr::listToVector(Do);
    for (Value BodyForm = Body; BodyForm.isCons(); BodyForm = BodyForm.cdr())
      Full.push_back(BodyForm.car());
    return convert(H.list(Full));
  }

  // (do ((tail list (cdr tail))) ((null tail) result)
  //   (let ((var (car tail))) body...))
  Value TailVar = Value::symbol(Syms.intern("dolist-tail"));
  std::vector<Value> LetBody{Value::symbol(sym("let")),
                             H.list({H.list({Var, H.list({Value::symbol(sym("car")), TailVar})})})};
  for (Value BodyForm = Body; BodyForm.isCons(); BodyForm = BodyForm.cdr())
    LetBody.push_back(BodyForm.car());
  Value Do = H.list({Value::symbol(sym("do")),
                     H.list({H.list({TailVar, Limit,
                                     H.list({Value::symbol(sym("cdr")), TailVar})})}),
                     H.list({H.list({Value::symbol(sym("null")), TailVar}), Result}),
                     H.list(LetBody)});
  return convert(Do);
}

Node *Converter::convertCase(Value Form) {
  Value Rest = Form.cdr();
  if (!Rest.isCons())
    return errorAt(Form, "case needs a key form");
  Node *Key = convert(Rest.car());
  std::vector<CaseqNode::Clause> Clauses;
  Node *Default = nullptr;
  for (Value C = Rest.cdr(); C.isCons(); C = C.cdr()) {
    Value Clause = C.car();
    if (!Clause.isCons())
      return errorAt(Form, "malformed case clause");
    Value Keys = Clause.car();
    Node *Body = convertBody(Clause.cdr(), locOf(Form));
    bool IsDefault =
        Keys.isSymbol() &&
        (Keys.symbol() == Syms.t() || Keys.symbol() == sym("otherwise"));
    if (IsDefault) {
      if (Default)
        return errorAt(Form, "case has two default clauses");
      Default = Body;
      continue;
    }
    std::vector<Value> KeyList;
    if (Keys.isCons())
      KeyList = sexpr::listToVector(Keys);
    else
      KeyList.push_back(Keys);
    Clauses.push_back({std::move(KeyList), Body});
  }
  if (!Default)
    Default = F.makeNil();
  CaseqNode *N = F.makeCaseq(Key, std::move(Clauses), Default);
  N->Loc = locOf(Form);
  return N;
}

Node *Converter::convertCatch(Value Form) {
  // (catch tag body...) => catcher node.
  Value Rest = Form.cdr();
  if (!Rest.isCons())
    return errorAt(Form, "catch needs a tag");
  Node *Tag = convert(Rest.car());
  Node *Body = convertBody(Rest.cdr(), locOf(Form));
  CatcherNode *C = F.makeCatcher(Tag, Body);
  C->Loc = locOf(Form);
  return C;
}

Node *Converter::convertProg1(Value Form, size_t KeepIndex) {
  // (prog1 a b c) => ((lambda (v) b c v) a)
  // (prog2 a b c) => (progn a ((lambda (v) c v) b))
  Value Rest = Form.cdr();
  std::vector<Value> Forms = sexpr::listToVector(Rest);
  if (Forms.size() <= KeepIndex)
    return errorAt(Form, "too few forms for prog1/prog2");
  sexpr::Heap &H = F.dataHeap();
  Value KeepVar = Value::symbol(Syms.intern("prog1-value"));
  std::vector<Value> LambdaForm{Value::symbol(sym("lambda")), H.list({KeepVar})};
  for (size_t I = KeepIndex + 1; I < Forms.size(); ++I)
    LambdaForm.push_back(Forms[I]);
  LambdaForm.push_back(KeepVar);
  Value Call = H.list({H.list(LambdaForm), Forms[KeepIndex]});
  if (KeepIndex == 0)
    return convert(Call);
  std::vector<Value> Progn{Value::symbol(sym("progn"))};
  for (size_t I = 0; I < KeepIndex; ++I)
    Progn.push_back(Forms[I]);
  Progn.push_back(Call);
  return convert(H.list(Progn));
}

} // namespace

ir::Function *frontend::convertTopLevel(Module &M, Value Form, DiagEngine &Diags) {
  if (!Form.isCons() || !Form.car().isSymbol()) {
    Diags.error(locOf(Form), "top-level form must be defun, defvar, or proclaim");
    return nullptr;
  }
  const std::string &Head = Form.car().symbol()->name();
  ++NumTopLevelForms;

  if (Head == "defvar" || Head == "defparameter") {
    Value Rest = Form.cdr();
    if (!Rest.isCons() || !Rest.car().isSymbol()) {
      Diags.error(locOf(Form), "defvar needs a symbol");
      return nullptr;
    }
    M.Specials.push_back(Rest.car().symbol());
    ++NumSpecialsProclaimed;
    return nullptr;
  }
  if (Head == "proclaim") {
    // (proclaim (special a b ...)) — we accept the quoted form too.
    Value Arg = Form.cdr().car();
    if (Arg.isCons() && Arg.car().isSymbol() &&
        Arg.car().symbol()->name() == "quote")
      Arg = Arg.cdr().car();
    if (Arg.isCons() && Arg.car().isSymbol() &&
        Arg.car().symbol()->name() == "special")
      for (Value S = Arg.cdr(); S.isCons(); S = S.cdr())
        if (S.car().isSymbol()) {
          M.Specials.push_back(S.car().symbol());
          ++NumSpecialsProclaimed;
        }
    return nullptr;
  }
  if (Head != "defun") {
    Diags.error(locOf(Form), "unsupported top-level form '" + Head + "'");
    return nullptr;
  }

  Value Rest = Form.cdr();
  if (!Rest.isCons() || !Rest.car().isSymbol()) {
    Diags.error(locOf(Form), "defun needs a function name");
    return nullptr;
  }
  const sexpr::Symbol *Name = Rest.car().symbol();
  if (!Rest.cdr().isCons()) {
    Diags.error(locOf(Form), "defun needs a lambda list");
    return nullptr;
  }
  Value LambdaList = Rest.cdr().car();
  Value Body = Rest.cdr().cdr();

  Function *F = M.addFunction(Name->name());
  Converter C(M, *F, Diags);
  if (!C.convertDefunBody(LambdaList, Body, locOf(Form)))
    return nullptr;

  recomputeVariableRefs(*F);
  DiagEngine VerifyDiags;
  bool Clean = verify(*F, VerifyDiags);
  assert(Clean && "converter produced an inconsistent tree");
  (void)Clean;
  ++NumDefuns;
  return F;
}

bool frontend::convertSource(Module &M, std::string_view Source, DiagEngine &Diags) {
  auto Forms = sexpr::readAll(M.Syms, M.DataHeap, Source, Diags);
  if (Diags.hasErrors())
    return false;
  for (Value Form : Forms)
    convertTopLevel(M, Form, Diags);
  return !Diags.hasErrors();
}

ir::Function *frontend::convertDefun(Module &M, std::string_view Source) {
  DiagEngine Diags;
  auto Forms = sexpr::readAll(M.Syms, M.DataHeap, Source, Diags);
  Function *Result = nullptr;
  for (Value Form : Forms) {
    Function *F = convertTopLevel(M, Form, Diags);
    if (F)
      Result = F;
  }
  assert(Result && !Diags.hasErrors() && "convertDefun: conversion failed");
  return Result;
}
