//===- frontend/Convert.h - Preliminary conversion --------------*- C++ -*-===//
///
/// \file
/// The paper's preliminary phase (§4.1): syntax checking, resolution of
/// variable references (with alpha renaming, so every distinct variable
/// gets its own ir::Variable), expansion of macro calls, and conversion to
/// the internal tree form. All constructs outside Table 2's basic set —
/// let, let*, cond, and, or, when, unless, prog, do, dotimes, dolist,
/// case, catch, prog1, prog2 — are re-expressed in terms of the basic set.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_FRONTEND_CONVERT_H
#define S1LISP_FRONTEND_CONVERT_H

#include "ir/Ir.h"
#include "support/Diag.h"

#include <string_view>

namespace s1lisp {
namespace frontend {

/// Converts one top-level form. (defun ...) produces a Function in \p M;
/// (defvar sym [literal]) proclaims a special and returns null;
/// (proclaim (special ...)) likewise. Returns the new Function for defun,
/// null otherwise (including on error — check \p Diags).
ir::Function *convertTopLevel(ir::Module &M, sexpr::Value Form, DiagEngine &Diags);

/// Reads and converts every form in \p Source. Returns false if any
/// diagnostics were errors.
bool convertSource(ir::Module &M, std::string_view Source, DiagEngine &Diags);

/// Convenience for tests: converts the single defun in \p Source and
/// asserts success.
ir::Function *convertDefun(ir::Module &M, std::string_view Source);

} // namespace frontend
} // namespace s1lisp

#endif // S1LISP_FRONTEND_CONVERT_H
