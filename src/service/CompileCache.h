//===- service/CompileCache.h - Content-addressed unit cache ----*- C++ -*-===//
///
/// \file
/// The compile service's content-addressed compilation cache: a
/// thread-safe LRU map from driver memo keys (alpha-normalized IR hash ×
/// options fingerprint × callee-index signature, see driver::FunctionMemo)
/// to memoized per-function compiles, bounded by a byte budget. A hit
/// hands back the shared relocatable unit plus the counter deltas and
/// remarks a fresh compile would have produced, so a warm daemon links
/// bit-identical programs without running the middle end.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_SERVICE_COMPILECACHE_H
#define S1LISP_SERVICE_COMPILECACHE_H

#include "driver/Compiler.h"

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

namespace s1lisp {
namespace service {

class CompileCache : public driver::FunctionMemo {
public:
  static constexpr size_t DefaultMaxBytes = 256u << 20;

  explicit CompileCache(size_t MaxBytes = DefaultMaxBytes)
      : MaxBytes_(MaxBytes) {}

  /// FunctionMemo: returns the entry (refreshing its LRU position) or
  /// null. Counts service.cache.{hits,misses}.
  std::shared_ptr<const driver::MemoizedFunction> lookup(uint64_t Key) override;

  /// FunctionMemo: stores \p Fn under \p Key (replacing any previous
  /// entry), then evicts least-recently-used entries until the byte
  /// budget holds. An entry larger than the whole budget is not stored.
  void insert(uint64_t Key,
              std::shared_ptr<const driver::MemoizedFunction> Fn) override;

  void clear();
  size_t entries() const;
  size_t bytes() const;
  size_t maxBytes() const;
  void setMaxBytes(size_t MaxBytes);

  /// Lifetime traffic counters (monotonic, independent of the stats
  /// registry's enablement).
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

private:
  struct Entry {
    std::shared_ptr<const driver::MemoizedFunction> Fn;
    size_t Bytes = 0;
    std::list<uint64_t>::iterator LruIt;
  };

  void evictLocked();

  mutable std::mutex Mu;
  std::list<uint64_t> Lru; ///< front = most recently used
  std::unordered_map<uint64_t, Entry> Map;
  size_t Bytes_ = 0;
  size_t MaxBytes_;
  uint64_t Hits_ = 0, Misses_ = 0, Evictions_ = 0;
};

} // namespace service
} // namespace s1lisp

#endif // S1LISP_SERVICE_COMPILECACHE_H
