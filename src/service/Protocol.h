//===- service/Protocol.h - s1lispd wire protocol ---------------*- C++ -*-===//
///
/// \file
/// The compile service's wire format: length-prefixed frames, each
/// carrying one message of ordered key/value string fields. A frame is a
/// big-endian u32 payload length followed by the payload; the payload is
/// a big-endian u32 field count, then per field a u32 key length, the key
/// bytes, a u32 value length, and the value bytes. Values are opaque
/// bytes (sources, listings, JSON) — nothing needs escaping, and the
/// format survives any content the compiler can produce.
///
/// Requests carry a "cmd" field ("compile", "ping", "stats", "shutdown");
/// see Server.h for the compile fields. The same framing runs over a unix
/// socket (the daemon) or stdin/stdout (`s1lispd --stdio`, for tests and
/// piping).
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_SERVICE_PROTOCOL_H
#define S1LISP_SERVICE_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace s1lisp {
namespace service {

/// Upper bound on one frame's payload; a peer announcing more is treated
/// as malformed (protects the daemon from a garbage length prefix).
constexpr uint32_t MaxFrameBytes = 256u << 20;

/// One request or response: ordered key/value fields. Duplicate keys are
/// allowed by the format; get() returns the first.
struct Message {
  std::vector<std::pair<std::string, std::string>> Fields;

  void set(std::string Key, std::string Value) {
    Fields.emplace_back(std::move(Key), std::move(Value));
  }
  const std::string *get(std::string_view Key) const {
    for (const auto &[K, V] : Fields)
      if (K == Key)
        return &V;
    return nullptr;
  }
  std::string getOr(std::string_view Key, std::string Default = "") const {
    const std::string *V = get(Key);
    return V ? *V : std::move(Default);
  }
  bool has(std::string_view Key) const { return get(Key) != nullptr; }
  bool flag(std::string_view Key) const {
    const std::string *V = get(Key);
    return V && !V->empty() && *V != "0";
  }
};

/// Serializes \p M into a frame payload (no length prefix).
std::string encodeMessage(const Message &M);

/// Parses a frame payload; false on truncated or oversized input.
bool decodeMessage(std::string_view Payload, Message &Out);

/// Frame I/O over a file descriptor. Both handle partial transfers and
/// EINTR. readFrame distinguishes a clean EOF at a frame boundary (Eof)
/// from a truncated or malformed stream (Error).
enum class ReadStatus { Ok, Eof, Error };
ReadStatus readFrame(int Fd, Message &Out, std::string *Err = nullptr);
bool writeFrame(int Fd, const Message &M, std::string *Err = nullptr);

} // namespace service
} // namespace s1lisp

#endif // S1LISP_SERVICE_PROTOCOL_H
