//===- service/Client.h - Compile-service client ----------------*- C++ -*-===//
///
/// \file
/// A small blocking client for the s1lispd protocol over a unix socket:
/// connect, send request frames, read response frames. `s1lispc
/// --server=<socket>` and `s1lisp-fuzz --server=<socket>` route their
/// work through this, so golden examples and the fuzzing oracle exercise
/// the daemon with the same surface they use locally.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_SERVICE_CLIENT_H
#define S1LISP_SERVICE_CLIENT_H

#include "service/Protocol.h"

#include <string>

namespace s1lisp {
namespace service {

class Client {
public:
  Client() = default;
  ~Client();
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to a daemon's unix socket; false (with \p Err) on failure.
  bool connectUnix(const std::string &SocketPath, std::string *Err = nullptr);

  /// Sends \p Req and reads the matching response (the protocol is
  /// strictly request/response per connection).
  bool roundTrip(const Message &Req, Message &Resp, std::string *Err = nullptr);

  bool connected() const { return Fd >= 0; }
  void close();

private:
  int Fd = -1;
};

} // namespace service
} // namespace s1lisp

#endif // S1LISP_SERVICE_CLIENT_H
