//===- service/CompileCache.cpp -------------------------------------------===//

#include "service/CompileCache.h"

#include "stats/Stats.h"

using namespace s1lisp;
using namespace s1lisp::service;

S1_STAT(CacheHits, "service.cache.hits", "compile-cache hits");
S1_STAT(CacheMisses, "service.cache.misses", "compile-cache misses");
S1_STAT(CacheEvictions, "service.cache.evictions",
        "compile-cache entries evicted for the byte budget");

std::shared_ptr<const driver::MemoizedFunction>
CompileCache::lookup(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(Key);
  if (It == Map.end()) {
    ++Misses_;
    ++CacheMisses;
    return nullptr;
  }
  ++Hits_;
  ++CacheHits;
  Lru.splice(Lru.begin(), Lru, It->second.LruIt);
  return It->second.Fn;
}

void CompileCache::insert(uint64_t Key,
                          std::shared_ptr<const driver::MemoizedFunction> Fn) {
  if (!Fn)
    return;
  const size_t Bytes = Fn->byteSize();
  std::lock_guard<std::mutex> Lock(Mu);
  if (Bytes > MaxBytes_)
    return;
  auto It = Map.find(Key);
  if (It != Map.end()) {
    // Concurrent compiles of the same function can both miss and both
    // insert; keep the first and refresh its position.
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    return;
  }
  Lru.push_front(Key);
  Map.emplace(Key, Entry{std::move(Fn), Bytes, Lru.begin()});
  Bytes_ += Bytes;
  evictLocked();
}

void CompileCache::evictLocked() {
  while (Bytes_ > MaxBytes_ && !Lru.empty()) {
    uint64_t Victim = Lru.back();
    Lru.pop_back();
    auto It = Map.find(Victim);
    Bytes_ -= It->second.Bytes;
    Map.erase(It);
    ++Evictions_;
    ++CacheEvictions;
  }
}

void CompileCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Map.clear();
  Lru.clear();
  Bytes_ = 0;
}

size_t CompileCache::entries() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Map.size();
}

size_t CompileCache::bytes() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Bytes_;
}

size_t CompileCache::maxBytes() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return MaxBytes_;
}

void CompileCache::setMaxBytes(size_t MaxBytes) {
  std::lock_guard<std::mutex> Lock(Mu);
  MaxBytes_ = MaxBytes;
  evictLocked();
}

uint64_t CompileCache::hits() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Hits_;
}

uint64_t CompileCache::misses() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Misses_;
}

uint64_t CompileCache::evictions() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Evictions_;
}
