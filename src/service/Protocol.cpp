//===- service/Protocol.cpp -----------------------------------------------===//

#include "service/Protocol.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

using namespace s1lisp;
using namespace s1lisp::service;

namespace {

void putU32(std::string &Out, uint32_t V) {
  Out.push_back(static_cast<char>(V >> 24));
  Out.push_back(static_cast<char>(V >> 16));
  Out.push_back(static_cast<char>(V >> 8));
  Out.push_back(static_cast<char>(V));
}

bool getU32(std::string_view In, size_t &Pos, uint32_t &V) {
  if (In.size() - Pos < 4)
    return false;
  V = (static_cast<uint32_t>(static_cast<uint8_t>(In[Pos])) << 24) |
      (static_cast<uint32_t>(static_cast<uint8_t>(In[Pos + 1])) << 16) |
      (static_cast<uint32_t>(static_cast<uint8_t>(In[Pos + 2])) << 8) |
      static_cast<uint32_t>(static_cast<uint8_t>(In[Pos + 3]));
  Pos += 4;
  return true;
}

bool getBytes(std::string_view In, size_t &Pos, std::string &Out) {
  uint32_t Len = 0;
  if (!getU32(In, Pos, Len) || In.size() - Pos < Len)
    return false;
  Out.assign(In.data() + Pos, Len);
  Pos += Len;
  return true;
}

bool readAll(int Fd, char *Buf, size_t Len) {
  while (Len) {
    ssize_t N = ::read(Fd, Buf, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false;
    Buf += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

void setErr(std::string *Err, const char *Msg) {
  if (Err)
    *Err = Msg;
}

} // namespace

std::string service::encodeMessage(const Message &M) {
  std::string Out;
  putU32(Out, static_cast<uint32_t>(M.Fields.size()));
  for (const auto &[K, V] : M.Fields) {
    putU32(Out, static_cast<uint32_t>(K.size()));
    Out += K;
    putU32(Out, static_cast<uint32_t>(V.size()));
    Out += V;
  }
  return Out;
}

bool service::decodeMessage(std::string_view Payload, Message &Out) {
  Out.Fields.clear();
  size_t Pos = 0;
  uint32_t Count = 0;
  if (!getU32(Payload, Pos, Count))
    return false;
  // Each field needs at least its two length words.
  if (Count > Payload.size() / 8 + 1)
    return false;
  Out.Fields.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    std::string K, V;
    if (!getBytes(Payload, Pos, K) || !getBytes(Payload, Pos, V))
      return false;
    Out.Fields.emplace_back(std::move(K), std::move(V));
  }
  return Pos == Payload.size();
}

ReadStatus service::readFrame(int Fd, Message &Out, std::string *Err) {
  char Hdr[4];
  // EOF before the first header byte is a clean end of stream; EOF after
  // it is a truncation.
  ssize_t N;
  do
    N = ::read(Fd, Hdr, 1);
  while (N < 0 && errno == EINTR);
  if (N < 0) {
    setErr(Err, "read failed");
    return ReadStatus::Error;
  }
  if (N == 0)
    return ReadStatus::Eof;
  if (!readAll(Fd, Hdr + 1, 3)) {
    setErr(Err, "truncated frame header");
    return ReadStatus::Error;
  }
  uint32_t Len = (static_cast<uint32_t>(static_cast<uint8_t>(Hdr[0])) << 24) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(Hdr[1])) << 16) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(Hdr[2])) << 8) |
                 static_cast<uint32_t>(static_cast<uint8_t>(Hdr[3]));
  if (Len > MaxFrameBytes) {
    setErr(Err, "frame exceeds MaxFrameBytes");
    return ReadStatus::Error;
  }
  std::string Payload(Len, '\0');
  if (Len && !readAll(Fd, Payload.data(), Len)) {
    setErr(Err, "truncated frame payload");
    return ReadStatus::Error;
  }
  if (!decodeMessage(Payload, Out)) {
    setErr(Err, "malformed frame payload");
    return ReadStatus::Error;
  }
  return ReadStatus::Ok;
}

bool service::writeFrame(int Fd, const Message &M, std::string *Err) {
  std::string Payload = encodeMessage(M);
  if (Payload.size() > MaxFrameBytes) {
    setErr(Err, "frame exceeds MaxFrameBytes");
    return false;
  }
  std::string Out;
  Out.reserve(Payload.size() + 4);
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  Out += Payload;
  const char *Buf = Out.data();
  size_t Len = Out.size();
  while (Len) {
    ssize_t N = ::write(Fd, Buf, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      setErr(Err, "write failed");
      return false;
    }
    Buf += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}
