//===- service/Server.h - The s1lispd compile service -----------*- C++ -*-===//
///
/// \file
/// A long-running compile service: concurrent clients submit sources over
/// the length-prefixed protocol (Protocol.h) and get back values,
/// listings, remarks, or stats — the same surface s1lispc offers — while
/// a shared content-addressed CompileCache memoizes per-function
/// compilation across requests. Repeated or overlapping workloads skip
/// the middle end and link cached relocatable units into bit-identical
/// programs.
///
/// Requests ("cmd" field):
///   ping      liveness probe; answers ok=1.
///   stats     daemon-wide aggregates: the global counter registry as
///             JSON plus cache-entries/-bytes/-hits/-misses/-evictions
///             and the request count.
///   shutdown  answers ok=1, then stops the server.
///   compile   fields: source (required), options (whitespace-separated
///             s1lispc flags: -O0 -O2 --cse --no-*), jobs, entry (a
///             function to call after compiling), run ("vm" default,
///             "interp" for the oracle), engine ("threaded"/"legacy"),
///             fuel, listing=1, transcript=1, remarks=1 (JSON),
///             stats=text|json, timing=1, cache=0 (bypass the memo).
///             Answers ok, error, memo-hits, memo-misses, and — as
///             requested — listing, transcript, remarks, stats, timing,
///             output, value or run-error.
///
/// Every request runs under a private TallyScope, so its counters (and
/// the stats=json report) are isolated from concurrently executing
/// requests and identical to what a fresh s1lispc process would report;
/// the tallies fold into the daemon-wide registry afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_SERVICE_SERVER_H
#define S1LISP_SERVICE_SERVER_H

#include "service/CompileCache.h"
#include "service/Protocol.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace s1lisp {
namespace service {

struct ServerOptions {
  std::string SocketPath;
  /// Worker threads accepting connections; 0 = hardware concurrency.
  unsigned Workers = 0;
  size_t CacheMaxBytes = CompileCache::DefaultMaxBytes;
  /// Simulator fuel for requests that don't set their own; 0 keeps the
  /// Machine default.
  uint64_t VmFuel = 0;
};

class Server {
public:
  explicit Server(ServerOptions Opts);

  /// Handles one request in-process (the transport-independent core; the
  /// benchmark harness and tests call it directly).
  Message handle(const Message &Req);

  /// Binds SocketPath and serves until a shutdown request (or
  /// requestStop()). Workers each accept on the shared listening socket.
  /// Returns false (with \p Err) when the socket can't be set up.
  bool serveUnixSocket(std::string *Err = nullptr);

  /// Serves frames from stdin to stdout until EOF or shutdown; returns
  /// the process exit status. Single-threaded by nature of the pipe.
  int serveStdio();

  /// Makes serveUnixSocket return; safe from any thread.
  void requestStop();

  CompileCache &cache() { return Cache; }
  const ServerOptions &options() const { return Opts; }
  uint64_t requestCount() const { return Requests.load(); }

private:
  void handleDispatch(const Message &Req, Message &Resp,
                      const stats::LocalTally &T);
  void handleCompile(const Message &Req, Message &Resp,
                     const stats::LocalTally &T);
  void handleStats(Message &Resp);
  /// Serves one accepted connection until the peer hangs up.
  void serveConnection(int Fd);

  ServerOptions Opts;
  CompileCache Cache;
  std::atomic<bool> Stopping{false};
  std::atomic<uint64_t> Requests{0};
  int ListenFd = -1;
};

} // namespace service
} // namespace s1lisp

#endif // S1LISP_SERVICE_SERVER_H
