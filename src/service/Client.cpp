//===- service/Client.cpp -------------------------------------------------===//

#include "service/Client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace s1lisp;
using namespace s1lisp::service;

Client::~Client() { close(); }

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Client::connectUnix(const std::string &SocketPath, std::string *Err) {
  close();
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long";
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0) {
    if (Err)
      *Err = "socket() failed";
    return false;
  }
  if (::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    if (Err)
      *Err = "cannot connect to '" + SocketPath + "': " + std::strerror(errno);
    ::close(S);
    return false;
  }
  Fd = S;
  return true;
}

bool Client::roundTrip(const Message &Req, Message &Resp, std::string *Err) {
  if (Fd < 0) {
    if (Err)
      *Err = "not connected";
    return false;
  }
  if (!writeFrame(Fd, Req, Err))
    return false;
  ReadStatus St = readFrame(Fd, Resp, Err);
  if (St == ReadStatus::Eof) {
    if (Err)
      *Err = "server closed the connection";
    return false;
  }
  return St == ReadStatus::Ok;
}
