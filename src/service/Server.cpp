//===- service/Server.cpp -------------------------------------------------===//

#include "service/Server.h"

#include "driver/Ablation.h"
#include "driver/Compiler.h"
#include "interp/Interp.h"
#include "sexpr/Printer.h"
#include "stats/Stats.h"
#include "vm/Machine.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace s1lisp;
using namespace s1lisp::service;

S1_STAT(ServiceRequests, "service.requests", "requests handled");
S1_STAT(ServiceRequestMicros, "service.request.micros",
        "total request handling time (microseconds)");

namespace {

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = V;
  return true;
}

/// Splits on whitespace; the daemon's "options" field carries the same
/// tokens an s1lispc command line would.
std::vector<std::string> splitTokens(const std::string &S) {
  std::vector<std::string> Out;
  size_t I = 0;
  while (I < S.size()) {
    while (I < S.size() && std::isspace(static_cast<unsigned char>(S[I])))
      ++I;
    size_t Begin = I;
    while (I < S.size() && !std::isspace(static_cast<unsigned char>(S[I])))
      ++I;
    if (I > Begin)
      Out.push_back(S.substr(Begin, I - Begin));
  }
  return Out;
}

/// The request's counter deltas minus the service's own bookkeeping: a
/// cache hit records service.cache.hits where a fresh compile records a
/// miss, and the per-request report must stay bit-identical between the
/// two (and with a standalone s1lispc run).
std::vector<stats::TallyDelta>
compilerDeltas(const stats::LocalTally &T) {
  std::vector<stats::TallyDelta> Deltas = T.deltas();
  Deltas.erase(std::remove_if(Deltas.begin(), Deltas.end(),
                              [](const stats::TallyDelta &D) {
                                return D.Name.rfind("service.", 0) == 0;
                              }),
               Deltas.end());
  return Deltas;
}

/// Renders deltas in reportStats()'s text layout (value column, name,
/// description), resolving descriptions from the live registry.
std::string renderStatsText(const std::vector<stats::TallyDelta> &Deltas) {
  std::vector<stats::StatValue> Values;
  std::vector<stats::StatValue> Registry = stats::allStats(/*IncludeZeros=*/true);
  for (const stats::TallyDelta &D : Deltas) {
    uint64_t V = std::max(D.Add, D.Max);
    if (!V)
      continue;
    std::string Desc;
    for (const stats::StatValue &R : Registry)
      if (R.Name == D.Name) {
        Desc = R.Desc;
        break;
      }
    Values.push_back({D.Name, Desc, V});
  }
  size_t ValueWidth = 0, NameWidth = 0;
  for (const stats::StatValue &V : Values) {
    ValueWidth = std::max(ValueWidth, std::to_string(V.Value).size());
    NameWidth = std::max(NameWidth, V.Name.size());
  }
  std::string Out;
  Out += "===-------------------------------------------------------------===\n";
  Out += "                        ... Statistics ...\n";
  Out += "===-------------------------------------------------------------===\n";
  for (const stats::StatValue &V : Values) {
    std::string Num = std::to_string(V.Value);
    Out += std::string(ValueWidth - Num.size(), ' ') + Num + " " + V.Name +
           std::string(NameWidth - V.Name.size(), ' ') + " - " + V.Desc + "\n";
  }
  return Out;
}

void fail(Message &Resp, std::string Error) {
  Resp.Fields.clear();
  Resp.set("ok", "0");
  Resp.set("error", std::move(Error));
}

} // namespace

Server::Server(ServerOptions O) : Opts(std::move(O)), Cache(Opts.CacheMaxBytes) {}

Message Server::handle(const Message &Req) {
  auto Start = std::chrono::steady_clock::now();
  Message Resp;
  stats::LocalTally T;
  {
    // Isolation: this request's counters land in T, invisible to
    // concurrent requests; phase timing is thread-local and reset below
    // when requested.
    stats::TallyScope Scope(T);
    handleDispatch(Req, Resp, T);
    ++ServiceRequests;
    ServiceRequestMicros += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
  }
  // Fold into the daemon-wide aggregates cmd=stats reports.
  T.apply();
  Requests.fetch_add(1);
  return Resp;
}

void Server::handleDispatch(const Message &Req, Message &Resp,
                            const stats::LocalTally &T) {
  const std::string Cmd = Req.getOr("cmd");
  if (Cmd == "ping") {
    Resp.set("ok", "1");
    return;
  }
  if (Cmd == "stats") {
    handleStats(Resp);
    return;
  }
  if (Cmd == "shutdown") {
    Resp.set("ok", "1");
    return;
  }
  if (Cmd == "compile") {
    handleCompile(Req, Resp, T);
    return;
  }
  fail(Resp, "unknown cmd '" + Cmd + "'");
}

void Server::handleStats(Message &Resp) {
  Resp.set("ok", "1");
  Resp.set("stats", stats::reportStatsJson());
  Resp.set("cache-entries", std::to_string(Cache.entries()));
  Resp.set("cache-bytes", std::to_string(Cache.bytes()));
  Resp.set("cache-max-bytes", std::to_string(Cache.maxBytes()));
  Resp.set("cache-hits", std::to_string(Cache.hits()));
  Resp.set("cache-misses", std::to_string(Cache.misses()));
  Resp.set("cache-evictions", std::to_string(Cache.evictions()));
  Resp.set("requests", std::to_string(Requests.load()));
}

void Server::handleCompile(const Message &Req, Message &Resp,
                           const stats::LocalTally &T) {
  const std::string *Source = Req.get("source");
  if (!Source) {
    fail(Resp, "compile request without a source field");
    return;
  }

  driver::CompilerOptions Opts;
  for (const std::string &Tok : splitTokens(Req.getOr("options")))
    if (!driver::applyCompilerFlag(Tok, Opts)) {
      fail(Resp, "unknown compiler option '" + Tok + "'");
      return;
    }
  uint64_t Jobs = 0;
  if (Req.has("jobs")) {
    if (!parseU64(*Req.get("jobs"), Jobs) || !Jobs) {
      fail(Resp, "bad jobs value");
      return;
    }
    Opts.Jobs = static_cast<unsigned>(Jobs);
  }

  const bool WantTiming = Req.flag("timing");
  const bool PrevTiming = stats::timingEnabled();
  if (WantTiming) {
    stats::setTimingEnabled(true);
    stats::resetPhaseTimes();
  }

  ir::Module M;
  stats::RemarkStream Remarks;
  const bool WantRemarks = Req.flag("remarks") || Req.flag("transcript");
  driver::FunctionMemo *Memo =
      Req.getOr("cache", "1") == "0" ? nullptr : &Cache;
  driver::CompileOutcome Out = driver::compileSource(
      M, *Source, Opts, WantRemarks ? &Remarks : nullptr, Memo);

  Resp.set("memo-hits", std::to_string(Out.MemoHits));
  Resp.set("memo-misses", std::to_string(Out.MemoMisses));
  if (!Out.Ok) {
    Resp.set("ok", "0");
    Resp.set("error", Out.Error);
    if (WantTiming)
      stats::setTimingEnabled(PrevTiming);
    return;
  }
  Resp.set("ok", "1");

  if (Req.flag("listing"))
    Resp.set("listing", driver::listing(Out.Program));
  if (Req.flag("transcript"))
    Resp.set("transcript", Remarks.str());
  if (Req.flag("remarks"))
    Resp.set("remarks", Remarks.json());

  const std::string StatsMode = Req.getOr("stats");
  const std::string Entry = Req.getOr("entry");
  if (!Entry.empty()) {
    uint64_t Fuel = 0;
    const bool HasFuel = Req.has("fuel") && parseU64(*Req.get("fuel"), Fuel);
    if (Req.getOr("run", "vm") == "interp") {
      if (!M.lookup(Entry)) {
        Resp.set("run-error",
                 "entry function '" + Entry + "' is not defined");
      } else {
        interp::Interpreter I(M);
        if (HasFuel)
          I.setFuel(Fuel);
        auto R = I.call(Entry, {});
        if (!I.output().empty())
          Resp.set("output", I.output());
        if (R.Ok)
          Resp.set("value", R.Value.str());
        else
          Resp.set("run-error", R.Error);
      }
    } else {
      // "--engine=NAME" in the options field sets the default engine for
      // this request (it was validated by applyCompilerFlag above); the
      // dedicated "engine" key still wins when both are present.
      vm::Engine Engine = vm::Engine::Threaded;
      if (!Opts.Engine.empty())
        Engine = *vm::engineByName(Opts.Engine);
      if (Req.has("engine")) {
        auto E = vm::engineByName(*Req.get("engine"));
        if (!E) {
          fail(Resp, "unknown engine '" + *Req.get("engine") + "'");
          if (WantTiming)
            stats::setTimingEnabled(PrevTiming);
          return;
        }
        Engine = *E;
      }
      if (Out.Program.indexOf(Entry) < 0) {
        Resp.set("run-error",
                 "entry function '" + Entry + "' is not defined");
      } else {
        vm::Machine VM(Out.Program, M.Syms, M.DataHeap);
        VM.setEngine(Engine);
        if (HasFuel)
          VM.setFuel(Fuel);
        else if (this->Opts.VmFuel)
          VM.setFuel(this->Opts.VmFuel);
        auto R = VM.call(Entry, {});
        if (!StatsMode.empty())
          VM.publishStats();
        if (!VM.output().empty())
          Resp.set("output", VM.output());
        if (!R.Ok)
          Resp.set("run-error", R.Error);
        else
          Resp.set("value", R.Result ? sexpr::toString(*R.Result)
                                     : "#<unprintable>");
      }
    }
  }

  // Every response field is a string by now, so nothing outside the
  // module references its literal heap: collect it before serializing.
  // Run garbage (values decoded out of the simulator) dies here; the
  // CompileCache is unaffected — it memoizes content-addressed compiled
  // units, not module heap data.
  M.collectGarbage();

  if (!StatsMode.empty()) {
    std::vector<stats::TallyDelta> Deltas = compilerDeltas(T);
    Resp.set("stats", StatsMode == "json" ? stats::tallyDeltasJson(Deltas)
                                          : renderStatsText(Deltas));
  }
  if (WantTiming) {
    Resp.set("timing", stats::reportPhaseTimes());
    stats::setTimingEnabled(PrevTiming);
  }
}

//===----------------------------------------------------------------------===//
// Transports
//===----------------------------------------------------------------------===//

void Server::serveConnection(int Fd) {
  Message Req;
  while (!Stopping.load()) {
    ReadStatus St = readFrame(Fd, Req);
    if (St != ReadStatus::Ok)
      break;
    Message Resp = handle(Req);
    if (!writeFrame(Fd, Resp))
      break;
    if (Req.getOr("cmd") == "shutdown") {
      requestStop();
      break;
    }
  }
  ::close(Fd);
}

bool Server::serveUnixSocket(std::string *Err) {
  if (Opts.SocketPath.empty()) {
    if (Err)
      *Err = "no socket path configured";
    return false;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long";
    return false;
  }
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Err)
      *Err = "socket() failed";
    return false;
  }
  ::unlink(Opts.SocketPath.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 64) < 0) {
    if (Err)
      *Err = "cannot bind '" + Opts.SocketPath + "': " + std::strerror(errno);
    ::close(Fd);
    return false;
  }
  ListenFd = Fd;
  Stopping.store(false);

  unsigned Workers = Opts.Workers;
  if (!Workers)
    Workers = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::thread> Pool;
  Pool.reserve(Workers);
  for (unsigned W = 0; W < Workers; ++W)
    Pool.emplace_back([this] {
      while (!Stopping.load()) {
        int Conn = ::accept(ListenFd, nullptr, nullptr);
        if (Conn < 0) {
          if (errno == EINTR)
            continue;
          break; // requestStop() shut the listening socket down
        }
        serveConnection(Conn);
      }
    });
  for (std::thread &Th : Pool)
    Th.join();
  ::close(Fd);
  ListenFd = -1;
  ::unlink(Opts.SocketPath.c_str());
  return true;
}

int Server::serveStdio() {
  Message Req;
  while (!Stopping.load()) {
    std::string Err;
    ReadStatus St = readFrame(0, Req, &Err);
    if (St == ReadStatus::Eof)
      break;
    if (St == ReadStatus::Error) {
      fprintf(stderr, "s1lispd: %s\n", Err.c_str());
      return 1;
    }
    Message Resp = handle(Req);
    if (!writeFrame(1, Resp, &Err)) {
      fprintf(stderr, "s1lispd: %s\n", Err.c_str());
      return 1;
    }
    if (Req.getOr("cmd") == "shutdown")
      break;
  }
  return 0;
}

void Server::requestStop() {
  Stopping.store(true);
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
}
