//===- interp/Interp.cpp --------------------------------------------------===//

#include "interp/Interp.h"

#include "sexpr/Numbers.h"
#include "sexpr/Printer.h"
#include "stats/Stats.h"

#include <cmath>

using namespace s1lisp;
using namespace s1lisp::interp;
using namespace s1lisp::ir;
using sexpr::Value;

S1_STAT(NumGcCollections, "gc.collections", "runtime-heap collections");
S1_STAT(NumGcMajor, "gc.major", "tenured mark-sweep passes");
S1_STAT(NumGcCellsPromoted, "gc.cells.promoted", "cells copied out of a nursery");
S1_STAT(NumGcCellsSwept, "gc.cells.swept", "tenured cells reclaimed");
S1_STAT(NumGcPauseNs, "gc.pause.ns", "total collection pause nanoseconds");

std::string RtValue::str() const {
  switch (K) {
  case Kind::Data:
    return sexpr::toString(Data);
  case Kind::Closure:
    return "#<function>";
  case Kind::Builtin:
    return std::string("#<builtin ") + Prim->Name + ">";
  case Kind::Array:
    return "#<float-array>";
  }
  return "?";
}

bool interp::rtEql(RtValue A, RtValue B) {
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case RtValue::Kind::Data:
    return sexpr::eql(A.dataValue(), B.dataValue());
  case RtValue::Kind::Closure:
    return A.closureValue() == B.closureValue();
  case RtValue::Kind::Builtin:
    return A.builtinValue() == B.builtinValue();
  case RtValue::Kind::Array:
    return A.arrayValue() == B.arrayValue();
  }
  return false;
}

bool interp::rtEqual(RtValue A, RtValue B) {
  if (A.kind() == RtValue::Kind::Data && B.kind() == RtValue::Kind::Data)
    return sexpr::equal(A.dataValue(), B.dataValue());
  return rtEql(A, B);
}

namespace {

/// Evaluation outcome: a value, an error, or an in-flight control transfer.
struct Outcome {
  enum class St : uint8_t { Ok, Error, Throw, Go, Return, TailCall };
  St Status = St::Ok;
  RtValue Val;      ///< Ok value / Throw payload / Return payload.
  RtValue ThrowTag; ///< Throw only.
  std::string Error;
  const GoNode *GoSrc = nullptr;
  const ReturnNode *RetSrc = nullptr;
  RtValue Callee; ///< TailCall only.
  std::vector<RtValue> Args;

  static Outcome ok(RtValue V) {
    Outcome O;
    O.Val = V;
    return O;
  }
  static Outcome error(std::string Msg) {
    Outcome O;
    O.Status = St::Error;
    O.Error = std::move(Msg);
    return O;
  }
  bool isOk() const { return Status == St::Ok; }
};

} // namespace

namespace s1lisp {
namespace interp {

/// The recursive evaluator; friend of Interpreter.
struct Evaluator {
  Interpreter &I;
  uint64_t ApplyDepth = 0;

  explicit Evaluator(Interpreter &I) : I(I) {}

  sexpr::Heap &heap() { return I.RtHeap; }
  InterpStats &stats() { return I.Stats; }

  //===--------------------------------------------------------------------===//
  // Transient GC roots
  //
  // Only cons() can trigger a collection, and it roots its own arguments;
  // these RAII guards cover every C++ local that holds a heap value
  // *across* a possible cons — argument vectors being filled, callee
  // values held over argument evaluation, list cursors in primitives.
  //===--------------------------------------------------------------------===//

  struct RtVecRoot {
    Interpreter &I;
    RtVecRoot(Interpreter &I, std::vector<RtValue> *V) : I(I) {
      I.Roots.RtVecs.push_back(V);
    }
    ~RtVecRoot() { I.Roots.RtVecs.pop_back(); }
    RtVecRoot(const RtVecRoot &) = delete;
    RtVecRoot &operator=(const RtVecRoot &) = delete;
  };
  struct RtValRoot {
    Interpreter &I;
    RtValRoot(Interpreter &I, RtValue *V) : I(I) {
      I.Roots.RtVals.push_back(V);
    }
    ~RtValRoot() { I.Roots.RtVals.pop_back(); }
    RtValRoot(const RtValRoot &) = delete;
    RtValRoot &operator=(const RtValRoot &) = delete;
  };
  struct ValRoot {
    Interpreter &I;
    ValRoot(Interpreter &I, sexpr::Value *V) : I(I) {
      I.Roots.Vals.push_back(V);
    }
    ~ValRoot() { I.Roots.Vals.pop_back(); }
    ValRoot(const ValRoot &) = delete;
    ValRoot &operator=(const ValRoot &) = delete;
  };
  struct ValVecRoot {
    Interpreter &I;
    ValVecRoot(Interpreter &I, std::vector<sexpr::Value> *V) : I(I) {
      I.Roots.ValVecs.push_back(V);
    }
    ~ValVecRoot() { I.Roots.ValVecs.pop_back(); }
    ValVecRoot(const ValVecRoot &) = delete;
    ValVecRoot &operator=(const ValVecRoot &) = delete;
  };

  /// The memoized no-environment closure for a global function. One per
  /// function per interpreter: repeated calls reuse it, so the closure
  /// table stays O(functions) no matter how long a GC-stressed run gets.
  Closure *globalClosure(Function *F) {
    auto [It, New] = I.GlobalClosures.try_emplace(F, nullptr);
    if (New) {
      I.Closures.push_back({F->Root, nullptr});
      It->second = &I.Closures.back();
    }
    return It->second;
  }

  //===--------------------------------------------------------------------===//
  // Environment access
  //===--------------------------------------------------------------------===//

  RtValue *lookupLexical(const EnvPtr &Env, Variable *V) {
    for (EnvFrame *F = Env.get(); F; F = F->Parent.get())
      for (auto &Slot : F->Slots)
        if (Slot.first == V)
          return &Slot.second;
    return nullptr;
  }

  RtValue *lookupSpecial(const sexpr::Symbol *Name) {
    ++stats().SpecialSearches;
    for (size_t J = I.SpecialStack.size(); J > 0; --J) {
      ++stats().SpecialSearchSteps;
      if (I.SpecialStack[J - 1].first == Name)
        return &I.SpecialStack[J - 1].second;
    }
    for (auto &G : I.SpecialGlobals)
      if (G.first == Name)
        return &G.second;
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Application
  //===--------------------------------------------------------------------===//

  Outcome apply(RtValue Callee, std::vector<RtValue> Args) {
    ++ApplyDepth;
    stats().MaxApplyDepth = std::max(stats().MaxApplyDepth, ApplyDepth);

    // Args stays rooted for the whole trampoline: optional-default
    // evaluation, &rest consing, and the body may all collect. A tail
    // call move-assigns into this same vector, so the root stays valid
    // across transfers.
    RtVecRoot ArgsRoot(I, &Args);

    Outcome Result = Outcome::ok(RtValue());
    // Trampoline: a tail call replaces Callee/Args and loops, giving the
    // dialect's "parameter-passing goto" semantics without stack growth.
    while (true) {
      ++stats().Applies;
      if (stats().Steps > I.Fuel) {
        Result = Outcome::error("evaluation fuel exhausted");
        break;
      }
      if (Callee.kind() == RtValue::Kind::Builtin) {
        Result = applyPrim(Callee.builtinValue()->Op, Args);
        break;
      }
      if (Callee.kind() != RtValue::Kind::Closure) {
        Result = Outcome::error("attempt to call a non-function: " + Callee.str());
        break;
      }

      Closure *C = Callee.closureValue();
      const LambdaNode *L = C->Lambda;
      if (!L->acceptsArgCount(Args.size())) {
        Result = Outcome::error("wrong number of arguments (" +
                                std::to_string(Args.size()) + ")");
        break;
      }

      EnvPtr Frame = I.makeFrame(C->Env);
      size_t SpecialMark = I.SpecialStack.size();
      bool BoundSpecials = false;

      auto bindParam = [&](Variable *V, RtValue Arg) {
        if (V->isSpecial()) {
          I.SpecialStack.push_back({V->name(), Arg});
          BoundSpecials = true;
        } else {
          Frame->Slots.push_back({V, Arg});
        }
      };

      size_t Idx = 0;
      for (Variable *P : L->Required)
        bindParam(P, Args[Idx++]);
      Outcome DefaultErr;
      bool HadDefaultErr = false;
      for (const auto &O : L->Optionals) {
        if (Idx < Args.size()) {
          bindParam(O.Var, Args[Idx++]);
          continue;
        }
        // Default computations may be arbitrary code over earlier params.
        Outcome D = eval(O.Default, Frame, /*Tail=*/false);
        if (!D.isOk()) {
          DefaultErr = D;
          HadDefaultErr = true;
          break;
        }
        bindParam(O.Var, D.Val);
      }
      if (HadDefaultErr) {
        I.SpecialStack.resize(SpecialMark);
        Result = DefaultErr;
        break;
      }
      if (L->Rest) {
        Value RestList = Value::nil();
        bool RestError = false;
        for (size_t J = Args.size(); J > Idx; --J) {
          if (!Args[J - 1].isData()) {
            RestError = true;
            break;
          }
          RestList = heap().cons(Args[J - 1].dataValue(), RestList);
          ++stats().ConsAllocs;
        }
        if (RestError) {
          I.SpecialStack.resize(SpecialMark);
          Result = Outcome::error("cannot place a function object in a &rest list");
          break;
        }
        bindParam(L->Rest, RtValue::data(RestList));
      }

      // Tail calls are only safe to trampoline when this frame pushed no
      // dynamic bindings (they must stay live until the callee returns).
      Outcome BodyOut = eval(L->Body, Frame, /*Tail=*/!BoundSpecials);
      I.SpecialStack.resize(SpecialMark);

      if (BodyOut.Status == Outcome::St::TailCall) {
        Callee = BodyOut.Callee;
        Args = std::move(BodyOut.Args);
        ++stats().TailTransfers;
        continue;
      }
      Result = BodyOut;
      break;
    }
    --ApplyDepth;
    return Result;
  }

  //===--------------------------------------------------------------------===//
  // Core dispatch
  //===--------------------------------------------------------------------===//

  Outcome eval(const Node *N, const EnvPtr &Env, bool Tail) {
    if (++stats().Steps > I.Fuel)
      return Outcome::error("evaluation fuel exhausted");

    switch (N->kind()) {
    case NodeKind::Literal:
      return Outcome::ok(RtValue::data(cast<LiteralNode>(N)->Datum));

    case NodeKind::VarRef: {
      Variable *V = cast<VarRefNode>(N)->Var;
      if (V->isSpecial()) {
        if (RtValue *Cell = lookupSpecial(V->name()))
          return Outcome::ok(*Cell);
        return Outcome::error("unbound special variable '" + V->name()->name() + "'");
      }
      if (RtValue *Cell = lookupLexical(Env, V))
        return Outcome::ok(*Cell);
      return Outcome::error("unbound lexical variable '" + V->debugName() + "'");
    }

    case NodeKind::Setq: {
      const auto *S = cast<SetqNode>(N);
      Outcome Val = eval(S->ValueExpr, Env, false);
      if (!Val.isOk())
        return Val;
      Variable *V = S->Var;
      if (V->isSpecial()) {
        if (RtValue *Cell = lookupSpecial(V->name())) {
          *Cell = Val.Val;
          return Val;
        }
        // setq of an unbound special creates the global binding.
        I.SpecialGlobals.push_back({V->name(), Val.Val});
        return Val;
      }
      if (RtValue *Cell = lookupLexical(Env, V)) {
        *Cell = Val.Val;
        return Val;
      }
      return Outcome::error("setq of unbound variable '" + V->debugName() + "'");
    }

    case NodeKind::If: {
      const auto *If = cast<IfNode>(N);
      Outcome T = eval(If->Test, Env, false);
      if (!T.isOk())
        return T;
      return eval(T.Val.isTrue() ? If->Then : If->Else, Env, Tail);
    }

    case NodeKind::Progn: {
      const auto *P = cast<PrognNode>(N);
      if (P->Forms.empty())
        return Outcome::ok(RtValue::data(Value::nil()));
      for (size_t J = 0; J + 1 < P->Forms.size(); ++J) {
        Outcome O = eval(P->Forms[J], Env, false);
        if (!O.isOk())
          return O;
      }
      return eval(P->Forms.back(), Env, Tail);
    }

    case NodeKind::Lambda: {
      I.Closures.push_back({cast<LambdaNode>(N), Env});
      return Outcome::ok(RtValue::closure(&I.Closures.back()));
    }

    case NodeKind::Call:
      return evalCall(cast<CallNode>(N), Env, Tail);

    case NodeKind::Caseq: {
      const auto *C = cast<CaseqNode>(N);
      Outcome K = eval(C->Key, Env, false);
      if (!K.isOk())
        return K;
      for (const auto &Clause : C->Clauses)
        for (Value Key : Clause.Keys)
          if (K.Val.isData() && sexpr::eql(K.Val.dataValue(), Key))
            return eval(Clause.Body, Env, Tail);
      return eval(C->Default, Env, Tail);
    }

    case NodeKind::Catcher: {
      const auto *C = cast<CatcherNode>(N);
      Outcome Tag = eval(C->TagExpr, Env, false);
      if (!Tag.isOk())
        return Tag;
      // The tag is compared by identity after the body runs; the body may
      // collect.
      RtValRoot TagRoot(I, &Tag.Val);
      Outcome Body = eval(C->Body, Env, /*Tail=*/false);
      if (Body.Status == Outcome::St::Throw && rtEql(Body.ThrowTag, Tag.Val))
        return Outcome::ok(Body.Val);
      return Body;
    }

    case NodeKind::ProgBody: {
      const auto *P = cast<ProgBodyNode>(N);
      size_t Idx = 0;
      while (Idx < P->Items.size()) {
        const auto &Item = P->Items[Idx];
        if (!Item.Stmt) {
          ++Idx;
          continue;
        }
        Outcome O = eval(Item.Stmt, Env, false);
        if (O.Status == Outcome::St::Go && O.GoSrc->Target == P) {
          bool Found = false;
          for (size_t J = 0; J < P->Items.size(); ++J)
            if (P->Items[J].Tag == O.GoSrc->Tag) {
              Idx = J + 1;
              Found = true;
              break;
            }
          if (!Found)
            return Outcome::error("go to missing tag");
          continue;
        }
        if (O.Status == Outcome::St::Return && O.RetSrc->Target == P)
          return Outcome::ok(O.Val);
        if (!O.isOk())
          return O;
        ++Idx;
      }
      return Outcome::ok(RtValue::data(Value::nil())); // fell off the end
    }

    case NodeKind::Go: {
      Outcome O;
      O.Status = Outcome::St::Go;
      O.GoSrc = cast<GoNode>(N);
      return O;
    }

    case NodeKind::Return: {
      const auto *R = cast<ReturnNode>(N);
      Outcome V = eval(R->ValueExpr, Env, false);
      if (!V.isOk())
        return V;
      V.Status = Outcome::St::Return;
      V.RetSrc = R;
      return V;
    }
    }
    return Outcome::error("unhandled node kind");
  }

  //===--------------------------------------------------------------------===//
  // Calls
  //===--------------------------------------------------------------------===//

  Outcome evalArgs(const std::vector<Node *> &ArgNodes, const EnvPtr &Env,
                   std::vector<RtValue> &Out) {
    // Rooted by vector pointer, so growth/reallocation is safe.
    RtVecRoot OutRoot(I, &Out);
    Out.reserve(ArgNodes.size());
    for (const Node *A : ArgNodes) {
      Outcome O = eval(A, Env, false);
      if (!O.isOk())
        return O;
      Out.push_back(O.Val);
    }
    return Outcome::ok(RtValue());
  }

  Outcome dispatch(RtValue Callee, std::vector<RtValue> Args, bool Tail) {
    if (Tail && Callee.kind() == RtValue::Kind::Closure) {
      Outcome O;
      O.Status = Outcome::St::TailCall;
      O.Callee = Callee;
      O.Args = std::move(Args);
      return O;
    }
    return apply(Callee, std::move(Args));
  }

  Outcome evalCall(const CallNode *C, const EnvPtr &Env, bool Tail) {
    // Callee-expression calls: ((lambda ...) args) and funcall-ed vars.
    if (C->CalleeExpr) {
      Outcome Callee = eval(C->CalleeExpr, Env, false);
      if (!Callee.isOk())
        return Callee;
      RtValRoot CalleeRoot(I, &Callee.Val);
      std::vector<RtValue> Args;
      Outcome AO = evalArgs(C->Args, Env, Args);
      if (!AO.isOk())
        return AO;
      return dispatch(Callee.Val, std::move(Args), Tail);
    }

    const sexpr::Symbol *Name = C->Name;
    const PrimInfo *P = lookupPrim(Name);

    // funcall / apply get first-class treatment for tail calls.
    if (P && (P->Op == Prim::Funcall || P->Op == Prim::Apply)) {
      std::vector<RtValue> Args;
      Outcome AO = evalArgs(C->Args, Env, Args);
      if (!AO.isOk())
        return AO;
      if (Args.empty())
        return Outcome::error("funcall/apply with no function");
      RtValue Callee = Args.front();
      std::vector<RtValue> CallArgs(Args.begin() + 1, Args.end());
      if (P->Op == Prim::Apply) {
        if (CallArgs.empty() || !CallArgs.back().isData() ||
            !sexpr::isProperList(CallArgs.back().dataValue()))
          return Outcome::error("apply needs a trailing argument list");
        Value Spread = CallArgs.back().dataValue();
        CallArgs.pop_back();
        for (Value Cur = Spread; Cur.isCons(); Cur = Cur.cdr())
          CallArgs.push_back(RtValue::data(Cur.car()));
      }
      return dispatch(Callee, std::move(CallArgs), Tail);
    }

    // (function f): resolve a function name to a function object.
    if (P && P->Op == Prim::FunctionRef) {
      assert(C->Args.size() == 1);
      const auto *Lit = dyn_cast<LiteralNode>(C->Args[0]);
      if (!Lit || !Lit->Datum.isSymbol())
        return Outcome::error("function needs a literal function name");
      return resolveFunction(Lit->Datum.symbol());
    }

    std::vector<RtValue> Args;
    Outcome AO = evalArgs(C->Args, Env, Args);
    if (!AO.isOk())
      return AO;

    if (P)
      return applyPrim(P->Op, Args);

    // User-defined global function.
    if (Function *F = I.M.lookup(Name->name()))
      return dispatch(RtValue::closure(globalClosure(F)), std::move(Args), Tail);
    return Outcome::error("undefined function '" + Name->name() + "'");
  }

  Outcome resolveFunction(const sexpr::Symbol *Name) {
    if (Function *F = I.M.lookup(Name->name()))
      return Outcome::ok(RtValue::closure(globalClosure(F)));
    if (const PrimInfo *P = lookupPrim(Name))
      return Outcome::ok(RtValue::builtin(P));
    return Outcome::error("undefined function '" + Name->name() + "'");
  }

  //===--------------------------------------------------------------------===//
  // Primitives
  //===--------------------------------------------------------------------===//

  static bool allData(const std::vector<RtValue> &Args) {
    for (const RtValue &A : Args)
      if (!A.isData())
        return false;
    return true;
  }

  Outcome wrongType(const char *Op) {
    return Outcome::error(std::string("wrong type of argument to '") + Op + "'");
  }

  /// Generic n-ary arithmetic reduction, CL style.
  Outcome reduceArith(sexpr::ArithOp Op, const std::vector<RtValue> &Args,
                      Value Unit, bool UnitIsInverse, const char *Name) {
    if (!allData(Args))
      return wrongType(Name);
    if (Args.empty())
      return Outcome::ok(RtValue::data(Unit));
    Value Acc = Args[0].dataValue();
    if (Args.size() == 1 && UnitIsInverse) {
      auto R = sexpr::arith(heap(), Op, Unit, Acc);
      if (!R)
        return wrongType(Name);
      return Outcome::ok(RtValue::data(*R));
    }
    for (size_t J = 1; J < Args.size(); ++J) {
      auto R = sexpr::arith(heap(), Op, Acc, Args[J].dataValue());
      if (!R)
        return wrongType(Name);
      Acc = *R;
    }
    return Outcome::ok(RtValue::data(Acc));
  }

  Outcome chainCompare(sexpr::CompareOp Op, const std::vector<RtValue> &Args,
                       const char *Name) {
    if (!allData(Args))
      return wrongType(Name);
    for (size_t J = 0; J + 1 < Args.size(); ++J) {
      auto R = sexpr::compare(Op, Args[J].dataValue(), Args[J + 1].dataValue());
      if (!R)
        return wrongType(Name);
      if (!*R)
        return Outcome::ok(RtValue::data(Value::nil()));
    }
    return okBool(true);
  }

  Outcome okBool(bool B) {
    return Outcome::ok(RtValue::data(B ? Value::symbol(I.M.Syms.t()) : Value::nil()));
  }

  Outcome okFlo(double D) { return Outcome::ok(RtValue::data(Value::flonum(D))); }

  /// Coerces a data number to double for the $f operators (the run-time
  /// type check + dereference of §6.2).
  bool toF(const RtValue &A, double &Out) {
    if (!A.isData())
      return false;
    auto D = sexpr::toDouble(A.dataValue());
    if (!D)
      return false;
    Out = *D;
    return true;
  }

  Outcome foldF(const std::vector<RtValue> &Args, const char *Name,
                double (*Step)(double, double), bool InverseWhenUnary,
                double Unit) {
    std::vector<double> Xs(Args.size());
    for (size_t J = 0; J < Args.size(); ++J)
      if (!toF(Args[J], Xs[J]))
        return wrongType(Name);
    if (Xs.size() == 1)
      return okFlo(InverseWhenUnary ? Step(Unit, Xs[0]) : Xs[0]);
    double Acc = Xs[0];
    for (size_t J = 1; J < Xs.size(); ++J)
      Acc = Step(Acc, Xs[J]);
    return okFlo(Acc);
  }

  Outcome cmpF(const std::vector<RtValue> &Args, const char *Name,
               bool (*Pred)(double, double)) {
    double A, B;
    if (Args.size() != 2 || !toF(Args[0], A) || !toF(Args[1], B))
      return wrongType(Name);
    return okBool(Pred(A, B));
  }

  Outcome applyPrim(Prim Op, std::vector<RtValue> &Args);
};

} // namespace interp
} // namespace s1lisp

Outcome Evaluator::applyPrim(Prim Op, std::vector<RtValue> &Args) {
  using sexpr::ArithOp;
  using sexpr::CompareOp;
  sexpr::Heap &H = heap();
  // Arguments survive any collection a consing primitive triggers.
  RtVecRoot ArgsRoot(I, &Args);

  auto dataArg = [&](size_t J) { return Args[J].dataValue(); };

  switch (Op) {
  // --- generic arithmetic ---
  case Prim::Add:
    return reduceArith(ArithOp::Add, Args, Value::fixnum(0), false, "+");
  case Prim::Sub:
    return reduceArith(ArithOp::Sub, Args, Value::fixnum(0), true, "-");
  case Prim::Mul:
    return reduceArith(ArithOp::Mul, Args, Value::fixnum(1), false, "*");
  case Prim::Div:
    return reduceArith(ArithOp::Div, Args, Value::fixnum(1), true, "/");
  case Prim::Add1: {
    if (!allData(Args))
      return wrongType("1+");
    auto R = sexpr::add1(H, dataArg(0));
    return R ? Outcome::ok(RtValue::data(*R)) : wrongType("1+");
  }
  case Prim::Sub1: {
    if (!allData(Args))
      return wrongType("1-");
    auto R = sexpr::sub1(H, dataArg(0));
    return R ? Outcome::ok(RtValue::data(*R)) : wrongType("1-");
  }
  case Prim::Neg: {
    if (!allData(Args))
      return wrongType("neg");
    auto R = sexpr::negate(H, dataArg(0));
    return R ? Outcome::ok(RtValue::data(*R)) : wrongType("neg");
  }
  case Prim::Abs: {
    if (!allData(Args))
      return wrongType("abs");
    auto R = sexpr::numAbs(H, dataArg(0));
    return R ? Outcome::ok(RtValue::data(*R)) : wrongType("abs");
  }
  case Prim::Max:
    return reduceArith(ArithOp::Max, Args, Value::fixnum(0), false, "max");
  case Prim::Min:
    return reduceArith(ArithOp::Min, Args, Value::fixnum(0), false, "min");
  case Prim::Floor:
  case Prim::Ceiling:
  case Prim::Truncate:
  case Prim::Round:
  case Prim::Mod:
  case Prim::Rem:
  case Prim::Expt: {
    static const std::pair<Prim, ArithOp> Map[] = {
        {Prim::Floor, ArithOp::Floor},       {Prim::Ceiling, ArithOp::Ceiling},
        {Prim::Truncate, ArithOp::Truncate}, {Prim::Round, ArithOp::Round},
        {Prim::Mod, ArithOp::Mod},           {Prim::Rem, ArithOp::Rem},
        {Prim::Expt, ArithOp::Expt}};
    ArithOp AOp = ArithOp::Floor;
    for (auto [P, A] : Map)
      if (P == Op)
        AOp = A;
    if (!allData(Args))
      return wrongType("integer-division");
    auto R = sexpr::arith(H, AOp, dataArg(0), dataArg(1));
    return R ? Outcome::ok(RtValue::data(*R)) : wrongType("integer-division");
  }
  case Prim::Sqrt: {
    double X;
    if (!toF(Args[0], X) || X < 0)
      return wrongType("sqrt");
    return okFlo(std::sqrt(X));
  }
  case Prim::ToFloat: {
    double X;
    if (!toF(Args[0], X))
      return wrongType("float");
    return okFlo(X);
  }

  // --- generic comparisons ---
  case Prim::NumEq:
    return chainCompare(CompareOp::Eq, Args, "=");
  case Prim::NumNe:
    return chainCompare(CompareOp::Ne, Args, "/=");
  case Prim::Lt:
    return chainCompare(CompareOp::Lt, Args, "<");
  case Prim::Gt:
    return chainCompare(CompareOp::Gt, Args, ">");
  case Prim::Le:
    return chainCompare(CompareOp::Le, Args, "<=");
  case Prim::Ge:
    return chainCompare(CompareOp::Ge, Args, ">=");
  case Prim::Zerop:
  case Prim::Oddp:
  case Prim::Evenp:
  case Prim::Plusp:
  case Prim::Minusp: {
    if (!allData(Args))
      return wrongType("numeric predicate");
    std::optional<bool> R;
    switch (Op) {
    case Prim::Zerop:
      R = sexpr::isZero(dataArg(0));
      break;
    case Prim::Oddp:
      R = sexpr::isOdd(dataArg(0));
      break;
    case Prim::Evenp:
      R = sexpr::isEven(dataArg(0));
      break;
    case Prim::Plusp:
      R = sexpr::isPlus(dataArg(0));
      break;
    default:
      R = sexpr::isMinus(dataArg(0));
      break;
    }
    return R ? okBool(*R) : wrongType("numeric predicate");
  }

  // --- $f float world ---
  case Prim::FAdd:
    return foldF(Args, "+$f", [](double A, double B) { return A + B; }, false, 0);
  case Prim::FSub:
    return foldF(Args, "-$f", [](double A, double B) { return A - B; }, true, 0);
  case Prim::FMul:
    return foldF(Args, "*$f", [](double A, double B) { return A * B; }, false, 0);
  case Prim::FDiv:
    return foldF(Args, "/$f", [](double A, double B) { return A / B; }, true, 1);
  case Prim::FMax:
    return foldF(Args, "max$f", [](double A, double B) { return std::max(A, B); },
                 false, 0);
  case Prim::FMin:
    return foldF(Args, "min$f", [](double A, double B) { return std::min(A, B); },
                 false, 0);
  case Prim::FNeg: {
    double X;
    if (!toF(Args[0], X))
      return wrongType("neg$f");
    return okFlo(-X);
  }
  case Prim::FAbs: {
    double X;
    if (!toF(Args[0], X))
      return wrongType("abs$f");
    return okFlo(std::fabs(X));
  }
  case Prim::FSqrt:
  case Prim::FSin:
  case Prim::FCos:
  case Prim::FExp:
  case Prim::FLog:
  case Prim::FSinc:
  case Prim::FCosc: {
    double X;
    if (!toF(Args[0], X))
      return wrongType("float unary");
    switch (Op) {
    case Prim::FSqrt:
      return okFlo(std::sqrt(X));
    case Prim::FSin:
      return okFlo(std::sin(X));
    case Prim::FCos:
      return okFlo(std::cos(X));
    case Prim::FExp:
      return okFlo(std::exp(X));
    case Prim::FLog:
      return okFlo(std::log(X));
    case Prim::FSinc: // sine of an argument in cycles (the S-1 SIN unit)
      return okFlo(std::sin(X * 2.0 * M_PI));
    default:
      return okFlo(std::cos(X * 2.0 * M_PI));
    }
  }
  case Prim::FAtan: {
    double Y, X;
    if (!toF(Args[0], Y) || !toF(Args[1], X))
      return wrongType("atan$f");
    return okFlo(std::atan2(Y, X));
  }
  case Prim::FLt:
    return cmpF(Args, "<$f", [](double A, double B) { return A < B; });
  case Prim::FGt:
    return cmpF(Args, ">$f", [](double A, double B) { return A > B; });
  case Prim::FLe:
    return cmpF(Args, "<=$f", [](double A, double B) { return A <= B; });
  case Prim::FGe:
    return cmpF(Args, ">=$f", [](double A, double B) { return A >= B; });
  case Prim::FEq:
    return cmpF(Args, "=$f", [](double A, double B) { return A == B; });

  // --- & fixnum world (wrapping 64-bit, like raw machine words) ---
  case Prim::XAdd:
  case Prim::XSub:
  case Prim::XMul:
  case Prim::XNeg:
  case Prim::XLt:
  case Prim::XGt:
  case Prim::XLe:
  case Prim::XGe:
  case Prim::XEq: {
    std::vector<int64_t> Xs(Args.size());
    for (size_t J = 0; J < Args.size(); ++J) {
      if (!Args[J].isData() || !Args[J].dataValue().isFixnum())
        return wrongType("fixnum operator");
      Xs[J] = Args[J].dataValue().fixnum();
    }
    auto Wrap = [](uint64_t X) { return Outcome::ok(RtValue::data(
                                     Value::fixnum(static_cast<int64_t>(X)))); };
    switch (Op) {
    case Prim::XNeg:
      return Wrap(-static_cast<uint64_t>(Xs[0]));
    case Prim::XLt:
      return okBool(Xs[0] < Xs[1]);
    case Prim::XGt:
      return okBool(Xs[0] > Xs[1]);
    case Prim::XLe:
      return okBool(Xs[0] <= Xs[1]);
    case Prim::XGe:
      return okBool(Xs[0] >= Xs[1]);
    case Prim::XEq:
      return okBool(Xs[0] == Xs[1]);
    default: {
      uint64_t Acc = static_cast<uint64_t>(Xs[0]);
      if (Xs.size() == 1 && Op == Prim::XSub)
        return Wrap(-Acc);
      for (size_t J = 1; J < Xs.size(); ++J) {
        uint64_t B = static_cast<uint64_t>(Xs[J]);
        Acc = Op == Prim::XAdd ? Acc + B : Op == Prim::XSub ? Acc - B : Acc * B;
      }
      return Wrap(Acc);
    }
    }
  }

  // --- predicates ---
  case Prim::Null:
  case Prim::Not:
    return okBool(!Args[0].isTrue());
  case Prim::Atom:
    return okBool(!Args[0].isData() || Args[0].dataValue().isAtom());
  case Prim::Consp:
    return okBool(Args[0].isData() && Args[0].dataValue().isCons());
  case Prim::Listp:
    return okBool(Args[0].isData() &&
                  (Args[0].dataValue().isCons() || Args[0].dataValue().isNil()));
  case Prim::Symbolp:
    return okBool(Args[0].isData() && Args[0].dataValue().isSymbol());
  case Prim::Numberp:
    return okBool(Args[0].isData() && Args[0].dataValue().isNumber());
  case Prim::Floatp:
    return okBool(Args[0].isData() && Args[0].dataValue().isFlonum());
  case Prim::Integerp:
    return okBool(Args[0].isData() && Args[0].dataValue().isFixnum());
  case Prim::Stringp:
    return okBool(Args[0].isData() && Args[0].dataValue().isString());
  case Prim::Eq:
    // eq is not guaranteed on numbers (§6.3); on data we approximate with
    // eql, which the paper notes is the dependable predicate.
    return okBool(rtEql(Args[0], Args[1]));
  case Prim::Eql:
    return okBool(rtEql(Args[0], Args[1]));
  case Prim::Equal:
    return okBool(rtEqual(Args[0], Args[1]));

  // --- lists ---
  case Prim::Cons: {
    if (!allData(Args))
      return Outcome::error("cannot place a function object in a cons");
    ++stats().ConsAllocs;
    return Outcome::ok(RtValue::data(H.cons(dataArg(0), dataArg(1))));
  }
  case Prim::Car:
  case Prim::Cdr:
  case Prim::Caar:
  case Prim::Cadr:
  case Prim::Cddr:
  case Prim::Cdar: {
    if (!Args[0].isData())
      return wrongType("car/cdr");
    Value V = dataArg(0);
    if (!V.isNil() && !V.isCons())
      return wrongType("car/cdr");
    switch (Op) {
    case Prim::Car:
      return Outcome::ok(RtValue::data(V.car()));
    case Prim::Cdr:
      return Outcome::ok(RtValue::data(V.cdr()));
    case Prim::Caar:
      return Outcome::ok(RtValue::data(V.car().car()));
    case Prim::Cadr:
      return Outcome::ok(RtValue::data(V.cdr().car()));
    case Prim::Cddr:
      return Outcome::ok(RtValue::data(V.cdr().cdr()));
    default:
      return Outcome::ok(RtValue::data(V.car().cdr()));
    }
  }
  case Prim::List: {
    if (!allData(Args))
      return Outcome::error("cannot place a function object in a list");
    Value L = Value::nil();
    for (size_t J = Args.size(); J > 0; --J) {
      L = H.cons(dataArg(J - 1), L);
      ++stats().ConsAllocs;
    }
    return Outcome::ok(RtValue::data(L));
  }
  case Prim::Append: {
    Value Result = Value::nil();
    if (Args.empty())
      return Outcome::ok(RtValue::data(Result));
    if (!allData(Args))
      return wrongType("append");
    Result = dataArg(Args.size() - 1);
    std::vector<Value> Items;
    ValVecRoot ItemsRoot(I, &Items);
    for (size_t J = Args.size() - 1; J > 0; --J) {
      Value Prefix = dataArg(J - 1);
      if (!sexpr::isProperList(Prefix))
        return wrongType("append");
      Items = sexpr::listToVector(Prefix);
      for (size_t K = Items.size(); K > 0; --K) {
        Result = H.cons(Items[K - 1], Result);
        ++stats().ConsAllocs;
      }
    }
    return Outcome::ok(RtValue::data(Result));
  }
  case Prim::Reverse: {
    if (!Args[0].isData() || !sexpr::isProperList(dataArg(0)))
      return wrongType("reverse");
    Value Result = Value::nil();
    Value Cur = dataArg(0);
    // Each cons may move the cell Cur points at; keep it pinned.
    ValRoot CurRoot(I, &Cur);
    for (; Cur.isCons(); Cur = Cur.cdr()) {
      Result = H.cons(Cur.car(), Result);
      ++stats().ConsAllocs;
    }
    return Outcome::ok(RtValue::data(Result));
  }
  case Prim::Nth:
  case Prim::NthCdr: {
    if (!allData(Args) || !dataArg(0).isFixnum())
      return wrongType("nth");
    int64_t K = dataArg(0).fixnum();
    Value L = dataArg(1);
    for (int64_t J = 0; J < K && L.isCons(); ++J)
      L = L.cdr();
    return Outcome::ok(RtValue::data(Op == Prim::Nth ? L.car() : L));
  }
  case Prim::Length: {
    if (!Args[0].isData())
      return wrongType("length");
    Value V = dataArg(0);
    if (V.isString())
      return Outcome::ok(
          RtValue::data(Value::fixnum(static_cast<int64_t>(V.stringValue().size()))));
    if (!sexpr::isProperList(V))
      return wrongType("length");
    return Outcome::ok(
        RtValue::data(Value::fixnum(static_cast<int64_t>(sexpr::listLength(V)))));
  }
  case Prim::Rplaca:
  case Prim::Rplacd: {
    if (!allData(Args) || !dataArg(0).isCons())
      return wrongType("rplaca");
    sexpr::Cons *Cell = dataArg(0).consCell();
    if (Op == Prim::Rplaca)
      Cell->Car = dataArg(1);
    else
      Cell->Cdr = dataArg(1);
    H.writeBarrier(Cell);
    return Outcome::ok(Args[0]);
  }
  case Prim::Member: {
    if (!allData(Args))
      return wrongType("member");
    for (Value Cur = dataArg(1); Cur.isCons(); Cur = Cur.cdr())
      if (sexpr::eql(Cur.car(), dataArg(0)))
        return Outcome::ok(RtValue::data(Cur));
    return Outcome::ok(RtValue::data(Value::nil()));
  }
  case Prim::Assoc: {
    if (!allData(Args))
      return wrongType("assoc");
    for (Value Cur = dataArg(1); Cur.isCons(); Cur = Cur.cdr())
      if (Cur.car().isCons() && sexpr::eql(Cur.car().car(), dataArg(0)))
        return Outcome::ok(RtValue::data(Cur.car()));
    return Outcome::ok(RtValue::data(Value::nil()));
  }
  case Prim::Last: {
    if (!Args[0].isData())
      return wrongType("last");
    Value Cur = dataArg(0);
    while (Cur.isCons() && Cur.cdr().isCons())
      Cur = Cur.cdr();
    return Outcome::ok(RtValue::data(Cur));
  }

  // --- float arrays ---
  case Prim::MakeArrayF: {
    std::vector<int64_t> Dims;
    for (const RtValue &A : Args) {
      if (!A.isData() || !A.dataValue().isFixnum() || A.dataValue().fixnum() < 0)
        return wrongType("make-array$f");
      Dims.push_back(A.dataValue().fixnum());
    }
    if (Dims.size() == 1)
      return Outcome::ok(I.makeArray(static_cast<size_t>(Dims[0])));
    return Outcome::ok(I.makeArray(static_cast<size_t>(Dims[0]),
                                   static_cast<size_t>(Dims[1])));
  }
  case Prim::ArefF:
  case Prim::AsetF: {
    bool IsSet = Op == Prim::AsetF;
    size_t NIdx = Args.size() - 1 - (IsSet ? 1 : 0);
    if (!Args[0].isArray())
      return wrongType("aref$f");
    FloatArray *A = Args[0].arrayValue();
    if ((A->Rank2 && NIdx != 2) || (!A->Rank2 && NIdx != 1))
      return Outcome::error("array rank mismatch");
    size_t Idx[2] = {0, 0};
    for (size_t J = 0; J < NIdx; ++J) {
      if (!Args[1 + J].isData() || !Args[1 + J].dataValue().isFixnum())
        return wrongType("aref$f");
      int64_t V = Args[1 + J].dataValue().fixnum();
      if (V < 0)
        return Outcome::error("array index out of bounds");
      Idx[J] = static_cast<size_t>(V);
    }
    if (Idx[0] >= A->Dim0 || (A->Rank2 && Idx[1] >= A->Dim1))
      return Outcome::error("array index out of bounds");
    if (!IsSet)
      return okFlo(A->at(Idx[0], Idx[1]));
    double X;
    if (!toF(Args.back(), X))
      return wrongType("aset$f");
    A->at(Idx[0], Idx[1]) = X;
    return okFlo(X);
  }
  case Prim::ArrayDim: {
    if (!Args[0].isArray() || !Args[1].isData() || !Args[1].dataValue().isFixnum())
      return wrongType("array-dimension");
    FloatArray *A = Args[0].arrayValue();
    int64_t Axis = Args[1].dataValue().fixnum();
    size_t D = Axis == 0 ? A->Dim0 : A->Dim1;
    return Outcome::ok(RtValue::data(Value::fixnum(static_cast<int64_t>(D))));
  }

  // --- control and miscellany ---
  case Prim::Throw: {
    Outcome O;
    O.Status = Outcome::St::Throw;
    O.ThrowTag = Args[0];
    O.Val = Args[1];
    return O;
  }
  case Prim::Error: {
    std::string Msg = "lisp error";
    if (!Args.empty() && Args[0].isData() && Args[0].dataValue().isString())
      Msg = Args[0].dataValue().stringValue();
    return Outcome::error(Msg);
  }
  case Prim::Identity:
    return Outcome::ok(Args[0]);
  case Prim::Print:
    I.Out += Args[0].str();
    I.Out += '\n';
    return Outcome::ok(Args[0]);

  case Prim::Funcall:
  case Prim::Apply:
  case Prim::FunctionRef:
    // Reaches here only through (function funcall) etc.; apply directly.
    return apply(Args[0], std::vector<RtValue>(Args.begin() + 1, Args.end()));
  }
  return Outcome::error("unimplemented primitive");
}

//===----------------------------------------------------------------------===//
// Interpreter public API
//===----------------------------------------------------------------------===//

Interpreter::Interpreter(ir::Module &M) : M(M) {
  RtHeap.registerRootProvider(this);
}

Interpreter::~Interpreter() { RtHeap.unregisterRootProvider(this); }

EnvPtr Interpreter::makeFrame(EnvPtr Parent) {
  auto *F = new EnvFrame();
  F->Parent = std::move(Parent);
  LiveFrames.insert(F);
  return EnvPtr(F, [this](EnvFrame *P) {
    LiveFrames.erase(P);
    delete P;
  });
}

void Interpreter::publishGcStats() {
  const sexpr::GcStats &Now = RtHeap.gcStats();
  NumGcCollections += Now.Collections - LastPublishedGc.Collections;
  NumGcMajor += Now.MajorCollections - LastPublishedGc.MajorCollections;
  NumGcCellsPromoted += Now.CellsPromoted - LastPublishedGc.CellsPromoted;
  NumGcCellsSwept += Now.CellsSwept - LastPublishedGc.CellsSwept;
  NumGcPauseNs += Now.PauseNsTotal - LastPublishedGc.PauseNsTotal;
  LastPublishedGc = Now;
}

void Interpreter::visitRoots(const std::function<void(sexpr::Value &)> &Visit) {
  auto VisitRt = [&](RtValue &R) {
    if (sexpr::Value *S = R.dataSlot())
      Visit(*S);
  };
  for (auto &B : SpecialStack)
    VisitRt(B.second);
  for (auto &B : SpecialGlobals)
    VisitRt(B.second);
  for (EnvFrame *F : LiveFrames)
    for (auto &Slot : F->Slots)
      VisitRt(Slot.second);
  for (std::vector<RtValue> *Vec : Roots.RtVecs)
    for (RtValue &R : *Vec)
      VisitRt(R);
  for (RtValue *R : Roots.RtVals)
    VisitRt(*R);
  for (sexpr::Value *V : Roots.Vals)
    Visit(*V);
  for (std::vector<sexpr::Value> *Vec : Roots.ValVecs)
    for (sexpr::Value &V : *Vec)
      Visit(V);
}

Interpreter::Result Interpreter::call(const std::string &Name,
                                      const std::vector<RtValue> &Args) {
  Result R;
  Function *F = M.lookup(Name);
  if (!F) {
    R.Error = "undefined function '" + Name + "'";
    return R;
  }
  Evaluator E(*this);
  Outcome O = E.apply(RtValue::closure(E.globalClosure(F)), Args);
  publishGcStats();
  switch (O.Status) {
  case Outcome::St::Ok:
    R.Ok = true;
    R.Value = O.Val;
    return R;
  case Outcome::St::Error:
    R.Error = O.Error;
    return R;
  case Outcome::St::Throw:
    R.Error = "uncaught throw";
    return R;
  default:
    R.Error = "control transfer escaped its extent";
    return R;
  }
}

void Interpreter::setGlobalSpecial(const sexpr::Symbol *Name, RtValue V) {
  for (auto &G : SpecialGlobals)
    if (G.first == Name) {
      G.second = V;
      return;
    }
  SpecialGlobals.push_back({Name, V});
}

RtValue Interpreter::makeArray(size_t Dim0) {
  Arrays.push_back(FloatArray{Dim0, 1, false, std::vector<double>(Dim0, 0.0)});
  return RtValue::array(&Arrays.back());
}

RtValue Interpreter::makeArray(size_t Dim0, size_t Dim1) {
  Arrays.push_back(FloatArray{Dim0, Dim1, true, std::vector<double>(Dim0 * Dim1, 0.0)});
  return RtValue::array(&Arrays.back());
}
