//===- interp/Interp.h - Baseline tree-walking evaluator --------*- C++ -*-===//
///
/// \file
/// A direct interpreter over the internal tree. It implements the full
/// dialect semantics — lexical closures, deep-bound special variables,
/// proper tail calls (so the §2 exptl example is iterative here too),
/// catch/throw, prog/go/return — and doubles as:
///
///   * the oracle for differential testing of the optimizer and compiler
///     (same program, interpreted vs. optimized vs. compiled), and
///   * the performance baseline for the compiled-vs-interpreted benchmark.
///
/// It keeps counters (evaluation steps, special-variable search length,
/// cons allocations) that the benchmark harness reads.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_INTERP_INTERP_H
#define S1LISP_INTERP_INTERP_H

#include "ir/Ir.h"
#include "ir/Primitives.h"
#include "sexpr/Value.h"

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace s1lisp {
namespace interp {

class Interpreter;
struct Closure;
struct FloatArray;

/// A runtime value: plain S-expression data, a closure, a builtin, or a
/// float array. Lists built at run time live in the interpreter's own heap
/// and may contain only data values (storing a function into a list is
/// reported as a runtime error rather than silently mangled).
class RtValue {
public:
  enum class Kind : uint8_t { Data, Closure, Builtin, Array };

  RtValue() : K(Kind::Data), Data(sexpr::Value::nil()) {}
  static RtValue data(sexpr::Value V) {
    RtValue R;
    R.K = Kind::Data;
    R.Data = V;
    return R;
  }
  static RtValue closure(Closure *C) {
    RtValue R;
    R.K = Kind::Closure;
    R.Fn = C;
    return R;
  }
  static RtValue builtin(const ir::PrimInfo *P) {
    RtValue R;
    R.K = Kind::Builtin;
    R.Prim = P;
    return R;
  }
  static RtValue array(FloatArray *A) {
    RtValue R;
    R.K = Kind::Array;
    R.Arr = A;
    return R;
  }

  Kind kind() const { return K; }
  bool isData() const { return K == Kind::Data; }
  bool isCallable() const { return K == Kind::Closure || K == Kind::Builtin; }
  bool isArray() const { return K == Kind::Array; }

  sexpr::Value dataValue() const {
    assert(isData() && "not a data value");
    return Data;
  }
  Closure *closureValue() const {
    assert(K == Kind::Closure);
    return Fn;
  }
  const ir::PrimInfo *builtinValue() const {
    assert(K == Kind::Builtin);
    return Prim;
  }
  FloatArray *arrayValue() const {
    assert(K == Kind::Array);
    return Arr;
  }

  /// Lisp truthiness: only NIL is false.
  bool isTrue() const { return !isData() || !Data.isNil(); }

  /// The embedded data slot, or null for non-data values. The collector
  /// rewrites the slot in place when promotion moves the referent.
  sexpr::Value *dataSlot() { return K == Kind::Data ? &Data : nullptr; }

  /// Printable rendering (closures as #<function>).
  std::string str() const;

private:
  Kind K;
  sexpr::Value Data;
  union {
    Closure *Fn;
    const ir::PrimInfo *Prim;
    FloatArray *Arr;
  };
};

/// A row-major float array of rank 1 or 2 (the §6.1 substrate).
struct FloatArray {
  size_t Dim0 = 0;
  size_t Dim1 = 1; ///< 1 for rank-1 arrays.
  bool Rank2 = false;
  std::vector<double> Data;

  double &at(size_t I, size_t J) { return Data[I * Dim1 + J]; }
};

/// A lexical environment frame. Closures share frames, hence shared_ptr.
struct EnvFrame {
  std::shared_ptr<EnvFrame> Parent;
  std::vector<std::pair<ir::Variable *, RtValue>> Slots;
};
using EnvPtr = std::shared_ptr<EnvFrame>;

/// A lexical closure: a lambda plus its captured environment.
struct Closure {
  const ir::LambdaNode *Lambda = nullptr;
  EnvPtr Env;
};

/// Execution counters read by tests and benchmarks.
struct InterpStats {
  uint64_t Steps = 0;              ///< nodes evaluated.
  uint64_t Applies = 0;            ///< function applications (incl. tail).
  uint64_t TailTransfers = 0;      ///< applications that reused the frame.
  uint64_t MaxApplyDepth = 0;      ///< high-water C++ recursion depth.
  uint64_t ConsAllocs = 0;         ///< runtime cons cells created.
  uint64_t SpecialSearches = 0;    ///< special-variable lookups performed.
  uint64_t SpecialSearchSteps = 0; ///< total bindings scanned during lookups.
};

/// The evaluator. One instance per Module; reusable across calls.
///
/// The interpreter is the runtime heap's root provider: every live
/// environment frame (tracked by a registry fed from the single
/// frame-creation site), the special-variable stacks, and the transient
/// roots the evaluator registers around allocation points are enumerated
/// precisely, so the heap's copying collector can move cells mid-run.
class Interpreter : private sexpr::RootProvider {
public:
  explicit Interpreter(ir::Module &M);
  ~Interpreter();

  struct Result {
    bool Ok = false;
    std::string Error;
    RtValue Value;
  };

  /// Calls module function \p Name with \p Args.
  Result call(const std::string &Name, const std::vector<RtValue> &Args);

  /// Establishes the global (outermost) value of a special variable.
  void setGlobalSpecial(const sexpr::Symbol *Name, RtValue V);

  /// Creates a float array owned by this interpreter.
  RtValue makeArray(size_t Dim0);
  RtValue makeArray(size_t Dim0, size_t Dim1);

  /// Evaluation-step budget; exceeded budgets abort with an error. The
  /// default is generous but finite so property tests terminate.
  void setFuel(uint64_t NewFuel) { Fuel = NewFuel; }

  /// GC schedule for the runtime heap: collect every \p N runtime cons
  /// allocations (0 = never, the default).
  void setGcEvery(uint64_t N) { RtHeap.setGcEvery(N); }
  /// Tenured-generation budget in bytes (0 = unbounded).
  void setHeapBudget(size_t Bytes) { RtHeap.setHeapBudget(Bytes); }
  /// Re-verify the heap after every collection, aborting on corruption.
  void setGcVerify(bool On) { RtHeap.setVerifyAfterGc(On); }

  sexpr::Heap &heap() { return RtHeap; }
  const sexpr::GcStats &gcStats() const { return RtHeap.gcStats(); }

  InterpStats &stats() { return Stats; }
  void resetStats() { Stats = InterpStats(); }

  /// Text emitted by the print primitive.
  const std::string &output() const { return Out; }
  void clearOutput() { Out.clear(); }

  ir::Module &M;

  /// Transient GC roots: the evaluator registers C++ locals here (RAII)
  /// while they hold heap values across allocation points. Evaluator
  /// internals — not a public API.
  struct TransientRoots {
    std::vector<std::vector<RtValue> *> RtVecs;
    std::vector<RtValue *> RtVals;
    std::vector<sexpr::Value *> Vals;
    std::vector<std::vector<sexpr::Value> *> ValVecs;
  };

private:
  friend struct Evaluator;

  /// sexpr::RootProvider: enumerates every slot holding a runtime-heap
  /// value — live environment frames, the special stacks, and the
  /// transient roots.
  void visitRoots(const std::function<void(sexpr::Value &)> &Visit) override;

  /// The one way evaluator code creates environment frames: the frame is
  /// tracked in LiveFrames until its last reference dies, so the
  /// collector sees every binding in every live frame.
  EnvPtr makeFrame(EnvPtr Parent);

  /// Bumps the gc.* statistics by the heap's progress since the last
  /// publication (no-ops when GC is off).
  void publishGcStats();

  sexpr::Heap RtHeap; ///< runtime conses/strings/ratios.
  /// Destroyed after Closures/frames (declared first): frame deleters
  /// unregister themselves here.
  std::unordered_set<EnvFrame *> LiveFrames;
  TransientRoots Roots;
  std::deque<Closure> Closures;
  /// One memoized closure per global function (no captured environment):
  /// keeps Closures from growing per call, which would make root
  /// enumeration quadratic under tight GC schedules.
  std::unordered_map<ir::Function *, Closure *> GlobalClosures;
  std::deque<FloatArray> Arrays;

  /// Deep-binding stack of (symbol, value); lookups scan from the top.
  std::vector<std::pair<const sexpr::Symbol *, RtValue>> SpecialStack;
  std::vector<std::pair<const sexpr::Symbol *, RtValue>> SpecialGlobals;

  InterpStats Stats;
  sexpr::GcStats LastPublishedGc;
  uint64_t Fuel = 50'000'000;
  std::string Out;
};

/// Structural equality over runtime values (closures by identity).
bool rtEqual(RtValue A, RtValue B);
bool rtEql(RtValue A, RtValue B);

} // namespace interp
} // namespace s1lisp

#endif // S1LISP_INTERP_INTERP_H
