//===- ir/Primitives.cpp --------------------------------------------------===//

#include "ir/Primitives.h"

#include <unordered_map>
#include <vector>

using namespace s1lisp;
using namespace s1lisp::ir;

namespace {

constexpr EffectInfo pureFx() { return {EffectNone}; }
constexpr EffectInfo readsFx() { return {EffectReads}; }
constexpr EffectInfo writesFx() { return {static_cast<uint8_t>(EffectWrites | EffectReads)}; }
constexpr EffectInfo allocFx() { return {EffectAllocates}; }
constexpr EffectInfo allocReadsFx() {
  return {static_cast<uint8_t>(EffectAllocates | EffectReads)};
}
constexpr EffectInfo controlFx() { return {EffectControl}; }
constexpr EffectInfo unknownFx() {
  return {static_cast<uint8_t>(EffectUnknownCall | EffectWrites | EffectReads |
                               EffectAllocates | EffectControl)};
}

struct TableBuilder {
  std::vector<PrimInfo> Table;

  PrimInfo &add(const char *Name, Prim Op, int MinArgs, int MaxArgs,
                EffectInfo Effects) {
    Table.push_back(PrimInfo{Name, Op, MinArgs, MaxArgs, Effects,
                             /*Foldable=*/false, /*Assoc=*/false,
                             /*Commut=*/false, std::nullopt, std::nullopt,
                             Rep::POINTER, Rep::POINTER,
                             /*CompareLike=*/false});
    return Table.back();
  }

  /// Generic foldable arithmetic.
  PrimInfo &num(const char *Name, Prim Op, int MinArgs, int MaxArgs) {
    PrimInfo &P = add(Name, Op, MinArgs, MaxArgs, pureFx());
    P.Foldable = true;
    return P;
  }

  /// Single-float raw operator: SWFLO in, SWFLO out.
  PrimInfo &flo(const char *Name, Prim Op, int MinArgs, int MaxArgs) {
    PrimInfo &P = num(Name, Op, MinArgs, MaxArgs);
    P.ArgRep = Rep::SWFLO;
    P.ResultRep = Rep::SWFLO;
    return P;
  }

  /// Fixnum raw operator: SWFIX in, SWFIX out.
  PrimInfo &fix(const char *Name, Prim Op, int MinArgs, int MaxArgs) {
    PrimInfo &P = num(Name, Op, MinArgs, MaxArgs);
    P.ArgRep = Rep::SWFIX;
    P.ResultRep = Rep::SWFIX;
    return P;
  }

  PrimInfo &cmp(const char *Name, Prim Op, int MinArgs, int MaxArgs,
                Rep ArgRep = Rep::POINTER) {
    PrimInfo &P = num(Name, Op, MinArgs, MaxArgs);
    P.ArgRep = ArgRep;
    P.ResultRep = Rep::BIT;
    P.CompareLike = true;
    return P;
  }
};

std::vector<PrimInfo> buildTable() {
  TableBuilder B;

  // --- generic arithmetic ---
  {
    PrimInfo &P = B.num("+", Prim::Add, 0, -1);
    P.Assoc = P.Commut = true;
    P.FixIdentity = 0;
  }
  B.num("-", Prim::Sub, 1, -1);
  {
    PrimInfo &P = B.num("*", Prim::Mul, 0, -1);
    P.Assoc = P.Commut = true;
    P.FixIdentity = 1;
  }
  B.num("/", Prim::Div, 1, -1);
  B.num("neg", Prim::Neg, 1, 1);
  B.num("1+", Prim::Add1, 1, 1);
  B.num("1-", Prim::Sub1, 1, 1);
  B.num("abs", Prim::Abs, 1, 1);
  {
    PrimInfo &P = B.num("max", Prim::Max, 1, -1);
    P.Assoc = P.Commut = true;
  }
  {
    PrimInfo &P = B.num("min", Prim::Min, 1, -1);
    P.Assoc = P.Commut = true;
  }
  B.num("floor", Prim::Floor, 2, 2);
  B.num("ceiling", Prim::Ceiling, 2, 2);
  B.num("truncate", Prim::Truncate, 2, 2);
  B.num("round", Prim::Round, 2, 2);
  B.num("mod", Prim::Mod, 2, 2);
  B.num("rem", Prim::Rem, 2, 2);
  B.num("expt", Prim::Expt, 2, 2);
  B.num("sqrt", Prim::Sqrt, 1, 1);
  B.num("float", Prim::ToFloat, 1, 1).ResultRep = Rep::SWFLO;

  // --- generic comparisons and numeric predicates ---
  B.cmp("=", Prim::NumEq, 1, -1);
  B.cmp("/=", Prim::NumNe, 1, -1);
  B.cmp("<", Prim::Lt, 1, -1);
  B.cmp(">", Prim::Gt, 1, -1);
  B.cmp("<=", Prim::Le, 1, -1);
  B.cmp(">=", Prim::Ge, 1, -1);
  B.cmp("zerop", Prim::Zerop, 1, 1);
  B.cmp("oddp", Prim::Oddp, 1, 1);
  B.cmp("evenp", Prim::Evenp, 1, 1);
  B.cmp("plusp", Prim::Plusp, 1, 1);
  B.cmp("minusp", Prim::Minusp, 1, 1);

  // --- single-float type-specific operators (§6.2) ---
  {
    PrimInfo &P = B.flo("+$f", Prim::FAdd, 1, -1);
    P.Assoc = P.Commut = true;
    P.FloatIdentity = 0.0;
  }
  B.flo("-$f", Prim::FSub, 1, -1);
  {
    PrimInfo &P = B.flo("*$f", Prim::FMul, 1, -1);
    P.Assoc = P.Commut = true;
    P.FloatIdentity = 1.0;
  }
  B.flo("/$f", Prim::FDiv, 1, -1);
  B.flo("neg$f", Prim::FNeg, 1, 1);
  B.flo("abs$f", Prim::FAbs, 1, 1);
  {
    PrimInfo &P = B.flo("max$f", Prim::FMax, 1, -1);
    P.Assoc = P.Commut = true;
  }
  {
    PrimInfo &P = B.flo("min$f", Prim::FMin, 1, -1);
    P.Assoc = P.Commut = true;
  }
  B.flo("sqrt$f", Prim::FSqrt, 1, 1);
  B.flo("sin$f", Prim::FSin, 1, 1);
  B.flo("cos$f", Prim::FCos, 1, 1);
  B.flo("exp$f", Prim::FExp, 1, 1);
  B.flo("log$f", Prim::FLog, 1, 1);
  B.flo("atan$f", Prim::FAtan, 2, 2);
  B.flo("sinc$f", Prim::FSinc, 1, 1);
  B.flo("cosc$f", Prim::FCosc, 1, 1);
  B.cmp("<$f", Prim::FLt, 2, 2, Rep::SWFLO);
  B.cmp(">$f", Prim::FGt, 2, 2, Rep::SWFLO);
  B.cmp("<=$f", Prim::FLe, 2, 2, Rep::SWFLO);
  B.cmp(">=$f", Prim::FGe, 2, 2, Rep::SWFLO);
  B.cmp("=$f", Prim::FEq, 2, 2, Rep::SWFLO);

  // --- fixnum type-specific operators ---
  {
    PrimInfo &P = B.fix("+&", Prim::XAdd, 1, -1);
    P.Assoc = P.Commut = true;
    P.FixIdentity = 0;
  }
  B.fix("-&", Prim::XSub, 1, -1);
  {
    PrimInfo &P = B.fix("*&", Prim::XMul, 1, -1);
    P.Assoc = P.Commut = true;
    P.FixIdentity = 1;
  }
  B.fix("neg&", Prim::XNeg, 1, 1);
  B.cmp("<&", Prim::XLt, 2, 2, Rep::SWFIX);
  B.cmp(">&", Prim::XGt, 2, 2, Rep::SWFIX);
  B.cmp("<=&", Prim::XLe, 2, 2, Rep::SWFIX);
  B.cmp(">=&", Prim::XGe, 2, 2, Rep::SWFIX);
  B.cmp("=&", Prim::XEq, 2, 2, Rep::SWFIX);

  // --- type predicates and equality ---
  B.cmp("null", Prim::Null, 1, 1);
  B.cmp("not", Prim::Not, 1, 1);
  B.cmp("atom", Prim::Atom, 1, 1);
  B.cmp("consp", Prim::Consp, 1, 1);
  B.cmp("listp", Prim::Listp, 1, 1);
  B.cmp("symbolp", Prim::Symbolp, 1, 1);
  B.cmp("numberp", Prim::Numberp, 1, 1);
  B.cmp("floatp", Prim::Floatp, 1, 1);
  B.cmp("integerp", Prim::Integerp, 1, 1);
  B.cmp("stringp", Prim::Stringp, 1, 1);
  B.cmp("eq", Prim::Eq, 2, 2);
  B.cmp("eql", Prim::Eql, 2, 2);
  B.cmp("equal", Prim::Equal, 2, 2).Effects = readsFx();

  // --- lists ---
  // cons allocates: eliminable when unused but never duplicable (§5).
  B.add("cons", Prim::Cons, 2, 2, allocFx());
  // car/cdr observe mutable cells (rplaca exists), hence EffectReads, but
  // they ARE foldable on literal (immutable, quoted) operands.
  B.add("car", Prim::Car, 1, 1, readsFx()).Foldable = true;
  B.add("cdr", Prim::Cdr, 1, 1, readsFx()).Foldable = true;
  B.add("caar", Prim::Caar, 1, 1, readsFx()).Foldable = true;
  B.add("cadr", Prim::Cadr, 1, 1, readsFx()).Foldable = true;
  B.add("cddr", Prim::Cddr, 1, 1, readsFx()).Foldable = true;
  B.add("cdar", Prim::Cdar, 1, 1, readsFx()).Foldable = true;
  B.add("list", Prim::List, 0, -1, allocFx());
  B.add("append", Prim::Append, 0, -1, allocReadsFx());
  B.add("reverse", Prim::Reverse, 1, 1, allocReadsFx());
  B.add("nth", Prim::Nth, 2, 2, readsFx()).Foldable = true;
  B.add("nthcdr", Prim::NthCdr, 2, 2, readsFx()).Foldable = true;
  B.add("length", Prim::Length, 1, 1, readsFx()).Foldable = true;
  B.add("rplaca", Prim::Rplaca, 2, 2, writesFx());
  B.add("rplacd", Prim::Rplacd, 2, 2, writesFx());
  B.add("member", Prim::Member, 2, 2, readsFx());
  B.add("assoc", Prim::Assoc, 2, 2, readsFx());
  B.add("last", Prim::Last, 1, 1, readsFx());

  // --- float arrays ---
  B.add("make-array$f", Prim::MakeArrayF, 1, 2, allocFx());
  {
    PrimInfo &P = B.add("aref$f", Prim::ArefF, 2, 3, readsFx());
    P.ResultRep = Rep::SWFLO; // delivers a raw machine number
  }
  {
    PrimInfo &P = B.add("aset$f", Prim::AsetF, 3, 4, writesFx());
    P.ResultRep = Rep::SWFLO;
  }
  B.add("array-dimension", Prim::ArrayDim, 2, 2, pureFx()).ResultRep = Rep::SWFIX;

  // --- control and miscellany ---
  B.add("funcall", Prim::Funcall, 1, -1, unknownFx());
  B.add("apply", Prim::Apply, 2, -1, unknownFx());
  B.add("throw", Prim::Throw, 2, 2, controlFx());
  B.add("error", Prim::Error, 0, -1, controlFx());
  B.add("identity", Prim::Identity, 1, 1, pureFx()).Foldable = true;
  B.add("function", Prim::FunctionRef, 1, 1, pureFx());
  B.add("print", Prim::Print, 1, 1, writesFx());

  return B.Table;
}

const std::vector<PrimInfo> &table() {
  static const std::vector<PrimInfo> Table = buildTable();
  return Table;
}

const std::unordered_map<std::string, const PrimInfo *> &nameIndex() {
  static const std::unordered_map<std::string, const PrimInfo *> Index = [] {
    std::unordered_map<std::string, const PrimInfo *> M;
    for (const PrimInfo &P : table())
      M.emplace(P.Name, &P);
    return M;
  }();
  return Index;
}

} // namespace

const PrimInfo *ir::lookupPrim(const sexpr::Symbol *Name) {
  return lookupPrim(Name->name());
}

const PrimInfo *ir::lookupPrim(const std::string &Name) {
  auto It = nameIndex().find(Name);
  return It == nameIndex().end() ? nullptr : It->second;
}

const PrimInfo &ir::primInfo(Prim Op) {
  for (const PrimInfo &P : table())
    if (P.Op == Op)
      return P;
  assert(false && "primitive not in table");
  return table().front();
}
