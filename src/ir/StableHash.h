//===- ir/StableHash.h - Alpha-normalized structural hashing ----*- C++ -*-===//
///
/// \file
/// A content hash over a Function's internal tree that is invariant under
/// alpha-renaming of lexically scoped variables and prog tags: variables
/// hash as sequence numbers assigned in traversal order, not as names.
/// Everything with observable semantics does land in the hash — literal
/// data (by printed form), call names, special-variable and free-variable
/// names (dynamic scoping binds by symbol), lambda-list shape, caseq keys,
/// and go/return targets by position.
///
/// The hash is the content-address half of the compile service's
/// per-function compilation cache key: two conversions of the same (or
/// alpha-renamed) source hash equal, so a warm s1lispd skips the middle
/// end for them; any semantic change reaches the hash and misses.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_IR_STABLEHASH_H
#define S1LISP_IR_STABLEHASH_H

#include "ir/Ir.h"

#include <cstdint>
#include <string>
#include <vector>

namespace s1lisp {
namespace ir {

/// Deterministic 64-bit mixing step (splitmix64 finalizer over FNV-style
/// accumulation); stable across platforms and runs.
uint64_t hashCombine(uint64_t Seed, uint64_t V);
uint64_t hashString(uint64_t Seed, std::string_view S);

/// Alpha-normalized structural hash of \p F's tree (the function's own
/// name is NOT included; callers that key caches mix it in themselves).
uint64_t stableFunctionHash(const Function &F);

/// Every global name the compiled code of \p F could resolve against the
/// module's function index: call-site names and literal symbols (which
/// covers (function f) and quoted data conservatively), sorted and
/// deduplicated. The cache key fingerprints the module index restricted
/// to these names, so a unit is reused only where every such name maps to
/// the same function slot (or is absent) as when it was compiled.
std::vector<std::string> referencedGlobalNames(const Function &F);

} // namespace ir
} // namespace s1lisp

#endif // S1LISP_IR_STABLEHASH_H
