//===- ir/BackTranslate.h - Internal tree back to source --------*- C++ -*-===//
///
/// \file
/// Converts the internal tree back into valid source text, "equivalent to,
/// though not necessarily identical to, the original source" (§4.1). The
/// paper built this as a debugging aid for the compiler writers; here it
/// additionally powers the optimizer transcript and golden tests.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_IR_BACKTRANSLATE_H
#define S1LISP_IR_BACKTRANSLATE_H

#include "ir/Ir.h"

#include <string>

namespace s1lisp {
namespace ir {

struct BackTranslateOptions {
  /// Wrap number/string constants in (quote ...) too. The paper's
  /// back-translator "omits quote-forms around numbers" for readability;
  /// that is our default as well.
  bool QuoteNumbers = false;
  /// Append "#id" to variable names, making alpha-renamed distinct
  /// variables visibly distinct.
  bool VariableIds = false;
};

/// Back-translates a subtree into an S-expression.
sexpr::Value backTranslate(Function &F, const Node *N,
                           BackTranslateOptions Opts = {});

/// Back-translates the whole function as (defun name (params...) body).
sexpr::Value backTranslateFunction(Function &F, BackTranslateOptions Opts = {});

/// Back-translate and print, for transcripts and tests.
std::string backTranslateToString(Function &F, const Node *N,
                                  BackTranslateOptions Opts = {});

} // namespace ir
} // namespace s1lisp

#endif // S1LISP_IR_BACKTRANSLATE_H
