//===- ir/Ir.h - The compiler's internal tree -------------------*- C++ -*-===//
///
/// \file
/// The internal tree form of §4.1 and Table 2 of the paper. Each node
/// corresponds to one of twelve source-level constructs; everything else in
/// the source language is expanded into these by the frontend, so the tree
/// can always be back-translated into valid source (ir/BackTranslate.h).
///
/// There is deliberately *no central symbol table*: each distinct variable
/// is a little Variable structure pointed to by its binder and by every
/// referent node, with back-pointers from the Variable to those nodes —
/// exactly the paper's arrangement. Nodes carry parent back-links (the
/// "extra cross-links that effectively make it a general graph") plus
/// annotation slots that successive phases fill in.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_IR_IR_H
#define S1LISP_IR_IR_H

#include "sexpr/Value.h"
#include "support/Arena.h"
#include "support/Diag.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace s1lisp {
namespace ir {

class Node;
class LambdaNode;
class ProgBodyNode;
class Function;

//===----------------------------------------------------------------------===//
// Annotation domains
//===----------------------------------------------------------------------===//

/// Side-effect classification (the paper's side-effects analysis, Table 1).
/// A bitmask: what executing a subtree may do, and hence what code motion
/// around it must respect.
enum EffectBits : uint8_t {
  EffectNone = 0,
  /// Mutates observable state (setq on shared vars, rplaca, special vars).
  EffectWrites = 1 << 0,
  /// Observes mutable state, so it cannot move across writes.
  EffectReads = 1 << 1,
  /// Heap-allocates. Per §5: "a side effect that may be eliminated but must
  /// not be duplicated".
  EffectAllocates = 1 << 2,
  /// May transfer control non-locally (go, return, throw).
  EffectControl = 1 << 3,
  /// Calls code the compiler cannot see; implies everything above.
  EffectUnknownCall = 1 << 4,
};

struct EffectInfo {
  uint8_t Bits = EffectNone;

  bool pure() const { return Bits == EffectNone; }
  /// Safe to delete if the value is unused.
  bool eliminable() const { return !(Bits & (EffectWrites | EffectControl | EffectUnknownCall)); }
  /// Safe to evaluate twice.
  bool duplicable() const { return Bits == EffectNone; }
  /// Safe to reorder with a computation that has effects \p Other. A pure
  /// computation commutes with anything — this is what lets the §7 example
  /// move (sinc$f (*$f 0.159… e)) past the unknown call to frotz.
  bool commutesWith(EffectInfo Other) const {
    if (pure() || Other.pure())
      return true;
    if ((Bits | Other.Bits) & (EffectControl | EffectUnknownCall))
      return false;
    if ((Bits & EffectWrites) && (Other.Bits & (EffectReads | EffectWrites)))
      return false;
    if ((Other.Bits & EffectWrites) && (Bits & (EffectReads | EffectWrites)))
      return false;
    return true;
  }

  EffectInfo operator|(EffectInfo O) const { return {static_cast<uint8_t>(Bits | O.Bits)}; }
  EffectInfo &operator|=(EffectInfo O) {
    Bits |= O.Bits;
    return *this;
  }
};

/// Internal object representations — Table 3 of the paper verbatim.
enum class Rep : uint8_t {
  SWFIX,   ///< 36-bit integer (one machine word here).
  DWFIX,   ///< 72-bit integer.
  HWFLO,   ///< half-word float.
  SWFLO,   ///< single-word float (the workhorse raw machine number).
  DWFLO,   ///< double-word float.
  TWFLO,   ///< quad-word float.
  HWCPLX,  ///< half-word complex.
  SWCPLX,  ///< single-word complex.
  DWCPLX,  ///< double-word complex.
  TWCPLX,  ///< quad-word complex.
  POINTER, ///< LISP pointer (tagged).
  BIT,     ///< 1-bit integer.
  JUMP,    ///< value delivered as a conditional jump.
  NONE,    ///< don't care (value not used).
};

const char *repName(Rep R);

/// True for the numeric raw representations that have a corresponding
/// user-visible heap-allocated pointer form (§6.3's pdl-eligible list).
bool repIsPdlEligible(Rep R);

/// How a lambda-expression is to be compiled (binding annotation, §4.4).
enum class LambdaStrategy : uint8_t {
  /// The callee of a direct call (a LET): arguments initialize frame
  /// slots and the body is compiled in line; no closure, no call.
  Open,
  /// A shared thunk whose every call is a parameter-passing goto: the
  /// body is emitted once and call sites jump to it.
  Jump,
  /// The general case: construct a closure object at run time.
  FullClosure,
};

/// Per-node slots filled in by successive phases (Table 1's "extra data
/// slots ... filled in by successive phases of the compiler").
struct Annotations {
  // --- source-program analysis ---
  EffectInfo Effects;      ///< effects this subtree may produce.
  unsigned Complexity = 1; ///< estimated object-code size (complexity analysis).
  bool Tail = false;       ///< node is in tail position of the enclosing lambda.

  // --- machine-dependent annotation ---
  Rep WantRep = Rep::POINTER; ///< representation the context wants (top-down).
  Rep IsRep = Rep::POINTER;   ///< representation the node delivers (bottom-up).
  /// PDLOKP: non-null when the parent context accepts a pdl (stack) number;
  /// points at the node that originally authorized it (§6.3).
  const Node *PdlOkp = nullptr;
  /// PDLNUMP: the node itself might produce a pdl number.
  bool PdlNump = false;

  // --- TNBIND ---
  int IsTn = -1;   ///< TN holding the value in IsRep form.
  int WantTn = -1; ///< TN holding the coerced (WantRep) form, when distinct.
  int PdlTn = -1;  ///< stack slot TN for a pdl number, when one is attached.
};

//===----------------------------------------------------------------------===//
// Variables
//===----------------------------------------------------------------------===//

/// One distinct variable (two source variables of the same name are two
/// Variables — alpha renaming happens at conversion). Holds back-pointers
/// to the binder and to every referencing node.
class Variable {
public:
  Variable(const sexpr::Symbol *Name, unsigned Id, bool IsSpecial)
      : Name(Name), Id(Id), Special(IsSpecial) {}

  const sexpr::Symbol *name() const { return Name; }
  unsigned id() const { return Id; }
  bool isSpecial() const { return Special; }

  /// The lambda that binds this variable; null for a free (global) variable.
  LambdaNode *Binder = nullptr;

  /// Every VarRefNode and SetqNode naming this variable (referent list).
  std::vector<Node *> Refs;

  // --- binding annotation ---
  /// Referenced from an inner FullClosure lambda, so the binding cell must
  /// be heap-allocated (§4.4).
  bool HeapAllocated = false;
  /// Some reference writes it.
  bool Written = false;

  // --- representation annotation ---
  Rep VarRep = Rep::POINTER;

  // --- TNBIND ---
  int Tn = -1;

  /// Display name, unique-ified for debugging ("x#3").
  std::string debugName() const;

private:
  const sexpr::Symbol *Name;
  unsigned Id;
  bool Special;
};

//===----------------------------------------------------------------------===//
// Nodes
//===----------------------------------------------------------------------===//

/// Table 2's construct set, one enumerator per basic internal construct.
enum class NodeKind : uint8_t {
  Literal,  ///< constants (quote)
  VarRef,   ///< variable reference
  Caseq,    ///< case statement
  Catcher,  ///< target for non-local exits (catch)
  Go,       ///< goto a progbody tag
  If,       ///< if-then-else
  Lambda,   ///< lambda-expression (value: a lexical closure)
  ProgBody, ///< tagged statements; go/return operate on it
  Progn,    ///< sequential execution
  Return,   ///< exit a surrounding progbody
  Setq,     ///< assignment
  Call,     ///< function invocation
};

const char *nodeKindName(NodeKind K);

/// Base of all internal tree nodes.
class Node {
public:
  NodeKind kind() const { return Kind; }

  /// Parent back-link; null for the root lambda of a Function.
  Node *Parent = nullptr;
  SourceLocation Loc;
  Annotations Ann;
  /// Re-analysis flag (§4.2's incremental analysis system).
  bool Dirty = true;

protected:
  explicit Node(NodeKind K) : Kind(K) {}
  ~Node() = default;

private:
  NodeKind Kind;
};

/// A constant (Table 2 "literal"). The datum is an S-expression value.
class LiteralNode : public Node {
public:
  explicit LiteralNode(sexpr::Value Datum) : Node(NodeKind::Literal), Datum(Datum) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::Literal; }

  sexpr::Value Datum;
};

/// A variable reference.
class VarRefNode : public Node {
public:
  explicit VarRefNode(Variable *Var) : Node(NodeKind::VarRef), Var(Var) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::VarRef; }

  Variable *Var;
};

/// Assignment.
class SetqNode : public Node {
public:
  SetqNode(Variable *Var, Node *ValueExpr)
      : Node(NodeKind::Setq), Var(Var), ValueExpr(ValueExpr) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::Setq; }

  Variable *Var;
  Node *ValueExpr;
};

/// If-then-else. cond is expanded into these because "if is simpler and
/// symmetric, making program transformations easier".
class IfNode : public Node {
public:
  IfNode(Node *Test, Node *Then, Node *Else)
      : Node(NodeKind::If), Test(Test), Then(Then), Else(Else) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::If; }

  Node *Test;
  Node *Then;
  Node *Else;
};

/// Sequential execution; an empty progn evaluates to NIL.
class PrognNode : public Node {
public:
  explicit PrognNode(std::vector<Node *> Forms)
      : Node(NodeKind::Progn), Forms(std::move(Forms)) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::Progn; }

  std::vector<Node *> Forms;
};

/// A lambda-expression. Parameters follow the dialect's lambda-list:
/// required, then &optional (each with an arbitrary default computation
/// that may refer to earlier parameters), then an optional &rest.
class LambdaNode : public Node {
public:
  struct OptionalParam {
    Variable *Var = nullptr;
    Node *Default = nullptr; ///< evaluated when the argument is missing.
  };

  LambdaNode() : Node(NodeKind::Lambda) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::Lambda; }

  std::vector<Variable *> Required;
  std::vector<OptionalParam> Optionals;
  Variable *Rest = nullptr;
  Node *Body = nullptr;

  size_t minArgs() const { return Required.size(); }
  size_t maxFixedArgs() const { return Required.size() + Optionals.size(); }
  bool acceptsArgCount(size_t N) const {
    return N >= minArgs() && (Rest || N <= maxFixedArgs());
  }

  /// All parameter variables in order.
  std::vector<Variable *> allParams() const;

  // --- binding annotation (§4.4) ---
  LambdaStrategy Strategy = LambdaStrategy::FullClosure;
};

/// Function invocation. Exactly one of Name / CalleeExpr is set:
/// (f x)           -> Name = f (primitive or global function)
/// ((lambda ..) x) -> CalleeExpr = the LambdaNode (this is LET)
/// (funcall e x)   -> CalleeExpr = e
class CallNode : public Node {
public:
  CallNode(const sexpr::Symbol *Name, Node *CalleeExpr, std::vector<Node *> Args)
      : Node(NodeKind::Call), Name(Name), CalleeExpr(CalleeExpr), Args(std::move(Args)) {
    assert((Name != nullptr) != (CalleeExpr != nullptr) &&
           "exactly one callee form");
  }
  static bool classof(const Node *N) { return N->kind() == NodeKind::Call; }

  const sexpr::Symbol *Name;
  Node *CalleeExpr;
  std::vector<Node *> Args;

  bool isLetLike() const {
    return CalleeExpr && CalleeExpr->kind() == NodeKind::Lambda;
  }
};

/// Case dispatch on eql-comparable keys.
class CaseqNode : public Node {
public:
  struct Clause {
    std::vector<sexpr::Value> Keys;
    Node *Body = nullptr;
  };

  CaseqNode(Node *Key, std::vector<Clause> Clauses, Node *Default)
      : Node(NodeKind::Caseq), Key(Key), Clauses(std::move(Clauses)), Default(Default) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::Caseq; }

  Node *Key;
  std::vector<Clause> Clauses;
  Node *Default; ///< never null; the frontend supplies a NIL literal.
};

/// Dynamic non-local exit target (MACLISP catch). (throw tag val) remains
/// an ordinary call to the THROW primitive.
class CatcherNode : public Node {
public:
  CatcherNode(Node *TagExpr, Node *Body)
      : Node(NodeKind::Catcher), TagExpr(TagExpr), Body(Body) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::Catcher; }

  Node *TagExpr;
  Node *Body;
};

/// The statement body of a PROG: an ordered mix of tags and statements.
/// The usual LISP prog translates into a LET containing one of these.
class ProgBodyNode : public Node {
public:
  struct Item {
    const sexpr::Symbol *Tag = nullptr; ///< set for a tag item.
    Node *Stmt = nullptr;               ///< set for a statement item.
  };

  explicit ProgBodyNode(std::vector<Item> Items)
      : Node(NodeKind::ProgBody), Items(std::move(Items)) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::ProgBody; }

  std::vector<Item> Items;

  bool hasTag(const sexpr::Symbol *Tag) const {
    for (const Item &I : Items)
      if (I.Tag == Tag)
        return true;
    return false;
  }
};

/// goto a tag of an enclosing progbody.
class GoNode : public Node {
public:
  GoNode(const sexpr::Symbol *Tag, ProgBodyNode *Target)
      : Node(NodeKind::Go), Tag(Tag), Target(Target) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::Go; }

  const sexpr::Symbol *Tag;
  ProgBodyNode *Target;
};

/// Exit an enclosing progbody, delivering a value.
class ReturnNode : public Node {
public:
  ReturnNode(Node *ValueExpr, ProgBodyNode *Target)
      : Node(NodeKind::Return), ValueExpr(ValueExpr), Target(Target) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::Return; }

  Node *ValueExpr;
  ProgBodyNode *Target;
};

/// Checked downcast in the LLVM style.
template <typename T> T *cast(Node *N) {
  assert(N && T::classof(N) && "cast to wrong node kind");
  return static_cast<T *>(N);
}
template <typename T> const T *cast(const Node *N) {
  assert(N && T::classof(N) && "cast to wrong node kind");
  return static_cast<const T *>(N);
}
template <typename T> T *dyn_cast(Node *N) {
  return N && T::classof(N) ? static_cast<T *>(N) : nullptr;
}
template <typename T> const T *dyn_cast(const Node *N) {
  return N && T::classof(N) ? static_cast<const T *>(N) : nullptr;
}

//===----------------------------------------------------------------------===//
// Function: one compiled top-level defun
//===----------------------------------------------------------------------===//

/// Owns the arena behind one function's tree and its Variables, and offers
/// factory methods that keep parent links correct on construction.
class Function {
public:
  Function(std::string Name, sexpr::SymbolTable &Syms, sexpr::Heap &DataHeap)
      : Name(std::move(Name)), Syms(Syms), DataHeap(DataHeap) {}

  const std::string &name() const { return Name; }
  sexpr::SymbolTable &symbols() { return Syms; }
  sexpr::Heap &dataHeap() { return DataHeap; }

  LambdaNode *Root = nullptr;

  // --- factories ---
  Variable *makeVariable(const sexpr::Symbol *Name, bool Special = false);
  LiteralNode *makeLiteral(sexpr::Value V);
  LiteralNode *makeNil() { return makeLiteral(sexpr::Value::nil()); }
  VarRefNode *makeVarRef(Variable *Var);
  SetqNode *makeSetq(Variable *Var, Node *ValueExpr);
  IfNode *makeIf(Node *Test, Node *Then, Node *Else);
  PrognNode *makeProgn(std::vector<Node *> Forms);
  LambdaNode *makeLambda();
  CallNode *makeCall(const sexpr::Symbol *Name, std::vector<Node *> Args);
  CallNode *makeCallExpr(Node *Callee, std::vector<Node *> Args);
  CaseqNode *makeCaseq(Node *Key, std::vector<CaseqNode::Clause> Clauses, Node *Default);
  CatcherNode *makeCatcher(Node *TagExpr, Node *Body);
  ProgBodyNode *makeProgBody(std::vector<ProgBodyNode::Item> Items);
  GoNode *makeGo(const sexpr::Symbol *Tag, ProgBodyNode *Target);
  ReturnNode *makeReturn(Node *ValueExpr, ProgBodyNode *Target);

  const std::vector<Variable *> &variables() const { return Vars; }
  size_t nodeCount() const { return NodeTally; }

  /// Copies the live tree (and every Variable it still references) into a
  /// fresh arena and drops the old one wholesale, reclaiming the garbage
  /// that tree surgery leaves behind. The meta-evaluator calls this between
  /// passes once the dead fraction is large. Annotations, dirty bits and
  /// variable flags survive; detached subtrees do not. Returns the number
  /// of bytes released.
  size_t reclaim();
  size_t arenaBytes() const { return A.allocatedBytes(); }
  size_t arenaObjects() const { return A.size(); }

private:
  std::string Name;
  sexpr::SymbolTable &Syms;
  sexpr::Heap &DataHeap;
  Arena A;
  std::vector<Variable *> Vars;
  unsigned NextVarId = 0;
  size_t NodeTally = 0;
};

//===----------------------------------------------------------------------===//
// Structural utilities
//===----------------------------------------------------------------------===//

/// Invokes \p Fn on every direct child of \p N, in evaluation order.
void forEachChild(Node *N, const std::function<void(Node *)> &Fn);
void forEachChild(const Node *N, const std::function<void(const Node *)> &Fn);

/// Invokes \p Fn on \p N and all descendants, preorder.
void forEachNode(Node *Root, const std::function<void(Node *)> &Fn);
void forEachNode(const Node *Root, const std::function<void(const Node *)> &Fn);

/// Replaces the child slot of \p Parent currently holding \p Old with
/// \p New, updating New's parent link. Asserts that Old is found.
void replaceChild(Node *Parent, Node *Old, Node *New);

/// Recomputes all parent links below \p Root (Root's own parent untouched).
void recomputeParents(Node *Root);

/// Marks \p N and every ancestor up to the root dirty, so the incremental
/// analyzer re-derives cached effects/complexity along the spine from a
/// rewritten subtree to the root (§4.2's incremental analysis system).
void dirtySpine(Node *N);

/// Unlinks the subtree rooted at \p Sub from the function's variable
/// back-pointer lists: every VarRef/Setq inside it is removed from its
/// Variable's referent list, and a Variable whose last Setq goes away has
/// Written cleared (dirtying the spines of its remaining reads, whose
/// effects just changed). Rules call this on the pieces they drop so the
/// referent lists stay exact without a full recomputeVariableRefs.
void detachSubtree(Node *Sub);

/// Rebuilds every Variable's referent list from the tree (after surgery).
void recomputeVariableRefs(Function &F);

/// Deep copy rooted at \p N. Variables *bound within* the copied subtree
/// get fresh Variables (preserving alpha-uniqueness); free variables keep
/// their identity. Go/Return targets inside the subtree are remapped; a
/// Go/Return whose target lies outside the copied subtree keeps it.
Node *cloneTree(Function &F, const Node *N);

/// Counts nodes in a subtree.
size_t treeSize(const Node *Root);

/// Consistency checker: parent links, variable back-pointers, go/return
/// target reachability. Reports problems to \p Diags; true when clean.
bool verify(Function &F, DiagEngine &Diags);

//===----------------------------------------------------------------------===//
// Module: a compilation session
//===----------------------------------------------------------------------===//

/// A set of functions compiled together, plus the session-global tables.
class Module {
public:
  Module() = default;

  sexpr::SymbolTable Syms;
  sexpr::Heap DataHeap;

  Function *addFunction(std::string Name) {
    Functions.push_back(std::make_unique<Function>(std::move(Name), Syms, DataHeap));
    Function *F = Functions.back().get();
    ByName[F->name()] = F;
    return F;
  }

  Function *lookup(const std::string &Name) const {
    auto It = ByName.find(Name);
    return It == ByName.end() ? nullptr : It->second;
  }

  const std::vector<std::unique_ptr<Function>> &functions() const { return Functions; }

  /// Deep-copies this module into \p Out (which must be freshly
  /// constructed): every function's tree and variables, the special
  /// proclamations, and all literal data. Symbols are re-interned and heap
  /// data re-allocated in Out's own tables, so the clone shares nothing
  /// with the original — the ablation oracle compiles one conversion many
  /// times from clones. Clones into a sibling rather than returning a
  /// Module because each Function holds references to its module's tables.
  void clone(Module &Out) const;

  /// Collects the literal-data heap: every literal datum and caseq key in
  /// every function's *live* tree is a root; heap cells reachable only
  /// from detached subtrees or from values decoded out of finished runs
  /// are reclaimed. Moving: literal slots are rewritten in place, so the
  /// module must be quiescent (no compile or run in flight). The daemon
  /// calls this between requests.
  void collectGarbage();

  /// Symbols proclaimed special (dynamically scoped), e.g. by defvar.
  std::vector<const sexpr::Symbol *> Specials;
  bool isSpecial(const sexpr::Symbol *S) const {
    for (const sexpr::Symbol *Sp : Specials)
      if (Sp == S)
        return true;
    return false;
  }

private:
  std::vector<std::unique_ptr<Function>> Functions;
  std::unordered_map<std::string, Function *> ByName;
};

} // namespace ir
} // namespace s1lisp

#endif // S1LISP_IR_IR_H
