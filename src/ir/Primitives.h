//===- ir/Primitives.h - Known primitive operations -------------*- C++ -*-===//
///
/// \file
/// The table of primitive functions the compiler knows about: arities,
/// side-effect classes, foldability (compile-time expression evaluation,
/// §5), associativity/commutativity with identity elements (the paper's
/// "table-driven … manipulations of associative and commutative
/// operators"), and representation signatures for the type-specific
/// operators of §6.2 ("+$f", "*&", …).
///
/// Generic arithmetic (+, *, <, …) works on any numbers via the runtime;
/// the $f/& type-specific operators are the MACLISP-style operators the
/// paper uses while awaiting declaration-driven type inference.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_IR_PRIMITIVES_H
#define S1LISP_IR_PRIMITIVES_H

#include "ir/Ir.h"
#include "sexpr/Value.h"

#include <optional>

namespace s1lisp {
namespace ir {

/// Every primitive operation, one enumerator each.
enum class Prim : uint8_t {
  // Generic arithmetic.
  Add, Sub, Mul, Div, Add1, Sub1, Neg, Abs, Max, Min,
  Floor, Ceiling, Truncate, Round, Mod, Rem, Expt, Sqrt, ToFloat,
  // Generic numeric comparison / predicates.
  NumEq, NumNe, Lt, Gt, Le, Ge, Zerop, Oddp, Evenp, Plusp, Minusp,
  // Single-float type-specific operators (raw SWFLO world).
  FAdd, FSub, FMul, FDiv, FNeg, FAbs, FMax, FMin, FSqrt,
  FSin, FCos, FExp, FLog, FAtan, FSinc, FCosc,
  FLt, FGt, FLe, FGe, FEq,
  // Fixnum type-specific operators (raw SWFIX world).
  XAdd, XSub, XMul, XNeg, XLt, XGt, XLe, XGe, XEq,
  // Type predicates and equality.
  Null, Not, Atom, Consp, Listp, Symbolp, Numberp, Floatp, Integerp, Stringp,
  Eq, Eql, Equal,
  // Lists.
  Cons, Car, Cdr, Caar, Cadr, Cddr, Cdar, List, Append, Reverse,
  Nth, NthCdr, Length, Rplaca, Rplacd, Member, Assoc, Last,
  // Float arrays (1-D or 2-D, row-major) — the §6.1 subscripting substrate.
  MakeArrayF, ArefF, AsetF, ArrayDim,
  // Control and miscellany.
  Funcall, Apply, Throw, Error, Identity, FunctionRef, Print,
};

/// Static description of one primitive.
struct PrimInfo {
  const char *Name;
  Prim Op;
  int MinArgs;
  int MaxArgs; ///< -1 = variadic.
  EffectInfo Effects;
  /// May be evaluated at compile time on constant operands.
  bool Foldable = false;
  /// N-ary calls may be re-associated into two-argument compositions.
  bool Assoc = false;
  /// Arguments may be reordered (constants hoisted to the front).
  bool Commut = false;
  /// Identity element for Assoc ops ((+ x 0) => x), when meaningful.
  std::optional<double> FloatIdentity;
  std::optional<int64_t> FixIdentity;
  /// Representation the operator wants for its arguments, and delivers.
  Rep ArgRep = Rep::POINTER;
  Rep ResultRep = Rep::POINTER;
  /// Result is a boolean usable directly as a conditional jump.
  bool CompareLike = false;
  /// "Immutable mathematical function" (§7): motion past unknown calls OK.
  /// Encoded via Effects.pure(), but listed here for documentation.

  bool acceptsArgCount(size_t N) const {
    return N >= static_cast<size_t>(MinArgs) &&
           (MaxArgs < 0 || N <= static_cast<size_t>(MaxArgs));
  }
};

/// Looks up a primitive by name ("+$f", "car", …); null when unknown.
const PrimInfo *lookupPrim(const sexpr::Symbol *Name);
const PrimInfo *lookupPrim(const std::string &Name);

/// Looks up by operation.
const PrimInfo &primInfo(Prim Op);

} // namespace ir
} // namespace s1lisp

#endif // S1LISP_IR_PRIMITIVES_H
