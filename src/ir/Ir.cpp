//===- ir/Ir.cpp ----------------------------------------------------------===//

#include "ir/Ir.h"

#include <unordered_map>
#include <unordered_set>

using namespace s1lisp;
using namespace s1lisp::ir;

const char *ir::repName(Rep R) {
  switch (R) {
  case Rep::SWFIX:
    return "SWFIX";
  case Rep::DWFIX:
    return "DWFIX";
  case Rep::HWFLO:
    return "HWFLO";
  case Rep::SWFLO:
    return "SWFLO";
  case Rep::DWFLO:
    return "DWFLO";
  case Rep::TWFLO:
    return "TWFLO";
  case Rep::HWCPLX:
    return "HWCPLX";
  case Rep::SWCPLX:
    return "SWCPLX";
  case Rep::DWCPLX:
    return "DWCPLX";
  case Rep::TWCPLX:
    return "TWCPLX";
  case Rep::POINTER:
    return "POINTER";
  case Rep::BIT:
    return "BIT";
  case Rep::JUMP:
    return "JUMP";
  case Rep::NONE:
    return "NONE";
  }
  return "?";
}

bool ir::repIsPdlEligible(Rep R) {
  switch (R) {
  case Rep::SWFLO:
  case Rep::DWFLO:
  case Rep::TWFLO:
  case Rep::HWCPLX:
  case Rep::SWCPLX:
  case Rep::DWCPLX:
  case Rep::TWCPLX:
    return true;
  default:
    return false;
  }
}

const char *ir::nodeKindName(NodeKind K) {
  switch (K) {
  case NodeKind::Literal:
    return "literal";
  case NodeKind::VarRef:
    return "variable";
  case NodeKind::Caseq:
    return "caseq";
  case NodeKind::Catcher:
    return "catcher";
  case NodeKind::Go:
    return "go";
  case NodeKind::If:
    return "if";
  case NodeKind::Lambda:
    return "lambda";
  case NodeKind::ProgBody:
    return "progbody";
  case NodeKind::Progn:
    return "progn";
  case NodeKind::Return:
    return "return";
  case NodeKind::Setq:
    return "setq";
  case NodeKind::Call:
    return "call";
  }
  return "?";
}

std::string Variable::debugName() const {
  return Name->name() + "#" + std::to_string(Id);
}

std::vector<Variable *> LambdaNode::allParams() const {
  std::vector<Variable *> Out(Required.begin(), Required.end());
  for (const OptionalParam &O : Optionals)
    Out.push_back(O.Var);
  if (Rest)
    Out.push_back(Rest);
  return Out;
}

//===----------------------------------------------------------------------===//
// Factories
//===----------------------------------------------------------------------===//

Variable *Function::makeVariable(const sexpr::Symbol *Name, bool Special) {
  Variable *V = A.create<Variable>(Name, NextVarId++, Special);
  Vars.push_back(V);
  return V;
}

namespace {
template <typename T> T *track(size_t &Tally, T *N) {
  ++Tally;
  return N;
}
void adopt(Node *Parent, Node *Child) {
  if (Child)
    Child->Parent = Parent;
}
} // namespace

LiteralNode *Function::makeLiteral(sexpr::Value V) {
  return track(NodeTally, A.create<LiteralNode>(V));
}

VarRefNode *Function::makeVarRef(Variable *Var) {
  VarRefNode *N = track(NodeTally, A.create<VarRefNode>(Var));
  Var->Refs.push_back(N);
  return N;
}

SetqNode *Function::makeSetq(Variable *Var, Node *ValueExpr) {
  SetqNode *N = track(NodeTally, A.create<SetqNode>(Var, ValueExpr));
  adopt(N, ValueExpr);
  Var->Refs.push_back(N);
  if (!Var->Written) {
    // The first write flips this variable's reads from pure to effectful,
    // so any cached analysis above them is stale.
    Var->Written = true;
    for (Node *R : Var->Refs)
      if (R != N)
        dirtySpine(R);
  }
  return N;
}

IfNode *Function::makeIf(Node *Test, Node *Then, Node *Else) {
  IfNode *N = track(NodeTally, A.create<IfNode>(Test, Then, Else));
  adopt(N, Test);
  adopt(N, Then);
  adopt(N, Else);
  return N;
}

PrognNode *Function::makeProgn(std::vector<Node *> Forms) {
  PrognNode *N = track(NodeTally, A.create<PrognNode>(std::move(Forms)));
  for (Node *C : N->Forms)
    adopt(N, C);
  return N;
}

LambdaNode *Function::makeLambda() { return track(NodeTally, A.create<LambdaNode>()); }

CallNode *Function::makeCall(const sexpr::Symbol *Name, std::vector<Node *> Args) {
  CallNode *N = track(NodeTally, A.create<CallNode>(Name, nullptr, std::move(Args)));
  for (Node *C : N->Args)
    adopt(N, C);
  return N;
}

CallNode *Function::makeCallExpr(Node *Callee, std::vector<Node *> Args) {
  CallNode *N = track(NodeTally, A.create<CallNode>(nullptr, Callee, std::move(Args)));
  adopt(N, Callee);
  for (Node *C : N->Args)
    adopt(N, C);
  return N;
}

CaseqNode *Function::makeCaseq(Node *Key, std::vector<CaseqNode::Clause> Clauses,
                               Node *Default) {
  CaseqNode *N = track(NodeTally, A.create<CaseqNode>(Key, std::move(Clauses), Default));
  adopt(N, Key);
  for (auto &C : N->Clauses)
    adopt(N, C.Body);
  adopt(N, Default);
  return N;
}

CatcherNode *Function::makeCatcher(Node *TagExpr, Node *Body) {
  CatcherNode *N = track(NodeTally, A.create<CatcherNode>(TagExpr, Body));
  adopt(N, TagExpr);
  adopt(N, Body);
  return N;
}

ProgBodyNode *Function::makeProgBody(std::vector<ProgBodyNode::Item> Items) {
  ProgBodyNode *N = track(NodeTally, A.create<ProgBodyNode>(std::move(Items)));
  for (auto &I : N->Items)
    adopt(N, I.Stmt);
  return N;
}

GoNode *Function::makeGo(const sexpr::Symbol *Tag, ProgBodyNode *Target) {
  return track(NodeTally, A.create<GoNode>(Tag, Target));
}

ReturnNode *Function::makeReturn(Node *ValueExpr, ProgBodyNode *Target) {
  ReturnNode *N = track(NodeTally, A.create<ReturnNode>(ValueExpr, Target));
  adopt(N, ValueExpr);
  return N;
}

//===----------------------------------------------------------------------===//
// Traversal
//===----------------------------------------------------------------------===//

void ir::forEachChild(Node *N, const std::function<void(Node *)> &Fn) {
  switch (N->kind()) {
  case NodeKind::Literal:
  case NodeKind::VarRef:
  case NodeKind::Go:
    return;
  case NodeKind::Setq:
    Fn(cast<SetqNode>(N)->ValueExpr);
    return;
  case NodeKind::If: {
    auto *I = cast<IfNode>(N);
    Fn(I->Test);
    Fn(I->Then);
    Fn(I->Else);
    return;
  }
  case NodeKind::Progn:
    for (Node *C : cast<PrognNode>(N)->Forms)
      Fn(C);
    return;
  case NodeKind::Lambda: {
    auto *L = cast<LambdaNode>(N);
    for (auto &O : L->Optionals)
      if (O.Default)
        Fn(O.Default);
    Fn(L->Body);
    return;
  }
  case NodeKind::Call: {
    auto *C = cast<CallNode>(N);
    if (C->CalleeExpr)
      Fn(C->CalleeExpr);
    for (Node *AN : C->Args)
      Fn(AN);
    return;
  }
  case NodeKind::Caseq: {
    auto *C = cast<CaseqNode>(N);
    Fn(C->Key);
    for (auto &Cl : C->Clauses)
      Fn(Cl.Body);
    Fn(C->Default);
    return;
  }
  case NodeKind::Catcher: {
    auto *C = cast<CatcherNode>(N);
    Fn(C->TagExpr);
    Fn(C->Body);
    return;
  }
  case NodeKind::ProgBody:
    for (auto &I : cast<ProgBodyNode>(N)->Items)
      if (I.Stmt)
        Fn(I.Stmt);
    return;
  case NodeKind::Return:
    Fn(cast<ReturnNode>(N)->ValueExpr);
    return;
  }
}

void ir::forEachChild(const Node *N, const std::function<void(const Node *)> &Fn) {
  forEachChild(const_cast<Node *>(N),
               [&Fn](Node *C) { Fn(static_cast<const Node *>(C)); });
}

void ir::forEachNode(Node *Root, const std::function<void(Node *)> &Fn) {
  Fn(Root);
  forEachChild(Root, [&Fn](Node *C) { forEachNode(C, Fn); });
}

void ir::forEachNode(const Node *Root, const std::function<void(const Node *)> &Fn) {
  Fn(Root);
  forEachChild(Root, [&Fn](const Node *C) { forEachNode(C, Fn); });
}

void ir::replaceChild(Node *Parent, Node *Old, Node *New) {
  assert(Parent && Old && New && "replaceChild on null");
  bool Found = false;
  auto Swap = [&](Node *&Slot) {
    if (Slot == Old && !Found) {
      Slot = New;
      Found = true;
    }
  };
  switch (Parent->kind()) {
  case NodeKind::Literal:
  case NodeKind::VarRef:
  case NodeKind::Go:
    break;
  case NodeKind::Setq:
    Swap(cast<SetqNode>(Parent)->ValueExpr);
    break;
  case NodeKind::If: {
    auto *I = cast<IfNode>(Parent);
    Swap(I->Test);
    Swap(I->Then);
    Swap(I->Else);
    break;
  }
  case NodeKind::Progn:
    for (Node *&C : cast<PrognNode>(Parent)->Forms)
      Swap(C);
    break;
  case NodeKind::Lambda: {
    auto *L = cast<LambdaNode>(Parent);
    for (auto &O : L->Optionals)
      Swap(O.Default);
    Swap(L->Body);
    break;
  }
  case NodeKind::Call: {
    auto *C = cast<CallNode>(Parent);
    if (C->CalleeExpr)
      Swap(C->CalleeExpr);
    for (Node *&AN : C->Args)
      Swap(AN);
    break;
  }
  case NodeKind::Caseq: {
    auto *C = cast<CaseqNode>(Parent);
    Swap(C->Key);
    for (auto &Cl : C->Clauses)
      Swap(Cl.Body);
    Swap(C->Default);
    break;
  }
  case NodeKind::Catcher: {
    auto *C = cast<CatcherNode>(Parent);
    Swap(C->TagExpr);
    Swap(C->Body);
    break;
  }
  case NodeKind::ProgBody:
    for (auto &I : cast<ProgBodyNode>(Parent)->Items)
      if (I.Stmt)
        Swap(I.Stmt);
    break;
  case NodeKind::Return:
    Swap(cast<ReturnNode>(Parent)->ValueExpr);
    break;
  }
  assert(Found && "replaceChild: Old is not a child of Parent");
  New->Parent = Parent;
  dirtySpine(Parent);
}

void ir::dirtySpine(Node *N) {
  for (Node *A = N; A; A = A->Parent)
    A->Dirty = true;
}

void ir::detachSubtree(Node *Sub) {
  forEachNode(Sub, [](Node *N) {
    Variable *V = nullptr;
    if (auto *VR = dyn_cast<VarRefNode>(N))
      V = VR->Var;
    else if (auto *SQ = dyn_cast<SetqNode>(N))
      V = SQ->Var;
    if (!V)
      return;
    for (auto It = V->Refs.begin(); It != V->Refs.end(); ++It)
      if (*It == N) {
        V->Refs.erase(It);
        break;
      }
    if (N->kind() == NodeKind::Setq && V->Written) {
      bool StillWritten = false;
      for (Node *R : V->Refs)
        StillWritten |= R->kind() == NodeKind::Setq;
      if (!StillWritten) {
        // The variable just became read-only; its remaining reads turn
        // pure, so the analysis cached above them is stale.
        V->Written = false;
        for (Node *R : V->Refs)
          dirtySpine(R);
      }
    }
  });
}

void ir::recomputeParents(Node *Root) {
  forEachChild(Root, [Root](Node *C) {
    C->Parent = Root;
    recomputeParents(C);
  });
}

void ir::recomputeVariableRefs(Function &F) {
  for (Variable *V : F.variables()) {
    V->Refs.clear();
    V->Written = false;
    V->Binder = nullptr;
  }
  forEachNode(F.Root, [](Node *N) {
    if (auto *VR = dyn_cast<VarRefNode>(N)) {
      VR->Var->Refs.push_back(VR);
    } else if (auto *SQ = dyn_cast<SetqNode>(N)) {
      SQ->Var->Refs.push_back(SQ);
      SQ->Var->Written = true;
    } else if (auto *L = dyn_cast<LambdaNode>(N)) {
      for (Variable *P : L->allParams())
        P->Binder = L;
    }
  });
}

//===----------------------------------------------------------------------===//
// Cloning
//===----------------------------------------------------------------------===//

namespace {

struct Cloner {
  explicit Cloner(Function &F) : F(F) {}

  Function &F;
  std::unordered_map<const Variable *, Variable *> VarMap;
  std::unordered_map<const ProgBodyNode *, ProgBodyNode *> BodyMap;
  /// Go/Return nodes whose targets may need remapping once every ProgBody
  /// inside the subtree has been cloned.
  std::vector<GoNode *> Gos;
  std::vector<ReturnNode *> Returns;

  /// Cross-module hooks, identity when unset: Module::clone re-interns
  /// every symbol and re-allocates every heap datum in the target module's
  /// tables, and maps free variables too (a clone into another module must
  /// share nothing with the source).
  std::function<const sexpr::Symbol *(const sexpr::Symbol *)> MapSym;
  std::function<sexpr::Value(sexpr::Value)> MapVal;
  bool MapAllVars = false;

  const sexpr::Symbol *mapSym(const sexpr::Symbol *S) {
    return MapSym && S ? MapSym(S) : S;
  }
  sexpr::Value mapVal(sexpr::Value V) { return MapVal ? MapVal(V) : V; }

  Variable *mapVar(Variable *V) {
    auto It = VarMap.find(V);
    if (It != VarMap.end())
      return It->second;
    if (!MapAllVars)
      return V;
    // Free in the cloned tree (no binder below the root being copied);
    // Binder stays null, flags are copied in a post-pass.
    Variable *NV = F.makeVariable(mapSym(V->name()), V->isSpecial());
    VarMap[V] = NV;
    return NV;
  }

  Node *clone(const Node *N) {
    switch (N->kind()) {
    case NodeKind::Literal:
      return withLoc(N, F.makeLiteral(mapVal(cast<LiteralNode>(N)->Datum)));
    case NodeKind::VarRef:
      return withLoc(N, F.makeVarRef(mapVar(cast<VarRefNode>(N)->Var)));
    case NodeKind::Setq: {
      auto *S = cast<SetqNode>(N);
      return withLoc(N, F.makeSetq(mapVar(S->Var), clone(S->ValueExpr)));
    }
    case NodeKind::If: {
      auto *I = cast<IfNode>(N);
      return withLoc(N, F.makeIf(clone(I->Test), clone(I->Then), clone(I->Else)));
    }
    case NodeKind::Progn: {
      std::vector<Node *> Forms;
      for (const Node *C : cast<PrognNode>(N)->Forms)
        Forms.push_back(clone(C));
      return withLoc(N, F.makeProgn(std::move(Forms)));
    }
    case NodeKind::Lambda: {
      const auto *L = cast<LambdaNode>(N);
      LambdaNode *NL = F.makeLambda();
      NL->Strategy = L->Strategy;
      for (Variable *P : L->Required) {
        Variable *NP = F.makeVariable(mapSym(P->name()), P->isSpecial());
        NP->Binder = NL;
        VarMap[P] = NP;
        NL->Required.push_back(NP);
      }
      for (const auto &O : L->Optionals) {
        Variable *NP = F.makeVariable(mapSym(O.Var->name()), O.Var->isSpecial());
        NP->Binder = NL;
        VarMap[O.Var] = NP;
        Node *NDefault = O.Default ? clone(O.Default) : nullptr;
        if (NDefault)
          NDefault->Parent = NL;
        NL->Optionals.push_back({NP, NDefault});
      }
      if (L->Rest) {
        Variable *NP = F.makeVariable(mapSym(L->Rest->name()), L->Rest->isSpecial());
        NP->Binder = NL;
        VarMap[L->Rest] = NP;
        NL->Rest = NP;
      }
      NL->Body = clone(L->Body);
      NL->Body->Parent = NL;
      return withLoc(N, NL);
    }
    case NodeKind::Call: {
      const auto *C = cast<CallNode>(N);
      std::vector<Node *> Args;
      for (const Node *AN : C->Args)
        Args.push_back(clone(AN));
      if (C->Name)
        return withLoc(N, F.makeCall(mapSym(C->Name), std::move(Args)));
      return withLoc(N, F.makeCallExpr(clone(C->CalleeExpr), std::move(Args)));
    }
    case NodeKind::Caseq: {
      const auto *C = cast<CaseqNode>(N);
      std::vector<CaseqNode::Clause> Clauses;
      for (const auto &Cl : C->Clauses) {
        std::vector<sexpr::Value> Keys;
        Keys.reserve(Cl.Keys.size());
        for (sexpr::Value K : Cl.Keys)
          Keys.push_back(mapVal(K));
        Clauses.push_back({std::move(Keys), clone(Cl.Body)});
      }
      return withLoc(N, F.makeCaseq(clone(C->Key), std::move(Clauses), clone(C->Default)));
    }
    case NodeKind::Catcher: {
      const auto *C = cast<CatcherNode>(N);
      return withLoc(N, F.makeCatcher(clone(C->TagExpr), clone(C->Body)));
    }
    case NodeKind::ProgBody: {
      const auto *P = cast<ProgBodyNode>(N);
      std::vector<ProgBodyNode::Item> Items;
      for (const auto &I : P->Items)
        Items.push_back({mapSym(I.Tag), I.Stmt ? clone(I.Stmt) : nullptr});
      ProgBodyNode *NP = F.makeProgBody(std::move(Items));
      BodyMap[P] = NP;
      return withLoc(N, NP);
    }
    case NodeKind::Go: {
      const auto *G = cast<GoNode>(N);
      GoNode *NG = F.makeGo(mapSym(G->Tag), G->Target);
      Gos.push_back(NG);
      return withLoc(N, NG);
    }
    case NodeKind::Return: {
      const auto *R = cast<ReturnNode>(N);
      ReturnNode *NR = F.makeReturn(clone(R->ValueExpr), R->Target);
      Returns.push_back(NR);
      return withLoc(N, NR);
    }
    }
    assert(false && "unhandled node kind in clone");
    return nullptr;
  }

  Node *withLoc(const Node *Src, Node *Dst) {
    Dst->Loc = Src->Loc;
    return Dst;
  }

  void fixupTargets() {
    for (GoNode *G : Gos) {
      auto It = BodyMap.find(G->Target);
      if (It != BodyMap.end())
        G->Target = It->second;
    }
    for (ReturnNode *R : Returns) {
      auto It = BodyMap.find(R->Target);
      if (It != BodyMap.end())
        R->Target = It->second;
    }
  }
};

/// Carries annotations and dirty bits from \p O onto its clone \p N by
/// walking the two identically-shaped trees in lockstep. Ann.PdlOkp points
/// into the source tree and is dropped (it is only live between annotate
/// and codegen, never across a reclaim or module clone).
void copyAnnotations(const Node *O, Node *N) {
  N->Ann = O->Ann;
  N->Ann.PdlOkp = nullptr;
  N->Dirty = O->Dirty;
  std::vector<Node *> NC;
  forEachChild(N, [&NC](Node *C) { NC.push_back(C); });
  size_t I = 0;
  forEachChild(O, [&](const Node *C) { copyAnnotations(C, NC[I++]); });
}

/// Variable annotations the factories do not rebuild. Referent lists and
/// Written are reconstructed exactly by the clone itself.
void copyVariableFlags(
    const std::unordered_map<const Variable *, Variable *> &VarMap) {
  for (const auto &[OldV, NewV] : VarMap) {
    NewV->HeapAllocated = OldV->HeapAllocated;
    NewV->VarRep = OldV->VarRep;
    NewV->Tn = OldV->Tn;
  }
}

} // namespace

Node *ir::cloneTree(Function &F, const Node *N) {
  Cloner C(F);
  Node *Copy = C.clone(N);
  C.fixupTargets();
  return Copy;
}

size_t Function::reclaim() {
  if (!Root)
    return 0;
  // Move the old arena (and variable list) aside; the factories below
  // repopulate fresh ones. Everything not reachable from Root — the
  // garbage that tree surgery left behind — dies when OldA goes out of
  // scope.
  NodeArena OldA = std::move(A);
  Vars.clear();
  LambdaNode *OldRoot = Root;
  size_t Freed = OldA.allocatedBytes();

  Cloner C(*this);
  // Free variables (no binder: globals and specials) live in the old arena
  // too, so they get fresh storage up front; bound ones are remapped as
  // the clone reaches their binders.
  forEachNode(static_cast<const Node *>(OldRoot), [&](const Node *N) {
    Variable *V = nullptr;
    if (const auto *VR = dyn_cast<VarRefNode>(N))
      V = VR->Var;
    else if (const auto *SQ = dyn_cast<SetqNode>(N))
      V = SQ->Var;
    if (!V || V->Binder || C.VarMap.count(V))
      return;
    C.VarMap[V] = makeVariable(V->name(), V->isSpecial());
  });
  Node *NewRoot = C.clone(OldRoot);
  C.fixupTargets();
  copyVariableFlags(C.VarMap);
  copyAnnotations(OldRoot, NewRoot);

  Root = cast<LambdaNode>(NewRoot);
  Root->Parent = nullptr;
  return Freed;
}

size_t ir::treeSize(const Node *Root) {
  size_t N = 0;
  forEachNode(Root, [&N](const Node *) { ++N; });
  return N;
}

void Module::clone(Module &Out) const {
  assert(Out.Functions.empty() && "clone target must be a fresh module");

  // Symbols are re-interned once and cached; heap data is deep-copied
  // (makeRatio preserves the Den != 1 invariant, so a ratio round-trips
  // as a ratio).
  std::unordered_map<const sexpr::Symbol *, const sexpr::Symbol *> SymCache;
  auto MapSym = [&](const sexpr::Symbol *S) -> const sexpr::Symbol * {
    auto [It, New] = SymCache.try_emplace(S, nullptr);
    if (New)
      It->second = Out.Syms.intern(S->name());
    return It->second;
  };
  std::function<sexpr::Value(sexpr::Value)> MapVal =
      [&](sexpr::Value V) -> sexpr::Value {
    switch (V.kind()) {
    case sexpr::ValueKind::Nil:
    case sexpr::ValueKind::Fixnum:
    case sexpr::ValueKind::Flonum:
      return V;
    case sexpr::ValueKind::Symbol:
      return sexpr::Value::symbol(MapSym(V.symbol()));
    case sexpr::ValueKind::String:
      return Out.DataHeap.string(V.stringValue());
    case sexpr::ValueKind::Ratio:
      return Out.DataHeap.makeRatio(V.ratio().Num, V.ratio().Den);
    case sexpr::ValueKind::Cons: {
      const sexpr::Cons *C = V.consCell();
      return Out.DataHeap.cons(MapVal(C->Car), MapVal(C->Cdr), C->Loc);
    }
    }
    return V;
  };

  for (const sexpr::Symbol *S : Specials)
    Out.Specials.push_back(MapSym(S));

  for (const auto &FP : Functions) {
    const Function &F = *FP;
    Function *NF = Out.addFunction(F.name());
    if (!F.Root)
      continue;
    Cloner C(*NF);
    C.MapSym = MapSym;
    C.MapVal = MapVal;
    C.MapAllVars = true;
    Node *NewRoot = C.clone(F.Root);
    C.fixupTargets();
    copyVariableFlags(C.VarMap);
    copyAnnotations(F.Root, NewRoot);
    NF->Root = cast<LambdaNode>(NewRoot);
    NF->Root->Parent = nullptr;
  }
}

namespace {

/// Temporary root provider for Module::collectGarbage: the literal slots
/// of every live function tree (visited in place, so the moving collector
/// can rewrite them).
struct ModuleRoots : sexpr::RootProvider {
  Module &M;
  explicit ModuleRoots(Module &M) : M(M) {}
  void visitRoots(const std::function<void(sexpr::Value &)> &Visit) override {
    for (const auto &FP : M.functions())
      forEachNode(static_cast<Node *>(FP->Root), [&](Node *N) {
        if (auto *L = dyn_cast<LiteralNode>(N))
          Visit(L->Datum);
        else if (auto *C = dyn_cast<CaseqNode>(N))
          for (CaseqNode::Clause &Cl : C->Clauses)
            for (sexpr::Value &K : Cl.Keys)
              Visit(K);
      });
  }
};

} // namespace

void Module::collectGarbage() {
  ModuleRoots Roots(*this);
  DataHeap.registerRootProvider(&Roots);
  DataHeap.collect();
  DataHeap.unregisterRootProvider(&Roots);
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

bool ir::verify(Function &F, DiagEngine &Diags) {
  size_t Before = Diags.diagnostics().size();
  if (!F.Root) {
    Diags.error("function '" + F.name() + "' has no root lambda");
    return false;
  }

  // Parent links.
  forEachNode(static_cast<Node *>(F.Root), [&](Node *N) {
    forEachChild(N, [&](Node *C) {
      if (C->Parent != N)
        Diags.error("bad parent link under " + std::string(nodeKindName(N->kind())) +
                    " in '" + F.name() + "'");
    });
  });

  // Each variable reference points at a Variable whose referent list
  // contains it; bound variables' binders are in the tree.
  std::unordered_set<const Node *> InTree;
  forEachNode(static_cast<const Node *>(F.Root),
              [&InTree](const Node *N) { InTree.insert(N); });

  forEachNode(static_cast<Node *>(F.Root), [&](Node *N) {
    Variable *V = nullptr;
    if (auto *VR = dyn_cast<VarRefNode>(N))
      V = VR->Var;
    else if (auto *SQ = dyn_cast<SetqNode>(N))
      V = SQ->Var;
    if (V) {
      bool Listed = false;
      for (Node *R : V->Refs)
        Listed |= (R == N);
      if (!Listed)
        Diags.error("variable " + V->debugName() + " missing referent back-pointer");
      if (V->Binder && !InTree.count(V->Binder))
        Diags.error("variable " + V->debugName() + " bound outside the tree");
    }
    if (auto *G = dyn_cast<GoNode>(N)) {
      if (!InTree.count(G->Target))
        Diags.error("go target progbody not in tree");
      else if (!G->Target->hasTag(G->Tag))
        Diags.error("go to unknown tag '" + G->Tag->name() + "'");
    }
    if (auto *R = dyn_cast<ReturnNode>(N)) {
      if (!InTree.count(R->Target))
        Diags.error("return target progbody not in tree");
    }
    if (auto *C = dyn_cast<CallNode>(N)) {
      if ((C->Name != nullptr) == (C->CalleeExpr != nullptr))
        Diags.error("call node with malformed callee");
    }
  });

  return Diags.diagnostics().size() == Before;
}
