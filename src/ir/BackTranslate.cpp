//===- ir/BackTranslate.cpp -----------------------------------------------===//

#include "ir/BackTranslate.h"

#include "sexpr/Printer.h"

using namespace s1lisp;
using namespace s1lisp::ir;
using sexpr::Value;

namespace {

class BackTranslator {
public:
  BackTranslator(Function &F, BackTranslateOptions Opts)
      : F(F), H(F.dataHeap()), Syms(F.symbols()), Opts(Opts) {}

  Value run(const Node *N) { return translate(N); }

  Value sym(const char *Name) { return Value::symbol(Syms.intern(Name)); }

  Value varName(const Variable *V) {
    if (Opts.VariableIds)
      return Value::symbol(Syms.intern(V->debugName()));
    return Value::symbol(V->name());
  }

  Value lambdaList(const LambdaNode *L) {
    // An empty parameter list prints as "()", matching the paper's
    // transcripts; "()" reads back as NIL, i.e. the empty list.
    if (L->Required.empty() && L->Optionals.empty() && !L->Rest)
      return sym("()");
    std::vector<Value> Params;
    for (const Variable *P : L->Required)
      Params.push_back(varName(P));
    if (!L->Optionals.empty()) {
      Params.push_back(sym("&optional"));
      for (const auto &O : L->Optionals) {
        if (O.Default && !isNilLiteral(O.Default))
          Params.push_back(H.list({varName(O.Var), translate(O.Default)}));
        else
          Params.push_back(varName(O.Var));
      }
    }
    if (L->Rest) {
      Params.push_back(sym("&rest"));
      Params.push_back(varName(L->Rest));
    }
    return H.list(Params);
  }

  Value translateLambda(const LambdaNode *L) {
    return H.list({sym("lambda"), lambdaList(L), translate(L->Body)});
  }

private:
  static bool isNilLiteral(const Node *N) {
    const auto *Lit = dyn_cast<LiteralNode>(N);
    return Lit && Lit->Datum.isNil();
  }

  Value translate(const Node *N) {
    switch (N->kind()) {
    case NodeKind::Literal: {
      Value D = cast<LiteralNode>(N)->Datum;
      bool SelfEval = D.isNumber() || D.isString();
      if (SelfEval && !Opts.QuoteNumbers)
        return D;
      return H.list({Value::symbol(Syms.quote()), D});
    }
    case NodeKind::VarRef:
      return varName(cast<VarRefNode>(N)->Var);
    case NodeKind::Setq: {
      const auto *S = cast<SetqNode>(N);
      return H.list({sym("setq"), varName(S->Var), translate(S->ValueExpr)});
    }
    case NodeKind::If: {
      const auto *I = cast<IfNode>(N);
      return H.list({sym("if"), translate(I->Test), translate(I->Then),
                     translate(I->Else)});
    }
    case NodeKind::Progn: {
      std::vector<Value> Items{sym("progn")};
      for (const Node *C : cast<PrognNode>(N)->Forms)
        Items.push_back(translate(C));
      return H.list(Items);
    }
    case NodeKind::Lambda:
      return translateLambda(cast<LambdaNode>(N));
    case NodeKind::Call: {
      const auto *C = cast<CallNode>(N);
      std::vector<Value> Items;
      if (C->Name) {
        Items.push_back(Value::symbol(C->Name));
      } else if (C->CalleeExpr->kind() == NodeKind::Lambda) {
        Items.push_back(translate(C->CalleeExpr));
      } else if (C->CalleeExpr->kind() == NodeKind::VarRef) {
        // The paper's transcripts render a call through a variable as
        // (f) rather than (funcall f).
        Items.push_back(varName(cast<VarRefNode>(C->CalleeExpr)->Var));
      } else {
        // A computed callee back-translates as funcall.
        Items.push_back(sym("funcall"));
        Items.push_back(translate(C->CalleeExpr));
      }
      for (const Node *AN : C->Args)
        Items.push_back(translate(AN));
      return H.list(Items);
    }
    case NodeKind::Caseq: {
      const auto *C = cast<CaseqNode>(N);
      std::vector<Value> Items{sym("caseq"), translate(C->Key)};
      for (const auto &Cl : C->Clauses) {
        Value Keys = H.list(Cl.Keys);
        Items.push_back(H.list({Keys, translate(Cl.Body)}));
      }
      Items.push_back(H.list({Value::symbol(Syms.t()), translate(C->Default)}));
      return H.list(Items);
    }
    case NodeKind::Catcher: {
      const auto *C = cast<CatcherNode>(N);
      return H.list({sym("catcher"), translate(C->TagExpr), translate(C->Body)});
    }
    case NodeKind::ProgBody: {
      std::vector<Value> Items{sym("progbody")};
      for (const auto &I : cast<ProgBodyNode>(N)->Items) {
        if (I.Tag)
          Items.push_back(Value::symbol(I.Tag));
        else
          Items.push_back(translate(I.Stmt));
      }
      return H.list(Items);
    }
    case NodeKind::Go:
      return H.list({sym("go"), Value::symbol(cast<GoNode>(N)->Tag)});
    case NodeKind::Return:
      return H.list({sym("return"), translate(cast<ReturnNode>(N)->ValueExpr)});
    }
    assert(false && "unhandled node kind");
    return Value::nil();
  }

  Function &F;
  sexpr::Heap &H;
  sexpr::SymbolTable &Syms;
  BackTranslateOptions Opts;
};

} // namespace

Value ir::backTranslate(Function &F, const Node *N, BackTranslateOptions Opts) {
  return BackTranslator(F, Opts).run(N);
}

Value ir::backTranslateFunction(Function &F, BackTranslateOptions Opts) {
  BackTranslator BT(F, Opts);
  std::vector<Value> Items{BT.sym("defun"),
                           Value::symbol(F.symbols().intern(F.name())),
                           BT.lambdaList(F.Root), BT.run(F.Root->Body)};
  return F.dataHeap().list(Items);
}

std::string ir::backTranslateToString(Function &F, const Node *N,
                                      BackTranslateOptions Opts) {
  return sexpr::toPrettyString(backTranslate(F, N, Opts));
}
