//===- ir/StableHash.cpp --------------------------------------------------===//

#include "ir/StableHash.h"

#include "sexpr/Printer.h"

#include <algorithm>
#include <set>
#include <unordered_map>

using namespace s1lisp;
using namespace s1lisp::ir;

uint64_t ir::hashCombine(uint64_t Seed, uint64_t V) {
  // splitmix64 finalizer over the xored accumulation; good diffusion and
  // byte-order independent.
  uint64_t X = Seed ^ (V + 0x9e3779b97f4a7c15ull + (Seed << 6) + (Seed >> 2));
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ull;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebull;
  X ^= X >> 31;
  return X;
}

uint64_t ir::hashString(uint64_t Seed, std::string_view S) {
  uint64_t H = hashCombine(Seed, S.size());
  for (char C : S)
    H = hashCombine(H, static_cast<uint8_t>(C));
  return H;
}

namespace {

class Hasher {
public:
  uint64_t run(const LambdaNode *Root) {
    uint64_t H = 0x517cc1b727220a95ull;
    return hashNode(H, Root);
  }

private:
  /// Normalized ids in traversal order: binders number their parameters
  /// before the body, so consistently renamed locals normalize alike.
  /// Free variables are numbered at first reference (and their names are
  /// hashed separately — renaming a global IS a semantic change).
  std::unordered_map<const Variable *, uint64_t> VarId;
  std::unordered_map<const Node *, uint64_t> NodeId;
  uint64_t NextVar = 0;
  uint64_t NextNode = 0;

  uint64_t varRef(uint64_t H, const Variable *V) {
    auto [It, Fresh] = VarId.try_emplace(V, NextVar);
    if (Fresh)
      ++NextVar;
    H = hashCombine(H, It->second);
    H = hashCombine(H, V->isSpecial() ? 1 : 0);
    // Dynamic scoping and global references bind by symbol name.
    if (V->isSpecial() || !V->Binder)
      H = hashString(H, V->name()->name());
    return H;
  }

  uint64_t nodeId(const Node *N) {
    auto [It, Fresh] = NodeId.try_emplace(N, NextNode);
    if (Fresh)
      ++NextNode;
    return It->second;
  }

  uint64_t hashNode(uint64_t H, const Node *N) {
    if (!N)
      return hashCombine(H, 0xdeadull);
    H = hashCombine(H, nodeId(N));
    H = hashCombine(H, static_cast<uint64_t>(N->kind()));
    switch (N->kind()) {
    case NodeKind::Literal:
      return hashString(H, sexpr::toString(cast<LiteralNode>(N)->Datum));
    case NodeKind::VarRef:
      return varRef(H, cast<VarRefNode>(N)->Var);
    case NodeKind::Setq: {
      const auto *S = cast<SetqNode>(N);
      H = varRef(H, S->Var);
      return hashNode(H, S->ValueExpr);
    }
    case NodeKind::If: {
      const auto *I = cast<IfNode>(N);
      H = hashNode(H, I->Test);
      H = hashNode(H, I->Then);
      return hashNode(H, I->Else);
    }
    case NodeKind::Progn: {
      const auto *P = cast<PrognNode>(N);
      H = hashCombine(H, P->Forms.size());
      for (const Node *F : P->Forms)
        H = hashNode(H, F);
      return H;
    }
    case NodeKind::Lambda: {
      const auto *L = cast<LambdaNode>(N);
      H = hashCombine(H, L->Required.size());
      for (const Variable *V : L->Required)
        H = varRef(H, V);
      H = hashCombine(H, L->Optionals.size());
      for (const LambdaNode::OptionalParam &O : L->Optionals) {
        H = varRef(H, O.Var);
        H = hashNode(H, O.Default);
      }
      H = hashCombine(H, L->Rest ? 1 : 0);
      if (L->Rest)
        H = varRef(H, L->Rest);
      return hashNode(H, L->Body);
    }
    case NodeKind::Call: {
      const auto *C = cast<CallNode>(N);
      if (C->Name)
        H = hashString(hashCombine(H, 1), C->Name->name());
      else
        H = hashNode(hashCombine(H, 2), C->CalleeExpr);
      H = hashCombine(H, C->Args.size());
      for (const Node *A : C->Args)
        H = hashNode(H, A);
      return H;
    }
    case NodeKind::Caseq: {
      const auto *C = cast<CaseqNode>(N);
      H = hashNode(H, C->Key);
      H = hashCombine(H, C->Clauses.size());
      for (const CaseqNode::Clause &Cl : C->Clauses) {
        H = hashCombine(H, Cl.Keys.size());
        for (sexpr::Value K : Cl.Keys)
          H = hashString(H, sexpr::toString(K));
        H = hashNode(H, Cl.Body);
      }
      return hashNode(H, C->Default);
    }
    case NodeKind::Catcher: {
      const auto *C = cast<CatcherNode>(N);
      H = hashNode(H, C->TagExpr);
      return hashNode(H, C->Body);
    }
    case NodeKind::ProgBody: {
      const auto *P = cast<ProgBodyNode>(N);
      H = hashCombine(H, P->Items.size());
      for (const ProgBodyNode::Item &I : P->Items) {
        if (I.Tag) {
          // Tags normalize by position, so renamed tags hash alike; Go
          // sites hash the positional index they jump to.
          H = hashCombine(H, 0x7a6ull);
        } else {
          H = hashNode(hashCombine(H, 0x57ull), I.Stmt);
        }
      }
      return H;
    }
    case NodeKind::Go: {
      const auto *G = cast<GoNode>(N);
      // Targets are enclosing progbodys, already numbered by the preorder
      // walk; the tag's index within the target pins the jump position.
      H = hashCombine(H, nodeId(G->Target));
      uint64_t TagIdx = ~0ull;
      if (G->Target)
        for (size_t I = 0; I < G->Target->Items.size(); ++I)
          if (G->Target->Items[I].Tag == G->Tag) {
            TagIdx = I;
            break;
          }
      return hashCombine(H, TagIdx);
    }
    case NodeKind::Return: {
      const auto *R = cast<ReturnNode>(N);
      H = hashCombine(H, nodeId(R->Target));
      return hashNode(H, R->ValueExpr);
    }
    }
    return H;
  }
};

} // namespace

uint64_t ir::stableFunctionHash(const Function &F) {
  Hasher H;
  return H.run(F.Root);
}

std::vector<std::string> ir::referencedGlobalNames(const Function &F) {
  std::set<std::string> Names;
  forEachNode(static_cast<const Node *>(F.Root),
              [&](const Node *N) {
                if (const auto *C = dyn_cast<CallNode>(N)) {
                  if (C->Name)
                    Names.insert(C->Name->name());
                } else if (const auto *L = dyn_cast<LiteralNode>(N)) {
                  if (L->Datum.isSymbol())
                    Names.insert(L->Datum.symbol()->name());
                }
              });
  // The machine-trig rewrite can introduce these call names after the
  // hash is taken; pin their resolution into every signature.
  Names.insert("sinc$f");
  Names.insert("cosc$f");
  return {Names.begin(), Names.end()};
}
