//===- analysis/Analysis.h - Source-program analyses ------------*- C++ -*-===//
///
/// \file
/// The machine-independent analyses of Table 1: environment analysis
/// (variable read/write sets live on ir::Variable via recomputeVariableRefs),
/// side-effects analysis, complexity analysis (object-code size estimates
/// feeding the optimizer's duplication heuristics), and tail-recursion
/// analysis (which calls are "parameter-passing gotos").
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_ANALYSIS_ANALYSIS_H
#define S1LISP_ANALYSIS_ANALYSIS_H

#include "ir/Ir.h"

namespace s1lisp {
namespace analysis {

/// Computes the side-effect classification of executing \p N, on demand
/// (no caching — trees are small and the optimizer mutates them freely).
ir::EffectInfo effectsOf(const ir::Node *N);

/// Estimated object-code size of \p N (complexity analysis): a unit per
/// node with extra weight for calls and dispatch constructs.
unsigned complexityOf(const ir::Node *N);

/// Runs all per-node analyses over \p F, filling Ann.Effects,
/// Ann.Complexity, and Ann.Tail, and rebuilding variable referent lists.
void analyze(ir::Function &F);

/// Incremental re-analysis (§5's "incremental re-analysis"): recomputes
/// Ann.Effects and Ann.Complexity for \p N and any dirty descendants from
/// the cached values of clean subtrees, then clears the dirty bits. Relies
/// on the spine invariant the IR mutators maintain — a clean node's entire
/// subtree cache is valid — so a clean node is skipped without recursing.
void ensureAnalyzed(ir::Node *N);

/// Cached effect/complexity queries: ensureAnalyzed, then read the
/// annotation. The meta-evaluator's rules use these instead of the pure
/// recursive walks when incremental analysis is on.
ir::EffectInfo effectsOfCached(ir::Node *N);
unsigned complexityOfCached(ir::Node *N);

/// Debug cross-check: compares every clean node's cached Ann.Effects /
/// Ann.Complexity against a from-scratch recompute, and every Variable's
/// referent list and Written flag against a fresh tree walk. Prints a
/// diagnostic and aborts on any divergence.
void verifyIncremental(ir::Function &F);

/// True when the S1LISP_VERIFY_ANALYSIS environment variable requests the
/// cross-check (set to anything but "0"); cached per process.
bool verifyAnalysisRequested();

/// Marks Ann.Tail: a node is in tail position when its value is the value
/// of the enclosing lambda. Calls marked Tail compile as jumps.
void analyzeTails(ir::Function &F);

/// Structural equality of two subtrees: same shapes, same variables, eql
/// literals. Used by redundant-test elimination and CSE.
bool equalTrees(const ir::Node *A, const ir::Node *B);

} // namespace analysis
} // namespace s1lisp

#endif // S1LISP_ANALYSIS_ANALYSIS_H
