//===- analysis/Analysis.cpp ----------------------------------------------===//

#include "analysis/Analysis.h"

#include "ir/Primitives.h"
#include "stats/Stats.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <unordered_set>

S1_STAT(NumAnalyzeRuns, "analysis.runs", "full re-analyses of a function tree");

using namespace s1lisp;
using namespace s1lisp::analysis;
using namespace s1lisp::ir;

EffectInfo analysis::effectsOf(const Node *N) {
  EffectInfo E;
  switch (N->kind()) {
  case NodeKind::Literal:
    return E;

  case NodeKind::VarRef: {
    // Reading a deep-bound special observes dynamic state; so does
    // reading any lexical variable that is somewhere assigned — moving
    // such a read across a setq would change its value.
    const Variable *V = cast<VarRefNode>(N)->Var;
    if (V->isSpecial() || V->Written)
      E.Bits |= EffectReads;
    return E;
  }

  case NodeKind::Setq: {
    const auto *S = cast<SetqNode>(N);
    E = effectsOf(S->ValueExpr);
    E.Bits |= EffectWrites;
    return E;
  }

  case NodeKind::If:
  case NodeKind::Progn:
  case NodeKind::Caseq:
  case NodeKind::ProgBody: {
    forEachChild(N, [&E](const Node *C) { E |= effectsOf(C); });
    return E;
  }

  case NodeKind::Lambda:
    // The lambda VALUE is a closure: creating it allocates. Its body runs
    // only when called; the call site accounts for body effects.
    E.Bits |= EffectAllocates;
    return E;

  case NodeKind::Catcher: {
    const auto *C = cast<CatcherNode>(N);
    E = effectsOf(C->TagExpr);
    E |= effectsOf(C->Body);
    // A catcher stops only throws with a matching tag; conservatively the
    // control bit stays if the body has one.
    return E;
  }

  case NodeKind::Go:
  case NodeKind::Return: {
    E.Bits |= EffectControl;
    if (const auto *R = dyn_cast<ReturnNode>(N))
      E |= effectsOf(R->ValueExpr);
    return E;
  }

  case NodeKind::Call: {
    const auto *C = cast<CallNode>(N);
    for (const Node *A : C->Args)
      E |= effectsOf(A);
    if (C->CalleeExpr) {
      if (const auto *L = dyn_cast<LambdaNode>(C->CalleeExpr)) {
        // Calling a manifest lambda (LET): the body executes here. Optional
        // defaults may execute too.
        for (const auto &O : L->Optionals)
          if (O.Default)
            E |= effectsOf(O.Default);
        E |= effectsOf(L->Body);
      } else {
        E |= effectsOf(C->CalleeExpr);
        E.Bits |= EffectUnknownCall;
      }
      return E;
    }
    if (const PrimInfo *P = lookupPrim(C->Name)) {
      E |= P->Effects;
      return E;
    }
    // User-defined or unknown function: assume the worst.
    E.Bits |= EffectUnknownCall | EffectWrites | EffectReads | EffectAllocates |
              EffectControl;
    return E;
  }
  }
  return E;
}

unsigned analysis::complexityOf(const Node *N) {
  unsigned Weight = 1;
  switch (N->kind()) {
  case NodeKind::Call:
    Weight = cast<CallNode>(N)->Name && lookupPrim(cast<CallNode>(N)->Name)
                 ? 2  // in-line primitive
                 : 5; // full call sequence
    break;
  case NodeKind::Caseq:
    Weight = 4; // dispatch table
    break;
  case NodeKind::Lambda:
    Weight = 3; // potential closure construction
    break;
  case NodeKind::Catcher:
    Weight = 4;
    break;
  default:
    break;
  }
  unsigned Total = Weight;
  forEachChild(N, [&Total](const Node *C) { Total += complexityOf(C); });
  return Total;
}

namespace {

/// Node-local effect recomputation from the children's *cached* values.
/// Mirrors effectsOf case for case; the only recursion is through the
/// annotations, so re-deriving one node is O(children).
EffectInfo localEffects(const Node *N) {
  EffectInfo E;
  switch (N->kind()) {
  case NodeKind::Literal:
    return E;
  case NodeKind::VarRef: {
    const Variable *V = cast<VarRefNode>(N)->Var;
    if (V->isSpecial() || V->Written)
      E.Bits |= EffectReads;
    return E;
  }
  case NodeKind::Setq:
    E = cast<SetqNode>(N)->ValueExpr->Ann.Effects;
    E.Bits |= EffectWrites;
    return E;
  case NodeKind::If:
  case NodeKind::Progn:
  case NodeKind::Caseq:
  case NodeKind::ProgBody:
  case NodeKind::Catcher:
    forEachChild(N, [&E](const Node *C) { E |= C->Ann.Effects; });
    return E;
  case NodeKind::Lambda:
    E.Bits |= EffectAllocates;
    return E;
  case NodeKind::Go:
  case NodeKind::Return:
    E.Bits |= EffectControl;
    if (const auto *R = dyn_cast<ReturnNode>(N))
      E |= R->ValueExpr->Ann.Effects;
    return E;
  case NodeKind::Call: {
    const auto *C = cast<CallNode>(N);
    for (const Node *A : C->Args)
      E |= A->Ann.Effects;
    if (C->CalleeExpr) {
      if (const auto *L = dyn_cast<LambdaNode>(C->CalleeExpr)) {
        for (const auto &O : L->Optionals)
          if (O.Default)
            E |= O.Default->Ann.Effects;
        E |= L->Body->Ann.Effects;
      } else {
        E |= C->CalleeExpr->Ann.Effects;
        E.Bits |= EffectUnknownCall;
      }
      return E;
    }
    if (const PrimInfo *P = lookupPrim(C->Name)) {
      E |= P->Effects;
      return E;
    }
    E.Bits |= EffectUnknownCall | EffectWrites | EffectReads |
              EffectAllocates | EffectControl;
    return E;
  }
  }
  return E;
}

unsigned localComplexity(const Node *N) {
  unsigned Weight = 1;
  switch (N->kind()) {
  case NodeKind::Call:
    Weight = cast<CallNode>(N)->Name && lookupPrim(cast<CallNode>(N)->Name)
                 ? 2
                 : 5;
    break;
  case NodeKind::Caseq:
    Weight = 4;
    break;
  case NodeKind::Lambda:
    Weight = 3;
    break;
  case NodeKind::Catcher:
    Weight = 4;
    break;
  default:
    break;
  }
  unsigned Total = Weight;
  forEachChild(N, [&Total](const Node *C) { Total += C->Ann.Complexity; });
  return Total;
}

void markTails(Node *N, bool Tail) {
  N->Ann.Tail = Tail;
  switch (N->kind()) {
  case NodeKind::If: {
    auto *I = cast<IfNode>(N);
    markTails(I->Test, false);
    markTails(I->Then, Tail);
    markTails(I->Else, Tail);
    return;
  }
  case NodeKind::Progn: {
    auto *P = cast<PrognNode>(N);
    for (size_t J = 0; J < P->Forms.size(); ++J)
      markTails(P->Forms[J], Tail && J + 1 == P->Forms.size());
    return;
  }
  case NodeKind::Caseq: {
    auto *C = cast<CaseqNode>(N);
    markTails(C->Key, false);
    for (auto &Cl : C->Clauses)
      markTails(Cl.Body, Tail);
    markTails(C->Default, Tail);
    return;
  }
  case NodeKind::Lambda: {
    auto *L = cast<LambdaNode>(N);
    for (auto &O : L->Optionals)
      if (O.Default)
        markTails(O.Default, false);
    // A lambda body is in tail position of that lambda.
    markTails(L->Body, true);
    return;
  }
  case NodeKind::Call: {
    auto *C = cast<CallNode>(N);
    if (C->CalleeExpr) {
      if (auto *L = dyn_cast<LambdaNode>(C->CalleeExpr)) {
        // A LET's body inherits the call's tail position.
        for (auto &O : L->Optionals)
          if (O.Default)
            markTails(O.Default, false);
        L->Ann.Tail = false;
        markTails(L->Body, Tail);
      } else {
        markTails(C->CalleeExpr, false);
      }
    }
    for (Node *A : C->Args)
      markTails(A, false);
    return;
  }
  case NodeKind::Catcher: {
    auto *C = cast<CatcherNode>(N);
    markTails(C->TagExpr, false);
    // The body's value is delivered through the catcher's unwind check, so
    // calls inside are not straight tail jumps.
    markTails(C->Body, false);
    return;
  }
  case NodeKind::ProgBody: {
    auto *P = cast<ProgBodyNode>(N);
    for (auto &I : P->Items)
      if (I.Stmt)
        markTails(I.Stmt, false);
    return;
  }
  case NodeKind::Setq:
    markTails(cast<SetqNode>(N)->ValueExpr, false);
    return;
  case NodeKind::Return:
    // The progbody's value position; treat the value expression as non-tail
    // (it must return through the progbody bookkeeping).
    markTails(cast<ReturnNode>(N)->ValueExpr, false);
    return;
  case NodeKind::Literal:
  case NodeKind::VarRef:
  case NodeKind::Go:
    return;
  }
}

} // namespace

void analysis::analyzeTails(Function &F) { markTails(F.Root, false); }

void analysis::analyze(Function &F) {
  stats::PhaseTimer Timer("analysis");
  ++NumAnalyzeRuns;
  recomputeVariableRefs(F);
  forEachNode(static_cast<Node *>(F.Root), [](Node *N) {
    N->Ann.Effects = effectsOf(N);
    N->Ann.Complexity = complexityOf(N);
    N->Dirty = false;
  });
  analyzeTails(F);
}

void analysis::ensureAnalyzed(Node *N) {
  if (!N->Dirty)
    return;
  forEachChild(N, [](Node *C) { ensureAnalyzed(C); });
  N->Ann.Effects = localEffects(N);
  N->Ann.Complexity = localComplexity(N);
  N->Dirty = false;
}

EffectInfo analysis::effectsOfCached(Node *N) {
  ensureAnalyzed(N);
  return N->Ann.Effects;
}

unsigned analysis::complexityOfCached(Node *N) {
  ensureAnalyzed(N);
  return N->Ann.Complexity;
}

bool analysis::verifyAnalysisRequested() {
  static const bool Requested = [] {
    const char *V = getenv("S1LISP_VERIFY_ANALYSIS");
    return V && std::string_view(V) != "0";
  }();
  return Requested;
}

void analysis::verifyIncremental(Function &F) {
  // Clean nodes must carry exactly what a from-scratch walk derives.
  forEachNode(static_cast<Node *>(F.Root), [&F](Node *N) {
    if (N->Dirty)
      return;
    EffectInfo Pure = effectsOf(N);
    unsigned Cx = complexityOf(N);
    if (N->Ann.Effects.Bits != Pure.Bits || N->Ann.Complexity != Cx) {
      fprintf(stderr,
              "S1LISP_VERIFY_ANALYSIS: stale cache on %s in '%s': effects "
              "%02x cached vs %02x full, complexity %u cached vs %u full\n",
              nodeKindName(N->kind()), F.name().c_str(), N->Ann.Effects.Bits,
              Pure.Bits, N->Ann.Complexity, Cx);
      abort();
    }
  });

  // Referent lists and Written flags must match a fresh tree walk exactly
  // (as multisets — incremental maintenance may order refs differently).
  std::unordered_map<const Variable *, std::vector<const Node *>> Fresh;
  std::unordered_set<const Variable *> FreshWritten;
  forEachNode(static_cast<const Node *>(F.Root), [&](const Node *N) {
    if (const auto *VR = dyn_cast<VarRefNode>(N)) {
      Fresh[VR->Var].push_back(N);
    } else if (const auto *SQ = dyn_cast<SetqNode>(N)) {
      Fresh[SQ->Var].push_back(N);
      FreshWritten.insert(SQ->Var);
    }
  });
  for (const Variable *V : F.variables()) {
    auto It = Fresh.find(V);
    std::vector<const Node *> Want =
        It == Fresh.end() ? std::vector<const Node *>() : It->second;
    std::vector<const Node *> Have(V->Refs.begin(), V->Refs.end());
    std::sort(Want.begin(), Want.end());
    std::sort(Have.begin(), Have.end());
    bool WantWritten = FreshWritten.count(V) != 0;
    if (Have != Want || V->Written != WantWritten) {
      fprintf(stderr,
              "S1LISP_VERIFY_ANALYSIS: stale referent list for %s in '%s': "
              "%zu refs tracked vs %zu in tree, written %d vs %d\n",
              V->debugName().c_str(), F.name().c_str(), Have.size(),
              Want.size(), int(V->Written), int(WantWritten));
      abort();
    }
  }
}

bool analysis::equalTrees(const Node *A, const Node *B) {
  if (A == B)
    return true;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case NodeKind::Literal:
    return sexpr::eql(cast<LiteralNode>(A)->Datum, cast<LiteralNode>(B)->Datum);
  case NodeKind::VarRef:
    return cast<VarRefNode>(A)->Var == cast<VarRefNode>(B)->Var;
  case NodeKind::Setq:
    return cast<SetqNode>(A)->Var == cast<SetqNode>(B)->Var &&
           equalTrees(cast<SetqNode>(A)->ValueExpr, cast<SetqNode>(B)->ValueExpr);
  case NodeKind::If: {
    const auto *IA = cast<IfNode>(A), *IB = cast<IfNode>(B);
    return equalTrees(IA->Test, IB->Test) && equalTrees(IA->Then, IB->Then) &&
           equalTrees(IA->Else, IB->Else);
  }
  case NodeKind::Progn: {
    const auto *PA = cast<PrognNode>(A), *PB = cast<PrognNode>(B);
    if (PA->Forms.size() != PB->Forms.size())
      return false;
    for (size_t J = 0; J < PA->Forms.size(); ++J)
      if (!equalTrees(PA->Forms[J], PB->Forms[J]))
        return false;
    return true;
  }
  case NodeKind::Call: {
    const auto *CA = cast<CallNode>(A), *CB = cast<CallNode>(B);
    if (CA->Name != CB->Name || CA->Args.size() != CB->Args.size())
      return false;
    if ((CA->CalleeExpr == nullptr) != (CB->CalleeExpr == nullptr))
      return false;
    if (CA->CalleeExpr && !equalTrees(CA->CalleeExpr, CB->CalleeExpr))
      return false;
    for (size_t J = 0; J < CA->Args.size(); ++J)
      if (!equalTrees(CA->Args[J], CB->Args[J]))
        return false;
    return true;
  }
  default:
    // Lambdas, progbodies, catchers, gos: identity only (alpha-comparison
    // is more machinery than redundant-test elimination needs).
    return false;
  }
}
