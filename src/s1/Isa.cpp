//===- s1/Isa.cpp ---------------------------------------------------------===//

#include "s1/Isa.h"

#include "sexpr/Printer.h"

#include <cassert>

using namespace s1lisp;
using namespace s1lisp::s1;

bool s1::isAllocatableReg(uint8_t R) {
  // R7..R26 are free; R0/R1 scratch for the code generator; fixed roles
  // and RT registers are handed out only deliberately.
  return R >= 7 && R <= 26;
}

bool s1::isRtReg(uint8_t R) { return R == RTA || R == RTB; }

const char *s1::regName(uint8_t R) {
  static const char *Names[NumRegs] = {
      "R0",  "R1",  "RV",  "R3",  "RTA", "R5",  "RTB", "R7",
      "R8",  "R9",  "R10", "R11", "R12", "R13", "R14", "R15",
      "R16", "R17", "R18", "R19", "R20", "R21", "R22", "R23",
      "R24", "R25", "R26", "ENV", "SP",  "FP",  "TP",  "R31"};
  return R < NumRegs ? Names[R] : "R?";
}

const char *s1::tagName(Tag T) {
  switch (T) {
  case Tag::Nil:
    return "*:DTP-NIL";
  case Tag::Fixnum:
    return "*:DTP-FIXNUM";
  case Tag::Symbol:
    return "*:DTP-SYMBOL";
  case Tag::Cons:
    return "*:DTP-LIST";
  case Tag::SingleFlonum:
    return "*:DTP-SINGLE-FLONUM";
  case Tag::String:
    return "*:DTP-STRING";
  case Tag::Ratio:
    return "*:DTP-RATIO";
  case Tag::ArrayF:
    return "*:DTP-ARRAY";
  case Tag::Function:
    return "*:DTP-FUNCTION";
  case Tag::Environment:
    return "*:DTP-ENVIRONMENT";
  }
  return "*:DTP-?";
}

bool s1::isTwoAndAHalfAddress(Opcode Op) {
  switch (Op) {
  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::MULT:
  case Opcode::DIV:
  case Opcode::FADD:
  case Opcode::FSUB:
  case Opcode::FMULT:
  case Opcode::FDIV:
  case Opcode::FMAX:
  case Opcode::FMIN:
    return true;
  default:
    return false;
  }
}

bool s1::validOperandPattern(const Instruction &I) {
  if (!isTwoAndAHalfAddress(I.Op))
    return true;
  auto IsGeneral = [](const Operand &O) {
    return O.M == Operand::Mode::Reg || O.M == Operand::Mode::Mem ||
           O.M == Operand::Mode::Imm || O.M == Operand::Mode::FImm;
  };
  // Two-operand form: OP M1,M2 meaning M1 := M1 op M2.
  if (I.X.M == Operand::Mode::None)
    return IsGeneral(I.A) && IsGeneral(I.B) && I.A.M != Operand::Mode::Imm &&
           I.A.M != Operand::Mode::FImm;
  // Three-operand form: destination or first source must be RTA/RTB.
  if (!IsGeneral(I.A) || !IsGeneral(I.B) || !IsGeneral(I.X))
    return false;
  return I.A.isRt() || I.B.isRt();
}

void AsmFunction::placeLabel(int L, std::string Comment) {
  Instruction I;
  I.Op = Opcode::LABEL;
  I.A = Operand::label(L);
  I.Comment = std::move(Comment);
  Code.push_back(std::move(I));
}

bool AsmFunction::finalize(std::string &Error) {
  LabelPos.assign(NextLabel, -1);
  for (size_t Idx = 0; Idx < Code.size(); ++Idx) {
    const Instruction &I = Code[Idx];
    if (I.Op == Opcode::LABEL) {
      assert(I.A.Label >= 0 && I.A.Label < NextLabel && "label out of range");
      LabelPos[I.A.Label] = static_cast<int>(Idx);
    }
    if (!validOperandPattern(I)) {
      Error = Name + ": instruction " + std::to_string(Idx) + " (" +
              opcodeName(I.Op) +
              ") violates the 2 1/2-address operand pattern";
      return false;
    }
  }
  for (const Instruction &I : Code) {
    for (const Operand *O : {&I.A, &I.B, &I.X}) {
      if (O->M == Operand::Mode::Label &&
          (O->Label < 0 || O->Label >= NextLabel || LabelPos[O->Label] < 0)) {
        Error = Name + ": branch to an unplaced label";
        return false;
      }
    }
  }
  return true;
}

unsigned AsmFunction::countOpcode(Opcode Op) const {
  unsigned N = 0;
  for (const Instruction &I : Code)
    N += I.Op == Op;
  return N;
}

const char *s1::rtErrorMessage(RtError E) {
  switch (E) {
  case RtError::WrongNumberOfArguments:
    return "wrong number of arguments";
  case RtError::WrongTypeOfArgument:
    return "wrong type of argument";
  case RtError::UndefinedFunction:
    return "undefined function";
  case RtError::UnboundVariable:
    return "unbound variable";
  case RtError::DivisionByZero:
    return "division by zero";
  case RtError::IndexOutOfBounds:
    return "array index out of bounds";
  case RtError::UncaughtThrow:
    return "uncaught throw";
  case RtError::UserError:
    return "lisp error";
  case RtError::NotAFunction:
    return "attempt to call a non-function";
  }
  return "unknown runtime error";
}

int Program::indexOf(const std::string &Name) const {
  for (size_t I = 0; I < Functions.size(); ++I)
    if (Functions[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

const char *s1::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::MOV:
    return "MOV";
  case Opcode::MOVTAG:
    return "MOVP";
  case Opcode::GETTAG:
    return "GETTAG";
  case Opcode::LEA:
    return "LEA";
  case Opcode::PUSH:
    return "PUSH";
  case Opcode::POP:
    return "POP";
  case Opcode::ADD:
    return "ADD";
  case Opcode::SUB:
    return "SUB";
  case Opcode::MULT:
    return "MULT";
  case Opcode::DIV:
    return "DIV";
  case Opcode::FADD:
    return "FADD";
  case Opcode::FSUB:
    return "FSUB";
  case Opcode::FMULT:
    return "FMULT";
  case Opcode::FDIV:
    return "FDIV";
  case Opcode::FMAX:
    return "FMAX";
  case Opcode::FMIN:
    return "FMIN";
  case Opcode::FNEG:
    return "FNEG";
  case Opcode::FABS:
    return "FABS";
  case Opcode::FSQRT:
    return "FSQRT";
  case Opcode::FSIN:
    return "FSIN";
  case Opcode::FCOS:
    return "FCOS";
  case Opcode::FEXP:
    return "FEXP";
  case Opcode::FLOG:
    return "FLOG";
  case Opcode::FATAN:
    return "FATAN";
  case Opcode::ITOF:
    return "ITOF";
  case Opcode::FTOI:
    return "FTOI";
  case Opcode::JMPA:
    return "JMPA";
  case Opcode::JMPZ:
    return "JMPZ";
  case Opcode::FJMPZ:
    return "FJMPZ";
  case Opcode::CALL:
    return "%CALL";
  case Opcode::CALLPTR:
    return "%CALLPTR";
  case Opcode::TAILCALL:
    return "%TAILCALL";
  case Opcode::TAILCALLPTR:
    return "%TAILCALLPTR";
  case Opcode::RET:
    return "%RET";
  case Opcode::ALLOC:
    return "ALLOC";
  case Opcode::SYSCALL:
    return "%SYSCALL";
  case Opcode::HALT:
    return "HALT";
  case Opcode::LABEL:
    return "LABEL";
  }
  return "?";
}

const char *s1::condName(Cond C) {
  switch (C) {
  case Cond::EQ:
    return "EQ";
  case Cond::NEQ:
    return "NEQ";
  case Cond::LT:
    return "LTR";
  case Cond::GT:
    return "GTR";
  case Cond::LE:
    return "LEQ";
  case Cond::GE:
    return "GEQ";
  }
  return "?";
}

std::string s1::printOperand(const Operand &O) {
  switch (O.M) {
  case Operand::Mode::None:
    return "";
  case Operand::Mode::Reg:
    return regName(O.R);
  case Operand::Mode::Imm:
    return "(? " + std::to_string(O.Imm) + ")";
  case Operand::Mode::FImm:
    return "(? " + sexpr::formatFlonum(O.F) + ")";
  case Operand::Mode::Mem: {
    std::string S = "(" + std::string(regName(O.R)) + " " + std::to_string(O.Imm);
    if (O.Index != 0xFF) {
      S += " ";
      S += regName(O.Index);
      if (O.Scale)
        S += "^" + std::to_string(O.Scale);
    }
    S += ")";
    return S;
  }
  case Operand::Mode::Label:
    return "L" + std::to_string(O.Label);
  }
  return "";
}

std::string s1::printListing(const AsmFunction &F) {
  std::string Out;
  Out += ";;; Function " + F.Name + "   [frame " + std::to_string(F.FrameSize) +
         " words, args " + std::to_string(F.MinArgs) + ".." +
         (F.HasRest ? "*" : std::to_string(F.MaxArgs)) + "]\n";
  for (const Instruction &I : F.Code) {
    std::string Line;
    if (I.Op == Opcode::LABEL) {
      Line = "L" + std::to_string(I.A.Label);
    } else {
      Line = "        (";
      Line += opcodeName(I.Op);
      if (I.Op == Opcode::JMPZ || I.Op == Opcode::FJMPZ) {
        Line = "        ((" + std::string(opcodeName(I.Op)) + " " +
               condName(I.C) + ")";
      }
      for (const Operand *O : {&I.A, &I.B, &I.X}) {
        std::string Txt = printOperand(*O);
        if (!Txt.empty())
          Line += " " + Txt;
      }
      Line += ")";
    }
    if (!I.Comment.empty()) {
      if (Line.size() < 48)
        Line.append(48 - Line.size(), ' ');
      Line += " ;" + I.Comment;
    }
    Out += Line + "\n";
  }
  return Out;
}
