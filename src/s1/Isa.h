//===- s1/Isa.h - The simulated S-1/64 target ---------------------*- C++ -*-===//
///
/// \file
/// The target machine description: a word-addressed variant of the S-1
/// Mark IIA ("S-1/64"). Deviations from the real hardware are documented
/// in DESIGN.md; the properties the paper's techniques depend on are kept:
///
///  * 32 general-purpose registers, two of which (RTA = R4, RTB = R6) are
///    the "bottleneck registers" of the 2 1/2-address arithmetic format;
///  * tagged pointers: a 5-bit type tag plus an address;
///  * rich memory operands: base register + displacement + optional
///    scaled index, so an array element fetch is a single operand;
///  * FSIN/FCOS taking arguments in *cycles*, not radians (§5's
///    machine-inspired sin$f → sinc$f transformation);
///  * separate stack and heap regions, so "does this pointer point into
///    the stack" (pdl-number certification, §6.3) is an address range test.
///
/// Words are 64-bit. Pointers put the tag in bits 63..59 and a word
/// address in bits 31..0; fixnums are immediate with a 32-bit payload;
/// floats are IEEE doubles held raw (boxed behind DtpSingleFlonum
/// pointers when in LISP pointer form).
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_S1_ISA_H
#define S1LISP_S1_ISA_H

#include "sexpr/Value.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace s1lisp {
namespace s1 {

//===----------------------------------------------------------------------===//
// Registers
//===----------------------------------------------------------------------===//

enum Reg : uint8_t {
  // Fixed-role registers.
  RV = 2,   ///< return value
  RTA = 4,  ///< 2 1/2-address bottleneck register A (also arg count at entry)
  RTB = 6,  ///< 2 1/2-address bottleneck register B
  ENV = 27, ///< current lexical environment (closure chain)
  SP = 28,  ///< stack pointer (grows upward)
  FP = 29,  ///< frame pointer
  TP = 30,  ///< temporaries pointer (scratch / pdl-number area)
  NumRegs = 32,
};

/// Registers TNBIND may hand out freely.
bool isAllocatableReg(uint8_t R);
bool isRtReg(uint8_t R);
const char *regName(uint8_t R);

//===----------------------------------------------------------------------===//
// Tags
//===----------------------------------------------------------------------===//

enum class Tag : uint8_t {
  Nil = 0,    ///< the all-zero word is NIL
  Fixnum = 1, ///< immediate 32-bit payload
  Symbol = 2,
  Cons = 3,
  SingleFlonum = 4,
  String = 5,
  Ratio = 6,
  ArrayF = 7,
  Function = 8, ///< closure object [code index, captured ENV]
  Environment = 9,
};

constexpr uint64_t NilWord = 0;
constexpr unsigned TagShift = 59;
constexpr uint64_t AddrMask = 0xFFFFFFFFull;

inline uint64_t makePointer(Tag T, uint64_t Addr) {
  return (static_cast<uint64_t>(T) << TagShift) | (Addr & AddrMask);
}
inline Tag tagOf(uint64_t Word) {
  return static_cast<Tag>(Word >> TagShift);
}
inline uint64_t addrOf(uint64_t Word) { return Word & AddrMask; }
inline uint64_t makeFixnum(int64_t V) {
  return makePointer(Tag::Fixnum, static_cast<uint64_t>(V) & AddrMask);
}
inline int64_t fixnumValue(uint64_t Word) {
  return static_cast<int32_t>(Word & AddrMask); // sign-extend 32 bits
}
const char *tagName(Tag T);

//===----------------------------------------------------------------------===//
// Instructions
//===----------------------------------------------------------------------===//

enum class Opcode : uint8_t {
  // Data movement.
  MOV,    ///< dst := src
  MOVTAG, ///< dst := pointer(tag=imm, addr of EA of src operand) — the
          ///< paper's MOVP: "creates a pointer to its second operand,
          ///< installing the indicated type in the tag field".
  GETTAG, ///< dst := tag(src) as raw int
  LEA,    ///< dst := effective address of src operand (raw)
  PUSH,   ///< mem[SP++] := src
  POP,    ///< dst := mem[--SP]
  // Raw integer arithmetic (2 1/2-address rules apply).
  ADD, SUB, MULT, DIV,
  // Raw double arithmetic (2 1/2-address rules apply).
  FADD, FSUB, FMULT, FDIV, FMAX, FMIN,
  // Unary float (dst, src — exempt from the RT rule, like the S-1's
  // one-operand-calculation instructions).
  FNEG, FABS, FSQRT, FSIN, FCOS, FEXP, FLOG, FATAN,
  // Conversions between raw ints and raw doubles.
  ITOF, FTOI,
  // Control.
  JMPA,  ///< unconditional jump to label
  JMPZ,  ///< conditional jump: compare raw ints per Cond
  FJMPZ, ///< conditional jump: compare raw doubles per Cond
  CALL,  ///< push return address; jump to function by index (imm)
  CALLPTR, ///< call through a Function-tagged closure word
  TAILCALL, ///< the "parameter-passing goto" (§2): move the K new
            ///< arguments (imm0) over the current frame's argument area,
            ///< unwind the frame, and jump to function imm1
  TAILCALLPTR, ///< tail call through a closure word (src operand)
  RET,   ///< pop return address and jump
  // Storage.
  ALLOC, ///< dst := pointer(tag=imm0, fresh block of imm1 words)
  // Runtime services (the compiler's SQ-routines).
  SYSCALL, ///< imm selects a Syscall; args/results per syscall contract
  HALT,
  // Assembler pseudo-op.
  LABEL,
};

/// Conditions for JMPZ/FJMPZ.
enum class Cond : uint8_t { EQ, NEQ, LT, GT, LE, GE };

/// Runtime services (the compiler's SQ-routines). Stack arguments are
/// pushed left to right; sub-operation codes and argument counts travel in
/// the instruction's B/X immediate operands; results arrive in RV.
enum class Syscall : uint8_t {
  GenericAdd,     ///< 2 pointer args -> pointer
  GenericSub,
  GenericMul,
  GenericDiv,
  GenericArith2,  ///< B=ArithCode (floor family, expt, max, min); 2 args
  GenericUnary,   ///< B=UnaryCode (neg abs 1+ 1- sqrt float); 1 arg
  GenericCompare, ///< B=Cond; 2 args -> t/nil
  GenericNumPred, ///< B=PredCode (zerop oddp evenp plusp minusp); 1 arg
  ConsFlonum,     ///< 1 raw double arg -> flonum pointer (heap box)
  ConsFixnum,     ///< 1 raw int arg -> fixnum word (range-checked)
  UnboxFloat,     ///< 1 pointer arg -> raw double (type-checked coercion)
  UnboxFixnum,    ///< 1 pointer arg -> raw int (type-checked coercion)
  Cons,           ///< 2 args -> cons pointer
  ListPrim,       ///< B=ListCode, X=argc; args on stack
  Certify,        ///< 1 arg: copy stack-allocated object to the heap when
                  ///< the pointer points into the stack (§6.3)
  SpecBind,       ///< 2 args: symbol, value — push a deep binding
  SpecUnbind,     ///< B=count — pop that many bindings
  SpecLookup,     ///< 1 arg: symbol -> raw ADDRESS of the binding cell,
                  ///< the cached pointer of §4.4; traps if unbound
  MakeClosure,    ///< B=function index; 1 arg: env -> function pointer
  MakeEnv,        ///< B=size; 1 arg: parent env or nil -> env pointer
  MakeRestList,   ///< 2 raw args: base addr, count -> list of stack words
  SpreadList,     ///< 1 arg: proper list; pushes elements, RV=count (raw)
  ArrayMake,      ///< 2 args: dim0, dim1 (nil for rank 1) -> array pointer
  Error,          ///< B=RtError code; aborts execution
  Print,          ///< 1 arg: prints to the machine's output buffer
  Throw,          ///< 2 args: tag, value — unwind to a matching catcher
  PushCatch,      ///< 1 arg: tag; B=handler label id
  PopCatch,       ///< no args
};

/// Sub-operation codes for GenericArith2.
enum class ArithCode : int64_t { Floor, Ceiling, Truncate, Round, Mod, Rem, Expt, Max, Min };
/// Sub-operation codes for GenericUnary.
enum class UnaryCode : int64_t { Neg, Abs, Add1, Sub1, Sqrt, ToFloat };
/// Sub-operation codes for GenericNumPred.
enum class PredCode : int64_t { Zerop, Oddp, Evenp, Plusp, Minusp };
/// Sub-operation codes for ListPrim.
enum class ListCode : int64_t {
  Length, Reverse, Append2, Member, Assoc, Nth, NthCdr, Last, Equal, ListN
};

/// One operand: register, immediate, memory (base + displacement
/// [+ index << scale]), or a label reference.
struct Operand {
  enum class Mode : uint8_t { None, Reg, Imm, FImm, Mem, Label } M = Mode::None;
  uint8_t R = 0;       ///< Reg; Mem base
  int64_t Imm = 0;     ///< Imm payload; Mem displacement (words)
  double F = 0;        ///< FImm payload
  uint8_t Index = 0;   ///< Mem index register (0xFF = none)
  uint8_t Scale = 0;   ///< Mem index shift (0..3)
  int Label = -1;

  static Operand reg(uint8_t R) {
    Operand O;
    O.M = Mode::Reg;
    O.R = R;
    return O;
  }
  static Operand imm(int64_t V) {
    Operand O;
    O.M = Mode::Imm;
    O.Imm = V;
    return O;
  }
  static Operand fimm(double V) {
    Operand O;
    O.M = Mode::FImm;
    O.F = V;
    return O;
  }
  static Operand mem(uint8_t Base, int64_t Disp) {
    Operand O;
    O.M = Mode::Mem;
    O.R = Base;
    O.Imm = Disp;
    O.Index = 0xFF;
    return O;
  }
  static Operand memIndexed(uint8_t Base, int64_t Disp, uint8_t Index,
                            uint8_t Scale = 0) {
    Operand O = mem(Base, Disp);
    O.Index = Index;
    O.Scale = Scale;
    return O;
  }
  static Operand label(int L) {
    Operand O;
    O.M = Mode::Label;
    O.Label = L;
    return O;
  }

  bool isReg(uint8_t Which) const { return M == Mode::Reg && R == Which; }
  bool isRt() const { return M == Mode::Reg && (R == RTA || R == RTB); }
};

/// One instruction plus its listing comment.
struct Instruction {
  Opcode Op;
  Cond C = Cond::EQ;
  Operand A, B, X; ///< up to three operands (dst first)
  std::string Comment;
};

/// True for the binary arithmetic opcodes bound by the 2 1/2-address rule.
bool isTwoAndAHalfAddress(Opcode Op);

/// Validates the paper's operand patterns for a 2 1/2-address instruction:
///   OP M1,M2 / OP RT,M1,M2 / OP M1,RT,M2.
bool validOperandPattern(const Instruction &I);

//===----------------------------------------------------------------------===//
// Assembled functions and programs
//===----------------------------------------------------------------------===//

/// A compiled function: a linear instruction list with resolved labels.
class AsmFunction {
public:
  std::string Name;
  std::vector<Instruction> Code;
  unsigned FrameSize = 0;   ///< frame slots at FP+0..FrameSize-1
  unsigned MinArgs = 0;
  unsigned MaxArgs = 0;     ///< fixed params (optionals included)
  bool HasRest = false;

  /// Label id -> instruction index; built by finalize().
  std::vector<int> LabelPos;

  int newLabel() { return NextLabel++; }
  void emit(Instruction I) { Code.push_back(std::move(I)); }
  void placeLabel(int L, std::string Comment = "");

  /// Resolves labels; verifies operand patterns. Returns false and fills
  /// \p Error on malformed code.
  bool finalize(std::string &Error);

  /// Counts instructions with opcode \p Op (the MOV-count metric of §6.1).
  unsigned countOpcode(Opcode Op) const;

private:
  int NextLabel = 0;
};

/// Runtime error codes raised via Syscall::Error or machine traps.
enum class RtError : int64_t {
  WrongNumberOfArguments = 1,
  WrongTypeOfArgument = 2,
  UndefinedFunction = 3,
  UnboundVariable = 4,
  DivisionByZero = 5,
  IndexOutOfBounds = 6,
  UncaughtThrow = 7,
  UserError = 8,
  NotAFunction = 9,
};
const char *rtErrorMessage(RtError E);

/// A linked program: functions plus a static data image.
struct Program {
  std::vector<AsmFunction> Functions;
  /// Static words at addresses [StaticBase, StaticBase+Static.size()).
  std::vector<uint64_t> Static;
  /// Where each interned symbol's static value cell lives.
  std::unordered_map<const sexpr::Symbol *, uint64_t> SymbolAddr;
  /// Static string objects: (address, contents).
  std::vector<std::pair<uint64_t, std::string>> StringAddr;
  /// Function name -> index.
  int indexOf(const std::string &Name) const;
};

/// Renders a function as a parenthesized assembly listing in the style of
/// the paper's Table 4.
std::string printListing(const AsmFunction &F);

const char *opcodeName(Opcode Op);
const char *condName(Cond C);
std::string printOperand(const Operand &O);

} // namespace s1
} // namespace s1lisp

#endif // S1LISP_S1_ISA_H
