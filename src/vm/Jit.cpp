//===- vm/Jit.cpp - x86-64 template JIT over the XInsn stream -------------===//
//
// Code layout of one compiled program:
//
//   [entry thunk]  [epilogue]  [gc stub]  [ok/err/halt stubs]
//   [function 0: insn templates..., fall-off trailer, trap stubs]
//   [function 1: ...] ...
//
// Calling convention of the generated code (SysV, callee-saved pins):
//
//   rbx = &Machine::Regs[0]      r13 = Machine*
//   r12 = &Machine::Memory[0]    r14 = Stats.Instructions (live)
//                                r15 = fuel limit
//
// The entry thunk loads the pins from the six C arguments and jumps to the
// template of the resume point; every exit goes through the shared
// epilogue, which writes the retired-instruction count back into
// MachineStats and returns a JitStatus in eax. Trap stubs additionally
// store the (function, decoded pc) of the boundary they represent so
// Machine::trap reports the same location the threaded engine would.
//
// Equivalence contract: each template retires the same architectural
// counter deltas and the same machine-state effects as the corresponding
// runThreaded handler, and every trap is raised at the same instruction
// boundary with the same message. States no compiled program can reach
// (corrupted SP/FP making the *stack bookkeeping itself* fault) may leave
// scratch registers or the shared mem()-Garbage cell differing — the
// threaded engine's behavior there is itself degenerate — but all counters
// and reachable state remain bit-identical.
//
//===----------------------------------------------------------------------===//

#include "vm/Jit.h"

#include "vm/Machine.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#if defined(__x86_64__) && (defined(__linux__) || defined(__APPLE__))
#define S1_JIT_AVAILABLE 1
#include <sys/mman.h>
#else
#define S1_JIT_AVAILABLE 0
#endif

using namespace s1lisp;
using namespace s1lisp::vm;
using namespace s1lisp::s1;

namespace s1lisp {
namespace vm {

bool jitAvailable() { return S1_JIT_AVAILABLE != 0; }

JitProgram::~JitProgram() {
#if S1_JIT_AVAILABLE
  if (Base)
    munmap(Base, MapLen);
#endif
}

const void *JitProgram::addr(int Func, int Pc) const {
  return FuncTable[static_cast<size_t>(Func)][Pc];
}

int JitProgram::invoke(uint64_t *Regs, uint64_t *Memory, Machine *M,
                       uint64_t Instructions, uint64_t Fuel,
                       const void *Start) const {
  using Fn = int (*)(uint64_t *, uint64_t *, Machine *, uint64_t, uint64_t,
                     const void *);
  auto F = reinterpret_cast<Fn>(Base + EntryOff);
  return F(Regs, Memory, M, Instructions, Fuel, Start);
}

namespace {

double jitAsDouble(uint64_t W) {
  double D;
  std::memcpy(&D, &W, sizeof(D));
  return D;
}

uint64_t jitFromDouble(double D) {
  uint64_t W;
  std::memcpy(&W, &D, sizeof(W));
  return W;
}

bool jitCondHolds(Cond C, int64_t Sign) {
  switch (C) {
  case Cond::EQ:
    return Sign == 0;
  case Cond::NEQ:
    return Sign != 0;
  case Cond::LT:
    return Sign < 0;
  case Cond::GT:
    return Sign > 0;
  case Cond::LE:
    return Sign <= 0;
  case Cond::GE:
    return Sign >= 0;
  }
  return false;
}

#if S1_JIT_AVAILABLE

// x86-64 register numbers.
enum : unsigned {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

// Condition codes (Jcc 0F 8x / CMOVcc 0F 4x).
enum : uint8_t {
  CC_B = 0x2,
  CC_AE = 0x3,
  CC_E = 0x4,
  CC_NE = 0x5,
  CC_BE = 0x6,
  CC_A = 0x7,
  CC_S = 0x8,
  CC_L = 0xC,
  CC_GE = 0xD,
  CC_LE = 0xE,
  CC_G = 0xF,
};

uint8_t ccFor(Cond C) {
  switch (C) {
  case Cond::EQ:
    return CC_E;
  case Cond::NEQ:
    return CC_NE;
  case Cond::LT:
    return CC_L;
  case Cond::GT:
    return CC_G;
  case Cond::LE:
    return CC_LE;
  case Cond::GE:
    return CC_GE;
  }
  return CC_E;
}

bool fitsI32(int64_t V) { return V >= INT32_MIN && V <= INT32_MAX; }

/// Minimal x86-64 emitter: exactly the encodings the templates need.
class Asm {
public:
  std::vector<uint8_t> B;

  size_t pos() const { return B.size(); }
  void u8(uint8_t V) { B.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      B.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      B.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void patch32(size_t At, int32_t V) {
    for (int I = 0; I < 4; ++I)
      B[At + I] = static_cast<uint8_t>(static_cast<uint32_t>(V) >> (8 * I));
  }

  void rex(bool W, unsigned Reg, unsigned Index, unsigned Base) {
    uint8_t R = 0x40 | (W ? 8 : 0) | ((Reg >> 3) << 2) | ((Index >> 3) << 1) |
                (Base >> 3);
    if (R != 0x40)
      u8(R);
  }

  /// op Reg, [Base + Index*2^Scale + Disp]; Index < 0 = none.
  void opMem(bool W, std::initializer_list<uint8_t> Op, unsigned Reg,
             unsigned Base, int Index, unsigned Scale, int32_t Disp) {
    rex(W, Reg, Index < 0 ? 0 : static_cast<unsigned>(Index), Base);
    for (uint8_t O : Op)
      u8(O);
    bool NeedSib = (Base & 7) == 4 || Index >= 0;
    unsigned Mod;
    if (Disp == 0 && (Base & 7) != 5)
      Mod = 0;
    else if (Disp >= -128 && Disp <= 127)
      Mod = 1;
    else
      Mod = 2;
    u8(static_cast<uint8_t>((Mod << 6) | ((Reg & 7) << 3) |
                            (NeedSib ? 4 : (Base & 7))));
    if (NeedSib)
      u8(static_cast<uint8_t>((Scale << 6) |
                              ((Index < 0 ? 4u : (Index & 7u)) << 3) |
                              (Base & 7)));
    if (Mod == 1)
      u8(static_cast<uint8_t>(Disp));
    else if (Mod == 2)
      u32(static_cast<uint32_t>(Disp));
  }

  /// op Reg, Rm with mod=3 (register-direct).
  void opRR(bool W, std::initializer_list<uint8_t> Op, unsigned Reg,
            unsigned Rm) {
    rex(W, Reg, 0, Rm);
    for (uint8_t O : Op)
      u8(O);
    u8(static_cast<uint8_t>(0xC0 | ((Reg & 7) << 3) | (Rm & 7)));
  }

  void loadQ(unsigned R, unsigned Base, int Index, unsigned Scale,
             int32_t Disp) {
    opMem(true, {0x8B}, R, Base, Index, Scale, Disp);
  }
  void storeQ(unsigned R, unsigned Base, int Index, unsigned Scale,
              int32_t Disp) {
    opMem(true, {0x89}, R, Base, Index, Scale, Disp);
  }
  /// 32-bit load: zero-extends into the full register (addrOf()).
  void loadD(unsigned R, unsigned Base, int Index, unsigned Scale,
             int32_t Disp) {
    opMem(false, {0x8B}, R, Base, Index, Scale, Disp);
  }
  void lea(unsigned R, unsigned Base, int Index, unsigned Scale,
           int32_t Disp) {
    opMem(true, {0x8D}, R, Base, Index, Scale, Disp);
  }
  void movRR(unsigned D, unsigned S) { opRR(true, {0x8B}, D, S); }
  /// mov r32, r32 — zero-extends (the addrOf() idiom).
  void movRR32(unsigned D, unsigned S) { opRR(false, {0x8B}, D, S); }

  void movRI(unsigned R, uint64_t V) {
    if (V <= 0x7FFFFFFFull) { // mov r32, imm32 zero-extends
      rex(false, 0, 0, R);
      u8(static_cast<uint8_t>(0xB8 | (R & 7)));
      u32(static_cast<uint32_t>(V));
    } else if (static_cast<int64_t>(V) ==
               static_cast<int32_t>(static_cast<uint32_t>(V))) {
      rex(true, 0, 0, R); // mov r64, simm32
      u8(0xC7);
      u8(static_cast<uint8_t>(0xC0 | (R & 7)));
      u32(static_cast<uint32_t>(V));
    } else {
      rex(true, 0, 0, R); // movabs
      u8(static_cast<uint8_t>(0xB8 | (R & 7)));
      u64(V);
    }
  }

  /// 81/83 /Ext: add(0) or(1) and(4) sub(5) xor(6) cmp(7) reg, imm.
  void aluRI(uint8_t Ext, unsigned R, int32_t Imm) {
    rex(true, 0, 0, R);
    if (Imm >= -128 && Imm <= 127) {
      u8(0x83);
      u8(static_cast<uint8_t>(0xC0 | (Ext << 3) | (R & 7)));
      u8(static_cast<uint8_t>(Imm));
    } else {
      u8(0x81);
      u8(static_cast<uint8_t>(0xC0 | (Ext << 3) | (R & 7)));
      u32(static_cast<uint32_t>(Imm));
    }
  }
  void addRI(unsigned R, int32_t I) { aluRI(0, R, I); }
  void subRI(unsigned R, int32_t I) { aluRI(5, R, I); }
  void cmpRI(unsigned R, int32_t I) { aluRI(7, R, I); }

  /// Same, on a qword memory operand [Base+Disp].
  void aluMemI(uint8_t Ext, unsigned Base, int32_t Disp, int32_t Imm) {
    if (Imm >= -128 && Imm <= 127) {
      opMem(true, {0x83}, Ext, Base, -1, 0, Disp);
      u8(static_cast<uint8_t>(Imm));
    } else {
      opMem(true, {0x81}, Ext, Base, -1, 0, Disp);
      u32(static_cast<uint32_t>(Imm));
    }
  }

  void addRR(unsigned D, unsigned S) { opRR(true, {0x03}, D, S); }
  void subRR(unsigned D, unsigned S) { opRR(true, {0x2B}, D, S); }
  void cmpRR(unsigned A, unsigned Bb) { opRR(true, {0x3B}, A, Bb); }
  void testRR(unsigned A, unsigned Bb) { opRR(true, {0x85}, A, Bb); }
  void orRR(unsigned D, unsigned S) { opRR(true, {0x0B}, D, S); }
  void xorRR32(unsigned D, unsigned S) { opRR(false, {0x33}, D, S); }
  void negR(unsigned R) { opRR(true, {0xF7}, 3, R); }
  void incR(unsigned R) { opRR(true, {0xFF}, 0, R); }
  void movsxd(unsigned D, unsigned S) { opRR(true, {0x63}, D, S); }
  void imulRR(unsigned D, unsigned S) { opRR(true, {0x0F, 0xAF}, D, S); }
  void cmov(uint8_t CC, unsigned D, unsigned S) {
    opRR(true, {0x0F, static_cast<uint8_t>(0x40 | CC)}, D, S);
  }
  void shlRI(unsigned R, uint8_t N) {
    rex(true, 0, 0, R);
    u8(0xC1);
    u8(static_cast<uint8_t>(0xC0 | (4 << 3) | (R & 7)));
    u8(N);
  }
  void shrRI(unsigned R, uint8_t N) {
    rex(true, 0, 0, R);
    u8(0xC1);
    u8(static_cast<uint8_t>(0xC0 | (5 << 3) | (R & 7)));
    u8(N);
  }
  void incMemQ(unsigned Base, int32_t Disp) {
    opMem(true, {0xFF}, 0, Base, -1, 0, Disp);
  }
  /// cmp byte [Base+Disp], imm8.
  void cmpByteMemI(unsigned Base, int32_t Disp, uint8_t Imm) {
    opMem(false, {0x80}, 7, Base, -1, 0, Disp);
    u8(Imm);
  }
  /// cmp Reg, qword [Base+Disp].
  void cmpRM(unsigned R, unsigned Base, int32_t Disp) {
    opMem(true, {0x3B}, R, Base, -1, 0, Disp);
  }
  /// mov dword [Base+Disp], imm32.
  void storeDImm(unsigned Base, int32_t Disp, int32_t Imm) {
    opMem(false, {0xC7}, 0, Base, -1, 0, Disp);
    u32(static_cast<uint32_t>(Imm));
  }
  /// mov qword [Base+Disp], simm32.
  void storeQImm(unsigned Base, int32_t Disp, int32_t Imm) {
    opMem(true, {0xC7}, 0, Base, -1, 0, Disp);
    u32(static_cast<uint32_t>(Imm));
  }

  void jmpReg(unsigned R) { opRR(false, {0xFF}, 4, R); }
  void callReg(unsigned R) { opRR(false, {0xFF}, 2, R); }
  void ret() { u8(0xC3); }
  void pushR(unsigned R) {
    rex(false, 0, 0, R);
    u8(static_cast<uint8_t>(0x50 | (R & 7)));
  }
  void popR(unsigned R) {
    rex(false, 0, 0, R);
    u8(static_cast<uint8_t>(0x58 | (R & 7)));
  }

  /// Forward local jump; returns the rel32 position for bind().
  size_t jccL(uint8_t CC) {
    u8(0x0F);
    u8(static_cast<uint8_t>(0x80 | CC));
    size_t P = pos();
    u32(0);
    return P;
  }
  size_t jmpL() {
    u8(0xE9);
    size_t P = pos();
    u32(0);
    return P;
  }
  void bind(size_t P) { patch32(P, static_cast<int32_t>(pos() - (P + 4))); }

  /// Jump/call to an already-emitted absolute buffer offset.
  void jmpFixed(size_t TargetOff) {
    u8(0xE9);
    u32(static_cast<uint32_t>(
        static_cast<int64_t>(TargetOff) - static_cast<int64_t>(pos() + 4)));
  }
  void jccFixed(uint8_t CC, size_t TargetOff) {
    u8(0x0F);
    u8(static_cast<uint8_t>(0x80 | CC));
    u32(static_cast<uint32_t>(
        static_cast<int64_t>(TargetOff) - static_cast<int64_t>(pos() + 4)));
  }
  void callFixed(size_t TargetOff) {
    u8(0xE8);
    u32(static_cast<uint32_t>(
        static_cast<int64_t>(TargetOff) - static_cast<int64_t>(pos() + 4)));
  }
};

#endif // S1_JIT_AVAILABLE

} // namespace

/// Friend bridge into Machine: member offsets baked into generated code
/// plus the C++ helpers the templates call back into. (Machine is not
/// standard-layout — it holds references — so offsets are computed from a
/// live instance rather than offsetof.)
struct JitAccess {
  struct Offsets {
    int32_t CurFunc, Pc, Halted, GcPending, CachedT;
    int32_t Instr, Movs, Calls, TailCalls, Syscalls, SHW, PerOp0;
  };

  static int32_t off(const Machine &M, const void *Field) {
    return static_cast<int32_t>(reinterpret_cast<const char *>(Field) -
                                reinterpret_cast<const char *>(&M));
  }

  static Offsets offsets(const Machine &M) {
    Offsets O;
    O.CurFunc = off(M, &M.CurFunc);
    O.Pc = off(M, &M.Pc);
    O.Halted = off(M, &M.Halted);
    O.GcPending = off(M, &M.GcPending);
    O.CachedT = off(M, &M.CachedTWord);
    O.Instr = off(M, &M.Stats.Instructions);
    O.Movs = off(M, &M.Stats.Movs);
    O.Calls = off(M, &M.Stats.Calls);
    O.TailCalls = off(M, &M.Stats.TailCalls);
    O.Syscalls = off(M, &M.Stats.Syscalls);
    O.SHW = off(M, &M.Stats.StackHighWater);
    O.PerOp0 = off(M, M.Stats.PerOpcode.data());
    return O;
  }

  // ---- helpers called from generated code (SysV ABI) -------------------

  static void gcShim(Machine *M) { M->collectGarbage(); }

  static uint64_t allocShim(Machine *M, uint64_t T, uint64_t N) {
    return M->allocate(static_cast<Tag>(T), N);
  }

  /// Full SYSCALL fallback. Counter and Pc bookkeeping mirror the threaded
  /// handler: the template stored CurFunc/Pc(=next) before the call, Throw
  /// may retarget both, and the continuation is resolved from wherever the
  /// machine ended up. Returns nullptr when the syscall trapped (the
  /// formatted message is left in Machine::NativeError).
  static const void *syscallShim(Machine *M, const XInsn *I) {
    ++M->Stats.Syscalls;
    if (!M->doSyscall(static_cast<Syscall>(I->S1), I->S2, I->S3, I->Target,
                      M->NativeError))
      return nullptr;
    return M->ActiveJit->addr(M->CurFunc, M->Pc);
  }

  /// Single-instruction executor for the cold opcodes — same semantics,
  /// same fault behavior (Machine::xread/xwrite/mem) as the threaded
  /// handlers. Returns 0 = fall through, 1 = branch taken, -1 = division
  /// by zero, -2 = stack overflow.
  static int64_t coldShim(Machine *M, const XInsn *I) {
    Machine &Mc = *M;
    switch (I->Op) {
    case XOp::PopM: {
      uint64_t V = Mc.pop();
      Mc.xwrite(I->GA, V);
      return 0;
    }
    case XOp::Alu2G:
    case XOp::Alu3G: {
      bool Three = I->Op == XOp::Alu3G;
      int64_t A = static_cast<int64_t>(Mc.xread(Three ? I->GB : I->GA));
      int64_t Bv = static_cast<int64_t>(Mc.xread(Three ? I->GX : I->GB));
      int64_t R;
      switch (static_cast<Opcode>(I->Sub)) {
      case Opcode::ADD:
        R = A + Bv;
        break;
      case Opcode::SUB:
        R = A - Bv;
        break;
      case Opcode::MULT:
        R = A * Bv;
        break;
      default:
        if (Bv == 0)
          return -1;
        R = A / Bv;
        break;
      }
      Mc.xwrite(I->GA, static_cast<uint64_t>(R));
      return 0;
    }
    case XOp::JmpzG: {
      int64_t A = static_cast<int64_t>(Mc.xread(I->GA));
      int64_t Bv = static_cast<int64_t>(Mc.xread(I->GB));
      int64_t Sign = A < Bv ? -1 : (A > Bv ? 1 : 0);
      return jitCondHolds(I->C, Sign) ? 1 : 0;
    }
    case XOp::FJmpzG: {
      double A = jitAsDouble(Mc.xread(I->GA));
      double Bv = jitAsDouble(Mc.xread(I->GB));
      int64_t Sign = A < Bv ? -1 : (A > Bv ? 1 : 0);
      bool Taken = (std::isnan(A) || std::isnan(Bv))
                       ? I->C == Cond::NEQ
                       : jitCondHolds(I->C, Sign);
      return Taken ? 1 : 0;
    }
    case XOp::MovTag: {
      uint64_t Addr = I->GB.M == XArg::Mode::Mem ? Mc.xea(I->GB.Mem)
                                                 : addrOf(Mc.xread(I->GB));
      Mc.xwrite(I->GA, makePointer(static_cast<Tag>(I->S1), Addr));
      return 0;
    }
    case XOp::GetTag:
      Mc.xwrite(I->GA, static_cast<uint64_t>(tagOf(Mc.xread(I->GB))));
      return 0;
    case XOp::Lea:
      Mc.xwrite(I->GA, Mc.xea(I->GB.Mem));
      return 0;
    case XOp::FAlu2:
    case XOp::FAlu3: {
      bool Three = I->Op == XOp::FAlu3;
      double A = jitAsDouble(Mc.xread(Three ? I->GB : I->GA));
      double Bv = jitAsDouble(Mc.xread(Three ? I->GX : I->GB));
      double R;
      switch (static_cast<Opcode>(I->Sub)) {
      case Opcode::FADD:
        R = A + Bv;
        break;
      case Opcode::FSUB:
        R = A - Bv;
        break;
      case Opcode::FMULT:
        R = A * Bv;
        break;
      case Opcode::FDIV:
        R = A / Bv;
        break;
      case Opcode::FMAX:
        R = std::max(A, Bv);
        break;
      default:
        R = std::min(A, Bv);
        break;
      }
      Mc.xwrite(I->GA, jitFromDouble(R));
      return 0;
    }
    case XOp::FUnary: {
      double X = jitAsDouble(Mc.xread(I->GB));
      double R;
      switch (static_cast<Opcode>(I->Sub)) {
      case Opcode::FNEG:
        R = -X;
        break;
      case Opcode::FABS:
        R = std::fabs(X);
        break;
      case Opcode::FSQRT:
        R = std::sqrt(X);
        break;
      case Opcode::FSIN:
        R = std::sin(X * 2.0 * M_PI); // the S-1 trig unit takes cycles
        break;
      case Opcode::FCOS:
        R = std::cos(X * 2.0 * M_PI);
        break;
      case Opcode::FEXP:
        R = std::exp(X);
        break;
      default:
        R = std::log(X);
        break;
      }
      Mc.xwrite(I->GA, jitFromDouble(R));
      return 0;
    }
    case XOp::FAtan: {
      double Y = jitAsDouble(Mc.xread(I->GB));
      double X = jitAsDouble(Mc.xread(I->GX));
      Mc.xwrite(I->GA, jitFromDouble(std::atan2(Y, X)));
      return 0;
    }
    case XOp::Itof:
      Mc.xwrite(I->GA, jitFromDouble(static_cast<double>(
                           static_cast<int64_t>(Mc.xread(I->GB)))));
      return 0;
    case XOp::Ftoi:
      Mc.xwrite(I->GA,
                static_cast<uint64_t>(
                    static_cast<int64_t>(jitAsDouble(Mc.xread(I->GB)))));
      return 0;
    default:
      return 0; // unreachable: hot ops never route here
    }
  }

#if S1_JIT_AVAILABLE
  static std::shared_ptr<const JitProgram>
  compile(std::shared_ptr<const DecodedProgram> DP, const JitOptions &Opts,
          Machine &Layout);
#endif
};

#if S1_JIT_AVAILABLE

std::shared_ptr<const JitProgram>
JitAccess::compile(std::shared_ptr<const DecodedProgram> DP,
                   const JitOptions &Opts, Machine &Layout) {
  const Offsets MO = offsets(Layout);
  const bool Detailed = Opts.DetailedStats;
  const bool GcOn = Opts.GcEnabled;
  const int32_t MW = static_cast<int32_t>(MemoryWords);
  const int32_t StackLimit = static_cast<int32_t>(StackBase + StackWords);
  const size_t NF = DP->Functions.size();

  auto JP = std::make_shared<JitProgram>();
  JP->DP = DP;
  JP->DetailedOn = Detailed;
  JP->GcOn = GcOn;
  JP->Offs.resize(NF);
  JP->AddrArrays.resize(NF);
  // Sized before emission: the movabs of FuncTable.data() baked into RET /
  // CALLPTR templates must stay valid.
  JP->FuncTable.resize(NF);
  const uint64_t FTData = reinterpret_cast<uint64_t>(JP->FuncTable.data());

  Asm A;

  // ---- entry thunk -----------------------------------------------------
  // int entry(uint64_t *regs, uint64_t *mem, Machine *m, uint64_t instr,
  //           uint64_t fuel, const void *start)
  JP->EntryOff = A.pos();
  A.pushR(RBP);
  A.pushR(RBX);
  A.pushR(R12);
  A.pushR(R13);
  A.pushR(R14);
  A.pushR(R15);
  A.subRI(4 /*rsp*/, 8); // align: template call sites sit at rsp%16==0
  A.movRR(RBX, RDI);
  A.movRR(R12, RSI);
  A.movRR(R13, RDX);
  A.movRR(R14, RCX);
  A.movRR(R15, R8);
  A.jmpReg(R9);

  // ---- shared epilogue: status already in eax --------------------------
  const size_t EpiOff = A.pos();
  A.storeQ(R14, R13, -1, 0, MO.Instr);
  A.addRI(4 /*rsp*/, 8);
  A.popR(R15);
  A.popR(R14);
  A.popR(R13);
  A.popR(R12);
  A.popR(RBX);
  A.popR(RBP);
  A.ret();

  // ---- shared GC stub (called from safepoints when GcPending) ----------
  const size_t GcStubOff = A.pos();
  A.subRI(4 /*rsp*/, 8);
  A.storeQ(R14, R13, -1, 0, MO.Instr);
  A.movRR(RDI, R13);
  A.movRI(RAX, reinterpret_cast<uint64_t>(&JitAccess::gcShim));
  A.callReg(RAX);
  A.addRI(4 /*rsp*/, 8);
  A.ret();

  // ---- shared exit stubs ----------------------------------------------
  const size_t OkStubOff = A.pos(); // RET popped the host sentinel
  A.xorRR32(RAX, RAX);
  A.jmpFixed(EpiOff);
  const size_t SysErrStubOff = A.pos(); // doSyscall trapped
  A.movRI(RAX, static_cast<uint64_t>(JitStatus::SyscallErr));
  A.jmpFixed(EpiOff);
  const size_t HaltDynStubOff = A.pos(); // halted with CurFunc/Pc already set
  A.movRI(RAX, static_cast<uint64_t>(JitStatus::HaltedMem));
  A.jmpFixed(EpiOff);

  // ---- function bodies -------------------------------------------------
  struct Fixup {
    size_t At;
    int Func;
    int Idx;
  };
  std::vector<Fixup> Fixups; // rel32 to instruction Idx of Func

  for (size_t F = 0; F < NF; ++F) {
    const DecodedFunction &DF = DP->Functions[F];
    const int Size = static_cast<int>(DF.Code.size());
    JP->Offs[F].assign(static_cast<size_t>(Size) + 1, 0);

    // Per-function trap stubs, deduplicated by (status, reported pc).
    std::map<std::pair<int, int>, std::vector<size_t>> StubSites;
    auto jccStub = [&](uint8_t CC, JitStatus St, int PcVal) {
      A.u8(0x0F);
      A.u8(static_cast<uint8_t>(0x80 | CC));
      StubSites[{static_cast<int>(St), PcVal}].push_back(A.pos());
      A.u32(0);
    };
    auto jmpStub = [&](JitStatus St, int PcVal) {
      A.u8(0xE9);
      StubSites[{static_cast<int>(St), PcVal}].push_back(A.pos());
      A.u32(0);
    };
    auto jmpTo = [&](int Fn, int Idx) {
      A.u8(0xE9);
      Fixups.push_back({A.pos(), Fn, Idx});
      A.u32(0);
    };
    auto jccTo = [&](uint8_t CC, int Fn, int Idx) {
      A.u8(0x0F);
      A.u8(static_cast<uint8_t>(0x80 | CC));
      Fixups.push_back({A.pos(), Fn, Idx});
      A.u32(0);
    };

    // addrOf(Regs[Base]) [+ Disp] into Dst.
    auto emitEaS = [&](unsigned Dst, unsigned Tmp, const XMem &Mm) {
      A.loadD(Dst, RBX, -1, 0, static_cast<int32_t>(Mm.Base) * 8);
      if (Mm.Disp != 0) {
        if (fitsI32(Mm.Disp))
          A.lea(Dst, Dst, -1, 0, static_cast<int32_t>(Mm.Disp));
        else {
          A.movRI(Tmp, static_cast<uint64_t>(Mm.Disp));
          A.addRR(Dst, Tmp);
        }
      }
    };
    // addrOf(Regs[Base]) + (Disp + (Regs[Index] << Scale)) into Dst.
    auto emitEaX = [&](unsigned Dst, unsigned Tmp, unsigned Tmp2,
                       const XMem &Mm) {
      A.loadD(Dst, RBX, -1, 0, static_cast<int32_t>(Mm.Base) * 8);
      A.loadQ(Tmp, RBX, -1, 0, static_cast<int32_t>(Mm.Index) * 8);
      if (Mm.Scale)
        A.shlRI(Tmp, Mm.Scale);
      A.addRR(Dst, Tmp);
      if (Mm.Disp != 0) {
        if (fitsI32(Mm.Disp))
          A.lea(Dst, Dst, -1, 0, static_cast<int32_t>(Mm.Disp));
        else {
          A.movRI(Tmp2, static_cast<uint64_t>(Mm.Disp));
          A.addRR(Dst, Tmp2);
        }
      }
    };
    auto emitEa = [&](unsigned Dst, unsigned Tmp, unsigned Tmp2,
                      const XMem &Mm) {
      if (Mm.Index == 0xFF)
        emitEaS(Dst, Tmp, Mm);
      else
        emitEaX(Dst, Tmp, Tmp2, Mm);
    };
    // mem() fault guard: word address in R must be < MemoryWords.
    auto checkAddr = [&](unsigned R, int PcVal) {
      A.cmpRI(R, MW);
      jccStub(CC_AE, JitStatus::HaltedMem, PcVal);
    };
    // Regs[SP] update + StackHighWater, with the new SP in R (always
    // maintained, exactly like Machine::push).
    auto emitShw = [&](unsigned NewSp, unsigned Tmp) {
      A.lea(Tmp, NewSp, -1, 0, -static_cast<int32_t>(StackBase));
      A.cmpRM(Tmp, R13, MO.SHW);
      size_t Skip = A.jccL(CC_BE);
      A.storeQ(Tmp, R13, -1, 0, MO.SHW);
      A.bind(Skip);
    };
    // Loads an XArg value into Dst (Reg/Const/Mem), faulting like xread.
    auto emitXRead = [&](unsigned Dst, unsigned T1, unsigned T2, unsigned T3,
                         const XArg &G, int PcVal) {
      switch (G.M) {
      case XArg::Mode::Reg:
        A.loadQ(Dst, RBX, -1, 0, static_cast<int32_t>(G.R) * 8);
        break;
      case XArg::Mode::Const:
        A.movRI(Dst, G.K);
        break;
      case XArg::Mode::Mem:
        emitEa(T1, T2, T3, G.Mem);
        checkAddr(T1, PcVal);
        A.loadQ(Dst, R12, static_cast<int>(T1), 3, 0);
        break;
      case XArg::Mode::None:
        A.movRI(Dst, 0);
        break;
      }
    };

    // The full SYSCALL fallback template; also the slow path behind the
    // inline fixnum fast paths.
    auto emitSyscallGeneric = [&](const XInsn &I, int ThisIdx) {
      A.storeDImm(R13, MO.CurFunc, static_cast<int32_t>(F));
      A.storeDImm(R13, MO.Pc, ThisIdx + 1);
      A.storeQ(R14, R13, -1, 0, MO.Instr);
      A.movRR(RDI, R13);
      A.movRI(RSI, reinterpret_cast<uint64_t>(&I));
      A.movRI(RAX, reinterpret_cast<uint64_t>(&JitAccess::syscallShim));
      A.callReg(RAX);
      A.testRR(RAX, RAX);
      A.jccFixed(CC_E, SysErrStubOff);
      A.cmpByteMemI(R13, MO.Halted, 0);
      A.jccFixed(CC_NE, HaltDynStubOff);
      A.jmpReg(RAX); // continuation resolved by the shim (Throw may move it)
    };

    for (int Idx = 0; Idx <= Size; ++Idx) {
      JP->Offs[F][static_cast<size_t>(Idx)] = static_cast<uint32_t>(A.pos());

      // -- safepoint: fuel, then pending GC — same boundary order as the
      // threaded loop (a simultaneous fuel trap wins over a pending GC).
      A.opRR(true, {0x3B}, R14, R15); // cmp r14, r15
      jccStub(CC_AE, JitStatus::Fuel, Idx);
      if (GcOn) {
        A.cmpByteMemI(R13, MO.GcPending, 0);
        size_t Skip = A.jccL(CC_E);
        A.callFixed(GcStubOff);
        A.bind(Skip);
      }
      if (Idx == Size) {
        // Fall-off trailer: control ran past the last real instruction.
        jmpStub(JitStatus::PcRange, Size);
        break;
      }

      const XInsn &I = DF.Code[static_cast<size_t>(Idx)];
      const int Next = Idx + 1;

      A.incR(R14); // ++Stats.Instructions
      if (Detailed)
        A.incMemQ(R13, MO.PerOp0 +
                           8 * static_cast<int32_t>(
                                   static_cast<size_t>(I.OrigOp)));

      switch (I.Op) {
      // ---- MOV family (inline, all twelve mode pairs) ------------------
      case XOp::MovRR:
      case XOp::MovRK:
      case XOp::MovRM:
      case XOp::MovRX:
      case XOp::MovMR:
      case XOp::MovMK:
      case XOp::MovMM:
      case XOp::MovMX:
      case XOp::MovXR:
      case XOp::MovXK:
      case XOp::MovXM:
      case XOp::MovXX: {
        if (Detailed)
          A.incMemQ(R13, MO.Movs);
        // Source value into RCX (register/constant sources), or source EA
        // into RAX then load.
        auto loadSrc = [&] {
          switch (I.Op) {
          case XOp::MovRR:
          case XOp::MovMR:
          case XOp::MovXR:
            A.loadQ(RCX, RBX, -1, 0, static_cast<int32_t>(I.B) * 8);
            break;
          case XOp::MovRK:
          case XOp::MovMK:
          case XOp::MovXK:
            A.movRI(RCX, I.K);
            break;
          case XOp::MovRM:
          case XOp::MovMM:
          case XOp::MovXM:
            emitEaS(RAX, RCX, I.MB);
            checkAddr(RAX, Next);
            A.loadQ(RCX, R12, RAX, 3, 0);
            break;
          default: // MovRX / MovMX / MovXX
            emitEaX(RAX, RCX, RDX, I.MB);
            checkAddr(RAX, Next);
            A.loadQ(RCX, R12, RAX, 3, 0);
            break;
          }
        };
        loadSrc();
        switch (I.Op) {
        case XOp::MovRR:
        case XOp::MovRK:
        case XOp::MovRM:
        case XOp::MovRX:
          A.storeQ(RCX, RBX, -1, 0, static_cast<int32_t>(I.A) * 8);
          break;
        case XOp::MovMR:
        case XOp::MovMK:
        case XOp::MovMM:
        case XOp::MovMX:
          emitEaS(RAX, RDX, I.MA);
          checkAddr(RAX, Next);
          A.storeQ(RCX, R12, RAX, 3, 0);
          break;
        default: // MovX* destinations
          emitEaX(RAX, RDX, RSI, I.MA);
          checkAddr(RAX, Next);
          A.storeQ(RCX, R12, RAX, 3, 0);
          break;
        }
        break;
      }

      // ---- stack traffic ----------------------------------------------
      case XOp::PushR:
      case XOp::PushK:
      case XOp::PushM:
      case XOp::PushX: {
        A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(s1::SP) * 8);
        A.lea(RCX, RAX, -1, 0, 1);
        A.cmpRI(RCX, StackLimit);
        jccStub(CC_AE, JitStatus::StackOv, Next);
        switch (I.Op) {
        case XOp::PushR:
          A.loadQ(RCX, RBX, -1, 0, static_cast<int32_t>(I.B) * 8);
          break;
        case XOp::PushK:
          A.movRI(RCX, I.K);
          break;
        case XOp::PushM:
          emitEaS(RDX, RSI, I.MB);
          checkAddr(RDX, Next);
          A.loadQ(RCX, R12, RDX, 3, 0);
          break;
        default: // PushX
          emitEaX(RDX, RSI, RDI, I.MB);
          checkAddr(RDX, Next);
          A.loadQ(RCX, R12, RDX, 3, 0);
          break;
        }
        checkAddr(RAX, Next);
        A.storeQ(RCX, R12, RAX, 3, 0);
        A.incR(RAX);
        A.storeQ(RAX, RBX, -1, 0, static_cast<int32_t>(s1::SP) * 8);
        emitShw(RAX, RCX);
        break;
      }

      case XOp::PopR: {
        A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(s1::SP) * 8);
        A.subRI(RAX, 1);
        A.storeQ(RAX, RBX, -1, 0, static_cast<int32_t>(s1::SP) * 8);
        checkAddr(RAX, Next);
        A.loadQ(RCX, R12, RAX, 3, 0);
        A.storeQ(RCX, RBX, -1, 0, static_cast<int32_t>(I.A) * 8);
        break;
      }

      // ---- integer ALU register forms ---------------------------------
      case XOp::AddRR:
      case XOp::SubRR: {
        A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(I.A) * 8);
        A.opMem(true, {I.Op == XOp::AddRR ? uint8_t(0x03) : uint8_t(0x2B)},
                RAX, RBX, -1, 0, static_cast<int32_t>(I.B) * 8);
        A.storeQ(RAX, RBX, -1, 0, static_cast<int32_t>(I.A) * 8);
        break;
      }
      case XOp::AddRK:
      case XOp::SubRK: {
        A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(I.A) * 8);
        int64_t K = static_cast<int64_t>(I.K);
        if (fitsI32(K)) {
          A.aluRI(I.Op == XOp::AddRK ? 0 : 5, RAX, static_cast<int32_t>(K));
        } else {
          A.movRI(RCX, I.K);
          if (I.Op == XOp::AddRK)
            A.addRR(RAX, RCX);
          else
            A.subRR(RAX, RCX);
        }
        A.storeQ(RAX, RBX, -1, 0, static_cast<int32_t>(I.A) * 8);
        break;
      }

      // ---- control ----------------------------------------------------
      case XOp::Jmp:
        jmpTo(static_cast<int>(F), I.Target);
        break;

      case XOp::JmpzRR: {
        A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(I.A) * 8);
        A.opMem(true, {0x3B}, RAX, RBX, -1, 0,
                static_cast<int32_t>(I.B) * 8);
        jccTo(ccFor(I.C), static_cast<int>(F), I.Target);
        break;
      }
      case XOp::JmpzRK: {
        A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(I.A) * 8);
        int64_t K = static_cast<int64_t>(I.K);
        if (fitsI32(K)) {
          A.cmpRI(RAX, static_cast<int32_t>(K));
        } else {
          A.movRI(RCX, I.K);
          A.cmpRR(RAX, RCX);
        }
        jccTo(ccFor(I.C), static_cast<int>(F), I.Target);
        break;
      }

      case XOp::Call: {
        A.incMemQ(R13, MO.Calls);
        A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(s1::SP) * 8);
        A.lea(RCX, RAX, -1, 0, 4);
        A.cmpRI(RCX, StackLimit);
        jccStub(CC_AE, JitStatus::StackOv, Next);
        checkAddr(RAX, Next);
        A.movRI(RCX, (static_cast<uint64_t>(F + 1) << 32) |
                         static_cast<uint32_t>(Next));
        A.storeQ(RCX, R12, RAX, 3, 0);
        A.incR(RAX);
        A.storeQ(RAX, RBX, -1, 0, static_cast<int32_t>(s1::SP) * 8);
        emitShw(RAX, RCX);
        jmpTo(I.Target, 0);
        break;
      }

      case XOp::CallPtr:
      case XOp::TailCallPtr: {
        bool IsTail = I.Op == XOp::TailCallPtr;
        A.incMemQ(R13, IsTail ? MO.TailCalls : MO.Calls);
        emitXRead(RAX, RAX, RCX, RDX, I.GA, Next); // Fn word
        A.movRR(RCX, RAX);
        A.shrRI(RCX, static_cast<uint8_t>(TagShift));
        A.cmpRI(RCX, static_cast<int32_t>(Tag::Function));
        jccStub(CC_NE, JitStatus::NotFunc, Next);
        A.movRR32(RDX, RAX); // addrOf(Fn)
        // Regs[1] = mem(addr + 1): the closure environment.
        A.lea(RCX, RDX, -1, 0, 1);
        checkAddr(RCX, Next);
        A.loadQ(RSI, R12, RCX, 3, 0);
        A.storeQ(RSI, RBX, -1, 0, 1 * 8);
        // Callee function index from the function cell (addr < MW is
        // implied by addr+1 < MW — addrOf is 32-bit, no wrap).
        A.loadQ(R11, R12, RDX, 3, 0);
        A.movRR32(R11, R11);
        if (!IsTail) {
          // push(makeRetWord(F, Next)) — no +4 headroom check, exactly
          // like the threaded CALLPTR handler.
          A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(s1::SP) * 8);
          checkAddr(RAX, Next);
          A.movRI(RCX, (static_cast<uint64_t>(F + 1) << 32) |
                           static_cast<uint32_t>(Next));
          A.storeQ(RCX, R12, RAX, 3, 0);
          A.incR(RAX);
          A.storeQ(RAX, RBX, -1, 0, static_cast<int32_t>(s1::SP) * 8);
          emitShw(RAX, RCX);
        } else {
          // TailTransfer(K, callee) with the callee index live in r11.
          int32_t K = static_cast<int32_t>(I.S2);
          A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(s1::FP) * 8);
          checkAddr(RAX, Next);
          A.lea(RCX, RAX, -1, 0, 1);
          checkAddr(RCX, Next);
          A.loadQ(RDX, R12, RCX, 3, 0); // frame argc
          A.cmpRI(RDX, K);
          jccStub(CC_B, JitStatus::TailOv, Next);
          A.loadQ(RSI, R12, RAX, 3, 0); // env slot = mem(FP+0)
          A.storeQ(RSI, RBX, -1, 0, static_cast<int32_t>(s1::ENV) * 8);
          A.lea(RCX, RAX, -1, 0, -1);
          checkAddr(RCX, Next);
          A.loadQ(RDI, R12, RCX, 3, 0); // old FP
          if (K > 0) {
            A.loadQ(RSI, RBX, -1, 0, static_cast<int32_t>(s1::SP) * 8);
            A.subRI(RSI, K);               // arg source base
            A.lea(RCX, RAX, -1, 0, -2 - K); // arg destination base
            A.movRI(R8, 0);
            size_t LoopTop = A.pos();
            A.cmpRI(R8, K);
            size_t Done = A.jccL(CC_E);
            A.lea(R9, RSI, R8, 0, 0);
            checkAddr(R9, Next);
            A.loadQ(R10, R12, R9, 3, 0);
            A.lea(R9, RCX, R8, 0, 0);
            checkAddr(R9, Next);
            A.storeQ(R10, R12, R9, 3, 0);
            A.addRI(R8, 1);
            A.jmpFixed(LoopTop);
            A.bind(Done);
          }
          A.lea(RDX, RAX, -1, 0, -1);
          A.storeQ(RDX, RBX, -1, 0, static_cast<int32_t>(s1::SP) * 8);
          A.storeQ(RDI, RBX, -1, 0, static_cast<int32_t>(s1::FP) * 8);
          A.storeQImm(RBX, static_cast<int32_t>(s1::RTA) * 8, K);
        }
        // Indirect transfer to the callee's entry template.
        A.movRI(RSI, FTData);
        A.loadQ(RSI, RSI, R11, 3, 0);
        A.loadQ(RSI, RSI, -1, 0, 0);
        A.jmpReg(RSI);
        break;
      }

      case XOp::TailCall: {
        A.incMemQ(R13, MO.TailCalls);
        int32_t K = static_cast<int32_t>(I.S2);
        A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(s1::FP) * 8);
        checkAddr(RAX, Next);
        A.lea(RCX, RAX, -1, 0, 1);
        checkAddr(RCX, Next);
        A.loadQ(RDX, R12, RCX, 3, 0);
        A.cmpRI(RDX, K);
        jccStub(CC_B, JitStatus::TailOv, Next);
        A.loadQ(RSI, R12, RAX, 3, 0);
        A.storeQ(RSI, RBX, -1, 0, static_cast<int32_t>(s1::ENV) * 8);
        A.lea(RCX, RAX, -1, 0, -1);
        checkAddr(RCX, Next);
        A.loadQ(RDI, R12, RCX, 3, 0);
        if (K > 0) {
          A.loadQ(RSI, RBX, -1, 0, static_cast<int32_t>(s1::SP) * 8);
          A.subRI(RSI, K);
          A.lea(RCX, RAX, -1, 0, -2 - K);
          A.movRI(R8, 0);
          size_t LoopTop = A.pos();
          A.cmpRI(R8, K);
          size_t Done = A.jccL(CC_E);
          A.lea(R9, RSI, R8, 0, 0);
          checkAddr(R9, Next);
          A.loadQ(R10, R12, R9, 3, 0);
          A.lea(R9, RCX, R8, 0, 0);
          checkAddr(R9, Next);
          A.storeQ(R10, R12, R9, 3, 0);
          A.addRI(R8, 1);
          A.jmpFixed(LoopTop);
          A.bind(Done);
        }
        A.lea(RDX, RAX, -1, 0, -1);
        A.storeQ(RDX, RBX, -1, 0, static_cast<int32_t>(s1::SP) * 8);
        A.storeQ(RDI, RBX, -1, 0, static_cast<int32_t>(s1::FP) * 8);
        A.storeQImm(RBX, static_cast<int32_t>(s1::RTA) * 8, K);
        jmpTo(I.Target, 0);
        break;
      }

      case XOp::Ret: {
        A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(s1::SP) * 8);
        A.subRI(RAX, 1);
        A.storeQ(RAX, RBX, -1, 0, static_cast<int32_t>(s1::SP) * 8);
        checkAddr(RAX, Next);
        A.loadQ(RCX, R12, RAX, 3, 0); // return word
        A.testRR(RCX, RCX);
        A.jccFixed(CC_E, OkStubOff); // host sentinel
        A.movRR(RDX, RCX);
        A.shrRI(RDX, 32);
        A.subRI(RDX, 1);     // function index
        A.movRR32(RCX, RCX); // pc half
        A.movRI(RSI, FTData);
        A.loadQ(RSI, RSI, RDX, 3, 0);
        A.loadQ(RSI, RSI, RCX, 3, 0);
        A.jmpReg(RSI);
        break;
      }

      // ---- allocation --------------------------------------------------
      case XOp::Alloc: {
        A.storeQ(R14, R13, -1, 0, MO.Instr);
        A.movRR(RDI, R13);
        A.movRI(RSI, static_cast<uint64_t>(I.S1));
        A.movRI(RDX, static_cast<uint64_t>(I.S2));
        A.movRI(RAX, reinterpret_cast<uint64_t>(&JitAccess::allocShim));
        A.callReg(RAX);
        A.cmpByteMemI(R13, MO.Halted, 0);
        jccStub(CC_NE, JitStatus::HeapExh, Next);
        switch (I.GA.M) {
        case XArg::Mode::Reg:
          A.storeQ(RAX, RBX, -1, 0, static_cast<int32_t>(I.GA.R) * 8);
          break;
        case XArg::Mode::Mem:
          emitEa(RCX, RDX, RSI, I.GA.Mem);
          checkAddr(RCX, Next);
          A.storeQ(RAX, R12, RCX, 3, 0);
          break;
        default:
          break; // xwrite drops Const/None destinations
        }
        break;
      }

      // ---- runtime services -------------------------------------------
      case XOp::Syscall: {
        Syscall S = static_cast<Syscall>(I.S1);
        std::vector<size_t> Slow;
        auto toSlow = [&](uint8_t CC) { Slow.push_back(A.jccL(CC)); };

        if (S == Syscall::GenericAdd || S == Syscall::GenericSub ||
            S == Syscall::GenericMul) {
          // Fixnum fast path: peek both operands; any miss re-runs the
          // whole syscall through the generic route (which pops itself).
          A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(s1::SP) * 8);
          A.cmpRI(RAX, 2);
          toSlow(CC_B);
          A.cmpRI(RAX, MW);
          toSlow(CC_A);
          A.loadQ(RCX, R12, RAX, 3, -16); // AW
          A.loadQ(RDX, R12, RAX, 3, -8);  // BW
          A.movRR(RSI, RCX);
          A.shrRI(RSI, static_cast<uint8_t>(TagShift));
          A.cmpRI(RSI, static_cast<int32_t>(Tag::Fixnum));
          toSlow(CC_NE);
          A.movRR(RSI, RDX);
          A.shrRI(RSI, static_cast<uint8_t>(TagShift));
          A.cmpRI(RSI, static_cast<int32_t>(Tag::Fixnum));
          toSlow(CC_NE);
          A.incMemQ(R13, MO.Syscalls);
          // The threaded fast path pops before it traps on overflow.
          A.aluMemI(5, RBX, static_cast<int32_t>(s1::SP) * 8, 2);
          A.movsxd(RCX, RCX); // fixnumValue
          A.movsxd(RDX, RDX);
          if (S == Syscall::GenericAdd)
            A.addRR(RCX, RDX);
          else if (S == Syscall::GenericSub)
            A.subRR(RCX, RDX);
          else
            A.imulRR(RCX, RDX);
          A.movsxd(RSI, RCX); // 32-bit range check
          A.cmpRR(RSI, RCX);
          jccStub(CC_NE, JitStatus::FixOv, Next);
          A.movRR32(RCX, RCX); // makeFixnum
          A.movRI(RDX, 1ull << TagShift);
          A.orRR(RCX, RDX);
          A.storeQ(RCX, RBX, -1, 0, static_cast<int32_t>(s1::RV) * 8);
          jmpTo(static_cast<int>(F), Next);
        } else if (S == Syscall::GenericCompare) {
          A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(s1::SP) * 8);
          A.cmpRI(RAX, 2);
          toSlow(CC_B);
          A.cmpRI(RAX, MW);
          toSlow(CC_A);
          A.loadQ(RCX, R12, RAX, 3, -16);
          A.loadQ(RDX, R12, RAX, 3, -8);
          A.movRR(RSI, RCX);
          A.shrRI(RSI, static_cast<uint8_t>(TagShift));
          A.cmpRI(RSI, static_cast<int32_t>(Tag::Fixnum));
          toSlow(CC_NE);
          A.movRR(RSI, RDX);
          A.shrRI(RSI, static_cast<uint8_t>(TagShift));
          A.cmpRI(RSI, static_cast<int32_t>(Tag::Fixnum));
          toSlow(CC_NE);
          // trueWord() must already be memoized — a miss could allocate.
          A.loadQ(RSI, R13, -1, 0, MO.CachedT);
          A.testRR(RSI, RSI);
          toSlow(CC_E);
          A.incMemQ(R13, MO.Syscalls);
          A.movsxd(RCX, RCX);
          A.movsxd(RDX, RDX);
          A.xorRR32(RDI, RDI); // NilWord
          A.cmpRR(RCX, RDX);
          A.cmov(ccFor(static_cast<Cond>(I.S2)), RDI, RSI);
          A.aluMemI(5, RBX, static_cast<int32_t>(s1::SP) * 8, 2);
          A.storeQ(RDI, RBX, -1, 0, static_cast<int32_t>(s1::RV) * 8);
          jmpTo(static_cast<int>(F), Next);
        } else if (S == Syscall::GenericUnary &&
                   (static_cast<UnaryCode>(I.S2) == UnaryCode::Neg ||
                    static_cast<UnaryCode>(I.S2) == UnaryCode::Abs ||
                    static_cast<UnaryCode>(I.S2) == UnaryCode::Add1 ||
                    static_cast<UnaryCode>(I.S2) == UnaryCode::Sub1)) {
          UnaryCode UC = static_cast<UnaryCode>(I.S2);
          A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(s1::SP) * 8);
          A.cmpRI(RAX, 1);
          toSlow(CC_B);
          A.cmpRI(RAX, MW);
          toSlow(CC_A);
          A.loadQ(RCX, R12, RAX, 3, -8);
          A.movRR(RSI, RCX);
          A.shrRI(RSI, static_cast<uint8_t>(TagShift));
          A.cmpRI(RSI, static_cast<int32_t>(Tag::Fixnum));
          toSlow(CC_NE);
          A.incMemQ(R13, MO.Syscalls);
          A.aluMemI(5, RBX, static_cast<int32_t>(s1::SP) * 8, 1); // pop first
          A.movsxd(RCX, RCX);
          switch (UC) {
          case UnaryCode::Neg:
            A.negR(RCX);
            break;
          case UnaryCode::Abs: // V < 0 ? -V : V
            A.movRR(RDX, RCX);
            A.negR(RDX);
            A.testRR(RCX, RCX);
            A.cmov(CC_S, RCX, RDX);
            break;
          case UnaryCode::Add1:
            A.addRI(RCX, 1);
            break;
          default: // Sub1
            A.subRI(RCX, 1);
            break;
          }
          A.movsxd(RSI, RCX);
          A.cmpRR(RSI, RCX);
          jccStub(CC_NE, JitStatus::FixOv, Next);
          A.movRR32(RCX, RCX);
          A.movRI(RDX, 1ull << TagShift);
          A.orRR(RCX, RDX);
          A.storeQ(RCX, RBX, -1, 0, static_cast<int32_t>(s1::RV) * 8);
          jmpTo(static_cast<int>(F), Next);
        }

        for (size_t P : Slow)
          A.bind(P);
        emitSyscallGeneric(I, Idx);
        break;
      }

      case XOp::Halt:
        jmpStub(JitStatus::Halt, Next);
        break;

      // ---- cold opcodes: one call into the C++ executor ----------------
      default: {
        bool Branches = I.Op == XOp::JmpzG || I.Op == XOp::FJmpzG;
        bool CanDiv0 = I.Op == XOp::Alu2G || I.Op == XOp::Alu3G;
        A.storeQ(R14, R13, -1, 0, MO.Instr);
        A.movRR(RDI, R13);
        A.movRI(RSI, reinterpret_cast<uint64_t>(&I));
        A.movRI(RAX, reinterpret_cast<uint64_t>(&JitAccess::coldShim));
        A.callReg(RAX);
        if (CanDiv0) {
          A.cmpRI(RAX, -1);
          jccStub(CC_E, JitStatus::Div0, Next);
        }
        if (Branches) {
          A.cmpRI(RAX, 1);
          size_t Fall = A.jccL(CC_NE);
          // Taken: the threaded loop would trap at the *target* boundary
          // if the operand reads faulted.
          A.cmpByteMemI(R13, MO.Halted, 0);
          jccStub(CC_NE, JitStatus::HaltedMem, I.Target);
          jmpTo(static_cast<int>(F), I.Target);
          A.bind(Fall);
        }
        A.cmpByteMemI(R13, MO.Halted, 0);
        jccStub(CC_NE, JitStatus::HaltedMem, Next);
        break;
      }
      }
    }

    // -- trap stubs for this function -------------------------------------
    for (auto &[Key, Sites] : StubSites) {
      for (size_t P : Sites)
        A.bind(P);
      A.storeDImm(R13, MO.CurFunc, static_cast<int32_t>(F));
      A.storeDImm(R13, MO.Pc, Key.second);
      A.movRI(RAX, static_cast<uint64_t>(Key.first));
      A.jmpFixed(EpiOff);
    }
  }

  // ---- resolve instruction-address fixups ------------------------------
  for (const Fixup &Fx : Fixups) {
    int64_t Rel =
        static_cast<int64_t>(
            JP->Offs[static_cast<size_t>(Fx.Func)][static_cast<size_t>(
                Fx.Idx)]) -
        static_cast<int64_t>(Fx.At + 4);
    A.patch32(Fx.At, static_cast<int32_t>(Rel));
  }

  // ---- finalize: copy into a fresh RX mapping (W^X) --------------------
  size_t Len = A.B.size();
  void *Map = mmap(nullptr, Len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Map == MAP_FAILED)
    return nullptr;
  std::memcpy(Map, A.B.data(), Len);
  if (mprotect(Map, Len, PROT_READ | PROT_EXEC) != 0) {
    munmap(Map, Len);
    return nullptr;
  }
  JP->Base = static_cast<uint8_t *>(Map);
  JP->MapLen = Len;
  for (size_t F = 0; F < NF; ++F) {
    size_t N = JP->Offs[F].size();
    JP->AddrArrays[F] = std::make_unique<const uint8_t *[]>(N);
    for (size_t Idx = 0; Idx < N; ++Idx)
      JP->AddrArrays[F][Idx] = JP->Base + JP->Offs[F][Idx];
    JP->FuncTable[F] = JP->AddrArrays[F].get();
  }
  return JP;
}

#endif // S1_JIT_AVAILABLE

std::shared_ptr<const JitProgram>
compileJit(std::shared_ptr<const DecodedProgram> DP, const JitOptions &Opts,
           Machine &Layout) {
#if S1_JIT_AVAILABLE
  return JitAccess::compile(std::move(DP), Opts, Layout);
#else
  (void)DP;
  (void)Opts;
  (void)Layout;
  return nullptr;
#endif
}

} // namespace vm
} // namespace s1lisp
