//===- vm/Jit.cpp - x86-64 block compiler over the XInsn stream -----------===//
//
// Two-pass native tier. Pass 1 is Predecode's leader sweep: every decoded
// index that starts a basic block (function entry, branch/catch target,
// fall-through after any control transfer or allocation) is flagged in
// DecodedFunction::Leaders. Pass 2 compiles each block into two bodies:
//
//   [block entry]    one batched safepoint — the fuel check for the first
//                    boundary, the pending-GC check, then a block-fit test
//                    (r14 + N <= fuel limit) that bulk-retires all N
//                    instructions up front and falls into the batched body;
//   [batched body]   instruction templates with no per-instruction
//                    safepoints; trap stubs subtract the not-yet-retired
//                    tail (r14 -= adj) so every trap reports the exact
//                    instruction count the threaded engine would;
//   [unbatched body] the fallback lane taken when fewer than N
//                    instructions of fuel remain: per-boundary fuel
//                    checks, so exhaustion lands mid-block at precisely
//                    the right instruction with the right counters.
//
// Pending GC is checked only at block entries: GcPending and Halted can
// only be raised by allocation and syscalls, and Predecode makes the
// successor of every such instruction a leader, so the check sits at the
// same boundary where the threaded engine would perform the collection.
//
// A write-through virtual operand stack keeps the top of the VM stack in
// host registers (r8-r11, up to four deep) across instruction boundaries
// inside a block. Pushed words are still stored to Memory eagerly —
// memory stays bit-identical to the threaded engine's at every point, so
// the conservative GC and aliased reads observe the same words — but
// Regs[SP] stores, StackHighWater updates and pop reloads are deferred
// until the segment materializes: at block exits, C++ shim calls, any
// SP-touching instruction, or a memory-destination store (which could
// alias a virtual slot). rbp caches the deferred Regs[SP] base while a
// segment is live. Trap stubs carry the deferred (sp delta, peak) pair
// and reconstruct the exact architectural state before exiting, so trap
// messages and MachineStats stay byte-identical to the threaded engine.
//
// The GenericCompare / GenericNumPred fixnum fast paths can consume their
// operands straight from the virtual stack, and when the following
// instruction is `JmpzRK RV, 0, EQ|NEQ` (the boolean-branch pattern the
// compiler emits) the boolean feeds one test+jcc directly — compare and
// branch retire as a fused pair without a second dispatch. Cons gets an
// inline bump-allocation fast path in non-GC mode, falling back to the
// generic syscall on heap exhaustion; in GC mode it calls a dedicated
// C++ allocator shim (exact-size free-list reuse and GC accounting
// cannot be inlined) so the allocation schedule stays deterministic.
//
// Code layout of one compiled program:
//
//   [entry thunk]  [epilogue]  [gc stub]  [ok/err/halt stubs]
//   [function 0: blocks..., fall-off trailer, trap stubs]
//   [function 1: ...] ...
//
// Calling convention of the generated code (SysV, callee-saved pins):
//
//   rbx = &Machine::Regs[0]      r13 = Machine*
//   r12 = &Machine::Memory[0]    r14 = Stats.Instructions (live)
//   rbp = cached Regs[SP] while a virtual-stack segment is live
//                                r15 = fuel limit
//
// The entry thunk loads the pins from the six C arguments and jumps to
// the block entry of the resume point (every externally enterable pc is a
// leader by construction); every exit goes through the shared epilogue,
// which writes the retired-instruction count back into MachineStats and
// returns a JitStatus in eax. Trap stubs additionally store the
// (function, decoded pc) of the boundary they represent so Machine::trap
// reports the same location the threaded engine would.
//
// Equivalence contract: each block retires the same architectural counter
// deltas and the same machine-state effects as the corresponding sequence
// of runThreaded handlers, and every trap is raised at the same
// instruction boundary with the same message. States no compiled program
// can reach (corrupted SP/FP making the *stack bookkeeping itself* fault)
// may leave scratch registers or the shared mem()-Garbage cell differing —
// the threaded engine's behavior there is itself degenerate — but all
// counters and reachable state remain bit-identical.
//
//===----------------------------------------------------------------------===//

#include "vm/Jit.h"

#include "stats/Stats.h"
#include "vm/Machine.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#if defined(__x86_64__) && (defined(__linux__) || defined(__APPLE__))
#define S1_JIT_AVAILABLE 1
#include <sys/mman.h>
#else
#define S1_JIT_AVAILABLE 0
#endif

using namespace s1lisp;
using namespace s1lisp::vm;
using namespace s1lisp::s1;

namespace s1lisp {
namespace vm {

bool jitAvailable() { return S1_JIT_AVAILABLE != 0; }

JitProgram::~JitProgram() {
#if S1_JIT_AVAILABLE
  if (Base)
    munmap(Base, MapLen);
#endif
}

const void *JitProgram::addr(int Func, int Pc) const {
  return FuncTable[static_cast<size_t>(Func)][Pc];
}

int JitProgram::invoke(uint64_t *Regs, uint64_t *Memory, Machine *M,
                       uint64_t Instructions, uint64_t Fuel,
                       const void *Start) const {
  using Fn = int (*)(uint64_t *, uint64_t *, Machine *, uint64_t, uint64_t,
                     const void *);
  auto F = reinterpret_cast<Fn>(Base + EntryOff);
  return F(Regs, Memory, M, Instructions, Fuel, Start);
}

namespace {

#if S1_JIT_AVAILABLE
// Compile-time observability: shape of the block structure the compiler
// produced. Counted once per compilation (the unbatched body is emitted
// exactly once per block, so per-site counters hook there).
S1_STAT(JitStatBlocks, "jit.blocks", "basic blocks compiled");
S1_STAT(JitStatBlockInsns, "jit.block.insns",
        "instructions covered by compiled blocks");
S1_STAT(JitStatBlockInsnsMax, "jit.block.insns.max",
        "largest compiled block (instructions)");
S1_STAT(JitStatBlocks1, "jit.block.size1", "blocks of 1 instruction");
S1_STAT(JitStatBlocks2, "jit.block.size2to3", "blocks of 2-3 instructions");
S1_STAT(JitStatBlocks4, "jit.block.size4to7", "blocks of 4-7 instructions");
S1_STAT(JitStatBlocks8, "jit.block.size8plus", "blocks of 8+ instructions");
S1_STAT(JitStatFused, "jit.fused.cmpbranch",
        "compare+branch pairs fused into one test+jcc");
S1_STAT(JitStatElided, "jit.safepoints.elided",
        "per-instruction safepoints batched into block entries");
S1_STAT(JitStatConsSites, "jit.cons.inline.sites",
        "cons sites compiled with the inline bump-allocation fast path");
#endif

double jitAsDouble(uint64_t W) {
  double D;
  std::memcpy(&D, &W, sizeof(D));
  return D;
}

uint64_t jitFromDouble(double D) {
  uint64_t W;
  std::memcpy(&W, &D, sizeof(W));
  return W;
}

bool jitCondHolds(Cond C, int64_t Sign) {
  switch (C) {
  case Cond::EQ:
    return Sign == 0;
  case Cond::NEQ:
    return Sign != 0;
  case Cond::LT:
    return Sign < 0;
  case Cond::GT:
    return Sign > 0;
  case Cond::LE:
    return Sign <= 0;
  case Cond::GE:
    return Sign >= 0;
  }
  return false;
}

#if S1_JIT_AVAILABLE

// x86-64 register numbers.
enum : unsigned {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

// Condition codes (Jcc 0F 8x / CMOVcc 0F 4x).
enum : uint8_t {
  CC_B = 0x2,
  CC_AE = 0x3,
  CC_E = 0x4,
  CC_NE = 0x5,
  CC_BE = 0x6,
  CC_A = 0x7,
  CC_S = 0x8,
  CC_L = 0xC,
  CC_GE = 0xD,
  CC_LE = 0xE,
  CC_G = 0xF,
};

uint8_t ccFor(Cond C) {
  switch (C) {
  case Cond::EQ:
    return CC_E;
  case Cond::NEQ:
    return CC_NE;
  case Cond::LT:
    return CC_L;
  case Cond::GT:
    return CC_G;
  case Cond::LE:
    return CC_LE;
  case Cond::GE:
    return CC_GE;
  }
  return CC_E;
}

bool fitsI32(int64_t V) { return V >= INT32_MIN && V <= INT32_MAX; }

/// True when the instruction's template always transfers control itself
/// (so the block body must not emit a fall-through jump after it).
bool endsControl(XOp Op) {
  switch (Op) {
  case XOp::Jmp:
  case XOp::Call:
  case XOp::CallPtr:
  case XOp::TailCall:
  case XOp::TailCallPtr:
  case XOp::Ret:
  case XOp::Halt:
  case XOp::Syscall:
    return true;
  default:
    return false;
  }
}

/// Minimal x86-64 emitter: exactly the encodings the templates need.
class Asm {
public:
  std::vector<uint8_t> B;

  size_t pos() const { return B.size(); }
  void u8(uint8_t V) { B.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      B.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      B.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void patch32(size_t At, int32_t V) {
    for (int I = 0; I < 4; ++I)
      B[At + I] = static_cast<uint8_t>(static_cast<uint32_t>(V) >> (8 * I));
  }

  void rex(bool W, unsigned Reg, unsigned Index, unsigned Base) {
    uint8_t R = 0x40 | (W ? 8 : 0) | ((Reg >> 3) << 2) | ((Index >> 3) << 1) |
                (Base >> 3);
    if (R != 0x40)
      u8(R);
  }

  /// op Reg, [Base + Index*2^Scale + Disp]; Index < 0 = none.
  void opMem(bool W, std::initializer_list<uint8_t> Op, unsigned Reg,
             unsigned Base, int Index, unsigned Scale, int32_t Disp) {
    rex(W, Reg, Index < 0 ? 0 : static_cast<unsigned>(Index), Base);
    for (uint8_t O : Op)
      u8(O);
    bool NeedSib = (Base & 7) == 4 || Index >= 0;
    unsigned Mod;
    if (Disp == 0 && (Base & 7) != 5)
      Mod = 0;
    else if (Disp >= -128 && Disp <= 127)
      Mod = 1;
    else
      Mod = 2;
    u8(static_cast<uint8_t>((Mod << 6) | ((Reg & 7) << 3) |
                            (NeedSib ? 4 : (Base & 7))));
    if (NeedSib)
      u8(static_cast<uint8_t>((Scale << 6) |
                              ((Index < 0 ? 4u : (Index & 7u)) << 3) |
                              (Base & 7)));
    if (Mod == 1)
      u8(static_cast<uint8_t>(Disp));
    else if (Mod == 2)
      u32(static_cast<uint32_t>(Disp));
  }

  /// op Reg, Rm with mod=3 (register-direct).
  void opRR(bool W, std::initializer_list<uint8_t> Op, unsigned Reg,
            unsigned Rm) {
    rex(W, Reg, 0, Rm);
    for (uint8_t O : Op)
      u8(O);
    u8(static_cast<uint8_t>(0xC0 | ((Reg & 7) << 3) | (Rm & 7)));
  }

  void loadQ(unsigned R, unsigned Base, int Index, unsigned Scale,
             int32_t Disp) {
    opMem(true, {0x8B}, R, Base, Index, Scale, Disp);
  }
  void storeQ(unsigned R, unsigned Base, int Index, unsigned Scale,
              int32_t Disp) {
    opMem(true, {0x89}, R, Base, Index, Scale, Disp);
  }
  /// 32-bit load: zero-extends into the full register (addrOf()).
  void loadD(unsigned R, unsigned Base, int Index, unsigned Scale,
             int32_t Disp) {
    opMem(false, {0x8B}, R, Base, Index, Scale, Disp);
  }
  void lea(unsigned R, unsigned Base, int Index, unsigned Scale,
           int32_t Disp) {
    opMem(true, {0x8D}, R, Base, Index, Scale, Disp);
  }
  void movRR(unsigned D, unsigned S) { opRR(true, {0x8B}, D, S); }
  /// mov r32, r32 — zero-extends (the addrOf() idiom).
  void movRR32(unsigned D, unsigned S) { opRR(false, {0x8B}, D, S); }

  void movRI(unsigned R, uint64_t V) {
    if (V <= 0x7FFFFFFFull) { // mov r32, imm32 zero-extends
      rex(false, 0, 0, R);
      u8(static_cast<uint8_t>(0xB8 | (R & 7)));
      u32(static_cast<uint32_t>(V));
    } else if (static_cast<int64_t>(V) ==
               static_cast<int32_t>(static_cast<uint32_t>(V))) {
      rex(true, 0, 0, R); // mov r64, simm32
      u8(0xC7);
      u8(static_cast<uint8_t>(0xC0 | (R & 7)));
      u32(static_cast<uint32_t>(V));
    } else {
      rex(true, 0, 0, R); // movabs
      u8(static_cast<uint8_t>(0xB8 | (R & 7)));
      u64(V);
    }
  }

  /// 81/83 /Ext: add(0) or(1) and(4) sub(5) xor(6) cmp(7) reg, imm.
  void aluRI(uint8_t Ext, unsigned R, int32_t Imm) {
    rex(true, 0, 0, R);
    if (Imm >= -128 && Imm <= 127) {
      u8(0x83);
      u8(static_cast<uint8_t>(0xC0 | (Ext << 3) | (R & 7)));
      u8(static_cast<uint8_t>(Imm));
    } else {
      u8(0x81);
      u8(static_cast<uint8_t>(0xC0 | (Ext << 3) | (R & 7)));
      u32(static_cast<uint32_t>(Imm));
    }
  }
  void addRI(unsigned R, int32_t I) { aluRI(0, R, I); }
  void subRI(unsigned R, int32_t I) { aluRI(5, R, I); }
  void cmpRI(unsigned R, int32_t I) { aluRI(7, R, I); }

  /// Same, on a qword memory operand [Base+Disp].
  void aluMemI(uint8_t Ext, unsigned Base, int32_t Disp, int32_t Imm) {
    if (Imm >= -128 && Imm <= 127) {
      opMem(true, {0x83}, Ext, Base, -1, 0, Disp);
      u8(static_cast<uint8_t>(Imm));
    } else {
      opMem(true, {0x81}, Ext, Base, -1, 0, Disp);
      u32(static_cast<uint32_t>(Imm));
    }
  }

  void addRR(unsigned D, unsigned S) { opRR(true, {0x03}, D, S); }
  void subRR(unsigned D, unsigned S) { opRR(true, {0x2B}, D, S); }
  void cmpRR(unsigned A, unsigned Bb) { opRR(true, {0x3B}, A, Bb); }
  void testRR(unsigned A, unsigned Bb) { opRR(true, {0x85}, A, Bb); }
  void orRR(unsigned D, unsigned S) { opRR(true, {0x0B}, D, S); }
  void xorRR32(unsigned D, unsigned S) { opRR(false, {0x33}, D, S); }
  void negR(unsigned R) { opRR(true, {0xF7}, 3, R); }
  void incR(unsigned R) { opRR(true, {0xFF}, 0, R); }
  void movsxd(unsigned D, unsigned S) { opRR(true, {0x63}, D, S); }
  void imulRR(unsigned D, unsigned S) { opRR(true, {0x0F, 0xAF}, D, S); }
  void cmov(uint8_t CC, unsigned D, unsigned S) {
    opRR(true, {0x0F, static_cast<uint8_t>(0x40 | CC)}, D, S);
  }
  void shlRI(unsigned R, uint8_t N) {
    rex(true, 0, 0, R);
    u8(0xC1);
    u8(static_cast<uint8_t>(0xC0 | (4 << 3) | (R & 7)));
    u8(N);
  }
  void shrRI(unsigned R, uint8_t N) {
    rex(true, 0, 0, R);
    u8(0xC1);
    u8(static_cast<uint8_t>(0xC0 | (5 << 3) | (R & 7)));
    u8(N);
  }
  void btsRI(unsigned R, uint8_t Bit) { // bts r64, imm8
    rex(true, 0, 0, R);
    u8(0x0F);
    u8(0xBA);
    u8(static_cast<uint8_t>(0xC0 | (5 << 3) | (R & 7)));
    u8(Bit);
  }
  void incMemQ(unsigned Base, int32_t Disp) {
    opMem(true, {0xFF}, 0, Base, -1, 0, Disp);
  }
  /// cmp byte [Base+Disp], imm8.
  void cmpByteMemI(unsigned Base, int32_t Disp, uint8_t Imm) {
    opMem(false, {0x80}, 7, Base, -1, 0, Disp);
    u8(Imm);
  }
  /// cmp Reg, qword [Base+Disp].
  void cmpRM(unsigned R, unsigned Base, int32_t Disp) {
    opMem(true, {0x3B}, R, Base, -1, 0, Disp);
  }
  /// mov dword [Base+Disp], imm32.
  void storeDImm(unsigned Base, int32_t Disp, int32_t Imm) {
    opMem(false, {0xC7}, 0, Base, -1, 0, Disp);
    u32(static_cast<uint32_t>(Imm));
  }
  /// mov qword [Base+Disp], simm32.
  void storeQImm(unsigned Base, int32_t Disp, int32_t Imm) {
    opMem(true, {0xC7}, 0, Base, -1, 0, Disp);
    u32(static_cast<uint32_t>(Imm));
  }

  void jmpReg(unsigned R) { opRR(false, {0xFF}, 4, R); }
  void callReg(unsigned R) { opRR(false, {0xFF}, 2, R); }
  void ret() { u8(0xC3); }
  void pushR(unsigned R) {
    rex(false, 0, 0, R);
    u8(static_cast<uint8_t>(0x50 | (R & 7)));
  }
  void popR(unsigned R) {
    rex(false, 0, 0, R);
    u8(static_cast<uint8_t>(0x58 | (R & 7)));
  }

  /// Forward local jump; returns the rel32 position for bind().
  size_t jccL(uint8_t CC) {
    u8(0x0F);
    u8(static_cast<uint8_t>(0x80 | CC));
    size_t P = pos();
    u32(0);
    return P;
  }
  size_t jmpL() {
    u8(0xE9);
    size_t P = pos();
    u32(0);
    return P;
  }
  void bind(size_t P) { patch32(P, static_cast<int32_t>(pos() - (P + 4))); }

  /// Jump/call to an already-emitted absolute buffer offset.
  void jmpFixed(size_t TargetOff) {
    u8(0xE9);
    u32(static_cast<uint32_t>(
        static_cast<int64_t>(TargetOff) - static_cast<int64_t>(pos() + 4)));
  }
  void jccFixed(uint8_t CC, size_t TargetOff) {
    u8(0x0F);
    u8(static_cast<uint8_t>(0x80 | CC));
    u32(static_cast<uint32_t>(
        static_cast<int64_t>(TargetOff) - static_cast<int64_t>(pos() + 4)));
  }
  void callFixed(size_t TargetOff) {
    u8(0xE8);
    u32(static_cast<uint32_t>(
        static_cast<int64_t>(TargetOff) - static_cast<int64_t>(pos() + 4)));
  }
};

#endif // S1_JIT_AVAILABLE

} // namespace

/// Friend bridge into Machine: member offsets baked into generated code
/// plus the C++ helpers the templates call back into. (Machine is not
/// standard-layout — it holds references — so offsets are computed from a
/// live instance rather than offsetof.)
struct JitAccess {
  struct Offsets {
    int32_t CurFunc, Pc, Halted, GcPending, CachedT, HeapTop;
    int32_t Instr, Movs, Calls, TailCalls, Syscalls, SHW, PerOp0;
    int32_t HeapObjects, HeapWords, ConsHits, ConsMisses;
  };

  static int32_t off(const Machine &M, const void *Field) {
    return static_cast<int32_t>(reinterpret_cast<const char *>(Field) -
                                reinterpret_cast<const char *>(&M));
  }

  static Offsets offsets(const Machine &M) {
    Offsets O;
    O.CurFunc = off(M, &M.CurFunc);
    O.Pc = off(M, &M.Pc);
    O.Halted = off(M, &M.Halted);
    O.GcPending = off(M, &M.GcPending);
    O.CachedT = off(M, &M.CachedTWord);
    O.HeapTop = off(M, &M.HeapTop);
    O.Instr = off(M, &M.Stats.Instructions);
    O.Movs = off(M, &M.Stats.Movs);
    O.Calls = off(M, &M.Stats.Calls);
    O.TailCalls = off(M, &M.Stats.TailCalls);
    O.Syscalls = off(M, &M.Stats.Syscalls);
    O.SHW = off(M, &M.Stats.StackHighWater);
    O.PerOp0 = off(M, M.Stats.PerOpcode.data());
    O.HeapObjects = off(M, &M.Stats.HeapObjects);
    O.HeapWords = off(M, &M.Stats.HeapWordsUsed);
    O.ConsHits = off(M, &M.JitConsHits);
    O.ConsMisses = off(M, &M.JitConsMisses);
    return O;
  }

  // ---- helpers called from generated code (SysV ABI) -------------------

  static void gcShim(Machine *M) { M->collectGarbage(); }

  static uint64_t allocShim(Machine *M, uint64_t T, uint64_t N) {
    return M->allocate(static_cast<Tag>(T), N);
  }

  /// Cons allocator for the GC-enabled fast path: exact-size free-list
  /// reuse and the GC trigger accounting live in Machine::allocate and
  /// cannot be inlined without changing the allocation schedule. The
  /// template has already popped the operands and counted the syscall.
  static uint64_t consShim(Machine *M, uint64_t Car, uint64_t Cdr) {
    uint64_t W = M->allocate(Tag::Cons, 2);
    M->mem(addrOf(W)) = Car;
    M->mem(addrOf(W) + 1) = Cdr;
    return W;
  }

  /// Full SYSCALL fallback. Counter and Pc bookkeeping mirror the threaded
  /// handler: the template stored CurFunc/Pc(=next) before the call, Throw
  /// may retarget both, and the continuation is resolved from wherever the
  /// machine ended up. Returns nullptr when the syscall trapped (the
  /// formatted message is left in Machine::NativeError).
  static const void *syscallShim(Machine *M, const XInsn *I) {
    ++M->Stats.Syscalls;
    if (!M->doSyscall(static_cast<Syscall>(I->S1), I->S2, I->S3, I->Target,
                      M->NativeError))
      return nullptr;
    return M->ActiveJit->addr(M->CurFunc, M->Pc);
  }

  /// Single-instruction executor for the cold opcodes — same semantics,
  /// same fault behavior (Machine::xread/xwrite/mem) as the threaded
  /// handlers. Returns 0 = fall through, 1 = branch taken, -1 = division
  /// by zero.
  static int64_t coldShim(Machine *M, const XInsn *I) {
    Machine &Mc = *M;
    switch (I->Op) {
    case XOp::PopM: {
      uint64_t V = Mc.pop();
      Mc.xwrite(I->GA, V);
      return 0;
    }
    case XOp::Alu2G:
    case XOp::Alu3G: {
      bool Three = I->Op == XOp::Alu3G;
      int64_t A = static_cast<int64_t>(Mc.xread(Three ? I->GB : I->GA));
      int64_t Bv = static_cast<int64_t>(Mc.xread(Three ? I->GX : I->GB));
      int64_t R;
      switch (static_cast<Opcode>(I->Sub)) {
      case Opcode::ADD:
        R = A + Bv;
        break;
      case Opcode::SUB:
        R = A - Bv;
        break;
      case Opcode::MULT:
        R = A * Bv;
        break;
      default:
        if (Bv == 0)
          return -1;
        R = A / Bv;
        break;
      }
      Mc.xwrite(I->GA, static_cast<uint64_t>(R));
      return 0;
    }
    case XOp::JmpzG: {
      int64_t A = static_cast<int64_t>(Mc.xread(I->GA));
      int64_t Bv = static_cast<int64_t>(Mc.xread(I->GB));
      int64_t Sign = A < Bv ? -1 : (A > Bv ? 1 : 0);
      return jitCondHolds(I->C, Sign) ? 1 : 0;
    }
    case XOp::FJmpzG: {
      double A = jitAsDouble(Mc.xread(I->GA));
      double Bv = jitAsDouble(Mc.xread(I->GB));
      int64_t Sign = A < Bv ? -1 : (A > Bv ? 1 : 0);
      bool Taken = (std::isnan(A) || std::isnan(Bv))
                       ? I->C == Cond::NEQ
                       : jitCondHolds(I->C, Sign);
      return Taken ? 1 : 0;
    }
    case XOp::MovTag: {
      uint64_t Addr = I->GB.M == XArg::Mode::Mem ? Mc.xea(I->GB.Mem)
                                                 : addrOf(Mc.xread(I->GB));
      Mc.xwrite(I->GA, makePointer(static_cast<Tag>(I->S1), Addr));
      return 0;
    }
    case XOp::GetTag:
      Mc.xwrite(I->GA, static_cast<uint64_t>(tagOf(Mc.xread(I->GB))));
      return 0;
    case XOp::Lea:
      Mc.xwrite(I->GA, Mc.xea(I->GB.Mem));
      return 0;
    case XOp::FAlu2:
    case XOp::FAlu3: {
      bool Three = I->Op == XOp::FAlu3;
      double A = jitAsDouble(Mc.xread(Three ? I->GB : I->GA));
      double Bv = jitAsDouble(Mc.xread(Three ? I->GX : I->GB));
      double R;
      switch (static_cast<Opcode>(I->Sub)) {
      case Opcode::FADD:
        R = A + Bv;
        break;
      case Opcode::FSUB:
        R = A - Bv;
        break;
      case Opcode::FMULT:
        R = A * Bv;
        break;
      case Opcode::FDIV:
        R = A / Bv;
        break;
      case Opcode::FMAX:
        R = std::max(A, Bv);
        break;
      default:
        R = std::min(A, Bv);
        break;
      }
      Mc.xwrite(I->GA, jitFromDouble(R));
      return 0;
    }
    case XOp::FUnary: {
      double X = jitAsDouble(Mc.xread(I->GB));
      double R;
      switch (static_cast<Opcode>(I->Sub)) {
      case Opcode::FNEG:
        R = -X;
        break;
      case Opcode::FABS:
        R = std::fabs(X);
        break;
      case Opcode::FSQRT:
        R = std::sqrt(X);
        break;
      case Opcode::FSIN:
        R = std::sin(X * 2.0 * M_PI); // the S-1 trig unit takes cycles
        break;
      case Opcode::FCOS:
        R = std::cos(X * 2.0 * M_PI);
        break;
      case Opcode::FEXP:
        R = std::exp(X);
        break;
      default:
        R = std::log(X);
        break;
      }
      Mc.xwrite(I->GA, jitFromDouble(R));
      return 0;
    }
    case XOp::FAtan: {
      double Y = jitAsDouble(Mc.xread(I->GB));
      double X = jitAsDouble(Mc.xread(I->GX));
      Mc.xwrite(I->GA, jitFromDouble(std::atan2(Y, X)));
      return 0;
    }
    case XOp::Itof:
      Mc.xwrite(I->GA, jitFromDouble(static_cast<double>(
                           static_cast<int64_t>(Mc.xread(I->GB)))));
      return 0;
    case XOp::Ftoi:
      Mc.xwrite(I->GA,
                static_cast<uint64_t>(
                    static_cast<int64_t>(jitAsDouble(Mc.xread(I->GB)))));
      return 0;
    default:
      return 0; // unreachable: hot ops never route here
    }
  }

#if S1_JIT_AVAILABLE
  static std::shared_ptr<const JitProgram>
  compile(std::shared_ptr<const DecodedProgram> DP, const JitOptions &Opts,
          Machine &Layout);
#endif
};

#if S1_JIT_AVAILABLE

std::shared_ptr<const JitProgram>
JitAccess::compile(std::shared_ptr<const DecodedProgram> DP,
                   const JitOptions &Opts, Machine &Layout) {
  const Offsets MO = offsets(Layout);
  const bool Detailed = Opts.DetailedStats;
  const bool GcOn = Opts.GcEnabled;
  const int32_t MW = static_cast<int32_t>(MemoryWords);
  const int32_t StackLimit = static_cast<int32_t>(StackBase + StackWords);
  const int32_t HeapEnd = static_cast<int32_t>(HeapBase + HeapWords);
  const int32_t SpOff = static_cast<int32_t>(s1::SP) * 8;
  const size_t NF = DP->Functions.size();
  // The virtual operand stack's register file, top of stack last.
  static constexpr unsigned VRegs[4] = {R8, R9, R10, R11};

  auto JP = std::make_shared<JitProgram>();
  JP->DP = DP;
  JP->DetailedOn = Detailed;
  JP->GcOn = GcOn;
  JP->Offs.resize(NF);
  JP->AddrArrays.resize(NF);
  // Sized before emission: the movabs of FuncTable.data() baked into RET /
  // CALLPTR templates must stay valid.
  JP->FuncTable.resize(NF);
  const uint64_t FTData = reinterpret_cast<uint64_t>(JP->FuncTable.data());

  Asm A;

  // ---- entry thunk -----------------------------------------------------
  // int entry(uint64_t *regs, uint64_t *mem, Machine *m, uint64_t instr,
  //           uint64_t fuel, const void *start)
  JP->EntryOff = A.pos();
  A.pushR(RBP);
  A.pushR(RBX);
  A.pushR(R12);
  A.pushR(R13);
  A.pushR(R14);
  A.pushR(R15);
  A.subRI(4 /*rsp*/, 8); // align: template call sites sit at rsp%16==0
  A.movRR(RBX, RDI);
  A.movRR(R12, RSI);
  A.movRR(R13, RDX);
  A.movRR(R14, RCX);
  A.movRR(R15, R8);
  A.jmpReg(R9);

  // ---- shared epilogue: status already in eax --------------------------
  const size_t EpiOff = A.pos();
  A.storeQ(R14, R13, -1, 0, MO.Instr);
  A.addRI(4 /*rsp*/, 8);
  A.popR(R15);
  A.popR(R14);
  A.popR(R13);
  A.popR(R12);
  A.popR(RBX);
  A.popR(RBP);
  A.ret();

  // ---- shared GC stub (called from block entries when GcPending) -------
  const size_t GcStubOff = A.pos();
  A.subRI(4 /*rsp*/, 8);
  A.storeQ(R14, R13, -1, 0, MO.Instr);
  A.movRR(RDI, R13);
  A.movRI(RAX, reinterpret_cast<uint64_t>(&JitAccess::gcShim));
  A.callReg(RAX);
  A.addRI(4 /*rsp*/, 8);
  A.ret();

  // ---- shared exit stubs ----------------------------------------------
  const size_t OkStubOff = A.pos(); // RET popped the host sentinel
  A.xorRR32(RAX, RAX);
  A.jmpFixed(EpiOff);
  const size_t SysErrStubOff = A.pos(); // doSyscall trapped
  A.movRI(RAX, static_cast<uint64_t>(JitStatus::SyscallErr));
  A.jmpFixed(EpiOff);
  const size_t HaltDynStubOff = A.pos(); // halted with CurFunc/Pc already set
  A.movRI(RAX, static_cast<uint64_t>(JitStatus::HaltedMem));
  A.jmpFixed(EpiOff);

  // ---- function bodies -------------------------------------------------
  struct Fixup {
    size_t At;
    int Func;
    int Idx;
  };
  std::vector<Fixup> Fixups; // rel32 to block entry Idx of Func

  /// Compile-time view of the virtual operand stack inside one block
  /// body. Depth entries live in VRegs[0..Depth-1] (and, write-through,
  /// in Memory at [SP_base .. SP_base+Depth)); Peak is the deferred
  /// StackHighWater high-water mark; SpCached says rbp == Regs[SP]
  /// (the segment base — Regs[SP] itself is not yet bumped).
  struct VCtx {
    bool Batched = false;
    bool BulkOps = false; // PerOpcode bumped wholesale at block entry
    int End = 0;   // one past the block's last instruction
    int Extra = 0; // fused-branch precharge riding on the bulk retire
    int Depth = 0;
    int Peak = 0;
    bool SpCached = false;
  };

  // Pseudo-status for the combined push guard: the stub discriminates a
  // plain stack overflow from the Sp == 2^64-1 wrap that the threaded
  // engine lets through its overflow check only to fault in mem().
  constexpr JitStatus PushColdStatus = static_cast<JitStatus>(1000);

  for (size_t F = 0; F < NF; ++F) {
    const DecodedFunction &DF = DP->Functions[F];
    const int Size = static_cast<int>(DF.Code.size());
    JP->Offs[F].assign(static_cast<size_t>(Size) + 1, 0);

    // Per-function trap stubs, deduplicated by the full reconstruction
    // tuple: {status, reported pc, r14 adjustment, deferred sp delta,
    // deferred stack peak}. The stub rolls the bulk-retired instruction
    // count back to the trap boundary and materializes the virtual
    // stack's deferred Regs[SP]/StackHighWater updates before exiting,
    // so trapped state is bit-identical to the threaded engine's.
    // The second key element is the trap boundary's unexecuted tail of
    // the block (sorted original opcodes): when the batched lane bumped
    // PerOpcode wholesale at block entry, the stub must subtract the
    // tail's bumps back out to present threaded-exact histograms.
    using StubKey = std::pair<std::array<int32_t, 5>, std::vector<int32_t>>;
    std::map<StubKey, std::vector<size_t>> StubSites;
    auto tailOps = [&](const VCtx &C, int Idx) {
      std::vector<int32_t> T;
      if (C.Batched && C.BulkOps)
        for (int J = Idx + 1; J < C.End; ++J)
          T.push_back(static_cast<int32_t>(
              static_cast<size_t>(DF.Code[static_cast<size_t>(J)].OrigOp)));
      std::sort(T.begin(), T.end());
      return T;
    };
    auto jccStubC = [&](uint8_t CC, JitStatus St, int PcVal, const VCtx &C,
                        int Idx) {
      A.u8(0x0F);
      A.u8(static_cast<uint8_t>(0x80 | CC));
      int Adj = C.Batched ? C.End - Idx - 1 + C.Extra : 0;
      StubSites[{{static_cast<int32_t>(St), PcVal, Adj, C.Depth, C.Peak},
                 tailOps(C, Idx)}]
          .push_back(A.pos());
      A.u32(0);
    };
    auto jmpStubC = [&](JitStatus St, int PcVal, const VCtx &C, int Idx) {
      A.u8(0xE9);
      int Adj = C.Batched ? C.End - Idx - 1 + C.Extra : 0;
      StubSites[{{static_cast<int32_t>(St), PcVal, Adj, C.Depth, C.Peak},
                 tailOps(C, Idx)}]
          .push_back(A.pos());
      A.u32(0);
    };
    auto jmpTo = [&](int Fn, int Idx) {
      A.u8(0xE9);
      Fixups.push_back({A.pos(), Fn, Idx});
      A.u32(0);
    };
    auto jccTo = [&](uint8_t CC, int Fn, int Idx) {
      A.u8(0x0F);
      A.u8(static_cast<uint8_t>(0x80 | CC));
      Fixups.push_back({A.pos(), Fn, Idx});
      A.u32(0);
    };

    // addrOf(Regs[Base]) [+ Disp] into Dst.
    auto emitEaS = [&](unsigned Dst, unsigned Tmp, const XMem &Mm) {
      A.loadD(Dst, RBX, -1, 0, static_cast<int32_t>(Mm.Base) * 8);
      if (Mm.Disp != 0) {
        if (fitsI32(Mm.Disp))
          A.lea(Dst, Dst, -1, 0, static_cast<int32_t>(Mm.Disp));
        else {
          A.movRI(Tmp, static_cast<uint64_t>(Mm.Disp));
          A.addRR(Dst, Tmp);
        }
      }
    };
    // addrOf(Regs[Base]) + (Disp + (Regs[Index] << Scale)) into Dst.
    auto emitEaX = [&](unsigned Dst, unsigned Tmp, unsigned Tmp2,
                       const XMem &Mm) {
      A.loadD(Dst, RBX, -1, 0, static_cast<int32_t>(Mm.Base) * 8);
      A.loadQ(Tmp, RBX, -1, 0, static_cast<int32_t>(Mm.Index) * 8);
      if (Mm.Scale)
        A.shlRI(Tmp, Mm.Scale);
      A.addRR(Dst, Tmp);
      if (Mm.Disp != 0) {
        if (fitsI32(Mm.Disp))
          A.lea(Dst, Dst, -1, 0, static_cast<int32_t>(Mm.Disp));
        else {
          A.movRI(Tmp2, static_cast<uint64_t>(Mm.Disp));
          A.addRR(Dst, Tmp2);
        }
      }
    };
    auto emitEa = [&](unsigned Dst, unsigned Tmp, unsigned Tmp2,
                      const XMem &Mm) {
      if (Mm.Index == 0xFF)
        emitEaS(Dst, Tmp, Mm);
      else
        emitEaX(Dst, Tmp, Tmp2, Mm);
    };
    // mem() fault guard: word address in R must be < MemoryWords.
    auto checkAddrC = [&](unsigned R, int PcVal, const VCtx &C, int Idx) {
      A.cmpRI(R, MW);
      jccStubC(CC_AE, JitStatus::HaltedMem, PcVal, C, Idx);
    };
    // Regs[SP] update + StackHighWater, with the new SP in R (always
    // maintained, exactly like Machine::push). Used by the materialized
    // call templates.
    auto emitShw = [&](unsigned NewSp, unsigned Tmp) {
      A.lea(Tmp, NewSp, -1, 0, -static_cast<int32_t>(StackBase));
      A.cmpRM(Tmp, R13, MO.SHW);
      size_t Skip = A.jccL(CC_BE);
      A.storeQ(Tmp, R13, -1, 0, MO.SHW);
      A.bind(Skip);
    };

    // ---- virtual-stack bookkeeping (clobbers rax/rcx only) -------------
    auto ensureSpBase = [&](VCtx &C) {
      if (!C.SpCached) {
        A.loadQ(RBP, RBX, -1, 0, SpOff);
        C.SpCached = true;
      }
    };
    // Flush the deferred StackHighWater update without moving Regs[SP].
    auto syncShw = [&](VCtx &C) {
      if (C.Peak == 0)
        return;
      ensureSpBase(C);
      A.lea(RCX, RBP, -1, 0, C.Peak - static_cast<int32_t>(StackBase));
      A.cmpRM(RCX, R13, MO.SHW);
      size_t Skip = A.jccL(CC_BE);
      A.storeQ(RCX, R13, -1, 0, MO.SHW);
      A.bind(Skip);
      C.Peak = 0;
    };
    // Materialize: commit the deferred Regs[SP] bump and StackHighWater,
    // then forget the segment. Values are already in Memory
    // (write-through), so this is pure bookkeeping.
    auto mat = [&](VCtx &C) {
      if (C.Depth > 0) {
        ensureSpBase(C);
        A.lea(RAX, RBP, -1, 0, C.Depth);
        A.storeQ(RAX, RBX, -1, 0, SpOff);
      }
      syncShw(C);
      C.Depth = 0;
      C.SpCached = false;
    };

    // Loads an XArg value into Dst (Reg/Const/Mem), faulting like xread.
    auto emitXRead = [&](unsigned Dst, unsigned T1, unsigned T2, unsigned T3,
                         const XArg &G, int PcVal, const VCtx &C, int Idx) {
      switch (G.M) {
      case XArg::Mode::Reg:
        A.loadQ(Dst, RBX, -1, 0, static_cast<int32_t>(G.R) * 8);
        break;
      case XArg::Mode::Const:
        A.movRI(Dst, G.K);
        break;
      case XArg::Mode::Mem:
        emitEa(T1, T2, T3, G.Mem);
        checkAddrC(T1, PcVal, C, Idx);
        A.loadQ(Dst, R12, static_cast<int>(T1), 3, 0);
        break;
      case XArg::Mode::None:
        A.movRI(Dst, 0);
        break;
      }
    };

    // The full SYSCALL fallback template; also the slow path behind the
    // inline fixnum fast paths. Callers materialize first.
    auto emitSyscallGeneric = [&](const XInsn &I, int ThisIdx) {
      A.storeDImm(R13, MO.CurFunc, static_cast<int32_t>(F));
      A.storeDImm(R13, MO.Pc, ThisIdx + 1);
      A.storeQ(R14, R13, -1, 0, MO.Instr);
      A.movRR(RDI, R13);
      A.movRI(RSI, reinterpret_cast<uint64_t>(&I));
      A.movRI(RAX, reinterpret_cast<uint64_t>(&JitAccess::syscallShim));
      A.callReg(RAX);
      A.testRR(RAX, RAX);
      A.jccFixed(CC_E, SysErrStubOff);
      A.cmpByteMemI(R13, MO.Halted, 0);
      A.jccFixed(CC_NE, HaltDynStubOff);
      A.jmpReg(RAX); // continuation resolved by the shim (Throw may move it)
    };

    const int Fi = static_cast<int>(F);
    auto memUsesSp = [](const XMem &Mm) {
      return Mm.Base == static_cast<uint8_t>(s1::SP) ||
             (Mm.Index != 0xFF && Mm.Index == static_cast<uint8_t>(s1::SP));
    };

    // Compare/NumPred fast paths can fuse with a following boolean branch:
    // the compiler's test pattern is always `JmpzRK RV, 0, EQ|NEQ` right
    // after the predicate syscall (which ends the block, so the branch is
    // a one-instruction block of its own).
    auto fusedBranch = [&](int Idx) -> const XInsn * {
      int Nx = Idx + 1;
      if (Nx >= Size)
        return nullptr;
      const XInsn &Br = DF.Code[static_cast<size_t>(Nx)];
      if (Br.Op != XOp::JmpzRK || Br.A != static_cast<uint8_t>(s1::RV) ||
          Br.K != 0 || (Br.C != Cond::EQ && Br.C != Cond::NEQ))
        return nullptr;
      return &Br;
    };

    // Retire a fused branch inline. On entry the boolean RV word is live
    // in rdi, the virtual stack is materialized, and the branch's block
    // boundary is due: check fuel there (nothing on the fast path can
    // raise Halted or GcPending, so those boundary checks are vacuous),
    // retire the branch, and dispatch on the boolean directly. The
    // standalone branch block is still emitted for other predecessors and
    // for the slow path, which resumes at the branch's own entry.
    auto emitBoolTail = [&](int Idx, const XInsn &Br, VCtx &C) {
      int Nx = Idx + 1;
      if (C.Batched && C.Extra > 0) {
        // Precharged lane: the block's fit test already proved fuel for
        // the branch and bulk-retired it, so the boundary is free.
      } else {
        A.opRR(true, {0x3B}, R14, R15); // cmp r14, r15
        jccStubC(CC_AE, JitStatus::Fuel, Nx, C, Idx);
        A.incR(R14);
      }
      if (Detailed)
        A.incMemQ(R13, MO.PerOp0 +
                           8 * static_cast<int32_t>(
                                   static_cast<size_t>(Br.OrigOp)));
      A.testRR(RDI, RDI);
      // JmpzRK RV,0: EQ takes when the boolean is NilWord (false).
      jccTo(Br.C == Cond::EQ ? CC_E : CC_NE, Fi, Br.Target);
      jmpTo(Fi, Nx + 1);
    };

    // One instruction template, emitted inside a block body. `C` carries
    // the virtual-stack state; instruction retirement (r14) is the block
    // loop's job. Per-site compile statistics hook the unbatched body,
    // which is emitted exactly once per block.
    auto emitInsn = [&](int Idx, VCtx &C) {
      const XInsn &I = DF.Code[static_cast<size_t>(Idx)];
      const int Next = Idx + 1;
      if (Detailed && !C.BulkOps)
        A.incMemQ(R13, MO.PerOp0 +
                           8 * static_cast<int32_t>(
                                   static_cast<size_t>(I.OrigOp)));

      switch (I.Op) {
      // ---- MOV family (inline, all twelve mode pairs) ------------------
      case XOp::MovRR:
      case XOp::MovRK:
      case XOp::MovRM:
      case XOp::MovRX:
      case XOp::MovMR:
      case XOp::MovMK:
      case XOp::MovMM:
      case XOp::MovMX:
      case XOp::MovXR:
      case XOp::MovXK:
      case XOp::MovXM:
      case XOp::MovXX: {
        bool RegDst = I.Op == XOp::MovRR || I.Op == XOp::MovRK ||
                      I.Op == XOp::MovRM || I.Op == XOp::MovRX;
        // A live virtual segment defers Regs[SP]: materialize when the
        // instruction reads SP (stale in memory), writes SP (invalidates
        // the cached base), or stores to memory (could overwrite a
        // virtual slot's write-through copy, making the register stale).
        bool SrcSp =
            (I.Op == XOp::MovRR && I.B == static_cast<uint8_t>(s1::SP)) ||
            ((I.Op == XOp::MovRM || I.Op == XOp::MovRX) && memUsesSp(I.MB));
        if (!RegDst || I.A == static_cast<uint8_t>(s1::SP) || SrcSp)
          mat(C);
        if (Detailed)
          A.incMemQ(R13, MO.Movs);
        // Source value into RCX (register/constant sources), or source EA
        // into RAX then load.
        auto loadSrc = [&] {
          switch (I.Op) {
          case XOp::MovRR:
          case XOp::MovMR:
          case XOp::MovXR:
            A.loadQ(RCX, RBX, -1, 0, static_cast<int32_t>(I.B) * 8);
            break;
          case XOp::MovRK:
          case XOp::MovMK:
          case XOp::MovXK:
            A.movRI(RCX, I.K);
            break;
          case XOp::MovRM:
          case XOp::MovMM:
          case XOp::MovXM:
            emitEaS(RAX, RCX, I.MB);
            checkAddrC(RAX, Next, C, Idx);
            A.loadQ(RCX, R12, RAX, 3, 0);
            break;
          default: // MovRX / MovMX / MovXX
            emitEaX(RAX, RCX, RDX, I.MB);
            checkAddrC(RAX, Next, C, Idx);
            A.loadQ(RCX, R12, RAX, 3, 0);
            break;
          }
        };
        loadSrc();
        switch (I.Op) {
        case XOp::MovRR:
        case XOp::MovRK:
        case XOp::MovRM:
        case XOp::MovRX:
          A.storeQ(RCX, RBX, -1, 0, static_cast<int32_t>(I.A) * 8);
          break;
        case XOp::MovMR:
        case XOp::MovMK:
        case XOp::MovMM:
        case XOp::MovMX:
          emitEaS(RAX, RDX, I.MA);
          checkAddrC(RAX, Next, C, Idx);
          A.storeQ(RCX, R12, RAX, 3, 0);
          break;
        default: // MovX* destinations
          emitEaX(RAX, RDX, RSI, I.MA);
          checkAddrC(RAX, Next, C, Idx);
          A.storeQ(RCX, R12, RAX, 3, 0);
          break;
        }
        break;
      }

      // ---- stack traffic ----------------------------------------------
      case XOp::PushR:
      case XOp::PushK:
      case XOp::PushM:
      case XOp::PushX: {
        // Virtual push: bound-check first (threaded traps before reading
        // the value), value into the next virtual register with its
        // write-through store, Regs[SP]/StackHighWater deferred.
        bool SrcSp =
            (I.Op == XOp::PushR && I.B == static_cast<uint8_t>(s1::SP)) ||
            ((I.Op == XOp::PushM || I.Op == XOp::PushX) && memUsesSp(I.MB));
        if (SrcSp)
          mat(C);
        if (C.Depth == 4)
          mat(C); // register file full: commit and start a new segment
        ensureSpBase(C);
        unsigned V = VRegs[C.Depth];
        const bool Combined = StackLimit <= MW;
        if (Combined) {
          // One combined guard on the segment base: slots below
          // StackLimit-1 are in bounds (StackLimit <= MemoryWords), so a
          // single compare covers both the overflow check and the store
          // fault, and the store indexes off rbp directly. The cold stub
          // reconstructs the slot (rbp is still live there) and
          // separates overflow from the Sp = 2^64-1 wrap, which the
          // threaded engine lets through its overflow check only to
          // fault in mem() — status and boundary match either way. A
          // wrapping rbp + Depth is unreachable for Depth > 0: the
          // segment's earlier pushes trap first.
          A.cmpRI(RBP, StackLimit - 1 - C.Depth);
          jccStubC(CC_AE, PushColdStatus, Next, C, Idx);
        } else {
          A.lea(RCX, RBP, -1, 0, C.Depth + 1);
          A.cmpRI(RCX, StackLimit);
          jccStubC(CC_AE, JitStatus::StackOv, Next, C, Idx);
        }
        switch (I.Op) {
        case XOp::PushR:
          A.loadQ(V, RBX, -1, 0, static_cast<int32_t>(I.B) * 8);
          break;
        case XOp::PushK:
          A.movRI(V, I.K);
          break;
        case XOp::PushM:
          emitEaS(RDX, RSI, I.MB);
          checkAddrC(RDX, Next, C, Idx);
          A.loadQ(V, R12, RDX, 3, 0);
          break;
        default: // PushX
          emitEaX(RDX, RSI, RDI, I.MB);
          checkAddrC(RDX, Next, C, Idx);
          A.loadQ(V, R12, RDX, 3, 0);
          break;
        }
        if (Combined) {
          A.storeQ(V, R12, RBP, 3, C.Depth * 8);
        } else {
          // Degenerate layout (memory smaller than the stack region):
          // keep the separate store guard so a wrapped SP faults.
          A.lea(RAX, RBP, -1, 0, C.Depth);
          A.cmpRI(RAX, MW);
          jccStubC(CC_AE, JitStatus::HaltedMem, Next, C, Idx);
          A.storeQ(V, R12, RAX, 3, 0);
        }
        C.Depth += 1;
        C.Peak = std::max(C.Peak, C.Depth);
        break;
      }

      case XOp::PopR: {
        if (I.A == static_cast<uint8_t>(s1::SP))
          mat(C); // popping into SP rewrites the deferred base itself
        if (C.Depth > 0) {
          // Virtual pop: the value is still live in a host register.
          A.storeQ(VRegs[C.Depth - 1], RBX, -1, 0,
                   static_cast<int32_t>(I.A) * 8);
          C.Depth -= 1;
          break;
        }
        // Popping below the segment base: settle the deferred high-water
        // mark, then run the classic template against memory SP (which is
        // architecturally correct — the deferred delta is zero).
        syncShw(C);
        C.SpCached = false;
        A.loadQ(RAX, RBX, -1, 0, SpOff);
        A.subRI(RAX, 1);
        A.storeQ(RAX, RBX, -1, 0, SpOff);
        checkAddrC(RAX, Next, C, Idx);
        A.loadQ(RCX, R12, RAX, 3, 0);
        A.storeQ(RCX, RBX, -1, 0, static_cast<int32_t>(I.A) * 8);
        break;
      }

      // ---- integer ALU register forms ---------------------------------
      case XOp::AddRR:
      case XOp::SubRR: {
        if (I.A == static_cast<uint8_t>(s1::SP) ||
            I.B == static_cast<uint8_t>(s1::SP))
          mat(C);
        A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(I.A) * 8);
        A.opMem(true, {I.Op == XOp::AddRR ? uint8_t(0x03) : uint8_t(0x2B)},
                RAX, RBX, -1, 0, static_cast<int32_t>(I.B) * 8);
        A.storeQ(RAX, RBX, -1, 0, static_cast<int32_t>(I.A) * 8);
        break;
      }
      case XOp::AddRK:
      case XOp::SubRK: {
        if (I.A == static_cast<uint8_t>(s1::SP))
          mat(C);
        A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(I.A) * 8);
        int64_t K = static_cast<int64_t>(I.K);
        if (fitsI32(K)) {
          A.aluRI(I.Op == XOp::AddRK ? 0 : 5, RAX, static_cast<int32_t>(K));
        } else {
          A.movRI(RCX, I.K);
          if (I.Op == XOp::AddRK)
            A.addRR(RAX, RCX);
          else
            A.subRR(RAX, RCX);
        }
        A.storeQ(RAX, RBX, -1, 0, static_cast<int32_t>(I.A) * 8);
        break;
      }

      // ---- control (always block terminators: materialize first) ------
      case XOp::Jmp:
        mat(C);
        jmpTo(Fi, I.Target);
        break;

      case XOp::JmpzRR: {
        mat(C);
        A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(I.A) * 8);
        A.opMem(true, {0x3B}, RAX, RBX, -1, 0,
                static_cast<int32_t>(I.B) * 8);
        jccTo(ccFor(I.C), Fi, I.Target);
        break;
      }
      case XOp::JmpzRK: {
        mat(C);
        A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(I.A) * 8);
        int64_t K = static_cast<int64_t>(I.K);
        if (fitsI32(K)) {
          A.cmpRI(RAX, static_cast<int32_t>(K));
        } else {
          A.movRI(RCX, I.K);
          A.cmpRR(RAX, RCX);
        }
        jccTo(ccFor(I.C), Fi, I.Target);
        break;
      }

      case XOp::Call: {
        mat(C);
        A.incMemQ(R13, MO.Calls);
        A.loadQ(RAX, RBX, -1, 0, SpOff);
        A.lea(RCX, RAX, -1, 0, 4);
        A.cmpRI(RCX, StackLimit);
        jccStubC(CC_AE, JitStatus::StackOv, Next, C, Idx);
        checkAddrC(RAX, Next, C, Idx);
        A.movRI(RCX, (static_cast<uint64_t>(F + 1) << 32) |
                         static_cast<uint32_t>(Next));
        A.storeQ(RCX, R12, RAX, 3, 0);
        A.incR(RAX);
        A.storeQ(RAX, RBX, -1, 0, SpOff);
        emitShw(RAX, RCX);
        jmpTo(I.Target, 0);
        break;
      }

      case XOp::CallPtr:
      case XOp::TailCallPtr: {
        mat(C);
        bool IsTail = I.Op == XOp::TailCallPtr;
        A.incMemQ(R13, IsTail ? MO.TailCalls : MO.Calls);
        emitXRead(RAX, RAX, RCX, RDX, I.GA, Next, C, Idx); // Fn word
        A.movRR(RCX, RAX);
        A.shrRI(RCX, static_cast<uint8_t>(TagShift));
        A.cmpRI(RCX, static_cast<int32_t>(Tag::Function));
        jccStubC(CC_NE, JitStatus::NotFunc, Next, C, Idx);
        A.movRR32(RDX, RAX); // addrOf(Fn)
        // Regs[1] = mem(addr + 1): the closure environment.
        A.lea(RCX, RDX, -1, 0, 1);
        checkAddrC(RCX, Next, C, Idx);
        A.loadQ(RSI, R12, RCX, 3, 0);
        A.storeQ(RSI, RBX, -1, 0, 1 * 8);
        // Callee function index from the function cell (addr < MW is
        // implied by addr+1 < MW — addrOf is 32-bit, no wrap).
        A.loadQ(R11, R12, RDX, 3, 0);
        A.movRR32(R11, R11);
        if (!IsTail) {
          // push(makeRetWord(F, Next)) — no +4 headroom check, exactly
          // like the threaded CALLPTR handler.
          A.loadQ(RAX, RBX, -1, 0, SpOff);
          checkAddrC(RAX, Next, C, Idx);
          A.movRI(RCX, (static_cast<uint64_t>(F + 1) << 32) |
                           static_cast<uint32_t>(Next));
          A.storeQ(RCX, R12, RAX, 3, 0);
          A.incR(RAX);
          A.storeQ(RAX, RBX, -1, 0, SpOff);
          emitShw(RAX, RCX);
        } else {
          // TailTransfer(K, callee) with the callee index live in r11.
          int32_t K = static_cast<int32_t>(I.S2);
          A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(s1::FP) * 8);
          checkAddrC(RAX, Next, C, Idx);
          A.lea(RCX, RAX, -1, 0, 1);
          checkAddrC(RCX, Next, C, Idx);
          A.loadQ(RDX, R12, RCX, 3, 0); // frame argc
          A.cmpRI(RDX, K);
          jccStubC(CC_B, JitStatus::TailOv, Next, C, Idx);
          A.loadQ(RSI, R12, RAX, 3, 0); // env slot = mem(FP+0)
          A.storeQ(RSI, RBX, -1, 0, static_cast<int32_t>(s1::ENV) * 8);
          A.lea(RCX, RAX, -1, 0, -1);
          checkAddrC(RCX, Next, C, Idx);
          A.loadQ(RDI, R12, RCX, 3, 0); // old FP
          if (K > 0) {
            A.loadQ(RSI, RBX, -1, 0, SpOff);
            A.subRI(RSI, K);                // arg source base
            A.lea(RCX, RAX, -1, 0, -2 - K); // arg destination base
            A.movRI(R8, 0);
            size_t LoopTop = A.pos();
            A.cmpRI(R8, K);
            size_t Done = A.jccL(CC_E);
            A.lea(R9, RSI, R8, 0, 0);
            checkAddrC(R9, Next, C, Idx);
            A.loadQ(R10, R12, R9, 3, 0);
            A.lea(R9, RCX, R8, 0, 0);
            checkAddrC(R9, Next, C, Idx);
            A.storeQ(R10, R12, R9, 3, 0);
            A.addRI(R8, 1);
            A.jmpFixed(LoopTop);
            A.bind(Done);
          }
          A.lea(RDX, RAX, -1, 0, -1);
          A.storeQ(RDX, RBX, -1, 0, SpOff);
          A.storeQ(RDI, RBX, -1, 0, static_cast<int32_t>(s1::FP) * 8);
          A.storeQImm(RBX, static_cast<int32_t>(s1::RTA) * 8, K);
        }
        // Indirect transfer to the callee's entry template.
        A.movRI(RSI, FTData);
        A.loadQ(RSI, RSI, R11, 3, 0);
        A.loadQ(RSI, RSI, -1, 0, 0);
        A.jmpReg(RSI);
        break;
      }

      case XOp::TailCall: {
        mat(C);
        A.incMemQ(R13, MO.TailCalls);
        int32_t K = static_cast<int32_t>(I.S2);
        A.loadQ(RAX, RBX, -1, 0, static_cast<int32_t>(s1::FP) * 8);
        checkAddrC(RAX, Next, C, Idx);
        A.lea(RCX, RAX, -1, 0, 1);
        checkAddrC(RCX, Next, C, Idx);
        A.loadQ(RDX, R12, RCX, 3, 0);
        A.cmpRI(RDX, K);
        jccStubC(CC_B, JitStatus::TailOv, Next, C, Idx);
        A.loadQ(RSI, R12, RAX, 3, 0);
        A.storeQ(RSI, RBX, -1, 0, static_cast<int32_t>(s1::ENV) * 8);
        A.lea(RCX, RAX, -1, 0, -1);
        checkAddrC(RCX, Next, C, Idx);
        A.loadQ(RDI, R12, RCX, 3, 0);
        if (K > 0) {
          A.loadQ(RSI, RBX, -1, 0, SpOff);
          A.subRI(RSI, K);
          A.lea(RCX, RAX, -1, 0, -2 - K);
          A.movRI(R8, 0);
          size_t LoopTop = A.pos();
          A.cmpRI(R8, K);
          size_t Done = A.jccL(CC_E);
          A.lea(R9, RSI, R8, 0, 0);
          checkAddrC(R9, Next, C, Idx);
          A.loadQ(R10, R12, R9, 3, 0);
          A.lea(R9, RCX, R8, 0, 0);
          checkAddrC(R9, Next, C, Idx);
          A.storeQ(R10, R12, R9, 3, 0);
          A.addRI(R8, 1);
          A.jmpFixed(LoopTop);
          A.bind(Done);
        }
        A.lea(RDX, RAX, -1, 0, -1);
        A.storeQ(RDX, RBX, -1, 0, SpOff);
        A.storeQ(RDI, RBX, -1, 0, static_cast<int32_t>(s1::FP) * 8);
        A.storeQImm(RBX, static_cast<int32_t>(s1::RTA) * 8, K);
        jmpTo(I.Target, 0);
        break;
      }

      case XOp::Ret: {
        mat(C);
        A.loadQ(RAX, RBX, -1, 0, SpOff);
        A.subRI(RAX, 1);
        A.storeQ(RAX, RBX, -1, 0, SpOff);
        checkAddrC(RAX, Next, C, Idx);
        A.loadQ(RCX, R12, RAX, 3, 0); // return word
        A.testRR(RCX, RCX);
        A.jccFixed(CC_E, OkStubOff); // host sentinel
        A.movRR(RDX, RCX);
        A.shrRI(RDX, 32);
        A.subRI(RDX, 1);     // function index
        A.movRR32(RCX, RCX); // pc half
        A.movRI(RSI, FTData);
        A.loadQ(RSI, RSI, RDX, 3, 0);
        A.loadQ(RSI, RSI, RCX, 3, 0);
        A.jmpReg(RSI);
        break;
      }

      // ---- allocation --------------------------------------------------
      case XOp::Alloc: {
        mat(C);
        A.storeQ(R14, R13, -1, 0, MO.Instr);
        A.movRR(RDI, R13);
        A.movRI(RSI, static_cast<uint64_t>(I.S1));
        A.movRI(RDX, static_cast<uint64_t>(I.S2));
        A.movRI(RAX, reinterpret_cast<uint64_t>(&JitAccess::allocShim));
        A.callReg(RAX);
        A.cmpByteMemI(R13, MO.Halted, 0);
        jccStubC(CC_NE, JitStatus::HeapExh, Next, C, Idx);
        switch (I.GA.M) {
        case XArg::Mode::Reg:
          A.storeQ(RAX, RBX, -1, 0, static_cast<int32_t>(I.GA.R) * 8);
          break;
        case XArg::Mode::Mem:
          emitEa(RCX, RDX, RSI, I.GA.Mem);
          checkAddrC(RCX, Next, C, Idx);
          A.storeQ(RAX, R12, RCX, 3, 0);
          break;
        default:
          break; // xwrite drops Const/None destinations
        }
        break;
      }

      // ---- runtime services -------------------------------------------
      case XOp::Syscall: {
        Syscall S = static_cast<Syscall>(I.S1);
        std::vector<size_t> Slow;
        auto toSlow = [&](uint8_t CC) { Slow.push_back(A.jccL(CC)); };

        // Mat-first-keep-copies: record which virtual registers hold the
        // operands, then materialize. mat() clobbers only rax/rcx, so the
        // copies stay live, every tag-check bail reaches the generic
        // route with fully synced state (identical to the memory-path
        // bails), and the pops below are plain Regs[SP] decrements.
        //
        // Pop elision: when the virtual segment holds exactly the
        // operands the fast path pops, the deferred Regs[SP] bump
        // cancels against the pop — memory already holds the post-pop
        // SP, so only the high-water mark needs flushing and the
        // Regs[SP] round-trip disappears. Bails to the generic route
        // re-materialize the pre-pop SP at the Slow label below.
        const int D0 = C.Depth;
        int NPops = 0;
        if (S == Syscall::GenericAdd || S == Syscall::GenericSub ||
            S == Syscall::GenericMul || S == Syscall::GenericCompare ||
            S == Syscall::Cons)
          NPops = 2;
        else if ((S == Syscall::GenericNumPred &&
                  static_cast<PredCode>(I.S2) >= PredCode::Zerop &&
                  static_cast<PredCode>(I.S2) <= PredCode::Minusp) ||
                 (S == Syscall::GenericUnary &&
                  (static_cast<UnaryCode>(I.S2) == UnaryCode::Neg ||
                   static_cast<UnaryCode>(I.S2) == UnaryCode::Abs ||
                   static_cast<UnaryCode>(I.S2) == UnaryCode::Add1 ||
                   static_cast<UnaryCode>(I.S2) == UnaryCode::Sub1)))
          NPops = 1;
        const bool Popped = NPops > 0 && D0 == NPops;
        if (Popped) {
          syncShw(C);
          C.Depth = 0; // rbp stays cached: it already equals Regs[SP]
        } else {
          mat(C);
        }

        if (S == Syscall::GenericAdd || S == Syscall::GenericSub ||
            S == Syscall::GenericMul) {
          unsigned VA = RCX, VB = RDX;
          if (D0 >= 2) {
            // Both operands are still in virtual registers; the segment's
            // own bound checks proved 2 <= SP <= MemoryWords.
            VA = VRegs[D0 - 2];
            VB = VRegs[D0 - 1];
          } else {
            A.loadQ(RAX, RBX, -1, 0, SpOff);
            A.cmpRI(RAX, 2);
            toSlow(CC_B);
            A.cmpRI(RAX, MW);
            toSlow(CC_A);
            A.loadQ(RCX, R12, RAX, 3, -16); // AW
            A.loadQ(RDX, R12, RAX, 3, -8);  // BW
          }
          A.movRR(RSI, VA);
          A.shrRI(RSI, static_cast<uint8_t>(TagShift));
          A.cmpRI(RSI, static_cast<int32_t>(Tag::Fixnum));
          toSlow(CC_NE);
          A.movRR(RSI, VB);
          A.shrRI(RSI, static_cast<uint8_t>(TagShift));
          A.cmpRI(RSI, static_cast<int32_t>(Tag::Fixnum));
          toSlow(CC_NE);
          A.incMemQ(R13, MO.Syscalls);
          // The threaded fast path pops before it traps on overflow.
          if (!Popped)
            A.aluMemI(5, RBX, SpOff, 2);
          A.movsxd(RCX, VA); // fixnumValue
          A.movsxd(RDX, VB);
          if (S == Syscall::GenericAdd)
            A.addRR(RCX, RDX);
          else if (S == Syscall::GenericSub)
            A.subRR(RCX, RDX);
          else
            A.imulRR(RCX, RDX);
          A.movsxd(RSI, RCX); // 32-bit range check
          A.cmpRR(RSI, RCX);
          jccStubC(CC_NE, JitStatus::FixOv, Next, C, Idx);
          A.movRR32(RCX, RCX); // makeFixnum: zero-extend, set the tag bit
          A.btsRI(RCX, static_cast<uint8_t>(TagShift));
          A.storeQ(RCX, RBX, -1, 0, static_cast<int32_t>(s1::RV) * 8);
          jmpTo(Fi, Next);
        } else if (S == Syscall::GenericCompare) {
          const XInsn *Br = fusedBranch(Idx);
          if (Br && !C.Batched)
            ++JitStatFused;
          unsigned VA = RCX, VB = RDX;
          if (D0 >= 2) {
            VA = VRegs[D0 - 2];
            VB = VRegs[D0 - 1];
          } else {
            A.loadQ(RAX, RBX, -1, 0, SpOff);
            A.cmpRI(RAX, 2);
            toSlow(CC_B);
            A.cmpRI(RAX, MW);
            toSlow(CC_A);
            A.loadQ(RCX, R12, RAX, 3, -16);
            A.loadQ(RDX, R12, RAX, 3, -8);
          }
          A.movRR(RSI, VA);
          A.shrRI(RSI, static_cast<uint8_t>(TagShift));
          A.cmpRI(RSI, static_cast<int32_t>(Tag::Fixnum));
          toSlow(CC_NE);
          A.movRR(RSI, VB);
          A.shrRI(RSI, static_cast<uint8_t>(TagShift));
          A.cmpRI(RSI, static_cast<int32_t>(Tag::Fixnum));
          toSlow(CC_NE);
          // trueWord() must already be memoized — a miss could allocate.
          A.loadQ(RSI, R13, -1, 0, MO.CachedT);
          A.testRR(RSI, RSI);
          toSlow(CC_E);
          A.incMemQ(R13, MO.Syscalls);
          A.movsxd(RCX, VA);
          A.movsxd(RDX, VB);
          A.xorRR32(RDI, RDI); // NilWord
          A.cmpRR(RCX, RDX);
          A.cmov(ccFor(static_cast<Cond>(I.S2)), RDI, RSI);
          if (!Popped)
            A.aluMemI(5, RBX, SpOff, 2);
          A.storeQ(RDI, RBX, -1, 0, static_cast<int32_t>(s1::RV) * 8);
          if (Br)
            emitBoolTail(Idx, *Br, C);
          else
            jmpTo(Fi, Next);
        } else if (S == Syscall::GenericNumPred &&
                   static_cast<PredCode>(I.S2) >= PredCode::Zerop &&
                   static_cast<PredCode>(I.S2) <= PredCode::Minusp) {
          PredCode PC = static_cast<PredCode>(I.S2);
          const XInsn *Br = fusedBranch(Idx);
          if (Br && !C.Batched)
            ++JitStatFused;
          unsigned VB = RDX;
          if (D0 >= 1) {
            VB = VRegs[D0 - 1];
          } else {
            A.loadQ(RAX, RBX, -1, 0, SpOff);
            A.cmpRI(RAX, 1);
            toSlow(CC_B);
            A.cmpRI(RAX, MW);
            toSlow(CC_A);
            A.loadQ(RDX, R12, RAX, 3, -8);
          }
          A.movRR(RSI, VB);
          A.shrRI(RSI, static_cast<uint8_t>(TagShift));
          A.cmpRI(RSI, static_cast<int32_t>(Tag::Fixnum));
          toSlow(CC_NE);
          A.loadQ(RSI, R13, -1, 0, MO.CachedT);
          A.testRR(RSI, RSI);
          toSlow(CC_E);
          A.incMemQ(R13, MO.Syscalls);
          if (!Popped)
            A.aluMemI(5, RBX, SpOff, 1);
          A.movsxd(RDX, VB);   // fixnumValue
          A.xorRR32(RDI, RDI); // NilWord — before the flag-setting test
          uint8_t CC = CC_E;
          switch (PC) {
          case PredCode::Zerop:
            A.testRR(RDX, RDX);
            CC = CC_E;
            break;
          case PredCode::Oddp:
            // V & 1 != 0 <=> V % 2 != 0, negatives included (two's compl).
            A.aluRI(4, RDX, 1);
            CC = CC_NE;
            break;
          case PredCode::Evenp:
            A.aluRI(4, RDX, 1);
            CC = CC_E;
            break;
          case PredCode::Plusp:
            A.cmpRI(RDX, 0);
            CC = CC_G;
            break;
          default: // Minusp
            A.cmpRI(RDX, 0);
            CC = CC_L;
            break;
          }
          A.cmov(CC, RDI, RSI);
          A.storeQ(RDI, RBX, -1, 0, static_cast<int32_t>(s1::RV) * 8);
          if (Br)
            emitBoolTail(Idx, *Br, C);
          else
            jmpTo(Fi, Next);
        } else if (S == Syscall::GenericUnary &&
                   (static_cast<UnaryCode>(I.S2) == UnaryCode::Neg ||
                    static_cast<UnaryCode>(I.S2) == UnaryCode::Abs ||
                    static_cast<UnaryCode>(I.S2) == UnaryCode::Add1 ||
                    static_cast<UnaryCode>(I.S2) == UnaryCode::Sub1)) {
          UnaryCode UC = static_cast<UnaryCode>(I.S2);
          unsigned VB = RCX;
          if (D0 >= 1) {
            VB = VRegs[D0 - 1];
          } else {
            A.loadQ(RAX, RBX, -1, 0, SpOff);
            A.cmpRI(RAX, 1);
            toSlow(CC_B);
            A.cmpRI(RAX, MW);
            toSlow(CC_A);
            A.loadQ(RCX, R12, RAX, 3, -8);
          }
          A.movRR(RSI, VB);
          A.shrRI(RSI, static_cast<uint8_t>(TagShift));
          A.cmpRI(RSI, static_cast<int32_t>(Tag::Fixnum));
          toSlow(CC_NE);
          A.incMemQ(R13, MO.Syscalls);
          if (!Popped)
            A.aluMemI(5, RBX, SpOff, 1); // pop first
          A.movsxd(RCX, VB);
          switch (UC) {
          case UnaryCode::Neg:
            A.negR(RCX);
            break;
          case UnaryCode::Abs: // V < 0 ? -V : V
            A.movRR(RDX, RCX);
            A.negR(RDX);
            A.testRR(RCX, RCX);
            A.cmov(CC_S, RCX, RDX);
            break;
          case UnaryCode::Add1:
            A.addRI(RCX, 1);
            break;
          default: // Sub1
            A.subRI(RCX, 1);
            break;
          }
          A.movsxd(RSI, RCX);
          A.cmpRR(RSI, RCX);
          jccStubC(CC_NE, JitStatus::FixOv, Next, C, Idx);
          A.movRR32(RCX, RCX); // makeFixnum: zero-extend, set the tag bit
          A.btsRI(RCX, static_cast<uint8_t>(TagShift));
          A.storeQ(RCX, RBX, -1, 0, static_cast<int32_t>(s1::RV) * 8);
          jmpTo(Fi, Next);
        } else if (S == Syscall::Cons && !GcOn) {
          // Inline bump allocation. Every bail (operand range, heap
          // exhaustion) happens before any mutation, so the generic route
          // re-runs the whole syscall — including the halt-on-exhaustion
          // protocol — exactly like the threaded engine.
          if (!C.Batched)
            ++JitStatConsSites;
          unsigned VCar = RSI, VCdr = RDX;
          if (D0 >= 2) {
            VCar = VRegs[D0 - 2]; // threaded pops Cdr first, then Car
            VCdr = VRegs[D0 - 1];
          } else {
            A.loadQ(RAX, RBX, -1, 0, SpOff);
            A.cmpRI(RAX, 2);
            toSlow(CC_B);
            A.cmpRI(RAX, MW);
            toSlow(CC_A);
            A.loadQ(RSI, R12, RAX, 3, -16); // Car
            A.loadQ(RDX, R12, RAX, 3, -8);  // Cdr
          }
          A.loadQ(RAX, R13, -1, 0, MO.HeapTop);
          A.lea(RCX, RAX, -1, 0, 2);
          A.cmpRI(RCX, HeapEnd);
          toSlow(CC_A); // exhausted: the C++ allocator halts the machine
          A.storeQ(RCX, R13, -1, 0, MO.HeapTop);
          A.incMemQ(R13, MO.HeapObjects);
          A.aluMemI(0, R13, MO.HeapWords, 2);
          A.incMemQ(R13, MO.Syscalls);
          A.incMemQ(R13, MO.ConsHits);
          if (!Popped)
            A.aluMemI(5, RBX, SpOff, 2);
          // HeapTop < HeapEnd <= MemoryWords: the stores cannot fault.
          A.storeQ(VCar, R12, RAX, 3, 0);
          A.storeQ(VCdr, R12, RAX, 3, 8);
          A.movRI(RDI, static_cast<uint64_t>(Tag::Cons) << TagShift);
          A.orRR(RAX, RDI); // makePointer(Cons, addr)
          A.storeQ(RAX, RBX, -1, 0, static_cast<int32_t>(s1::RV) * 8);
          jmpTo(Fi, Next);
        } else if (S == Syscall::Cons && GcOn) {
          // GC mode: free-list reuse and the collection-trigger accounting
          // live in Machine::allocate, so call a dedicated shim — still
          // skipping the full syscall dispatch. Operand pops happen before
          // the call, matching the threaded handler's order.
          unsigned VCar = RSI, VCdr = RDX;
          if (D0 >= 2) {
            A.movRR(RSI, VRegs[D0 - 2]);
            A.movRR(RDX, VRegs[D0 - 1]);
          } else {
            A.loadQ(RAX, RBX, -1, 0, SpOff);
            A.cmpRI(RAX, 2);
            toSlow(CC_B);
            A.cmpRI(RAX, MW);
            toSlow(CC_A);
            A.loadQ(RSI, R12, RAX, 3, -16); // Car
            A.loadQ(RDX, R12, RAX, 3, -8);  // Cdr
          }
          (void)VCar;
          (void)VCdr;
          A.incMemQ(R13, MO.Syscalls);
          A.incMemQ(R13, MO.ConsMisses);
          if (!Popped)
            A.aluMemI(5, RBX, SpOff, 2);
          A.storeQ(R14, R13, -1, 0, MO.Instr);
          A.movRR(RDI, R13);
          A.movRI(RAX, reinterpret_cast<uint64_t>(&JitAccess::consShim));
          A.callReg(RAX);
          A.storeQ(RAX, RBX, -1, 0, static_cast<int32_t>(s1::RV) * 8);
          // Heap exhaustion halts inside allocate; the threaded engine
          // observes it at the next boundary.
          A.cmpByteMemI(R13, MO.Halted, 0);
          jccStubC(CC_NE, JitStatus::HaltedMem, Next, C, Idx);
          jmpTo(Fi, Next);
        }

        for (size_t P : Slow)
          A.bind(P);
        if (Popped) {
          // The elided pop means memory holds the post-pop SP; the
          // generic route re-runs the whole syscall and must see the
          // operands still pushed.
          A.lea(RAX, RBP, -1, 0, D0);
          A.storeQ(RAX, RBX, -1, 0, SpOff);
        }
        if (C.Batched && C.Extra > 0)
          A.subRI(R14, C.Extra); // un-retire the unexecuted fused branch
        if (S == Syscall::Cons)
          A.incMemQ(R13, MO.ConsMisses);
        emitSyscallGeneric(I, Idx);
        break;
      }

      case XOp::Halt:
        mat(C);
        jmpStubC(JitStatus::Halt, Next, C, Idx);
        break;

      // ---- cold opcodes: one call into the C++ executor ----------------
      default: {
        bool Branches = I.Op == XOp::JmpzG || I.Op == XOp::FJmpzG;
        bool CanDiv0 = I.Op == XOp::Alu2G || I.Op == XOp::Alu3G;
        mat(C);
        // Mid-block in the batched body, r14 has pre-retired the whole
        // block; expose the exact per-boundary count to the C++ side.
        int Adj = C.Batched ? C.End - Idx - 1 + C.Extra : 0;
        if (Adj > 0) {
          A.lea(RAX, R14, -1, 0, -Adj);
          A.storeQ(RAX, R13, -1, 0, MO.Instr);
        } else {
          A.storeQ(R14, R13, -1, 0, MO.Instr);
        }
        A.movRR(RDI, R13);
        A.movRI(RSI, reinterpret_cast<uint64_t>(&I));
        A.movRI(RAX, reinterpret_cast<uint64_t>(&JitAccess::coldShim));
        A.callReg(RAX);
        if (CanDiv0) {
          A.cmpRI(RAX, -1);
          jccStubC(CC_E, JitStatus::Div0, Next, C, Idx);
        }
        if (Branches) {
          A.cmpRI(RAX, 1);
          size_t Fall = A.jccL(CC_NE);
          // Taken: the threaded loop would trap at the *target* boundary
          // if the operand reads faulted.
          A.cmpByteMemI(R13, MO.Halted, 0);
          jccStubC(CC_NE, JitStatus::HaltedMem, I.Target, C, Idx);
          jmpTo(Fi, I.Target);
          A.bind(Fall);
        }
        A.cmpByteMemI(R13, MO.Halted, 0);
        jccStubC(CC_NE, JitStatus::HaltedMem, Next, C, Idx);
        break;
      }
      }
    };

    // ---- block loop ----------------------------------------------------
    // Every externally enterable pc is a leader (Predecode's invariant),
    // so only block entries need the full boundary protocol. Non-leader
    // boundaries get entry points in the unbatched body, which keeps the
    // virtual stack materialized at every boundary precisely so a resume
    // after a mid-block trap can land there with plain architectural
    // state.
    // Does the block's terminating instruction retire a fused boolean
    // branch on its fast path? Must mirror the emitInsn fast-path
    // conditions exactly — the batched lane precharges the branch's
    // retirement into the block fit test.
    auto blockFusesTail = [&](int Idx) {
      const XInsn &I = DF.Code[static_cast<size_t>(Idx)];
      if (I.Op != XOp::Syscall || !fusedBranch(Idx))
        return false;
      Syscall S = static_cast<Syscall>(I.S1);
      return S == Syscall::GenericCompare ||
             (S == Syscall::GenericNumPred &&
              static_cast<PredCode>(I.S2) >= PredCode::Zerop &&
              static_cast<PredCode>(I.S2) <= PredCode::Minusp);
    };

    int L = 0;
    for (;;) {
      JP->Offs[F][static_cast<size_t>(L)] = static_cast<uint32_t>(A.pos());
      VCtx Entry; // blocks begin with the virtual stack empty

      if (L == Size) {
        // Fall-off trailer: control ran past the last real instruction.
        // Boundary safepoint first, same order as the threaded loop.
        A.opRR(true, {0x3B}, R14, R15); // cmp r14, r15
        jccStubC(CC_AE, JitStatus::Fuel, L, Entry, L);
        if (GcOn) {
          A.cmpByteMemI(R13, MO.GcPending, 0);
          size_t Skip = A.jccL(CC_E);
          A.callFixed(GcStubOff);
          A.bind(Skip);
        }
        jmpStubC(JitStatus::PcRange, Size, Entry, L);
        break;
      }

      int E = L + 1;
      while (E < Size && !DF.Leaders[static_cast<size_t>(E)])
        ++E;
      const int N = E - L;
      const bool Ends = endsControl(DF.Code[static_cast<size_t>(E - 1)].Op);
      const bool Fused = blockFusesTail(E - 1);
      const int Charge = N + (Fused ? 1 : 0);
      // The explicit entry fuel check folds into the batched fit test
      // when nothing sits between them: a non-fitting block falls to the
      // unbatched lane, whose first boundary check traps with the same
      // pc and count. With a GC schedule the pending-collection check
      // must run between fuel check and fit test (fuel trap wins over a
      // pending GC), so the explicit form stays.
      const bool MergedEntry = N >= 2 && !GcOn;
      if (!MergedEntry) {
        A.opRR(true, {0x3B}, R14, R15); // cmp r14, r15
        jccStubC(CC_AE, JitStatus::Fuel, L, Entry, L);
        if (GcOn) {
          A.cmpByteMemI(R13, MO.GcPending, 0);
          size_t Skip = A.jccL(CC_E);
          A.callFixed(GcStubOff);
          A.bind(Skip);
        }
      }

      ++JitStatBlocks;
      JitStatBlockInsns += static_cast<uint64_t>(N);
      JitStatBlockInsnsMax.updateMax(static_cast<uint64_t>(N));
      if (N == 1)
        ++JitStatBlocks1;
      else if (N <= 3)
        ++JitStatBlocks2;
      else if (N <= 7)
        ++JitStatBlocks4;
      else
        ++JitStatBlocks8;

      if (N >= 2) {
        JitStatElided += static_cast<uint64_t>(Charge - 1);
        // Batched lane: bulk-retire the whole block (plus a fused
        // branch, if the tail has one) when it fits in the remaining
        // fuel — threaded runs all of it iff count + Charge <= limit.
        A.addRI(R14, Charge);
        A.opRR(true, {0x3B}, R14, R15); // cmp r14, r15
        size_t ToUnb = A.jccL(CC_A);
        VCtx BC;
        BC.Batched = true;
        BC.End = E;
        BC.Extra = Fused ? 1 : 0;
        if (Detailed) {
          // Bulk PerOpcode: one add per distinct opcode replaces N
          // per-boundary bumps; trap stubs subtract the unexecuted tail
          // back out. A fused branch is NOT included — emitBoolTail
          // bumps it, and the generic slow route retires it at the
          // branch's own block.
          BC.BulkOps = true;
          std::map<int32_t, int32_t> OpCounts;
          for (int J = L; J < E; ++J)
            ++OpCounts[static_cast<int32_t>(static_cast<size_t>(
                DF.Code[static_cast<size_t>(J)].OrigOp))];
          for (const auto &[Op, Cnt] : OpCounts) {
            const int32_t Off = MO.PerOp0 + 8 * Op;
            if (Cnt == 1)
              A.incMemQ(R13, Off);
            else
              A.aluMemI(0, R13, Off, Cnt);
          }
        }
        for (int J = L; J < E; ++J)
          emitInsn(J, BC);
        if (!Ends) {
          mat(BC);
          jmpTo(Fi, E);
        }
        A.bind(ToUnb);
        A.subRI(R14, Charge); // roll back the failed bulk charge
      }

      // Unbatched lane: taken only when fuel runs out inside the block
      // (or for single-instruction blocks). Materializes at every
      // boundary so each one is a valid external entry point and fuel
      // exhaustion lands with exact counters and stack state.
      VCtx UC;
      UC.End = E;
      for (int J = L; J < E; ++J) {
        if (J > L) {
          mat(UC);
          JP->Offs[F][static_cast<size_t>(J)] =
              static_cast<uint32_t>(A.pos());
        }
        if (J > L || MergedEntry) {
          A.opRR(true, {0x3B}, R14, R15); // cmp r14, r15
          jccStubC(CC_AE, JitStatus::Fuel, J, UC, J);
        }
        A.incR(R14); // ++Stats.Instructions
        emitInsn(J, UC);
      }
      if (!Ends) {
        mat(UC);
        jmpTo(Fi, E);
      }

      L = E;
    }

    // -- trap stubs for this function: roll back the bulk-retired tail,
    // settle the deferred stack state, then report ----------------------
    for (auto &[Key, Sites] : StubSites) {
      for (size_t P : Sites)
        A.bind(P);
      const int32_t St = Key.first[0], PcVal = Key.first[1],
                    Adj = Key.first[2], SpD = Key.first[3],
                    Peak = Key.first[4];
      const std::vector<int32_t> &Tail = Key.second;
      auto settleAndReport = [&](JitStatus Status) {
        if (Adj > 0)
          A.subRI(R14, Adj);
        // Un-bump the bulk PerOpcode adds for the unexecuted tail.
        for (size_t T = 0; T < Tail.size();) {
          size_t U = T;
          while (U < Tail.size() && Tail[U] == Tail[T])
            ++U;
          A.aluMemI(5, R13, MO.PerOp0 + 8 * Tail[T],
                    static_cast<int32_t>(U - T));
          T = U;
        }
        if (SpD > 0 || Peak > 0) {
          // Memory still holds the segment base (the bump was deferred).
          A.loadQ(RAX, RBX, -1, 0, SpOff);
          if (Peak > 0) {
            A.lea(RCX, RAX, -1, 0, Peak - static_cast<int32_t>(StackBase));
            A.cmpRM(RCX, R13, MO.SHW);
            size_t Skip = A.jccL(CC_BE);
            A.storeQ(RCX, R13, -1, 0, MO.SHW);
            A.bind(Skip);
          }
          if (SpD > 0) {
            A.lea(RAX, RAX, -1, 0, SpD);
            A.storeQ(RAX, RBX, -1, 0, SpOff);
          }
        }
        A.storeDImm(R13, MO.CurFunc, static_cast<int32_t>(F));
        A.storeDImm(R13, MO.Pc, PcVal);
        A.movRI(RAX, static_cast<uint64_t>(Status));
        A.jmpFixed(EpiOff);
      };
      if (St == static_cast<int32_t>(PushColdStatus)) {
        // Combined push guard: reconstruct the faulting Sp slot (rbp
        // still caches the segment base at every guard site; SpD is the
        // segment depth). The exact value 2^64-1 means the threaded
        // overflow check wrapped and the push faulted in mem() instead;
        // everything else is overflow.
        A.lea(RAX, RBP, -1, 0, SpD);
        A.cmpRI(RAX, -1);
        size_t Hm = A.jccL(CC_E);
        settleAndReport(JitStatus::StackOv);
        A.bind(Hm);
        settleAndReport(JitStatus::HaltedMem);
      } else {
        settleAndReport(static_cast<JitStatus>(St));
      }
    }
  }

  // ---- resolve instruction-address fixups ------------------------------
  for (const Fixup &Fx : Fixups) {
    int64_t Rel =
        static_cast<int64_t>(
            JP->Offs[static_cast<size_t>(Fx.Func)][static_cast<size_t>(
                Fx.Idx)]) -
        static_cast<int64_t>(Fx.At + 4);
    A.patch32(Fx.At, static_cast<int32_t>(Rel));
  }

  // ---- finalize: copy into a fresh RX mapping (W^X) --------------------
  size_t Len = A.B.size();
  void *Map = mmap(nullptr, Len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Map == MAP_FAILED)
    return nullptr;
  std::memcpy(Map, A.B.data(), Len);
  if (mprotect(Map, Len, PROT_READ | PROT_EXEC) != 0) {
    munmap(Map, Len);
    return nullptr;
  }
  JP->Base = static_cast<uint8_t *>(Map);
  JP->MapLen = Len;
  for (size_t F = 0; F < NF; ++F) {
    size_t N = JP->Offs[F].size();
    JP->AddrArrays[F] = std::make_unique<const uint8_t *[]>(N);
    for (size_t Idx = 0; Idx < N; ++Idx)
      JP->AddrArrays[F][Idx] = JP->Base + JP->Offs[F][Idx];
    JP->FuncTable[F] = JP->AddrArrays[F].get();
  }
  return JP;
}

#endif // S1_JIT_AVAILABLE

std::shared_ptr<const JitProgram>
compileJit(std::shared_ptr<const DecodedProgram> DP, const JitOptions &Opts,
           Machine &Layout) {
#if S1_JIT_AVAILABLE
  return JitAccess::compile(std::move(DP), Opts, Layout);
#else
  (void)DP;
  (void)Opts;
  (void)Layout;
  return nullptr;
#endif
}

} // namespace vm
} // namespace s1lisp
